// Command lix-repl demonstrates the WAL-shipping replication plane over
// TCP: run a primary that ingests synthetic keys and ships its durable
// frame stream, and one or more followers that replay it into their own
// persistent stores and keep serving through primary restarts.
//
// Primary (epoch 1, listening on :7070, ingesting 1000 keys/s):
//
//	lix-repl -mode primary -dir /tmp/prim -addr :7070 -epoch 1 -rate 1000
//
// Follower (replicating into its own directory):
//
//	lix-repl -mode follower -dir /tmp/fol -addr 127.0.0.1:7070
//
// Both print a one-line status every -status interval. Restart the
// primary with a higher -epoch after a crash; a follower refuses (fences)
// any primary presenting an epoch below the highest it has seen.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"learnedindex/internal/cli"
	"learnedindex/internal/core"
	"learnedindex/internal/repl"
	"learnedindex/internal/serve"
)

func main() {
	mode := flag.String("mode", "", "primary | follower")
	dir := flag.String("dir", "", "store directory (required)")
	addr := flag.String("addr", "127.0.0.1:7070", "primary: listen address; follower: primary address")
	epoch := flag.Uint64("epoch", 1, "primary fencing epoch (bump after every primary restart)")
	rate := flag.Int("rate", 1000, "primary: synthetic ingest rate, keys/s (0 = none)")
	seed := flag.Int64("seed", 1, "primary: ingest key seed")
	status := flag.Duration("status", time.Second, "status print interval")
	metrics := flag.String("metrics", "", "optional debug listener address (/metrics, /metrics.json)")
	flag.Parse()
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "lix-repl: -dir is required")
		os.Exit(2)
	}

	stop := cli.Shutdown()

	switch *mode {
	case "primary":
		runPrimary(*dir, *addr, *epoch, *rate, *seed, *status, *metrics, stop)
	case "follower":
		runFollower(*dir, *addr, *status, *metrics, stop)
	default:
		fmt.Fprintln(os.Stderr, "lix-repl: -mode must be primary or follower")
		os.Exit(2)
	}
}

func runPrimary(dir, addr string, epoch uint64, rate int, seed int64, status time.Duration, metrics string, stop <-chan struct{}) {
	st, err := serve.Open(nil, core.Config{}, serve.Options{Dir: dir, MetricsAddr: metrics})
	if err != nil {
		fatal(err)
	}
	defer st.Close()
	prim, err := st.ServeReplication(repl.TCP, addr, repl.PrimaryOptions{Epoch: epoch})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("primary: epoch %d serving replication on %s (store %s, %d keys)\n",
		epoch, prim.Addr(), dir, st.Len())

	var ingested int64
	if rate > 0 {
		rng := rand.New(rand.NewSource(seed))
		tick := time.NewTicker(time.Second / 10)
		defer tick.Stop()
		go func() {
			per := rate / 10
			if per < 1 {
				per = 1
			}
			batch := make([]uint64, per)
			for range tick.C {
				for i := range batch {
					batch[i] = uint64(rng.Int63())
				}
				if err := st.InsertDurable(batch...); err != nil {
					fmt.Fprintf(os.Stderr, "primary: ingest: %v\n", err)
					return
				}
				ingested += int64(per)
			}
		}()
	}

	tick := time.NewTicker(status)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			fmt.Printf("primary: len=%d ingested=%d deposed=%v\n", st.Len(), ingested, prim.Deposed())
		case <-stop:
			fmt.Printf("primary: shutting down (len=%d ingested=%d)\n", st.Len(), ingested)
			return
		}
	}
}

func runFollower(dir, addr string, status time.Duration, metrics string, stop <-chan struct{}) {
	st, err := serve.OpenFollower(core.Config{}, serve.Options{Dir: dir, MetricsAddr: metrics},
		repl.FollowerOptions{Addr: addr})
	if err != nil {
		fatal(err)
	}
	defer st.Close()
	fmt.Printf("follower: replicating %s from %s (%d keys already durable)\n", dir, addr, st.Len())

	tick := time.NewTicker(status)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			fs, _ := st.FollowerStatus()
			fmt.Printf("follower: len=%d connected=%v applied=%d lag=%d epoch=%d reconnects=%d\n",
				st.Len(), fs.Connected, fs.AppliedSeq, fs.LagFrames, fs.MaxEpoch, fs.Reconnects)
		case <-stop:
			fs, _ := st.FollowerStatus()
			fmt.Printf("follower: shutting down (len=%d applied=%d epoch=%d)\n", st.Len(), fs.AppliedSeq, fs.MaxEpoch)
			return
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lix-repl:", err)
	os.Exit(1)
}
