// Command lix-tune runs the Learning Index Framework's grid search (§3.1,
// §3.3) over a chosen dataset and prints the ranked configurations — the
// "index synthesis" workflow: give LIF a dataset, get back the best index.
package main

import (
	"flag"
	"fmt"
	"os"

	"learnedindex/internal/bench"
	"learnedindex/internal/core"
	"learnedindex/internal/data"
)

func main() {
	n := flag.Int("n", 1_000_000, "dataset size")
	dataset := flag.String("data", "lognormal", "dataset: maps | weblogs | lognormal | dense")
	seed := flag.Int64("seed", 1, "dataset seed")
	probes := flag.Int("probes", 100_000, "lookup probes per candidate")
	budget := flag.Int("budget", 0, "size budget in bytes (0 = rank by latency only)")
	flag.Parse()

	var keys data.Keys
	switch *dataset {
	case "maps":
		keys = data.Maps(*n, *seed)
	case "weblogs":
		keys = data.Weblogs(*n, *seed)
	case "lognormal":
		keys = data.LognormalPaper(*n, *seed)
	case "dense":
		keys = data.Dense(*n, 1_000_000, 1)
	default:
		fmt.Fprintf(os.Stderr, "unknown dataset %q\n", *dataset)
		os.Exit(2)
	}
	probeSet := data.SampleExisting(keys, *probes, *seed+1)

	// The paper's grid: leaf ratios from 10k- to 200k-equivalent.
	leafCounts := []int{*n / 20000, *n / 4000, *n / 2000, *n / 1000}
	for i, lc := range leafCounts {
		if lc < 4 {
			leafCounts[i] = 4
		}
	}
	obj := core.MinimizeLatency
	if *budget > 0 {
		obj = core.LatencyUnderBudget(*budget)
	}
	fmt.Printf("LIF grid search over %s (N=%d), %d candidates\n",
		*dataset, *n, len(core.DefaultGrid(leafCounts)))
	results := core.GridSearch(keys, probeSet, core.DefaultGrid(leafCounts), obj)

	t := &bench.Table{
		Title:   "Ranked configurations (best first)",
		Headers: []string{"#", "Config", "Lookup (ns)", "Size (MB)", "Max err"},
	}
	for i, r := range results {
		t.Add(fmt.Sprintf("%d", i+1), r.Candidate.Label,
			fmt.Sprintf("%d", r.AvgLookup.Nanoseconds()),
			bench.MB(r.SizeBytes),
			fmt.Sprintf("%d", r.MaxAbsErr))
	}
	t.Render(os.Stdout)
}
