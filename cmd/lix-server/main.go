// Command lix-server serves a learned-index store over the binary wire
// protocol: batch lookups, membership probes, paged range scans, range
// counts, and group-committed durable inserts, one node of a
// range-partitioned cluster fronted by the internal/router client.
//
// Standalone persistent node on :7080:
//
//	lix-server -dir /tmp/n0 -addr :7080
//
// Read-only follower node replicating from a lix-repl primary (serves
// bounded-staleness reads to routers running with -ReadFollowers):
//
//	lix-server -dir /tmp/f0 -addr :7081 -primary 127.0.0.1:7070
//
// A volatile in-memory node (no -dir) is handy for smoke tests. The
// first SIGINT/SIGTERM drains in-flight requests and closes the store;
// a second force-exits.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"learnedindex/internal/cli"
	"learnedindex/internal/core"
	"learnedindex/internal/repl"
	"learnedindex/internal/serve"
	"learnedindex/internal/server"
)

func main() {
	dir := flag.String("dir", "", "store directory (empty = volatile in-memory store)")
	addr := flag.String("addr", "127.0.0.1:7080", "wire protocol listen address")
	strKeys := flag.Bool("strkeys", false, "serve string keys instead of uint64")
	primary := flag.String("primary", "", "replicate from this primary address (requires -dir)")
	metrics := flag.String("metrics", "", "optional debug listener address (/metrics, /metrics.json)")
	status := flag.Duration("status", 5*time.Second, "status print interval")
	inflight := flag.Int("max-inflight", 0, "max concurrent requests (0 = default)")
	flag.Parse()

	st, err := openStore(*dir, *strKeys, *primary, *metrics)
	if err != nil {
		fatal(err)
	}
	defer st.Close()

	srv := server.NewServer(st, server.Options{MaxInflight: *inflight})
	if err := srv.Serve(repl.TCP, *addr); err != nil {
		fatal(err)
	}
	role := "standalone"
	if *primary != "" {
		role = "follower of " + *primary
	}
	fmt.Printf("lix-server: %s serving on %s (%d keys)\n", role, srv.Addr(), st.Len())

	stop := cli.Shutdown()
	tick := time.NewTicker(*status)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			printStatus(st)
		case <-stop:
			fmt.Println("lix-server: draining")
			srv.Close()
			printStatus(st)
			return
		}
	}
}

func openStore(dir string, strKeys bool, primary, metrics string) (*serve.Store, error) {
	opt := serve.Options{Dir: dir, MetricsAddr: metrics}
	fopt := repl.FollowerOptions{Addr: primary}
	switch {
	case primary != "" && dir == "":
		return nil, fmt.Errorf("-primary requires -dir (followers replay into a persistent store)")
	case primary != "" && strKeys:
		return serve.OpenFollowerString(core.Config{}, opt, fopt)
	case primary != "":
		return serve.OpenFollower(core.Config{}, opt, fopt)
	case dir == "" && strKeys:
		return serve.NewString(nil, core.Config{}, opt), nil
	case dir == "":
		return serve.New(nil, core.Config{}, opt), nil
	case strKeys:
		return serve.OpenString(nil, core.Config{}, opt)
	default:
		return serve.Open(nil, core.Config{}, opt)
	}
}

func printStatus(st *serve.Store) {
	snap := st.Registry().Snapshot()
	line := fmt.Sprintf("lix-server: len=%d conns=%.0f accepts=%d wire_errors=%d",
		st.Len(), snap.Gauge("lix_server_conns"),
		snap.Counter("lix_server_accepts_total"), snap.Counter("lix_server_wire_errors_total"))
	if fs, ok := st.FollowerStatus(); ok {
		line += fmt.Sprintf(" connected=%v applied=%d lag=%d epoch=%d",
			fs.Connected, fs.AppliedSeq, fs.LagFrames, fs.MaxEpoch)
	}
	fmt.Println(line)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lix-server:", err)
	os.Exit(1)
}
