// Command lix-datagen writes the synthetic datasets to disk for inspection
// or for use by external tools. Integer datasets are written as
// little-endian uint64 with an 8-byte count header (the common layout of
// learned-index benchmark suites); string datasets one key per line.
package main

import (
	"bufio"
	"encoding/binary"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"learnedindex/internal/data"
)

func main() {
	n := flag.Int("n", 1_000_000, "dataset size")
	seed := flag.Int64("seed", 1, "generator seed")
	dir := flag.String("dir", "datasets", "output directory")
	flag.Parse()

	if err := os.MkdirAll(*dir, 0o755); err != nil {
		fatal(err)
	}
	write := func(name string, keys []uint64) {
		path := filepath.Join(*dir, name)
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		w := bufio.NewWriter(f)
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], uint64(len(keys)))
		if _, err := w.Write(buf[:]); err != nil {
			fatal(err)
		}
		for _, k := range keys {
			binary.LittleEndian.PutUint64(buf[:], k)
			if _, err := w.Write(buf[:]); err != nil {
				fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%d keys)\n", path, len(keys))
	}

	write(fmt.Sprintf("maps_%d.bin", *n), data.Maps(*n, *seed))
	write(fmt.Sprintf("weblogs_%d.bin", *n), data.Weblogs(*n, *seed))
	write(fmt.Sprintf("lognormal_%d.bin", *n), data.LognormalPaper(*n, *seed))

	// String doc-ids, one per line.
	spath := filepath.Join(*dir, fmt.Sprintf("docids_%d.txt", *n/10))
	f, err := os.Create(spath)
	if err != nil {
		fatal(err)
	}
	w := bufio.NewWriter(f)
	for _, s := range data.DocIDs(*n/10, *seed) {
		fmt.Fprintln(w, s)
	}
	if err := w.Flush(); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", spath)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lix-datagen:", err)
	os.Exit(1)
}
