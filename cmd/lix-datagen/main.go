// Command lix-datagen writes the synthetic datasets to disk for inspection
// or for use by external tools. Integer datasets are written as
// little-endian uint64 with an 8-byte count header (the common layout of
// learned-index benchmark suites); string datasets one key per line.
// With -zipf s (s > 1), each integer dataset also gets a hot-key probe
// trace in the same layout: probes drawn Zipf-skewed from the dataset,
// for replaying skewed serving traffic against external systems.
package main

import (
	"bufio"
	"encoding/binary"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"learnedindex/internal/data"
)

func main() {
	n := flag.Int("n", 1_000_000, "dataset size")
	seed := flag.Int64("seed", 1, "generator seed")
	dir := flag.String("dir", "datasets", "output directory")
	zipf := flag.Float64("zipf", 0, "also write hot-key probe traces with this Zipf exponent (>1; 0 = off)")
	zipfm := flag.Int("zipfm", 0, "probes per Zipf trace (default n/2)")
	flag.Parse()

	if err := os.MkdirAll(*dir, 0o755); err != nil {
		fatal(err)
	}
	write := func(name string, keys []uint64) {
		path := filepath.Join(*dir, name)
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		w := bufio.NewWriter(f)
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], uint64(len(keys)))
		if _, err := w.Write(buf[:]); err != nil {
			fatal(err)
		}
		for _, k := range keys {
			binary.LittleEndian.PutUint64(buf[:], k)
			if _, err := w.Write(buf[:]); err != nil {
				fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%d keys)\n", path, len(keys))
	}

	// Zipf traces share the dataset layout (count header + uint64s): a
	// probe stream, not a sorted key set, drawn hot-key-skewed from the
	// dataset it is named after.
	maybeTrace := func(name string, keys data.Keys) {
		if *zipf <= 0 {
			return
		}
		m := *zipfm
		if m <= 0 {
			m = *n / 2
		}
		write(fmt.Sprintf("%s_zipf%.2f_%d.bin", name, *zipf, m),
			data.ZipfTraffic(keys, m, *zipf, *seed))
	}

	maps := data.Maps(*n, *seed)
	write(fmt.Sprintf("maps_%d.bin", *n), maps)
	maybeTrace("maps", maps)
	weblogs := data.Weblogs(*n, *seed)
	write(fmt.Sprintf("weblogs_%d.bin", *n), weblogs)
	maybeTrace("weblogs", weblogs)
	lognormal := data.LognormalPaper(*n, *seed)
	write(fmt.Sprintf("lognormal_%d.bin", *n), lognormal)
	maybeTrace("lognormal", lognormal)

	// String doc-ids, one per line.
	spath := filepath.Join(*dir, fmt.Sprintf("docids_%d.txt", *n/10))
	f, err := os.Create(spath)
	if err != nil {
		fatal(err)
	}
	w := bufio.NewWriter(f)
	for _, s := range data.DocIDs(*n/10, *seed) {
		fmt.Fprintln(w, s)
	}
	if err := w.Flush(); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", spath)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lix-datagen:", err)
	os.Exit(1)
}
