// Command lix-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	lix-bench [flags] <experiment>...
//
// Experiments: naive, figure4, figure5, figure6, figure8, figure10,
// figure11, table1, appendixA, appendixE, serve, storage, compiled,
// searchshootout, writepath, scan, stringkeys, obs, faults, repl,
// serving, all (everything except the GRU-training path of figure10; add
// -gru to include it). serve, storage, compiled, searchshootout,
// writepath, scan, stringkeys, obs, faults, repl, and serving
// are this repo's extensions beyond the paper: serve is
// single-threaded per-key lookups vs the sharded concurrent batch serving
// layer; storage is the persistent learned-segment engine — WAL ingest,
// on-disk lookup throughput, and cold-open latency vs the in-memory RMI
// (-dir controls where its segment files are written); compiled is the
// devirtualized flat read path (core.Plan) vs the interpreted model tree;
// searchshootout races the §3.4 last-mile strategies plus branchless
// lower-bound search on identical precomputed windows; writepath is the
// multi-core write plane — group-commit WAL throughput vs concurrent
// committers, parallel-training wall time vs worker count, and the
// concurrent-merge flush barrier; scan is the streaming range-scan
// subsystem — loser-tree merge throughput vs range width, model-biased vs
// binary-search scan entry, and learned COUNT vs iterate-and-count;
// stringkeys is the order-preserving key codec end to end — string
// membership, lower-bound lookup, range scans, and learned COUNT through
// core.StringIndex and the string-keyed Store vs map[string]struct{} and
// sorted-slice + sort.SearchStrings baselines; obs is the metrics-plane
// overhead probe — single-key lookup, batch-16, scan Next, and durable
// commit, with the build (metrics=on vs -tags noobs metrics=off) baked
// into each config name so two runs merged via bestof expose the on/off
// delta per surface; faults is the fault-injection seam probe — the
// durable-commit and flush gates run on the raw vfs.OS passthrough and
// again through a disarmed vfs.FaultFS, with the per-gate overhead of the
// injectable indirection (the failure-model PR's <1% claim) and the cost
// of a clean scrub pass in each row's extras; repl is the WAL-shipping
// replication plane — end-to-end ship throughput (primary durable commit
// to follower durable apply) under concurrent writers with the sampled
// steady-state lag in each row's extras, and cold-follower catch-up
// (snapshot transfer + WAL tail) to exact convergence; serving is the
// network serving plane under mixed load — a three-node range-partitioned
// cluster behind real TCP wire servers, driven through the
// internal/router client by concurrent workers replaying Zipf hot-key
// reads mixed with routed insert batches, with per-RPC p50/p99 wire
// latency in each row's extras.
//
// Experiments also write machine-readable BENCH_<experiment>.json files
// (ns/op, bytes, maxErr per config) to -jsondir (default "."; empty
// disables), so the repo's perf trajectory is diffable across PRs.
//
// The special experiment name "diff" compares instead of measuring:
//
//	lix-bench diff <priorDir> <freshDir>
//
// matches every BENCH_*.json in freshDir against its namesake in priorDir
// config-by-config and exits non-zero if any ns/op slowdown exceeds
// -regress percent (default 25) — the CI guard over the checked-in runs.
// Both sides should be min-of-N merges:
//
//	lix-bench bestof <outDir> <runDir>...
//
// keeps, per config, the fastest row seen across the run dirs (the floor
// is the measurement; everything above it is scheduler noise).
//
// Flags scale the run; defaults are laptop-sized with the paper's ratios
// preserved (see DESIGN.md §3).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"learnedindex/internal/bench"
	"learnedindex/internal/experiments"
)

func main() {
	n := flag.Int("n", 2_000_000, "integer dataset size")
	nstr := flag.Int("nstr", 200_000, "string dataset size")
	nurl := flag.Int("nurl", 20_000, "URL key-set size")
	probes := flag.Int("probes", 200_000, "lookup probes per measurement")
	rounds := flag.Int("rounds", 3, "timing rounds")
	seed := flag.Int64("seed", 1, "dataset seed")
	gru := flag.Bool("gru", false, "train the GRU series in figure10 (slow)")
	dir := flag.String("dir", os.TempDir(), "directory for the storage experiment's segment files")
	jsonDir := flag.String("jsondir", ".", "directory for machine-readable BENCH_<experiment>.json results (empty disables)")
	regress := flag.Float64("regress", 25, "diff mode: flag ns/op slowdowns above this percent")
	flag.Parse()

	opts := experiments.Options{
		N: *n, NStr: *nstr, NUrl: *nurl,
		Probes: *probes, Rounds: *rounds, Seed: *seed,
		Dir: *dir, JSONDir: *jsonDir,
		Out: os.Stdout,
	}

	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: lix-bench [flags] <naive|figure4|figure5|figure6|figure8|figure10|figure11|table1|appendixA|appendixE|serve|storage|compiled|searchshootout|writepath|scan|stringkeys|obs|faults|repl|serving|all>...")
		fmt.Fprintln(os.Stderr, "       lix-bench [-regress pct] diff <priorDir> <freshDir>")
		os.Exit(2)
	}
	if args[0] == "diff" {
		if len(args) != 3 {
			fmt.Fprintln(os.Stderr, "usage: lix-bench [-regress pct] diff <priorDir> <freshDir>")
			os.Exit(2)
		}
		diffRuns(args[1], args[2], *regress)
		return
	}
	if args[0] == "bestof" {
		if len(args) < 3 {
			fmt.Fprintln(os.Stderr, "usage: lix-bench bestof <outDir> <runDir>...")
			os.Exit(2)
		}
		paths, err := bench.WriteBest(args[1], args[2:]...)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		for _, p := range paths {
			fmt.Printf("wrote %s\n", p)
		}
		return
	}
	for _, exp := range args {
		run(exp, opts, *gru)
	}
}

// diffRuns compares freshDir's BENCH_*.json against priorDir's and exits
// non-zero when any config's ns/op regressed past the threshold.
func diffRuns(priorDir, freshDir string, regressPct float64) {
	rows, err := bench.DiffDirs(priorDir, freshDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	regressions := bench.RenderDiff(os.Stdout, rows, regressPct)
	if len(regressions) > 0 {
		fmt.Fprintf(os.Stderr, "%d config(s) regressed more than %.0f%%\n", len(regressions), regressPct)
		os.Exit(1)
	}
	fmt.Printf("[diff: %d configs compared, none regressed more than %.0f%%]\n", len(rows), regressPct)
}

func run(exp string, opts experiments.Options, gru bool) {
	start := time.Now()
	switch exp {
	case "naive":
		experiments.Naive(opts)
	case "figure4":
		experiments.Figure4(opts)
	case "figure5":
		experiments.Figure5(opts)
	case "figure6":
		experiments.Figure6(opts)
	case "figure8":
		experiments.Figure8(opts)
	case "figure10":
		experiments.Figure10(opts, gru)
	case "figure11":
		experiments.Figure11(opts)
	case "table1":
		experiments.Table1(opts)
	case "appendixA":
		experiments.AppendixA(opts)
	case "appendixE":
		experiments.AppendixE(opts)
	case "serve":
		experiments.Serve(opts)
	case "storage":
		experiments.Storage(opts)
	case "compiled":
		experiments.Compiled(opts)
	case "searchshootout":
		experiments.SearchShootout(opts)
	case "writepath":
		experiments.WritePath(opts)
	case "scan":
		experiments.Scan(opts)
	case "stringkeys":
		experiments.StringKeys(opts)
	case "obs":
		experiments.Obs(opts)
	case "faults":
		experiments.Faults(opts)
	case "repl":
		experiments.Repl(opts)
	case "serving":
		experiments.Serving(opts)
	case "all":
		for _, e := range []string{"naive", "figure4", "figure5", "figure6", "figure8", "figure10", "figure11", "table1", "appendixA", "appendixE", "serve", "storage", "compiled", "searchshootout", "writepath", "scan", "stringkeys", "obs", "faults", "repl", "serving"} {
			run(e, opts, gru)
		}
		return
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", exp)
		os.Exit(2)
	}
	fmt.Printf("[%s done in %v]\n", exp, time.Since(start).Round(time.Millisecond))
}
