// Package learnedindex is a from-scratch Go reproduction of "The Case for
// Learned Index Structures" (Kraska, Beutel, Chi, Dean, Polyzotis — SIGMOD
// 2018): range indexes as CDF models (the Recursive Model Index), learned
// hash functions for point indexes, and learned Bloom filters for
// existence indexes.
//
// This root package is the public API: thin aliases over the internal
// implementation, so downstream users import one package. The single-index
// surface answers in *positions* over its sorted key array:
//
//	idx := learnedindex.New(sortedKeys, learnedindex.DefaultConfig(10_000))
//	pos := idx.Lookup(key)            // lower bound: index of first key >= key
//	lo, hi := idx.RangeScan(a, b)     // position range [lo, hi) of keys in [a, b)
//	// the keys themselves are sortedKeys[lo:hi] — position arithmetic only
//
// The concurrent Store adds the streaming range-query surface on top: Scan
// merges every layer a key can live in (insert buffers, shard snapshots,
// on-disk segments) into one ascending deduplicated stream, entered at the
// model-predicted position, and CountRange answers a learned COUNT by pure
// position arithmetic:
//
//	st := learnedindex.NewStore(keys, cfg, learnedindex.StoreOptions{})
//	it := st.Scan(a, b)               // snapshot-consistent keys in [a, b)
//	for it.Next() { use(it.Key()) }
//	it.Close()
//	n := st.CountRange(a, b)          // exact, zero iteration
//
// String keys flow through the same stack end-to-end via the
// order-preserving key codec (8-byte big-endian prefixes + a suffix
// dictionary for exact disambiguation): NewStringStore/OpenStringStore
// build a string-keyed Store whose InsertString/LookupString/ScanString
// mirror the uint64 surface in codec (byte) order, including durable
// persistence (version-2 segment files), crash recovery, and learned
// COUNT:
//
//	st := learnedindex.NewStringStore(urls, cfg, learnedindex.StoreOptions{})
//	st.InsertString("https://example.com/x")
//	st.Flush()
//	it := st.ScanString("https://a.", "https://b.") // codec-order stream
//	n := st.CountRangeString("https://a.", "https://b.")
//
// See the examples/ directory for runnable scenarios and cmd/lix-bench for
// the paper's full evaluation suite.
package learnedindex

import (
	"learnedindex/internal/core"
	"learnedindex/internal/keycodec"
	"learnedindex/internal/obs"
	"learnedindex/internal/scan"
	"learnedindex/internal/serve"
	"learnedindex/internal/storage"
)

// Range index (§2–3): the Recursive Model Index.
type (
	// RMI is a recursive model index over a sorted []uint64: a hierarchy of
	// models that predicts a key's position with per-leaf min/max error
	// bounds, corrected by a local search.
	RMI = core.RMI
	// Plan is the compiled read path: the RMI's model tree lowered into a
	// flat, devirtualized inference plan with group-interleaved batch
	// executors. Built automatically by New and on deserialization;
	// retrieve it with RMI.Plan(). Results are bit-identical to the
	// interpreted RMI methods.
	Plan = core.Plan
	// Config specifies an RMI: stage-1 model family, stage sizes, search
	// strategy and hybrid threshold (Algorithm 1's inputs).
	Config = core.Config
	// SearchKind selects the last-mile search strategy (§3.4).
	SearchKind = core.SearchKind
	// TopKind selects the stage-1 model family (§3.3).
	TopKind = core.TopKind

	// StringRMI is the string-keyed RMI of §3.5 (Figure 6).
	StringRMI = core.StringRMI
	// StringConfig specifies a StringRMI.
	StringConfig = core.StringConfig
	// StringIndex is the codec-backed string index: a compiled prefix-RMI
	// plan over order-preserving 8-byte key prefixes plus a suffix
	// dictionary for exact tie-breaks (with a StringRMI revived as the
	// last-mile model when prefixes collide heavily). The building block of
	// the string-keyed Store and of version-2 segment files.
	StringIndex = core.StringIndex
	// KeyDict is the codec's suffix dictionary: exact keys reconstructible
	// from the deduplicated prefix array plus per-key length and suffix.
	KeyDict = keycodec.Dict

	// DeltaIndex adds insert support through the buffered-merge strategy of
	// Appendix D.1. It is single-goroutine only; use Store for concurrency.
	DeltaIndex = core.DeltaIndex
)

// Serving layer: the concurrent entry point (internal/serve).
type (
	// Store is the thread-safe sharded serving layer: range-partitioned
	// shards, lock-free RCU-style reads, buffered inserts merged and
	// retrained concurrently across shards (bounded by a GOMAXPROCS
	// retrain semaphore), and batched lookups that amortize model routing
	// across a sorted probe batch. See the package comment of
	// internal/serve for the consistency model. With StoreOptions.Dir set
	// (open with OpenStore) the Store is persistent: WAL-backed inserts
	// with a Sync durability barrier and a group-committed InsertDurable
	// (concurrent durable writers share one WAL frame and one fsync),
	// learned segment files, crash recovery, and background compaction.
	// Scan/ScanBatch stream any key range snapshot-consistently (see
	// Iterator) and CountRange answers exact range counts by position
	// arithmetic — two compiled-plan lookups per layer, zero iteration.
	Store = serve.Store
	// StoreOptions sets the shard count and per-shard merge threshold,
	// and — via Dir — switches the Store to the persistent storage engine.
	StoreOptions = serve.Options
	// StorageStats reports a persistent Store's disk state: segments,
	// bytes, WAL size, and how many models were deserialized vs trained.
	StorageStats = storage.Stats
	// StoreHealth is a persistent Store's failure-model state, returned by
	// Store.Health(): HealthOK (full service), HealthDegraded (read-only —
	// the segment plane hit a persistent error such as ENOSPC; reads and
	// scans keep serving, writes are rejected wrapped in ErrDegraded), or
	// HealthFailed (fail-stop — the commit plane lost an fsync, so every
	// durable operation returns the sticky first cause wrapped in
	// ErrPoisoned). Health only descends; recovery is reopen.
	StoreHealth = storage.Health

	// Metrics is a point-in-time snapshot of a Store's always-on metrics
	// plane, returned by Store.Metrics(): traffic counters, latency and
	// size histograms (with Quantile/Mean/Max accessors), per-shard drain
	// and retrain durations, queue depths, and — on a persistent Store —
	// WAL fsync latency, group-commit cohort sizes, flush/compaction
	// durations, per-segment Bloom probe→pass→hit funnels with observed
	// false-positive rates, and per-plan observed model error against the
	// trained error bound. Serialize with WritePrometheus (text exposition
	// format) or WriteJSON; building the library with -tags noobs
	// compiles the histogram plane out (counters stay real). See
	// StoreOptions.MetricsAddr for the built-in debug HTTP listener.
	Metrics = obs.Snapshot
	// MetricsRegistry is the registry behind a Store's metrics plane
	// (Store.Registry()): embedders can hang their own counters, gauges,
	// histograms, and snapshot-time collectors off the same export plane.
	MetricsRegistry = obs.Registry
	// HistogramSnapshot is one histogram's view inside Metrics: log-bucketed
	// counts with Quantile, Mean, and Max accessors.
	HistogramSnapshot = obs.HistSnapshot

	// Iterator streams a Store.Scan: the snapshot-consistent ascending
	// deduplicated union of every layer (insert buffers, shard snapshots,
	// on-disk segments) over [lo, hi), merged by a k-way loser tree with
	// each source entered at its model-predicted position. Drive it with
	// Next/Key (or NextBatch), reposition with Seek, and always Close it —
	// Close releases pooled state and, on a persistent Store, unpins the
	// storage snapshot so compaction can reclaim superseded segment files.
	Iterator = scan.Iterator[uint64]
	// StringIterator is Iterator for a string-keyed Store's ScanString /
	// ScanStringFrom: the same loser-tree merge instantiated over strings,
	// streaming in codec (byte) order.
	StringIterator = scan.Iterator[string]
)

// Persistent-store health ladder (see StoreHealth).
const (
	HealthOK       = storage.HealthOK
	HealthDegraded = storage.HealthDegraded
	HealthFailed   = storage.HealthFailed
)

// Failure-model sentinels: errors.Is against these classifies a rejected
// durable operation on a persistent Store.
var (
	// ErrStorePoisoned wraps every error from a fail-stop (HealthFailed)
	// engine after a commit-plane fsync failure.
	ErrStorePoisoned = storage.ErrPoisoned
	// ErrStoreDegraded wraps every write rejected by a degraded
	// (read-only, HealthDegraded) engine.
	ErrStoreDegraded = storage.ErrDegraded
)

// Point index (§4): learned hash functions.
type (
	// LearnedHash scales a CDF model into a hash function h(K) = F(K)·M.
	LearnedHash = core.LearnedHash
	// ConflictStats reports slot occupancy under a hash function (Figure 8).
	ConflictStats = core.ConflictStats
)

// Existence index (§5): learned Bloom filters.
type (
	// Classifier is a probabilistic model f(x) ∈ [0,1] over string keys.
	Classifier = core.Classifier
	// LearnedBloom is the classifier + overflow-filter construction (§5.1.1).
	LearnedBloom = core.LearnedBloom
	// ModelHashBloom is the discretized model-hash construction (§5.1.2).
	ModelHashBloom = core.ModelHashBloom
)

// Search strategies (§3.4).
const (
	SearchModelBiased = core.SearchModelBiased
	SearchBinary      = core.SearchBinary
	SearchQuaternary  = core.SearchQuaternary
	SearchExponential = core.SearchExponential
)

// Stage-1 model families (§3.3, §3.7.1).
const (
	TopLinear       = core.TopLinear
	TopMultivariate = core.TopMultivariate
	TopNN           = core.TopNN
)

// Constructors.
var (
	// New trains an RMI over sorted unique keys (Algorithm 1). Stage
	// training runs on a bounded worker pool sized to GOMAXPROCS with
	// results bit-identical to the sequential trainer; single-CPU hosts
	// fall back to the sequential path automatically.
	New = core.New
	// NewWithTrainWorkers trains like New with an explicit worker count
	// (1 = sequential). Serialized results are identical for every count;
	// the knob exists for train-scaling benchmarks and tuning.
	NewWithTrainWorkers = core.NewWithTrainWorkers
	// DefaultConfig returns the paper's default 2-stage shape.
	DefaultConfig = core.DefaultConfig
	// NewString trains a string RMI.
	NewString = core.NewString
	// DefaultStringConfig mirrors Figure 6's learned-index rows.
	DefaultStringConfig = core.DefaultStringConfig
	// NewDelta wraps an RMI with an insert buffer (Appendix D.1).
	NewDelta = core.NewDelta
	// NewStore builds the concurrent sharded serving layer and starts its
	// background merger; Close it when done. Panics on a storage error
	// when StoreOptions.Dir is set — prefer OpenStore for persistence.
	NewStore = serve.New
	// OpenStore builds the serving layer like NewStore but returns engine
	// errors instead of panicking; with StoreOptions.Dir set it opens (or
	// crash-recovers) the persistent store rooted there, serving lookups
	// from deserialized segment models without retraining.
	OpenStore = serve.Open
	// NewStringStore builds a string-keyed Store over the key codec:
	// InsertString/LookupString/ContainsString/ScanString and friends, with
	// the same consistency model as NewStore. Panics on a storage error
	// when StoreOptions.Dir is set — prefer OpenStringStore then.
	NewStringStore = serve.NewString
	// OpenStringStore is NewStringStore returning engine errors; with
	// StoreOptions.Dir set the store persists string keys in version-2
	// segment files and recovers them (WAL replay included) at open.
	OpenStringStore = serve.OpenString
	// NewStringIndex trains a StringIndex over string keys (any order,
	// duplicates dropped): the single-index codec surface — Lookup answers
	// lower-bound positions in byte order, RangeScan answers [lo, hi)
	// position ranges.
	NewStringIndex = core.NewStringIndex
	// KeyPrefix is the codec's order-preserving 8-byte prefix map:
	// a < b implies KeyPrefix(a) <= KeyPrefix(b).
	KeyPrefix = keycodec.Prefix
	// CompositeKey flattens key parts into one order-preserving string
	// (tuple order = byte order), for composite keys over the codec.
	CompositeKey = keycodec.Composite
	// SplitCompositeKey inverts CompositeKey, validating the encoding.
	SplitCompositeKey = keycodec.SplitComposite
	// NewLearnedHash trains a CDF hash targeting a slot count (§4.1).
	NewLearnedHash = core.NewLearnedHash
	// NewLearnedHashFromRMI reuses a trained RMI as the CDF model.
	NewLearnedHashFromRMI = core.NewLearnedHashFromRMI
	// RandomHashFunc is the Murmur-style baseline hash.
	RandomHashFunc = core.RandomHashFunc
	// MeasureConflicts fills a virtual table and reports occupancy.
	MeasureConflicts = core.MeasureConflicts
	// NewLearnedBloom builds the §5.1.1 filter (tunes τ, sizes overflow).
	NewLearnedBloom = core.NewLearnedBloom
	// NewModelHashBloom builds the §5.1.2 filter.
	NewModelHashBloom = core.NewModelHashBloom
	// GridSearch is the LIF auto-tuner (§3.1): trains every candidate and
	// ranks by the objective.
	GridSearch = core.GridSearch
	// DefaultGrid returns the paper's §3.7.1 grid-search space.
	DefaultGrid = core.DefaultGrid
)
