package learnedindex_test

import (
	"slices"
	"testing"

	"learnedindex/internal/core"
)

// BenchmarkCompiledVsInterpreted pins the compiled read path's speedup:
// core.Plan vs the interpreted RMI walk on the 1M-key lognormal dataset,
// single-key and batched.
func BenchmarkCompiledVsInterpreted(b *testing.B) {
	load()
	for _, perLeaf := range []int{2000, 1000, 250} {
		r := core.New(dLogn, core.DefaultConfig(benchN/perLeaf))
		p := r.Plan()
		probes := dProbes["Lognormal"]
		sorted := append([]uint64(nil), probes...)
		slices.Sort(sorted)
		out := make([]int, 512)
		pl := itoa(perLeaf)
		b.Run("interpreted/single/perLeaf"+pl, func(b *testing.B) {
			benchLookups(b, probes, r.SizeBytes(), r.Lookup)
		})
		b.Run("compiled/single/perLeaf"+pl, func(b *testing.B) {
			benchLookups(b, probes, r.SizeBytes(), p.Lookup)
		})
		b.Run("interpreted/batch/perLeaf"+pl, func(b *testing.B) {
			n := 0
			for i := 0; i < b.N; i++ {
				off := (n * 512) & (1<<16 - 1)
				n++
				r.LookupBatchSorted(sorted[off:off+512], out)
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*512), "ns/key")
		})
		b.Run("compiled/batch/perLeaf"+pl, func(b *testing.B) {
			n := 0
			for i := 0; i < b.N; i++ {
				off := (n * 512) & (1<<16 - 1)
				n++
				p.LookupBatchSorted(sorted[off:off+512], out)
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*512), "ns/key")
		})
		b.Run("compiled/batchunsorted/perLeaf"+pl, func(b *testing.B) {
			n := 0
			for i := 0; i < b.N; i++ {
				off := (n * 512) & (1<<16 - 1)
				n++
				p.LookupBatch(probes[off:off+512], out)
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*512), "ns/key")
		})
	}
}
