package learnedindex_test

import (
	"fmt"
	"testing"

	"learnedindex"
	"learnedindex/internal/data"
)

// Scan-subsystem benchmarks: the streaming loser-tree merge over the
// sharded store (with a live buffered-delta layer), across range widths,
// plus the learned COUNT against iterate-and-count. CI runs these at
// -benchtime=100x as a smoke test; BENCH_scan.json carries the measured
// claims.

func scanStore(b *testing.B) (*learnedindex.Store, data.Keys) {
	load()
	st := learnedindex.NewStore(dLogn, learnedindex.Config{},
		learnedindex.StoreOptions{Shards: 8, MergeThreshold: 1 << 30})
	b.Cleanup(func() { st.Close() })
	// A buffered delta layer the merge must carry.
	for _, k := range dProbes["Lognormal"][:4096] {
		st.Insert(k + 1)
	}
	return st, dLogn
}

func BenchmarkStoreScan(b *testing.B) {
	for _, width := range []int{1_000, 64_000} {
		b.Run(fmt.Sprintf("width=%d", width), func(b *testing.B) {
			st, keys := scanStore(b)
			starts := dProbes["Lognormal"]
			buf := make([]uint64, 0, width+4096)
			b.ResetTimer()
			produced := 0
			for i := 0; i < b.N; i++ {
				lo := starts[i%len(starts)]
				hi := scanHi(keys, lo, width)
				buf = st.ScanBatch(lo, hi, buf[:0])
				produced += len(buf)
			}
			b.StopTimer()
			if b.N > 0 {
				b.ReportMetric(float64(produced)/float64(b.N), "keys/scan")
			}
		})
	}
}

func BenchmarkStoreCountRange(b *testing.B) {
	st, keys := scanStore(b)
	starts := dProbes["Lognormal"]
	b.ResetTimer()
	sink := 0
	for i := 0; i < b.N; i++ {
		lo := starts[i%len(starts)]
		sink += st.CountRange(lo, scanHi(keys, lo, 64_000))
	}
	_ = sink
}

func scanHi(keys data.Keys, lo uint64, width int) uint64 {
	p := keys.LowerBound(lo) + width
	if p >= len(keys) {
		return keys[len(keys)-1] + 1
	}
	return keys[p]
}
