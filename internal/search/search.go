// Package search implements the "last mile" search strategies of §3.4.
//
// A learned range index predicts a position and bounds the residual error;
// these routines locate the exact lower bound inside the bounded region. All
// functions return lower_bound semantics: the index in [lo, hi] of the first
// key >= target, where hi may equal len(keys) conceptually (the returned
// position can be one past the last in-range element).
//
// The paper's strategies:
//
//   - Binary: classic binary search (the baseline; "repeatedly reported"
//     fastest for small payloads).
//   - ModelBiasedBinary: binary search whose first middle point is the model
//     prediction.
//   - BiasedQuaternary: three initial split points pos-σ, pos, pos+σ, then
//     quaternary search; exploits the fact that the model predicts the
//     position itself, not just a page.
//   - Exponential: doubling search outward from the prediction; needs no
//     stored error bounds ("assuming a normal distributed error", §3.4).
//   - Interpolation: used inside the fixed-size B-Tree baseline (Figure 5).
package search

// Binary returns the lower bound of target in keys[lo:hi] using classic
// binary search. lo and hi follow half-open [lo, hi) convention.
func Binary(keys []uint64, target uint64, lo, hi int) int {
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if keys[mid] < target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// ModelBiasedBinary is binary search over [lo, hi) whose first probe is the
// model prediction pred instead of the midpoint (§3.4 "Model Biased
// Search"). When the prediction is good the search terminates in far fewer
// probes than log2(hi-lo).
func ModelBiasedBinary(keys []uint64, target uint64, lo, hi, pred int) int {
	if pred < lo {
		pred = lo
	}
	if pred >= hi {
		pred = hi - 1
	}
	if lo >= hi {
		return lo
	}
	if keys[pred] < target {
		lo = pred + 1
	} else {
		hi = pred
	}
	return Binary(keys, target, lo, hi)
}

// BiasedQuaternary implements the paper's biased quaternary search: the
// three initial middle points are pred-sigma, pred, pred+sigma (σ being the
// model's standard error), after which it continues with plain quaternary
// search. On hardware this lets the prefetcher pull all three probe points
// at once; the algorithmic structure is preserved here.
func BiasedQuaternary(keys []uint64, target uint64, lo, hi, pred, sigma int) int {
	if lo >= hi {
		return lo
	}
	if sigma < 1 {
		sigma = 1
	}
	q1, q2, q3 := pred-sigma, pred, pred+sigma
	lo, hi = probe3(keys, target, lo, hi, q1, q2, q3)
	// Continue with standard quaternary search until the range is small,
	// then finish with binary search.
	for hi-lo > 8 {
		quarter := (hi - lo) / 4
		q1, q2, q3 = lo+quarter, lo+2*quarter, lo+3*quarter
		lo, hi = probe3(keys, target, lo, hi, q1, q2, q3)
	}
	return Binary(keys, target, lo, hi)
}

// probe3 narrows [lo, hi) using three ordered probe points, clamping them
// into range first.
func probe3(keys []uint64, target uint64, lo, hi, q1, q2, q3 int) (int, int) {
	clamp := func(x int) int {
		if x < lo {
			return lo
		}
		if x >= hi {
			return hi - 1
		}
		return x
	}
	q1, q2, q3 = clamp(q1), clamp(q2), clamp(q3)
	switch {
	case keys[q1] >= target:
		return lo, q1
	case keys[q3] < target:
		return q3 + 1, hi
	case keys[q2] < target:
		return q2 + 1, q3 + 1 // answer in (q2, q3]
	default:
		return q1 + 1, q2 + 1 // answer in (q1, q2]
	}
}

// Exponential searches outward from pred with doubling steps until the
// target is bracketed, then finishes with binary search. It requires no
// stored error bounds (§3.4).
func Exponential(keys []uint64, target uint64, n, pred int) int {
	if pred < 0 {
		pred = 0
	}
	if pred >= n {
		pred = n - 1
	}
	if n == 0 {
		return 0
	}
	if keys[pred] >= target {
		// search left: find lo with keys[lo] < target
		step := 1
		hi := pred
		lo := pred - step
		for lo >= 0 && keys[lo] >= target {
			hi = lo
			step <<= 1
			lo = pred - step
		}
		if lo < 0 {
			lo = 0
		} else {
			lo++ // keys[lo] < target, answer in (lo, hi]
		}
		return Binary(keys, target, lo, hi)
	}
	// search right: find hi with keys[hi] >= target
	step := 1
	lo := pred + 1
	hi := pred + step
	for hi < n && keys[hi] < target {
		lo = hi + 1
		step <<= 1
		hi = pred + step
	}
	if hi > n-1 {
		hi = n - 1
		if keys[hi] < target {
			return n
		}
	}
	return Binary(keys, target, lo, hi+1)
}

// Interpolation performs interpolation search for the lower bound of target
// in keys[lo:hi), falling back to binary search when the interpolation
// stops converging. Used by the Figure 5 "fixed-size B-Tree with
// interpolation search" baseline.
func Interpolation(keys []uint64, target uint64, lo, hi int) int {
	const maxIter = 32
	h := hi - 1
	for iter := 0; lo < h && iter < maxIter; iter++ {
		kl, kh := keys[lo], keys[h]
		if target <= kl {
			return Binary(keys, target, lo, h+1)
		}
		if target > kh {
			return h + 1
		}
		// position estimate by linear interpolation between endpoints
		span := float64(kh - kl)
		mid := lo + int(float64(target-kl)/span*float64(h-lo))
		if mid <= lo {
			mid = lo + 1
		}
		if mid > h {
			mid = h
		}
		if keys[mid] < target {
			lo = mid + 1
		} else if mid > lo && keys[mid-1] >= target {
			h = mid - 1
		} else {
			return mid
		}
	}
	return Binary(keys, target, lo, h+1)
}

// BoundedWithExpansion searches for the lower bound of target in keys using
// the model's error window [lo, hi], expanding the window when the result
// lies on its boundary — the paper's remedy for non-monotonic models whose
// error bounds only hold for stored keys (§3.4: "we incrementally adjust
// the search area"). This guarantees correct lower-bound semantics for any
// query key.
func BoundedWithExpansion(keys []uint64, target uint64, lo, hi int) int {
	n := len(keys)
	clampWin := func() {
		if lo < 0 {
			lo = 0
		}
		if hi > n {
			hi = n
		}
		if lo > hi {
			lo = hi
		}
	}
	clampWin()
	for {
		pos := Binary(keys, target, lo, hi)
		expanded := false
		if pos == lo && lo > 0 && keys[lo-1] >= target {
			// answer may lie left of the window
			width := hi - lo + 1
			lo -= width * 2
			expanded = true
		}
		if pos == hi && hi < n && (hi == 0 || keys[hi-1] < target) {
			// answer may lie right of the window
			width := hi - lo + 1
			hi += width * 2
			expanded = true
		}
		if !expanded {
			return pos
		}
		clampWin()
	}
}
