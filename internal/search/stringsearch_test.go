package search

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// stringSearchKeys builds a sorted key set with runs of adjacent
// duplicates-removed near-equal keys (shared prefixes, single-byte tails)
// so probes land on dup-adjacent boundaries.
func stringSearchKeys(n int, seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	set := map[string]struct{}{}
	for len(set) < n {
		switch rng.Intn(3) {
		case 0:
			set[fmt.Sprintf("user/%04d", rng.Intn(500))] = struct{}{}
		case 1:
			set[fmt.Sprintf("user/%04d/%c", rng.Intn(500), byte('a'+rng.Intn(4)))] = struct{}{}
		default:
			set[fmt.Sprintf("%c%d", byte('a'+rng.Intn(26)), rng.Intn(1000))] = struct{}{}
		}
	}
	keys := make([]string, 0, n)
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// probesFor derives boundary-stressing probes from the key set: exact
// hits, immediate neighbors (appended NUL, truncated tail, appended high
// byte), and keys outside both ends.
func probesFor(keys []string, rng *rand.Rand, n int) []string {
	probes := make([]string, 0, 4*n+4)
	for i := 0; i < n; i++ {
		k := keys[rng.Intn(len(keys))]
		probes = append(probes, k, k+"\x00", k+"\xff", k[:len(k)-1])
	}
	probes = append(probes, "", "\x00", keys[len(keys)-1]+"z", "\xff\xff")
	return probes
}

// TestStringBinaryDifferential checks StringBinary against
// sort.SearchStrings over full and restricted windows, including empty
// and out-of-range windows.
func TestStringBinaryDifferential(t *testing.T) {
	keys := stringSearchKeys(2000, 1)
	rng := rand.New(rand.NewSource(2))
	for _, p := range probesFor(keys, rng, 500) {
		want := sort.SearchStrings(keys, p)
		if got := StringBinary(keys, p, 0, len(keys)); got != want {
			t.Fatalf("StringBinary(%q)=%d, want %d", p, got, want)
		}
		// Restricted window containing the answer.
		lo := rng.Intn(want + 1)
		hi := want + rng.Intn(len(keys)-want+1)
		if got := StringBinary(keys, p, lo, hi); got != want {
			t.Fatalf("StringBinary(%q, [%d,%d))=%d, want %d", p, lo, hi, got, want)
		}
		// Empty window: returns lo unchanged.
		at := rng.Intn(len(keys) + 1)
		if got := StringBinary(keys, p, at, at); got != at {
			t.Fatalf("StringBinary(%q, empty@%d)=%d", p, at, got)
		}
		// Window strictly left / right of the answer clamps to its edge.
		if want > 1 {
			if got := StringBinary(keys, p, 0, want-1); got != want-1 {
				t.Fatalf("StringBinary(%q, left-of-answer)=%d, want %d", p, got, want-1)
			}
		}
		if want < len(keys)-1 {
			if got := StringBinary(keys, p, want+1, len(keys)); got != want+1 {
				t.Fatalf("StringBinary(%q, right-of-answer)=%d, want %d", p, got, want+1)
			}
		}
	}
}

// TestStringModelBiasedBinaryDifferential drives the biased variant with
// predictions from exact to wildly wrong (including out-of-window): the
// answer must match sort.SearchStrings regardless of the hint.
func TestStringModelBiasedBinaryDifferential(t *testing.T) {
	keys := stringSearchKeys(1500, 3)
	rng := rand.New(rand.NewSource(4))
	for _, p := range probesFor(keys, rng, 300) {
		want := sort.SearchStrings(keys, p)
		for _, pred := range []int{want, want - 1, want + 1, 0, len(keys) - 1, -10, len(keys) + 10, rng.Intn(len(keys))} {
			if got := StringModelBiasedBinary(keys, p, 0, len(keys), pred); got != want {
				t.Fatalf("StringModelBiasedBinary(%q, pred=%d)=%d, want %d", p, pred, got, want)
			}
		}
		if got := StringModelBiasedBinary(keys, p, 7, 7, 7); got != 7 {
			t.Fatalf("empty window: got %d, want 7", got)
		}
	}
}

// TestStringBiasedQuaternaryDifferential covers the quaternary probe
// pattern across prediction errors and sigma values, plus degenerate
// windows.
func TestStringBiasedQuaternaryDifferential(t *testing.T) {
	keys := stringSearchKeys(1500, 5)
	rng := rand.New(rand.NewSource(6))
	for _, p := range probesFor(keys, rng, 300) {
		want := sort.SearchStrings(keys, p)
		for _, sigma := range []int{0, 1, 4, 64, len(keys)} {
			for _, pred := range []int{want, want - sigma, want + sigma, -5, len(keys) + 5, rng.Intn(len(keys))} {
				if got := StringBiasedQuaternary(keys, p, 0, len(keys), pred, sigma); got != want {
					t.Fatalf("StringBiasedQuaternary(%q, pred=%d, sigma=%d)=%d, want %d", p, pred, sigma, got, want)
				}
			}
		}
		if got := StringBiasedQuaternary(keys, p, 3, 3, 3, 1); got != 3 {
			t.Fatalf("empty window: got %d, want 3", got)
		}
	}
}

// TestStringBoundedWithExpansionDifferential starts from windows that do
// NOT contain the answer — the expansion loop must still converge to the
// global lower bound — including empty and fully out-of-range windows.
func TestStringBoundedWithExpansionDifferential(t *testing.T) {
	keys := stringSearchKeys(1200, 7)
	rng := rand.New(rand.NewSource(8))
	for _, p := range probesFor(keys, rng, 300) {
		want := sort.SearchStrings(keys, p)
		windows := [][2]int{
			{0, len(keys)},
			{want, want}, // empty at the answer
			{0, 1},
			{len(keys) - 1, len(keys)},
			{max(0, want-2), max(0, want-1)},           // strictly left
			{min(len(keys), want+1), len(keys)},        // strictly right
			{rng.Intn(len(keys)), rng.Intn(len(keys))}, // arbitrary (maybe inverted)
			{-5, len(keys) + 5},                        // out-of-range bounds clamp
		}
		for _, w := range windows {
			if got := StringBoundedWithExpansion(keys, p, w[0], w[1]); got != want {
				t.Fatalf("StringBoundedWithExpansion(%q, [%d,%d))=%d, want %d", p, w[0], w[1], got, want)
			}
		}
	}
}

// TestStringSearchEmptyAndSingle pins the degenerate arrays.
func TestStringSearchEmptyAndSingle(t *testing.T) {
	if got := StringBinary(nil, "x", 0, 0); got != 0 {
		t.Fatalf("empty array: got %d", got)
	}
	if got := StringBoundedWithExpansion(nil, "x", 0, 0); got != 0 {
		t.Fatalf("empty array expansion: got %d", got)
	}
	one := []string{"m"}
	for _, p := range []string{"a", "m", "z"} {
		want := sort.SearchStrings(one, p)
		if got := StringBinary(one, p, 0, 1); got != want {
			t.Fatalf("single %q: got %d, want %d", p, got, want)
		}
		if got := StringBoundedWithExpansion(one, p, 0, 1); got != want {
			t.Fatalf("single expansion %q: got %d, want %d", p, got, want)
		}
		if got := StringBiasedQuaternary(one, p, 0, 1, 0, 1); got != want {
			t.Fatalf("single quaternary %q: got %d, want %d", p, got, want)
		}
	}
}
