package search

// StringBinary returns the lower bound of target in keys[lo:hi) (strings,
// lexicographic order).
func StringBinary(keys []string, target string, lo, hi int) int {
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if keys[mid] < target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// StringModelBiasedBinary is ModelBiasedBinary over string keys.
func StringModelBiasedBinary(keys []string, target string, lo, hi, pred int) int {
	if pred < lo {
		pred = lo
	}
	if pred >= hi {
		pred = hi - 1
	}
	if lo >= hi {
		return lo
	}
	if keys[pred] < target {
		lo = pred + 1
	} else {
		hi = pred
	}
	return StringBinary(keys, target, lo, hi)
}

// StringBiasedQuaternary is BiasedQuaternary over string keys: initial probe
// points pred-sigma, pred, pred+sigma, then quaternary splitting, finishing
// with binary search (§3.7.2 "Learned QS").
func StringBiasedQuaternary(keys []string, target string, lo, hi, pred, sigma int) int {
	if lo >= hi {
		return lo
	}
	if sigma < 1 {
		sigma = 1
	}
	q1, q2, q3 := pred-sigma, pred, pred+sigma
	lo, hi = stringProbe3(keys, target, lo, hi, q1, q2, q3)
	for hi-lo > 8 {
		quarter := (hi - lo) / 4
		q1, q2, q3 = lo+quarter, lo+2*quarter, lo+3*quarter
		lo, hi = stringProbe3(keys, target, lo, hi, q1, q2, q3)
	}
	return StringBinary(keys, target, lo, hi)
}

func stringProbe3(keys []string, target string, lo, hi, q1, q2, q3 int) (int, int) {
	clamp := func(x int) int {
		if x < lo {
			return lo
		}
		if x >= hi {
			return hi - 1
		}
		return x
	}
	q1, q2, q3 = clamp(q1), clamp(q2), clamp(q3)
	switch {
	case keys[q1] >= target:
		return lo, q1
	case keys[q3] < target:
		return q3 + 1, hi
	case keys[q2] < target:
		return q2 + 1, q3 + 1
	default:
		return q1 + 1, q2 + 1
	}
}

// StringBoundedWithExpansion is BoundedWithExpansion over string keys.
func StringBoundedWithExpansion(keys []string, target string, lo, hi int) int {
	n := len(keys)
	clampWin := func() {
		if lo < 0 {
			lo = 0
		}
		if hi > n {
			hi = n
		}
		if lo > hi {
			lo = hi
		}
	}
	clampWin()
	for {
		pos := StringBinary(keys, target, lo, hi)
		expanded := false
		if pos == lo && lo > 0 && keys[lo-1] >= target {
			width := hi - lo + 1
			lo -= width * 2
			expanded = true
		}
		if pos == hi && hi < n {
			width := hi - lo + 1
			hi += width * 2
			expanded = true
		}
		if !expanded {
			return pos
		}
		clampWin()
	}
}
