package search

import (
	"encoding/binary"
	"sort"
	"testing"
)

// lowerBound is the reference semantics every strategy is fuzzed against:
// sort.Search over keys[lo:hi).
func lowerBound(keys []uint64, target uint64, lo, hi int) int {
	return lo + sort.Search(hi-lo, func(i int) bool { return keys[lo+i] >= target })
}

// verifyOrExpand mirrors core's window-boundary verification: a
// window-restricted result is re-searched with expansion when it sits
// incorrectly on the boundary, which turns any window-correct strategy
// into a globally correct one.
func verifyOrExpand(keys []uint64, target uint64, pos, lo, hi int) int {
	if pos == lo && lo > 0 && keys[lo-1] >= target {
		return BoundedWithExpansion(keys, target, 0, lo+1)
	}
	if pos == hi && hi < len(keys) {
		return BoundedWithExpansion(keys, target, hi-1, len(keys))
	}
	return pos
}

// keysFromBytes derives a sorted (duplicates allowed) key array from raw
// fuzz bytes: one key per 2-byte chunk, kept small so duplicate-adjacent
// targets and boundary collisions are common.
func keysFromBytes(raw []byte) []uint64 {
	keys := make([]uint64, 0, len(raw)/2)
	for i := 0; i+2 <= len(raw); i += 2 {
		keys = append(keys, uint64(binary.LittleEndian.Uint16(raw[i:])))
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// FuzzLowerBoundSearch differentially fuzzes every last-mile strategy —
// Branchless, Binary, ModelBiasedBinary/Branchless, Interpolated,
// BiasedQuaternary (+verify), and Exponential — against sort.Search
// lower-bound semantics, on random keys and windows, including empty
// windows, duplicate-adjacent targets, and out-of-range probes.
func FuzzLowerBoundSearch(f *testing.F) {
	f.Add([]byte{1, 0, 1, 0, 2, 0, 9, 0}, uint64(2), uint(0), uint(4), uint(1), uint(1))
	f.Add([]byte{}, uint64(5), uint(0), uint(0), uint(0), uint(0))                         // empty keys
	f.Add([]byte{7, 0, 7, 0, 7, 0}, uint64(7), uint(1), uint(1), uint(0), uint(2))         // empty window on dups
	f.Add([]byte{0, 0, 255, 255}, uint64(1<<40), uint(0), uint(2), uint(9), uint(3))       // out-of-range probe
	f.Add([]byte{5, 0, 5, 0, 6, 0, 6, 0}, uint64(6), uint(1), uint(3), uint(2), uint(1))   // duplicate-adjacent
	f.Add([]byte{1, 0, 2, 0, 3, 0, 4, 0}, uint64(0), uint(3), uint(4), uint(200), uint(0)) // window right of answer

	f.Fuzz(func(t *testing.T, raw []byte, target uint64, loRaw, hiRaw, predRaw, sigmaRaw uint) {
		keys := keysFromBytes(raw)
		n := len(keys)
		lo := int(loRaw % uint(n+1))
		hi := int(hiRaw % uint(n+1))
		if lo > hi {
			lo, hi = hi, lo
		}
		pred := int(predRaw%uint(n+2)) - 1 // may fall outside [lo, hi)
		sigma := int(sigmaRaw % 8)

		global := lowerBound(keys, target, 0, n)
		window := lowerBound(keys, target, lo, hi)

		// Window-restricted strategies must agree with the windowed
		// reference — and with each other.
		if got := Binary(keys, target, lo, hi); got != window {
			t.Fatalf("Binary(%v, %d, [%d,%d)) = %d, want %d", keys, target, lo, hi, got, window)
		}
		if got := Branchless(keys, target, lo, hi); got != window {
			t.Fatalf("Branchless(%v, %d, [%d,%d)) = %d, want %d", keys, target, lo, hi, got, window)
		}
		if got := ModelBiasedBinary(keys, target, lo, hi, pred); got != window {
			t.Fatalf("ModelBiasedBinary(pred=%d) = %d, want %d", pred, got, window)
		}
		if got := ModelBiasedBranchless(keys, target, lo, hi, pred); got != window {
			t.Fatalf("ModelBiasedBranchless(pred=%d) = %d, want %d", pred, got, window)
		}
		if got := Interpolated(keys, target, lo, hi); got != window {
			t.Fatalf("Interpolated([%d,%d)) = %d, want %d", lo, hi, got, window)
		}
		if got := BiasedQuaternary(keys, target, lo, hi, pred, sigma); got != window {
			t.Fatalf("BiasedQuaternary(pred=%d, sigma=%d) = %d, want %d", pred, sigma, got, window)
		}

		// Globally correct strategies must resolve the true lower bound
		// from any window or prediction.
		if got := BoundedWithExpansion(keys, target, lo, hi); got != global {
			t.Fatalf("BoundedWithExpansion([%d,%d)) = %d, want %d", lo, hi, got, global)
		}
		if got := BranchlessWithExpansion(keys, target, lo, hi); got != global {
			t.Fatalf("BranchlessWithExpansion([%d,%d)) = %d, want %d", lo, hi, got, global)
		}
		if got := verifyOrExpand(keys, target, BiasedQuaternary(keys, target, lo, hi, pred, sigma), lo, hi); got != global {
			t.Fatalf("BiasedQuaternary+verify = %d, want %d", got, global)
		}
		if got := verifyOrExpand(keys, target, ModelBiasedBranchless(keys, target, lo, hi, pred), lo, hi); got != global {
			t.Fatalf("ModelBiasedBranchless+verify = %d, want %d", got, global)
		}
		if n > 0 {
			if got := Exponential(keys, target, n, pred); got != global {
				t.Fatalf("Exponential(pred=%d) = %d, want %d", pred, got, global)
			}
		}
	})
}
