package search

// Branchless is a lower-bound search over keys[lo:hi) whose inner loop
// carries no data-dependent branch: each iteration halves the candidate
// length and conditionally advances the base with a compare that the
// compiler lowers to a conditional move. With no branch to mispredict, the
// loop's cost is a fixed ~log2(hi-lo) dependent loads — the shape the
// compiled read path (core.Plan) wants, where the error window is already
// tiny and a single mispredict would dominate it.
//
// Results are identical to Binary on every input (pinned by unit test and
// FuzzLowerBoundSearch).
func Branchless(keys []uint64, target uint64, lo, hi int) int {
	base := lo
	n := hi - lo
	if n <= 0 {
		return lo
	}
	for n > 1 {
		half := n >> 1
		// Compiled to CMOV: no branch on key data.
		cur := base
		if keys[cur+half-1] < target {
			cur += half
		}
		base = cur
		n -= half
	}
	if keys[base] < target {
		base++
	}
	return base
}

// ModelBiasedBranchless is ModelBiasedBinary with the post-probe refinement
// done branchlessly: the first probe is the model prediction, then the
// surviving half is resolved by Branchless. Identical results to
// ModelBiasedBinary on every input.
func ModelBiasedBranchless(keys []uint64, target uint64, lo, hi, pred int) int {
	if pred < lo {
		pred = lo
	}
	if pred >= hi {
		pred = hi - 1
	}
	if lo >= hi {
		return lo
	}
	if keys[pred] < target {
		lo = pred + 1
	} else {
		hi = pred
	}
	return Branchless(keys, target, lo, hi)
}

// Interpolated is a lower-bound search over keys[lo:hi) that picks probe
// points by linear interpolation between the window endpoints' key values
// instead of bisecting: on locally smooth data (what a well-fit leaf model
// implies about its window) each probe cuts the window by a large factor,
// so the dependent cache-miss chain is 2–3 loads instead of log2(hi-lo).
// When interpolation stops converging the remainder is finished by
// Branchless. Results are identical to Binary on every input (pinned by
// unit test and FuzzLowerBoundSearch).
func Interpolated(keys []uint64, target uint64, lo, hi int) int {
	const maxIter = 8 // interpolation beyond this means adversarial data
	h := hi - 1
	for iter := 0; lo < h && iter < maxIter; iter++ {
		kl, kh := keys[lo], keys[h]
		if target <= kl {
			return lo
		}
		if target > kh {
			return h + 1
		}
		// Position estimate by linear interpolation between endpoints,
		// nudged off the endpoints so every probe shrinks the window.
		span := float64(kh - kl)
		mid := lo + int(float64(target-kl)/span*float64(h-lo))
		if mid <= lo {
			mid = lo + 1
		}
		if mid > h {
			mid = h
		}
		if keys[mid] < target {
			lo = mid + 1
		} else if mid > lo && keys[mid-1] >= target {
			h = mid - 1
		} else {
			return mid
		}
	}
	return Branchless(keys, target, lo, h+1)
}

// BranchlessWithExpansion is BoundedWithExpansion with the per-window
// search done by Branchless: globally correct lower-bound semantics for any
// query key, expanding the window whenever the result sits incorrectly on
// its boundary. Identical results to BoundedWithExpansion on every input.
func BranchlessWithExpansion(keys []uint64, target uint64, lo, hi int) int {
	n := len(keys)
	clampWin := func() {
		if lo < 0 {
			lo = 0
		}
		if hi > n {
			hi = n
		}
		if lo > hi {
			lo = hi
		}
	}
	clampWin()
	for {
		pos := Branchless(keys, target, lo, hi)
		expanded := false
		if pos == lo && lo > 0 && keys[lo-1] >= target {
			width := hi - lo + 1
			lo -= width * 2
			expanded = true
		}
		if pos == hi && hi < n && (hi == 0 || keys[hi-1] < target) {
			width := hi - lo + 1
			hi += width * 2
			expanded = true
		}
		if !expanded {
			return pos
		}
		clampWin()
	}
}
