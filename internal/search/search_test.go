package search

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// refLowerBound is the oracle.
func refLowerBound(keys []uint64, target uint64) int {
	return sort.Search(len(keys), func(i int) bool { return keys[i] >= target })
}

func sortedKeys(n int, seed int64) []uint64 {
	rng := rand.New(rand.NewSource(seed))
	m := make(map[uint64]struct{}, n)
	for len(m) < n {
		m[rng.Uint64()%(uint64(n)*100)] = struct{}{}
	}
	out := make([]uint64, 0, n)
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestBinaryMatchesOracle(t *testing.T) {
	keys := sortedKeys(5000, 1)
	for _, target := range probeSet(keys, 1) {
		want := refLowerBound(keys, target)
		if got := Binary(keys, target, 0, len(keys)); got != want {
			t.Fatalf("Binary(%d) = %d, want %d", target, got, want)
		}
	}
}

// probeSet mixes existing keys, neighbors, extremes, and random values.
func probeSet(keys []uint64, seed int64) []uint64 {
	rng := rand.New(rand.NewSource(seed))
	probes := []uint64{0, keys[0], keys[len(keys)-1], keys[len(keys)-1] + 1, ^uint64(0)}
	for i := 0; i < 2000; i++ {
		k := keys[rng.Intn(len(keys))]
		probes = append(probes, k, k+1, k-1, rng.Uint64()%(keys[len(keys)-1]+10))
	}
	return probes
}

func TestModelBiasedBinaryMatchesOracle(t *testing.T) {
	keys := sortedKeys(5000, 2)
	rng := rand.New(rand.NewSource(3))
	for _, target := range probeSet(keys, 2) {
		want := refLowerBound(keys, target)
		// Any prediction — even absurd — must not break correctness.
		for _, pred := range []int{0, len(keys) - 1, want, want + rng.Intn(100) - 50, rng.Intn(len(keys))} {
			if got := ModelBiasedBinary(keys, target, 0, len(keys), pred); got != want {
				t.Fatalf("ModelBiasedBinary(%d, pred=%d) = %d, want %d", target, pred, got, want)
			}
		}
	}
}

func TestBiasedQuaternaryMatchesOracle(t *testing.T) {
	keys := sortedKeys(5000, 4)
	rng := rand.New(rand.NewSource(5))
	for _, target := range probeSet(keys, 4) {
		want := refLowerBound(keys, target)
		for _, sigma := range []int{1, 8, 64, 1024} {
			pred := want + rng.Intn(2*sigma+1) - sigma
			if got := BiasedQuaternary(keys, target, 0, len(keys), pred, sigma); got != want {
				t.Fatalf("BiasedQuaternary(%d, pred=%d, σ=%d) = %d, want %d", target, pred, sigma, got, want)
			}
		}
	}
}

func TestExponentialMatchesOracle(t *testing.T) {
	keys := sortedKeys(5000, 6)
	rng := rand.New(rand.NewSource(7))
	for _, target := range probeSet(keys, 6) {
		want := refLowerBound(keys, target)
		for _, pred := range []int{0, len(keys) - 1, want, want + rng.Intn(1000) - 500} {
			if got := Exponential(keys, target, len(keys), pred); got != want {
				t.Fatalf("Exponential(%d, pred=%d) = %d, want %d", target, pred, got, want)
			}
		}
	}
}

func TestInterpolationMatchesOracle(t *testing.T) {
	keys := sortedKeys(5000, 8)
	for _, target := range probeSet(keys, 8) {
		want := refLowerBound(keys, target)
		if got := Interpolation(keys, target, 0, len(keys)); got != want {
			t.Fatalf("Interpolation(%d) = %d, want %d", target, got, want)
		}
	}
}

func TestInterpolationSkewedData(t *testing.T) {
	// Heavy skew is interpolation search's worst case; must stay correct.
	keys := make([]uint64, 0, 1000)
	v := uint64(1)
	for i := 0; i < 1000; i++ {
		keys = append(keys, v)
		v += uint64(i*i + 1)
	}
	for _, target := range probeSet(keys, 9) {
		want := refLowerBound(keys, target)
		if got := Interpolation(keys, target, 0, len(keys)); got != want {
			t.Fatalf("Interpolation(%d) = %d, want %d", target, got, want)
		}
	}
}

func TestBoundedWithExpansionCorrectEvenWithWrongWindow(t *testing.T) {
	keys := sortedKeys(3000, 10)
	rng := rand.New(rand.NewSource(11))
	for _, target := range probeSet(keys, 10) {
		want := refLowerBound(keys, target)
		// Windows that may exclude the answer entirely.
		for i := 0; i < 5; i++ {
			lo := rng.Intn(len(keys))
			hi := lo + rng.Intn(50)
			if got := BoundedWithExpansion(keys, target, lo, hi); got != want {
				t.Fatalf("BoundedWithExpansion(%d, [%d,%d)) = %d, want %d", target, lo, hi, got, want)
			}
		}
	}
}

func TestSearchEmptyAndSingle(t *testing.T) {
	if Binary(nil, 5, 0, 0) != 0 {
		t.Fatal("empty binary")
	}
	one := []uint64{42}
	for _, target := range []uint64{0, 42, 100} {
		want := refLowerBound(one, target)
		if got := Binary(one, target, 0, 1); got != want {
			t.Fatalf("Binary single: got %d want %d", got, want)
		}
		if got := Exponential(one, target, 1, 0); got != want {
			t.Fatalf("Exponential single: got %d want %d", got, want)
		}
		if got := BoundedWithExpansion(one, target, 0, 1); got != want {
			t.Fatalf("BoundedWithExpansion single: got %d want %d", got, want)
		}
		if got := Interpolation(one, target, 0, 1); got != want {
			t.Fatalf("Interpolation single: got %d want %d", got, want)
		}
	}
}

func TestDuplicateRuns(t *testing.T) {
	// Lower bound must point at the first of a duplicate run.
	keys := []uint64{1, 5, 5, 5, 9, 9, 12}
	for _, strat := range []struct {
		name string
		fn   func(target uint64) int
	}{
		{"binary", func(x uint64) int { return Binary(keys, x, 0, len(keys)) }},
		{"biased", func(x uint64) int { return ModelBiasedBinary(keys, x, 0, len(keys), 3) }},
		{"quaternary", func(x uint64) int { return BiasedQuaternary(keys, x, 0, len(keys), 3, 2) }},
		{"exponential", func(x uint64) int { return Exponential(keys, x, len(keys), 3) }},
		{"interpolation", func(x uint64) int { return Interpolation(keys, x, 0, len(keys)) }},
	} {
		if got := strat.fn(5); got != 1 {
			t.Fatalf("%s: lower bound of 5 = %d, want 1", strat.name, got)
		}
		if got := strat.fn(9); got != 4 {
			t.Fatalf("%s: lower bound of 9 = %d, want 4", strat.name, got)
		}
	}
}

// Property: all strategies agree with the oracle on random inputs.
func TestQuickAllStrategiesAgree(t *testing.T) {
	f := func(raw []uint64, target uint64, predSeed uint8) bool {
		if len(raw) == 0 {
			return true
		}
		sort.Slice(raw, func(i, j int) bool { return raw[i] < raw[j] })
		want := refLowerBound(raw, target)
		pred := int(predSeed) % len(raw)
		return Binary(raw, target, 0, len(raw)) == want &&
			ModelBiasedBinary(raw, target, 0, len(raw), pred) == want &&
			BiasedQuaternary(raw, target, 0, len(raw), pred, 1+int(predSeed)%7) == want &&
			Exponential(raw, target, len(raw), pred) == want &&
			Interpolation(raw, target, 0, len(raw)) == want &&
			BoundedWithExpansion(raw, target, pred, pred+1) == want
	}
	cfg := &quick.Config{MaxCount: 3000}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestStringSearchMatchesOracle(t *testing.T) {
	keys := []string{"aa", "ab", "ba", "bb", "ca", "cb", "da"}
	oracle := func(target string) int {
		return sort.SearchStrings(keys, target)
	}
	probes := []string{"", "a", "aa", "ab", "abc", "b", "bz", "da", "zz"}
	for _, p := range probes {
		want := oracle(p)
		if got := StringBinary(keys, p, 0, len(keys)); got != want {
			t.Fatalf("StringBinary(%q) = %d, want %d", p, got, want)
		}
		for pred := 0; pred < len(keys); pred++ {
			if got := StringModelBiasedBinary(keys, p, 0, len(keys), pred); got != want {
				t.Fatalf("StringModelBiasedBinary(%q, pred=%d) = %d, want %d", p, pred, got, want)
			}
			if got := StringBiasedQuaternary(keys, p, 0, len(keys), pred, 2); got != want {
				t.Fatalf("StringBiasedQuaternary(%q, pred=%d) = %d, want %d", p, pred, got, want)
			}
			if got := StringBoundedWithExpansion(keys, p, pred, pred+1); got != want {
				t.Fatalf("StringBoundedWithExpansion(%q, win=%d) = %d, want %d", p, pred, got, want)
			}
		}
	}
}

func BenchmarkBinary(b *testing.B) {
	keys := sortedKeys(1_000_000, 1)
	probes := probeSet(keys, 2)
	b.ResetTimer()
	var s int
	for i := 0; i < b.N; i++ {
		s += Binary(keys, probes[i%len(probes)], 0, len(keys))
	}
	sink = s
}

func BenchmarkModelBiasedPerfectPrediction(b *testing.B) {
	keys := sortedKeys(1_000_000, 1)
	b.ResetTimer()
	var s int
	for i := 0; i < b.N; i++ {
		idx := i % len(keys)
		lo, hi := idx-8, idx+8
		if lo < 0 {
			lo = 0
		}
		if hi > len(keys) {
			hi = len(keys)
		}
		s += ModelBiasedBinary(keys, keys[idx], lo, hi, idx)
	}
	sink = s
}

var sink int
