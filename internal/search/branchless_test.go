package search

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestBranchlessIdenticalToBinary is the defining contract: Branchless and
// Binary return the same position on every (keys, target, window) input,
// windows included.
func TestBranchlessIdenticalToBinary(t *testing.T) {
	keys := sortedKeys(5000, 21)
	rng := rand.New(rand.NewSource(22))
	for _, target := range probeSet(keys, 21) {
		if got, want := Branchless(keys, target, 0, len(keys)), Binary(keys, target, 0, len(keys)); got != want {
			t.Fatalf("Branchless(%d) = %d, Binary = %d", target, got, want)
		}
		for i := 0; i < 4; i++ {
			lo := rng.Intn(len(keys) + 1)
			hi := lo + rng.Intn(len(keys)+1-lo)
			if got, want := Branchless(keys, target, lo, hi), Binary(keys, target, lo, hi); got != want {
				t.Fatalf("Branchless(%d, [%d,%d)) = %d, Binary = %d", target, lo, hi, got, want)
			}
		}
	}
}

func TestBranchlessEmptyAndSingle(t *testing.T) {
	if Branchless(nil, 5, 0, 0) != 0 {
		t.Fatal("empty branchless")
	}
	one := []uint64{42}
	for _, target := range []uint64{0, 42, 100} {
		if got, want := Branchless(one, target, 0, 1), Binary(one, target, 0, 1); got != want {
			t.Fatalf("Branchless single(%d): got %d want %d", target, got, want)
		}
	}
	// Empty window inside a non-empty array.
	keys := []uint64{1, 3, 5}
	for lo := 0; lo <= 3; lo++ {
		if got := Branchless(keys, 4, lo, lo); got != lo {
			t.Fatalf("empty window at %d: got %d", lo, got)
		}
	}
}

func TestBranchlessDuplicateRuns(t *testing.T) {
	keys := []uint64{1, 5, 5, 5, 9, 9, 12}
	if got := Branchless(keys, 5, 0, len(keys)); got != 1 {
		t.Fatalf("lower bound of 5 = %d, want 1", got)
	}
	if got := Branchless(keys, 9, 0, len(keys)); got != 4 {
		t.Fatalf("lower bound of 9 = %d, want 4", got)
	}
}

func TestQuickBranchlessVariantsAgree(t *testing.T) {
	f := func(raw []uint64, target uint64, predSeed uint8) bool {
		if len(raw) == 0 {
			return true
		}
		for i := 1; i < len(raw); i++ {
			for j := i; j > 0 && raw[j] < raw[j-1]; j-- {
				raw[j], raw[j-1] = raw[j-1], raw[j]
			}
		}
		want := refLowerBound(raw, target)
		pred := int(predSeed) % len(raw)
		return Branchless(raw, target, 0, len(raw)) == want &&
			ModelBiasedBranchless(raw, target, 0, len(raw), pred) == want &&
			BranchlessWithExpansion(raw, target, pred, pred+1) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBranchless(b *testing.B) {
	keys := sortedKeys(1_000_000, 1)
	probes := probeSet(keys, 2)
	b.ResetTimer()
	var s int
	for i := 0; i < b.N; i++ {
		s += Branchless(keys, probes[i%len(probes)], 0, len(keys))
	}
	sink = s
}

// BenchmarkBranchlessWindow measures the regime the compiled plan runs in:
// tiny model-error windows where a single mispredict would dominate.
func BenchmarkBranchlessWindow(b *testing.B) {
	keys := sortedKeys(1_000_000, 1)
	b.Run("branchless", func(b *testing.B) {
		var s int
		for i := 0; i < b.N; i++ {
			idx := i % (len(keys) - 64)
			s += Branchless(keys, keys[idx+17], idx, idx+64)
		}
		sink = s
	})
	b.Run("binary", func(b *testing.B) {
		var s int
		for i := 0; i < b.N; i++ {
			idx := i % (len(keys) - 64)
			s += Binary(keys, keys[idx+17], idx, idx+64)
		}
		sink = s
	})
}
