// Package fast implements a FAST-like architecture-sensitive search tree
// (Kim et al., SIGMOD 2010 [44]), the Figure 5 "FAST" baseline.
//
// FAST linearizes a binary search tree into a breadth-first implicit array
// ordered so that cache-line-sized and page-sized subtrees are contiguous,
// and traverses it branch-free: every comparison turns into arithmetic on
// the child index rather than a taken/not-taken branch ("transform control
// dependencies to memory dependencies", §2.1 footnote). FAST requires the
// allocated tree to be a power of two, "which can lead to significantly
// larger indexes" (§3.7.1) — the property that makes it 1024MB in Figure 5.
//
// We reproduce both properties in pure Go: an implicit, padded,
// power-of-two complete binary tree over the key array, traversed with a
// branch-free loop (conditional expressed as arithmetic on a comparison
// result). SIMD blocking is a hardware intrinsic we cannot express in
// stdlib Go; the layout and algorithmic costs are preserved.
package fast

import "math"

// Tree is an implicit complete binary search tree in breadth-first order,
// padded to a full power-of-two tree as FAST requires.
type Tree struct {
	keys   []uint64 // the indexed sorted array
	tree   []uint64 // BFS-linearized complete tree, padded with +inf keys
	perm   []int32  // tree slot -> key position, -1 for padding
	levels int
}

// New builds the FAST-like tree over sorted keys.
func New(keys []uint64) *Tree {
	n := len(keys)
	t := &Tree{keys: keys}
	if n == 0 {
		return t
	}
	levels := 1
	for (1<<levels)-1 < n {
		levels++
	}
	size := (1 << levels) - 1
	t.levels = levels
	t.tree = make([]uint64, size)
	t.perm = make([]int32, size)
	for i := range t.tree {
		t.tree[i] = math.MaxUint64
		t.perm[i] = -1
	}
	// Fill via in-order traversal of the implicit complete tree: the i-th
	// in-order slot receives the i-th key; padding slots keep +inf.
	idx := 0
	var fill func(node int)
	fill = func(node int) {
		if node >= size {
			return
		}
		fill(2*node + 1)
		if idx < n {
			t.tree[node] = keys[idx]
			t.perm[node] = int32(idx)
			idx++
		}
		fill(2*node + 2)
	}
	fill(0)
	return t
}

// Lookup returns the lower-bound position of key: the index of the first
// key >= key, or len(keys) if none. The descent is branch-free in the FAST
// style: the comparison result is converted to 0/1 and used arithmetically
// to pick the child.
func (t *Tree) Lookup(key uint64) int {
	if len(t.keys) == 0 {
		return 0
	}
	node := 0
	best := len(t.keys) // smallest position with keys[pos] >= key seen so far
	for node < len(t.tree) {
		v := t.tree[node]
		p := t.perm[node]
		// ge = 1 if v >= key else 0, computed without a branch.
		var ge int
		if v >= key { // compiled to CMOV/SETcc; no data-dependent branch target
			ge = 1
		}
		if ge == 1 && p >= 0 && int(p) < best {
			best = int(p)
		}
		// left child when v >= key, right child otherwise:
		// child = 2*node + 1 + (1-ge)
		node = 2*node + 2 - ge
	}
	return best
}

// Contains reports whether key is present.
func (t *Tree) Contains(key uint64) bool {
	p := t.Lookup(key)
	return p < len(t.keys) && t.keys[p] == key
}

// SizeBytes returns the footprint of the padded tree: 8 bytes per tree key
// plus 4 bytes per position entry. The power-of-two padding is charged in
// full, as the paper does ("the FAST index is big because of the alignment
// requirement", §3.7.1).
func (t *Tree) SizeBytes() int {
	return len(t.tree)*8 + len(t.perm)*4
}

// Levels returns the height of the implicit tree.
func (t *Tree) Levels() int { return t.levels }
