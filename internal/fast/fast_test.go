package fast

import (
	"sort"
	"testing"
	"testing/quick"

	"learnedindex/internal/data"
)

func oracle(keys []uint64, k uint64) int {
	return sort.Search(len(keys), func(i int) bool { return keys[i] >= k })
}

func TestLookupMatchesOracle(t *testing.T) {
	keys := data.Lognormal(10_000, 0, 2, 1_000_000_000, 1)
	tr := New(keys)
	probes := append(data.SampleExisting(keys, 2000, 2), data.SampleMissing(keys, 500, 3)...)
	probes = append(probes, 0, keys[0], keys[len(keys)-1], keys[len(keys)-1]+1, ^uint64(0))
	for _, p := range probes {
		want := oracle(keys, p)
		if got := tr.Lookup(p); got != want {
			t.Fatalf("Lookup(%d) = %d, want %d", p, got, want)
		}
	}
}

func TestContains(t *testing.T) {
	keys := data.Dense(257, 100, 7)
	tr := New(keys)
	for _, k := range keys {
		if !tr.Contains(k) {
			t.Fatalf("missing %d", k)
		}
		if tr.Contains(k + 1) {
			t.Fatalf("phantom %d", k+1)
		}
	}
}

func TestPowerOfTwoPadding(t *testing.T) {
	// FAST pads to a full tree: "always requires to allocate memory in the
	// power of 2" — n=1025 keys needs a 2047-slot tree.
	keys := data.Dense(1025, 0, 2)
	tr := New(keys)
	want := 2047*8 + 2047*4
	if tr.SizeBytes() != want {
		t.Fatalf("SizeBytes = %d, want %d", tr.SizeBytes(), want)
	}
	if tr.Levels() != 11 {
		t.Fatalf("Levels = %d, want 11", tr.Levels())
	}
}

func TestPaddingOverheadGrows(t *testing.T) {
	// Just past a power of two, the padded tree nearly doubles — the reason
	// Figure 5 reports FAST at 1024MB.
	atPow := New(data.Dense(1023, 0, 1)).SizeBytes()
	pastPow := New(data.Dense(1025, 0, 1)).SizeBytes()
	if pastPow < atPow*18/10 {
		t.Fatalf("expected ~2x blowup past power of two: %d vs %d", atPow, pastPow)
	}
}

func TestEmptyAndSingle(t *testing.T) {
	if New(nil).Lookup(5) != 0 {
		t.Fatal("empty")
	}
	tr := New([]uint64{9})
	if tr.Lookup(5) != 0 || tr.Lookup(9) != 0 || tr.Lookup(10) != 1 {
		t.Fatal("single")
	}
}

func TestQuick(t *testing.T) {
	f := func(raw []uint64, probe uint64) bool {
		sort.Slice(raw, func(i, j int) bool { return raw[i] < raw[j] })
		keys := raw[:0]
		var prev uint64
		for i, k := range raw {
			if i == 0 || k != prev {
				keys = append(keys, k)
				prev = k
			}
		}
		tr := New(keys)
		return tr.Lookup(probe) == oracle(keys, probe)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxKeyBoundary(t *testing.T) {
	// Padding uses MaxUint64; a stored MaxUint64 key must still be found.
	keys := []uint64{1, 2, ^uint64(0)}
	tr := New(keys)
	if got := tr.Lookup(^uint64(0)); got != 2 {
		t.Fatalf("Lookup(max) = %d, want 2", got)
	}
}

func BenchmarkLookup(b *testing.B) {
	keys := data.Lognormal(1_000_000, 0, 2, 1_000_000_000, 1)
	tr := New(keys)
	probes := data.SampleExisting(keys, 1<<16, 2)
	b.ResetTimer()
	var s int
	for i := 0; i < b.N; i++ {
		s += tr.Lookup(probes[i&(1<<16-1)])
	}
	sink = s
}

var sink int
