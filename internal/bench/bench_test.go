package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestTimeLookupsPositive(t *testing.T) {
	probes := []uint64{1, 2, 3, 4}
	d := TimeLookups(probes, 2, func(k uint64) int { return int(k) })
	if d < 0 {
		t.Fatalf("negative duration %v", d)
	}
}

func TestTimeLookupsEmpty(t *testing.T) {
	if TimeLookups(nil, 1, func(uint64) int { return 0 }) != 0 {
		t.Fatal("empty probes should time to zero")
	}
	if TimeStringLookups(nil, 1, func(string) int { return 0 }) != 0 {
		t.Fatal("empty string probes should time to zero")
	}
}

func TestTimeLookupsMeasuresWork(t *testing.T) {
	probes := make([]uint64, 64)
	slow := TimeLookups(probes, 1, func(uint64) int {
		time.Sleep(50 * time.Microsecond)
		return 0
	})
	fast := TimeLookups(probes, 1, func(uint64) int { return 0 })
	if slow < 10*fast {
		t.Fatalf("slow fn (%v) should dwarf fast fn (%v)", slow, fast)
	}
}

func TestTimeStringLookups(t *testing.T) {
	d := TimeStringLookups([]string{"a", "b"}, 3, func(s string) int { return len(s) })
	if d < 0 {
		t.Fatal("negative")
	}
}

func TestMB(t *testing.T) {
	if MB(1<<20) != "1.00" {
		t.Fatalf("MB(1MiB) = %s", MB(1<<20))
	}
	if MB(1<<19) != "0.50" {
		t.Fatalf("MB(0.5MiB) = %s", MB(1<<19))
	}
}

func TestFactor(t *testing.T) {
	if Factor(2) != "(2.00x)" || Factor(0.25) != "(0.25x)" {
		t.Fatal("factor format wrong")
	}
}

func TestTableRender(t *testing.T) {
	var buf bytes.Buffer
	tbl := &Table{
		Title:   "demo",
		Headers: []string{"col1", "column-two"},
	}
	tbl.Add("a", "x")
	tbl.Add("longer-cell", "y")
	tbl.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "== demo ==") {
		t.Fatal("missing title")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	// Column alignment: both data rows start their second column at the
	// same offset.
	idx1 := strings.Index(lines[3], "x")
	idx2 := strings.Index(lines[4], "y")
	if idx1 != idx2 {
		t.Fatalf("misaligned columns:\n%s", out)
	}
}

func TestTableRaggedRows(t *testing.T) {
	var buf bytes.Buffer
	tbl := &Table{Headers: []string{"a", "b"}}
	tbl.Add("1", "2", "extra") // more cells than headers must not panic
	tbl.Add("1")               // fewer cells must not panic
	tbl.Render(&buf)
	if buf.Len() == 0 {
		t.Fatal("nothing rendered")
	}
}
