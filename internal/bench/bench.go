// Package bench is the measurement harness behind cmd/lix-bench and the
// EXPERIMENTS.md tables: nanosecond-scale lookup timing with warm-up,
// size accounting, and fixed-width table rendering that mirrors the paper's
// figure layout (value plus "(x.xx×)" factor against a reference row).
package bench

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// TimeLookups measures the mean latency of fn over the probes, after a
// warm-up pass, amortized over `rounds` full passes. The accumulated sink
// defeats dead-code elimination.
func TimeLookups(probes []uint64, rounds int, fn func(uint64) int) time.Duration {
	if len(probes) == 0 {
		return 0
	}
	if rounds < 1 {
		rounds = 1
	}
	var sink int
	for _, p := range probes { // warm-up
		sink += fn(p)
	}
	start := time.Now()
	for r := 0; r < rounds; r++ {
		for _, p := range probes {
			sink += fn(p)
		}
	}
	el := time.Since(start)
	use(sink)
	return el / time.Duration(rounds*len(probes))
}

// TimeStringLookups is TimeLookups for string keys.
func TimeStringLookups(probes []string, rounds int, fn func(string) int) time.Duration {
	if len(probes) == 0 {
		return 0
	}
	if rounds < 1 {
		rounds = 1
	}
	var sink int
	for _, p := range probes {
		sink += fn(p)
	}
	start := time.Now()
	for r := 0; r < rounds; r++ {
		for _, p := range probes {
			sink += fn(p)
		}
	}
	el := time.Since(start)
	use(sink)
	return el / time.Duration(rounds*len(probes))
}

var sinkBox int

//go:noinline
func use(v int) { sinkBox += v }

// MB formats bytes as megabytes with two decimals.
func MB(bytes int) string { return fmt.Sprintf("%.2f", float64(bytes)/(1<<20)) }

// Factor renders v/ref as the paper's "(x.xx×)" annotations (speedup when
// ref/v, size factor when v/ref — caller picks the ratio).
func Factor(ratio float64) string { return fmt.Sprintf("(%.2fx)", ratio) }

// Table renders fixed-width rows.
type Table struct {
	Headers []string
	Rows    [][]string
	Title   string
}

// Add appends a row.
func (t *Table) Add(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	if t.Title != "" {
		fmt.Fprintf(w, "\n== %s ==\n", t.Title)
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, strings.Join(parts, "  "))
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}
