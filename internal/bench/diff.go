package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// DiffRow is one config compared across two runs of the same experiment.
type DiffRow struct {
	Experiment string
	Config     string
	PriorNs    float64
	FreshNs    float64
	// DeltaPct is the ns/op change in percent; positive means the fresh
	// run is slower (a regression candidate).
	DeltaPct float64
}

// ReadReport parses one BENCH_<experiment>.json file.
func ReadReport(path string) (*Report, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(raw, &r); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	return &r, nil
}

// DiffReports compares two runs of the same experiment config-by-config.
// Configs present in only one run are skipped — a renamed or new config is
// not a perf signal.
func DiffReports(prior, fresh *Report) []DiffRow {
	prev := make(map[string]float64, len(prior.Rows))
	for _, row := range prior.Rows {
		prev[row.Config] = row.NsPerOp
	}
	var out []DiffRow
	for _, row := range fresh.Rows {
		p, ok := prev[row.Config]
		if !ok || p <= 0 || row.NsPerOp <= 0 {
			continue
		}
		out = append(out, DiffRow{
			Experiment: fresh.Experiment,
			Config:     row.Config,
			PriorNs:    p,
			FreshNs:    row.NsPerOp,
			DeltaPct:   100 * (row.NsPerOp - p) / p,
		})
	}
	return out
}

// DiffDirs compares every BENCH_*.json in freshDir against its namesake in
// priorDir and returns all matched rows in experiment/config order. Fresh
// files with no checked-in prior are skipped (first run of a new
// experiment); a prior with no fresh counterpart is likewise not an error —
// the caller chooses which experiments to regenerate.
func DiffDirs(priorDir, freshDir string) ([]DiffRow, error) {
	freshPaths, err := filepath.Glob(filepath.Join(freshDir, "BENCH_*.json"))
	if err != nil {
		return nil, err
	}
	sort.Strings(freshPaths)
	var all []DiffRow
	matched := 0
	for _, fp := range freshPaths {
		pp := filepath.Join(priorDir, filepath.Base(fp))
		if _, err := os.Stat(pp); err != nil {
			continue
		}
		fresh, err := ReadReport(fp)
		if err != nil {
			return nil, err
		}
		prior, err := ReadReport(pp)
		if err != nil {
			return nil, err
		}
		matched++
		all = append(all, DiffReports(prior, fresh)...)
	}
	if matched == 0 {
		return nil, fmt.Errorf("bench: no BENCH_*.json in %s has a prior in %s", freshDir, priorDir)
	}
	return all, nil
}

// MergeBest reads every BENCH_*.json across run dirs and merges them per
// experiment, keeping for each config the row with the minimum ns/op seen
// across runs — the noise-robust estimator for regression gating (the true
// cost is the floor; everything above it is scheduler and cache noise).
// Configs missing from some runs keep their best row from the runs that
// have them.
func MergeBest(dirs ...string) (map[string]*Report, error) {
	merged := map[string]*Report{}
	for _, dir := range dirs {
		paths, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
		if err != nil {
			return nil, err
		}
		sort.Strings(paths)
		for _, p := range paths {
			r, err := ReadReport(p)
			if err != nil {
				return nil, err
			}
			m, ok := merged[r.Experiment]
			if !ok {
				cp := *r
				cp.Rows = append([]ReportRow(nil), r.Rows...)
				merged[r.Experiment] = &cp
				continue
			}
			for _, row := range r.Rows {
				at := -1
				for i := range m.Rows {
					if m.Rows[i].Config == row.Config {
						at = i
						break
					}
				}
				switch {
				case at < 0:
					m.Rows = append(m.Rows, row)
				case row.NsPerOp > 0 && row.NsPerOp < m.Rows[at].NsPerOp:
					m.Rows[at] = row
				}
			}
		}
	}
	if len(merged) == 0 {
		return nil, fmt.Errorf("bench: no BENCH_*.json found in %v", dirs)
	}
	return merged, nil
}

// WriteBest merges runDirs via MergeBest and writes one BENCH_*.json per
// experiment to outDir, returning the written paths.
func WriteBest(outDir string, runDirs ...string) ([]string, error) {
	merged, err := MergeBest(runDirs...)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(merged))
	for name := range merged {
		names = append(names, name)
	}
	sort.Strings(names)
	var paths []string
	for _, name := range names {
		p, err := merged[name].WriteJSON(outDir)
		if err != nil {
			return nil, err
		}
		paths = append(paths, p)
	}
	return paths, nil
}

// RenderDiff writes the comparison as a table and returns the rows whose
// slowdown exceeds regressPct. Improvements never flag.
func RenderDiff(w io.Writer, rows []DiffRow, regressPct float64) []DiffRow {
	var regressions []DiffRow
	t := &Table{
		Title:   fmt.Sprintf("Benchmark diff vs checked-in prior (flagging > +%.0f%%)", regressPct),
		Headers: []string{"Experiment", "Config", "prior ns/op", "fresh ns/op", "delta"},
	}
	for _, r := range rows {
		mark := ""
		if r.DeltaPct > regressPct {
			mark = "  << REGRESSION"
			regressions = append(regressions, r)
		}
		t.Add(r.Experiment, r.Config,
			fmt.Sprintf("%.0f", r.PriorNs), fmt.Sprintf("%.0f", r.FreshNs),
			fmt.Sprintf("%+.1f%%%s", r.DeltaPct, mark))
	}
	if w != nil {
		t.Render(w)
	}
	return regressions
}
