package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// ReportRow is one measured configuration in a machine-readable benchmark
// report: the stable identifier plus the metrics the repo tracks across
// PRs (ns/op, index bytes, max model error), with free-form extras for
// experiment-specific numbers (speedups, throughputs, shares).
type ReportRow struct {
	Config  string             `json:"config"`
	NsPerOp float64            `json:"ns_per_op"`
	Bytes   int                `json:"bytes,omitempty"`
	MaxErr  int                `json:"max_err,omitempty"`
	Extra   map[string]float64 `json:"extra,omitempty"`
}

// Report is the machine-readable result of one lix-bench experiment,
// written as BENCH_<experiment>.json so the repo's perf trajectory is
// diffable across PRs.
type Report struct {
	Experiment string      `json:"experiment"`
	N          int         `json:"n"`
	Probes     int         `json:"probes"`
	Rows       []ReportRow `json:"rows"`
}

// Add appends one row.
func (r *Report) Add(row ReportRow) { r.Rows = append(r.Rows, row) }

// WriteJSON writes the report as <dir>/BENCH_<experiment>.json and returns
// the path.
func (r *Report) WriteJSON(dir string) (string, error) {
	if r.Experiment == "" {
		return "", fmt.Errorf("bench: report has no experiment name")
	}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "", err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, "BENCH_"+r.Experiment+".json")
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", err
	}
	return path, nil
}
