package bench

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func writeReport(t *testing.T, dir, exp string, rows ...ReportRow) {
	t.Helper()
	r := &Report{Experiment: exp, N: 100, Rows: rows}
	if _, err := r.WriteJSON(dir); err != nil {
		t.Fatal(err)
	}
}

func TestDiffDirsFlagsRegressions(t *testing.T) {
	prior, fresh := t.TempDir(), t.TempDir()
	writeReport(t, prior, "alpha",
		ReportRow{Config: "a", NsPerOp: 100},
		ReportRow{Config: "b", NsPerOp: 100},
		ReportRow{Config: "gone", NsPerOp: 100})
	writeReport(t, fresh, "alpha",
		ReportRow{Config: "a", NsPerOp: 130}, // +30%: regression
		ReportRow{Config: "b", NsPerOp: 110}, // +10%: within threshold
		ReportRow{Config: "new", NsPerOp: 50})
	// A fresh experiment with no prior is skipped, not an error.
	writeReport(t, fresh, "beta", ReportRow{Config: "x", NsPerOp: 1})

	rows, err := DiffDirs(prior, fresh)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 { // "gone" and "new" don't match, beta has no prior
		t.Fatalf("got %d rows, want 2: %+v", len(rows), rows)
	}
	var out bytes.Buffer
	regs := RenderDiff(&out, rows, 25)
	if len(regs) != 1 || regs[0].Config != "a" {
		t.Fatalf("regressions = %+v, want just config a", regs)
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Fatalf("rendered diff lacks the REGRESSION marker:\n%s", out.String())
	}
	// A 30% improvement never flags.
	writeReport(t, fresh, "alpha",
		ReportRow{Config: "a", NsPerOp: 70},
		ReportRow{Config: "b", NsPerOp: 100})
	rows, err = DiffDirs(prior, fresh)
	if err != nil {
		t.Fatal(err)
	}
	if regs := RenderDiff(nil, rows, 25); len(regs) != 0 {
		t.Fatalf("improvement flagged as regression: %+v", regs)
	}
}

func TestDiffDirsNoMatches(t *testing.T) {
	if _, err := DiffDirs(t.TempDir(), t.TempDir()); err == nil {
		t.Fatal("expected an error when no BENCH files match")
	}
}

func TestMergeBestTakesPerConfigMin(t *testing.T) {
	r1, r2, out := t.TempDir(), t.TempDir(), t.TempDir()
	writeReport(t, r1, "alpha",
		ReportRow{Config: "a", NsPerOp: 90, Extra: map[string]float64{"run": 1}},
		ReportRow{Config: "b", NsPerOp: 200})
	writeReport(t, r2, "alpha",
		ReportRow{Config: "a", NsPerOp: 110},
		ReportRow{Config: "b", NsPerOp: 150},
		ReportRow{Config: "c", NsPerOp: 40}) // only in run 2: kept

	paths, err := WriteBest(out, r1, r2)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 || filepath.Base(paths[0]) != "BENCH_alpha.json" {
		t.Fatalf("paths = %v", paths)
	}
	merged, err := ReadReport(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{"a": 90, "b": 150, "c": 40}
	if len(merged.Rows) != len(want) {
		t.Fatalf("rows = %+v", merged.Rows)
	}
	for _, row := range merged.Rows {
		if row.NsPerOp != want[row.Config] {
			t.Fatalf("config %s: ns=%v, want %v", row.Config, row.NsPerOp, want[row.Config])
		}
		if row.Config == "a" && row.Extra["run"] != 1 {
			t.Fatalf("min row for a lost its extras: %+v", row)
		}
	}
}
