// Package keycodec is the order-preserving key codec that generalizes the
// learned-index stack from uint64 keys to string (and composite) keys
// (§3.5's string experiments, made to flow through the whole serve/storage/
// scan stack instead of living in a dead-end StringRMI).
//
// The codec splits a string key into two parts:
//
//   - a fixed-width uint64 *prefix* — the key's first 8 bytes packed
//     big-endian (zero-padded) — which is order-preserving: for any keys
//     a < b (bytes order), Prefix(a) <= Prefix(b), and Prefix(a) < Prefix(b)
//     implies a < b. Every uint64-native layer (RMI training and compiled
//     plans, shard range-splitting, segment fences, Bloom pre-filters,
//     delta-varint key blocks) operates on prefixes unchanged;
//
//   - a per-segment suffix *dictionary* (Dict) holding the exact keys in
//     sorted order, grouped by prefix, for disambiguation when prefixes
//     collide (keys sharing their first 8 bytes, or short keys whose
//     zero-padded prefixes coincide). The dictionary's on-disk form stores
//     each key's length plus only the bytes beyond the prefix, so long keys
//     don't pay their first 8 bytes twice.
//
// A lookup routes through both: the prefix enters the uint64 machinery
// (model inference, fences, filters), and on a prefix hit the dictionary's
// collision directory narrows to the group of keys sharing that prefix,
// where the last-mile tie-break runs over exact strings (see
// core.StringIndex, which revives StringRMI/stringsearch for that step).
//
// Composite keys (Datomic-style entity/attribute tuples) enter the same
// pipeline via Composite: an escaped concatenation whose bytewise order
// equals element-wise tuple order, so a composite key is just a string key
// with structure — its first components dominate the prefix, which is
// exactly the shared-prefix clustering the dictionary exists to absorb.
package keycodec

import (
	"fmt"
	"sort"
	"strings"

	"learnedindex/internal/binenc"
)

// PrefixLen is how many leading key bytes the fixed-width prefix captures.
const PrefixLen = 8

// Prefix packs the first 8 bytes of s big-endian into a uint64, zero-padded
// for shorter keys. It is order-preserving: a <= b (bytes order) implies
// Prefix(a) <= Prefix(b). Keys sharing their first 8 bytes — and short keys
// that differ only by trailing NULs from the padding — collide; the Dict
// disambiguates those exactly.
func Prefix(s string) uint64 {
	var v uint64
	n := len(s)
	if n > PrefixLen {
		n = PrefixLen
	}
	for i := 0; i < n; i++ {
		v |= uint64(s[i]) << (56 - 8*uint(i))
	}
	return v
}

// prefixBytes writes p's big-endian bytes into an 8-byte array.
func prefixBytes(p uint64) [PrefixLen]byte {
	var b [PrefixLen]byte
	for i := 0; i < PrefixLen; i++ {
		b[i] = byte(p >> (56 - 8*uint(i)))
	}
	return b
}

// Composite escape bytes: a 0x00 inside a component is escaped to
// 0x00 0xFF, and each component is terminated by 0x00 0x01. Bytewise
// comparison of encodings then equals element-wise tuple comparison
// (with a shorter tuple sorting before its extensions), because at the
// first difference either the raw bytes differ, or one side holds the
// terminator 0x01 — which is below every escaped continuation (0xFF) and
// every raw non-NUL byte.
const (
	compEscape = 0xFF
	compTerm   = 0x01
)

// AppendComposite appends the order-preserving encoding of parts to dst.
func AppendComposite(dst []byte, parts ...string) []byte {
	for _, p := range parts {
		for i := 0; i < len(p); i++ {
			c := p[i]
			dst = append(dst, c)
			if c == 0x00 {
				dst = append(dst, compEscape)
			}
		}
		dst = append(dst, 0x00, compTerm)
	}
	return dst
}

// Composite returns the order-preserving encoding of parts as a string key:
// Composite(a...) < Composite(b...) (bytes order) iff tuple a < tuple b
// element-wise. The result flows through the stack like any string key.
func Composite(parts ...string) string {
	return string(AppendComposite(nil, parts...))
}

// SplitComposite decodes a Composite encoding back into its parts.
func SplitComposite(key string) ([]string, error) {
	var parts []string
	var cur strings.Builder
	i := 0
	for i < len(key) {
		c := key[i]
		if c != 0x00 {
			cur.WriteByte(c)
			i++
			continue
		}
		if i+1 >= len(key) {
			return nil, fmt.Errorf("keycodec: truncated composite escape")
		}
		switch key[i+1] {
		case compEscape:
			cur.WriteByte(0x00)
		case compTerm:
			parts = append(parts, cur.String())
			cur.Reset()
		default:
			return nil, fmt.Errorf("keycodec: invalid composite escape 0x%02x", key[i+1])
		}
		i += 2
	}
	if cur.Len() != 0 {
		return nil, fmt.Errorf("keycodec: composite key missing terminator")
	}
	return parts, nil
}

// Dict is the exact-key side of the codec: a segment's (or shard
// snapshot's) sorted unique string keys plus a sparse collision directory
// mapping each *prefix rank* to its run of keys. Most prefixes own exactly
// one key, so the directory records only the exceptions: the prefix indexes
// whose group holds more than one key, with cumulative extras so rank
// arithmetic stays O(log collisions).
//
// A Dict is immutable after Build/Decode and safe for concurrent readers.
type Dict struct {
	strs []string // all keys, sorted ascending (bytes order)
	// Sparse collision directory over prefix indexes. collIdx lists, in
	// increasing order, the prefix indexes whose group size exceeds 1;
	// collCum[j] is the total extra keys (group size - 1 summed) owned by
	// collIdx[:j], so collCum has len(collIdx)+1 entries with collCum[0]=0.
	collIdx  []int32
	collCum  []int32
	maxGroup int
}

// BuildDict derives the codec pair from sorted unique keys: the sorted
// deduplicated prefix array (the uint64 layer's key set) and the dictionary
// over the exact keys. The keys slice is retained, not copied.
func BuildDict(keys []string) ([]uint64, *Dict) {
	prefixes := make([]uint64, 0, len(keys))
	d := &Dict{strs: keys, maxGroup: 0}
	var cum int32
	d.collCum = append(d.collCum, 0)
	for i := 0; i < len(keys); {
		p := Prefix(keys[i])
		j := i + 1
		for j < len(keys) && Prefix(keys[j]) == p {
			j++
		}
		if g := j - i; g > 1 {
			d.collIdx = append(d.collIdx, int32(len(prefixes)))
			cum += int32(g - 1)
			d.collCum = append(d.collCum, cum)
			if g > d.maxGroup {
				d.maxGroup = g
			}
		} else if d.maxGroup == 0 {
			d.maxGroup = 1
		}
		prefixes = append(prefixes, p)
		i = j
	}
	return prefixes, d
}

// Len returns the number of keys.
func (d *Dict) Len() int { return len(d.strs) }

// Strings returns the sorted keys. Shared, read-only.
func (d *Dict) Strings() []string { return d.strs }

// NumCollisions returns how many keys share a prefix with an earlier key —
// Len() minus the prefix count.
func (d *Dict) NumCollisions() int {
	return int(d.collCum[len(d.collCum)-1])
}

// MaxGroup returns the largest number of keys sharing one prefix.
func (d *Dict) MaxGroup() int { return d.maxGroup }

// Start returns the index into Strings() of the first key whose prefix rank
// is pi. pi may equal the prefix count, yielding Len(). This is the rank
// bridge between the uint64 layer and the exact keys: a prefix-plan lower
// bound pi becomes the string lower bound Start(pi) when the probe's prefix
// is absent, and the group [Start(pi), Start(pi+1)) when present.
func (d *Dict) Start(pi int) int {
	j := sort.Search(len(d.collIdx), func(k int) bool { return d.collIdx[k] >= int32(pi) })
	return pi + int(d.collCum[j])
}

// Group returns the [start, end) string range of prefix rank pi.
func (d *Dict) Group(pi int) (int, int) {
	return d.Start(pi), d.Start(pi + 1)
}

// AppendBinary appends the dictionary's serialized form: the collision
// directory plus the suffix blob — for every key, its full length L and
// only the bytes beyond the 8-byte prefix (max(0, L-8) of them), since the
// prefix array already pins the leading bytes (and, with L, the exact
// short-key padding).
func (d *Dict) AppendBinary(b []byte) []byte {
	b = binenc.AppendUvarint(b, uint64(len(d.strs)))
	b = binenc.AppendUvarint(b, uint64(len(d.collIdx)))
	prev := int32(-1)
	for j, ci := range d.collIdx {
		b = binenc.AppendUvarint(b, uint64(ci-prev)) // strictly positive delta
		b = binenc.AppendUvarint(b, uint64(d.collCum[j+1]-d.collCum[j]))
		prev = ci
	}
	for _, s := range d.strs {
		b = binenc.AppendUvarint(b, uint64(len(s)))
		if len(s) > PrefixLen {
			b = append(b, s[PrefixLen:]...)
		}
	}
	return b
}

// DecodeDict decodes a dictionary serialized by AppendBinary against the
// already-decoded prefix array, reconstructing and validating the exact
// keys: every key's prefix must match its group's, the keys must be
// strictly increasing, and the directory must tile the prefix array
// exactly. Arbitrary input yields an error, never a panic — decode state
// flows through the latched binenc.Reader and explicit bounds checks.
func DecodeDict(r *binenc.Reader, prefixes []uint64) (*Dict, error) {
	nStr := r.Count(int(^uint(0)>>1), 1)
	nColl := r.Count(len(prefixes)+1, 1)
	if r.Err() != nil {
		return nil, r.Err()
	}
	d := &Dict{
		collIdx: make([]int32, 0, nColl),
		collCum: make([]int32, 1, nColl+1),
	}
	prev := int32(-1)
	var cum int32
	for j := 0; j < nColl; j++ {
		dlt := r.Uvarint()
		extra := r.Uvarint()
		if r.Err() != nil {
			return nil, r.Err()
		}
		ci := int64(prev) + int64(dlt)
		if dlt < 1 || extra < 1 || ci >= int64(len(prefixes)) || int64(extra) > int64(nStr) {
			return nil, fmt.Errorf("keycodec: corrupt collision directory: %w", binenc.ErrCorrupt)
		}
		prev = int32(ci)
		cum += int32(extra)
		if int64(cum) > int64(nStr) {
			return nil, fmt.Errorf("keycodec: collision extras exceed key count: %w", binenc.ErrCorrupt)
		}
		d.collIdx = append(d.collIdx, prev)
		d.collCum = append(d.collCum, cum)
	}
	if len(prefixes)+int(cum) != nStr {
		return nil, fmt.Errorf("keycodec: directory tiles %d keys, header says %d: %w",
			len(prefixes)+int(cum), nStr, binenc.ErrCorrupt)
	}
	d.strs = make([]string, 0, nStr)
	var buf []byte
	ci := 0 // next collision-directory slot
	for pi, p := range prefixes {
		group := 1
		if ci < len(d.collIdx) && d.collIdx[ci] == int32(pi) {
			group += int(d.collCum[ci+1] - d.collCum[ci])
			ci++
		}
		pb := prefixBytes(p)
		if g := group; g > d.maxGroup {
			d.maxGroup = g
		}
		for m := 0; m < group; m++ {
			l := r.Uvarint()
			if r.Err() != nil {
				return nil, r.Err()
			}
			head := int(l)
			if head > PrefixLen {
				head = PrefixLen
			}
			tail := int(l) - head
			if l > uint64(int(^uint(0)>>1)) || tail > r.Remaining() {
				return nil, fmt.Errorf("keycodec: suffix overruns input: %w", binenc.ErrCorrupt)
			}
			buf = append(buf[:0], pb[:head]...)
			buf = append(buf, r.Take(tail)...)
			if r.Err() != nil {
				return nil, r.Err()
			}
			s := string(buf)
			if Prefix(s) != p {
				return nil, fmt.Errorf("keycodec: key prefix mismatch: %w", binenc.ErrCorrupt)
			}
			if n := len(d.strs); n > 0 && d.strs[n-1] >= s {
				return nil, fmt.Errorf("keycodec: keys not strictly increasing: %w", binenc.ErrCorrupt)
			}
			d.strs = append(d.strs, s)
		}
	}
	return d, nil
}
