package keycodec

import (
	"bytes"
	"sort"
	"testing"

	"learnedindex/internal/binenc"
)

// FuzzPrefixOrder differentially checks the codec's core contract: prefix
// ordering agrees with bytes.Compare on the raw keys — Prefix never inverts
// an order, and a strict prefix inequality implies the same strict key
// inequality.
func FuzzPrefixOrder(f *testing.F) {
	f.Add([]byte("a"), []byte("ab"))
	f.Add([]byte(""), []byte("\x00"))
	f.Add([]byte("abcdefgh"), []byte("abcdefghZ"))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff}, []byte{0xff})
	f.Fuzz(func(t *testing.T, a, b []byte) {
		sa, sb := string(a), string(b)
		pa, pb := Prefix(sa), Prefix(sb)
		switch bytes.Compare(a, b) {
		case -1:
			if pa > pb {
				t.Fatalf("a<b but Prefix(a)>Prefix(b): %q %q", a, b)
			}
		case 1:
			if pa < pb {
				t.Fatalf("a>b but Prefix(a)<Prefix(b): %q %q", a, b)
			}
		default:
			if pa != pb {
				t.Fatalf("a==b but prefixes differ: %q", a)
			}
		}
		if pa < pb && sa >= sb {
			t.Fatalf("Prefix(a)<Prefix(b) but a>=b: %q %q", a, b)
		}
	})
}

// FuzzCompositeOrder checks that the composite tuple encoding is
// order-preserving and round-trips losslessly for arbitrary parts,
// including NULs and escape bytes.
func FuzzCompositeOrder(f *testing.F) {
	f.Add([]byte("a"), []byte("b"), []byte("ab"), []byte(""))
	f.Add([]byte{0}, []byte{0, 1}, []byte{0, 0xff}, []byte{1})
	f.Fuzz(func(t *testing.T, a1, a2, b1, b2 []byte) {
		ta := []string{string(a1), string(a2)}
		tb := []string{string(b1), string(b2)}
		ea, eb := Composite(ta...), Composite(tb...)
		want := compareTuples(ta, tb)
		if got := bytes.Compare([]byte(ea), []byte(eb)); got != want {
			t.Fatalf("encoding order %d, tuple order %d: %q vs %q", got, want, ta, tb)
		}
		ra, err := SplitComposite(ea)
		if err != nil || len(ra) != 2 || ra[0] != ta[0] || ra[1] != ta[1] {
			t.Fatalf("round trip failed: %q -> %q (%v)", ta, ra, err)
		}
	})
}

// FuzzDictRoundTrip builds a dictionary from fuzzer-derived keys, encodes
// it, decodes it, and requires a lossless round trip.
func FuzzDictRoundTrip(f *testing.F) {
	f.Add([]byte("alpha\x00beta\x00b\x00prefix_collide_1\x00prefix_collide_2"))
	f.Add([]byte(""))
	f.Add([]byte("\x00"))
	f.Fuzz(func(t *testing.T, raw []byte) {
		parts := bytes.Split(raw, []byte{0})
		set := make(map[string]struct{}, len(parts))
		for _, p := range parts {
			set[string(p)] = struct{}{}
		}
		keys := make([]string, 0, len(set))
		for s := range set {
			keys = append(keys, s)
		}
		sort.Strings(keys)
		prefixes, d := BuildDict(keys)
		blob := d.AppendBinary(nil)
		got, err := DecodeDict(binenc.NewReader(blob), prefixes)
		if err != nil {
			t.Fatalf("decode of freshly encoded dict: %v", err)
		}
		if got.Len() != len(keys) {
			t.Fatalf("decoded %d keys, want %d", got.Len(), len(keys))
		}
		for i, s := range got.Strings() {
			if s != keys[i] {
				t.Fatalf("key %d: %q != %q", i, s, keys[i])
			}
		}
	})
}

// FuzzDictDecode throws arbitrary bytes at the decoder (same style as
// storage's FuzzSegmentDecode): it must never panic, and on success the
// resulting dict must satisfy the codec invariants against the supplied
// prefix array.
func FuzzDictDecode(f *testing.F) {
	keys := []string{"aa", "aardvark1", "aardvark2", "bb"}
	prefixes, d := BuildDict(keys)
	f.Add(d.AppendBinary(nil), uint64(len(prefixes)))
	f.Add([]byte{}, uint64(0))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff}, uint64(3))
	f.Fuzz(func(t *testing.T, blob []byte, nPfx uint64) {
		n := int(nPfx % 64)
		pfx := make([]uint64, n)
		for i := range pfx {
			pfx[i] = uint64(i) << 40 // sorted, unique
		}
		got, err := DecodeDict(binenc.NewReader(blob), pfx)
		if err != nil {
			return
		}
		if got.Len() < len(pfx) {
			t.Fatalf("accepted dict with %d keys for %d prefixes", got.Len(), len(pfx))
		}
		strs := got.Strings()
		for i := 1; i < len(strs); i++ {
			if strs[i-1] >= strs[i] {
				t.Fatal("accepted unsorted dict")
			}
		}
		for pi := range pfx {
			s, e := got.Group(pi)
			if s >= e || e > len(strs) {
				t.Fatalf("bad group [%d,%d) for prefix %d", s, e, pi)
			}
			for k := s; k < e; k++ {
				if Prefix(strs[k]) != pfx[pi] {
					t.Fatal("accepted prefix mismatch")
				}
			}
		}
	})
}
