package keycodec

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"learnedindex/internal/binenc"
)

func TestPrefixOrderPreserving(t *testing.T) {
	keys := []string{
		"", "\x00", "\x00\x00", "a", "ab", "ab\x00", "abcdefgh", "abcdefghi",
		"abcdefghj", "abcdefgi", "zzzzzzzz~~~~", "\xff", "\xff\xff\xff\xff\xff\xff\xff\xff\xff",
	}
	for _, a := range keys {
		for _, b := range keys {
			pa, pb := Prefix(a), Prefix(b)
			if a < b && pa > pb {
				t.Fatalf("order violated: %q < %q but prefix %#x > %#x", a, b, pa, pb)
			}
			if pa < pb && a >= b {
				t.Fatalf("prefix %#x < %#x but %q >= %q", pa, pb, a, b)
			}
		}
	}
}

func TestPrefixValues(t *testing.T) {
	cases := []struct {
		in   string
		want uint64
	}{
		{"", 0},
		{"\x00", 0},
		{"a", 0x6100000000000000},
		{"abcdefgh", 0x6162636465666768},
		{"abcdefghZZZ", 0x6162636465666768},
		{"\xff\xff\xff\xff\xff\xff\xff\xff", ^uint64(0)},
	}
	for _, c := range cases {
		if got := Prefix(c.in); got != c.want {
			t.Errorf("Prefix(%q) = %#x, want %#x", c.in, got, c.want)
		}
	}
}

func TestCompositeOrdering(t *testing.T) {
	tuples := [][]string{
		{},
		{""},
		{"", ""},
		{"\x00"},
		{"a"},
		{"a", ""},
		{"a", "b"},
		{"a", "b\x00c"},
		{"a\x00"},
		{"ab"},
		{"ab", "a"},
		{"b"},
	}
	enc := make([]string, len(tuples))
	for i, tp := range tuples {
		enc[i] = Composite(tp...)
	}
	for i := range tuples {
		for j := range tuples {
			want := compareTuples(tuples[i], tuples[j])
			got := strings.Compare(enc[i], enc[j])
			if got != want {
				t.Errorf("tuple order mismatch: %q vs %q: enc %d, tuple %d",
					tuples[i], tuples[j], got, want)
			}
		}
	}
}

func compareTuples(a, b []string) int {
	for i := 0; i < len(a) && i < len(b); i++ {
		if c := strings.Compare(a[i], b[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}

func TestCompositeRoundTrip(t *testing.T) {
	tuples := [][]string{
		{},
		{""},
		{"", "", ""},
		{"hello", "world"},
		{"nul\x00inside", "\x00", "\x00\x01\xff"},
		{"trailing\x00"},
	}
	for _, tp := range tuples {
		enc := Composite(tp...)
		got, err := SplitComposite(enc)
		if err != nil {
			t.Fatalf("SplitComposite(%q): %v", tp, err)
		}
		if len(got) != len(tp) {
			t.Fatalf("round trip %q: got %q", tp, got)
		}
		for i := range tp {
			if got[i] != tp[i] {
				t.Fatalf("round trip %q: got %q", tp, got)
			}
		}
	}
}

func TestSplitCompositeRejects(t *testing.T) {
	bad := []string{
		"\x00",         // truncated escape
		"abc",          // missing terminator
		"\x00\x02",     // invalid escape byte
		"a\x00\x01b",   // trailing un-terminated part
		"a\x00\xffzzz", // escaped NUL then no terminator
	}
	for _, s := range bad {
		if _, err := SplitComposite(s); err == nil {
			t.Errorf("SplitComposite(%q) accepted invalid input", s)
		}
	}
}

// buildRandomKeys returns n sorted unique keys with a mix of collision-heavy
// shared prefixes, short keys, and embedded NULs.
func buildRandomKeys(rng *rand.Rand, n int) []string {
	set := make(map[string]struct{}, n)
	hosts := []string{"http://a.example/", "http://b.example/", "id:"}
	for len(set) < n {
		var s string
		switch rng.Intn(4) {
		case 0: // long shared prefix: guaranteed prefix collisions
			s = hosts[rng.Intn(len(hosts))] + fmt.Sprintf("%d", rng.Intn(1<<20))
		case 1: // short key (<8 bytes), may contain NUL
			b := make([]byte, rng.Intn(8))
			for i := range b {
				b[i] = byte(rng.Intn(256))
			}
			s = string(b)
		case 2: // exactly-8-byte random
			b := make([]byte, 8)
			rng.Read(b)
			s = string(b)
		default: // random length
			b := make([]byte, 1+rng.Intn(24))
			rng.Read(b)
			s = string(b)
		}
		set[s] = struct{}{}
	}
	keys := make([]string, 0, n)
	for s := range set {
		keys = append(keys, s)
	}
	sort.Strings(keys)
	return keys
}

func TestBuildDictInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	keys := buildRandomKeys(rng, 5000)
	prefixes, d := BuildDict(keys)

	if !sort.SliceIsSorted(prefixes, func(i, j int) bool { return prefixes[i] < prefixes[j] }) {
		t.Fatal("prefixes not sorted")
	}
	for i := 1; i < len(prefixes); i++ {
		if prefixes[i] == prefixes[i-1] {
			t.Fatal("duplicate prefix in deduped array")
		}
	}
	if d.Len() != len(keys) {
		t.Fatalf("Len = %d, want %d", d.Len(), len(keys))
	}
	if got := len(prefixes) + d.NumCollisions(); got != len(keys) {
		t.Fatalf("prefixes+collisions = %d, want %d", got, len(keys))
	}
	// Start/Group must tile the key array exactly, with matching prefixes.
	pos := 0
	maxG := 0
	for pi, p := range prefixes {
		s, e := d.Group(pi)
		if s != pos {
			t.Fatalf("Group(%d) start = %d, want %d", pi, s, pos)
		}
		if e <= s {
			t.Fatalf("empty group %d", pi)
		}
		for k := s; k < e; k++ {
			if Prefix(keys[k]) != p {
				t.Fatalf("key %q in group of prefix %#x", keys[k], p)
			}
		}
		if e-s > maxG {
			maxG = e - s
		}
		pos = e
	}
	if pos != len(keys) {
		t.Fatalf("groups tile %d keys, want %d", pos, len(keys))
	}
	if d.Start(len(prefixes)) != len(keys) {
		t.Fatalf("Start(n) = %d, want %d", d.Start(len(prefixes)), len(keys))
	}
	if d.MaxGroup() != maxG {
		t.Fatalf("MaxGroup = %d, want %d", d.MaxGroup(), maxG)
	}
}

func TestDictRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{0, 1, 2, 100, 3000} {
		keys := buildRandomKeys(rng, n)
		prefixes, d := BuildDict(keys)
		blob := d.AppendBinary(nil)
		got, err := DecodeDict(binenc.NewReader(blob), prefixes)
		if err != nil {
			t.Fatalf("n=%d: DecodeDict: %v", n, err)
		}
		if got.Len() != len(keys) {
			t.Fatalf("n=%d: decoded %d keys", n, got.Len())
		}
		for i, s := range got.Strings() {
			if s != keys[i] {
				t.Fatalf("n=%d: key %d = %q, want %q", n, i, s, keys[i])
			}
		}
		if got.MaxGroup() != d.MaxGroup() {
			t.Fatalf("n=%d: MaxGroup %d vs %d", n, got.MaxGroup(), d.MaxGroup())
		}
		// Deterministic serialization.
		if !bytes.Equal(blob, got.AppendBinary(nil)) {
			t.Fatalf("n=%d: re-serialization differs", n)
		}
	}
}

func TestDecodeDictRejectsCorruption(t *testing.T) {
	keys := []string{"aa", "aardvark1", "aardvark2", "bb", "cc"}
	sort.Strings(keys)
	prefixes, d := BuildDict(keys)
	blob := d.AppendBinary(nil)

	// Truncations at every length must error, never panic.
	for i := 0; i < len(blob); i++ {
		if _, err := DecodeDict(binenc.NewReader(blob[:i]), prefixes); err == nil {
			t.Fatalf("truncation at %d accepted", i)
		}
	}
	// Trailing garbage is the caller's problem (Remaining check), but every
	// single-byte flip must either error or decode to a dict with validated
	// invariants (sorted keys, matching prefixes).
	for i := 0; i < len(blob); i++ {
		mut := append([]byte(nil), blob...)
		mut[i] ^= 0xA5
		got, err := DecodeDict(binenc.NewReader(mut), prefixes)
		if err != nil {
			continue
		}
		strs := got.Strings()
		for k, s := range strs {
			if k > 0 && strs[k-1] >= s {
				t.Fatalf("flip at %d produced unsorted keys", i)
			}
			_ = Prefix(s)
		}
	}
	// Wrong prefix array: decoder must reject.
	wrong := append([]uint64(nil), prefixes...)
	wrong[0] ^= 1
	if _, err := DecodeDict(binenc.NewReader(blob), wrong); err == nil {
		t.Fatal("mismatched prefix array accepted")
	}
}
