// Package paged implements the Appendix D.2 scenario: a learned index over
// data "partitioned into larger pages that are stored in separate regions
// on disk", where the in-memory CDF assumption (pos = F(key)·N over one
// continuous array) no longer holds directly.
//
// The paper outlines the remedy implemented here: keep the RMI over the
// sorted key space, and add "an additional translation table in the form
// of <first_key, disk-position>" mapping logical pages to physical ones.
// The RMI's predicted position (with its min/max error window) selects the
// logical page range; the translation table resolves physical pages; and
// "it is possible to use the predicted position with the min- and
// max-error to reduce the number of bytes which have to be read from a
// large page".
//
// Store simulates the disk: physical pages live at shuffled identifiers
// (allocation order is never key order on a real system) and every fetch
// is counted, so experiments can compare page reads per lookup — the cost
// that dominates once data leaves memory.
package paged

import (
	"errors"
	"math/rand"
	"sort"

	"learnedindex/internal/core"
)

// Record is a fixed-length key/value record, the paper's §2 setting.
type Record struct {
	Key   uint64
	Value uint64
}

// Store is a simulated paged storage device: fixed records-per-page,
// physical pages at shuffled ids, and a read counter standing in for I/O
// latency.
type Store struct {
	pages     map[uint32][]Record
	reads     int
	perPage   int
	physOrder []uint32 // logical page -> physical id
}

// ErrNoPage is returned for fetches of unknown physical ids.
var ErrNoPage = errors.New("paged: no such page")

// BuildStore partitions sorted records into pages of perPage records and
// scatters them across shuffled physical ids.
func BuildStore(recs []Record, perPage int, seed int64) *Store {
	if perPage < 1 {
		perPage = 1
	}
	n := (len(recs) + perPage - 1) / perPage
	s := &Store{pages: make(map[uint32][]Record, n), perPage: perPage}
	ids := rand.New(rand.NewSource(seed)).Perm(n)
	s.physOrder = make([]uint32, n)
	for lp := 0; lp < n; lp++ {
		phys := uint32(ids[lp])
		lo := lp * perPage
		hi := lo + perPage
		if hi > len(recs) {
			hi = len(recs)
		}
		s.pages[phys] = recs[lo:hi]
		s.physOrder[lp] = phys
	}
	return s
}

// Fetch reads a physical page, counting the I/O.
func (s *Store) Fetch(phys uint32) ([]Record, error) {
	p, ok := s.pages[phys]
	if !ok {
		return nil, ErrNoPage
	}
	s.reads++
	return p, nil
}

// Reads returns the number of page fetches so far.
func (s *Store) Reads() int { return s.reads }

// ResetReads zeroes the fetch counter.
func (s *Store) ResetReads() { s.reads = 0 }

// NumPages returns the page count.
func (s *Store) NumPages() int { return len(s.physOrder) }

// PerPage returns records per page.
func (s *Store) PerPage() int { return s.perPage }

// Index is the Appendix D.2 learned index over a paged store: an RMI over
// the keys plus a translation table from logical page to physical id.
type Index struct {
	rmi     *core.RMI
	store   *Store
	keys    []uint64 // retained sorted keys (the secondary-index key column)
	perPage int
	// translation table: logical page -> (first key, physical id); first
	// keys are implicit via keys[lp*perPage], so only physical ids are
	// materialized — 4 bytes per page.
	trans []uint32
}

// New builds the paged learned index from sorted records. cfg configures
// the RMI; perPage the page size; seed the physical shuffling.
func New(recs []Record, cfg core.Config, perPage int, seed int64) *Index {
	keys := make([]uint64, len(recs))
	for i, r := range recs {
		keys[i] = r.Key
	}
	store := BuildStore(recs, perPage, seed)
	return &Index{
		rmi:     core.New(keys, cfg),
		store:   store,
		keys:    keys,
		perPage: perPage,
		trans:   store.physOrder,
	}
}

// Store exposes the underlying simulated device (for read accounting).
func (ix *Index) Store() *Store { return ix.store }

// Get returns the record for key, fetching at most the pages overlapped by
// the RMI's error window. The common case — window inside one page — costs
// exactly one page read.
func (ix *Index) Get(key uint64) (Record, bool, error) {
	n := len(ix.keys)
	if n == 0 {
		return Record{}, false, nil
	}
	// Exact position via the in-memory key column (a secondary index keeps
	// <key, pointer> pairs in memory; Appendix D.2's translation table
	// resolves the physical page).
	pos := ix.rmi.Lookup(key)
	if pos >= n || ix.keys[pos] != key {
		return Record{}, false, nil
	}
	lp := pos / ix.perPage
	page, err := ix.store.Fetch(ix.trans[lp])
	if err != nil {
		return Record{}, false, err
	}
	rec := page[pos%ix.perPage]
	return rec, true, nil
}

// GetCold performs the lookup without consulting the in-memory key column
// for the final position: the RMI window alone decides which pages to
// fetch, and the pages are scanned — the paper's "reduce the number of
// bytes which have to be read" path for disk-only deployments. Returns the
// record, whether it was found, and how many pages were fetched.
func (ix *Index) GetCold(key uint64) (Record, bool, int, error) {
	n := len(ix.keys)
	if n == 0 {
		return Record{}, false, 0, nil
	}
	_, lo, hi := ix.rmi.Predict(key)
	if hi <= lo {
		hi = lo + 1
	}
	lpLo := lo / ix.perPage
	lpHi := (hi - 1) / ix.perPage
	fetched := 0
	for lp := lpLo; lp <= lpHi && lp < len(ix.trans); lp++ {
		page, err := ix.store.Fetch(ix.trans[lp])
		if err != nil {
			return Record{}, false, fetched, err
		}
		fetched++
		// In-page binary search.
		i := sort.Search(len(page), func(i int) bool { return page[i].Key >= key })
		if i < len(page) && page[i].Key == key {
			return page[i], true, fetched, nil
		}
	}
	// Model window may miss keys it never saw (non-monotonic models);
	// fall back to the exact position path.
	rec, ok, err := ix.Get(key)
	if err != nil {
		return Record{}, false, fetched, err
	}
	if ok {
		fetched++
	}
	return rec, ok, fetched, err
}

// RangeCount fetches no pages: counts keys in [a, b) from the key column.
func (ix *Index) RangeCount(a, b uint64) int {
	s, e := ix.rmi.RangeScan(a, b)
	return e - s
}

// RangeScan fetches the records with keys in [a, b), reading only the
// overlapped pages, in key order.
func (ix *Index) RangeScan(a, b uint64) ([]Record, error) {
	s, e := ix.rmi.RangeScan(a, b)
	if e <= s {
		return nil, nil
	}
	out := make([]Record, 0, e-s)
	for lp := s / ix.perPage; lp <= (e-1)/ix.perPage; lp++ {
		page, err := ix.store.Fetch(ix.trans[lp])
		if err != nil {
			return nil, err
		}
		base := lp * ix.perPage
		for i, r := range page {
			if pos := base + i; pos >= s && pos < e {
				out = append(out, r)
			}
		}
	}
	return out, nil
}

// SizeBytes returns the in-memory footprint: RMI + 4-byte translation
// entries (the key column is charged to the secondary index's data, per
// the paper's accounting).
func (ix *Index) SizeBytes() int {
	return ix.rmi.SizeBytes() + len(ix.trans)*4
}

// RMI exposes the trained model (for error statistics).
func (ix *Index) RMI() *core.RMI { return ix.rmi }
