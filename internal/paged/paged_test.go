package paged

import (
	"testing"

	"learnedindex/internal/core"
	"learnedindex/internal/data"
)

func buildRecords(keys data.Keys) []Record {
	recs := make([]Record, len(keys))
	for i, k := range keys {
		recs[i] = Record{Key: k, Value: k * 7}
	}
	return recs
}

func TestGetFindsEveryRecord(t *testing.T) {
	keys := data.LognormalPaper(20_000, 1)
	ix := New(buildRecords(keys), core.DefaultConfig(200), 64, 3)
	for _, k := range keys[:2000] {
		rec, ok, err := ix.Get(k)
		if err != nil || !ok {
			t.Fatalf("Get(%d): ok=%v err=%v", k, ok, err)
		}
		if rec.Value != k*7 {
			t.Fatalf("wrong record for %d", k)
		}
	}
	for _, k := range data.SampleMissing(keys, 500, 2) {
		if _, ok, _ := ix.Get(k); ok {
			t.Fatalf("phantom %d", k)
		}
	}
}

func TestGetReadsOnePage(t *testing.T) {
	keys := data.LognormalPaper(20_000, 1)
	ix := New(buildRecords(keys), core.DefaultConfig(200), 64, 3)
	ix.Store().ResetReads()
	const probes = 1000
	for _, k := range data.SampleExisting(keys, probes, 5) {
		if _, ok, _ := ix.Get(k); !ok {
			t.Fatalf("missing %d", k)
		}
	}
	if got := ix.Store().Reads(); got != probes {
		t.Fatalf("Get should cost exactly 1 page read; %d lookups did %d reads", probes, got)
	}
}

func TestGetColdWindowBoundsPageReads(t *testing.T) {
	keys := data.LognormalPaper(50_000, 1)
	// A fine-leaved RMI keeps windows within ~1-2 pages.
	ix := New(buildRecords(keys), core.DefaultConfig(2000), 256, 3)
	ix.Store().ResetReads()
	const probes = 2000
	found := 0
	totalFetched := 0
	for _, k := range data.SampleExisting(keys, probes, 5) {
		rec, ok, fetched, err := ix.GetCold(k)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			found++
			if rec.Value != k*7 {
				t.Fatalf("wrong record for %d", k)
			}
		}
		totalFetched += fetched
	}
	if found != probes {
		t.Fatalf("found %d/%d", found, probes)
	}
	avg := float64(totalFetched) / probes
	// Without the error window every lookup would scan all pages; with it
	// the average must stay near 1-2.
	if avg > 4 {
		t.Fatalf("avg pages per cold lookup %.2f, want <= 4", avg)
	}
	t.Logf("avg pages per cold lookup: %.2f (of %d total pages)", avg, ix.Store().NumPages())
}

func TestRangeScanPaged(t *testing.T) {
	keys := data.LognormalPaper(20_000, 1)
	ix := New(buildRecords(keys), core.DefaultConfig(200), 64, 3)
	a, b := keys[5000], keys[5500]
	recs, err := ix.RangeScan(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 500 {
		t.Fatalf("got %d records, want 500", len(recs))
	}
	for i, r := range recs {
		if r.Key != keys[5000+i] {
			t.Fatalf("out of order at %d", i)
		}
	}
	if got := ix.RangeCount(a, b); got != 500 {
		t.Fatalf("RangeCount = %d", got)
	}
}

func TestTranslationScattersPhysically(t *testing.T) {
	keys := data.Dense(10_000, 0, 3)
	ix := New(buildRecords(keys), core.DefaultConfig(64), 100, 3)
	// Logical order must NOT equal physical order (the simulated disk
	// scatters pages), yet lookups still work.
	inOrder := 0
	for lp, phys := range ix.trans {
		if int(phys) == lp {
			inOrder++
		}
	}
	if inOrder > len(ix.trans)/10 {
		t.Fatalf("pages suspiciously in order: %d/%d", inOrder, len(ix.trans))
	}
	if _, ok, _ := ix.Get(keys[777]); !ok {
		t.Fatal("lookup through scattered pages failed")
	}
}

func TestStoreFetchUnknown(t *testing.T) {
	s := BuildStore(buildRecords(data.Dense(100, 0, 1)), 10, 1)
	if _, err := s.Fetch(9999); err != ErrNoPage {
		t.Fatalf("want ErrNoPage, got %v", err)
	}
}

func TestSizeBytesCountsTranslation(t *testing.T) {
	keys := data.Dense(10_000, 0, 3)
	ix := New(buildRecords(keys), core.DefaultConfig(64), 100, 3)
	if ix.SizeBytes() <= ix.RMI().SizeBytes() {
		t.Fatal("translation table not charged")
	}
	if ix.SizeBytes()-ix.RMI().SizeBytes() != 100*4 {
		t.Fatalf("translation charge wrong: %d", ix.SizeBytes()-ix.RMI().SizeBytes())
	}
}

func TestEmptyStore(t *testing.T) {
	ix := New(nil, core.DefaultConfig(4), 64, 1)
	if _, ok, err := ix.Get(5); ok || err != nil {
		t.Fatal("empty index should miss cleanly")
	}
}
