// Package hashfn provides the randomized hash functions used as baselines
// throughout the learned-index evaluation.
//
// The paper compares learned hash functions against "a simple
// MurmurHash3-like hash-function" (§4.2). We implement the 64-bit MurmurHash3
// finalizer (fmix64) and a full Murmur3-style mixer over 8-byte keys, plus a
// seeded string hash built from the same primitives. All functions are pure
// and allocation-free.
package hashfn

import "math/bits"

// Mix64 is the MurmurHash3 fmix64 finalizer: a fast, high-quality avalanche
// function over a 64-bit word. It is bijective, so distinct keys never
// collide in the 64-bit space; collisions only appear after reduction to a
// table size.
func Mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Hash64 hashes a 64-bit key with a seed, Murmur3 style. It processes the
// key as a single 8-byte block followed by the finalizer, matching the
// structure (constants and rotations) of MurmurHash3's x64 variant.
func Hash64(key, seed uint64) uint64 {
	const (
		c1 = 0x87c37b91114253d5
		c2 = 0x4cf5ad432745937f
	)
	h := seed
	k := key
	k *= c1
	k = bits.RotateLeft64(k, 31)
	k *= c2
	h ^= k
	h = bits.RotateLeft64(h, 27)
	h = h*5 + 0x52dce729
	h ^= 8 // length
	return Mix64(h)
}

// HashString hashes a byte string with a seed using a Murmur3-style block
// mixer. It is used for string-keyed hash maps and Bloom filters.
func HashString(s string, seed uint64) uint64 {
	const (
		c1 = 0x87c37b91114253d5
		c2 = 0x4cf5ad432745937f
	)
	h := seed
	i := 0
	for ; i+8 <= len(s); i += 8 {
		var k uint64
		for j := 0; j < 8; j++ {
			k |= uint64(s[i+j]) << (8 * j)
		}
		k *= c1
		k = bits.RotateLeft64(k, 31)
		k *= c2
		h ^= k
		h = bits.RotateLeft64(h, 27)
		h = h*5 + 0x52dce729
	}
	var tail uint64
	for j := 0; i+j < len(s); j++ {
		tail |= uint64(s[i+j]) << (8 * j)
	}
	if tail != 0 {
		tail *= c1
		tail = bits.RotateLeft64(tail, 31)
		tail *= c2
		h ^= tail
	}
	h ^= uint64(len(s))
	return Mix64(h)
}

// Reduce maps a 64-bit hash onto [0, n) without the modulo bias of h % n.
// It uses Lemire's multiply-shift reduction.
func Reduce(h uint64, n int) int {
	hi, _ := bits.Mul64(h, uint64(n))
	return int(hi)
}
