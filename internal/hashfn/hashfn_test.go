package hashfn

import (
	"math"
	"math/bits"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMix64Deterministic(t *testing.T) {
	if Mix64(12345) != Mix64(12345) {
		t.Fatal("Mix64 not deterministic")
	}
}

func TestMix64Bijective(t *testing.T) {
	// Spot-check injectivity over a window; fmix64 is bijective by
	// construction (xorshift and odd-multiplier steps are invertible).
	seen := make(map[uint64]uint64)
	for i := uint64(0); i < 100_000; i++ {
		h := Mix64(i)
		if prev, ok := seen[h]; ok {
			t.Fatalf("collision: Mix64(%d) == Mix64(%d)", i, prev)
		}
		seen[h] = i
	}
}

func TestMix64Avalanche(t *testing.T) {
	// Flipping one input bit should flip ~half the output bits.
	rng := rand.New(rand.NewSource(1))
	total := 0.0
	trials := 2000
	for i := 0; i < trials; i++ {
		x := rng.Uint64()
		bit := uint(rng.Intn(64))
		d := Mix64(x) ^ Mix64(x^(1<<bit))
		total += float64(bits.OnesCount64(d))
	}
	avg := total / float64(trials)
	if avg < 28 || avg > 36 {
		t.Fatalf("poor avalanche: avg flipped bits = %.2f, want ~32", avg)
	}
}

func TestHash64SeedIndependence(t *testing.T) {
	if Hash64(42, 1) == Hash64(42, 2) {
		t.Fatal("different seeds should give different hashes")
	}
}

func TestHash64Avalanche(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	total := 0.0
	trials := 2000
	for i := 0; i < trials; i++ {
		x := rng.Uint64()
		bit := uint(rng.Intn(64))
		d := Hash64(x, 7) ^ Hash64(x^(1<<bit), 7)
		total += float64(bits.OnesCount64(d))
	}
	avg := total / float64(trials)
	if avg < 28 || avg > 36 {
		t.Fatalf("poor avalanche: avg flipped bits = %.2f, want ~32", avg)
	}
}

func TestHashStringDistinctInputs(t *testing.T) {
	inputs := []string{"", "a", "b", "ab", "ba", "abc", "abd", "hello world",
		"hello worlc", "aaaaaaaa", "aaaaaaaaa", "aaaaaaab"}
	seen := make(map[uint64]string)
	for _, s := range inputs {
		h := HashString(s, 0)
		if prev, ok := seen[h]; ok {
			t.Fatalf("collision between %q and %q", s, prev)
		}
		seen[h] = s
	}
}

func TestHashStringTailSensitivity(t *testing.T) {
	// Strings differing only in the last (tail) byte must hash differently.
	a := HashString("12345678x", 0)
	b := HashString("12345678y", 0)
	if a == b {
		t.Fatal("tail byte ignored")
	}
}

func TestReduceRange(t *testing.T) {
	f := func(h uint64, n uint16) bool {
		m := int(n)%1000 + 1
		r := Reduce(h, m)
		return r >= 0 && r < m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReduceUniformity(t *testing.T) {
	// Chi-squared-ish check: mixing sequential keys then reducing to 100
	// buckets should be near-uniform.
	const buckets = 100
	const n = 100_000
	counts := make([]int, buckets)
	for i := uint64(0); i < n; i++ {
		counts[Reduce(Mix64(i), buckets)]++
	}
	expect := float64(n) / buckets
	for b, c := range counts {
		if math.Abs(float64(c)-expect) > expect*0.2 {
			t.Fatalf("bucket %d has %d entries, expected ~%.0f", b, c, expect)
		}
	}
}

func TestHashStringEmptyAndLong(t *testing.T) {
	long := make([]byte, 1024)
	for i := range long {
		long[i] = byte(i)
	}
	if HashString("", 1) == HashString(string(long), 1) {
		t.Fatal("empty and long strings collide")
	}
	// 8-byte-aligned vs unaligned lengths must both work.
	if HashString("12345678", 1) == HashString("1234567", 1) {
		t.Fatal("aligned/unaligned collision")
	}
}

func BenchmarkMix64(b *testing.B) {
	var s uint64
	for i := 0; i < b.N; i++ {
		s += Mix64(uint64(i))
	}
	sinkU64 = s
}

func BenchmarkHash64(b *testing.B) {
	var s uint64
	for i := 0; i < b.N; i++ {
		s += Hash64(uint64(i), 7)
	}
	sinkU64 = s
}

var sinkU64 uint64
