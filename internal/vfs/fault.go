package vfs

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"syscall"
)

// Op names one filesystem operation class for fault targeting, hooks, and
// injection accounting.
type Op uint8

const (
	OpOpenFile Op = iota
	OpReadFile
	OpReadDir
	OpMkdirAll
	OpRename
	OpRemove
	OpSyncDir
	OpWrite
	OpSync
	OpReadAt
	numOps
)

var opNames = [numOps]string{
	"openfile", "readfile", "readdir", "mkdirall", "rename",
	"remove", "syncdir", "write", "sync", "readat",
}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// ErrInjected is the sentinel every injected fault wraps: errors.Is
// distinguishes a scheduled fault from a real filesystem failure, so a
// fault-schedule test can assert nothing *un*scheduled went wrong.
var ErrInjected = errors.New("vfs: injected fault")

// FaultConfig is a seeded fault schedule: per-operation-class
// probabilities in [0, 1]. The zero value injects nothing. All draws come
// from one rand.Rand seeded with Seed, consumed in operation order, so a
// single-goroutine caller replays the identical schedule from the same
// seed.
type FaultConfig struct {
	Seed int64

	SyncErr     float64 // file fsync fails (EIO-flavored); durability of buffered bytes unknown
	SyncDirErr  float64 // directory fsync fails after a rename
	WriteENOSPC float64 // write fails entirely with ENOSPC
	TornWrite   float64 // write persists a strict prefix of the buffer, then errors
	RenameErr   float64 // rename fails; the old name survives
	RemoveErr   float64 // remove fails; the file survives
	OpenErr     float64 // open/create fails
	ReadErr     float64 // ReadFile/ReadAt fails (EIO-flavored)
	// ReadCorrupt makes ReadFile return the file's bytes with ONE random
	// bit flipped and NO error — silent media corruption, the fault class
	// checksums exist for. Keep it at zero in schedules that assert "no
	// acked key lost": rot of the only durable copy is real data loss.
	ReadCorrupt float64
}

// FaultFS wraps an inner FS and injects faults per a seeded FaultConfig.
// Arm/Disarm gates injection at runtime (the wrapped operations always
// pass through); SetHook installs a deterministic crash-point hook that
// sees every operation before the probabilistic schedule does. Safe for
// concurrent use; with concurrent callers the schedule remains seeded but
// the fault-to-operation assignment follows scheduling order.
type FaultFS struct {
	inner FS
	cfg   FaultConfig

	mu  sync.Mutex
	rng *rand.Rand

	armed    atomic.Bool
	hook     atomic.Pointer[func(op Op, path string) error]
	injected [numOps]atomic.Int64
}

// NewFaultFS wraps inner with the given schedule, armed.
func NewFaultFS(inner FS, cfg FaultConfig) *FaultFS {
	f := &FaultFS{inner: inner, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	f.armed.Store(true)
	return f
}

// Arm enables fault injection; Disarm pauses it (pass-through).
func (f *FaultFS) Arm()    { f.armed.Store(true) }
func (f *FaultFS) Disarm() { f.armed.Store(false) }

// Armed reports whether the schedule is live.
func (f *FaultFS) Armed() bool { return f.armed.Load() }

// SetHook installs (or, with nil, removes) a crash-point hook: it runs
// before every operation while armed, and a non-nil return is injected as
// that operation's error (wrapped in ErrInjected and counted). Hooks give
// tests exact fail-here points — "fail the Remove of wal-*.log once" —
// independent of the probabilistic schedule.
func (f *FaultFS) SetHook(h func(op Op, path string) error) {
	if h == nil {
		f.hook.Store(nil)
		return
	}
	f.hook.Store(&h)
}

// Injected returns how many faults have been injected in total.
func (f *FaultFS) Injected() int64 {
	var n int64
	for i := range f.injected {
		n += f.injected[i].Load()
	}
	return n
}

// InjectedFor returns how many faults have been injected for one
// operation class.
func (f *FaultFS) InjectedFor(op Op) int64 { return f.injected[op].Load() }

// inject builds, counts, and returns one injected error.
func (f *FaultFS) inject(op Op, path string, cause error) error {
	f.injected[op].Add(1)
	if cause != nil {
		return fmt.Errorf("vfs: injected %s fault on %s: %w: %w", op, path, ErrInjected, cause)
	}
	return fmt.Errorf("vfs: injected %s fault on %s: %w", op, path, ErrInjected)
}

// draw returns one uniform [0,1) variate from the seeded stream.
func (f *FaultFS) draw() float64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.rng.Float64()
}

// drawInt returns one uniform integer in [0, n) from the seeded stream.
func (f *FaultFS) drawInt(n int) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.rng.Intn(n)
}

// decide runs the hook and the single-probability schedule for op,
// returning a non-nil error when a fault fires.
func (f *FaultFS) decide(op Op, path string, p float64, cause error) error {
	if !f.armed.Load() {
		return nil
	}
	if hp := f.hook.Load(); hp != nil {
		if err := (*hp)(op, path); err != nil {
			return f.inject(op, path, err)
		}
	}
	if p > 0 && f.draw() < p {
		return f.inject(op, path, cause)
	}
	return nil
}

var errEIO = errors.New("input/output error (simulated)")

func (f *FaultFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	if err := f.decide(OpOpenFile, name, f.cfg.OpenErr, errEIO); err != nil {
		return nil, err
	}
	file, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: file, path: name}, nil
}

func (f *FaultFS) ReadFile(name string) ([]byte, error) {
	if err := f.decide(OpReadFile, name, f.cfg.ReadErr, errEIO); err != nil {
		return nil, err
	}
	data, err := f.inner.ReadFile(name)
	if err != nil {
		return nil, err
	}
	if f.armed.Load() && f.cfg.ReadCorrupt > 0 && len(data) > 0 && f.draw() < f.cfg.ReadCorrupt {
		// Silent single-bit rot: no error, one flipped bit, counted.
		i := f.drawInt(len(data) * 8)
		data[i/8] ^= 1 << (i % 8)
		f.injected[OpReadFile].Add(1)
	}
	return data, nil
}

func (f *FaultFS) Rename(oldpath, newpath string) error {
	if err := f.decide(OpRename, oldpath, f.cfg.RenameErr, errEIO); err != nil {
		return err
	}
	return f.inner.Rename(oldpath, newpath)
}

func (f *FaultFS) Remove(name string) error {
	if err := f.decide(OpRemove, name, f.cfg.RemoveErr, errEIO); err != nil {
		return err
	}
	return f.inner.Remove(name)
}

func (f *FaultFS) ReadDir(name string) ([]os.DirEntry, error) {
	if err := f.decide(OpReadDir, name, 0, nil); err != nil {
		return nil, err
	}
	return f.inner.ReadDir(name)
}

func (f *FaultFS) MkdirAll(path string, perm os.FileMode) error {
	if err := f.decide(OpMkdirAll, path, 0, nil); err != nil {
		return err
	}
	return f.inner.MkdirAll(path, perm)
}

func (f *FaultFS) SyncDir(dir string) error {
	if err := f.decide(OpSyncDir, dir, f.cfg.SyncDirErr, errEIO); err != nil {
		return err
	}
	return f.inner.SyncDir(dir)
}

// faultFile applies write/sync/read faults to one open handle.
type faultFile struct {
	fs    *FaultFS
	inner File
	path  string
}

func (ff *faultFile) Write(p []byte) (int, error) {
	fs := ff.fs
	if fs.armed.Load() {
		if hp := fs.hook.Load(); hp != nil {
			if err := (*hp)(OpWrite, ff.path); err != nil {
				return 0, fs.inject(OpWrite, ff.path, err)
			}
		}
		if total := fs.cfg.WriteENOSPC + fs.cfg.TornWrite; total > 0 {
			if r := fs.draw(); r < total {
				if r < fs.cfg.WriteENOSPC || len(p) < 2 {
					return 0, fs.inject(OpWrite, ff.path, syscall.ENOSPC)
				}
				// Torn write: a strict prefix reaches the file, then the
				// device "fails". The caller sees a short-write error; the
				// on-disk tail is a partial frame.
				n, werr := ff.inner.Write(p[:1+fs.drawInt(len(p)-1)])
				if werr != nil {
					return n, werr
				}
				return n, fs.inject(OpWrite, ff.path, errEIO)
			}
		}
	}
	return ff.inner.Write(p)
}

func (ff *faultFile) ReadAt(p []byte, off int64) (int, error) {
	if err := ff.fs.decide(OpReadAt, ff.path, ff.fs.cfg.ReadErr, errEIO); err != nil {
		return 0, err
	}
	return ff.inner.ReadAt(p, off)
}

func (ff *faultFile) Sync() error {
	if err := ff.fs.decide(OpSync, ff.path, ff.fs.cfg.SyncErr, errEIO); err != nil {
		return err
	}
	return ff.inner.Sync()
}

func (ff *faultFile) Close() error { return ff.inner.Close() }
