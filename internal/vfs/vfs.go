// Package vfs is the storage engine's filesystem seam: a small interface
// covering exactly the operations the durability layer performs — open,
// read, rename, remove, list, and the two fsync flavors (file and
// directory) — with a passthrough OS implementation and a deterministic
// seeded fault injector (fault.go).
//
// The seam exists so the failure model of internal/storage is *testable*:
// every fsync error, short write, ENOSPC, torn rename, and read corruption
// the disk can produce is producible on demand, byte-deterministically,
// from a seed. Production code pays one interface dispatch per filesystem
// call — noise against the syscall underneath, and measured (<1%) by the
// "faults" experiment in internal/experiments.
package vfs

import (
	"io"
	"os"
)

// File is an open file handle: the subset of *os.File the storage engine
// uses. Write appends at the current offset (engine files are written
// sequentially); ReadAt is the positional read of recovery and scrub
// paths; Sync is fsync.
type File interface {
	io.Writer
	io.ReaderAt
	// Sync flushes OS-buffered writes to stable storage (fsync).
	Sync() error
	Close() error
}

// FS is the filesystem interface the storage engine runs on. All paths are
// OS paths (the engine composes them with path/filepath). Implementations
// must be safe for concurrent use.
type FS interface {
	// OpenFile opens a file with os.OpenFile semantics.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// ReadFile reads the whole file, os.ReadFile semantics.
	ReadFile(name string) ([]byte, error)
	// Rename atomically renames oldpath to newpath (the commit point of
	// segment publication).
	Rename(oldpath, newpath string) error
	// Remove deletes a file.
	Remove(name string) error
	// ReadDir lists a directory, sorted by filename.
	ReadDir(name string) ([]os.DirEntry, error)
	// MkdirAll creates a directory tree.
	MkdirAll(path string, perm os.FileMode) error
	// SyncDir fsyncs a directory so a just-renamed entry is durable.
	SyncDir(dir string) error
}

// OS is the passthrough implementation: every call maps 1:1 onto the os
// package. This is the engine's default filesystem.
var OS FS = osFS{}

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) ReadFile(name string) ([]byte, error)         { return os.ReadFile(name) }
func (osFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                     { return os.Remove(name) }
func (osFS) ReadDir(name string) ([]os.DirEntry, error)   { return os.ReadDir(name) }
func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	cerr := d.Close()
	if err != nil {
		return err
	}
	return cerr
}
