package vfs

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

// TestOSPassthrough exercises every FS method against a real directory:
// the passthrough must behave exactly like the os package, including the
// rename-commit and dir-sync steps the storage engine's crash safety
// depends on.
func TestOSPassthrough(t *testing.T) {
	dir := t.TempDir()
	if err := OS.MkdirAll(filepath.Join(dir, "a", "b"), 0o755); err != nil {
		t.Fatal(err)
	}
	p := filepath.Join(dir, "a", "b", "f.tmp")
	f, err := OS.OpenFile(p, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello world")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	if _, err := f.ReadAt(buf, 6); err != nil || string(buf) != "world" {
		t.Fatalf("ReadAt = %q, %v", buf, err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	final := filepath.Join(dir, "a", "b", "f.dat")
	if err := OS.Rename(p, final); err != nil {
		t.Fatal(err)
	}
	if err := OS.SyncDir(filepath.Join(dir, "a", "b")); err != nil {
		t.Fatal(err)
	}
	data, err := OS.ReadFile(final)
	if err != nil || string(data) != "hello world" {
		t.Fatalf("ReadFile = %q, %v", data, err)
	}
	ents, err := OS.ReadDir(filepath.Join(dir, "a", "b"))
	if err != nil || len(ents) != 1 || ents[0].Name() != "f.dat" {
		t.Fatalf("ReadDir = %v, %v", ents, err)
	}
	if err := OS.Remove(final); err != nil {
		t.Fatal(err)
	}
	if _, err := OS.ReadFile(final); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("want ErrNotExist after Remove, got %v", err)
	}
}

// TestFaultDeterminism replays the same single-goroutine operation
// sequence against two injectors with the same seed: the injected faults
// must land on the same operations.
func TestFaultDeterminism(t *testing.T) {
	run := func(seed int64) []string {
		dir := t.TempDir()
		ffs := NewFaultFS(OS, FaultConfig{Seed: seed, SyncErr: 0.3, WriteENOSPC: 0.2, RenameErr: 0.3, RemoveErr: 0.3})
		var trace []string
		rec := func(step string, err error) {
			if errors.Is(err, ErrInjected) {
				trace = append(trace, step)
			} else if err != nil && !errors.Is(err, os.ErrNotExist) {
				t.Fatalf("%s: unscheduled error %v", step, err)
			}
		}
		for i := 0; i < 40; i++ {
			p := filepath.Join(dir, "f")
			f, err := ffs.OpenFile(p, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
			if err != nil {
				rec("open", err)
				continue
			}
			_, werr := f.Write([]byte("payload"))
			rec("write", werr)
			rec("sync", f.Sync())
			f.Close()
			rec("rename", ffs.Rename(p, p+".x"))
			rec("remove-a", ffs.Remove(p+".x"))
			rec("remove-b", ffs.Remove(p))
		}
		return trace
	}
	a, b := run(42), run(42)
	if len(a) == 0 {
		t.Fatal("schedule injected no faults; probabilities too low for the test to mean anything")
	}
	if len(a) != len(b) {
		t.Fatalf("same seed, different fault counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, diverging schedule at %d: %q vs %q", i, a[i], b[i])
		}
	}
	c := run(43)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced an identical fault schedule")
	}
}

// TestTornWriteLeavesPrefix forces the torn-write fault and checks its
// contract: a strict prefix of the buffer reaches the file and the write
// reports an injected error.
func TestTornWriteLeavesPrefix(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OS, FaultConfig{Seed: 7, TornWrite: 1.0})
	p := filepath.Join(dir, "torn")
	f, err := ffs.OpenFile(p, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0xAB}, 100)
	n, werr := f.Write(payload)
	if !errors.Is(werr, ErrInjected) {
		t.Fatalf("want injected write error, got %v", werr)
	}
	if n < 1 || n >= len(payload) {
		t.Fatalf("torn write persisted %d of %d bytes; want a strict non-empty prefix", n, len(payload))
	}
	f.Close()
	ffs.Disarm()
	data, err := ffs.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != n || !bytes.Equal(data, payload[:n]) {
		t.Fatalf("on-disk bytes = %d, want the %d-byte prefix", len(data), n)
	}
	if ffs.InjectedFor(OpWrite) != 1 {
		t.Fatalf("injected write count = %d, want 1", ffs.InjectedFor(OpWrite))
	}
}

// TestENOSPCAndHook checks that the ENOSPC fault satisfies
// errors.Is(err, syscall.ENOSPC) — the engine's degraded-mode trigger —
// and that a crash-point hook fires exactly where installed, disarm
// silences everything, and injection counts add up.
func TestENOSPCAndHook(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OS, FaultConfig{Seed: 1, WriteENOSPC: 1.0})
	f, err := ffs.OpenFile(filepath.Join(dir, "full"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, werr := f.Write([]byte("x")); !errors.Is(werr, syscall.ENOSPC) || !errors.Is(werr, ErrInjected) {
		t.Fatalf("want injected ENOSPC, got %v", werr)
	}
	f.Close()

	boom := errors.New("crash point")
	ffs.SetHook(func(op Op, path string) error {
		if op == OpRemove && filepath.Base(path) == "target" {
			return boom
		}
		return nil
	})
	if err := ffs.Remove(filepath.Join(dir, "other")); errors.Is(err, ErrInjected) {
		t.Fatalf("hook fired on the wrong path: %v", err)
	}
	err = ffs.Remove(filepath.Join(dir, "target"))
	if !errors.Is(err, ErrInjected) || !errors.Is(err, boom) {
		t.Fatalf("want hook-injected error, got %v", err)
	}
	ffs.SetHook(nil)

	ffs.Disarm()
	f, err = ffs.OpenFile(filepath.Join(dir, "full"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, werr := f.Write([]byte("x")); werr != nil {
		t.Fatalf("disarmed write failed: %v", werr)
	}
	f.Close()
	if got := ffs.Injected(); got != 2 {
		t.Fatalf("total injected = %d, want 2 (one ENOSPC, one hook)", got)
	}
}

// TestReadCorruptFlipsOneBit checks the silent-rot fault: ReadFile returns
// nil error with exactly one bit flipped.
func TestReadCorruptFlipsOneBit(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "rot")
	orig := bytes.Repeat([]byte{0x55}, 64)
	if err := os.WriteFile(p, orig, 0o644); err != nil {
		t.Fatal(err)
	}
	ffs := NewFaultFS(OS, FaultConfig{Seed: 3, ReadCorrupt: 1.0})
	data, err := ffs.ReadFile(p)
	if err != nil {
		t.Fatalf("silent corruption must not error: %v", err)
	}
	diff := 0
	for i := range data {
		for b := 0; b < 8; b++ {
			if (data[i]^orig[i])&(1<<b) != 0 {
				diff++
			}
		}
	}
	if diff != 1 {
		t.Fatalf("corrupt read flipped %d bits, want exactly 1", diff)
	}
	// The file itself is untouched; only the returned copy rots.
	ondisk, _ := os.ReadFile(p)
	if !bytes.Equal(ondisk, orig) {
		t.Fatal("ReadCorrupt modified the file on disk")
	}
}
