package btree

import "learnedindex/internal/search"

// FixedSize is the Figure 5 baseline "Fixed-size B-Tree w/ interpolation
// search" [1]: a B-Tree whose height is chosen so the whole index fits a
// byte budget, with interpolation search used both inside index nodes and
// inside the (large) data pages the sparse index leaves behind.
type FixedSize struct {
	keys     []uint64
	pageSize int
	levels   [][]uint64
	fanout   int
}

// NewFixedSize builds a fixed-size B-Tree over sorted keys whose index
// arrays total at most budgetBytes. The page size (keys per indexed page)
// is grown until the separator arrays fit the budget.
func NewFixedSize(keys []uint64, budgetBytes int) *FixedSize {
	const fanout = 64
	pageSize := 16
	for {
		sz := separatorsSize(len(keys), pageSize, fanout)
		if sz <= budgetBytes || pageSize > len(keys) {
			break
		}
		pageSize *= 2
	}
	t := &FixedSize{keys: keys, pageSize: pageSize, fanout: fanout}
	if len(keys) == 0 {
		return t
	}
	nPages := (len(keys) + pageSize - 1) / pageSize
	l0 := make([]uint64, nPages)
	for i := 0; i < nPages; i++ {
		l0[i] = keys[i*pageSize]
	}
	t.levels = append(t.levels, l0)
	for len(t.levels[len(t.levels)-1]) > fanout {
		below := t.levels[len(t.levels)-1]
		n := (len(below) + fanout - 1) / fanout
		lvl := make([]uint64, n)
		for i := 0; i < n; i++ {
			lvl[i] = below[i*fanout]
		}
		t.levels = append(t.levels, lvl)
	}
	return t
}

func separatorsSize(n, pageSize, fanout int) int {
	total := 0
	lvl := (n + pageSize - 1) / pageSize
	for {
		total += lvl * 8
		if lvl <= fanout {
			break
		}
		lvl = (lvl + fanout - 1) / fanout
	}
	return total
}

// Lookup returns the lower-bound position of key using interpolation search
// at every level and within the final data page.
func (t *FixedSize) Lookup(key uint64) int {
	n := len(t.keys)
	if n == 0 {
		return 0
	}
	top := t.levels[len(t.levels)-1]
	slot := interpUpperMinus1(top, key, 0, len(top))
	for li := len(t.levels) - 2; li >= 0; li-- {
		lvl := t.levels[li]
		lo := slot * t.fanout
		hi := lo + t.fanout
		if hi > len(lvl) {
			hi = len(lvl)
		}
		slot = interpUpperMinus1(lvl, key, lo, hi)
	}
	lo := slot * t.pageSize
	hi := lo + t.pageSize
	if hi > n {
		hi = n
	}
	return search.Interpolation(t.keys, key, lo, hi)
}

// Contains reports whether key is present.
func (t *FixedSize) Contains(key uint64) bool {
	p := t.Lookup(key)
	return p < len(t.keys) && t.keys[p] == key
}

// SizeBytes returns the footprint of the separator arrays.
func (t *FixedSize) SizeBytes() int {
	total := 0
	for _, lvl := range t.levels {
		total += len(lvl) * 8
	}
	return total
}

// PageSize returns the resulting keys-per-page after fitting the budget.
func (t *FixedSize) PageSize() int { return t.pageSize }

// interpUpperMinus1 returns the last slot s in [lo, hi) with lvl[s] <= key
// using interpolation search (or lo if none).
func interpUpperMinus1(lvl []uint64, key uint64, lo, hi int) int {
	s := search.Interpolation(lvl, key, lo, hi) // first slot >= key
	if s < hi && lvl[s] == key {
		return s
	}
	if s == lo {
		return lo
	}
	return s - 1
}
