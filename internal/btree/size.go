package btree

// SizeBytes returns the memory footprint of the index structure itself,
// excluding the indexed data array — matching the paper's Figure 4/6
// convention of counting only index overhead ("we only counted the extra
// index overhead excluding the sorted array itself", Appendix B).
//
// For fixed-width keys each separator costs the key width; string
// separators cost a 16-byte header plus the string bytes (Go slices share
// backing data with the key array, but a production tree would materialize
// separators, so we charge them in full as the paper's B-Tree does).
func (t *Index[K]) SizeBytes() int {
	total := 0
	for _, lvl := range t.levels {
		for _, k := range lvl {
			total += keyBytes(k)
		}
	}
	return total
}

func keyBytes[K any](k K) int {
	switch v := any(k).(type) {
	case uint64, int64, float64:
		return 8
	case uint32, int32, float32:
		return 4
	case string:
		return 16 + len(v)
	default:
		return 8
	}
}
