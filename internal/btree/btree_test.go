package btree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"learnedindex/internal/data"
)

func oracle(keys []uint64, k uint64) int {
	return sort.Search(len(keys), func(i int) bool { return keys[i] >= k })
}

func TestLookupMatchesOracleAcrossPageSizes(t *testing.T) {
	keys := data.Lognormal(20_000, 0, 2, 1_000_000_000, 1)
	for _, ps := range []int{2, 3, 32, 64, 100, 128, 512, 4096} {
		tr := New([]uint64(keys), ps)
		probes := append(data.SampleExisting(keys, 2000, 2), data.SampleMissing(keys, 500, 3)...)
		probes = append(probes, 0, keys[0]-1, keys[0], keys[len(keys)-1], keys[len(keys)-1]+1)
		for _, p := range probes {
			want := oracle(keys, p)
			if got := tr.Lookup(p); got != want {
				t.Fatalf("pageSize=%d: Lookup(%d) = %d, want %d", ps, p, got, want)
			}
		}
	}
}

func TestContains(t *testing.T) {
	keys := data.Dense(1000, 10, 10) // 10, 20, ..., 10000
	tr := New([]uint64(keys), 16)
	for _, k := range keys {
		if !tr.Contains(k) {
			t.Fatalf("missing key %d", k)
		}
		if tr.Contains(k + 1) {
			t.Fatalf("phantom key %d", k+1)
		}
	}
}

func TestHeightShrinksWithPageSize(t *testing.T) {
	keys := data.Uniform(100_000, 1<<50, 1)
	h32 := New([]uint64(keys), 32).Height()
	h512 := New([]uint64(keys), 512).Height()
	if h512 >= h32 {
		t.Fatalf("height should shrink with page size: h32=%d h512=%d", h32, h512)
	}
}

func TestSizeHalvesWithDoublePageSize(t *testing.T) {
	// Figure 4's size column: doubling the page size halves the index size.
	keys := data.Uniform(100_000, 1<<50, 1)
	prev := New([]uint64(keys), 32).SizeBytes()
	for _, ps := range []int{64, 128, 256, 512} {
		cur := New([]uint64(keys), ps).SizeBytes()
		ratio := float64(prev) / float64(cur)
		if ratio < 1.8 || ratio > 2.3 {
			t.Fatalf("pageSize %d→%d: size ratio %.2f, want ~2", ps/2, ps, ratio)
		}
		prev = cur
	}
}

func TestEmptyAndTiny(t *testing.T) {
	tr := New([]uint64{}, 16)
	if got := tr.Lookup(5); got != 0 {
		t.Fatalf("empty lookup = %d", got)
	}
	tr = New([]uint64{7}, 16)
	if tr.Lookup(3) != 0 || tr.Lookup(7) != 0 || tr.Lookup(9) != 1 {
		t.Fatal("single-key lookups wrong")
	}
}

func TestStringKeys(t *testing.T) {
	keys := []string(data.DocIDs(5000, 1))
	tr := New(keys, 64)
	probes := data.SampleExistingStrings(data.StringKeys(keys), 1000, 2)
	probes = append(probes, "", "zzzz", keys[0], keys[len(keys)-1])
	for _, p := range probes {
		want := sort.SearchStrings(keys, p)
		if got := tr.Lookup(p); got != want {
			t.Fatalf("string Lookup(%q) = %d, want %d", p, got, want)
		}
	}
}

func TestWithFanout(t *testing.T) {
	keys := data.Uniform(50_000, 1<<40, 1)
	tr := New([]uint64(keys), 16, WithFanout(256))
	probes := data.SampleExisting(keys, 1000, 2)
	for _, p := range probes {
		if got, want := tr.Lookup(p), oracle(keys, p); got != want {
			t.Fatalf("fanout variant Lookup(%d) = %d, want %d", p, got, want)
		}
	}
}

func TestQuickRandomSets(t *testing.T) {
	f := func(raw []uint64, probe uint64, psRaw uint8) bool {
		sort.Slice(raw, func(i, j int) bool { return raw[i] < raw[j] })
		// dedupe
		keys := raw[:0]
		var prev uint64
		for i, k := range raw {
			if i == 0 || k != prev {
				keys = append(keys, k)
				prev = k
			}
		}
		ps := int(psRaw)%64 + 2
		tr := New(keys, ps)
		return tr.Lookup(probe) == oracle(keys, probe)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestNumSeparators(t *testing.T) {
	keys := data.Dense(10_000, 0, 1)
	tr := New([]uint64(keys), 100)
	// level0: 100 separators; level1: 1 — total 101, but level0 (100) fits
	// within fanout (100), so only one level.
	if tr.Height() != 1 {
		t.Fatalf("height = %d, want 1", tr.Height())
	}
	if tr.NumSeparators() != 100 {
		t.Fatalf("separators = %d, want 100", tr.NumSeparators())
	}
}

func TestFixedSizeBudgetRespected(t *testing.T) {
	keys := data.Lognormal(100_000, 0, 2, 1_000_000_000, 1)
	for _, budget := range []int{1 << 12, 1 << 16, 1 << 20} {
		tr := NewFixedSize(keys, budget)
		if tr.SizeBytes() > budget {
			t.Fatalf("budget %d exceeded: %d", budget, tr.SizeBytes())
		}
	}
}

func TestFixedSizeLookupMatchesOracle(t *testing.T) {
	keys := data.Lognormal(30_000, 0, 2, 1_000_000_000, 1)
	tr := NewFixedSize(keys, 1<<14)
	probes := append(data.SampleExisting(keys, 2000, 2), data.SampleMissing(keys, 500, 3)...)
	probes = append(probes, 0, keys[len(keys)-1]+1)
	for _, p := range probes {
		want := oracle(keys, p)
		if got := tr.Lookup(p); got != want {
			t.Fatalf("FixedSize.Lookup(%d) = %d, want %d", p, got, want)
		}
	}
	if !tr.Contains(keys[17]) || tr.Contains(keys[17]+1) && keys[17]+1 != keys[18] {
		t.Fatal("FixedSize.Contains wrong")
	}
}

func TestFixedSizeSmallerBudgetBiggerPages(t *testing.T) {
	keys := data.Uniform(100_000, 1<<40, 1)
	small := NewFixedSize(keys, 1<<12)
	big := NewFixedSize(keys, 1<<20)
	if small.PageSize() <= big.PageSize() {
		t.Fatalf("smaller budget should force bigger pages: %d vs %d", small.PageSize(), big.PageSize())
	}
}

func BenchmarkLookupPage128(b *testing.B) {
	keys := data.Lognormal(1_000_000, 0, 2, 1_000_000_000, 1)
	tr := New([]uint64(keys), 128)
	probes := data.SampleExisting(keys, 1<<16, 2)
	rand.New(rand.NewSource(1)).Shuffle(len(probes), func(i, j int) { probes[i], probes[j] = probes[j], probes[i] })
	b.ResetTimer()
	var s int
	for i := 0; i < b.N; i++ {
		s += tr.Lookup(probes[i&(1<<16-1)])
	}
	sink = s
}

var sink int
