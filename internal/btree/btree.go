// Package btree implements the paper's main baseline: a read-optimized,
// bulk-loaded B-Tree over an in-memory dense sorted array.
//
// The design follows the paper's description of its "production quality
// B-Tree implementation which is similar to the stx::btree but with further
// cache-line optimization, dense pages (i.e., fill factor of 100%)" (§3.7.1)
// and its assumptions: fixed-length records, logical paging over a single
// continuous sorted array (§2). Concretely, the index stores, per level, a
// flat array of separator keys — the first key of every page — and inner
// levels that take every fanout-th separator of the level below. Child
// addresses are implicit offsets (i -> [i*fanout, (i+1)*fanout)), the
// offset-not-pointer trick the paper attributes to modern in-memory trees
// (§6), so a node never stores pointers and the whole index is a handful of
// contiguous allocations.
//
// Lookup cost is one binary search per level over at most `fanout` keys plus
// one binary search inside the data page — exactly the log_fanout(N) node
// traversals of §2.1.
package btree

import (
	"cmp"
	"sort"
)

// Index is a bulk-loaded read-only B-Tree over a sorted key array. The
// "page size" is the number of keys per data page, matching the paper's
// Figure 4 convention ("the page size for B-Trees indicates the number of
// keys per page not the size in Bytes").
type Index[K cmp.Ordered] struct {
	keys     []K   // the indexed sorted array (not owned, not counted in SizeBytes)
	pageSize int   // keys per data page
	fanout   int   // separators per inner node
	levels   [][]K // levels[0] = first key of every page; levels[i+1] sparser
}

// Option configures index construction.
type Option func(*config)

type config struct {
	fanout int
}

// WithFanout sets the number of separators per inner node (default: equal to
// the page size, giving a uniform tree like stx::btree with identical inner
// and leaf slots).
func WithFanout(f int) Option {
	return func(c *config) { c.fanout = f }
}

// New bulk-loads a B-Tree over keys (which must be sorted ascending) with
// the given page size. The keys slice is retained, not copied: the tree
// indexes the caller's array, as a database index references its table.
func New[K cmp.Ordered](keys []K, pageSize int, opts ...Option) *Index[K] {
	if pageSize < 2 {
		pageSize = 2
	}
	cfg := config{fanout: pageSize}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.fanout < 2 {
		cfg.fanout = 2
	}
	t := &Index[K]{keys: keys, pageSize: pageSize, fanout: cfg.fanout}
	if len(keys) == 0 {
		return t
	}
	// Level 0: first key of every page.
	nPages := (len(keys) + pageSize - 1) / pageSize
	l0 := make([]K, nPages)
	for i := 0; i < nPages; i++ {
		l0[i] = keys[i*pageSize]
	}
	t.levels = append(t.levels, l0)
	// Higher levels until the top fits in one node.
	for len(t.levels[len(t.levels)-1]) > cfg.fanout {
		below := t.levels[len(t.levels)-1]
		n := (len(below) + cfg.fanout - 1) / cfg.fanout
		lvl := make([]K, n)
		for i := 0; i < n; i++ {
			lvl[i] = below[i*cfg.fanout]
		}
		t.levels = append(t.levels, lvl)
	}
	return t
}

// Lookup returns the lower-bound position of key in the indexed array: the
// index of the first key >= key, or len(keys) if all keys are smaller.
func (t *Index[K]) Lookup(key K) int {
	n := len(t.keys)
	if n == 0 {
		return 0
	}
	// Descend from the top level. At each level we know the answer lies in
	// the child range [lo, hi) of separator slots.
	top := t.levels[len(t.levels)-1]
	slot := upperBoundMinus1(top, key, 0, len(top))
	for li := len(t.levels) - 2; li >= 0; li-- {
		lvl := t.levels[li]
		lo := slot * t.fanout
		hi := lo + t.fanout
		if hi > len(lvl) {
			hi = len(lvl)
		}
		slot = upperBoundMinus1(lvl, key, lo, hi)
	}
	// slot is now the page index; binary search within the page.
	lo := slot * t.pageSize
	hi := lo + t.pageSize
	if hi > n {
		hi = n
	}
	pos := lowerBound(t.keys, key, lo, hi)
	return pos
}

// Contains reports whether key is present.
func (t *Index[K]) Contains(key K) bool {
	p := t.Lookup(key)
	return p < len(t.keys) && t.keys[p] == key
}

// Height returns the number of index levels (excluding the data array).
func (t *Index[K]) Height() int { return len(t.levels) }

// PageSize returns the number of keys per data page.
func (t *Index[K]) PageSize() int { return t.pageSize }

// NumSeparators returns the total number of separator keys stored.
func (t *Index[K]) NumSeparators() int {
	n := 0
	for _, l := range t.levels {
		n += len(l)
	}
	return n
}

// upperBoundMinus1 returns the last slot s in [lo, hi) with lvl[s] <= key,
// or lo if none (descend into the first child for keys below the minimum).
func upperBoundMinus1[K cmp.Ordered](lvl []K, key K, lo, hi int) int {
	// find first slot with lvl[s] > key
	s := lo + sort.Search(hi-lo, func(i int) bool { return lvl[lo+i] > key })
	if s == lo {
		return lo
	}
	return s - 1
}

// lowerBound returns the first index in [lo, hi) with keys[i] >= key, or hi.
func lowerBound[K cmp.Ordered](keys []K, key K, lo, hi int) int {
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if keys[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
