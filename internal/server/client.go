package server

import (
	"errors"
	"fmt"
	"time"

	"learnedindex/internal/repl"
)

// RemoteError is a store-level failure relayed over a healthy connection
// (for example a durable insert refused by a read-only follower). The
// connection remains usable; retrying the same request will fail the same
// way, so callers should not treat it like a transport fault.
type RemoteError struct{ Msg string }

func (e *RemoteError) Error() string { return "server: remote: " + e.Msg }

// Status is the server's replication/status snapshot (the Status RPC).
type Status struct {
	// Follower is true when the served store replays a primary rather
	// than accepting writes.
	Follower bool
	// Connected, AppliedSeq, PrimaryDurableSeq, LagFrames, and MaxEpoch
	// mirror repl.FollowerStatus; all zero on a primary.
	Connected         bool
	AppliedSeq        uint64
	PrimaryDurableSeq uint64
	LagFrames         uint64
	MaxEpoch          uint64
	// Len is the store's visible key count at the time of the request.
	Len int
}

// ClientOptions tunes a Client. The zero value is ready to use.
type ClientOptions struct {
	// Timeout bounds each RPC end to end (default 30s), enforced — like
	// every deadline on this transport seam — by a watchdog that closes
	// the connection.
	Timeout time.Duration
}

// Client is one wire connection to a Server. It is NOT safe for concurrent
// use: the protocol is strict request/response, so callers that want
// parallelism hold several clients (the router keeps a pool per node).
type Client struct {
	c        repl.Conn
	strMode  bool
	follower bool
	timeout  time.Duration

	rbuf, wbuf []byte
	req, resp  wmsg
}

var errMode = errors.New("server: method does not match the client's key mode")

// Dial connects to a server at addr over t and performs the handshake.
// strMode must match the served store's key mode; a mismatch is a handshake
// error, not a latent panic.
func Dial(t repl.Transport, addr string, strMode bool, opt ClientOptions) (*Client, error) {
	if opt.Timeout <= 0 {
		opt.Timeout = 30 * time.Second
	}
	conn, err := t.Dial(addr)
	if err != nil {
		return nil, err
	}
	c := &Client{
		c:       conn,
		strMode: strMode,
		timeout: opt.Timeout,
		rbuf:    make([]byte, 0, 4096),
		wbuf:    make([]byte, 0, 4096),
	}
	c.req = wmsg{kind: msgHello, strMode: strMode}
	resp, err := c.rpc(&c.req, msgServerHello)
	if err != nil {
		conn.Close()
		return nil, err
	}
	if resp.strMode != strMode {
		conn.Close()
		return nil, fmt.Errorf("server: handshake key-mode mismatch")
	}
	c.follower = resp.follower
	return c, nil
}

// Follower reports whether the remote store is a replication follower
// (read-only over this protocol), as learned at the handshake.
func (c *Client) Follower() bool { return c.follower }

// Close severs the connection. Safe to call twice.
func (c *Client) Close() error { return c.c.Close() }

// rpc writes one request and reads its one response, bounded end to end by
// the client timeout (watchdog close, not a deadline). A msgErr response
// surfaces as *RemoteError with the connection still usable; any other
// failure means the connection is broken and the caller should Close.
func (c *Client) rpc(req *wmsg, wantKind byte) (*wmsg, error) {
	wd := time.AfterFunc(c.timeout, func() { c.c.Close() })
	defer wd.Stop()
	if err := writeWmsg(c.c, &c.wbuf, req); err != nil {
		return nil, err
	}
	if err := readWmsg(c.c, &c.rbuf, c.strMode, &c.resp); err != nil {
		return nil, err
	}
	if c.resp.kind == msgErr {
		return nil, &RemoteError{Msg: c.resp.errMsg}
	}
	if c.resp.kind != wantKind {
		return nil, errWire
	}
	return &c.resp, nil
}

// LookupBatch answers Lookup for every probe in probe order, plus the
// store's visible length at the same instant (the router turns per-node
// positions into global ones with it).
func (c *Client) LookupBatch(probes []uint64) (pos []int, storeLen int, err error) {
	if c.strMode {
		return nil, 0, errMode
	}
	c.req = wmsg{kind: msgLookupBatch, keys: probes}
	resp, err := c.rpc(&c.req, msgPositions)
	if err != nil {
		return nil, 0, err
	}
	if len(resp.keys) != len(probes) {
		return nil, 0, errWire
	}
	pos = make([]int, len(resp.keys))
	for i, p := range resp.keys {
		pos[i] = int(p)
	}
	return pos, int(resp.storeLen), nil
}

// LookupBatchString is LookupBatch for a string-keyed store.
func (c *Client) LookupBatchString(probes []string) (pos []int, storeLen int, err error) {
	if !c.strMode {
		return nil, 0, errMode
	}
	c.req = wmsg{kind: msgLookupBatch, strMode: true, strs: probes}
	resp, err := c.rpc(&c.req, msgPositions)
	if err != nil {
		return nil, 0, err
	}
	if len(resp.keys) != len(probes) {
		return nil, 0, errWire
	}
	pos = make([]int, len(resp.keys))
	for i, p := range resp.keys {
		pos[i] = int(p)
	}
	return pos, int(resp.storeLen), nil
}

// ContainsBatch answers Contains for every probe in probe order.
func (c *Client) ContainsBatch(probes []uint64) ([]bool, error) {
	if c.strMode {
		return nil, errMode
	}
	c.req = wmsg{kind: msgContainsBatch, keys: probes}
	resp, err := c.rpc(&c.req, msgBools)
	if err != nil {
		return nil, err
	}
	if len(resp.bools) != len(probes) {
		return nil, errWire
	}
	return resp.bools, nil
}

// ContainsBatchString is ContainsBatch for a string-keyed store.
func (c *Client) ContainsBatchString(probes []string) ([]bool, error) {
	if !c.strMode {
		return nil, errMode
	}
	c.req = wmsg{kind: msgContainsBatch, strMode: true, strs: probes}
	resp, err := c.rpc(&c.req, msgBools)
	if err != nil {
		return nil, err
	}
	if len(resp.bools) != len(probes) {
		return nil, errWire
	}
	return resp.bools, nil
}

// Scan returns one page of up to limit keys from [lo, hi) in ascending
// order (hi ignored when bounded is false: scan to the end), and whether
// more keys exist past the page. Resume by calling again with lo set to
// the successor of the last key.
func (c *Client) Scan(lo, hi uint64, bounded bool, limit int) (keys []uint64, more bool, err error) {
	if c.strMode {
		return nil, false, errMode
	}
	c.req = wmsg{kind: msgScan, lo: lo, hi: hi, bounded: bounded, limit: uint64(limit)}
	resp, err := c.rpc(&c.req, msgKeys)
	if err != nil {
		return nil, false, err
	}
	return resp.keys, resp.more, nil
}

// ScanString is Scan for a string-keyed store.
func (c *Client) ScanString(lo, hi string, bounded bool, limit int) (keys []string, more bool, err error) {
	if !c.strMode {
		return nil, false, errMode
	}
	c.req = wmsg{kind: msgScan, strMode: true, loS: lo, hiS: hi, bounded: bounded, limit: uint64(limit)}
	resp, err := c.rpc(&c.req, msgKeys)
	if err != nil {
		return nil, false, err
	}
	return resp.strs, resp.more, nil
}

// CountRange returns the exact number of keys in [lo, hi) (or [lo, ∞) when
// bounded is false).
func (c *Client) CountRange(lo, hi uint64, bounded bool) (int, error) {
	if c.strMode {
		return 0, errMode
	}
	c.req = wmsg{kind: msgCountRange, lo: lo, hi: hi, bounded: bounded}
	resp, err := c.rpc(&c.req, msgCount)
	if err != nil {
		return 0, err
	}
	return int(resp.count), nil
}

// CountRangeString is CountRange for a string-keyed store.
func (c *Client) CountRangeString(lo, hi string, bounded bool) (int, error) {
	if !c.strMode {
		return 0, errMode
	}
	c.req = wmsg{kind: msgCountRange, strMode: true, loS: lo, hiS: hi, bounded: bounded}
	resp, err := c.rpc(&c.req, msgCount)
	if err != nil {
		return 0, err
	}
	return int(resp.count), nil
}

// Insert durably inserts keys via the store's group-commit write path: when
// it returns nil the keys are fsync-durable on the server. Duplicate keys
// are no-ops (set semantics), which is what makes retry-after-timeout safe.
func (c *Client) Insert(keys []uint64) error {
	if c.strMode {
		return errMode
	}
	c.req = wmsg{kind: msgInsert, keys: keys}
	_, err := c.rpc(&c.req, msgOK)
	return err
}

// InsertString is Insert for a string-keyed store.
func (c *Client) InsertString(keys []string) error {
	if !c.strMode {
		return errMode
	}
	c.req = wmsg{kind: msgInsert, strMode: true, strs: keys}
	_, err := c.rpc(&c.req, msgOK)
	return err
}

// StatusRPC fetches the server's replication status and visible length.
func (c *Client) StatusRPC() (Status, error) {
	c.req = wmsg{kind: msgStatus, strMode: c.strMode}
	resp, err := c.rpc(&c.req, msgStatusInfo)
	if err != nil {
		return Status{}, err
	}
	return Status{
		Follower:          resp.follower,
		Connected:         resp.connected,
		AppliedSeq:        resp.applied,
		PrimaryDurableSeq: resp.durable,
		LagFrames:         resp.lag,
		MaxEpoch:          resp.epoch,
		Len:               int(resp.storeLen),
	}, nil
}
