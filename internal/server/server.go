package server

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"learnedindex/internal/obs"
	"learnedindex/internal/repl"
	"learnedindex/internal/scan"
	"learnedindex/internal/serve"
)

// Options tunes a Server. The zero value is ready to use.
type Options struct {
	// MaxInflight bounds the number of requests executing against the
	// store at once, across all connections (default 64). Excess requests
	// queue on their connection — backpressure, not rejection — so a
	// misbehaving client herd cannot turn the store into a thread pool.
	MaxInflight int
	// IdleTimeout is the per-connection read deadline: a connection that
	// sends no request for this long is closed (default 2m). Enforced by
	// a watchdog that closes the connection rather than by transport
	// deadlines, so TCP, the in-memory transport, and FaultNet all behave
	// identically (repl.Conn has no deadline surface by design).
	IdleTimeout time.Duration
	// WriteTimeout bounds each response write the same way (default 30s):
	// a client that stops draining its socket loses the connection, not
	// the server a goroutine.
	WriteTimeout time.Duration
	// MaxScanKeys clamps the page size of a Scan response (default 65536)
	// regardless of the limit the client asked for, bounding per-request
	// memory the way maxWireKeys bounds decode allocations.
	MaxScanKeys int
	// DrainTimeout is how long Close waits for in-flight requests to
	// finish and flush their responses before severing connections
	// (default 5s).
	DrainTimeout time.Duration
}

func (o Options) withDefaults() Options {
	if o.MaxInflight <= 0 {
		o.MaxInflight = 64
	}
	if o.IdleTimeout <= 0 {
		o.IdleTimeout = 2 * time.Minute
	}
	if o.WriteTimeout <= 0 {
		o.WriteTimeout = 30 * time.Second
	}
	if o.MaxScanKeys <= 0 {
		o.MaxScanKeys = 1 << 16
	}
	if o.MaxScanKeys > maxWireKeys {
		o.MaxScanKeys = maxWireKeys
	}
	if o.DrainTimeout <= 0 {
		o.DrainTimeout = 5 * time.Second
	}
	return o
}

// serverMetrics is the lix_server_* series, registered on the store's own
// registry so one scrape sees the store and its wire front end together.
type serverMetrics struct {
	conns      *obs.Gauge   // lix_server_conns: open connections
	accepts    *obs.Counter // lix_server_accepts_total
	requests   map[byte]*obs.Counter
	errors     *obs.Counter // lix_server_errors_total: respErr sent
	wireErrors *obs.Counter // lix_server_wire_errors_total: corrupt/broken conns
	timeouts   *obs.Counter // lix_server_timeouts_total: watchdog closes
	keysIn     *obs.Counter // lix_server_keys_in_total
	keysOut    *obs.Counter // lix_server_keys_out_total
	reqNs      *obs.Histogram
}

var opNames = map[byte]string{
	msgLookupBatch:   "lookup_batch",
	msgContainsBatch: "contains_batch",
	msgScan:          "scan",
	msgCountRange:    "count_range",
	msgInsert:        "insert",
	msgStatus:        "status",
}

func newServerMetrics(reg *obs.Registry) serverMetrics {
	m := serverMetrics{
		conns:      reg.Gauge("lix_server_conns"),
		accepts:    reg.Counter("lix_server_accepts_total"),
		requests:   make(map[byte]*obs.Counter, len(opNames)),
		errors:     reg.Counter("lix_server_errors_total"),
		wireErrors: reg.Counter("lix_server_wire_errors_total"),
		timeouts:   reg.Counter("lix_server_timeouts_total"),
		keysIn:     reg.Counter("lix_server_keys_in_total"),
		keysOut:    reg.Counter("lix_server_keys_out_total"),
		reqNs:      reg.Histogram("lix_server_request_ns"),
	}
	for kind, name := range opNames {
		m.requests[kind] = reg.Counter(obs.L("lix_server_requests_total", "op", name))
	}
	return m
}

// Server fronts one serve.Store with the wire protocol. Serve accepts
// connections until Close, which drains gracefully: the listener closes
// first, in-flight requests finish and flush their responses (bounded by
// DrainTimeout), then the remaining connections are severed.
type Server struct {
	st  *serve.Store
	opt Options
	m   serverMetrics

	inflight chan struct{}
	reqWG    sync.WaitGroup // in-flight request executions
	connWG   sync.WaitGroup // per-connection handler goroutines

	mu     sync.Mutex
	ln     repl.Listener
	conns  map[repl.Conn]struct{}
	closed bool
}

// NewServer wraps st; it does not listen until Serve.
func NewServer(st *serve.Store, opt Options) *Server {
	s := &Server{
		st:    st,
		opt:   opt.withDefaults(),
		conns: make(map[repl.Conn]struct{}),
		m:     newServerMetrics(st.Registry()),
	}
	s.inflight = make(chan struct{}, s.opt.MaxInflight)
	return s
}

// Serve binds addr on t and accepts connections in a background goroutine.
// The bound address (useful with ":0") is available via Addr.
func (s *Server) Serve(t repl.Transport, addr string) error {
	ln, err := t.Listen(addr)
	if err != nil {
		return err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return errors.New("server: closed")
	}
	if s.ln != nil {
		s.mu.Unlock()
		ln.Close()
		return errors.New("server: already serving")
	}
	s.ln = ln
	s.mu.Unlock()
	s.connWG.Add(1)
	go s.acceptLoop(ln)
	return nil
}

// Addr returns the bound listener address, or "" before Serve.
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr()
}

func (s *Server) acceptLoop(ln repl.Listener) {
	defer s.connWG.Done()
	for {
		c, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.Close()
			return
		}
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.m.accepts.Inc()
		s.m.conns.Add(1)
		s.connWG.Add(1)
		go s.handleConn(c)
	}
}

// Close stops accepting, waits up to DrainTimeout for in-flight requests
// to finish and flush, then severs every remaining connection. It does not
// close the store.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	// Drain: requests already executing complete and their responses are
	// written before we cut the connections under them.
	done := make(chan struct{})
	go func() {
		s.reqWG.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(s.opt.DrainTimeout):
	}
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.connWG.Wait()
	return nil
}

func (s *Server) dropConn(c repl.Conn) {
	c.Close()
	s.mu.Lock()
	if _, ok := s.conns[c]; ok {
		delete(s.conns, c)
		s.m.conns.Add(-1)
	}
	s.mu.Unlock()
}

// handleConn runs the handshake and then the request/response loop. The
// read watchdog enforces IdleTimeout and the write watchdog WriteTimeout,
// both by closing the connection (never deadlines — see Options).
func (s *Server) handleConn(c repl.Conn) {
	defer s.connWG.Done()
	defer s.dropConn(c)

	var timedOut sync.Once
	timeout := func() {
		timedOut.Do(func() { s.m.timeouts.Inc() })
		c.Close()
	}
	strMode := s.st.StringKeys()
	var req, resp wmsg
	rbuf := make([]byte, 0, 4096)
	wbuf := make([]byte, 0, 4096)

	// Handshake: the client leads with hello; a key-mode mismatch is
	// answered with an explicit error (the one respErr a client can get
	// before serverHello) so the operator sees "wrong mode", not EOF.
	wd := time.AfterFunc(s.opt.IdleTimeout, timeout)
	err := readWmsg(c, &rbuf, strMode, &req)
	wd.Stop()
	if err != nil || req.kind != msgHello {
		s.m.wireErrors.Inc()
		return
	}
	if req.strMode != strMode {
		resp = wmsg{kind: msgErr, errMsg: fmt.Sprintf("server: key mode mismatch: client strings=%v, store strings=%v", req.strMode, strMode)}
		s.writeResp(c, &wbuf, &resp)
		return
	}
	resp = wmsg{kind: msgServerHello, strMode: strMode, follower: s.st.IsFollower()}
	if !s.writeResp(c, &wbuf, &resp) {
		return
	}

	for {
		wd := time.AfterFunc(s.opt.IdleTimeout, timeout)
		err := readWmsg(c, &rbuf, strMode, &req)
		wd.Stop()
		if err != nil {
			// A bare io.EOF means the client hung up on a frame boundary —
			// a normal disconnect, not a corrupt conn. Mid-frame EOF
			// surfaces as ErrUnexpectedEOF and still counts.
			if !errors.Is(err, io.EOF) {
				s.m.wireErrors.Inc()
			}
			return
		}
		s.mu.Lock()
		closing := s.closed
		s.mu.Unlock()
		if closing {
			return
		}
		ctr, ok := s.m.requests[req.kind]
		if !ok {
			s.m.wireErrors.Inc()
			return // request kind unknown or a response kind: protocol abuse
		}
		ctr.Inc()

		// The semaphore bounds store work across all connections; the
		// reqWG makes Close wait for the response flush, not just the
		// store call.
		s.inflight <- struct{}{}
		s.reqWG.Add(1)
		start := time.Now()
		s.handle(&req, &resp)
		s.m.reqNs.ObserveDuration(time.Since(start))
		<-s.inflight
		okWrite := s.writeResp(c, &wbuf, &resp)
		s.reqWG.Done()
		if !okWrite {
			return
		}
	}
}

func (s *Server) writeResp(c repl.Conn, wbuf *[]byte, m *wmsg) bool {
	wd := time.AfterFunc(s.opt.WriteTimeout, func() {
		s.m.timeouts.Inc()
		c.Close()
	})
	err := writeWmsg(c, wbuf, m)
	wd.Stop()
	if err != nil {
		s.m.wireErrors.Inc()
		return false
	}
	return true
}

// handle executes one request against the store and fills resp. Store-level
// failures become respErr (connection stays healthy); only wire-level
// failures kill the connection.
func (s *Server) handle(req, resp *wmsg) {
	strMode := req.strMode
	switch req.kind {
	case msgLookupBatch:
		var pos []uint64
		if strMode {
			s.m.keysIn.Add(int64(len(req.strs)))
			pos = make([]uint64, len(req.strs))
			for i, k := range req.strs {
				pos[i] = uint64(s.st.LookupString(k))
			}
		} else {
			s.m.keysIn.Add(int64(len(req.keys)))
			ps := s.st.LookupBatch(req.keys)
			pos = make([]uint64, len(ps))
			for i, p := range ps {
				pos[i] = uint64(p)
			}
		}
		*resp = wmsg{kind: msgPositions, strMode: strMode, storeLen: uint64(s.st.Len()), keys: pos}
		s.m.keysOut.Add(int64(len(pos)))
	case msgContainsBatch:
		var bs []bool
		if strMode {
			s.m.keysIn.Add(int64(len(req.strs)))
			bs = make([]bool, len(req.strs))
			for i, k := range req.strs {
				bs[i] = s.st.ContainsString(k)
			}
		} else {
			s.m.keysIn.Add(int64(len(req.keys)))
			bs = s.st.ContainsBatch(req.keys)
		}
		*resp = wmsg{kind: msgBools, strMode: strMode, bools: bs}
		s.m.keysOut.Add(int64(len(bs)))
	case msgScan:
		s.handleScan(req, resp)
	case msgCountRange:
		var n int
		if strMode {
			if req.bounded {
				n = s.st.CountRangeString(req.loS, req.hiS)
			} else {
				n = s.st.CountFromString(req.loS)
			}
		} else if req.bounded {
			n = s.st.CountRange(req.lo, req.hi)
		} else {
			n = s.st.CountRange(req.lo, ^uint64(0))
			// The uint64 open-ended form means "through the maximum key";
			// CountRange's exclusive hi cannot see ^uint64(0) itself.
			if s.st.Contains(^uint64(0)) {
				n++
			}
		}
		*resp = wmsg{kind: msgCount, strMode: strMode, count: uint64(n)}
	case msgInsert:
		var err error
		if strMode {
			s.m.keysIn.Add(int64(len(req.strs)))
			err = s.st.InsertDurableString(req.strs...)
		} else {
			s.m.keysIn.Add(int64(len(req.keys)))
			err = s.st.InsertDurable(req.keys...)
		}
		if err != nil {
			s.m.errors.Inc()
			*resp = wmsg{kind: msgErr, strMode: strMode, errMsg: err.Error()}
			return
		}
		*resp = wmsg{kind: msgOK, strMode: strMode}
	case msgStatus:
		fs, isFollower := s.st.FollowerStatus()
		*resp = wmsg{
			kind:      msgStatusInfo,
			strMode:   strMode,
			follower:  isFollower,
			connected: fs.Connected,
			applied:   fs.AppliedSeq,
			durable:   fs.PrimaryDurableSeq,
			lag:       fs.LagFrames,
			epoch:     fs.MaxEpoch,
			storeLen:  uint64(s.st.Len()),
		}
	default:
		s.m.errors.Inc()
		*resp = wmsg{kind: msgErr, strMode: strMode, errMsg: "server: unhandled request kind"}
	}
}

// handleScan answers one page of a range scan: up to limit keys from lo,
// plus a more flag when another key exists past the page (the server reads
// one key beyond the page to know, without losing it — the client resumes
// from successor(last key)).
func (s *Server) handleScan(req, resp *wmsg) {
	limit := int(req.limit)
	if limit <= 0 || limit > s.opt.MaxScanKeys {
		limit = s.opt.MaxScanKeys
	}
	if req.strMode {
		var it *scan.Iterator[string]
		if req.bounded {
			it = s.st.ScanString(req.loS, req.hiS)
		} else {
			it = s.st.ScanStringFrom(req.loS)
		}
		keys := make([]string, 0, limit)
		more := false
		for it.Next() {
			if len(keys) == limit {
				more = true
				break
			}
			keys = append(keys, it.Key())
		}
		it.Close()
		*resp = wmsg{kind: msgKeys, strMode: true, more: more, strs: keys}
		s.m.keysOut.Add(int64(len(keys)))
		return
	}
	var hi uint64
	if req.bounded {
		hi = req.hi
	} else {
		hi = ^uint64(0)
	}
	it := s.st.Scan(req.lo, hi)
	keys := make([]uint64, 0, limit)
	more := false
	for it.Next() {
		if len(keys) == limit {
			more = true
			break
		}
		keys = append(keys, it.Key())
	}
	it.Close()
	// Mirror the CountRange patch: the open-ended uint64 form includes the
	// maximum key, which Scan's exclusive hi cannot reach.
	if !req.bounded && !more && s.st.Contains(^uint64(0)) {
		if len(keys) < limit {
			keys = append(keys, ^uint64(0))
		} else {
			more = true
		}
	}
	*resp = wmsg{kind: msgKeys, strMode: false, more: more, keys: keys}
	s.m.keysOut.Add(int64(len(keys)))
}
