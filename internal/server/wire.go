// Package server is the network serving plane: a binary wire protocol that
// fronts a serve.Store with the batch RPCs the in-process API already
// amortizes — LookupBatch, ContainsBatch, paged Scan, CountRange, and
// group-commit durable inserts. The wire reuses the replication plane's
// defensive posture verbatim: kind + length + crc32c framing, panic-free
// bounded decoding through binenc, and exactly one Write call per message
// so transport faults (torn writes, reorders) operate on whole messages.
//
// The protocol is strict request/response on one connection: the client
// sends a request, the server sends exactly one response. Concurrency comes
// from multiple connections (the router keeps a per-node pool), which keeps
// the wire grammar trivial to reason about under fault injection.
package server

import (
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"learnedindex/internal/binenc"
)

// wireVersion is bumped on any incompatible message-grammar change; the
// handshake rejects mismatches outright rather than guessing.
const wireVersion = 1

// Message kinds. The handshake is hello/serverHello; after it every request
// kind has exactly one response kind (or respErr).
const (
	msgHello         = byte(1)  // client→server: version, key mode
	msgServerHello   = byte(2)  // server→client: version, key mode, follower flag
	msgLookupBatch   = byte(3)  // client→server: key payload
	msgPositions     = byte(4)  // server→client: store len, positions (uvarints)
	msgContainsBatch = byte(5)  // client→server: key payload
	msgBools         = byte(6)  // server→client: count + packed bitset
	msgScan          = byte(7)  // client→server: range + page limit
	msgKeys          = byte(8)  // server→client: more flag + key payload
	msgCountRange    = byte(9)  // client→server: range
	msgCount         = byte(10) // server→client: count
	msgInsert        = byte(11) // client→server: key payload (durable group commit)
	msgOK            = byte(12) // server→client: insert acknowledged durable
	msgErr           = byte(13) // server→client: store-level failure, conn stays up
	msgStatus        = byte(14) // client→server: empty
	msgStatusInfo    = byte(15) // server→client: follower/replication status + len
)

const (
	// wireHeaderLen frames every message: kind u8, payload length u32 LE,
	// crc32c(payload) u32 LE — identical to the repl plane's framing.
	wireHeaderLen = 9
	// maxWirePayload mirrors the WAL's record bound: any length beyond it
	// is corruption (or hostility), not data.
	maxWirePayload = 1 << 26
	// maxWireKeys bounds a single message's key count so a hostile count
	// can never size an allocation.
	maxWireKeys = 1 << 21
)

// errWire covers every malformed-input path in the decoder: truncated
// headers, oversized lengths, checksum mismatches, grammar violations.
// Receivers treat it as a broken connection, never as data.
var errWire = errors.New("server: corrupt wire frame")

var wireCRC = crc32.MakeTable(crc32.Castagnoli)

// wmsg is the decoded form of every wire message; kind selects which fields
// are meaningful. One struct (rather than one type per kind) keeps the
// decoder allocation-light on the request path. strMode is the session key
// mode (fixed by the handshake) and selects the key and bound grammar.
type wmsg struct {
	kind      byte
	strMode   bool
	follower  bool     // serverHello, statusInfo
	connected bool     // statusInfo: follower link up
	bounded   bool     // scan/countRange: hi present (string mode can be open-ended)
	more      bool     // keys: another page exists past the last key
	lo, hi    uint64   // scan/countRange bounds, uint64 mode
	loS, hiS  string   // scan/countRange bounds, string mode
	limit     uint64   // scan: max keys per page
	count     uint64   // count response
	applied   uint64   // statusInfo: follower applied frame seq
	durable   uint64   // statusInfo: primary durable seq as seen by follower
	lag       uint64   // statusInfo: frames behind primary
	epoch     uint64   // statusInfo: max replication epoch seen
	storeLen  uint64   // positions/statusInfo: visible key count
	keys      []uint64 // key payloads (uint64 mode) and positions (both modes)
	strs      []string // key payloads, string mode
	bools     []bool   // bools response
	errMsg    string   // err response
}

// appendWmsg encodes m as one wire message appended to dst.
func appendWmsg(dst []byte, m *wmsg) []byte {
	base := len(dst)
	dst = append(dst, m.kind, 0, 0, 0, 0, 0, 0, 0, 0)
	switch m.kind {
	case msgHello:
		dst = binenc.AppendUvarint(dst, wireVersion)
		dst = appendBool(dst, m.strMode)
	case msgServerHello:
		dst = binenc.AppendUvarint(dst, wireVersion)
		dst = appendBool(dst, m.strMode)
		dst = appendBool(dst, m.follower)
	case msgLookupBatch, msgContainsBatch, msgInsert:
		dst = appendKeyPayload(dst, m)
	case msgPositions:
		dst = binenc.AppendUvarint(dst, m.storeLen)
		dst = binenc.AppendUvarint(dst, uint64(len(m.keys)))
		for _, p := range m.keys {
			dst = binenc.AppendUvarint(dst, p)
		}
	case msgBools:
		dst = binenc.AppendUvarint(dst, uint64(len(m.bools)))
		var b byte
		for i, v := range m.bools {
			if v {
				b |= 1 << (i & 7)
			}
			if i&7 == 7 {
				dst = append(dst, b)
				b = 0
			}
		}
		if len(m.bools)&7 != 0 {
			dst = append(dst, b)
		}
	case msgScan:
		dst = appendRange(dst, m)
		dst = binenc.AppendUvarint(dst, m.limit)
	case msgKeys:
		dst = appendBool(dst, m.more)
		dst = appendKeyPayload(dst, m)
	case msgCountRange:
		dst = appendRange(dst, m)
	case msgCount:
		dst = binenc.AppendUvarint(dst, m.count)
	case msgOK, msgStatus:
		// empty payload
	case msgErr:
		dst = binenc.AppendBytes(dst, []byte(m.errMsg))
	case msgStatusInfo:
		dst = appendBool(dst, m.follower)
		dst = appendBool(dst, m.connected)
		dst = binenc.AppendUvarint(dst, m.applied)
		dst = binenc.AppendUvarint(dst, m.durable)
		dst = binenc.AppendUvarint(dst, m.lag)
		dst = binenc.AppendUvarint(dst, m.epoch)
		dst = binenc.AppendUvarint(dst, m.storeLen)
	default:
		panic(fmt.Sprintf("server: encode of unknown message kind %d", m.kind))
	}
	payload := dst[base+wireHeaderLen:]
	putU32 := func(off int, v uint32) {
		dst[off] = byte(v)
		dst[off+1] = byte(v >> 8)
		dst[off+2] = byte(v >> 16)
		dst[off+3] = byte(v >> 24)
	}
	putU32(base+1, uint32(len(payload)))
	putU32(base+5, crc32.Checksum(payload, wireCRC))
	return dst
}

func appendBool(dst []byte, v bool) []byte {
	b := byte(0)
	if v {
		b = 1
	}
	return append(dst, b)
}

// appendRange encodes a scan/count range: a bounded flag, the low bound,
// and — only when bounded — the high bound. The open-ended form exists for
// string mode, where there is no cheap "past every key" sentinel.
func appendRange(dst []byte, m *wmsg) []byte {
	dst = appendBool(dst, m.bounded)
	if m.strMode {
		dst = binenc.AppendBytes(dst, []byte(m.loS))
		if m.bounded {
			dst = binenc.AppendBytes(dst, []byte(m.hiS))
		}
		return dst
	}
	dst = binenc.AppendUvarint(dst, m.lo)
	if m.bounded {
		dst = binenc.AppendUvarint(dst, m.hi)
	}
	return dst
}

// appendKeyPayload encodes the message's key set in the WAL payload
// grammar: uvarint count, then per key either a uvarint (uint64 mode) or a
// length-prefixed byte block (string mode).
func appendKeyPayload(dst []byte, m *wmsg) []byte {
	if m.strMode {
		dst = binenc.AppendUvarint(dst, uint64(len(m.strs)))
		for _, s := range m.strs {
			dst = binenc.AppendUvarint(dst, uint64(len(s)))
			dst = append(dst, s...)
		}
		return dst
	}
	dst = binenc.AppendUvarint(dst, uint64(len(m.keys)))
	for _, k := range m.keys {
		dst = binenc.AppendUvarint(dst, k)
	}
	return dst
}

// decodePayload decodes one message payload into m (kind comes from the
// wire header, strMode from the handshake). Panic-free by construction:
// every read goes through the latching binenc.Reader, counts are bounded
// before any allocation, and trailing garbage is an error.
func decodePayload(kind byte, strMode bool, payload []byte, m *wmsg) error {
	*m = wmsg{kind: kind, strMode: strMode}
	r := binenc.NewReader(payload)
	switch kind {
	case msgHello, msgServerHello:
		if v := r.Uvarint(); r.Err() == nil && v != wireVersion {
			return fmt.Errorf("server: wire version %d, want %d", v, wireVersion)
		}
		var ok bool
		if m.strMode, ok = decodeBool(r); !ok {
			return errWire
		}
		if kind == msgServerHello {
			if m.follower, ok = decodeBool(r); !ok {
				return errWire
			}
		}
	case msgLookupBatch, msgContainsBatch, msgInsert:
		decodeKeyPayload(r, strMode, m)
	case msgPositions:
		m.storeLen = r.Uvarint()
		n := r.Count(maxWireKeys, 1)
		if r.Err() == nil {
			pos := make([]uint64, 0, n)
			for i := 0; i < n; i++ {
				pos = append(pos, r.Uvarint())
			}
			m.keys = pos
		}
	case msgBools:
		n := r.Uvarint()
		if r.Err() == nil && n > maxWireKeys {
			return errWire
		}
		raw := r.Take(int(n+7) / 8)
		if r.Err() == nil {
			bs := make([]bool, n)
			for i := range bs {
				bs[i] = raw[i>>3]&(1<<(i&7)) != 0
			}
			m.bools = bs
		}
	case msgScan:
		if !decodeRange(r, strMode, m) {
			return errWire
		}
		m.limit = r.Uvarint()
	case msgKeys:
		var ok bool
		if m.more, ok = decodeBool(r); !ok {
			return errWire
		}
		decodeKeyPayload(r, strMode, m)
	case msgCountRange:
		if !decodeRange(r, strMode, m) {
			return errWire
		}
	case msgCount:
		m.count = r.Uvarint()
	case msgOK, msgStatus:
		// empty payload
	case msgErr:
		m.errMsg = string(r.Bytes())
	case msgStatusInfo:
		var ok bool
		if m.follower, ok = decodeBool(r); !ok {
			return errWire
		}
		if m.connected, ok = decodeBool(r); !ok {
			return errWire
		}
		m.applied = r.Uvarint()
		m.durable = r.Uvarint()
		m.lag = r.Uvarint()
		m.epoch = r.Uvarint()
		m.storeLen = r.Uvarint()
	default:
		return errWire
	}
	if r.Err() != nil || r.Remaining() != 0 {
		return errWire
	}
	return nil
}

func decodeBool(r *binenc.Reader) (v, ok bool) {
	b := r.Take(1)
	if r.Err() != nil || b[0] > 1 {
		return false, false
	}
	return b[0] == 1, true
}

func decodeRange(r *binenc.Reader, strMode bool, m *wmsg) bool {
	var ok bool
	if m.bounded, ok = decodeBool(r); !ok {
		return false
	}
	if strMode {
		m.loS = string(r.Bytes())
		if m.bounded {
			m.hiS = string(r.Bytes())
		}
		return true
	}
	m.lo = r.Uvarint()
	if m.bounded {
		m.hi = r.Uvarint()
	}
	return true
}

func decodeKeyPayload(r *binenc.Reader, strMode bool, m *wmsg) {
	if strMode {
		n := r.Count(maxWireKeys, 1)
		if r.Err() != nil {
			return
		}
		strs := make([]string, 0, n)
		for i := 0; i < n; i++ {
			strs = append(strs, string(r.Bytes()))
		}
		m.strs = strs
		return
	}
	n := r.Count(maxWireKeys, 1)
	if r.Err() != nil {
		return
	}
	keys := make([]uint64, 0, n)
	for i := 0; i < n; i++ {
		keys = append(keys, r.Uvarint())
	}
	m.keys = keys
}

// writeWmsg encodes m into *buf and writes it as ONE Write call, so a
// transport fault (torn write, reorder) operates on whole messages the way
// FaultFS torn writes operate on whole WAL records. The buffer is reused
// across calls.
func writeWmsg(w io.Writer, buf *[]byte, m *wmsg) error {
	*buf = appendWmsg((*buf)[:0], m)
	_, err := w.Write(*buf)
	return err
}

// readWmsg reads and decodes one message. Any malformed input — short
// read, oversized length, checksum mismatch, grammar violation — returns
// an error (errWire or the transport's); never a panic, never a partial m.
// The payload buffer *buf is reused across calls.
func readWmsg(r io.Reader, buf *[]byte, strMode bool, m *wmsg) error {
	var hdr [wireHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	kind := hdr[0]
	plen := uint32(hdr[1]) | uint32(hdr[2])<<8 | uint32(hdr[3])<<16 | uint32(hdr[4])<<24
	want := uint32(hdr[5]) | uint32(hdr[6])<<8 | uint32(hdr[7])<<16 | uint32(hdr[8])<<24
	if plen > maxWirePayload {
		return errWire
	}
	if cap(*buf) < int(plen) {
		*buf = make([]byte, plen)
	}
	payload := (*buf)[:plen]
	if _, err := io.ReadFull(r, payload); err != nil {
		return err
	}
	if crc32.Checksum(payload, wireCRC) != want {
		return errWire
	}
	return decodePayload(kind, strMode, payload, m)
}
