package server

import (
	"bytes"
	"fmt"
	"math/rand"
	"slices"
	"testing"
)

// buildWireStream encodes count valid request/response messages (the full
// kind catalog), deterministic from seed, returning the bytes and the
// originals for comparison.
func buildWireStream(seed int64, count int, strMode bool) ([]byte, []wmsg) {
	rng := rand.New(rand.NewSource(seed))
	var out []byte
	var msgs []wmsg
	randKeys := func(m *wmsg) {
		for j := rng.Intn(6); j > 0; j-- {
			if strMode {
				m.strs = append(m.strs, fmt.Sprintf("k%04d", rng.Intn(10000)))
			} else {
				m.keys = append(m.keys, uint64(rng.Intn(1_000_000)))
			}
		}
	}
	randRange := func(m *wmsg) {
		m.bounded = rng.Intn(3) > 0
		if strMode {
			m.loS = fmt.Sprintf("a%03d", rng.Intn(1000))
			if m.bounded {
				m.hiS = fmt.Sprintf("z%03d", rng.Intn(1000))
			}
		} else {
			m.lo = uint64(rng.Intn(1_000_000))
			if m.bounded {
				m.hi = m.lo + uint64(rng.Intn(1_000_000))
			}
		}
	}
	for i := 0; i < count; i++ {
		m := wmsg{strMode: strMode}
		switch rng.Intn(12) {
		case 0:
			m.kind = msgHello
		case 1:
			m.kind = msgServerHello
			m.follower = rng.Intn(2) == 1
		case 2:
			m.kind = msgLookupBatch
			randKeys(&m)
		case 3:
			m.kind = msgPositions
			m.storeLen = uint64(rng.Intn(1 << 20))
			for j := rng.Intn(6); j > 0; j-- {
				m.keys = append(m.keys, uint64(rng.Intn(1<<20)))
			}
		case 4:
			m.kind = msgContainsBatch
			randKeys(&m)
		case 5:
			m.kind = msgBools
			for j := rng.Intn(20); j > 0; j-- {
				m.bools = append(m.bools, rng.Intn(2) == 1)
			}
		case 6:
			m.kind = msgScan
			randRange(&m)
			m.limit = uint64(rng.Intn(1 << 16))
		case 7:
			m.kind = msgKeys
			m.more = rng.Intn(2) == 1
			randKeys(&m)
		case 8:
			m.kind = msgCountRange
			randRange(&m)
		case 9:
			m.kind = msgCount
			m.count = uint64(rng.Intn(1 << 20))
		case 10:
			m.kind = msgInsert
			randKeys(&m)
		case 11:
			switch rng.Intn(4) {
			case 0:
				m.kind = msgOK
			case 1:
				m.kind = msgStatus
			case 2:
				m.kind = msgErr
				m.errMsg = fmt.Sprintf("store unhappy %d", rng.Intn(100))
			case 3:
				m.kind = msgStatusInfo
				m.follower = rng.Intn(2) == 1
				m.connected = rng.Intn(2) == 1
				m.applied = uint64(rng.Intn(1 << 20))
				m.durable = m.applied + uint64(rng.Intn(100))
				m.lag = m.durable - m.applied
				m.epoch = uint64(rng.Intn(16))
				m.storeLen = uint64(rng.Intn(1 << 20))
			}
		}
		out = appendWmsg(out, &m)
		msgs = append(msgs, m)
	}
	return out, msgs
}

func wmsgEq(a, b wmsg) bool {
	return a.kind == b.kind && a.strMode == b.strMode &&
		a.follower == b.follower && a.connected == b.connected &&
		a.bounded == b.bounded && a.more == b.more &&
		a.lo == b.lo && a.hi == b.hi && a.loS == b.loS && a.hiS == b.hiS &&
		a.limit == b.limit && a.count == b.count &&
		a.applied == b.applied && a.durable == b.durable &&
		a.lag == b.lag && a.epoch == b.epoch && a.storeLen == b.storeLen &&
		slices.Equal(a.keys, b.keys) && slices.Equal(a.strs, b.strs) &&
		slices.Equal(a.bools, b.bools) && a.errMsg == b.errMsg
}

// decodeAllWire reads messages until the first error, bounded (a hostile
// stream must not loop forever). Never panics — that is the property under
// test.
func decodeAllWire(stream []byte, strMode bool, limit int) []wmsg {
	r := bytes.NewReader(stream)
	var buf []byte
	var out []wmsg
	for len(out) < limit {
		var m wmsg
		if err := readWmsg(r, &buf, strMode, &m); err != nil {
			break
		}
		out = append(out, m)
	}
	return out
}

// FuzzServerDecode is FuzzReplStreamDecode's serving-plane twin: a valid
// message prefix followed by arbitrary bytes. The decoder must never
// panic, must reproduce every intact prefix message bit-exactly, and
// truncating the stream anywhere must yield a prefix of the full decode.
func FuzzServerDecode(f *testing.F) {
	f.Add(int64(1), uint8(4), false, []byte{})
	f.Add(int64(2), uint8(7), true, []byte("garbage trailing bytes"))
	f.Add(int64(3), uint8(0), false, []byte{0xff, 0x00, 0x07, 0x12})
	valid, _ := buildWireStream(99, 3, false)
	f.Add(int64(4), uint8(2), false, valid) // valid bytes as the "junk" tail
	f.Add(int64(5), uint8(9), true, []byte{msgBools, 0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, seed int64, n uint8, strMode bool, tail []byte) {
		count := int(n % 16)
		prefix, want := buildWireStream(seed, count, strMode)
		stream := append(append([]byte{}, prefix...), tail...)

		got := decodeAllWire(stream, strMode, count+len(tail)+16)
		if len(got) < count {
			t.Fatalf("decoded %d of %d intact prefix messages", len(got), count)
		}
		for i := 0; i < count; i++ {
			if !wmsgEq(got[i], want[i]) {
				t.Fatalf("prefix message %d decoded as %+v, want %+v", i, got[i], want[i])
			}
		}

		// Truncation anywhere: still no panic, and the result is a strict
		// prefix of the full decode (a half-received stream never yields a
		// message the full stream would not).
		cut := int(uint64(seed>>13) % uint64(len(stream)+1))
		trunc := decodeAllWire(stream[:cut], strMode, len(got)+1)
		if len(trunc) > len(got) {
			t.Fatalf("truncated stream decoded MORE messages (%d > %d)", len(trunc), len(got))
		}
		for i := range trunc {
			if !wmsgEq(trunc[i], got[i]) {
				t.Fatalf("truncated decode diverged at message %d", i)
			}
		}
	})
}
