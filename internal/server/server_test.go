package server

import (
	"errors"
	"fmt"
	"math/rand"
	"slices"
	"testing"
	"time"

	"learnedindex/internal/core"
	"learnedindex/internal/repl"
	"learnedindex/internal/serve"
)

func startServer(t *testing.T, st *serve.Store, opt Options) (*Server, *repl.MemTransport) {
	t.Helper()
	tr := repl.NewMemTransport()
	srv := NewServer(st, opt)
	if err := srv.Serve(tr, "node0"); err != nil {
		t.Fatalf("serve: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, tr
}

func TestServerRoundTripUint64(t *testing.T) {
	keys := make([]uint64, 0, 2000)
	for i := 0; i < 2000; i++ {
		keys = append(keys, uint64(i)*10)
	}
	st := serve.New(keys, core.Config{}, serve.Options{Shards: 4})
	defer st.Close()
	_, tr := startServer(t, st, Options{})

	c, err := Dial(tr, "node0", false, ClientOptions{})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	if c.Follower() {
		t.Fatal("primary store reported follower=true")
	}

	rng := rand.New(rand.NewSource(1))
	probes := make([]uint64, 500)
	for i := range probes {
		probes[i] = uint64(rng.Intn(25000))
	}
	pos, n, err := c.LookupBatch(probes)
	if err != nil {
		t.Fatalf("lookup: %v", err)
	}
	if n != st.Len() {
		t.Fatalf("storeLen = %d, want %d", n, st.Len())
	}
	want := st.LookupBatch(probes)
	if !slices.Equal(pos, want) {
		t.Fatal("LookupBatch mismatch vs in-process store")
	}

	bs, err := c.ContainsBatch(probes)
	if err != nil {
		t.Fatalf("contains: %v", err)
	}
	if !slices.Equal(bs, st.ContainsBatch(probes)) {
		t.Fatal("ContainsBatch mismatch vs in-process store")
	}

	// Paged scan over the whole range must re-assemble exactly.
	var got []uint64
	lo := uint64(0)
	for {
		page, more, err := c.Scan(lo, 25000, true, 300)
		if err != nil {
			t.Fatalf("scan: %v", err)
		}
		got = append(got, page...)
		if !more {
			break
		}
		lo = page[len(page)-1] + 1
	}
	if want := st.ScanBatch(0, 25000, nil); !slices.Equal(got, want) {
		t.Fatalf("paged scan: %d keys, want %d", len(got), len(want))
	}

	cnt, err := c.CountRange(100, 10000, true)
	if err != nil {
		t.Fatalf("count: %v", err)
	}
	if want := st.CountRange(100, 10000); cnt != want {
		t.Fatalf("CountRange = %d, want %d", cnt, want)
	}

	if err := c.Insert([]uint64{5, 15, 25}); err != nil {
		t.Fatalf("insert: %v", err)
	}
	st.Flush()
	for _, k := range []uint64{5, 15, 25} {
		if !st.Contains(k) {
			t.Fatalf("inserted key %d missing", k)
		}
	}

	status, err := c.StatusRPC()
	if err != nil {
		t.Fatalf("status: %v", err)
	}
	if status.Follower {
		t.Fatal("status says follower")
	}
	if status.Len != st.Len() {
		t.Fatalf("status len = %d, want %d", status.Len, st.Len())
	}
}

func TestServerRoundTripString(t *testing.T) {
	keys := make([]string, 0, 500)
	for i := 0; i < 500; i++ {
		keys = append(keys, fmt.Sprintf("k%05d", i*7))
	}
	st := serve.NewString(keys, core.Config{}, serve.Options{Shards: 4})
	defer st.Close()
	_, tr := startServer(t, st, Options{})

	c, err := Dial(tr, "node0", true, ClientOptions{})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	probes := []string{"k00000", "k00007", "k00008", "zzz", "", "k03493"}
	pos, n, err := c.LookupBatchString(probes)
	if err != nil {
		t.Fatalf("lookup: %v", err)
	}
	if n != st.Len() {
		t.Fatalf("storeLen = %d, want %d", n, st.Len())
	}
	for i, p := range probes {
		if pos[i] != st.LookupString(p) {
			t.Fatalf("probe %q: pos %d, want %d", p, pos[i], st.LookupString(p))
		}
	}

	bs, err := c.ContainsBatchString(probes)
	if err != nil {
		t.Fatalf("contains: %v", err)
	}
	for i, p := range probes {
		if bs[i] != st.ContainsString(p) {
			t.Fatalf("probe %q: contains %v", p, bs[i])
		}
	}

	// Paged bounded scan and open-ended scan.
	var got []string
	lo := ""
	for {
		page, more, err := c.ScanString(lo, "k00100", true, 3)
		if err != nil {
			t.Fatalf("scan: %v", err)
		}
		got = append(got, page...)
		if !more {
			break
		}
		lo = page[len(page)-1] + "\x00"
	}
	if want := st.ScanBatchString("", "k00100", nil); !slices.Equal(got, want) {
		t.Fatalf("paged string scan mismatch: %v vs %v", got, want)
	}
	all, more, err := c.ScanString("k03000", "", false, 10000)
	if err != nil || more {
		t.Fatalf("open scan: err=%v more=%v", err, more)
	}
	cnt, err := c.CountRangeString("k03000", "", false)
	if err != nil {
		t.Fatalf("count from: %v", err)
	}
	if cnt != len(all) || cnt != st.CountFromString("k03000") {
		t.Fatalf("CountFrom = %d, scan saw %d, store says %d", cnt, len(all), st.CountFromString("k03000"))
	}

	if err := c.InsertString([]string{"aaa", "bbb"}); err != nil {
		t.Fatalf("insert: %v", err)
	}
	st.Flush()
	if !st.ContainsString("aaa") || !st.ContainsString("bbb") {
		t.Fatal("inserted string keys missing")
	}
}

func TestServerModeMismatchHandshake(t *testing.T) {
	st := serve.New([]uint64{1, 2, 3}, core.Config{}, serve.Options{Shards: 1})
	defer st.Close()
	_, tr := startServer(t, st, Options{})

	_, err := Dial(tr, "node0", true, ClientOptions{})
	if err == nil {
		t.Fatal("string-mode dial of a uint64 store succeeded")
	}
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("want RemoteError, got %v", err)
	}
}

func TestServerModeGuards(t *testing.T) {
	st := serve.New([]uint64{1}, core.Config{}, serve.Options{Shards: 1})
	defer st.Close()
	_, tr := startServer(t, st, Options{})
	c, err := Dial(tr, "node0", false, ClientOptions{})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	if _, _, err := c.LookupBatchString([]string{"a"}); !errors.Is(err, errMode) {
		t.Fatalf("want errMode, got %v", err)
	}
	if err := c.InsertString([]string{"a"}); !errors.Is(err, errMode) {
		t.Fatalf("want errMode, got %v", err)
	}
}

// TestServerGracefulDrain: Close must let an in-flight request finish and
// flush its response before the connection dies.
func TestServerGracefulDrain(t *testing.T) {
	st := serve.New([]uint64{1, 2, 3}, core.Config{}, serve.Options{Shards: 1})
	defer st.Close()
	srv, tr := startServer(t, st, Options{DrainTimeout: 2 * time.Second})

	c, err := Dial(tr, "node0", false, ClientOptions{})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	type result struct {
		bs  []bool
		err error
	}
	res := make(chan result, 1)
	go func() {
		bs, err := c.ContainsBatch([]uint64{1, 9})
		res <- result{bs, err}
	}()
	// Let the request hit the server, then close concurrently: either the
	// request completes with a correct answer (drained) or it fails with a
	// transport error — it must never return a wrong answer.
	time.Sleep(10 * time.Millisecond)
	done := make(chan struct{})
	go func() { srv.Close(); close(done) }()
	r := <-res
	<-done
	if r.err == nil {
		if !r.bs[0] || r.bs[1] {
			t.Fatalf("drained request returned wrong answer: %v", r.bs)
		}
	}
	// After Close, new RPCs on the old conn must fail.
	if _, err := c.ContainsBatch([]uint64{1}); err == nil {
		t.Fatal("RPC after server Close succeeded")
	}
	// And the metrics plane must show the server series.
	snap := st.Metrics()
	if snap.Counter("lix_server_accepts_total") == 0 {
		t.Fatal("lix_server_accepts_total not registered/bumped")
	}
}

// TestServerInflightBound: more concurrent requests than MaxInflight must
// all complete (queued, not rejected).
func TestServerInflightBound(t *testing.T) {
	keys := make([]uint64, 1000)
	for i := range keys {
		keys[i] = uint64(i)
	}
	st := serve.New(keys, core.Config{}, serve.Options{Shards: 2})
	defer st.Close()
	_, tr := startServer(t, st, Options{MaxInflight: 2})

	errs := make(chan error, 16)
	for g := 0; g < 16; g++ {
		go func(g int) {
			c, err := Dial(tr, "node0", false, ClientOptions{})
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for i := 0; i < 20; i++ {
				if _, err := c.ContainsBatch([]uint64{uint64(g*20 + i)}); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}(g)
	}
	for g := 0; g < 16; g++ {
		if err := <-errs; err != nil {
			t.Fatalf("worker: %v", err)
		}
	}
}
