package data

import (
	"fmt"
	"math/rand"
	"sort"
)

// StringKeys is a sorted slice of unique string keys.
type StringKeys []string

// LowerBound returns the index of the first key >= k.
func (ks StringKeys) LowerBound(k string) int {
	return sort.Search(len(ks), func(i int) bool { return ks[i] >= k })
}

// Contains reports whether k is one of the keys.
func (ks StringKeys) Contains(k string) bool {
	i := ks.LowerBound(k)
	return i < len(ks) && ks[i] == k
}

// DocIDs returns n unique synthetic document-id strings modeled on the
// paper's §3.7.2 dataset: "10M non-continuous document-ids of a large web
// index". Real doc-ids are structured: a shard/cluster prefix followed by a
// non-continuous numeric or base-36 suffix. The generator draws a cluster
// prefix from a skewed distribution and a sparse suffix, so the
// lexicographic CDF has the heavy prefix-clustering learned string models
// must capture.
func DocIDs(n int, seed int64) StringKeys {
	rng := rand.New(rand.NewSource(seed))
	const digits = "0123456789abcdefghijklmnopqrstuvwxyz"
	// Skewed cluster popularity: Zipf over 64 clusters.
	z := rand.NewZipf(rng, 1.3, 1.0, 63)
	seen := make(map[string]struct{}, n)
	keys := make([]string, 0, n)
	for len(keys) < n {
		cluster := z.Uint64()
		// Non-continuous id: random 10-char base-36 with sparse leading digit
		// structure (ids are allocated in bursts, leaving gaps).
		var b [14]byte
		b[0] = 'd'
		b[1] = digits[cluster/36%36]
		b[2] = digits[cluster%36]
		b[3] = '-'
		burst := rng.Intn(1 << 20) // burst base
		for i := 0; i < 5; i++ {
			b[4+i] = digits[burst%36]
			burst /= 36
		}
		tail := rng.Intn(1 << 24)
		for i := 0; i < 5; i++ {
			b[9+i] = digits[tail%36]
			tail /= 36
		}
		s := string(b[:])
		if _, ok := seen[s]; ok {
			continue
		}
		seen[s] = struct{}{}
		keys = append(keys, s)
	}
	sort.Strings(keys)
	return StringKeys(keys)
}

// SampleExistingStrings returns m keys drawn uniformly from ks in random
// order.
func SampleExistingStrings(ks StringKeys, m int, seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	out := make([]string, m)
	for i := range out {
		out[i] = ks[rng.Intn(len(ks))]
	}
	return out
}

// URLCorpus is the phishing-URL workload of §5.2: a key set of blacklisted
// (phishing) URLs and a non-key set that mixes random valid URLs with
// whitelisted URLs "that could be mistaken for phishing pages", split into
// train/validation/test.
type URLCorpus struct {
	Keys []string // blacklisted URLs (the set the filter must contain)

	TrainNeg []string // non-keys for model training
	ValidNeg []string // non-keys for threshold tuning
	TestNeg  []string // non-keys for reporting FPR
}

var brands = []string{
	"paypal", "apple", "google", "amazon", "microsoft", "netflix",
	"chase", "wellsfargo", "dropbox", "facebook", "instagram", "ebay",
}

var benignDomains = []string{
	"example", "wikipedia", "github", "nytimes", "reddit", "stackoverflow",
	"cnn", "bbc", "arxiv", "acm", "mit", "stanford", "weather", "espn",
}

var tlds = []string{".com", ".net", ".org", ".io", ".info", ".biz", ".xyz", ".top"}
var phishTlds = []string{".xyz", ".top", ".info", ".biz", ".club", ".online", ".site"}
var phishWords = []string{"login", "secure", "verify", "account", "update", "signin", "confirm", "webscr", "billing", "support"}

func randToken(rng *rand.Rand, n int) string {
	const alpha = "abcdefghijklmnopqrstuvwxyz0123456789"
	b := make([]byte, n)
	for i := range b {
		b[i] = alpha[rng.Intn(len(alpha))]
	}
	return string(b)
}

// phishURL generates a phishing-style URL: brand name embedded in a
// suspicious host (hyphens, digit substitutions, odd TLD) plus a
// credential-harvesting path.
func phishURL(rng *rand.Rand) string {
	brand := brands[rng.Intn(len(brands))]
	if rng.Intn(3) == 0 { // leetspeak substitution
		sub := map[byte]byte{'a': '4', 'e': '3', 'o': '0', 'l': '1', 'i': '1'}
		b := []byte(brand)
		for i := range b {
			if r, ok := sub[b[i]]; ok && rng.Intn(2) == 0 {
				b[i] = r
			}
		}
		brand = string(b)
	}
	w1 := phishWords[rng.Intn(len(phishWords))]
	tld := phishTlds[rng.Intn(len(phishTlds))]
	switch rng.Intn(4) {
	case 0:
		return fmt.Sprintf("http://%s-%s.%s%s/%s", brand, w1, randToken(rng, 6), tld, randToken(rng, 8))
	case 1:
		return fmt.Sprintf("http://%s.%s-%s%s/%s/%s", w1, brand, randToken(rng, 4), tld, w1, randToken(rng, 10))
	case 2:
		return fmt.Sprintf("http://%s%s/%s.%s/%s", randToken(rng, 10), tld, brand, w1, randToken(rng, 12))
	default:
		return fmt.Sprintf("http://%s-%s-%s%s/%s", w1, brand, randToken(rng, 5), tld, randToken(rng, 6))
	}
}

// benignURL generates a valid non-phishing URL.
func benignURL(rng *rand.Rand) string {
	d := benignDomains[rng.Intn(len(benignDomains))]
	tld := tlds[rng.Intn(3)] // benign sites concentrate on .com/.net/.org
	switch rng.Intn(3) {
	case 0:
		return fmt.Sprintf("https://www.%s%s/%s", d, tld, randToken(rng, 8))
	case 1:
		return fmt.Sprintf("https://%s%s/%s/%s", d, tld, randToken(rng, 5), randToken(rng, 7))
	default:
		return fmt.Sprintf("https://%s.%s%s/", randToken(rng, 4), d, tld)
	}
}

// lookalikeURL generates a whitelisted URL that "could be mistaken for a
// phishing page": a legitimate brand domain with login-ish paths.
func lookalikeURL(rng *rand.Rand) string {
	brand := brands[rng.Intn(len(brands))]
	w := phishWords[rng.Intn(len(phishWords))]
	return fmt.Sprintf("https://%s.com/%s/%s", brand, w, randToken(rng, 6))
}

// URLs builds a URL corpus with nKeys phishing keys and nNeg non-keys
// (half random valid URLs, half whitelisted lookalikes), with the negative
// set split randomly into train/validation/test as in §5.2.
func URLs(nKeys, nNeg int, seed int64) *URLCorpus {
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[string]struct{}, nKeys+nNeg)
	unique := func(gen func(*rand.Rand) string) string {
		for {
			s := gen(rng)
			if _, ok := seen[s]; !ok {
				seen[s] = struct{}{}
				return s
			}
		}
	}
	c := &URLCorpus{}
	for i := 0; i < nKeys; i++ {
		c.Keys = append(c.Keys, unique(phishURL))
	}
	neg := make([]string, 0, nNeg)
	for i := 0; i < nNeg; i++ {
		if i%2 == 0 {
			neg = append(neg, unique(benignURL))
		} else {
			neg = append(neg, unique(lookalikeURL))
		}
	}
	rng.Shuffle(len(neg), func(i, j int) { neg[i], neg[j] = neg[j], neg[i] })
	a := len(neg) * 6 / 10
	b := len(neg) * 8 / 10
	c.TrainNeg, c.ValidNeg, c.TestNeg = neg[:a], neg[a:b], neg[b:]
	return c
}
