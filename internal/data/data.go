// Package data synthesizes the datasets used by the paper's evaluation.
//
// The paper evaluates on two proprietary real-world datasets (200M web-server
// log timestamps, ~200M OpenStreetMap longitudes), one synthetic dataset
// (lognormal integers), 10M Google document-id strings, and 1.7M blacklisted
// URLs from Google's transparency report. None of those are redistributable,
// so this package generates synthetic equivalents that reproduce the
// *distributional* properties the paper's results depend on:
//
//   - Weblogs: a timestamp process with daily, weekly and seasonal rate
//     modulation plus event bursts and dead periods — a deliberately
//     hard-to-learn CDF ("almost a worst-case scenario", §3.7.1).
//   - Maps: longitudes clustered at inhabited bands — a relatively linear
//     CDF with local irregularities.
//   - Lognormal: exp(N(0, 2)) scaled to integers up to ~1B, exactly as
//     described in §3.7.1.
//
// All generators are deterministic given a seed and return sorted,
// deduplicated keys.
package data

import (
	"math"
	"math/bits"
	"math/rand"
	"sort"
)

// Keys is a sorted slice of unique uint64 keys; the "in-memory dense array
// sorted by key" the paper indexes (§2).
type Keys []uint64

// Positions returns the position of k via binary search, and whether k is
// present. Position semantics follow lower_bound: the index of the first key
// >= k.
func (ks Keys) LowerBound(k uint64) int {
	return sort.Search(len(ks), func(i int) bool { return ks[i] >= k })
}

// Contains reports whether k is one of the keys.
func (ks Keys) Contains(k uint64) bool {
	i := ks.LowerBound(k)
	return i < len(ks) && ks[i] == k
}

// takeN reduces a sorted key set to exactly n entries by even-stride
// subsampling (keeping the first and last), which preserves the CDF shape —
// unlike truncation, which would cut off the distribution's tail.
func takeN(ks []uint64, n int) []uint64 {
	if len(ks) <= n {
		return ks
	}
	out := make([]uint64, n)
	step := float64(len(ks)-1) / float64(n-1)
	for i := 0; i < n; i++ {
		out[i] = ks[int(float64(i)*step)]
	}
	return out
}

// dedupeSorted sorts ks and removes duplicates in place.
func dedupeSorted(ks []uint64) []uint64 {
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	out := ks[:0]
	var prev uint64
	for i, k := range ks {
		if i == 0 || k != prev {
			out = append(out, k)
			prev = k
		}
	}
	return out
}

// Lognormal returns n unique keys sampled from exp(N(mu, sigma)) and scaled
// so the maximum key is close to scaleMax (the paper scales to integers up
// to 1B, §3.7.1). Generation oversamples to survive deduplication.
func Lognormal(n int, mu, sigma float64, scaleMax uint64, seed int64) Keys {
	rng := rand.New(rand.NewSource(seed))
	if scaleMax/uint64(n) <= 64 {
		return lognormalDense(n, mu, sigma, scaleMax, rng)
	}
	// Sparse domain: nearly every sample lands on a fresh integer, so a
	// couple of sample-dedupe rounds suffice.
	var keys []uint64
	raw := make([]float64, 0, n+n/4)
	maxv := 0.0
	target := n + n/4
	for {
		for len(raw) < target {
			v := math.Exp(rng.NormFloat64()*sigma + mu)
			raw = append(raw, v)
			if v > maxv {
				maxv = v
			}
		}
		scale := float64(scaleMax) / maxv
		keys = keys[:0]
		for _, v := range raw {
			keys = append(keys, uint64(v*scale))
		}
		keys = dedupeSorted(keys)
		if len(keys) >= n {
			return Keys(takeN(keys, n))
		}
		target += target / 2
	}
}

// lognormalDense handles high key-domain occupancy (the paper's 190M keys
// over 1B integers): a fixed scale plus an occupancy bitmap make unique-key
// collection O(samples) instead of O(rounds·m·log m) re-sorting. The head
// of a σ=2 lognormal saturates its integer cells quickly, so reaching n
// uniques takes many samples; if the budget runs out the domain is widened
// slightly and collection restarts.
func lognormalDense(n int, mu, sigma float64, scaleMax uint64, rng *rand.Rand) Keys {
	domain := float64(scaleMax)
	for {
		budget := 256 * n
		// Fixed scale anchored on the expected sample maximum so the
		// largest keys land near the top of the domain.
		expMax := math.Exp(mu + sigma*math.Sqrt(2*math.Log(float64(budget))))
		scale := domain / expMax
		d := int(domain) + 1
		bitmap := make([]uint64, (d+63)/64)
		count := 0
		for s := 0; s < budget && count < n; s++ {
			v := math.Exp(rng.NormFloat64()*sigma+mu) * scale
			k := int(v)
			if k >= d {
				k = d - 1
			}
			w, b := k>>6, uint(k&63)
			if bitmap[w]&(1<<b) == 0 {
				bitmap[w] |= 1 << b
				count++
			}
		}
		if count >= n {
			keys := make([]uint64, 0, n)
			for w, word := range bitmap {
				for ; word != 0 && len(keys) < n; word &= word - 1 {
					b := bits.TrailingZeros64(word)
					keys = append(keys, uint64(w*64+b))
				}
				if len(keys) == n {
					break
				}
			}
			return Keys(keys)
		}
		domain *= 1.3
	}
}

// Maps returns n unique synthetic "longitude" keys. Real OSM feature
// longitudes cluster on inhabited bands (Europe, India, East Asia, the
// Americas) with a near-linear overall CDF. We model this as a mixture of
// Gaussians over [-180, 180) plus a uniform background, mapped to
// fixed-point integers (offset to be unsigned) like common geo encodings.
//
// The fixed-point resolution scales with n so that key-domain occupancy
// matches the paper's (200M keys over ~3.6e9 grid points, ~18 grid points
// per key). Occupancy matters: deduplicated dense regions are what make a
// learned CDF hash dramatically better than random hashing on this dataset
// (Figure 8's 77.5% conflict reduction) — at negligible occupancy every
// point process is Poisson and no CDF model can beat random.
func Maps(n int, seed int64) Keys {
	rng := rand.New(rand.NewSource(seed))
	type band struct {
		mean, std, weight float64
	}
	bands := []band{
		{-100, 18, 0.16}, // North America
		{-58, 10, 0.06},  // South America
		{8, 12, 0.24},    // Europe / West Africa
		{32, 10, 0.08},   // Middle East / East Africa
		{78, 8, 0.16},    // India
		{112, 12, 0.20},  // East Asia
		{145, 10, 0.04},  // Australia / Japan
	}
	const bg = 0.02 // uniform background mass
	cum := make([]float64, len(bands))
	total := bg
	for i, b := range bands {
		total += b.weight
		cum[i] = total
	}
	// domain = 18n grid points, the paper's occupancy ratio.
	res := float64(n) / 20
	if res < 1 {
		res = 1
	}
	// User-maintained map features concentrate in cities: sample city
	// centers hierarchically (band → center), give them Zipf popularity,
	// and scatter features tightly (±0.05°) around the centers. Dense city
	// longitudes saturate the fixed-point grid and deduplicate into
	// near-consecutive runs — the structure behind the dataset's
	// "relatively linear" local CDF and its 77.5% conflict reduction.
	const nCities = 150
	cities := make([]float64, nCities)
	for c := range cities {
		u := rng.Float64() * (total - bg)
		lon := rng.Float64()*360 - 180
		for j, cu := range cum {
			if u+bg < cu {
				lon = rng.NormFloat64()*bands[j].std + bands[j].mean
				break
			}
		}
		cities[c] = lon
	}
	z := rand.NewZipf(rng, 1.05, 1.5, nCities-1)

	// Convergence note: takeN's stride subsampling punches periodic holes
	// into consecutive runs, so the loop aims to land just barely over n
	// and shrinks its draw batches as it closes in.
	keys := make([]uint64, 0, n+n/64)
	need := n + n/64
	for len(keys) < n {
		for i := 0; i < need; i++ {
			var lon float64
			if rng.Float64() < bg {
				lon = rng.Float64()*360 - 180
			} else {
				// Uniform city extent: features saturate the city's grid
				// cells and deduplicate into exact consecutive runs. The
				// extent is sized so aggregate city capacity (cities ×
				// cells-per-city) slightly exceeds n — most keys then come
				// from saturated runs, as in the real OSM data.
				lon = cities[z.Uint64()] + (rng.Float64()-0.5)*0.147
			}
			// wrap into [-180, 180)
			for lon < -180 {
				lon += 360
			}
			for lon >= 180 {
				lon -= 360
			}
			keys = append(keys, uint64((lon+180)*res))
		}
		keys = dedupeSorted(keys)
		need = (n - len(keys)) * 4
		if need < 1024 {
			need = 1024
		}
	}
	return Keys(takeN(keys, n))
}

// Weblogs returns n unique timestamp keys (second resolution) from a
// synthetic university web-server request process. The request rate is
// modulated by:
//
//   - a diurnal cycle (quiet nights, lunch dip),
//   - a weekly cycle (quiet weekends),
//   - an academic calendar (semester breaks with very low traffic),
//   - random event bursts (deadlines, registration days),
//
// which produces the plateau-and-cliff CDF structure that makes the real
// Weblogs dataset "notoriously hard to learn" (§3.7.1). The paper indexes
// "the unique request timestamps": during busy periods multiple requests
// share a second and deduplicate into dense consecutive runs, while quiet
// periods are sparse — the regularity that lets a learned CDF hash beat
// random hashing by ~30% on this dataset (Figure 8) despite its global
// irregularity.
//
// The span scales with n (average demand ≈ 3 requests/second before
// dedup) and the calendar scales with the span — the process always covers
// four synthetic "years" of seasonal structure regardless of n, so the CDF
// shape is scale-invariant.
func Weblogs(n int, seed int64) Keys {
	rng := rand.New(rand.NewSource(seed))
	span := float64(n) / 3
	// Scaled calendar: 4 years over the span.
	year := span / 4
	day := year / 365
	week := 7 * day
	hour := day / 24
	// Precompute burst windows: ~30 bursts/year, each 2-12 hours, 3-20x rate.
	type burst struct {
		start, end, mult float64
	}
	var bursts []burst
	nb := 4 * 30
	for i := 0; i < nb; i++ {
		s := rng.Float64() * span
		d := (2 + rng.Float64()*10) * hour
		bursts = append(bursts, burst{s, s + d, 3 + rng.Float64()*17})
	}
	// Outages/maintenance windows: sharp zero-traffic cliffs at sub-day
	// granularity.
	for i := 0; i < 4*80; i++ {
		s := rng.Float64() * span * 2
		d := (0.2 + rng.Float64()*1.8) * hour
		bursts = append(bursts, burst{s, s + d, 0.002})
	}
	sort.Slice(bursts, func(i, j int) bool { return bursts[i].start < bursts[j].start })

	rate := func(t float64) float64 {
		tod := math.Mod(t, day) / day   // time of day in [0,1)
		dow := math.Mod(t, week) / day  // day of week in [0,7)
		doy := math.Mod(t, year) / year // fraction of the year
		r := 1.0
		// diurnal: low 1am-6am, peaks mid-morning and mid-afternoon, lunch dip.
		r *= 0.15 + 0.85*math.Pow(math.Max(0, math.Sin(math.Pi*tod)), 1.5)
		if tod > 0.48 && tod < 0.55 { // lunch dip
			r *= 0.6
		}
		if dow >= 5 { // weekend
			r *= 0.35
		}
		// semester breaks: mid-Dec to mid-Jan, June-Aug.
		if doy > 0.95 || doy < 0.04 {
			r *= 0.04
		}
		if doy > 0.45 && doy < 0.65 {
			r *= 0.12
		}
		return r
	}

	// Draw inter-arrival gaps from an exponential with the local rate (a
	// good approximation when the rate varies slowly relative to gaps),
	// truncate arrivals to whole seconds, and deduplicate. Busy periods
	// saturate (several arrivals per second collapse to one key), quiet
	// periods stay sparse. Generation continues past the nominal span until
	// n unique keys exist.
	// Moderate nominal demand: weekday peaks saturate the 1-second grid
	// (dense runs), nights/weekends/breaks stay sparse — the mix that keeps
	// the CDF irregular while still rewarding a learned hash.
	baseRate := 2.0 // arrivals per second at modulation 1.0
	raw := make([]uint64, 0, n+n/4)
	t := 0.0
	bi := 0
	var keys []uint64
	// Like Maps, the loop lands just barely over n so takeN's stride does
	// not punch periodic holes into the dense saturated runs.
	batch := n + n/32
	for {
		for i := 0; i < batch; i++ {
			r := rate(t)
			for bi < len(bursts) && bursts[bi].end < t {
				bi++
			}
			if bi < len(bursts) && t >= bursts[bi].start && t < bursts[bi].end {
				r *= bursts[bi].mult
			}
			if r < 0.01 {
				r = 0.01
			}
			t += rng.ExpFloat64() / (baseRate * r)
			raw = append(raw, uint64(t))
		}
		keys = dedupeSorted(raw)
		if len(keys) >= n {
			break
		}
		raw = keys
		batch = (n - len(keys)) * 2
		if batch < 1024 {
			batch = 1024
		}
	}
	return Keys(takeN(keys, n))
}

// Uniform returns n unique keys uniform over [0, max).
func Uniform(n int, max uint64, seed int64) Keys {
	rng := rand.New(rand.NewSource(seed))
	keys := make([]uint64, 0, n+n/8)
	for len(keys) < n {
		need := n + n/8 - len(keys)
		for i := 0; i < need; i++ {
			keys = append(keys, rng.Uint64()%max)
		}
		keys = dedupeSorted(keys)
	}
	return Keys(takeN(keys, n))
}

// Dense returns the keys lo, lo+step, ... (n keys): the paper's introductory
// example of 1M continuous integer keys where a linear model is exact.
func Dense(n int, lo, step uint64) Keys {
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = lo + uint64(i)*step
	}
	return Keys(keys)
}

// SampleExisting returns m keys drawn uniformly (with replacement) from ks,
// in random order — the look-up workload used by all experiments.
func SampleExisting(ks Keys, m int, seed int64) []uint64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]uint64, m)
	for i := range out {
		out[i] = ks[rng.Intn(len(ks))]
	}
	return out
}

// ZipfTraffic returns m probe keys drawn from ks under a Zipf popularity
// law with exponent s (s > 1, clamped; larger = hotter head): ranks come
// from the stdlib Zipf sampler and map to keys through a seeded
// permutation, so the hot set is scattered across the key domain instead
// of clustering at its low end. This is the skewed read traffic of
// serving workloads — a small hot set dominates while the cold tail
// decides p99 — and the -zipf mode of cmd/lix-datagen.
func ZipfTraffic(ks Keys, m int, s float64, seed int64) []uint64 {
	if s <= 1 {
		s = 1.0001 // rand.NewZipf requires s > 1
	}
	rng := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(rng, s, 1, uint64(len(ks)-1))
	perm := rng.Perm(len(ks))
	out := make([]uint64, m)
	for i := range out {
		out[i] = ks[perm[z.Uint64()]]
	}
	return out
}

// SampleMissing returns m keys drawn uniformly from the key domain that are
// not present in ks, used to exercise lower-bound semantics for absent keys.
func SampleMissing(ks Keys, m int, seed int64) []uint64 {
	rng := rand.New(rand.NewSource(seed))
	lo, hi := ks[0], ks[len(ks)-1]
	out := make([]uint64, 0, m)
	for len(out) < m {
		k := lo + rng.Uint64()%(hi-lo+1)
		if !ks.Contains(k) {
			out = append(out, k)
		}
	}
	return out
}

// LognormalPaper returns the paper's lognormal dataset at a given scale,
// reproducing its generation PROCESS rather than its absolute numbers: the
// paper sampled from exp(N(0,2)), scaled to integers, and deduplicated,
// ending with 190M unique keys over integers up to 1B. Here ~2.2n values
// are sampled and the integer scale is solved (binary search, it is
// monotone in the scale) so that deduplication yields just over n unique
// keys — the tightest scale, i.e. maximal dedup-induced regularization,
// matching the paper's ~5 grid points per key. That regularization is what
// the Figure 8 hash experiments measure.
func LognormalPaper(n int, seed int64) Keys {
	rng := rand.New(rand.NewSource(seed))
	m := 2*n + n/5
	vs := make([]float64, m)
	for i := range vs {
		vs[i] = math.Exp(rng.NormFloat64() * 2)
	}
	sort.Float64s(vs)
	uniqueAt := func(scale float64) int {
		u := 0
		prev := uint64(math.MaxUint64)
		for _, v := range vs {
			k := uint64(v * scale)
			if k != prev {
				u++
				prev = k
			}
		}
		return u
	}
	// Binary search the smallest scale with >= n unique integers.
	lo, hi := 1e-12, 1.0
	for uniqueAt(hi/vs[m-1]) < n { // safety: ensure hi end suffices
		hi *= 4
	}
	loS, hiS := lo/vs[m-1], hi/vs[m-1]
	for i := 0; i < 60; i++ {
		mid := (loS + hiS) / 2
		if uniqueAt(mid) >= n {
			hiS = mid
		} else {
			loS = mid
		}
	}
	keys := make([]uint64, 0, n+n/10)
	prev := uint64(math.MaxUint64)
	for _, v := range vs {
		k := uint64(v * hiS)
		if k != prev {
			keys = append(keys, k)
			prev = k
		}
	}
	return Keys(takeN(keys, n))
}
