package data

import (
	"math"
	"sort"
	"testing"
)

func checkSortedUnique(t *testing.T, ks Keys, wantLen int) {
	t.Helper()
	if len(ks) != wantLen {
		t.Fatalf("got %d keys, want %d", len(ks), wantLen)
	}
	for i := 1; i < len(ks); i++ {
		if ks[i] <= ks[i-1] {
			t.Fatalf("keys not strictly increasing at %d: %d <= %d", i, ks[i], ks[i-1])
		}
	}
}

func TestLognormalSortedUnique(t *testing.T) {
	ks := Lognormal(50_000, 0, 2, 1_000_000_000, 1)
	checkSortedUnique(t, ks, 50_000)
}

func TestLognormalScale(t *testing.T) {
	ks := Lognormal(50_000, 0, 2, 1_000_000_000, 1)
	if ks[len(ks)-1] > 1_000_000_000 {
		t.Fatalf("max key %d exceeds 1B scale", ks[len(ks)-1])
	}
	if ks[len(ks)-1] < 100_000_000 {
		t.Fatalf("max key %d suspiciously far below the scale target", ks[len(ks)-1])
	}
}

func TestLognormalHeavyTail(t *testing.T) {
	// A lognormal with sigma=2 is heavily skewed: the median should be tiny
	// relative to the max.
	ks := Lognormal(50_000, 0, 2, 1_000_000_000, 1)
	median := ks[len(ks)/2]
	if float64(median) > 0.05*float64(ks[len(ks)-1]) {
		t.Fatalf("median %d too close to max %d: not heavy-tailed", median, ks[len(ks)-1])
	}
}

func TestLognormalDeterministic(t *testing.T) {
	a := Lognormal(10_000, 0, 2, 1_000_000_000, 7)
	b := Lognormal(10_000, 0, 2, 1_000_000_000, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("not deterministic at %d", i)
		}
	}
}

func TestMapsSortedUnique(t *testing.T) {
	ks := Maps(50_000, 1)
	checkSortedUnique(t, ks, 50_000)
}

func TestMapsRange(t *testing.T) {
	const n = 50_000
	ks := Maps(n, 1)
	// longitudes in [-180, 180) at resolution n/20 per degree ⇒ domain 18n.
	if ks[len(ks)-1] >= 18*n {
		t.Fatalf("key out of longitude domain: %d >= %d", ks[len(ks)-1], 18*n)
	}
}

func TestMapsClustering(t *testing.T) {
	// The Europe band (~8°) should be denser than the mid-Atlantic (~-40°).
	const n = 100_000
	ks := Maps(n, 1)
	res := float64(n) / 20
	countIn := func(lo, hi float64) int {
		a := ks.LowerBound(uint64((lo + 180) * res))
		b := ks.LowerBound(uint64((hi + 180) * res))
		return b - a
	}
	europe := countIn(0, 16)
	ocean := countIn(-48, -32)
	if europe < 2*ocean || europe == 0 {
		t.Fatalf("expected Europe band (%d) denser than ocean band (%d)", europe, ocean)
	}
}

func TestMapsDenseRuns(t *testing.T) {
	// City saturation must produce runs of consecutive grid integers — the
	// structure behind Figure 8's conflict reduction.
	ks := Maps(100_000, 1)
	consecutive := 0
	for i := 1; i < len(ks); i++ {
		if ks[i] == ks[i-1]+1 {
			consecutive++
		}
	}
	if frac := float64(consecutive) / float64(len(ks)); frac < 0.10 {
		t.Fatalf("only %.1f%% of keys in consecutive runs; city clustering too weak", frac*100)
	}
}

func TestWeblogsDenseRuns(t *testing.T) {
	// Busy-period saturation: a visible fraction of adjacent-second keys.
	ks := Weblogs(100_000, 1)
	consecutive := 0
	for i := 1; i < len(ks); i++ {
		if ks[i] == ks[i-1]+1 {
			consecutive++
		}
	}
	if frac := float64(consecutive) / float64(len(ks)); frac < 0.10 {
		t.Fatalf("only %.1f%% adjacent-second keys; saturation too weak", frac*100)
	}
}

func TestLognormalPaperProcess(t *testing.T) {
	const n = 50_000
	ks := LognormalPaper(n, 1)
	if len(ks) != n {
		t.Fatalf("got %d keys", len(ks))
	}
	for i := 1; i < n; i++ {
		if ks[i] <= ks[i-1] {
			t.Fatal("not strictly increasing")
		}
	}
	// The scale solver picks the TIGHTEST integer scale, so the head of
	// the distribution must be dedup-saturated: a visible fraction of
	// consecutive-integer keys (the sub-Poisson regularization that powers
	// the Figure 8 lognormal row).
	consecutive := 0
	for i := 1; i < n; i++ {
		if ks[i] == ks[i-1]+1 {
			consecutive++
		}
	}
	if frac := float64(consecutive) / float64(n); frac < 0.05 {
		t.Fatalf("only %.1f%% consecutive keys; scale not tight", frac*100)
	}
	// Heavy tail must survive: median far below max.
	if float64(ks[n/2]) > 0.05*float64(ks[n-1]) {
		t.Fatal("tail lost")
	}
}

func TestWeblogsSortedUnique(t *testing.T) {
	ks := Weblogs(50_000, 1)
	checkSortedUnique(t, ks, len(ks))
	if len(ks) < 45_000 {
		t.Fatalf("weblogs generated too few keys: %d", len(ks))
	}
}

func TestWeblogsIrregularCDF(t *testing.T) {
	// The weblog CDF must be much rougher than the maps CDF: compare the
	// max deviation from a straight line between endpoints.
	dev := func(ks Keys) float64 {
		lo, hi := float64(ks[0]), float64(ks[len(ks)-1])
		max := 0.0
		for i, k := range ks {
			ideal := (float64(k) - lo) / (hi - lo)
			actual := float64(i) / float64(len(ks))
			d := math.Abs(ideal - actual)
			if d > max {
				max = d
			}
		}
		return max
	}
	web := dev(Weblogs(40_000, 1))
	if web < 0.005 {
		t.Fatalf("weblogs CDF too smooth (max dev %.4f); generator lost its irregularity", web)
	}
}

func TestDense(t *testing.T) {
	ks := Dense(100, 1_000_000, 3)
	checkSortedUnique(t, ks, 100)
	if ks[0] != 1_000_000 || ks[99] != 1_000_000+99*3 {
		t.Fatalf("dense endpoints wrong: %d %d", ks[0], ks[99])
	}
}

func TestUniform(t *testing.T) {
	ks := Uniform(10_000, 1<<40, 3)
	checkSortedUnique(t, ks, 10_000)
	if ks[len(ks)-1] >= 1<<40 {
		t.Fatal("key exceeds max")
	}
}

func TestLowerBoundAndContains(t *testing.T) {
	ks := Keys{10, 20, 30, 40}
	cases := []struct {
		k    uint64
		want int
	}{{5, 0}, {10, 0}, {15, 1}, {40, 3}, {45, 4}}
	for _, c := range cases {
		if got := ks.LowerBound(c.k); got != c.want {
			t.Errorf("LowerBound(%d) = %d, want %d", c.k, got, c.want)
		}
	}
	if !ks.Contains(30) || ks.Contains(35) {
		t.Fatal("Contains wrong")
	}
}

func TestSampleExisting(t *testing.T) {
	ks := Lognormal(10_000, 0, 2, 1_000_000_000, 1)
	probes := SampleExisting(ks, 5000, 2)
	if len(probes) != 5000 {
		t.Fatalf("got %d probes", len(probes))
	}
	for _, p := range probes {
		if !ks.Contains(p) {
			t.Fatalf("probe %d not in key set", p)
		}
	}
}

func TestSampleMissing(t *testing.T) {
	ks := Lognormal(10_000, 0, 2, 1_000_000_000, 1)
	probes := SampleMissing(ks, 1000, 2)
	for _, p := range probes {
		if ks.Contains(p) {
			t.Fatalf("missing probe %d is actually present", p)
		}
	}
}

func TestDocIDsSortedUnique(t *testing.T) {
	ks := DocIDs(20_000, 1)
	if len(ks) != 20_000 {
		t.Fatalf("got %d", len(ks))
	}
	for i := 1; i < len(ks); i++ {
		if ks[i] <= ks[i-1] {
			t.Fatalf("doc ids not strictly increasing at %d: %q <= %q", i, ks[i], ks[i-1])
		}
	}
}

func TestDocIDsShape(t *testing.T) {
	ks := DocIDs(1000, 1)
	for _, k := range ks {
		if len(k) != 14 || k[0] != 'd' || k[3] != '-' {
			t.Fatalf("malformed doc id %q", k)
		}
	}
}

func TestStringLowerBound(t *testing.T) {
	ks := StringKeys{"apple", "banana", "cherry"}
	if ks.LowerBound("b") != 1 || ks.LowerBound("banana") != 1 || ks.LowerBound("zzz") != 3 {
		t.Fatal("string lower bound wrong")
	}
	if !ks.Contains("banana") || ks.Contains("bananas") {
		t.Fatal("string contains wrong")
	}
}

func TestURLCorpus(t *testing.T) {
	c := URLs(2000, 3000, 1)
	if len(c.Keys) != 2000 {
		t.Fatalf("got %d keys", len(c.Keys))
	}
	if len(c.TrainNeg)+len(c.ValidNeg)+len(c.TestNeg) != 3000 {
		t.Fatalf("negative split sizes wrong: %d/%d/%d", len(c.TrainNeg), len(c.ValidNeg), len(c.TestNeg))
	}
	// Keys and non-keys must be disjoint.
	keySet := make(map[string]struct{}, len(c.Keys))
	for _, k := range c.Keys {
		keySet[k] = struct{}{}
	}
	for _, lists := range [][]string{c.TrainNeg, c.ValidNeg, c.TestNeg} {
		for _, s := range lists {
			if _, ok := keySet[s]; ok {
				t.Fatalf("non-key %q also a key", s)
			}
		}
	}
}

func TestURLCorpusSeparable(t *testing.T) {
	// Phishing URLs use http://, benign use https:// in this generator —
	// plus token-level differences. Verify at least the scheme split so the
	// classifier task is well-posed.
	c := URLs(500, 500, 1)
	for _, k := range c.Keys {
		if len(k) < 7 || k[:7] != "http://" {
			t.Fatalf("phishing URL %q missing http:// scheme", k)
		}
	}
}

func TestZipfTrafficShape(t *testing.T) {
	ks := Uniform(20_000, 1<<40, 1)
	const m = 100_000
	trace := ZipfTraffic(ks, m, 1.3, 7)
	if len(trace) != m {
		t.Fatalf("got %d probes, want %d", len(trace), m)
	}
	if again := ZipfTraffic(ks, m, 1.3, 7); !slicesEqualU64(trace, again) {
		t.Fatal("same seed produced a different trace")
	}

	freq := make(map[uint64]int)
	for _, k := range trace {
		if !ks.Contains(k) {
			t.Fatalf("probe %d is not a dataset key", k)
		}
		freq[k]++
	}
	counts := make([]int, 0, len(freq))
	hot := 0
	var hotKey uint64
	for k, c := range freq {
		counts = append(counts, c)
		if c > hot {
			hot, hotKey = c, k
		}
	}
	// Zipf s=1.3 over 20k ranks puts roughly a quarter of all traffic on
	// rank 0; wide bounds keep the assertion about shape, not constants.
	if got := float64(hot) / m; got < 0.10 || got > 0.60 {
		t.Fatalf("hottest key carries %.1f%% of traffic, want 10-60%%", 100*got)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(counts)))
	top10 := 0
	for _, c := range counts[:10] {
		top10 += c
	}
	if got := float64(top10) / m; got < 0.40 {
		t.Fatalf("top-10 keys carry only %.1f%% of traffic", 100*got)
	}

	// The permutation must scatter the hot set: the single hottest key
	// should not be pinned to the bottom of the sorted key array (rank 0
	// of an unpermuted mapping would always be ks[0]).
	if hotKey == ks[0] {
		t.Fatal("hottest key is ks[0]: rank->key mapping looks unpermuted")
	}

	// Heavier exponent, heavier head.
	flat := ZipfTraffic(ks, m, 1.05, 7)
	flatFreq := make(map[uint64]int)
	flatHot := 0
	for _, k := range flat {
		flatFreq[k]++
		if flatFreq[k] > flatHot {
			flatHot = flatFreq[k]
		}
	}
	if flatHot >= hot {
		t.Fatalf("s=1.05 head (%d) not flatter than s=1.3 head (%d)", flatHot, hot)
	}
}

func slicesEqualU64(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
