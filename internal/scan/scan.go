// Package scan is the streaming range-query engine: a snapshot-consistent
// k-way merge over any number of sorted key sources. It is the paper's
// headline range-index use case made end-to-end — the RMI predicts where a
// range starts, and the system *scans* from there — generalized to the
// layered store this repo has grown: an in-memory delta buffer, per-shard
// base arrays, and on-disk learned segments all contribute one cursor each,
// and the merge streams the deduplicated union in ascending order without
// ever materializing it.
//
// The engine is generic over the key type (any cmp.Ordered): the uint64
// instantiation is the native read path, and the string instantiation is
// the codec-backed string-key path (internal/keycodec), where a
// *core.StringIndex is the Positioner and segment dictionaries supply the
// sorted sources. Both share every line of the merge machinery.
//
// # Loser tree
//
// The merge is a tournament loser tree, not a binary heap: with k sources,
// advancing the winner replays exactly one root-to-leaf path of ⌈log2 k⌉
// matches, each against a *precomputed* loser — one comparison per level,
// against a heap's up-to-two (sift-down compares both children). Ties are
// broken by cursor index, and callers add cursors newest-first, so when the
// same key lives in several layers the newest one wins and the older
// duplicates are skipped — the merge has newest-wins set semantics.
//
// # Model-biased entry
//
// A cursor over a learned layer seeks with the layer's own index: the
// KeysCursor takes a Positioner (satisfied by *core.Plan for uint64 keys,
// *core.StringIndex for strings) and enters at the predicted-and-corrected
// lower-bound position instead of binary-searching the array. On a 1M-key
// layer that is the difference between one model inference (~100ns) and
// ~20 dependent cache misses.
//
// # Allocation discipline
//
// Iterators and their tree state recycle through a pool: Get → Add cursors
// → Start → Next/NextBatch → Close returns everything. A steady-state scan
// performs no allocations in this package; the serving layer composes its
// own pooled cursor and snapshot state on top (see internal/serve) so a
// whole Store.Scan stays within its documented allocation budget.
package scan

import (
	"cmp"
	"sync"

	"learnedindex/internal/obs"
)

// Positioner is a learned entry point into a sorted key array: Lookup
// returns the lower-bound position of key (index of the first element
// >= key), exactly. *core.Plan satisfies Positioner[uint64] (so does
// *core.RMI); *core.StringIndex satisfies Positioner[string].
type Positioner[K cmp.Ordered] interface {
	Lookup(key K) int
}

// Cursor is one sorted source in a merge. Implementations must return keys
// in strictly ascending order between Seeks.
type Cursor[K cmp.Ordered] interface {
	// Seek positions the cursor at the first key >= key, reporting whether
	// such a key exists. Seeking backward is allowed.
	Seek(key K) bool
	// Next advances to the following key, reporting whether one exists.
	Next() bool
	// Key returns the current key. Valid only after a true Seek/Next.
	Key() K
	// Release drops pooled state and source references. The cursor must not
	// be used afterwards. Called by Iterator.Close.
	Release()
}

// Closer is the scan-owner hook run by Iterator.Close after every cursor is
// released: the serving layer uses it to unpin storage snapshots and return
// its pooled capture state.
type Closer interface {
	CloseScan()
}

// lowerBound is the branch-light generic lower bound used when a cursor has
// no learned Positioner.
func lowerBound[K cmp.Ordered](keys []K, target K) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if keys[mid] < target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// KeysCursor iterates a sorted []K. With a Positioner set, Seek enters at
// the model-predicted lower bound (one index inference); without one it
// falls back to binary search. The zero value is unusable; call Reset
// first.
type KeysCursor[K cmp.Ordered] struct {
	keys []K
	pos  Positioner[K]
	i    int
}

// Reset points the cursor at a sorted key array with an optional learned
// entry index (nil means binary-search entry).
func (c *KeysCursor[K]) Reset(keys []K, pos Positioner[K]) {
	c.keys, c.pos, c.i = keys, pos, 0
}

// Seek positions at the first key >= key.
func (c *KeysCursor[K]) Seek(key K) bool {
	if c.pos != nil {
		c.i = c.pos.Lookup(key)
	} else {
		c.i = lowerBound(c.keys, key)
	}
	return c.i < len(c.keys)
}

// Next advances to the following key.
func (c *KeysCursor[K]) Next() bool {
	c.i++
	return c.i < len(c.keys)
}

// Key returns the current key.
func (c *KeysCursor[K]) Key() K { return c.keys[c.i] }

// Release drops the key-array and index references so a pooled cursor never
// pins a superseded snapshot.
func (c *KeysCursor[K]) Release() { c.keys, c.pos = nil, nil }

// AppendInRange appends src's keys within [lo, hi) to dst: the shared
// capture filter of the scan-owning layers, which copy only the in-range
// part of their delta buffers so capture cost scales with delta∩range.
func AppendInRange[K cmp.Ordered](dst, src []K, lo, hi K) []K {
	for _, k := range src {
		if k >= lo && k < hi {
			dst = append(dst, k)
		}
	}
	return dst
}

// AppendFrom appends src's keys >= lo to dst: the capture filter for
// unbounded-above scans (string scans with no upper key — there is no
// natural +∞ sentinel in the string domain).
func AppendFrom[K cmp.Ordered](dst, src []K, lo K) []K {
	for _, k := range src {
		if k >= lo {
			dst = append(dst, k)
		}
	}
	return dst
}

// Iterator streams the deduplicated ascending union of its cursors over the
// half-open key range [lo, hi) fixed at Start (or [lo, ∞) fixed at
// StartFrom). Obtain one with Get, drive it with Next/NextBatch/Seek, and
// always Close it (Close recycles the iterator and releases every cursor
// and the owner's snapshot state).
//
// An Iterator is single-goroutine; concurrent scans each take their own.
type Iterator[K cmp.Ordered] struct {
	cursors []Cursor[K]
	key     []K     // current key per cursor
	done    []bool  // cursor exhausted
	tree    []int32 // loser tree: tree[0] = winner, tree[1..k) = match losers
	win     []int32 // winner-tree build scratch (2k slots)
	k       int
	lo, hi  K
	bounded bool // hi participates in range checks
	cur     K    // last emitted key
	emitted bool // cur is valid (dedup baseline)
	valid   bool // Key() is valid
	closer  Closer
	closed  bool
	pool    *sync.Pool // home pool, nil for exotic instantiations
	// emitted counts keys produced over the iterator's lifetime (a plain
	// field increment — scans are single-goroutine). obsKeys, when set via
	// SetObs, receives the final count at Close, giving the owning layer a
	// keys-per-scan distribution at zero per-key atomic cost.
	emittedN uint64
	obsKeys  *obs.Histogram
}

// Per-instantiation iterator pools. sync.Pool is untyped, so the common
// instantiations get dedicated pools resolved by a compile-time-flattened
// type switch in Get; any other key type allocates per scan.
var (
	iterPoolU64 = sync.Pool{New: func() any { return new(Iterator[uint64]) }}
	iterPoolStr = sync.Pool{New: func() any { return new(Iterator[string]) }}
)

// Get returns a pooled, empty iterator. Add cursors (newest source first),
// then Start or StartFrom.
func Get[K cmp.Ordered]() *Iterator[K] {
	var it *Iterator[K]
	var pool *sync.Pool
	switch any(*new(K)).(type) {
	case uint64:
		pool = &iterPoolU64
	case string:
		pool = &iterPoolStr
	}
	if pool != nil {
		it = pool.Get().(*Iterator[K])
	} else {
		it = new(Iterator[K])
	}
	it.pool = pool
	it.cursors = it.cursors[:0]
	it.k = 0
	it.closer = nil
	it.closed = false
	it.valid, it.emitted = false, false
	it.emittedN, it.obsKeys = 0, nil
	return it
}

// SetObs points the iterator at a histogram that will receive the number
// of keys this scan emitted when it Closes. Call between Get and Close;
// nil (the Get default) disables the report.
func (it *Iterator[K]) SetObs(keys *obs.Histogram) { it.obsKeys = keys }

// Add appends a merge source. Cursors must be added newest-first: on equal
// keys the lowest-indexed cursor wins the tournament, which is what gives
// the merge newest-wins semantics.
func (it *Iterator[K]) Add(c Cursor[K]) { it.cursors = append(it.cursors, c) }

// Start fixes the scan range [lo, hi), seeks every cursor to lo, and builds
// the tournament. closer (may be nil) runs once at Close, after the cursors
// are released. The iterator starts positioned before the first key: call
// Next to begin.
func (it *Iterator[K]) Start(lo, hi K, closer Closer) {
	it.hi = hi
	it.bounded = true
	it.start(lo, closer)
}

// StartFrom fixes the scan range [lo, ∞): like Start with no upper bound.
// The string instantiation needs this — strings have no maximum value to
// pass as an exclusive hi.
func (it *Iterator[K]) StartFrom(lo K, closer Closer) {
	it.bounded = false
	it.start(lo, closer)
}

func (it *Iterator[K]) start(lo K, closer Closer) {
	it.lo = lo
	it.closer = closer
	it.k = len(it.cursors)
	if cap(it.key) < it.k {
		it.key = make([]K, it.k)
		it.done = make([]bool, it.k)
		it.tree = make([]int32, it.k)
		it.win = make([]int32, 2*it.k)
	}
	it.key = it.key[:it.k]
	it.done = it.done[:it.k]
	it.tree = it.tree[:it.k]
	it.win = it.win[:2*it.k]
	it.seekAll(lo)
}

// seekAll repositions every cursor at the first key >= key and rebuilds the
// tournament from scratch.
func (it *Iterator[K]) seekAll(key K) {
	for j, c := range it.cursors {
		if c.Seek(key) {
			it.done[j] = false
			it.key[j] = c.Key()
		} else {
			it.done[j] = true
		}
	}
	it.build()
	it.valid, it.emitted = false, false
}

// beats reports whether leaf a wins its match against leaf b: live beats
// done, smaller key beats larger, and on equal keys the lower index (the
// newer source) wins.
func (it *Iterator[K]) beats(a, b int32) bool {
	if it.done[a] != it.done[b] {
		return !it.done[a]
	}
	if it.done[a] {
		return a < b
	}
	ka, kb := it.key[a], it.key[b]
	if ka != kb {
		return ka < kb
	}
	return a < b
}

// build plays the full tournament bottom-up: an implicit heap over 2k slots
// whose leaves are the cursors, recording each internal match's loser in
// tree and bubbling the winner to tree[0].
func (it *Iterator[K]) build() {
	k := it.k
	if k == 0 {
		return
	}
	if k == 1 {
		it.tree[0] = 0
		return
	}
	win := it.win
	for j := 0; j < k; j++ {
		win[k+j] = int32(j)
	}
	for i := k - 1; i >= 1; i-- {
		a, b := win[2*i], win[2*i+1]
		if it.beats(a, b) {
			win[i], it.tree[i] = a, b
		} else {
			win[i], it.tree[i] = b, a
		}
	}
	it.tree[0] = win[1]
}

// advance moves cursor j past its current key and replays j's root path:
// one match per tree level against the stored loser, exactly the work the
// loser tree exists to bound.
func (it *Iterator[K]) advance(j int32) {
	if it.cursors[j].Next() {
		it.key[j] = it.cursors[j].Key()
	} else {
		it.done[j] = true
	}
	if it.k == 1 {
		return
	}
	w := j
	for node := (int(j) + it.k) >> 1; node > 0; node >>= 1 {
		if it.beats(it.tree[node], w) {
			it.tree[node], w = w, it.tree[node]
		}
	}
	it.tree[0] = w
}

// Next advances to the next distinct key in range, reporting whether one
// exists. Duplicate keys across sources are emitted once (the newest
// source's instance, though for a key-only store all instances are equal).
func (it *Iterator[K]) Next() bool {
	for it.k > 0 {
		w := it.tree[0]
		if it.done[w] {
			break // winner exhausted => every cursor is
		}
		k := it.key[w]
		if it.bounded && k >= it.hi {
			break // winner is the minimum => nothing left in range
		}
		it.advance(w)
		if it.emitted && k == it.cur {
			continue // an older layer's duplicate of the last emitted key
		}
		it.cur = k
		it.emitted, it.valid = true, true
		it.emittedN++
		return true
	}
	it.valid = false
	return false
}

// Key returns the current key. Valid only after a true Next/Seek.
func (it *Iterator[K]) Key() K { return it.cur }

// Valid reports whether Key currently holds a scan result.
func (it *Iterator[K]) Valid() bool { return it.valid }

// Seek repositions the scan at the first key >= key (clamped into the
// Start range) and reports whether one exists there; on true, Key is
// already valid and Next continues past it. Seeking backward is allowed.
func (it *Iterator[K]) Seek(key K) bool {
	if key < it.lo {
		key = it.lo
	}
	it.seekAll(key)
	return it.Next()
}

// NextBatch fills dst with the next len(dst) keys of the scan, returning
// how many were produced (short only at end of range). The loop body is the
// same tournament pop as Next with the per-call bookkeeping amortized over
// the batch.
func (it *Iterator[K]) NextBatch(dst []K) int {
	n := 0
	for n < len(dst) && it.Next() {
		dst[n] = it.cur
		n++
	}
	return n
}

// Close releases every cursor, runs the owner's Closer, and recycles the
// iterator. Idempotent.
func (it *Iterator[K]) Close() {
	if it.closed {
		return
	}
	it.closed = true
	if it.obsKeys != nil {
		it.obsKeys.Observe(it.emittedN)
		it.obsKeys = nil
	}
	for i, c := range it.cursors {
		c.Release()
		it.cursors[i] = nil
	}
	it.cursors = it.cursors[:0]
	it.k = 0
	it.valid = false
	var zero K
	it.cur, it.lo, it.hi = zero, zero, zero // drop string refs held in pooled state
	for i := range it.key {
		it.key[i] = zero
	}
	if c := it.closer; c != nil {
		it.closer = nil
		c.CloseScan()
	}
	if it.pool != nil {
		it.pool.Put(it)
	}
}
