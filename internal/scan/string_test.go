package scan

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// TestStringIteratorMerge drives the string instantiation of the merge:
// overlapping sorted string sources, newest-wins dedup, bounded and
// unbounded ranges — differentially against a flat merge-sort oracle.
func TestStringIteratorMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	sources := make([][]string, 4)
	union := map[string]struct{}{}
	for s := range sources {
		n := 50 + rng.Intn(200)
		set := map[string]struct{}{}
		for len(set) < n {
			k := fmt.Sprintf("k%04d", rng.Intn(1000))
			set[k] = struct{}{}
			union[k] = struct{}{}
		}
		for k := range set {
			sources[s] = append(sources[s], k)
		}
		sort.Strings(sources[s])
	}
	all := make([]string, 0, len(union))
	for k := range union {
		all = append(all, k)
	}
	sort.Strings(all)

	ranges := [][2]string{{"", "zzzz"}, {"k0100", "k0500"}, {"k0999", "k1000"}, {"a", "a"}}
	for _, r := range ranges {
		lo, hi := r[0], r[1]
		it := Get[string]()
		cs := make([]KeysCursor[string], len(sources))
		for i := range sources {
			cs[i].Reset(sources[i], nil)
			it.Add(&cs[i])
		}
		it.Start(lo, hi, nil)
		var got []string
		for it.Next() {
			got = append(got, it.Key())
		}
		it.Close()
		var want []string
		for _, k := range all {
			if k >= lo && k < hi {
				want = append(want, k)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("range [%q,%q): got %d keys, want %d", lo, hi, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("range [%q,%q): key %d = %q, want %q", lo, hi, i, got[i], want[i])
			}
		}
	}

	// Unbounded-above: StartFrom streams to the end of every source.
	it := Get[string]()
	cs := make([]KeysCursor[string], len(sources))
	for i := range sources {
		cs[i].Reset(sources[i], nil)
		it.Add(&cs[i])
	}
	it.StartFrom("k0500", nil)
	var got []string
	for it.Next() {
		got = append(got, it.Key())
	}
	it.Close()
	want := all[sort.SearchStrings(all, "k0500"):]
	if len(got) != len(want) {
		t.Fatalf("StartFrom: got %d keys, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("StartFrom: key %d = %q, want %q", i, got[i], want[i])
		}
	}

	// Seek within an unbounded scan.
	it = Get[string]()
	for i := range sources {
		cs[i].Reset(sources[i], nil)
		it.Add(&cs[i])
	}
	it.StartFrom("", nil)
	if !it.Seek("k0700") {
		t.Fatal("Seek(k0700) found nothing")
	}
	if w := all[sort.SearchStrings(all, "k0700")]; it.Key() != w {
		t.Fatalf("Seek landed on %q, want %q", it.Key(), w)
	}
	it.Close()
}

// TestStringKeysCursorPositioner checks the learned-entry path of the
// string cursor via a stub Positioner.
func TestStringKeysCursorPositioner(t *testing.T) {
	keys := []string{"a", "b", "c", "d"}
	pos := stubStringPositioner{keys}
	var c KeysCursor[string]
	c.Reset(keys, pos)
	if !c.Seek("b") || c.Key() != "b" {
		t.Fatal("positioned Seek failed")
	}
	if !c.Next() || c.Key() != "c" {
		t.Fatal("Next after positioned Seek failed")
	}
	c.Release()
}

type stubStringPositioner struct{ keys []string }

func (s stubStringPositioner) Lookup(key string) int {
	return sort.SearchStrings(s.keys, key)
}
