//go:build !race

package scan

const raceEnabled = false
