package scan

import (
	"math/rand"
	"slices"
	"sort"
	"testing"
)

// refMerge is the oracle: sorted deduplicated union of all sources,
// restricted to [lo, hi).
func refMerge(sources [][]uint64, lo, hi uint64) []uint64 {
	var all []uint64
	for _, s := range sources {
		all = append(all, s...)
	}
	slices.Sort(all)
	all = slices.Compact(all)
	out := all[:0:0]
	for _, k := range all {
		if k >= lo && k < hi {
			out = append(out, k)
		}
	}
	return out
}

// collect drains an iterator over fresh KeysCursors built from sources.
func collect(t *testing.T, sources [][]uint64, lo, hi uint64) []uint64 {
	t.Helper()
	it := Get[uint64]()
	for _, s := range sources {
		c := new(KeysCursor[uint64])
		c.Reset(s, nil)
		it.Add(c)
	}
	it.Start(lo, hi, nil)
	defer it.Close()
	var got []uint64
	for it.Next() {
		got = append(got, it.Key())
	}
	return got
}

func TestMergeOracleRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		k := rng.Intn(7) // 0..6 sources
		sources := make([][]uint64, k)
		for i := range sources {
			n := rng.Intn(50)
			s := make([]uint64, n)
			for j := range s {
				s[j] = uint64(rng.Intn(120)) // dense domain => heavy overlap
			}
			slices.Sort(s)
			sources[i] = slices.Compact(s)
		}
		lo := uint64(rng.Intn(100))
		hi := lo + uint64(rng.Intn(60))
		got := collect(t, sources, lo, hi)
		want := refMerge(sources, lo, hi)
		if !slices.Equal(got, want) {
			t.Fatalf("trial %d: scan [%d,%d) = %v, want %v", trial, lo, hi, got, want)
		}
	}
}

func TestMergeEdgeShapes(t *testing.T) {
	// No cursors at all.
	if got := collect(t, nil, 0, 100); len(got) != 0 {
		t.Fatalf("empty iterator produced %v", got)
	}
	// One cursor, empty range, inverted range.
	src := [][]uint64{{1, 5, 9}}
	if got := collect(t, src, 6, 6); len(got) != 0 {
		t.Fatalf("empty range produced %v", got)
	}
	if got := collect(t, src, 9, 5); len(got) != 0 {
		t.Fatalf("inverted range produced %v", got)
	}
	if got, want := collect(t, src, 0, ^uint64(0)), []uint64{1, 5, 9}; !slices.Equal(got, want) {
		t.Fatalf("full scan = %v, want %v", got, want)
	}
	// All-duplicate sources collapse to one stream.
	dup := [][]uint64{{2, 4, 6}, {2, 4, 6}, {2, 4, 6}}
	if got, want := collect(t, dup, 0, 100), []uint64{2, 4, 6}; !slices.Equal(got, want) {
		t.Fatalf("dup merge = %v, want %v", got, want)
	}
}

func TestIteratorSeek(t *testing.T) {
	sources := [][]uint64{{1, 4, 7, 10, 13}, {2, 4, 8, 10, 14}}
	it := Get[uint64]()
	for _, s := range sources {
		c := new(KeysCursor[uint64])
		c.Reset(s, nil)
		it.Add(c)
	}
	it.Start(2, 14, nil)
	defer it.Close()

	if !it.Seek(7) || it.Key() != 7 {
		t.Fatalf("Seek(7): valid=%v key=%d", it.Valid(), it.Key())
	}
	if !it.Next() || it.Key() != 8 {
		t.Fatalf("Next after Seek(7) = %d", it.Key())
	}
	// Backward seek, to a key below lo: clamps to lo.
	if !it.Seek(0) || it.Key() != 2 {
		t.Fatalf("Seek(0) should clamp to lo=2, got %d (valid=%v)", it.Key(), it.Valid())
	}
	// Seek to a gap lands on the next key.
	if !it.Seek(5) || it.Key() != 7 {
		t.Fatalf("Seek(5) = %d, want 7", it.Key())
	}
	// Seek past the range end.
	if it.Seek(14) {
		t.Fatalf("Seek(14) should be exhausted (hi=14), got %d", it.Key())
	}
}

func TestNextBatchMatchesNext(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	sources := make([][]uint64, 4)
	for i := range sources {
		s := make([]uint64, 500)
		for j := range s {
			s[j] = uint64(rng.Intn(5000))
		}
		slices.Sort(s)
		sources[i] = slices.Compact(s)
	}
	want := refMerge(sources, 100, 4000)

	it := Get[uint64]()
	for _, s := range sources {
		c := new(KeysCursor[uint64])
		c.Reset(s, nil)
		it.Add(c)
	}
	it.Start(100, 4000, nil)
	defer it.Close()
	var got []uint64
	buf := make([]uint64, 37) // odd batch size exercises short fills
	for {
		n := it.NextBatch(buf)
		got = append(got, buf[:n]...)
		if n < len(buf) {
			break
		}
	}
	if !slices.Equal(got, want) {
		t.Fatalf("NextBatch drain: got %d keys, want %d", len(got), len(want))
	}
}

// fakePositioner counts Lookup calls and answers with sort.Search, standing
// in for a compiled plan.
type fakePositioner struct {
	keys  []uint64
	calls int
}

func (f *fakePositioner) Lookup(key uint64) int {
	f.calls++
	return sort.Search(len(f.keys), func(i int) bool { return f.keys[i] >= key })
}

func TestKeysCursorModelBiasedEntry(t *testing.T) {
	keys := make([]uint64, 1000)
	for i := range keys {
		keys[i] = uint64(3*i + 1)
	}
	fp := &fakePositioner{keys: keys}
	var c KeysCursor[uint64]
	c.Reset(keys, fp)
	if !c.Seek(301) || c.Key() != 301 {
		t.Fatalf("Seek(301) = %d", c.Key())
	}
	if fp.calls != 1 {
		t.Fatalf("positioner used %d times, want 1", fp.calls)
	}
	if !c.Next() || c.Key() != 304 {
		t.Fatalf("Next = %d", c.Key())
	}
	// Without a positioner, same semantics via binary search.
	var b KeysCursor[uint64]
	b.Reset(keys, nil)
	if !b.Seek(302) || b.Key() != 304 {
		t.Fatalf("binary Seek(302) = %d", b.Key())
	}
}

type countingCloser struct{ n int }

func (c *countingCloser) CloseScan() { c.n++ }

func TestCloseReleasesAndIsIdempotent(t *testing.T) {
	var cc countingCloser
	it := Get[uint64]()
	c := new(KeysCursor[uint64])
	c.Reset([]uint64{1, 2, 3}, nil)
	it.Add(c)
	it.Start(0, 10, &cc)
	if !it.Next() {
		t.Fatal("Next = false")
	}
	it.Close()
	it.Close()
	if cc.n != 1 {
		t.Fatalf("closer ran %d times, want 1", cc.n)
	}
	if c.keys != nil {
		t.Fatal("cursor not released")
	}
}

func TestIteratorPoolSteadyStateAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	sources := [][]uint64{{1, 2, 3, 4, 5}, {3, 4, 5, 6, 7}, {7, 8, 9}}
	cursors := make([]KeysCursor[uint64], len(sources))
	run := func() {
		it := Get[uint64]()
		for i := range sources {
			cursors[i].Reset(sources[i], nil)
			it.Add(&cursors[i])
		}
		it.Start(0, 100, nil)
		for it.Next() {
		}
		it.Close()
	}
	run() // warm the pool
	if avg := testing.AllocsPerRun(200, run); avg > 0 {
		t.Fatalf("steady-state iterator allocates %.1f per scan, want 0", avg)
	}
}
