package core

import (
	"learnedindex/internal/bloom"
)

// ModelHashBloom is the §5.1.2 / Appendix E alternative: the classifier
// output is discretized into a bitmap probe, d(x) = ⌊f(x)·m⌋, acting as one
// extra hash function "trained to map most keys to the higher range of bit
// positions and non-keys to the lower range" — maximizing key/key and
// non-key/non-key collisions while minimizing key/non-key collisions.
//
// A query is positive only if its bitmap bit is set AND the backing Bloom
// filter (which holds every key) agrees, so the overall FPR is
// FPR_m × FPR_B and false negatives remain impossible. The backing filter
// is sized for FPR_B = p*/FPR_m (Appendix E).
type ModelHashBloom struct {
	model  Classifier
	bitmap []uint64
	m      int
	backup *bloom.Filter
	fprM   float64
}

// NewModelHashBloom builds the structure: sets the bitmap bit for every
// key, measures FPR_m on validNeg, then sizes the backup filter over all
// keys for p*/FPR_m.
func NewModelHashBloom(model Classifier, keys, validNeg []string, m int, targetFPR float64) *ModelHashBloom {
	if m < 64 {
		m = 64
	}
	mh := &ModelHashBloom{model: model, m: m, bitmap: make([]uint64, (m+63)/64)}
	for _, k := range keys {
		b := mh.bit(k)
		mh.bitmap[b>>6] |= 1 << (b & 63)
	}
	// FPR_m: fraction of held-out non-keys whose bit is set.
	fp := 0
	for _, s := range validNeg {
		b := mh.bit(s)
		if mh.bitmap[b>>6]&(1<<(b&63)) != 0 {
			fp++
		}
	}
	if len(validNeg) > 0 {
		mh.fprM = float64(fp) / float64(len(validNeg))
	} else {
		mh.fprM = 1
	}
	fprB := 1.0
	if mh.fprM > 0 {
		fprB = targetFPR / mh.fprM
	}
	if fprB >= 1 {
		// The bitmap alone already achieves the target; keep a minimal
		// backup so the no-false-negative path stays uniform.
		fprB = 0.5
	}
	mh.backup = bloom.New(len(keys), fprB)
	for _, k := range keys {
		mh.backup.Add(k)
	}
	return mh
}

func (mh *ModelHashBloom) bit(s string) uint64 {
	f := mh.model.Predict(s)
	if f < 0 {
		f = 0
	}
	if f >= 1 {
		f = 0.999999999
	}
	return uint64(f * float64(mh.m))
}

// MayContain reports whether key may be in the set.
func (mh *ModelHashBloom) MayContain(key string) bool {
	b := mh.bit(key)
	if mh.bitmap[b>>6]&(1<<(b&63)) == 0 {
		return false
	}
	return mh.backup.MayContain(key)
}

// MeasureFPR returns the empirical false-positive rate over a non-key set.
func (mh *ModelHashBloom) MeasureFPR(neg []string) float64 {
	if len(neg) == 0 {
		return 0
	}
	fp := 0
	for _, s := range neg {
		if mh.MayContain(s) {
			fp++
		}
	}
	return float64(fp) / float64(len(neg))
}

// FPRm returns the bitmap-alone false-positive rate measured at build time.
func (mh *ModelHashBloom) FPRm() float64 { return mh.fprM }

// SizeBytes returns model + bitmap + backup filter footprint.
func (mh *ModelHashBloom) SizeBytes() int {
	return mh.model.SizeBytes() + len(mh.bitmap)*8 + mh.backup.SizeBytes()
}

// SizeBytesQuantized charges the model at float32 precision when supported.
func (mh *ModelHashBloom) SizeBytesQuantized() int {
	s := mh.model.SizeBytes()
	if q, ok := mh.model.(interface{ SizeBytesQuantized() int }); ok {
		s = q.SizeBytesQuantized()
	}
	return s + len(mh.bitmap)*8 + mh.backup.SizeBytes()
}
