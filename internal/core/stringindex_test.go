package core

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"learnedindex/internal/keycodec"
)

// stringIndexKeys builds a sorted unique key set with heavy shared-prefix
// collisions (URL-style) plus scattered short and random keys.
func stringIndexKeys(rng *rand.Rand, n int) []string {
	set := make(map[string]struct{}, n)
	for len(set) < n {
		switch rng.Intn(3) {
		case 0:
			set[fmt.Sprintf("http://example.com/page/%07d", rng.Intn(1<<22))] = struct{}{}
		case 1:
			set[fmt.Sprintf("u%d", rng.Intn(1<<20))] = struct{}{}
		default:
			b := make([]byte, 3+rng.Intn(20))
			for i := range b {
				b[i] = byte('a' + rng.Intn(26))
			}
			set[string(b)] = struct{}{}
		}
	}
	keys := make([]string, 0, n)
	for s := range set {
		keys = append(keys, s)
	}
	sort.Strings(keys)
	return keys
}

func checkStringIndexOracle(t *testing.T, si *StringIndex, keys []string, rng *rand.Rand) {
	t.Helper()
	probeSet := make([]string, 0, 4000)
	for i := 0; i < 1000; i++ {
		k := keys[rng.Intn(len(keys))]
		probeSet = append(probeSet, k, k+"\x00", k[:len(k)-1], k+"zz")
	}
	probeSet = append(probeSet, "", "\x00", "\xff\xff\xff\xff\xff\xff\xff\xff\xff")
	for _, p := range probeSet {
		want := sort.SearchStrings(keys, p)
		if got := si.Lookup(p); got != want {
			t.Fatalf("Lookup(%q) = %d, want %d", p, got, want)
		}
		if gotC := si.Contains(p); gotC != (want < len(keys) && keys[want] == p) {
			t.Fatalf("Contains(%q) = %v, want %v", p, gotC, !gotC)
		}
	}
	for i := 0; i < 500; i++ {
		a := probeSet[rng.Intn(len(probeSet))]
		b := probeSet[rng.Intn(len(probeSet))]
		if a > b {
			a, b = b, a
		}
		s, e := si.RangeScan(a, b)
		ws, we := sort.SearchStrings(keys, a), sort.SearchStrings(keys, b)
		if we < ws {
			we = ws
		}
		if s != ws || e != we {
			t.Fatalf("RangeScan(%q, %q) = [%d,%d), want [%d,%d)", a, b, s, e, ws, we)
		}
	}
}

func TestStringIndexLookupOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	keys := stringIndexKeys(rng, 20000)
	si := NewStringIndex(keys, DefaultConfig(64))
	if si.Len() != len(keys) {
		t.Fatalf("Len = %d, want %d", si.Len(), len(keys))
	}
	checkStringIndexOracle(t, si, keys, rng)
}

// TestStringIndexTieBreakModel forces the StringRMI path with a key set
// whose collision groups exceed srmiMaxGroup, and checks exactness there
// too — the clamp contract documented in stringrmi.go.
func TestStringIndexTieBreakModel(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	set := make(map[string]struct{}, 12000)
	// One shared 8-byte head -> every key collides into few giant groups.
	for len(set) < 12000 {
		set[fmt.Sprintf("http://%c/%06d", 'a'+rng.Intn(4), rng.Intn(1<<20))] = struct{}{}
	}
	keys := make([]string, 0, len(set))
	for s := range set {
		keys = append(keys, s)
	}
	sort.Strings(keys)
	si := NewStringIndex(keys, DefaultConfig(32))
	if !si.HasTieBreakModel() {
		t.Fatal("collision-heavy key set did not train a StringRMI tie-break model")
	}
	checkStringIndexOracle(t, si, keys, rng)
}

// TestAssembleStringIndex mirrors the segment-open path: rebuild from a
// decoded RMI + dictionary, never training, and require identical answers.
func TestAssembleStringIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	keys := stringIndexKeys(rng, 8000)
	prefixes, dict := keycodec.BuildDict(keys)
	rmi := New(prefixes, DefaultConfig(32))
	si := AssembleStringIndex(rmi, dict)
	if si.HasTieBreakModel() {
		t.Fatal("AssembleStringIndex must not train a tie-break model")
	}
	checkStringIndexOracle(t, si, keys, rng)
}

func TestStringIndexEmpty(t *testing.T) {
	si := NewStringIndex(nil, DefaultConfig(16))
	if si.Len() != 0 || si.Lookup("x") != 0 || si.Contains("x") {
		t.Fatal("empty index misbehaves")
	}
	s, e := si.RangeScan("a", "b")
	if s != 0 || e != 0 {
		t.Fatal("empty RangeScan misbehaves")
	}
}
