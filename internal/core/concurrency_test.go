package core

import (
	"sync"
	"testing"

	"learnedindex/internal/data"
)

// TestRMIConcurrentReaders: the index is read-only after training; parallel
// lookups from many goroutines must be race-free and correct (run under
// `go test -race` to make this meaningful).
func TestRMIConcurrentReaders(t *testing.T) {
	keys := data.LognormalPaper(30_000, 1)
	cfg := DefaultConfig(300)
	cfg.HybridThreshold = 64 // exercise the hybrid path concurrently too
	r := New(keys, cfg)
	probes := append(data.SampleExisting(keys, 2000, 2), data.SampleMissing(keys, 500, 3)...)
	want := make([]int, len(probes))
	for i, p := range probes {
		want[i] = oracle(keys, p)
	}
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < len(probes); i += 8 {
				if got := r.Lookup(probes[i]); got != want[i] {
					select {
					case errs <- "concurrent lookup mismatch":
					default:
					}
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	if msg, open := <-errs; open {
		t.Fatal(msg)
	}
}

// TestStringRMIConcurrentReaders: same property for the string index (its
// Lookup uses stack buffers, never shared state).
func TestStringRMIConcurrentReaders(t *testing.T) {
	keys := data.DocIDs(10_000, 1)
	r := NewString(keys, DefaultStringConfig(100, 16))
	probes := data.SampleExistingStrings(keys, 2000, 2)
	var wg sync.WaitGroup
	bad := false
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < len(probes); i += 8 {
				if !r.Contains(probes[i]) {
					bad = true
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if bad {
		t.Fatal("concurrent string lookup lost a key")
	}
}

// TestHybridSizeAccountingOffsets: the offset-based hybrid must charge 4
// bytes per assigned key plus sparse separators — never key copies.
func TestHybridSizeAccountingOffsets(t *testing.T) {
	keys := data.Weblogs(20_000, 1)
	base := New(keys, DefaultConfig(100))
	cfg := DefaultConfig(100)
	cfg.HybridThreshold = 1 // force (nearly) everything hybrid
	hyb := New(keys, cfg)
	if hyb.NumHybrid() == 0 {
		t.Skip("nothing hybrid on this seed")
	}
	// Upper bound: base index + 4B/key offsets + separators (8B per
	// HybridPageSize keys) + slack. Read the page size back from the
	// trained index (New fills in the default).
	ps := hyb.Config().HybridPageSize
	maxExtra := len(keys)*4 + (len(keys)/ps+hyb.NumHybrid())*8
	if hyb.SizeBytes() > base.SizeBytes()+maxExtra {
		t.Fatalf("hybrid size %d exceeds offset-accounting bound %d",
			hyb.SizeBytes(), base.SizeBytes()+maxExtra)
	}
}
