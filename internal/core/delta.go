package core

import (
	"sort"

	"learnedindex/internal/search"
)

// DeltaIndex handles inserts for a learned index with the delta/buffer
// strategy of Appendix D.1: "All inserts are kept in buffer and from time
// to time merged with a potential retraining of the model. This approach is
// already widely used, for example in Bigtable."
//
// Lookups consult the trained RMI over the base array and binary-search the
// (small, sorted) delta buffer, merging the two views. When the buffer
// exceeds the merge threshold, the arrays are merged and the RMI retrained.
//
// The index has set semantics: inserting a key already present (in either
// view) is a no-op, so Len and Count are exact at all times, before and
// after merges.
//
// DeltaIndex makes NO concurrency guarantees: Insert may trigger a merge
// that replaces the base array and RMI in place, so it must not race with
// any other method. Callers that need concurrent readers during inserts and
// merges should use internal/serve, which layers RCU-style snapshot
// swapping and sharding on top of this package.
type DeltaIndex struct {
	rmi    *RMI
	base   []uint64
	delta  []uint64 // sorted insert buffer
	cfg    Config
	thresh int
	merges int
}

// NewDelta builds a delta index over the initial sorted keys (duplicates
// are dropped in place, preserving the exact-count guarantee). mergeThresh
// is the buffered-insert count that triggers a merge+retrain (default:
// max(1024, n/16)).
func NewDelta(keys []uint64, cfg Config, mergeThresh int) *DeltaIndex {
	if n := len(keys); n > 1 {
		dst := keys[:1]
		for _, v := range keys[1:] {
			if v != dst[len(dst)-1] {
				dst = append(dst, v)
			}
		}
		keys = dst
	}
	if mergeThresh <= 0 {
		mergeThresh = len(keys) / 16
		if mergeThresh < 1024 {
			mergeThresh = 1024
		}
	}
	return &DeltaIndex{rmi: New(keys, cfg), base: keys, cfg: cfg, thresh: mergeThresh}
}

// Insert adds a key. Appends (the common log/timestamp workload the paper
// calls out as O(1) for learned indexes) and mid-inserts both go through
// the buffer. The buffer is kept sorted and disjoint from the base array:
// re-inserting a present key is a no-op, which is what keeps Len and Count
// exact between merges. Appends shift nothing, so they stay O(log) compare
// / O(1) move.
func (d *DeltaIndex) Insert(key uint64) {
	p := search.Binary(d.delta, key, 0, len(d.delta))
	if p < len(d.delta) && d.delta[p] == key {
		return // already buffered
	}
	// Base-view dedup. Pure appends (key beyond the base) skip the RMI
	// lookup entirely, keeping the log/timestamp workload cheap.
	if len(d.base) > 0 && key <= d.base[len(d.base)-1] && d.rmi.Contains(key) {
		return // already in the base view
	}
	d.delta = append(d.delta, 0)
	copy(d.delta[p+1:], d.delta[p:])
	d.delta[p] = key
	if len(d.delta) >= d.thresh {
		d.Merge()
	}
}

// Merge merges the buffer into the base array and retrains the RMI.
func (d *DeltaIndex) Merge() {
	if len(d.delta) == 0 {
		return
	}
	merged := make([]uint64, 0, len(d.base)+len(d.delta))
	i, j := 0, 0
	for i < len(d.base) && j < len(d.delta) {
		if d.base[i] <= d.delta[j] {
			merged = append(merged, d.base[i])
			i++
		} else {
			merged = append(merged, d.delta[j])
			j++
		}
	}
	merged = append(merged, d.base[i:]...)
	merged = append(merged, d.delta[j:]...)
	// Insert keeps the views disjoint, so this dedup only defends against a
	// caller seeding NewDelta with duplicate keys.
	dst := merged[:0]
	var prev uint64
	for k, v := range merged {
		if k == 0 || v != prev {
			dst = append(dst, v)
			prev = v
		}
	}
	d.base = dst
	d.delta = d.delta[:0]
	d.rmi = New(d.base, d.cfg)
	d.merges++
}

// Contains reports whether key is present in the base array or the buffer.
func (d *DeltaIndex) Contains(key uint64) bool {
	if d.rmi.Contains(key) {
		return true
	}
	p := search.Binary(d.delta, key, 0, len(d.delta))
	return p < len(d.delta) && d.delta[p] == key
}

// Count returns the number of distinct keys k in [lo, hi). The two views
// are disjoint (Insert dedups against the base), so summing the per-view
// range counts is exact.
func (d *DeltaIndex) Count(lo, hi uint64) int {
	if hi <= lo {
		return 0
	}
	s, e := d.rmi.RangeScan(lo, hi)
	ds := search.Binary(d.delta, lo, 0, len(d.delta))
	de := search.Binary(d.delta, hi, 0, len(d.delta))
	return (e - s) + (de - ds)
}

// Len returns the total number of distinct keys.
func (d *DeltaIndex) Len() int { return len(d.base) + len(d.delta) }

// Merges returns how many merge+retrain cycles have run.
func (d *DeltaIndex) Merges() int { return d.merges }

// BufferLen returns the current insert-buffer size.
func (d *DeltaIndex) BufferLen() int { return len(d.delta) }

// RMI returns the current trained index (replaced on every merge).
func (d *DeltaIndex) RMI() *RMI { return d.rmi }

// Keys returns a sorted snapshot of all keys (allocates; for tests).
func (d *DeltaIndex) Keys() []uint64 {
	out := make([]uint64, 0, d.Len())
	out = append(out, d.base...)
	out = append(out, d.delta...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
