package core

import (
	"sort"

	"learnedindex/internal/search"
)

// DeltaIndex handles inserts for a learned index with the delta/buffer
// strategy of Appendix D.1: "All inserts are kept in buffer and from time
// to time merged with a potential retraining of the model. This approach is
// already widely used, for example in Bigtable."
//
// Lookups consult the trained RMI over the base array and binary-search the
// (small, sorted) delta buffer, merging the two views. When the buffer
// exceeds the merge threshold, the arrays are merged and the RMI retrained.
type DeltaIndex struct {
	rmi    *RMI
	base   []uint64
	delta  []uint64 // sorted insert buffer
	cfg    Config
	thresh int
	merges int
}

// NewDelta builds a delta index over the initial sorted keys. mergeThresh
// is the buffered-insert count that triggers a merge+retrain (default:
// max(1024, n/16)).
func NewDelta(keys []uint64, cfg Config, mergeThresh int) *DeltaIndex {
	if mergeThresh <= 0 {
		mergeThresh = len(keys) / 16
		if mergeThresh < 1024 {
			mergeThresh = 1024
		}
	}
	return &DeltaIndex{rmi: New(keys, cfg), base: keys, cfg: cfg, thresh: mergeThresh}
}

// Insert adds a key. Appends (the common log/timestamp workload the paper
// calls out as O(1) for learned indexes) and mid-inserts both go through
// the buffer; the buffer is kept sorted by insertion-sort from the back,
// which is O(1) amortized for append-mostly workloads.
func (d *DeltaIndex) Insert(key uint64) {
	d.delta = append(d.delta, key)
	// Insertion sort from the back: appends cost O(1).
	for i := len(d.delta) - 1; i > 0 && d.delta[i-1] > d.delta[i]; i-- {
		d.delta[i-1], d.delta[i] = d.delta[i], d.delta[i-1]
	}
	if len(d.delta) >= d.thresh {
		d.Merge()
	}
}

// Merge merges the buffer into the base array and retrains the RMI.
func (d *DeltaIndex) Merge() {
	if len(d.delta) == 0 {
		return
	}
	merged := make([]uint64, 0, len(d.base)+len(d.delta))
	i, j := 0, 0
	for i < len(d.base) && j < len(d.delta) {
		if d.base[i] <= d.delta[j] {
			merged = append(merged, d.base[i])
			i++
		} else {
			merged = append(merged, d.delta[j])
			j++
		}
	}
	merged = append(merged, d.base[i:]...)
	merged = append(merged, d.delta[j:]...)
	// Drop duplicates introduced by repeated inserts.
	dst := merged[:0]
	var prev uint64
	for k, v := range merged {
		if k == 0 || v != prev {
			dst = append(dst, v)
			prev = v
		}
	}
	d.base = dst
	d.delta = d.delta[:0]
	d.rmi = New(d.base, d.cfg)
	d.merges++
}

// Contains reports whether key is present in the base array or the buffer.
func (d *DeltaIndex) Contains(key uint64) bool {
	if d.rmi.Contains(key) {
		return true
	}
	p := search.Binary(d.delta, key, 0, len(d.delta))
	return p < len(d.delta) && d.delta[p] == key
}

// Count returns the number of keys k in [lo, hi) across both views.
func (d *DeltaIndex) Count(lo, hi uint64) int {
	s, e := d.rmi.RangeScan(lo, hi)
	ds := search.Binary(d.delta, lo, 0, len(d.delta))
	de := search.Binary(d.delta, hi, 0, len(d.delta))
	return (e - s) + (de - ds)
}

// Len returns the total number of keys.
func (d *DeltaIndex) Len() int { return len(d.base) + len(d.delta) }

// Merges returns how many merge+retrain cycles have run.
func (d *DeltaIndex) Merges() int { return d.merges }

// BufferLen returns the current insert-buffer size.
func (d *DeltaIndex) BufferLen() int { return len(d.delta) }

// RMI returns the current trained index (replaced on every merge).
func (d *DeltaIndex) RMI() *RMI { return d.rmi }

// Keys returns a sorted snapshot of all keys (allocates; for tests).
func (d *DeltaIndex) Keys() []uint64 {
	out := make([]uint64, 0, d.Len())
	out = append(out, d.base...)
	out = append(out, d.delta...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
