package core

import (
	"learnedindex/internal/keycodec"
	"learnedindex/internal/search"
)

// StringIndex is the string-keyed read path built on the key codec
// (internal/keycodec): a compiled uint64 RMI plan over the sorted
// deduplicated 8-byte prefixes, plus the suffix dictionary for exact
// disambiguation, plus — when the key set is collision-heavy — a StringRMI
// trained over the exact keys as the last-mile tie-break model.
//
// A lookup is a two-level descent:
//
//  1. the probe's prefix runs through the uint64 plan, yielding the prefix
//     rank pi (lower bound over the deduped prefix array);
//  2. the dictionary's collision directory converts pi to a string range:
//     a prefix miss maps straight to Start(pi) (every key in earlier groups
//     is < probe, every key from Start(pi) on is > probe); a prefix hit
//     narrows to the group [Start(pi), Start(pi+1)) of keys sharing the
//     prefix, where the tie-break resolves the exact lower bound — a single
//     compare for the common singleton group, stringsearch's bounded binary
//     for small groups, or the StringRMI (clamped into the group) when one
//     was trained.
//
// The result is a true lower bound over the exact keys in bytes order, with
// the same semantics as RMI.Lookup over uint64 keys.
type StringIndex struct {
	prefixes []uint64
	dict     *keycodec.Dict
	rmi      *RMI
	plan     *Plan
	srmi     *StringRMI // nil unless the key set is collision-heavy
}

// Collision-heaviness thresholds: a StringRMI tie-break model is worth its
// training time only when binary search inside collision groups would be a
// real cost — a huge group (URL corpora sharing "http://…" heads) or a
// large collided fraction.
const (
	srmiMaxGroup      = 64 // largest group a bounded binary search absorbs
	srmiCollideFrac   = 8  // train srmi when collisions > len/srmiCollideFrac
	srmiMinCollisions = 4096
)

// NewStringIndex builds a StringIndex over sorted unique keys.
func NewStringIndex(keys []string, cfg Config) *StringIndex {
	return NewStringIndexWorkers(keys, cfg, trainingWorkers(len(keys)))
}

// NewStringIndexWorkers builds like NewStringIndex with an explicit
// stage-training worker count for the prefix RMI (1 = sequential;
// serialized results are bit-identical for every count).
func NewStringIndexWorkers(keys []string, cfg Config, workers int) *StringIndex {
	prefixes, dict := keycodec.BuildDict(keys)
	si := &StringIndex{
		prefixes: prefixes,
		dict:     dict,
		rmi:      NewWithTrainWorkers(prefixes, cfg, workers),
	}
	si.plan = si.rmi.Plan()
	if nc := dict.NumCollisions(); dict.MaxGroup() > srmiMaxGroup ||
		(nc >= srmiMinCollisions && nc > len(keys)/srmiCollideFrac) {
		scfg := DefaultStringConfig(defaultLeafCount(len(keys)))
		scfg.Seed = cfg.Seed
		si.srmi = NewString(keys, scfg)
	}
	return si
}

// AssembleStringIndex wires a StringIndex from an already-decoded prefix
// RMI and dictionary (the segment-open path). It never trains anything —
// cold-opening a persistent store deserializes models, it does not retrain
// — so the tie-break inside collision groups is always the bounded binary
// search here; the prefix plan still does all the positioning work.
func AssembleStringIndex(rmi *RMI, dict *keycodec.Dict) *StringIndex {
	return &StringIndex{prefixes: rmi.Keys(), dict: dict, rmi: rmi, plan: rmi.Plan()}
}

// Lookup returns the lower-bound position of key over the exact string
// keys: the index of the first key >= key in bytes order.
func (si *StringIndex) Lookup(key string) int {
	p := keycodec.Prefix(key)
	pi := si.plan.Lookup(p)
	if pi >= len(si.prefixes) || si.prefixes[pi] != p {
		// Prefix miss: the rank bridge is exact.
		return si.dict.Start(pi)
	}
	s, e := si.dict.Group(pi)
	if e-s == 1 {
		// Singleton group: one compare resolves the tie.
		if si.dict.Strings()[s] < key {
			return s + 1
		}
		return s
	}
	if si.srmi != nil {
		pos := si.srmi.Lookup(key)
		// The model answers over the full key array; a correct lower bound
		// for a key with this prefix always lands inside [s, e] — clamp
		// defensively so a model bug can't leak an out-of-group position.
		if pos < s {
			pos = s
		}
		if pos > e {
			pos = e
		}
		return pos
	}
	return search.StringBinary(si.dict.Strings(), key, s, e)
}

// Contains reports whether key is stored.
func (si *StringIndex) Contains(key string) bool {
	pos := si.Lookup(key)
	strs := si.dict.Strings()
	return pos < len(strs) && strs[pos] == key
}

// RangeScan returns the position range [start, end) of stored keys in
// [loKey, hiKey) — two lookups, mirroring Plan.RangeScan.
func (si *StringIndex) RangeScan(loKey, hiKey string) (start, end int) {
	start = si.Lookup(loKey)
	if hiKey <= loKey {
		return start, start
	}
	return start, si.Lookup(hiKey)
}

// Len returns the number of stored keys.
func (si *StringIndex) Len() int { return si.dict.Len() }

// Strings returns the sorted stored keys. Shared, read-only.
func (si *StringIndex) Strings() []string { return si.dict.Strings() }

// Prefixes returns the sorted deduplicated prefix array. Shared, read-only.
func (si *StringIndex) Prefixes() []uint64 { return si.prefixes }

// Dict returns the suffix dictionary.
func (si *StringIndex) Dict() *keycodec.Dict { return si.dict }

// RMI returns the prefix-level RMI (for serialization).
func (si *StringIndex) RMI() *RMI { return si.rmi }

// Plan returns the live compiled prefix plan — the one Lookup runs, so its
// sampled model-health histograms reflect real traffic. (RMI().Plan()
// would compile a fresh plan with empty observations.)
func (si *StringIndex) Plan() *Plan { return si.plan }

// HasTieBreakModel reports whether a StringRMI tie-break model was trained.
func (si *StringIndex) HasTieBreakModel() bool { return si.srmi != nil }
