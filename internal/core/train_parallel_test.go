package core

import (
	"bytes"
	"testing"

	"learnedindex/internal/data"
)

// TestParallelTrainerBitIdentical pins the tentpole contract of the
// parallel trainer: for every stage-1 model family, multi-stage shapes,
// and hybrid B-Tree leaves, the serialized bytes of a parallel-trained
// RMI equal the sequential trainer's exactly — coefficients, error
// windows, standard errors, B-Tree offsets, and the global error stats
// down to the last float bit. Worker counts beyond the chunk count and
// non-power-of-two counts are included so chunk-boundary arithmetic is
// covered too.
func TestParallelTrainerBitIdentical(t *testing.T) {
	keys := data.LognormalPaper(60_000, 17)
	cases := map[string]Config{
		"linear-default": DefaultConfig(500),
		"multivariate":   {Top: TopMultivariate, StageSizes: []int{300}, Search: SearchQuaternary, Seed: 1},
		"nn-top":         {Top: TopNN, Hidden: []int{8}, StageSizes: []int{120}, Search: SearchBinary, Seed: 1, SubsampleTop: 20_000},
		"hybrid":         {Top: TopLinear, StageSizes: []int{60}, Search: SearchModelBiased, HybridThreshold: 8, HybridPageSize: 16, Seed: 1},
		"multi-stage":    {Top: TopLinear, StageSizes: []int{8, 64, 500}, Search: SearchExponential, Seed: 1},
	}
	for name, cfg := range cases {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			seq := NewWithTrainWorkers(keys, cfg, 1)
			want, err := seq.AppendBinary(nil)
			if err != nil {
				t.Fatalf("encode sequential: %v", err)
			}
			if name == "hybrid" && seq.NumHybrid() == 0 {
				t.Fatal("hybrid case built no B-Tree leaves; tighten the threshold")
			}
			for _, workers := range []int{2, 3, 8, 64} {
				par := NewWithTrainWorkers(keys, cfg, workers)
				got, err := par.AppendBinary(nil)
				if err != nil {
					t.Fatalf("encode workers=%d: %v", workers, err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("workers=%d: serialized bytes differ from sequential trainer (%d vs %d bytes)",
						workers, len(got), len(want))
				}
				if par.MeanAbsErr() != seq.MeanAbsErr() || par.MaxAbsErr() != seq.MaxAbsErr() {
					t.Fatalf("workers=%d: error stats drifted", workers)
				}
			}
		})
	}
}

// TestParallelTrainerLookupEquivalence spot-checks that a parallel-trained
// index answers exactly like its sequential twin on members, misses, and
// extremes — a behavioral backstop for the byte-level test above.
func TestParallelTrainerLookupEquivalence(t *testing.T) {
	keys := data.Maps(70_000, 23)
	cfg := DefaultConfig(700)
	seq := NewWithTrainWorkers(keys, cfg, 1)
	par := NewWithTrainWorkers(keys, cfg, 5)
	probes := append(data.SampleExisting(keys, 3000, 24), data.SampleMissing(keys, 3000, 25)...)
	probes = append(probes, 0, keys[0], keys[len(keys)-1], keys[len(keys)-1]+1, ^uint64(0))
	for _, k := range probes {
		if a, b := seq.Lookup(k), par.Lookup(k); a != b {
			t.Fatalf("Lookup(%d): sequential %d, parallel %d", k, a, b)
		}
	}
}

func TestTrainingWorkersClamp(t *testing.T) {
	if w := trainingWorkers(100); w != 1 {
		t.Fatalf("tiny input got %d workers, want 1", w)
	}
	if w := trainingWorkers(1 << 22); w < 1 {
		t.Fatalf("workers=%d < 1", w)
	}
	// Explicit worker counts below 1 clamp instead of panicking.
	r := NewWithTrainWorkers(data.Dense(1000, 10, 3), DefaultConfig(16), 0)
	if r.Lookup(r.Keys()[500]) != 500 {
		t.Fatal("workers=0 trainer broken")
	}
}
