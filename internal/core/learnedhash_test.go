package core

import (
	"testing"

	"learnedindex/internal/data"
	"learnedindex/internal/hashmap"
)

func TestLearnedHashRange(t *testing.T) {
	keys := data.Lognormal(20_000, 0, 2, 1_000_000_000, 1)
	h := NewLearnedHash(keys, len(keys), 200)
	for _, k := range keys {
		s := h.Hash(k)
		if s < 0 || s >= h.Slots() {
			t.Fatalf("hash out of range: %d", s)
		}
	}
	// Arbitrary (non-stored) keys must also stay in range.
	for _, k := range data.SampleMissing(keys, 2000, 2) {
		s := h.Hash(k)
		if s < 0 || s >= h.Slots() {
			t.Fatalf("hash out of range for missing key: %d", s)
		}
	}
}

func TestLearnedHashReducesConflictsOnAllDatasets(t *testing.T) {
	// The Figure 8 claim: the learned hash reduces conflicts on every
	// dataset, most on Maps, least on Lognormal/Weblogs.
	for name, keys := range allDatasets(50_000) {
		slots := len(keys)
		lh := NewLearnedHash(keys, slots, len(keys)/50)
		learned := MeasureConflicts(keys, slots, lh.Hash)
		random := MeasureConflicts(keys, slots, RandomHashFunc(slots))
		if learned.ConflictRate() >= random.ConflictRate() {
			t.Fatalf("%s: learned hash (%.3f) did not beat random (%.3f)",
				name, learned.ConflictRate(), random.ConflictRate())
		}
		t.Logf("%s: random %.1f%% learned %.1f%% reduction %.1f%%",
			name, random.ConflictRate()*100, learned.ConflictRate()*100,
			(1-learned.ConflictRate()/random.ConflictRate())*100)
	}
}

func TestRandomHashConflictsNearBirthdayParadox(t *testing.T) {
	// With slots == keys, a random hash leaves ~1/e of slots empty and
	// conflicts ~36.8% of keys (§4's "birthday paradox" arithmetic).
	keys := data.Uniform(100_000, 1<<50, 1)
	st := MeasureConflicts(keys, len(keys), RandomHashFunc(len(keys)))
	if r := st.ConflictRate(); r < 0.34 || r > 0.40 {
		t.Fatalf("random conflict rate %.3f, want ~0.368", r)
	}
	if e := float64(st.Empty) / float64(st.Slots); e < 0.34 || e > 0.40 {
		t.Fatalf("empty fraction %.3f, want ~0.368", e)
	}
}

func TestLearnedHashPerfectOnDense(t *testing.T) {
	// Dense keys: CDF is exact, so a learned hash into n slots is
	// conflict-free — the §4 motivating case.
	keys := data.Dense(50_000, 1_000_000, 1)
	lh := NewLearnedHash(keys, len(keys), 100)
	st := MeasureConflicts(keys, len(keys), lh.Hash)
	if st.ConflictRate() > 0.001 {
		t.Fatalf("dense learned hash conflict rate %.4f, want ~0", st.ConflictRate())
	}
}

func TestConflictStatsAccounting(t *testing.T) {
	keys := data.Uniform(10_000, 1<<40, 1)
	st := MeasureConflicts(keys, len(keys), RandomHashFunc(len(keys)))
	if st.Occupied+st.Empty != st.Slots {
		t.Fatal("occupied + empty != slots")
	}
	if st.Conflicts != st.Keys-st.Occupied {
		t.Fatal("conflicts != keys - occupied")
	}
	if st.MaxChain < 2 {
		t.Fatal("expected at least one 2-chain at 100% load")
	}
}

func TestLearnedHashWithChainedMap(t *testing.T) {
	// End-to-end: the learned hash must plug into the Appendix B map and
	// waste fewer slots than random hashing.
	keys := data.Maps(30_000, 1)
	lh := NewLearnedHash(keys, len(keys), 3000)

	build := func(h hashmap.HashFunc) *hashmap.Chained {
		m := hashmap.NewChained(len(keys), h)
		for i, k := range keys {
			m.Insert(hashmap.Record{Key: k, Payload: k, Meta: uint32(i)})
		}
		return m
	}
	learned := build(lh.Hash)
	random := build(hashmap.HashFunc(RandomHashFunc(len(keys))))
	for _, k := range keys[:1000] {
		if _, ok := learned.Lookup(k); !ok {
			t.Fatalf("learned-hash map lost key %d", k)
		}
	}
	if learned.EmptySlots() >= random.EmptySlots() {
		t.Fatalf("learned map wasted more slots: %d vs %d", learned.EmptySlots(), random.EmptySlots())
	}
}

func TestNewLearnedHashFromRMI(t *testing.T) {
	keys := data.Lognormal(10_000, 0, 2, 1_000_000_000, 1)
	r := New(keys, DefaultConfig(100))
	h := NewLearnedHashFromRMI(r, 5000)
	if h.Slots() != 5000 {
		t.Fatal("slots not set")
	}
	for _, k := range keys[:500] {
		if s := h.Hash(k); s < 0 || s >= 5000 {
			t.Fatalf("out of range %d", s)
		}
	}
	if h.SizeBytes() != r.SizeBytes() {
		t.Fatal("size should delegate to the RMI")
	}
}
