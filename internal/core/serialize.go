package core

import (
	"fmt"

	"learnedindex/internal/binenc"
	"learnedindex/internal/ml"
)

// RMI serialization. The encoding holds everything a trained index knows
// except the key array itself — config, top model, inner stage models,
// leaves with their error windows, and hybrid B-Tree offsets — so a
// segment file stores keys once and the model binds to them at decode
// time. This is the storage engine's "no retraining on cold open"
// contract: DecodeRMI rebuilds a serving-ready index from bytes plus the
// externally stored sorted keys.
//
// Bump rmiFormatVersion on any layout change; the segment magic in
// internal/storage should move with it so old files fail cleanly.
const rmiFormatVersion = 1

// Decode bounds, sized well past anything New can produce at sane scale
// while keeping hostile counts from allocating gigabytes.
const (
	maxStages    = 16
	maxHiddenLen = 8
)

// AppendBinary appends the RMI's encoding (keys excluded) to b. It fails
// only when the top model is unencodable (a custom-menu Multivariate).
func (r *RMI) AppendBinary(b []byte) ([]byte, error) {
	b = binenc.AppendUvarint(b, rmiFormatVersion)
	b = binenc.AppendUvarint(b, uint64(len(r.keys)))

	// Config.
	b = binenc.AppendUvarint(b, uint64(r.cfg.Top))
	b = binenc.AppendUvarint(b, uint64(len(r.cfg.Hidden)))
	for _, h := range r.cfg.Hidden {
		b = binenc.AppendUvarint(b, uint64(h))
	}
	b = binenc.AppendUvarint(b, uint64(len(r.cfg.StageSizes)))
	for _, s := range r.cfg.StageSizes {
		b = binenc.AppendUvarint(b, uint64(s))
	}
	b = binenc.AppendUvarint(b, uint64(r.cfg.Search))
	b = binenc.AppendVarint(b, int64(r.cfg.HybridThreshold))
	b = binenc.AppendVarint(b, int64(r.cfg.HybridPageSize))
	b = binenc.AppendVarint(b, int64(r.cfg.SubsampleTop))
	b = binenc.AppendVarint(b, r.cfg.Seed)

	// Top model.
	tb, err := ml.AppendModel(nil, r.top)
	if err != nil {
		return nil, fmt.Errorf("core: encode RMI top: %w", err)
	}
	b = binenc.AppendBytes(b, tb)

	// Inner stages.
	b = binenc.AppendUvarint(b, uint64(len(r.stages)))
	for _, st := range r.stages {
		b = binenc.AppendUvarint(b, uint64(len(st)))
		for _, m := range st {
			b = binenc.AppendF64(b, m.a)
			b = binenc.AppendF64(b, m.b)
		}
	}

	// Leaves.
	b = binenc.AppendUvarint(b, uint64(len(r.leaves)))
	for i := range r.leaves {
		lf := &r.leaves[i]
		b = binenc.AppendF64(b, lf.m.a)
		b = binenc.AppendF64(b, lf.m.b)
		b = binenc.AppendVarint(b, int64(lf.minErr))
		b = binenc.AppendVarint(b, int64(lf.maxErr))
		b = binenc.AppendF64(b, float64(lf.stdErr))
		b = binenc.AppendVarint(b, int64(lf.n))
		// Hybrid replacement: 0 = none; otherwise 1+len(btPos) so an empty
		// (but present) B-Tree is distinguishable from no B-Tree.
		if lf.btPos == nil {
			b = binenc.AppendUvarint(b, 0)
			continue
		}
		b = binenc.AppendUvarint(b, uint64(1+len(lf.btPos)))
		prev := int64(0)
		for _, p := range lf.btPos {
			b = binenc.AppendVarint(b, int64(p)-prev) // ascending: small deltas
			prev = int64(p)
		}
		b = binenc.AppendUvarint(b, uint64(len(lf.btSep)))
		for _, s := range lf.btSep {
			b = binenc.AppendUvarint(b, s)
		}
	}

	// Reporting stats.
	b = binenc.AppendF64(b, r.meanAbsErr)
	b = binenc.AppendVarint(b, int64(r.maxAbsErr))
	b = binenc.AppendVarint(b, int64(r.numHybrid))
	return b, nil
}

// DecodeRMI rebuilds a serving-ready RMI from enc, binding it to keys —
// the same sorted unique array the encoded index was trained over (the
// stored key count is cross-checked). Every structural invariant the
// lookup path relies on is validated, so corrupt bytes produce an error,
// never a panic at decode or lookup time.
func DecodeRMI(enc []byte, keys []uint64) (*RMI, error) {
	rd := binenc.NewReader(enc)
	if v := rd.Uvarint(); v != rmiFormatVersion {
		if rd.Err() != nil {
			return nil, rd.Err()
		}
		return nil, fmt.Errorf("core: RMI format version %d, want %d: %w", v, rmiFormatVersion, binenc.ErrCorrupt)
	}
	if n := rd.Uvarint(); n != uint64(len(keys)) {
		if rd.Err() != nil {
			return nil, rd.Err()
		}
		return nil, fmt.Errorf("core: RMI trained over %d keys, bound to %d: %w", n, len(keys), binenc.ErrCorrupt)
	}

	r := &RMI{keys: keys, nf: float64(len(keys))}
	r.cfg.Top = TopKind(rd.Uvarint())
	nh := rd.Count(maxHiddenLen, 1)
	for i := 0; i < nh; i++ {
		r.cfg.Hidden = append(r.cfg.Hidden, int(rd.Uvarint()))
	}
	ns := rd.Count(maxStages, 1)
	for i := 0; i < ns; i++ {
		r.cfg.StageSizes = append(r.cfg.StageSizes, int(rd.Uvarint()))
	}
	r.cfg.Search = SearchKind(rd.Uvarint())
	r.cfg.HybridThreshold = int(rd.Varint())
	r.cfg.HybridPageSize = int(rd.Varint())
	r.cfg.SubsampleTop = int(rd.Varint())
	r.cfg.Seed = rd.Varint()
	if rd.Err() != nil {
		return nil, rd.Err()
	}
	if ns == 0 || r.cfg.HybridPageSize < 1 {
		return nil, binenc.ErrCorrupt
	}
	for _, s := range r.cfg.StageSizes {
		if s < 1 || s > len(enc) {
			return nil, binenc.ErrCorrupt
		}
	}

	top, err := ml.DecodeModel(binenc.NewReader(rd.Bytes()))
	if err != nil {
		return nil, err
	}
	if rd.Err() != nil {
		return nil, rd.Err()
	}
	r.top = top

	// Inner stages: counts must mirror StageSizes[:last] exactly — routeTo
	// indexes r.stages[s-1][idx] with idx < StageSizes[s-1].
	nInner := rd.Count(maxStages, 1)
	if nInner != ns-1 {
		return nil, binenc.ErrCorrupt
	}
	for s := 0; s < nInner; s++ {
		size := rd.Count(len(enc), 16)
		if size != r.cfg.StageSizes[s] {
			return nil, binenc.ErrCorrupt
		}
		st := make([]linmod, size)
		for j := range st {
			st[j].a = rd.F64()
			st[j].b = rd.F64()
		}
		r.stages = append(r.stages, st)
	}

	// Leaves: the count must match the last stage size, except for the
	// empty-index shape (New over zero keys builds a single leaf regardless
	// of StageSizes; Lookup then short-circuits before routing).
	nLeaves := rd.Count(len(enc), 16)
	if len(keys) == 0 {
		if nLeaves < 1 {
			return nil, binenc.ErrCorrupt
		}
	} else if nLeaves != r.cfg.StageSizes[ns-1] {
		return nil, binenc.ErrCorrupt
	}
	r.leaves = make([]leaf, nLeaves)
	for i := range r.leaves {
		lf := &r.leaves[i]
		lf.m.a = rd.F64()
		lf.m.b = rd.F64()
		lf.minErr = int32(rd.Varint())
		lf.maxErr = int32(rd.Varint())
		lf.stdErr = float32(rd.F64())
		lf.n = int32(rd.Varint())
		nb := rd.Count(len(keys)+1, 1)
		if rd.Err() != nil {
			return nil, rd.Err()
		}
		if nb == 0 {
			continue
		}
		np := nb - 1
		lf.btPos = make([]int32, np)
		prev := int64(0)
		for j := range lf.btPos {
			prev += rd.Varint()
			// Offsets index the bound key array; lookupHybrid reads
			// keys[btPos[j]] unchecked, and relies on ascending order.
			if prev < 0 || prev >= int64(len(keys)) {
				return nil, binenc.ErrCorrupt
			}
			lf.btPos[j] = int32(prev)
		}
		nsep := rd.Count(len(keys)+1, 1)
		// lookupHybrid derives the page window from the separator index, so
		// the separator count must be exactly ceil(np / pageSize).
		want := (np + r.cfg.HybridPageSize - 1) / r.cfg.HybridPageSize
		if rd.Err() != nil || nsep != want {
			return nil, binenc.ErrCorrupt
		}
		lf.btSep = make([]uint64, nsep)
		for j := range lf.btSep {
			lf.btSep[j] = rd.Uvarint()
		}
	}

	r.meanAbsErr = rd.F64()
	r.maxAbsErr = int(rd.Varint())
	r.numHybrid = int(rd.Varint())
	if rd.Err() != nil {
		return nil, rd.Err()
	}
	// A decoded index serves reads immediately, so rebuild the hot-path
	// state training would have produced: the per-stage routing multipliers
	// and the compiled inference plan (plan.go). This is what makes a
	// persisted index fast on first read — no retraining, no interpretation.
	r.initRouteMul()
	r.plan = r.compile()
	return r, nil
}
