package core

import (
	"sort"
	"testing"

	"learnedindex/internal/data"
)

func stringOracle(keys []string, k string) int {
	return sort.SearchStrings(keys, k)
}

func stringProbes(keys data.StringKeys) []string {
	probes := data.SampleExistingStrings(keys, 2000, 2)
	// Mutations that are unlikely to be stored.
	for _, k := range keys[:200] {
		probes = append(probes, k+"z", k[:len(k)-1])
	}
	return append(probes, "", "zzzzzzzzzzzzzz", keys[0], keys[len(keys)-1])
}

func TestStringRMILookupMatchesOracle(t *testing.T) {
	keys := data.DocIDs(20_000, 1)
	for _, hidden := range [][]int{nil, {16}, {16, 16}} {
		cfg := DefaultStringConfig(200, hidden...)
		r := NewString(keys, cfg)
		for _, p := range stringProbes(keys) {
			want := stringOracle(keys, p)
			if got := r.Lookup(p); got != want {
				t.Fatalf("hidden=%v: Lookup(%q) = %d, want %d", hidden, p, got, want)
			}
		}
	}
}

func TestStringRMISearchStrategies(t *testing.T) {
	keys := data.DocIDs(15_000, 1)
	for _, s := range []SearchKind{SearchModelBiased, SearchBinary, SearchQuaternary} {
		cfg := DefaultStringConfig(150, 16)
		cfg.Search = s
		r := NewString(keys, cfg)
		for _, p := range stringProbes(keys) {
			want := stringOracle(keys, p)
			if got := r.Lookup(p); got != want {
				t.Fatalf("search=%v: Lookup(%q) = %d, want %d", s, p, got, want)
			}
		}
	}
}

func TestStringRMIHybrid(t *testing.T) {
	keys := data.DocIDs(15_000, 1)
	cfg := DefaultStringConfig(100, 16)
	cfg.HybridThreshold = 16
	r := NewString(keys, cfg)
	if r.NumHybrid() == 0 {
		t.Skip("no leaf exceeded the threshold on this seed; nothing to verify")
	}
	for _, p := range stringProbes(keys) {
		want := stringOracle(keys, p)
		if got := r.Lookup(p); got != want {
			t.Fatalf("hybrid string Lookup(%q) = %d, want %d", p, got, want)
		}
	}
}

func TestStringRMIContains(t *testing.T) {
	keys := data.DocIDs(10_000, 1)
	r := NewString(keys, DefaultStringConfig(100))
	for _, k := range keys[:300] {
		if !r.Contains(k) {
			t.Fatalf("missing %q", k)
		}
		if r.Contains(k + "x") {
			t.Fatalf("phantom %q", k+"x")
		}
	}
}

func TestStringRMIErrorWindowHolds(t *testing.T) {
	keys := data.DocIDs(10_000, 1)
	r := NewString(keys, DefaultStringConfig(100, 16))
	for i, k := range keys {
		_, lo, hi := r.Predict(k)
		if i < lo || i >= hi {
			t.Fatalf("key %q at %d outside window [%d,%d)", k, i, lo, hi)
		}
	}
}

func TestStringRMIEmptyAndTiny(t *testing.T) {
	r := NewString(nil, DefaultStringConfig(4))
	if r.Lookup("x") != 0 {
		t.Fatal("empty lookup")
	}
	r = NewString([]string{"m"}, DefaultStringConfig(4))
	if r.Lookup("a") != 0 || r.Lookup("m") != 0 || r.Lookup("z") != 1 {
		t.Fatal("single-key string lookups wrong")
	}
}

func TestPrefixScalarMonotone(t *testing.T) {
	keys := data.DocIDs(5000, 1)
	for i := 1; i < len(keys); i++ {
		a, b := PrefixScalar(keys[i-1]), PrefixScalar(keys[i])
		if a > b {
			t.Fatalf("prefix scalar not monotone: %q -> %v, %q -> %v", keys[i-1], a, keys[i], b)
		}
	}
}

func TestVectorize(t *testing.T) {
	dst := make([]float64, 6)
	Vectorize("AB", dst)
	want := []float64{65, 66, 0, 0, 0, 0}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("Vectorize = %v", dst)
		}
	}
}

func TestStringRMISizeSmallerThanBTreeSeparators(t *testing.T) {
	// The Figure 6 size story: the learned index (10k leaves on 10M keys)
	// is smaller than a page-32 string B-Tree's separators.
	keys := data.DocIDs(30_000, 1)
	r := NewString(keys, DefaultStringConfig(len(keys)/100, 16))
	// 30k keys / page 32 ≈ 940 separators × 30 bytes ≈ 28KB vs RMI ~8.4KB+NN
	if r.SizeBytes() <= 0 {
		t.Fatal("size must be positive")
	}
	t.Logf("string RMI size: %d bytes, max err %d, mean err %.1f",
		r.SizeBytes(), r.MaxAbsErr(), r.MeanAbsErr())
}
