package core

import (
	"math/rand"
	"sort"
	"testing"

	"learnedindex/internal/data"
)

// assertPlanEquivalent checks that the compiled plan answers bit-identically
// to the interpreted RMI on every probe, through every entry point.
func assertPlanEquivalent(t *testing.T, name string, r *RMI, probes []uint64) {
	t.Helper()
	p := r.Plan()
	if p == nil {
		t.Fatalf("%s: nil plan", name)
	}
	want := make([]int, len(probes))
	for i, k := range probes {
		want[i] = r.Lookup(k)
		if got := p.Lookup(k); got != want[i] {
			t.Fatalf("%s: Plan.Lookup(%d) = %d, RMI.Lookup = %d", name, k, got, want[i])
		}
		if got, exp := p.Contains(k), r.Contains(k); got != exp {
			t.Fatalf("%s: Plan.Contains(%d) = %v, RMI.Contains = %v", name, k, got, exp)
		}
	}
	// Batched, unsorted probe order.
	got := make([]int, len(probes))
	p.LookupBatch(probes, got)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: Plan.LookupBatch[%d] (key %d) = %d, want %d", name, i, probes[i], got[i], want[i])
		}
	}
	gotB := make([]bool, len(probes))
	p.ContainsBatch(probes, gotB)
	for i := range gotB {
		if exp := r.Contains(probes[i]); gotB[i] != exp {
			t.Fatalf("%s: Plan.ContainsBatch[%d] (key %d) = %v, want %v", name, i, probes[i], gotB[i], exp)
		}
	}
	// Batched, ascending probe order — against both the per-key oracle and
	// the interpreted sorted-batch path.
	sorted := append([]uint64(nil), probes...)
	for i := 1; i < len(sorted); i++ { // insertion sort keeps the test dep-free
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	wantSorted := make([]int, len(sorted))
	r.LookupBatchSorted(sorted, wantSorted)
	gotSorted := make([]int, len(sorted))
	p.LookupBatchSorted(sorted, gotSorted)
	for i := range gotSorted {
		if gotSorted[i] != wantSorted[i] {
			t.Fatalf("%s: Plan.LookupBatchSorted[%d] (key %d) = %d, want %d", name, i, sorted[i], gotSorted[i], wantSorted[i])
		}
		if perKey := r.Lookup(sorted[i]); wantSorted[i] != perKey {
			t.Fatalf("%s: RMI.LookupBatchSorted[%d] (key %d) = %d, per-key %d", name, i, sorted[i], wantSorted[i], perKey)
		}
	}
}

// TestPlanEquivalenceOracle is the compiled-read-path contract: for every
// dataset in the test corpus and every SearchKind/TopKind, Plan.Lookup and
// the batch executors return bit-identical results to RMI.Lookup —
// including hybrid B-Tree leaves falling back correctly.
func TestPlanEquivalenceOracle(t *testing.T) {
	searches := []SearchKind{SearchModelBiased, SearchBinary, SearchQuaternary, SearchExponential}
	tops := []struct {
		name   string
		kind   TopKind
		hidden []int
	}{
		{"linear", TopLinear, nil},
		{"multivariate", TopMultivariate, nil},
		{"nn8", TopNN, []int{8}},
	}
	for dsName, keys := range allDatasets(20_000) {
		probes := probesFor(keys)
		for _, sk := range searches {
			for _, top := range tops {
				cfg := DefaultConfig(150)
				cfg.Search = sk
				cfg.Top = top.kind
				cfg.Hidden = top.hidden
				r := New(keys, cfg)
				assertPlanEquivalent(t, dsName+"/"+sk.String()+"/"+top.name, r, probes)
			}
		}
	}
}

func TestPlanEquivalenceHybrid(t *testing.T) {
	keys := data.Weblogs(20_000, 1)
	probes := probesFor(keys)
	for _, sk := range []SearchKind{SearchModelBiased, SearchBinary, SearchQuaternary, SearchExponential} {
		cfg := DefaultConfig(60)
		cfg.Search = sk
		cfg.HybridThreshold = 24
		r := New(keys, cfg)
		if r.NumHybrid() == 0 {
			t.Fatalf("hybrid case built no B-Tree leaves; tighten the threshold")
		}
		assertPlanEquivalent(t, "hybrid/"+sk.String(), r, probes)
	}
}

func TestPlanEquivalenceMultiStage(t *testing.T) {
	keys := data.Lognormal(25_000, 0, 2, 1_000_000_000, 1)
	cfg := DefaultConfig(0)
	cfg.StageSizes = []int{8, 80, 800}
	r := New(keys, cfg)
	assertPlanEquivalent(t, "3-stage", r, probesFor(keys))
}

func TestPlanEquivalenceDecoded(t *testing.T) {
	// A deserialized index must carry a working compiled plan (the
	// "fast on first read" contract of the storage engine).
	keys := data.LognormalPaper(15_000, 3)
	cfg := Config{Top: TopMultivariate, StageSizes: []int{120}, Search: SearchQuaternary, HybridThreshold: 64, Seed: 1}
	r := New(keys, cfg)
	enc, err := r.AppendBinary(nil)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeRMI(enc, keys)
	if err != nil {
		t.Fatal(err)
	}
	assertPlanEquivalent(t, "decoded", dec, probesFor(keys))
}

func TestPlanEmptyAndTiny(t *testing.T) {
	empty := New(nil, DefaultConfig(4))
	p := empty.Plan()
	if p.Lookup(7) != 0 || p.Contains(7) {
		t.Fatal("empty plan lookup")
	}
	out := make([]int, 3)
	p.LookupBatch([]uint64{1, 2, 3}, out)
	for _, v := range out {
		if v != 0 {
			t.Fatal("empty plan batch")
		}
	}
	outB := make([]bool, 3)
	p.ContainsBatch([]uint64{1, 2, 3}, outB)
	for _, v := range outB {
		if v {
			t.Fatal("empty plan contains-batch")
		}
	}
	for _, ks := range [][]uint64{{9}, {3, 7}, {1, 2, 3, 4, 5}} {
		r := New(append([]uint64(nil), ks...), DefaultConfig(4))
		probes := []uint64{0, 1, 3, 5, 7, 9, 10, ^uint64(0)}
		assertPlanEquivalent(t, "tiny", r, probes)
	}
}

// TestPlanQuickRandom mirrors the interpreted quick-check: random probes on
// a random key set agree between plan and RMI (and thus the oracle).
func TestPlanQuickRandom(t *testing.T) {
	keys := data.Lognormal(10_000, 0, 2, 1_000_000_000, 5)
	r := New(keys, DefaultConfig(64))
	p := r.Plan()
	rng := rand.New(rand.NewSource(77))
	batch := make([]uint64, 257) // non-multiple of the group size
	for i := range batch {
		batch[i] = rng.Uint64()
	}
	out := make([]int, len(batch))
	p.LookupBatch(batch, out)
	for i, k := range batch {
		if want := r.Lookup(k); out[i] != want {
			t.Fatalf("random batch: Plan[%d](%d) = %d, want %d", i, k, out[i], want)
		}
	}
}

// TestPlanRangeScan pins the scan-entry API: Plan.RangeScan agrees with
// RMI.RangeScan and with sort.Search lower bounds on random ranges,
// including empty, inverted, and out-of-domain ones.
func TestPlanRangeScan(t *testing.T) {
	keys := data.Lognormal(20_000, 0, 2, 1_000_000_000, 9)
	r := New(keys, DefaultConfig(128))
	p := r.Plan()
	rng := rand.New(rand.NewSource(11))
	lb := func(k uint64) int {
		return sort.Search(len(keys), func(i int) bool { return keys[i] >= k })
	}
	check := func(lo, hi uint64) {
		s, e := p.RangeScan(lo, hi)
		rs, re := r.RangeScan(lo, hi)
		if s != rs || e != re {
			t.Fatalf("RangeScan(%d,%d): plan [%d,%d) vs rmi [%d,%d)", lo, hi, s, e, rs, re)
		}
		if ws, we := lb(lo), lb(hi); s != ws || e != we {
			t.Fatalf("RangeScan(%d,%d) = [%d,%d), want [%d,%d)", lo, hi, s, e, ws, we)
		}
	}
	check(0, ^uint64(0))
	check(keys[0], keys[0])
	check(keys[100], keys[50]) // inverted: positions still exact
	for i := 0; i < 500; i++ {
		lo := rng.Uint64() % (keys[len(keys)-1] + 1000)
		check(lo, lo+rng.Uint64()%1_000_000)
	}
}
