package core

import (
	"learnedindex/internal/ml"
	"learnedindex/internal/search"
)

// NaiveIndex reproduces §2.3's first attempt: one two-layer, 32-wide
// fully-connected ReLU network over the whole dataset, executed through a
// dataflow-graph interpreter (the Tensorflow stand-in), with no error
// bounds — the residual is corrected by a whole-array search around the
// prediction.
//
// The experiment's three lessons (framework invocation overhead, last-mile
// accuracy, cache efficiency) motivate the RMI; BenchmarkNaive* measures
// the same three-way comparison as the paper: naïve model ≫ B-Tree >
// binary search.
type NaiveIndex struct {
	keys  []uint64
	nn    *ml.NN
	graph *ml.Graph
}

// NewNaive trains the §2.3 network ("two-layer fully-connected neural
// network with 32 neurons per layer using ReLU activation functions") over
// keys and lowers it into the interpreted graph.
func NewNaive(keys []uint64, seed int64) *NaiveIndex {
	xs := make([]float64, len(keys))
	ys := make([]float64, len(keys))
	for i, k := range keys {
		xs[i] = float64(k)
		ys[i] = float64(i)
	}
	cfg := ml.DefaultNNConfig(32, 32)
	cfg.Seed = seed
	nn := ml.TrainNN(xs, ys, cfg)
	return &NaiveIndex{keys: keys, nn: nn, graph: ml.NewGraphFromNN(nn)}
}

// PredictInterpreted runs the model through the graph interpreter — the
// quantity §2.3 times at ~80µs under Tensorflow+Python.
func (ni *NaiveIndex) PredictInterpreted(key uint64) int {
	return clampInt(int(ni.graph.Run(float64(key))), 0, len(ni.keys)-1)
}

// PredictNative runs the same weights natively — the LIF execution mode
// (§3.1, "we are able to execute simple models on the order of 30
// nano-seconds").
func (ni *NaiveIndex) PredictNative(key uint64) int {
	return clampInt(int(ni.nn.Predict(float64(key))), 0, len(ni.keys)-1)
}

// Lookup performs the full naïve lookup: interpreted model execution plus
// exponential search from the prediction (no stored error bounds).
func (ni *NaiveIndex) Lookup(key uint64) int {
	pred := ni.PredictInterpreted(key)
	return search.Exponential(ni.keys, key, len(ni.keys), pred)
}

// LookupNative is Lookup with native model execution.
func (ni *NaiveIndex) LookupNative(key uint64) int {
	pred := ni.PredictNative(key)
	return search.Exponential(ni.keys, key, len(ni.keys), pred)
}

// Contains reports whether key is stored.
func (ni *NaiveIndex) Contains(key uint64) bool {
	p := ni.Lookup(key)
	return p < len(ni.keys) && ni.keys[p] == key
}

// GraphNodes returns the interpreted graph's op count.
func (ni *NaiveIndex) GraphNodes() int { return ni.graph.NumNodes() }

// SizeBytes returns the network footprint.
func (ni *NaiveIndex) SizeBytes() int { return ni.nn.SizeBytes() }
