package core

import (
	"math/rand"
	"sort"
	"testing"

	"learnedindex/internal/data"
)

// deltaOracle is the reference implementation: a plain sorted set.
type deltaOracle struct {
	set map[uint64]struct{}
}

func (o *deltaOracle) insert(k uint64)        { o.set[k] = struct{}{} }
func (o *deltaOracle) contains(k uint64) bool { _, ok := o.set[k]; return ok }
func (o *deltaOracle) len() int               { return len(o.set) }
func (o *deltaOracle) count(lo, hi uint64) int {
	c := 0
	for k := range o.set {
		if k >= lo && k < hi {
			c++
		}
	}
	return c
}

// TestDeltaIndexOracleRandomized drives DeltaIndex with a mix of fresh,
// duplicate, and already-present inserts — including re-inserts of base
// keys and keys that survive merges — and checks Count/Len/Contains against
// the set oracle at every step boundary.
func TestDeltaIndexOracleRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	base := data.Lognormal(4000, 0, 2, 1_000_000_000, 1)
	o := &deltaOracle{set: make(map[uint64]struct{}, 8000)}
	for _, k := range base {
		o.insert(k)
	}
	d := NewDelta(append([]uint64{}, base...), DefaultConfig(64), 512)

	check := func(step int) {
		t.Helper()
		if d.Len() != o.len() {
			t.Fatalf("step %d: Len = %d, oracle %d", step, d.Len(), o.len())
		}
		lo := uint64(rng.Int63n(1_000_000_000))
		hi := lo + uint64(rng.Int63n(500_000_000))
		if got, want := d.Count(lo, hi), o.count(lo, hi); got != want {
			t.Fatalf("step %d: Count(%d,%d) = %d, oracle %d", step, lo, hi, got, want)
		}
		if got := d.Count(hi, lo); got != 0 {
			t.Fatalf("step %d: inverted Count = %d, want 0", step, got)
		}
	}

	for step := 0; step < 4000; step++ {
		var k uint64
		switch rng.Intn(4) {
		case 0: // fresh random key
			k = uint64(rng.Int63n(1_000_000_000))
		case 1: // re-insert an original base key
			k = base[rng.Intn(len(base))]
		case 2: // duplicate of the immediately preceding insert region
			k = uint64(rng.Int63n(1000)) * 1000
		default: // append-ish tail key
			k = 1_000_000_000 + uint64(step)
		}
		d.Insert(k)
		o.insert(k)
		if !d.Contains(k) {
			t.Fatalf("step %d: lost freshly inserted %d", step, k)
		}
		if step%257 == 0 {
			check(step)
		}
		if step%1111 == 1110 {
			d.Merge() // force extra merges between the threshold ones
			check(step)
		}
	}
	check(-1)
	if d.Merges() == 0 {
		t.Fatal("workload should have produced merges")
	}
	// Full-universe count equals Len; membership matches for a sample.
	if got := d.Count(0, ^uint64(0)); got != o.len() {
		t.Fatalf("full Count = %d, oracle %d", got, o.len())
	}
	for i := 0; i < 2000; i++ {
		k := uint64(rng.Int63n(1_100_000_000))
		if d.Contains(k) != o.contains(k) {
			t.Fatalf("Contains(%d) = %v, oracle %v", k, d.Contains(k), o.contains(k))
		}
	}
}

// TestRMILookupBatchSorted checks the amortized batch primitive against
// per-key Lookup on uniform, lognormal, and adversarial (all-equal, empty,
// out-of-range) ascending batches.
func TestRMILookupBatchSorted(t *testing.T) {
	keys := data.LognormalPaper(50_000, 3)
	r := New(keys, DefaultConfig(500))
	maxKey := keys[len(keys)-1]

	batches := map[string][]uint64{
		"empty":     {},
		"all-equal": {keys[777], keys[777], keys[777], keys[777]},
		"below-min": {0, 1, 2},
		"above-max": {maxKey + 1, maxKey + 2, ^uint64(0)},
		"uniform":   data.Uniform(3000, maxKey+10, 5),
		"lognormal": data.SampleExisting(keys, 3000, 6),
		"mixed":     append(data.SampleExisting(keys, 1500, 7), data.SampleMissing(keys, 1500, 8)...),
	}
	for name, batch := range batches {
		sort.Slice(batch, func(i, j int) bool { return batch[i] < batch[j] })
		out := make([]int, len(batch))
		r.LookupBatchSorted(batch, out)
		for i, k := range batch {
			if want := r.Lookup(k); out[i] != want {
				t.Fatalf("%s[%d]: batch Lookup(%d) = %d, per-key %d", name, i, k, out[i], want)
			}
		}
	}
}
