package core

import (
	"fmt"
	"sort"
	"time"
)

// The Learning Index Framework (LIF, §3.1) "generates different index
// configurations, optimizes them, and tests them automatically". The paper
// tunes "the various parameters of the model (i.e., number of stages,
// hidden layers per model, etc.) with a simple grid-search" (§3.3).
//
// GridSearch trains every candidate configuration, measures average lookup
// latency over a probe workload and the index footprint, and ranks by a
// configurable objective.

// Candidate is one grid point.
type Candidate struct {
	Config Config
	Label  string
}

// TunedResult is one trained-and-measured grid point.
type TunedResult struct {
	Candidate Candidate
	RMI       *RMI
	AvgLookup time.Duration // mean lookup latency over the probe set
	SizeBytes int
	MaxAbsErr int
	Score     float64
}

// Objective ranks results; lower is better.
type Objective func(avgLookupNs float64, sizeBytes int, maxErr int) float64

// MinimizeLatency ranks purely by lookup time.
func MinimizeLatency(avgNs float64, _ int, _ int) float64 { return avgNs }

// LatencyUnderBudget ranks by latency but disqualifies (scores +inf-ish)
// indexes above the byte budget.
func LatencyUnderBudget(budget int) Objective {
	return func(avgNs float64, size int, _ int) float64 {
		if size > budget {
			return avgNs * 1e6
		}
		return avgNs
	}
}

// SpaceTimeProduct ranks by the latency × size product, the balanced view
// of Figure 4's two headline columns.
func SpaceTimeProduct(avgNs float64, size int, _ int) float64 {
	return avgNs * float64(size)
}

// DefaultGrid returns the paper's §3.7.1 search space: "simple grid-search
// over neural nets with zero to two hidden layers and layer-width ranging
// from 4 to 32 nodes" crossed with second-stage sizes, plus the
// multivariate top of Figure 5.
func DefaultGrid(leafCounts []int) []Candidate {
	var out []Candidate
	tops := []struct {
		kind   TopKind
		hidden []int
		name   string
	}{
		{TopLinear, nil, "linear"},
		{TopMultivariate, nil, "multivariate"},
		{TopNN, []int{8}, "nn[8]"},
		{TopNN, []int{16}, "nn[16]"},
		{TopNN, []int{32}, "nn[32]"},
		{TopNN, []int{16, 16}, "nn[16,16]"},
		{TopNN, []int{32, 32}, "nn[32,32]"},
	}
	for _, t := range tops {
		for _, lc := range leafCounts {
			cfg := DefaultConfig(lc)
			cfg.Top = t.kind
			cfg.Hidden = t.hidden
			out = append(out, Candidate{
				Config: cfg,
				Label:  fmt.Sprintf("top=%s leaves=%d", t.name, lc),
			})
		}
	}
	return out
}

// GridSearch trains every candidate on keys, measures mean lookup latency
// over probes, and returns results sorted best-first by the objective.
func GridSearch(keys []uint64, probes []uint64, cands []Candidate, obj Objective) []TunedResult {
	if obj == nil {
		obj = MinimizeLatency
	}
	results := make([]TunedResult, 0, len(cands))
	for _, c := range cands {
		r := New(keys, c.Config)
		avg := measureLookup(r, probes)
		tr := TunedResult{
			Candidate: c,
			RMI:       r,
			AvgLookup: avg,
			SizeBytes: r.SizeBytes(),
			MaxAbsErr: r.MaxAbsErr(),
		}
		tr.Score = obj(float64(avg.Nanoseconds()), tr.SizeBytes, tr.MaxAbsErr)
		results = append(results, tr)
	}
	sort.Slice(results, func(i, j int) bool { return results[i].Score < results[j].Score })
	return results
}

// measureLookup times Lookup over the probe set and returns the mean.
func measureLookup(r *RMI, probes []uint64) time.Duration {
	if len(probes) == 0 {
		return 0
	}
	var sink int
	start := time.Now()
	for _, p := range probes {
		sink += r.Lookup(p)
	}
	el := time.Since(start)
	_ = sink
	return el / time.Duration(len(probes))
}
