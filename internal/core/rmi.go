// Package core implements the paper's primary contribution: the Recursive
// Model Index (RMI, §3) and the learned structures built from CDF models —
// hybrid indexes (§3.3), learned hash functions (§4), and learned Bloom
// filters (§5) — plus the Learning Index Framework (LIF, §3.1) that
// auto-tunes configurations.
package core

import (
	"fmt"
	"math"

	"learnedindex/internal/ml"
	"learnedindex/internal/search"
)

// SearchKind selects the last-mile search strategy (§3.4).
type SearchKind int

const (
	// SearchModelBiased is the paper's default: binary search whose first
	// middle point is the model prediction, restricted to the stored
	// min/max error window.
	SearchModelBiased SearchKind = iota
	// SearchBinary is plain binary search over the error window.
	SearchBinary
	// SearchQuaternary is the biased quaternary search with initial probes
	// at pos-σ, pos, pos+σ.
	SearchQuaternary
	// SearchExponential is exponential search outward from the prediction;
	// it ignores the stored error bounds entirely.
	SearchExponential
)

// String names the strategy for reports.
func (s SearchKind) String() string {
	switch s {
	case SearchModelBiased:
		return "model-biased"
	case SearchBinary:
		return "binary"
	case SearchQuaternary:
		return "quaternary"
	case SearchExponential:
		return "exponential"
	}
	return fmt.Sprintf("SearchKind(%d)", int(s))
}

// TopKind selects the stage-1 model family (§3.3: "simple neural nets with
// zero to two fully-connected hidden layers ... and a layer width of up to
// 32 neurons"; §3.7.1 adds multivariate regression with engineered
// features).
type TopKind int

const (
	// TopLinear is simple linear regression (equivalently a 0-hidden-layer NN).
	TopLinear TopKind = iota
	// TopMultivariate is multivariate regression over engineered features
	// (key, log key, key², √key).
	TopMultivariate
	// TopNN is a ReLU network with the configured hidden widths.
	TopNN
)

// String names the model family for reports.
func (t TopKind) String() string {
	switch t {
	case TopLinear:
		return "linear"
	case TopMultivariate:
		return "multivariate"
	case TopNN:
		return "nn"
	}
	return fmt.Sprintf("TopKind(%d)", int(t))
}

// Config specifies an RMI, mirroring Algorithm 1's inputs ("int threshold,
// int stages[], NN complexity").
type Config struct {
	// Top selects the stage-1 model family.
	Top TopKind
	// Hidden are the stage-1 hidden layer widths when Top == TopNN.
	Hidden []int
	// StageSizes are the model counts of stages 2..M. The common
	// configuration is a single entry (the 2-stage RMI of §3.7.1); more
	// entries build deeper recursive indexes. The last entry is the leaf
	// count.
	StageSizes []int
	// Search selects the last-mile strategy.
	Search SearchKind
	// HybridThreshold, when > 0, replaces leaf models whose max absolute
	// error exceeds it with B-Trees (Algorithm 1 lines 11–14).
	HybridThreshold int
	// HybridPageSize is the page size of replacement B-Trees (default 32).
	HybridPageSize int
	// SubsampleTop caps the points used to train the stage-1 model; 0 means
	// 200k (§3.6: top models converge before one full scan).
	SubsampleTop int
	// Seed makes NN training deterministic.
	Seed int64
}

// DefaultConfig returns the paper's default 2-stage shape: linear top,
// numLeaves linear leaf models, model-biased binary search.
func DefaultConfig(numLeaves int) Config {
	return Config{Top: TopLinear, StageSizes: []int{numLeaves}, Search: SearchModelBiased, Seed: 1}
}

// linmod is a flattened linear model for inner and leaf stages; keeping it
// a plain struct (no interface) keeps stage transitions branch-light, the
// property §3.2 highlights ("There is no search process required in-between
// the stages").
type linmod struct {
	a, b float64
}

func (m linmod) predict(x float64) float64 { return m.a*x + m.b }

// leaf is a last-stage model with its error metadata: "we store the
// standard and min- and max-error for every model on the last stage"
// (§3.3).
type leaf struct {
	m      linmod
	minErr int32 // most negative (actual - pred) over assigned keys
	maxErr int32 // most positive (actual - pred)
	stdErr float32
	n      int32 // assigned keys
	// hybrid replacement (nil unless the leaf was swapped for a B-Tree).
	// The B-Tree is built over the keys *assigned* to this leaf (Algorithm
	// 1 trains it "on tmp_records[M][j]") and, like the paper's
	// offset-based in-memory trees (§6), stores no key copies: btPos holds
	// the assigned keys' global positions, and btSep is a sparse separator
	// level (every 64th assigned key) for the tree descent; the final page
	// search reads the main array through the offsets.
	btPos []int32
	btSep []uint64
}

// regAcc accumulates centered least-squares sums plus position coverage for
// one stage model. Centering on the first routed point keeps the normal
// equations conditioned even for nanosecond-scale timestamp keys.
type regAcc struct {
	n              float64
	xref, yref     float64
	sx, sy         float64
	sxx, sxy       float64
	seen           bool
	minPos, maxPos int32
}

func (a *regAcc) add(x, y float64, pos int32) {
	if !a.seen {
		a.xref, a.yref = x, y
		a.seen = true
		a.minPos, a.maxPos = pos, pos
	}
	dx, dy := x-a.xref, y-a.yref
	a.n++
	a.sx += dx
	a.sy += dy
	a.sxx += dx * dx
	a.sxy += dx * dy
	if pos < a.minPos {
		a.minPos = pos
	}
	if pos > a.maxPos {
		a.maxPos = pos
	}
}

// fit produces the least-squares line from the centered sums.
func (a *regAcc) fit() linmod {
	if a.n == 0 {
		return linmod{}
	}
	mx, my := a.sx/a.n, a.sy/a.n
	vxx := a.sxx - a.n*mx*mx
	vxy := a.sxy - a.n*mx*my
	if vxx <= 0 {
		return linmod{a: 0, b: a.yref + my}
	}
	slope := vxy / vxx
	// un-center: y = (yref + my) + slope*(x - (xref + mx))
	return linmod{a: slope, b: a.yref + my - slope*(a.xref+mx)}
}

// RMI is a recursive model index over a sorted array of uint64 keys.
type RMI struct {
	keys   []uint64
	cfg    Config
	top    ml.Model
	stages [][]linmod // inner stages (all StageSizes entries but the last)
	leaves []leaf
	nf     float64 // float64(len(keys))
	// routeMul[s] is the precomputed ⌊M·f(x)/N⌋ routing multiplier
	// float64(StageSizes[s])/nf, hoisted so neither training's stage loop
	// nor the interpreted lookup path divides per routed key.
	routeMul []float64
	// plan is the compiled read path (see plan.go), built once after
	// training or decoding.
	plan *Plan
	// global error stats for reporting
	meanAbsErr float64
	maxAbsErr  int
	numHybrid  int
}

// New trains an RMI over keys (sorted ascending, unique) with cfg,
// following Algorithm 1: train the top model, partition keys through the
// stages, fit each stage's models on the keys routed to them, and compute
// per-leaf min/max errors (optionally swapping bad leaves for B-Trees).
// Stage training runs on a bounded worker pool sized to GOMAXPROCS (see
// train_parallel.go); results are bit-identical to the sequential trainer.
func New(keys []uint64, cfg Config) *RMI {
	return NewWithTrainWorkers(keys, cfg, trainingWorkers(len(keys)))
}

// NewWithTrainWorkers trains like New with an explicit stage-training
// worker count: 1 selects the sequential trainer, higher counts the
// parallel one. Serialized results are bit-identical for every count (the
// parallel trainer preserves per-model accumulation order — pinned by
// TestParallelTrainerBitIdentical), so the knob only trades wall-clock
// for cores; it exists for train-scaling benchmarks and tuning.
func NewWithTrainWorkers(keys []uint64, cfg Config, workers int) *RMI {
	if workers < 1 {
		workers = 1
	}
	if len(cfg.StageSizes) == 0 {
		cfg.StageSizes = []int{defaultLeafCount(len(keys))}
	}
	for i, s := range cfg.StageSizes {
		if s < 1 {
			cfg.StageSizes[i] = 1
		}
	}
	if cfg.HybridPageSize <= 0 {
		cfg.HybridPageSize = 32
	}
	r := &RMI{keys: keys, cfg: cfg, nf: float64(len(keys))}
	if len(keys) == 0 {
		r.top = ml.Linear{}
		r.leaves = make([]leaf, 1)
		r.plan = r.compile()
		return r
	}
	r.initRouteMul()
	r.trainTop()
	if workers > 1 {
		r.trainStagesParallel(workers)
	} else {
		r.trainStages()
	}
	r.plan = r.compile()
	return r
}

// initRouteMul precomputes the per-stage routing multipliers from cfg and
// the key count. Must run before any routeTo call.
func (r *RMI) initRouteMul() {
	r.routeMul = make([]float64, len(r.cfg.StageSizes))
	for s, size := range r.cfg.StageSizes {
		if r.nf > 0 {
			r.routeMul[s] = float64(size) / r.nf
		}
	}
}

func defaultLeafCount(n int) int {
	// The paper's sweet spot is roughly 1k–20k keys per leaf model at 200M
	// keys; default to ~1k keys per leaf, clamped below.
	l := n / 1000
	if l < 16 {
		l = 16
	}
	return l
}

// trainTop fits the stage-1 model on (key, position) pairs, subsampled per
// §3.6 with an even stride so the sample covers the whole CDF.
func (r *RMI) trainTop() {
	n := len(r.keys)
	max := r.cfg.SubsampleTop
	if max <= 0 {
		max = 200_000
	}
	stride := 1
	if n > max {
		stride = n / max
	}
	m := (n + stride - 1) / stride
	xs := make([]float64, 0, m)
	ys := make([]float64, 0, m)
	for i := 0; i < n; i += stride {
		xs = append(xs, float64(r.keys[i]))
		ys = append(ys, float64(i))
	}
	switch r.cfg.Top {
	case TopMultivariate:
		r.top = ml.FitMultivariate(xs, ys, nil)
	case TopNN:
		cfg := ml.DefaultNNConfig(r.cfg.Hidden...)
		cfg.Seed = r.cfg.Seed
		r.top = ml.TrainNN(xs, ys, cfg)
	default:
		r.top = ml.FitLinear(xs, ys)
	}
}

// routeTo runs the trained model prefix and returns the model index of
// stage `stage` for key x. Stages before `stage` must already be fit.
func (r *RMI) routeTo(x float64, stage int) int {
	p := r.top.Predict(x)
	idx := scaleByMul(p, r.routeMul[0], r.cfg.StageSizes[0])
	for s := 1; s <= stage; s++ {
		p = r.stages[s-1][idx].predict(x)
		idx = scaleByMul(p, r.routeMul[s], r.cfg.StageSizes[s])
	}
	return idx
}

// scaleToIndex converts a position estimate p over [0, n) to a model index
// in [0, size): the ⌊M·f(x)/N⌋ routing of §3.2. Hot paths precompute
// size/n and call scaleByMul instead of dividing per key.
func scaleToIndex(p, n float64, size int) int {
	return scaleByMul(p, float64(size)/n, size)
}

// scaleByMul is scaleToIndex with the size/n ratio already computed: one
// multiply plus the clamp.
func scaleByMul(p, mul float64, size int) int {
	i := int(p * mul)
	if i < 0 {
		return 0
	}
	if i >= size {
		return size - 1
	}
	return i
}

// trainStages implements the stage-wise loop of Algorithm 1 using
// constant-memory accumulation: for each stage, keys are routed through the
// already-trained prefix, and each model is fit with closed-form linear
// regression over per-model centered sums.
func (r *RMI) trainStages() {
	n := len(r.keys)
	nStages := len(r.cfg.StageSizes)
	route := make([]int32, n) // leaf routing, reused by the error pass

	for s := 0; s < nStages; s++ {
		size := r.cfg.StageSizes[s]
		accs := make([]regAcc, size)
		for i := 0; i < n; i++ {
			x := float64(r.keys[i])
			idx := r.routeTo(x, s)
			route[i] = int32(idx)
			accs[idx].add(x, float64(i), int32(i))
		}
		models := make([]linmod, size)
		for j := range models {
			models[j] = accs[j].fit()
		}
		repairEmpty(models, accs)

		if s < nStages-1 {
			r.stages = append(r.stages, models)
			continue
		}
		// Last stage: per-leaf min/max/std errors, then hybrid replacement.
		r.leaves = make([]leaf, size)
		for j := range r.leaves {
			r.leaves[j].m = models[j]
		}
		r.computeLeafErrors(route)
		if r.cfg.HybridThreshold > 0 {
			r.applyHybrid(route)
		}
	}
}

// repairEmpty fills models that received no training keys with constants
// carried over from the previous covered model's position range, so a
// query key routed into a hole still gets a nearby prediction.
func repairEmpty(models []linmod, accs []regAcc) {
	lastPos := 0.0
	for j := range models {
		if accs[j].n > 0 {
			lastPos = float64(accs[j].maxPos)
			continue
		}
		models[j] = linmod{a: 0, b: lastPos}
	}
}

// leafErrAcc accumulates one leaf's error statistics: worst over/under
// prediction, the moments behind the standard error, and the assigned-key
// count. Shared by the sequential and parallel error passes, which both
// feed each leaf's accumulator in ascending key order so the
// floating-point sums are bit-identical between trainers.
type leafErrAcc struct {
	min, max   int
	sum, sumsq float64
	n          int
}

func newLeafErrAccs(n int) []leafErrAcc {
	errs := make([]leafErrAcc, n)
	for i := range errs {
		errs[i].min = math.MaxInt32
		errs[i].max = math.MinInt32
	}
	return errs
}

// add folds one key's error d = actual - predicted into the accumulator.
func (ev *leafErrAcc) add(d int) {
	if d < ev.min {
		ev.min = d
	}
	if d > ev.max {
		ev.max = d
	}
	fd := float64(d)
	ev.sum += fd
	ev.sumsq += fd * fd
	ev.n++
}

// finalizeLeafErrors turns the accumulated moments into each leaf's stored
// error window and standard error.
func finalizeLeafErrors(leaves []leaf, errs []leafErrAcc) {
	for j := range leaves {
		lf := &leaves[j]
		ev := &errs[j]
		lf.n = int32(ev.n)
		if ev.n == 0 {
			lf.minErr, lf.maxErr, lf.stdErr = -1, 1, 1
			continue
		}
		lf.minErr = int32(ev.min)
		lf.maxErr = int32(ev.max)
		mean := ev.sum / float64(ev.n)
		v := ev.sumsq/float64(ev.n) - mean*mean
		if v < 0 {
			v = 0
		}
		lf.stdErr = float32(math.Sqrt(v))
	}
}

// computeLeafErrors executes the leaf model for every key and stores "the
// worst over- and under-prediction per last-stage model" (§3.4) plus the
// standard error used by biased quaternary search.
func (r *RMI) computeLeafErrors(route []int32) {
	errs := newLeafErrAccs(len(r.leaves))
	var gsum float64
	gmax := 0
	for i, k := range r.keys {
		j := route[i]
		pred := int(r.leaves[j].m.predict(float64(k)))
		// d is actual-minus-predicted, so the lookup window is
		// [pred+minErr, pred+maxErr].
		d := i - pred
		errs[j].add(d)
		if d < 0 {
			d = -d
		}
		gsum += float64(d)
		if d > gmax {
			gmax = d
		}
	}
	finalizeLeafErrors(r.leaves, errs)
	if len(r.keys) > 0 {
		r.meanAbsErr = gsum / float64(len(r.keys))
	}
	r.maxAbsErr = gmax
}

// applyHybrid swaps leaves whose max absolute error exceeds the threshold
// for B-Trees over the keys assigned to them (Algorithm 1 lines 11–14:
// "index[M][j] = new B-Tree trained on tmp_records[M][j]"). "hybrid
// indexes allow us to bound the worst case performance of learned indexes
// to the performance of B-Trees" (§3.3).
func (r *RMI) applyHybrid(route []int32) {
	thr := r.cfg.HybridThreshold
	flagged := make(map[int32]*leaf)
	for j := range r.leaves {
		lf := &r.leaves[j]
		if lf.n == 0 {
			continue
		}
		worst := int(lf.maxErr)
		if -int(lf.minErr) > worst {
			worst = -int(lf.minErr)
		}
		if worst <= thr {
			continue
		}
		flagged[int32(j)] = lf
		lf.btPos = make([]int32, 0, lf.n)
		r.numHybrid++
	}
	if len(flagged) == 0 {
		return
	}
	// Gather assigned positions per flagged leaf in one pass; they arrive
	// in ascending order, so each offset list is sorted by key.
	for i := range r.keys {
		if lf, ok := flagged[route[i]]; ok {
			lf.btPos = append(lf.btPos, int32(i))
		}
	}
	for _, lf := range flagged {
		step := r.cfg.HybridPageSize
		lf.btSep = make([]uint64, 0, len(lf.btPos)/step+1)
		for i := 0; i < len(lf.btPos); i += step {
			lf.btSep = append(lf.btSep, r.keys[lf.btPos[i]])
		}
	}
}

// Predict runs only the model hierarchy (no search) and returns the
// estimated position plus the leaf's error window [lo, hi) — the quantity
// Figure 4's "Model (ns)" column times.
func (r *RMI) Predict(key uint64) (pos, lo, hi int) {
	x := float64(key)
	idx := r.routeTo(x, len(r.cfg.StageSizes)-1)
	lf := &r.leaves[idx]
	// The error window is anchored on the raw (unclamped) prediction — the
	// per-leaf errors were measured against it, so clamping first would
	// shift the window and break the stored-key guarantee.
	pred := int(lf.m.predict(x))
	lo = pred + int(lf.minErr)
	hi = pred + int(lf.maxErr) + 1
	lo, hi = clampWindow(lo, hi, len(r.keys))
	pos = clampInt(pred, 0, len(r.keys)-1)
	return pos, lo, hi
}

// Lookup returns the lower-bound position of key: the index of the first
// stored key >= key, or len(keys) if all are smaller. Correctness holds for
// keys not in the stored set via search-window expansion (§3.4).
func (r *RMI) Lookup(key uint64) int {
	if len(r.keys) == 0 {
		return 0
	}
	return r.lookupFrom(key, 0)
}

// LookupBatchSorted answers Lookup for every probe of an ascending batch,
// writing lower-bound positions into out (which must have len(probes)).
// Sorted probes buy two amortizations a per-key loop over an arbitrary
// stream cannot have:
//
//   - Monotone results: each answer becomes a floor for the next search —
//     a probe equal to its neighbor (or landing at the previous position)
//     skips the model and search entirely, and every window is clipped
//     from below by the previous result.
//   - Locality: ascending probes touch the key array left-to-right, so
//     the final searches hit warm cache lines instead of striding
//     randomly across the array (measured ~6x per-lookup on 1M keys).
//
// Results are identical to calling Lookup per key.
func (r *RMI) LookupBatchSorted(probes []uint64, out []int) {
	n := len(r.keys)
	floor := 0
	for i, k := range probes {
		if floor >= n {
			out[i] = n // past the last key; so is the rest of the batch
			continue
		}
		if r.keys[floor] >= k {
			out[i] = floor // previous result already is the lower bound
			continue
		}
		floor = r.lookupFrom(k, floor)
		out[i] = floor
	}
}

// lookupFrom is Lookup with a proven lower bound: the caller guarantees the
// answer is >= floor, so the search window is clipped from below. floor=0
// is the unconstrained case. len(r.keys) must be > 0.
func (r *RMI) lookupFrom(key uint64, floor int) int {
	n := len(r.keys)
	x := float64(key)
	idx := r.routeTo(x, len(r.cfg.StageSizes)-1)
	lf := &r.leaves[idx]
	if lf.btPos != nil {
		return r.lookupHybrid(key, lf)
	}
	rawPred := int(lf.m.predict(x))
	lo := rawPred + int(lf.minErr)
	hi := rawPred + int(lf.maxErr) + 1
	if lo < floor {
		lo = floor
	}
	lo, hi = clampWindow(lo, hi, n)
	pred := clampInt(rawPred, 0, n-1)
	switch r.cfg.Search {
	case SearchBinary:
		return search.BoundedWithExpansion(r.keys, key, lo, hi)
	case SearchQuaternary:
		pos := search.BiasedQuaternary(r.keys, key, lo, hi, pred, int(lf.stdErr))
		return r.verifyOrExpand(key, pos, lo, hi)
	case SearchExponential:
		return search.Exponential(r.keys, key, n, pred)
	default: // SearchModelBiased
		pos := search.ModelBiasedBinary(r.keys, key, lo, hi, pred)
		return r.verifyOrExpand(key, pos, lo, hi)
	}
}

// lookupHybrid answers a lookup routed to a B-Tree leaf: descend the
// sparse separator level, binary-search the page of assigned offsets, and
// resolve the (usually tiny) gap between assigned positions against the
// main array. Covers keys never assigned here as well.
func (r *RMI) lookupHybrid(key uint64, lf *leaf) int {
	n := len(r.keys)
	if len(lf.btPos) == 0 {
		return search.Binary(r.keys, key, 0, n)
	}
	// Separator descent: last separator <= key marks the page.
	s := search.Binary(lf.btSep, key, 0, len(lf.btSep)) // first sep >= key
	lo := 0
	if s > 0 {
		lo = (s - 1) * r.cfg.HybridPageSize
	}
	hi := lo + r.cfg.HybridPageSize
	if hi > len(lf.btPos) {
		hi = len(lf.btPos)
	}
	// Page search over the offsets (reading keys through them).
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if r.keys[lf.btPos[mid]] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	p := lo
	switch {
	case p == 0:
		// key <= first assigned key: bound is in [0, btPos[0]].
		return search.Binary(r.keys, key, 0, int(lf.btPos[0])+1)
	case p == len(lf.btPos):
		// all assigned keys are smaller: bound is after the last one.
		return search.Binary(r.keys, key, int(lf.btPos[p-1])+1, n)
	default:
		// assigned[p-1] < key <= assigned[p]: the global bound lies in
		// (btPos[p-1], btPos[p]].
		return search.Binary(r.keys, key, int(lf.btPos[p-1])+1, int(lf.btPos[p])+1)
	}
}

// verifyOrExpand checks whether a window-restricted result is globally
// correct and re-searches with expansion when it sits incorrectly on the
// window boundary (the §3.4 non-monotonic-model remedy).
func (r *RMI) verifyOrExpand(key uint64, pos, lo, hi int) int {
	return verifyOrExpandIn(r.keys, key, pos, lo, hi)
}

// verifyOrExpandIn is verifyOrExpand over an explicit key array, shared
// with the compiled read path (plan.go).
func verifyOrExpandIn(keys []uint64, key uint64, pos, lo, hi int) int {
	n := len(keys)
	if pos == lo && lo > 0 && keys[lo-1] >= key {
		return search.BoundedWithExpansion(keys, key, 0, lo+1)
	}
	if pos == hi && hi < n {
		return search.BoundedWithExpansion(keys, key, hi-1, n)
	}
	return pos
}

// Contains reports whether key is stored.
func (r *RMI) Contains(key uint64) bool {
	p := r.Lookup(key)
	return p < len(r.keys) && r.keys[p] == key
}

// RangeScan returns the position range [start, end) of stored keys k with
// loKey <= k < hiKey.
func (r *RMI) RangeScan(loKey, hiKey uint64) (start, end int) {
	return r.Lookup(loKey), r.Lookup(hiKey)
}

// Keys returns the indexed array.
func (r *RMI) Keys() []uint64 { return r.keys }

// Plan returns the compiled read path: the flat inference plan built from
// this index at training (or decode) time. Bit-identical results to Lookup
// at a fraction of the dispatch cost; see plan.go.
func (r *RMI) Plan() *Plan { return r.plan }

// NumLeaves returns the last-stage model count.
func (r *RMI) NumLeaves() int { return len(r.leaves) }

// NumHybrid returns how many leaves were replaced by B-Trees.
func (r *RMI) NumHybrid() int { return r.numHybrid }

// MeanAbsErr returns the average absolute position error over stored keys.
func (r *RMI) MeanAbsErr() float64 { return r.meanAbsErr }

// MaxAbsErr returns the worst absolute position error over stored keys.
func (r *RMI) MaxAbsErr() int { return r.maxAbsErr }

// Config returns the training configuration.
func (r *RMI) Config() Config { return r.cfg }

// SizeBytes returns the index footprint: top model, inner stage models (16
// bytes each), and leaves (16-byte model + 12 bytes of error metadata),
// matching the paper's convention of excluding the data array. Hybrid
// B-Trees are charged in full.
func (r *RMI) SizeBytes() int {
	total := r.top.SizeBytes()
	for _, st := range r.stages {
		total += len(st) * 16
	}
	total += len(r.leaves) * (16 + 12)
	for j := range r.leaves {
		// Hybrid B-Trees: 4-byte offsets per assigned key plus 8-byte
		// separators per page — no key copies.
		total += len(r.leaves[j].btPos)*4 + len(r.leaves[j].btSep)*8
	}
	return total
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// clampWindow clips an error window into [0, n] and guarantees lo <= hi, so
// degenerate (empty or inverted) windows degrade into an empty range that
// the boundary-expansion path then widens.
func clampWindow(lo, hi, n int) (int, int) {
	if lo < 0 {
		lo = 0
	}
	if lo > n {
		lo = n
	}
	if hi > n {
		hi = n
	}
	if hi < lo {
		hi = lo
	}
	return lo, hi
}
