package core

import (
	"learnedindex/internal/hashfn"
)

// LearnedHash is the §4.1 Hash-Model Index: "we can scale the CDF by the
// targeted size M of the Hash-map and use h(K) = F(K) * M, with key K as
// our hash-function. If the model F perfectly learned the empirical CDF of
// the keys, no conflicts would exist."
//
// The CDF model is an RMI (the paper uses "the 2-stage RMI models from the
// previous section with 100k models on the 2nd stage and without any hidden
// layers", §4.2).
type LearnedHash struct {
	rmi   *RMI
	slots int
	scale float64 // slots / N
}

// NewLearnedHash trains a learned hash function over keys targeting a table
// of the given slot count. numLeaves controls the RMI's second stage; the
// paper's ratio is one leaf per ~2k keys (100k leaves for 200M keys).
func NewLearnedHash(keys []uint64, slots, numLeaves int) *LearnedHash {
	cfg := DefaultConfig(numLeaves)
	r := New(keys, cfg)
	return &LearnedHash{rmi: r, slots: slots, scale: float64(slots) / float64(len(keys))}
}

// NewLearnedHashFromRMI reuses an existing trained RMI as the CDF model.
func NewLearnedHashFromRMI(r *RMI, slots int) *LearnedHash {
	return &LearnedHash{rmi: r, slots: slots, scale: float64(slots) / float64(len(r.Keys()))}
}

// Hash maps key to a slot in [0, slots): ⌊F(key)·M⌋ with clamping.
func (h *LearnedHash) Hash(key uint64) int {
	pos, _, _ := h.rmi.Predict(key)
	s := int(float64(pos) * h.scale)
	if s < 0 {
		return 0
	}
	if s >= h.slots {
		return h.slots - 1
	}
	return s
}

// Func returns the hash as a plain function for hashmap constructors.
func (h *LearnedHash) Func() func(uint64) int { return h.Hash }

// Slots returns the target table size.
func (h *LearnedHash) Slots() int { return h.slots }

// SizeBytes returns the model footprint.
func (h *LearnedHash) SizeBytes() int { return h.rmi.SizeBytes() }

// RandomHashFunc returns the baseline: a MurmurHash3-style randomized hash
// reduced to [0, slots).
func RandomHashFunc(slots int) func(uint64) int {
	return func(key uint64) int {
		return hashfn.Reduce(hashfn.Mix64(key), slots)
	}
}

// ConflictStats describes hash-table slot occupancy for a key set under a
// hash function — the Figure 8 metric.
type ConflictStats struct {
	Keys      int
	Slots     int
	Occupied  int // slots holding at least one key
	Conflicts int // keys that landed on an already-occupied slot
	MaxChain  int // largest number of keys sharing one slot
	Empty     int // unused slots
}

// ConflictRate is Conflicts / Keys, the percentage Figure 8 reports.
func (s ConflictStats) ConflictRate() float64 {
	if s.Keys == 0 {
		return 0
	}
	return float64(s.Conflicts) / float64(s.Keys)
}

// MeasureConflicts fills a virtual table of the given slot count with every
// key and reports occupancy statistics.
func MeasureConflicts(keys []uint64, slots int, hash func(uint64) int) ConflictStats {
	counts := make([]int32, slots)
	st := ConflictStats{Keys: len(keys), Slots: slots}
	for _, k := range keys {
		counts[hash(k)]++
	}
	for _, c := range counts {
		switch {
		case c == 0:
			st.Empty++
		default:
			st.Occupied++
			st.Conflicts += int(c) - 1
			if int(c) > st.MaxChain {
				st.MaxChain = int(c)
			}
		}
	}
	return st
}
