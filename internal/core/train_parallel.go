package core

import (
	"runtime"
	"sync"
)

// Parallel stage training. The paper's §3.6 observation is that RMI
// training is "a couple of lines of code" and embarrassingly parallel
// once stage-1 routing is known: every stage-2+ model is fit over a
// disjoint key subset. This file exploits that on a bounded worker pool
// (GOMAXPROCS) while keeping the result *bit-identical* to the
// sequential trainer in rmi.go — not just equivalent: the serialized
// bytes match (pinned by TestParallelTrainerBitIdentical and the golden
// hash), so the parallel path can never drift behind the sequential one.
//
// Determinism comes from preserving accumulation order, not from luck:
//
//   - The routing pass writes route[i] — pure integer results of the
//     already-trained prefix — and parallelizes over key chunks.
//   - The fit pass parallelizes over *model ranges*: each worker scans
//     the route array front to back and folds only its own models'
//     keys, so every model's centered least-squares sums see exactly
//     the key order the sequential loop would have produced.
//   - The leaf error pass works the same way per leaf, and the global
//     mean-absolute-error — the one sum the sequential loop interleaves
//     across leaves — is reconstructed by a sequential fold over a
//     per-key scratch array, reproducing the original addition order.

const (
	// parallelTrainMinKeys is the key count below which New always picks
	// the sequential trainer — goroutine fan-out costs more than it saves.
	parallelTrainMinKeys = 1 << 16
	// trainKeysPerWorker floors the per-worker share so tiny stages do not
	// shard across the whole machine.
	trainKeysPerWorker = 1 << 14
)

// trainingWorkers picks the stage-training worker count for n keys: 1
// (the sequential trainer) on single-CPU hosts or small inputs, otherwise
// GOMAXPROCS clamped so every worker has a meaningful share.
func trainingWorkers(n int) int {
	w := runtime.GOMAXPROCS(0)
	if w < 2 || n < parallelTrainMinKeys {
		return 1
	}
	if max := n / trainKeysPerWorker; w > max {
		w = max
	}
	if w < 1 {
		w = 1
	}
	return w
}

// parallelChunks splits [0, n) into at most `workers` contiguous chunks
// and runs fn on each concurrently, returning after all complete. With
// workers <= 1 it degenerates to a direct call — the bounded pool is the
// caller's GOMAXPROCS-derived worker count, not a global queue.
func parallelChunks(n, workers int, fn func(lo, hi int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		if n > 0 {
			fn(0, n)
		}
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := w*n/workers, (w+1)*n/workers
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// trainStagesParallel is trainStages on a worker pool: per stage, a
// parallel routing pass over key chunks, then a parallel fit pass over
// model ranges. See the file comment for why the results are
// bit-identical to the sequential trainer.
func (r *RMI) trainStagesParallel(workers int) {
	n := len(r.keys)
	nStages := len(r.cfg.StageSizes)
	route := make([]int32, n) // leaf routing, reused by the error pass

	for s := 0; s < nStages; s++ {
		size := r.cfg.StageSizes[s]

		// Routing pass: pure reads of the trained prefix, so key chunks
		// are independent. This is where the expensive per-key model
		// execution (NN tops, multi-stage prefixes) lives.
		parallelChunks(n, workers, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				route[i] = int32(r.routeTo(float64(r.keys[i]), s))
			}
		})

		// Fit pass: each worker owns a contiguous model range and folds
		// its models' keys in ascending key order — the same order the
		// sequential loop feeds each accumulator.
		accs := make([]regAcc, size)
		models := make([]linmod, size)
		parallelChunks(size, workers, func(jlo, jhi int) {
			lo32, hi32 := int32(jlo), int32(jhi)
			for i := 0; i < n; i++ {
				if j := route[i]; j >= lo32 && j < hi32 {
					accs[j].add(float64(r.keys[i]), float64(i), int32(i))
				}
			}
			for j := jlo; j < jhi; j++ {
				models[j] = accs[j].fit()
			}
		})
		repairEmpty(models, accs)

		if s < nStages-1 {
			r.stages = append(r.stages, models)
			continue
		}
		r.leaves = make([]leaf, size)
		for j := range r.leaves {
			r.leaves[j].m = models[j]
		}
		r.computeLeafErrorsParallel(route, workers)
		if r.cfg.HybridThreshold > 0 {
			r.applyHybrid(route)
		}
	}
}

// computeLeafErrorsParallel is computeLeafErrors over model-range workers.
// Per-leaf accumulators see their keys in ascending order (bit-identical
// to sequential); the global mean absolute error is rebuilt by a
// sequential fold over the per-key |d| scratch so its float64 additions
// happen in the exact order of the sequential loop. The worst error is an
// integer max — order-free — and combines across workers directly.
func (r *RMI) computeLeafErrorsParallel(route []int32, workers int) {
	n := len(r.keys)
	errs := newLeafErrAccs(len(r.leaves))
	absd := make([]float64, n) // |actual - predicted| per key, filled by exactly one worker each
	nl := len(r.leaves)
	gmaxes := make([]int, workers)
	var widx int32
	var widxMu sync.Mutex
	parallelChunks(nl, workers, func(jlo, jhi int) {
		widxMu.Lock()
		w := widx
		widx++
		widxMu.Unlock()
		gmax := 0
		lo32, hi32 := int32(jlo), int32(jhi)
		for i := 0; i < n; i++ {
			j := route[i]
			if j < lo32 || j >= hi32 {
				continue
			}
			pred := int(r.leaves[j].m.predict(float64(r.keys[i])))
			d := i - pred
			errs[j].add(d)
			if d < 0 {
				d = -d
			}
			absd[i] = float64(d)
			if d > gmax {
				gmax = d
			}
		}
		gmaxes[w] = gmax
	})
	finalizeLeafErrors(r.leaves, errs)

	var gsum float64
	for _, ad := range absd {
		gsum += ad
	}
	gmax := 0
	for _, g := range gmaxes {
		if g > gmax {
			gmax = g
		}
	}
	if n > 0 {
		r.meanAbsErr = gsum / float64(n)
	}
	r.maxAbsErr = gmax
}
