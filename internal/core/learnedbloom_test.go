package core

import (
	"testing"

	"learnedindex/internal/bloom"
	"learnedindex/internal/data"
	"learnedindex/internal/ml"
)

func trainedLogistic(t *testing.T, c *data.URLCorpus) *ml.LogisticNGram {
	t.Helper()
	cfg := ml.DefaultLogisticConfig()
	// Small hashed feature space: the learned-filter win requires the model
	// to be a small fraction of the filter budget (the paper's GRU is
	// 0.0259MB against 2MB filters). 2^9 dims = 2KB at float32.
	cfg.Bits = 9
	m := ml.NewLogisticNGram(cfg)
	m.Train(c.Keys, c.TrainNeg, cfg)
	return m
}

func TestLearnedBloomNoFalseNegatives(t *testing.T) {
	c := data.URLs(3000, 6000, 1)
	m := trainedLogistic(t, c)
	lb := NewLearnedBloom(m, c.Keys, c.ValidNeg, 0.01)
	for _, k := range c.Keys {
		if !lb.MayContain(k) {
			t.Fatalf("false negative for key %q", k)
		}
	}
}

func TestLearnedBloomFPRNearTarget(t *testing.T) {
	c := data.URLs(3000, 10_000, 1)
	m := trainedLogistic(t, c)
	for _, target := range []float64{0.05, 0.01} {
		lb := NewLearnedBloom(m, c.Keys, c.ValidNeg, target)
		fpr := lb.MeasureFPR(c.TestNeg)
		// Validation and test are i.i.d. splits; allow sampling slack.
		if fpr > target*3 {
			t.Fatalf("target %.3f: test FPR %.4f too high", target, fpr)
		}
	}
}

func TestLearnedBloomSmallerThanStandard(t *testing.T) {
	// The §5.2 headline: the learned filter beats the standard filter's
	// footprint at the same FPR when the classifier separates the sets.
	c := data.URLs(5000, 10_000, 1)
	m := trainedLogistic(t, c)
	const target = 0.01
	lb := NewLearnedBloom(m, c.Keys, c.ValidNeg, target)
	std := bloom.New(len(c.Keys), target)
	if lb.SizeBytesQuantized() >= std.SizeBytes() {
		t.Fatalf("learned %.1fKB >= standard %.1fKB (FNR %.2f)",
			float64(lb.SizeBytesQuantized())/1024, float64(std.SizeBytes())/1024,
			lb.FNR(len(c.Keys)))
	}
	t.Logf("learned %.1fKB vs standard %.1fKB, FNR %.2f, τ=%.3f",
		float64(lb.SizeBytesQuantized())/1024, float64(std.SizeBytes())/1024,
		lb.FNR(len(c.Keys)), lb.Tau())
}

func TestTuneTau(t *testing.T) {
	// A perfectly calibrated model: scores equal index/len.
	neg := make([]string, 1000)
	scores := map[string]float64{}
	for i := range neg {
		neg[i] = string(rune('a'+i%26)) + string(rune('0'+i/26%10)) + string(rune('A'+i%52/2))
	}
	m := &fakeClassifier{scores: scores}
	for i, s := range neg {
		scores[s] = float64(i) / float64(len(neg))
	}
	tau, achieved := TuneTau(m, neg, 0.05)
	if achieved > 0.05 {
		t.Fatalf("achieved FPR %.4f > target", achieved)
	}
	fp := 0
	for _, s := range neg {
		if m.Predict(s) >= tau {
			fp++
		}
	}
	if float64(fp)/float64(len(neg)) > 0.05 {
		t.Fatal("tau does not enforce target on the tuning set")
	}
}

type fakeClassifier struct{ scores map[string]float64 }

func (f *fakeClassifier) Predict(s string) float64 { return f.scores[s] }
func (f *fakeClassifier) SizeBytes() int           { return 8 }

func TestLearnedBloomDegenerateModel(t *testing.T) {
	// A useless (constant) model: everything becomes a false negative, the
	// overflow filter carries the whole set, and correctness must hold.
	c := data.URLs(1000, 2000, 1)
	m := &fakeClassifier{scores: map[string]float64{}}
	lb := NewLearnedBloom(m, c.Keys, c.ValidNeg, 0.01)
	for _, k := range c.Keys {
		if !lb.MayContain(k) {
			t.Fatalf("false negative with degenerate model")
		}
	}
	if lb.FNR(len(c.Keys)) < 0.99 {
		t.Fatalf("constant model should delegate ~all keys, FNR=%.2f", lb.FNR(len(c.Keys)))
	}
}

func TestLearnedBloomGRU(t *testing.T) {
	if testing.Short() {
		t.Skip("GRU training is slow")
	}
	c := data.URLs(800, 1600, 1)
	cfg := ml.GRUConfig{Width: 8, Embedding: 8, MaxLen: 48, Epochs: 2, LR: 5e-3, Seed: 1}
	g := ml.NewGRU(cfg)
	g.Train(c.Keys, c.TrainNeg, cfg)
	lb := NewLearnedBloom(g, c.Keys, c.ValidNeg, 0.02)
	for _, k := range c.Keys {
		if !lb.MayContain(k) {
			t.Fatal("GRU learned bloom produced a false negative")
		}
	}
	if fpr := lb.MeasureFPR(c.TestNeg); fpr > 0.10 {
		t.Fatalf("GRU learned bloom FPR %.3f way above target", fpr)
	}
}

func TestModelHashBloomNoFalseNegatives(t *testing.T) {
	c := data.URLs(3000, 6000, 1)
	m := trainedLogistic(t, c)
	mh := NewModelHashBloom(m, c.Keys, c.ValidNeg, 1<<16, 0.01)
	for _, k := range c.Keys {
		if !mh.MayContain(k) {
			t.Fatalf("false negative for %q", k)
		}
	}
}

func TestModelHashBloomFPR(t *testing.T) {
	c := data.URLs(3000, 10_000, 1)
	m := trainedLogistic(t, c)
	mh := NewModelHashBloom(m, c.Keys, c.ValidNeg, 1<<16, 0.01)
	if fpr := mh.MeasureFPR(c.TestNeg); fpr > 0.03 {
		t.Fatalf("model-hash FPR %.4f too high", fpr)
	}
	// FPRm of 0 is legitimate: a well-separating model can map every
	// held-out non-key to an unset bit.
	if mh.FPRm() < 0 || mh.FPRm() > 1 {
		t.Fatalf("FPRm %.4f out of range", mh.FPRm())
	}
}

func TestModelHashBloomBeatsClassifierVariantSometimes(t *testing.T) {
	// Appendix E reports the discretized variant can be smaller than the
	// §5.1.1 combination. We only assert both stay below/competitive with
	// the standard filter, as the ranking is dataset-dependent.
	c := data.URLs(5000, 10_000, 1)
	m := trainedLogistic(t, c)
	const target = 0.01
	std := bloom.New(len(c.Keys), target).SizeBytes()
	lb := NewLearnedBloom(m, c.Keys, c.ValidNeg, target).SizeBytesQuantized()
	mh := NewModelHashBloom(m, c.Keys, c.ValidNeg, 1<<17, target).SizeBytesQuantized()
	if lb >= std && mh >= std {
		t.Fatalf("neither learned variant (%d, %d) beat the standard filter (%d)", lb, mh, std)
	}
}
