package core

import (
	"math"

	"learnedindex/internal/ml"
	"learnedindex/internal/search"
)

// StringConfig specifies a string RMI (§3.5, Figure 6).
type StringConfig struct {
	// MaxLen is the tokenization truncation length N: "we will truncate the
	// keys to length N before tokenization. For strings with length n < N,
	// we set x_i = 0 for i > n" (§3.5). Capped at 64.
	MaxLen int
	// Hidden are the top network's hidden widths (Figure 6 evaluates 1 and
	// 2 hidden layers); empty means a linear model over the vector.
	Hidden []int
	// NumLeaves is the second-stage size (Figure 6 uses 10,000).
	NumLeaves int
	// Search selects the last-mile strategy; Figure 6's best row ("Learned
	// QS") uses SearchQuaternary.
	Search SearchKind
	// HybridThreshold, when > 0, replaces leaves with max absolute error
	// above it with B-Trees (Figure 6 evaluates t=128 and t=64).
	HybridThreshold int
	// HybridPageSize is the replacement B-Trees' page size (default 32).
	HybridPageSize int
	// SubsampleTop caps top-model training points (default 50k; string NN
	// training is O(MaxLen) per point).
	SubsampleTop int
	Seed         int64
}

// DefaultStringConfig mirrors Figure 6's learned-index rows.
func DefaultStringConfig(numLeaves int, hidden ...int) StringConfig {
	return StringConfig{MaxLen: 16, Hidden: hidden, NumLeaves: numLeaves, Search: SearchModelBiased, Seed: 1}
}

// sleaf is a string-RMI leaf: a linear model over the key's 8-byte prefix
// scalarization plus error metadata, optionally replaced by a B-Tree.
type sleaf struct {
	m      linmod
	minErr int32
	maxErr int32
	stdErr float32
	n      int32
	// offset-based assigned-keys B-Tree replacement; see leaf in rmi.go.
	btPos []int32
	btSep []string
}

// StringRMI is a 2-stage recursive model index over sorted string keys.
// The top stage is a feed-forward network over the ASCII feature vector
// (§3.5); leaves are linear models over a monotonic 8-byte prefix
// scalarization. Because the scalarization (and potentially the top model)
// is only approximately monotone, lookups verify window boundaries and
// expand when needed, so lower-bound semantics always hold.
//
// Integration contract (the prefix-collision tie-break path): inside the
// stack, StringRMI is the last-mile model of a StringIndex — the key codec
// (internal/keycodec) routes every probe's fixed-width 8-byte prefix
// through the compiled uint64 plan, and only when the probe's prefix
// *collides* (multiple stored keys share it, so PrefixScalar alone cannot
// order them) does the exact-string machinery here run, resolving the
// lower bound within the collision group [s, e). The contract StringIndex
// relies on:
//
//   - Lookup(key) is a true lower bound over the full key array: the index
//     of the first stored key >= key in bytes order. In particular, for a
//     probe whose prefix matches a stored group, the result always lands in
//     [s, e] — every key before s is < probe and every key from e on is >
//     probe — which is why StringIndex may clamp the answer into the group
//     without changing correct results.
//   - Lookup never reads keys outside the window it verified: boundary
//     checks expand via StringBoundedWithExpansion rather than trusting
//     the (approximately monotone) model, so collision groups whose
//     PrefixScalar values are identical still resolve exactly.
//   - A StringIndex trains a StringRMI only for collision-heavy key sets
//     (huge shared-prefix groups, e.g. URL corpora); otherwise the
//     tie-break is a bounded binary search and this type is bypassed.
//     Segment decode never trains one (AssembleStringIndex), so StringRMI
//     appears on the read path only for memory-resident shard snapshots.
type StringRMI struct {
	keys      []string
	cfg       StringConfig
	top       *ml.NN
	leaves    []sleaf
	nf        float64
	numHybrid int
	maxAbsErr int
	meanAbs   float64
}

// PrefixScalar packs the first 8 bytes of s big-endian into a uint64 and
// converts to float64 — a cheap, order-preserving (up to 8-byte prefix
// ties) scalarization used by the leaf models.
func PrefixScalar(s string) float64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v <<= 8
		if i < len(s) {
			v |= uint64(s[i])
		}
	}
	return float64(v)
}

// Vectorize writes the §3.5 tokenization of s into dst: dst[i] is the ASCII
// decimal value of s[i], zero beyond len(s).
func Vectorize(s string, dst []float64) {
	n := len(s)
	for i := range dst {
		if i < n {
			dst[i] = float64(s[i])
		} else {
			dst[i] = 0
		}
	}
}

// NewString trains a StringRMI over sorted unique keys.
func NewString(keys []string, cfg StringConfig) *StringRMI {
	if cfg.MaxLen <= 0 {
		cfg.MaxLen = 16
	}
	if cfg.MaxLen > 64 {
		cfg.MaxLen = 64
	}
	if cfg.NumLeaves < 1 {
		cfg.NumLeaves = defaultLeafCount(len(keys))
	}
	if cfg.HybridPageSize <= 0 {
		cfg.HybridPageSize = 32
	}
	if cfg.SubsampleTop <= 0 {
		cfg.SubsampleTop = 50_000
	}
	r := &StringRMI{keys: keys, cfg: cfg, nf: float64(len(keys))}
	if len(keys) == 0 {
		r.leaves = make([]sleaf, 1)
		return r
	}
	r.trainTop()
	r.trainLeaves()
	return r
}

func (r *StringRMI) trainTop() {
	n := len(r.keys)
	stride := 1
	if n > r.cfg.SubsampleTop {
		stride = n / r.cfg.SubsampleTop
	}
	m := (n + stride - 1) / stride
	xs := make([][]float64, 0, m)
	ys := make([]float64, 0, m)
	for i := 0; i < n; i += stride {
		v := make([]float64, r.cfg.MaxLen)
		Vectorize(r.keys[i], v)
		xs = append(xs, v)
		ys = append(ys, float64(i))
	}
	nncfg := ml.DefaultNNConfig(r.cfg.Hidden...)
	nncfg.Seed = r.cfg.Seed
	nncfg.Epochs = 6
	r.top = ml.TrainNNVec(xs, ys, nncfg)
}

func (r *StringRMI) leafIndex(key string, vbuf []float64) int {
	Vectorize(key, vbuf)
	p := r.top.PredictVecFast(vbuf)
	return scaleToIndex(p, r.nf, r.cfg.NumLeaves)
}

func (r *StringRMI) trainLeaves() {
	n := len(r.keys)
	size := r.cfg.NumLeaves
	accs := make([]regAcc, size)
	route := make([]int32, n)
	vbuf := make([]float64, r.cfg.MaxLen)
	for i, k := range r.keys {
		idx := r.leafIndex(k, vbuf)
		route[i] = int32(idx)
		accs[idx].add(PrefixScalar(k), float64(i), int32(i))
	}
	r.leaves = make([]sleaf, size)
	models := make([]linmod, size)
	for j := range models {
		models[j] = accs[j].fit()
	}
	repairEmpty(models, accs)
	for j := range r.leaves {
		r.leaves[j].m = models[j]
	}
	// Error pass.
	type e struct {
		min, max   int
		sum, sumsq float64
		n          int
	}
	errs := make([]e, size)
	for j := range errs {
		errs[j].min = 1 << 30
		errs[j].max = -(1 << 30)
	}
	var gsum float64
	gmax := 0
	for i, k := range r.keys {
		j := route[i]
		pred := int(r.leaves[j].m.predict(PrefixScalar(k)))
		// actual-minus-predicted; see RMI.computeLeafErrors.
		d := i - pred
		ev := &errs[j]
		if d < ev.min {
			ev.min = d
		}
		if d > ev.max {
			ev.max = d
		}
		fd := float64(d)
		ev.sum += fd
		ev.sumsq += fd * fd
		ev.n++
		if d < 0 {
			d = -d
		}
		gsum += float64(d)
		if d > gmax {
			gmax = d
		}
	}
	for j := range r.leaves {
		lf := &r.leaves[j]
		ev := &errs[j]
		lf.n = int32(ev.n)
		if ev.n == 0 {
			lf.minErr, lf.maxErr, lf.stdErr = -1, 1, 1
			continue
		}
		lf.minErr, lf.maxErr = int32(ev.min), int32(ev.max)
		mean := ev.sum / float64(ev.n)
		v := ev.sumsq/float64(ev.n) - mean*mean
		if v < 0 {
			v = 0
		}
		lf.stdErr = sqrt32(v)
	}
	r.meanAbs = gsum / float64(n)
	r.maxAbsErr = gmax
	// Hybrid replacement (Figure 6's "Hybrid Index" rows): B-Trees over
	// the keys assigned to each bad leaf, per Algorithm 1.
	if r.cfg.HybridThreshold > 0 {
		flagged := make(map[int32]*sleaf)
		for j := range r.leaves {
			lf := &r.leaves[j]
			if lf.n == 0 {
				continue
			}
			worst := int(lf.maxErr)
			if -int(lf.minErr) > worst {
				worst = -int(lf.minErr)
			}
			if worst <= r.cfg.HybridThreshold {
				continue
			}
			flagged[int32(j)] = lf
			lf.btPos = make([]int32, 0, lf.n)
			r.numHybrid++
		}
		if len(flagged) > 0 {
			for i := range r.keys {
				if lf, ok := flagged[route[i]]; ok {
					lf.btPos = append(lf.btPos, int32(i))
				}
			}
			for _, lf := range flagged {
				step := r.cfg.HybridPageSize
				lf.btSep = make([]string, 0, len(lf.btPos)/step+1)
				for i := 0; i < len(lf.btPos); i += step {
					lf.btSep = append(lf.btSep, r.keys[lf.btPos[i]])
				}
			}
		}
	}
}

func sqrt32(v float64) float32 {
	if v <= 0 {
		return 0
	}
	return float32(math.Sqrt(v))
}

// Predict runs only the model hierarchy and returns the estimated position
// plus the error window.
func (r *StringRMI) Predict(key string) (pos, lo, hi int) {
	var vb [64]float64
	idx := r.leafIndex(key, vb[:r.cfg.MaxLen])
	lf := &r.leaves[idx]
	// Window anchored on the raw prediction; see RMI.Predict.
	pred := int(lf.m.predict(PrefixScalar(key)))
	lo = pred + int(lf.minErr)
	hi = pred + int(lf.maxErr) + 1
	lo, hi = clampWindow(lo, hi, len(r.keys))
	pos = clampInt(pred, 0, len(r.keys)-1)
	return pos, lo, hi
}

// Lookup returns the lower-bound position of key.
func (r *StringRMI) Lookup(key string) int {
	n := len(r.keys)
	if n == 0 {
		return 0
	}
	var vb [64]float64
	idx := r.leafIndex(key, vb[:r.cfg.MaxLen])
	lf := &r.leaves[idx]
	if lf.btPos != nil {
		if len(lf.btPos) == 0 {
			return search.StringBinary(r.keys, key, 0, n)
		}
		s := search.StringBinary(lf.btSep, key, 0, len(lf.btSep))
		lo := 0
		if s > 0 {
			lo = (s - 1) * r.cfg.HybridPageSize
		}
		hi := lo + r.cfg.HybridPageSize
		if hi > len(lf.btPos) {
			hi = len(lf.btPos)
		}
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if r.keys[lf.btPos[mid]] < key {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		p := lo
		switch {
		case p == 0:
			return search.StringBinary(r.keys, key, 0, int(lf.btPos[0])+1)
		case p == len(lf.btPos):
			return search.StringBinary(r.keys, key, int(lf.btPos[p-1])+1, n)
		default:
			return search.StringBinary(r.keys, key, int(lf.btPos[p-1])+1, int(lf.btPos[p])+1)
		}
	}
	rawPred := int(lf.m.predict(PrefixScalar(key)))
	lo := rawPred + int(lf.minErr)
	hi := rawPred + int(lf.maxErr) + 1
	lo, hi = clampWindow(lo, hi, n)
	pred := clampInt(rawPred, 0, n-1)
	var pos int
	switch r.cfg.Search {
	case SearchBinary:
		return search.StringBoundedWithExpansion(r.keys, key, lo, hi)
	case SearchQuaternary:
		pos = search.StringBiasedQuaternary(r.keys, key, lo, hi, pred, int(lf.stdErr))
	default:
		pos = search.StringModelBiasedBinary(r.keys, key, lo, hi, pred)
	}
	if pos == lo && lo > 0 && r.keys[lo-1] >= key {
		return search.StringBoundedWithExpansion(r.keys, key, 0, lo+1)
	}
	if pos == hi && hi < n {
		return search.StringBoundedWithExpansion(r.keys, key, hi-1, n)
	}
	return pos
}

// Contains reports whether key is stored.
func (r *StringRMI) Contains(key string) bool {
	p := r.Lookup(key)
	return p < len(r.keys) && r.keys[p] == key
}

// NumHybrid returns how many leaves were replaced by B-Trees.
func (r *StringRMI) NumHybrid() int { return r.numHybrid }

// MaxAbsErr returns the worst absolute position error over stored keys.
func (r *StringRMI) MaxAbsErr() int { return r.maxAbsErr }

// MeanAbsErr returns the mean absolute position error over stored keys.
func (r *StringRMI) MeanAbsErr() float64 { return r.meanAbs }

// SizeBytes returns the index footprint (top network + leaves + hybrid
// B-Trees), excluding the key array.
func (r *StringRMI) SizeBytes() int {
	total := 0
	if r.top != nil {
		total += r.top.SizeBytes()
	}
	total += len(r.leaves) * (16 + 12)
	for j := range r.leaves {
		// Hybrid B-Trees: 4-byte offsets per assigned key plus materialized
		// separators per page — no key copies.
		lf := &r.leaves[j]
		total += len(lf.btPos) * 4
		for _, sep := range lf.btSep {
			total += 16 + len(sep)
		}
	}
	return total
}
