package core

import (
	"math"
	"sort"

	"learnedindex/internal/bloom"
)

// Classifier is a model f(x) → [0,1] read as the probability that x is a
// key (§5.1.1). Implementations: ml.GRU, ml.LogisticNGram.
type Classifier interface {
	Predict(s string) float64
	SizeBytes() int
}

// LearnedBloom is the §5.1.1 learned Bloom filter: a probabilistic
// classifier with threshold τ plus an overflow Bloom filter over the
// classifier's false negatives, preserving the zero-false-negative
// guarantee (Figure 9(c)).
//
// τ is tuned on a held-out non-key set so that FPR_τ = p*/2, and the
// overflow filter is sized for FPR_B = p*/2, giving overall
// FPR_O = FPR_τ + (1-FPR_τ)·FPR_B <= p* (§5.1.1, crediting Mitzenmacher).
type LearnedBloom struct {
	model    Classifier
	tau      float64
	overflow *bloom.Filter
	numFN    int
	fprTau   float64 // measured on the validation non-keys
}

// NewLearnedBloom builds the filter: tunes τ for p*/2 on validNeg, collects
// the classifier's false negatives over keys, and sizes the overflow filter
// for p*/2 over them. The model must already be trained.
func NewLearnedBloom(model Classifier, keys, validNeg []string, targetFPR float64) *LearnedBloom {
	lb := &LearnedBloom{model: model}
	half := targetFPR / 2
	lb.tau, lb.fprTau = TuneTau(model, validNeg, half)
	var fns []string
	for _, k := range keys {
		if model.Predict(k) < lb.tau {
			fns = append(fns, k)
		}
	}
	lb.numFN = len(fns)
	if len(fns) > 0 {
		lb.overflow = bloom.New(len(fns), half)
		for _, k := range fns {
			lb.overflow.Add(k)
		}
	}
	return lb
}

// TuneTau returns the smallest threshold achieving FPR <= target on the
// held-out non-keys, plus the achieved FPR. Scores are sorted descending;
// τ is placed just above the ⌈target·|neg|⌉-th highest score.
func TuneTau(model Classifier, neg []string, target float64) (tau, achieved float64) {
	if len(neg) == 0 {
		return 0.5, 0
	}
	scores := make([]float64, len(neg))
	for i, s := range neg {
		scores[i] = model.Predict(s)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(scores)))
	allow := int(target * float64(len(neg)))
	if allow >= len(neg) {
		return 0, 1
	}
	// τ strictly above the (allow+1)-th highest score lets exactly `allow`
	// non-keys pass.
	tau = math.Nextafter(scores[allow], 2)
	fp := 0
	for _, s := range scores {
		if s >= tau {
			fp++
		}
	}
	return tau, float64(fp) / float64(len(neg))
}

// MayContain reports whether key may be in the set. False negatives are
// impossible: every key below τ was inserted into the overflow filter.
func (lb *LearnedBloom) MayContain(key string) bool {
	if lb.model.Predict(key) >= lb.tau {
		return true
	}
	if lb.overflow == nil {
		return false
	}
	return lb.overflow.MayContain(key)
}

// MeasureFPR returns the empirical false-positive rate over a non-key set
// (the paper reports this on the held-out test split).
func (lb *LearnedBloom) MeasureFPR(neg []string) float64 {
	if len(neg) == 0 {
		return 0
	}
	fp := 0
	for _, s := range neg {
		if lb.MayContain(s) {
			fp++
		}
	}
	return float64(fp) / float64(len(neg))
}

// SizeBytes returns model + overflow filter footprint, the Figure 10
// y-axis.
func (lb *LearnedBloom) SizeBytes() int {
	s := lb.model.SizeBytes()
	if lb.overflow != nil {
		s += lb.overflow.SizeBytes()
	}
	return s
}

// SizeBytesQuantized charges the model at float32 precision when the model
// supports it, matching the paper's model-size arithmetic.
func (lb *LearnedBloom) SizeBytesQuantized() int {
	s := lb.model.SizeBytes()
	if q, ok := lb.model.(interface{ SizeBytesQuantized() int }); ok {
		s = q.SizeBytesQuantized()
	}
	if lb.overflow != nil {
		s += lb.overflow.SizeBytes()
	}
	return s
}

// Tau returns the tuned threshold.
func (lb *LearnedBloom) Tau() float64 { return lb.tau }

// FNR returns the classifier's false-negative rate over the key set (the
// fraction of keys delegated to the overflow filter; §5.2 reports 55% at
// 0.5% FPR).
func (lb *LearnedBloom) FNR(numKeys int) float64 {
	if numKeys == 0 {
		return 0
	}
	return float64(lb.numFN) / float64(numKeys)
}

// OverflowSizeBytes returns the overflow filter's footprint alone.
func (lb *LearnedBloom) OverflowSizeBytes() int {
	if lb.overflow == nil {
		return 0
	}
	return lb.overflow.SizeBytes()
}
