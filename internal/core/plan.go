package core

import (
	"learnedindex/internal/ml"
	"learnedindex/internal/obs"
	"learnedindex/internal/search"
)

// Plan is the compiled read path: the RMI's model tree lowered into a
// flat inference plan. The interpreted path (RMI.lookupFrom) pays Go
// interface dispatch on the top model, pointer-chases [][]linmod, and
// branches on SearchKind at every lookup; the paper's §3.2 claim is that
// an RMI lookup is nothing but a handful of multiply-adds plus a tiny
// bounded search. Compile recovers that cost model:
//
//   - Top stage devirtualized: monomorphic fast paths for TopLinear and
//     TopMultivariate (closure-free folded coefficients); only TopNN falls
//     back to the ml.Model interface.
//   - Flat contiguous coefficients: all inner stages share one []float64
//     of interleaved (a, b) pairs — one slice header, no [][] indirection
//     — and leaves are packed 32-byte records, one cache line per lookup.
//   - Routing scales folded: the ⌊M·f(x)/N⌋ stage transition's size/N
//     factor is multiplied into the feeding model's coefficients at
//     compile time, so routing is a single FMA plus clamp, zero divides.
//   - Search resolved once: cfg.Search is lowered to a concrete function
//     at compile time (interpolated-then-branchless for the default
//     model-biased kind, branchless bisection for plain binary) instead
//     of a per-lookup switch.
//
// A Plan is immutable and safe for concurrent use. Results are
// bit-identical to the interpreted path (pinned by the equivalence oracle
// tests): every strategy resolves the true global lower bound, and folded
// routing can only shift which leaf serves a probe, never the answer —
// window expansion guarantees correctness from any prediction.
type Plan struct {
	keys []uint64
	n    int

	// Top stage. topKind selects the monomorphic evaluation; the folded
	// routing scale StageSizes[0]/N is already in the coefficients (linear,
	// multivariate) or applied via topScale (interface fallback).
	topKind  TopKind
	topA     float64 // TopLinear: route = clamp(int(topA·x + topB))
	topB     float64
	topBias  float64   // TopMultivariate: route = clamp(int(topBias + Σ topCoef·feat))
	topFeat  []int     // standard-menu feature indexes
	topCoef  []float64 // standardization and routing scale folded in
	top      ml.Model  // fallback (TopNN, custom-menu multivariate)
	topScale float64   // fallback routing multiplier StageSizes[0]/N
	topSize  int       // StageSizes[0]

	// Inner stages (all but the last): one flat slice of interleaved
	// (a, b) pairs with the next stage's routing scale folded in.
	// Stage s's model j lives at inner[innerOff[s]+2j : +2].
	inner      []float64
	innerOff   []int32
	innerClamp []int32 // model count of the stage being routed into

	// Leaves (last stage): one flat slice of packed 32-byte records, so a
	// lookup's entire leaf state — coefficients, error window, σ, hybrid
	// flag — arrives in a single cache line fetch. Coefficients are raw:
	// leaf predictions are positions, not routes, so nothing is folded.
	leaves []planLeaf

	// hybrid is non-nil only when B-Tree replacement leaves exist; entry
	// idx points at the replaced leaf, nil for model leaves.
	hybrid []*leaf
	src    *RMI // hybrid descent and interface-model fallback

	search     searchFunc
	searchKind SearchKind

	// Model-health instrumentation (§3.3's error bounds, observed live):
	// deterministically sampled lookups record the model's actual
	// prediction error and the last-mile window width, so drift between
	// the trained bounds and served traffic is visible without retracing.
	// The histograms are the plan's only mutable state — atomic, so the
	// plan stays safe for concurrent use — and compile out under -tags
	// noobs.
	obsErr     *obs.Histogram // |true position − raw prediction|, sampled
	obsLen     *obs.Histogram // last-mile window width hi−lo, sampled
	trainedErr int            // max over leaves of the trained error bound
}

// planLeaf is the packed 32-byte leaf record of the compiled plan: model
// coefficients plus the §3.3 error metadata, two records per cache line.
type planLeaf struct {
	a, b           float64
	minErr, maxErr int32
	sigma          int32 // int(stdErr), for the quaternary probes
	flags          int32 // leafHybrid when a B-Tree replaced this leaf
}

const leafHybrid = 1

// searchFunc is a compile-time-resolved last-mile strategy. All five
// return the global lower bound of key (the §3.4 guarantees): lo/hi is the
// clamped error window, pred the clamped raw prediction, sigma the leaf's
// integer standard error.
type searchFunc func(keys []uint64, key uint64, lo, hi, pred, sigma int) int

func searchBranchlessBinary(keys []uint64, key uint64, lo, hi, pred, sigma int) int {
	return search.BranchlessWithExpansion(keys, key, lo, hi)
}

// searchCompiledModelBiased is the compiled lowering of the paper's
// default model-biased search. The window [lo, hi) is already the model's
// prediction ± its per-leaf error bounds, so the compiled path extends the
// same model-guides-the-search idea one step further: probe points are
// interpolated from the window's own key values (2–3 dependent loads on
// smooth leaves) with a branchless bisection finish, instead of bisecting
// the half-window around pred (log2(hi-lo) dependent loads). Identical
// results — both resolve the window lower bound, then verify/expand.
func searchCompiledModelBiased(keys []uint64, key uint64, lo, hi, pred, sigma int) int {
	pos := search.Interpolated(keys, key, lo, hi)
	return verifyOrExpandIn(keys, key, pos, lo, hi)
}

func searchCompiledQuaternary(keys []uint64, key uint64, lo, hi, pred, sigma int) int {
	pos := search.BiasedQuaternary(keys, key, lo, hi, pred, sigma)
	return verifyOrExpandIn(keys, key, pos, lo, hi)
}

func searchCompiledExponential(keys []uint64, key uint64, lo, hi, pred, sigma int) int {
	return search.Exponential(keys, key, len(keys), pred)
}

func resolveSearch(kind SearchKind) searchFunc {
	switch kind {
	case SearchBinary:
		return searchBranchlessBinary
	case SearchQuaternary:
		return searchCompiledQuaternary
	case SearchExponential:
		return searchCompiledExponential
	default:
		return searchCompiledModelBiased
	}
}

// Compile lowers the trained (or decoded) model tree into a Plan. It is
// called once by New and DecodeRMI; Plan() returns the cached result, and
// calling Compile again just rebuilds an equivalent plan.
func (r *RMI) Compile() *Plan { return r.compile() }

func (r *RMI) compile() *Plan {
	p := &Plan{
		keys:       r.keys,
		n:          len(r.keys),
		src:        r,
		searchKind: r.cfg.Search,
		search:     resolveSearch(r.cfg.Search),
		topSize:    len(r.leaves),
		obsErr:     obs.NewHistogram(),
		obsLen:     obs.NewHistogram(),
	}
	if len(r.cfg.StageSizes) > 0 {
		p.topSize = r.cfg.StageSizes[0]
	}
	if p.topSize < 1 {
		p.topSize = 1
	}

	// Routing scale of the stage the top model feeds.
	scale0 := 0.0
	if len(r.routeMul) > 0 {
		scale0 = r.routeMul[0]
	}
	p.topKind = TopNN // interface fallback unless a fast path matches
	p.top = r.top
	p.topScale = scale0
	switch m := r.top.(type) {
	case ml.Linear:
		p.topKind = TopLinear
		p.topA = m.A * scale0
		p.topB = m.B * scale0
	case ml.Constant:
		p.topKind = TopLinear
		p.topA = 0
		p.topB = m.C * scale0
	case *ml.Multivariate:
		if bias, feat, coef, ok := m.Folded(); ok {
			p.topKind = TopMultivariate
			p.topBias = bias * scale0
			p.topFeat = feat
			p.topCoef = coef
			for i := range p.topCoef {
				p.topCoef[i] *= scale0
			}
		}
	}

	// Inner stages: flatten with the next stage's scale folded in.
	if ns := len(r.stages); ns > 0 {
		total := 0
		for _, st := range r.stages {
			total += len(st)
		}
		p.inner = make([]float64, 0, 2*total)
		p.innerOff = make([]int32, ns)
		p.innerClamp = make([]int32, ns)
		for s, st := range r.stages {
			mul := r.routeMul[s+1]
			p.innerOff[s] = int32(len(p.inner))
			p.innerClamp[s] = int32(r.cfg.StageSizes[s+1])
			for _, m := range st {
				p.inner = append(p.inner, m.a*mul, m.b*mul)
			}
		}
	}

	// Leaves: one packed record per leaf, raw coefficients. Packing is
	// element-wise and order-free, so large leaf arrays are chunked across
	// the training worker pool (a retrain's compile rides the same cores
	// as its fit passes); the hybrid table is sized up front to keep the
	// parallel writers allocation-free.
	nl := len(r.leaves)
	p.leaves = make([]planLeaf, nl)
	for j := range r.leaves {
		if r.leaves[j].btPos != nil {
			p.hybrid = make([]*leaf, nl)
			break
		}
	}
	parallelChunks(nl, trainingWorkers(nl/compileLeafCost), func(jlo, jhi int) {
		for j := jlo; j < jhi; j++ {
			lf := &r.leaves[j]
			p.leaves[j] = planLeaf{
				a: lf.m.a, b: lf.m.b,
				minErr: lf.minErr, maxErr: lf.maxErr,
				sigma: int32(lf.stdErr),
			}
			if lf.btPos != nil {
				p.hybrid[j] = lf
				p.leaves[j].flags = leafHybrid
			}
		}
	})
	for j := range p.leaves {
		if b := int(p.leaves[j].maxErr); b > p.trainedErr {
			p.trainedErr = b
		}
		if b := -int(p.leaves[j].minErr); b > p.trainedErr {
			p.trainedErr = b
		}
	}
	return p
}

// compileLeafCost discounts a packed-leaf record against one training key
// when sizing compile's worker count: packing is ~16x cheaper per element
// than a fit-pass key, so only very large leaf arrays (~1M records at the
// trainer's 64k-key cutoff) are worth the goroutine fan-out.
const compileLeafCost = 16

// route runs the devirtualized model hierarchy for x and returns the leaf
// index: one FMA + clamp per stage, no divides, no interface calls on the
// monomorphic paths.
func (p *Plan) route(x float64) int {
	var idx int
	switch p.topKind {
	case TopLinear:
		idx = int(p.topA*x + p.topB)
	case TopMultivariate:
		y := p.topBias
		for i, fi := range p.topFeat {
			y += p.topCoef[i] * ml.StandardFeature(fi, x)
		}
		idx = int(y)
	default:
		idx = int(p.top.Predict(x) * p.topScale)
	}
	if idx < 0 {
		idx = 0
	} else if idx >= p.topSize {
		idx = p.topSize - 1
	}
	for s := range p.innerOff {
		base := p.innerOff[s] + int32(2*idx)
		nxt := int(p.inner[base]*x + p.inner[base+1])
		clamp := int(p.innerClamp[s])
		if nxt < 0 {
			nxt = 0
		} else if nxt >= clamp {
			nxt = clamp - 1
		}
		idx = nxt
	}
	return idx
}

// Lookup returns the lower-bound position of key — the index of the first
// stored key >= key — with results bit-identical to RMI.Lookup.
func (p *Plan) Lookup(key uint64) int {
	if p.n == 0 {
		return 0
	}
	x := float64(key)
	idx := p.route(x)
	lf := &p.leaves[idx]
	if lf.flags&leafHybrid != 0 {
		return p.src.lookupHybrid(key, p.hybrid[idx])
	}
	rawPred := int(lf.a*x + lf.b)
	lo, hi := clampWindow(rawPred+int(lf.minErr), rawPred+int(lf.maxErr)+1, p.n)
	pred := clampInt(rawPred, 0, p.n-1)
	pos := p.search(p.keys, key, lo, hi, pred, int(lf.sigma))
	if obs.Enabled && obs.SampleKey(key) {
		p.observe(pos, rawPred, hi-lo)
	}
	return pos
}

// observe records one sampled lookup's model health: the observed
// prediction error against the raw (unclamped) prediction — directly
// comparable to the trained per-leaf bounds, which are relative to the
// same raw prediction — and the last-mile window width the search had to
// cover.
func (p *Plan) observe(pos, rawPred, window int) {
	err := pos - rawPred
	if err < 0 {
		err = -err
	}
	p.obsErr.Observe(uint64(err))
	p.obsLen.Observe(uint64(window))
}

// ObsModelErr snapshots the sampled observed-model-error histogram.
func (p *Plan) ObsModelErr() obs.HistSnapshot { return p.obsErr.Snapshot() }

// ObsSearchLen snapshots the sampled last-mile window-width histogram.
func (p *Plan) ObsSearchLen() obs.HistSnapshot { return p.obsLen.Snapshot() }

// TrainedErrBound returns the largest per-leaf trained error bound: the
// compile-time promise the observed error histogram is judged against.
func (p *Plan) TrainedErrBound() int { return p.trainedErr }

// Contains reports whether key is stored.
func (p *Plan) Contains(key uint64) bool {
	pos := p.Lookup(key)
	return pos < p.n && p.keys[pos] == key
}

// RangeScan returns the position range [start, end) of stored keys k with
// loKey <= k < hiKey: two compiled lower-bound lookups, bit-identical to
// RMI.RangeScan. This is the scan subsystem's entry API — a streaming range
// scan enters the key array at start instead of binary-searching for it,
// and a learned COUNT over [loKey, hiKey) is just end-start with zero
// iteration.
func (p *Plan) RangeScan(loKey, hiKey uint64) (start, end int) {
	return p.Lookup(loKey), p.Lookup(hiKey)
}

// batchGroup is the interleaving width of the batch executors: each
// pipeline stage (predict, route, window, search) runs for a group of this
// many keys before the next stage starts, so the group's independent cache
// misses overlap instead of serializing — the software analogue of the
// memory-level parallelism FAST schedules explicitly (internal/fast).
// 16 keys keep every per-group scratch array in registers/L1 while giving
// the memory system a deep enough window of independent loads.
const batchGroup = 16

// LookupBatch answers Lookup for every probe (any order), writing the
// lower-bound positions into out (len(out) must equal len(probes)).
// Execution is group-interleaved: predict×G → route×G → window×G →
// search×G. The search stage runs all G branchless lower-bound searches in
// lockstep — one halving step for every key in the group before the next
// step — so the group keeps G independent key-array loads in flight where
// a per-key loop would serialize its dependent cache misses (the software
// analogue of the memory-level parallelism FAST schedules explicitly).
// Results are bit-identical to per-key Lookup for every SearchKind: each
// search resolves the true global lower bound, and the lockstep window
// search plus boundary expansion resolves exactly the same bound.
func (p *Plan) LookupBatch(probes []uint64, out []int) {
	if p.n == 0 {
		for i := range out {
			out[i] = 0
		}
		return
	}
	for start := 0; start < len(probes); start += batchGroup {
		g := len(probes) - start
		if g > batchGroup {
			g = batchGroup
		}
		p.lookupGroup(probes[start:start+g], out[start:start+g])
	}
}

// lookupGroup runs the full pipeline for one group of at most batchGroup
// probes: predict×G → route×G → window×G → search×G. The search stage is
// a lockstep branchless bisection: every round issues one independent
// key-array load per still-active key and narrows its window with a
// conditional move — no data-dependent branch, no dependence between the
// group's loads — so the group keeps up to G misses in flight where a
// per-key loop would serialize its dependent chains (the software
// analogue of the memory-level parallelism FAST schedules explicitly,
// internal/fast).
//
// Results are bit-identical to per-key Lookup for every SearchKind: each
// per-key strategy resolves the true global lower bound, and the lockstep
// search's certificate/expansion epilogue resolves exactly the same bound.
func (p *Plan) lookupGroup(group []uint64, out []int) {
	g := len(group)
	var xs [batchGroup]float64
	var idx [batchGroup]int32
	var lo, hi [batchGroup]int
	// Stage 1: float conversion + full model route for the group.
	for i := 0; i < g; i++ {
		xs[i] = float64(group[i])
	}
	for i := 0; i < g; i++ {
		idx[i] = int32(p.route(xs[i]))
	}
	// Stage 2: leaf windows (one packed record load per key). Hybrid
	// leaves are resolved in the epilogue — their descent is its own
	// pipeline.
	hybridMask := uint32(0)
	for i := 0; i < g; i++ {
		lf := &p.leaves[idx[i]]
		rawPred := int(lf.a*xs[i] + lf.b)
		wlo, whi := clampWindow(rawPred+int(lf.minErr), rawPred+int(lf.maxErr)+1, p.n)
		lo[i], hi[i] = wlo, whi
		hybridMask |= uint32(lf.flags&leafHybrid) << i
	}
	// Stage 3: lockstep branchless bisection across the group. Every
	// round issues up to G independent loads; rounds continue until the
	// widest window is resolved.
	for {
		active := false
		for i := 0; i < g; i++ {
			n := hi[i] - lo[i]
			if n <= 1 {
				continue
			}
			half := n >> 1
			base := lo[i]
			// Compiled to CMOV: no branch on key data.
			if p.keys[base+half-1] < group[i] {
				base += half
			}
			lo[i] = base
			hi[i] = base + (n - half)
			if n-half > 1 {
				active = true
			}
		}
		if !active {
			break
		}
	}
	// Epilogue: final element test, then certificate or §3.4 expansion
	// (rare: non-stored probes whose window missed), and hybrid fallbacks.
	for i := 0; i < g; i++ {
		if hybridMask&(1<<i) != 0 {
			out[i] = p.src.lookupHybrid(group[i], p.hybrid[idx[i]])
			continue
		}
		pos := lo[i]
		if pos < hi[i] && p.keys[pos] < group[i] {
			pos++
		}
		out[i] = p.resolveBoundary(group[i], pos)
	}
	// Model health: sample the group's first key (the bisection consumed
	// the window bounds, so the sampled key's leaf window is recomputed —
	// one extra packed-record load on 1-in-64 of groups).
	if obs.Enabled && hybridMask&1 == 0 && obs.SampleKey(group[0]) {
		lf := &p.leaves[idx[0]]
		rawPred := int(lf.a*xs[0] + lf.b)
		wlo, whi := clampWindow(rawPred+int(lf.minErr), rawPred+int(lf.maxErr)+1, p.n)
		p.observe(out[0], rawPred, whi-wlo)
	}
}

// resolveBoundary finishes one lockstep search: windows are per-leaf error
// bounds, so a result may be window-correct but globally wrong for probes
// the window missed. A result certified by its neighbors is returned as
// is; anything else re-searches with §3.4 expansion from the result
// outward.
func (p *Plan) resolveBoundary(key uint64, pos int) int {
	if pos > 0 && pos < p.n {
		// Strictly interior results are self-certifying: keys[pos-1] < key
		// <= keys[pos] proves the global lower bound.
		if p.keys[pos-1] < key && p.keys[pos] >= key {
			return pos
		}
	} else if pos == 0 {
		if p.keys[0] >= key {
			return 0
		}
	} else if pos == p.n {
		if p.keys[p.n-1] < key {
			return p.n
		}
	}
	return search.BranchlessWithExpansion(p.keys, key, pos, pos)
}

// LookupBatchSorted answers Lookup for an ascending probe batch, writing
// into out (len(out) must equal len(probes)). Identical group-interleaved
// pipeline to LookupBatch — ascending probes additionally give the search
// stage natural left-to-right locality — plus a skip for batches entirely
// past the last key. Results are identical to per-key Lookup.
func (p *Plan) LookupBatchSorted(probes []uint64, out []int) {
	if p.n == 0 {
		for i := range out {
			out[i] = 0
		}
		return
	}
	last := p.keys[p.n-1]
	for start := 0; start < len(probes); start += batchGroup {
		g := len(probes) - start
		if g > batchGroup {
			g = batchGroup
		}
		if probes[start] > last {
			// Ascending batch: every remaining probe is past the last key.
			for i := start; i < len(probes); i++ {
				out[i] = p.n
			}
			return
		}
		p.lookupGroup(probes[start:start+g], out[start:start+g])
	}
}

// ContainsBatch reports membership for every probe (any order), writing
// into out (len(out) must equal len(probes)). Group-interleaved like
// LookupBatch.
func (p *Plan) ContainsBatch(probes []uint64, out []bool) {
	if p.n == 0 {
		for i := range out {
			out[i] = false
		}
		return
	}
	var pos [batchGroup]int
	for start := 0; start < len(probes); start += batchGroup {
		g := len(probes) - start
		if g > batchGroup {
			g = batchGroup
		}
		group := probes[start : start+g]
		p.LookupBatch(group, pos[:g])
		for i := 0; i < g; i++ {
			q := pos[i]
			out[start+i] = q < p.n && p.keys[q] == group[i]
		}
	}
}

// Len returns the number of indexed keys.
func (p *Plan) Len() int { return p.n }

// SearchKind returns the compile-time-resolved search strategy.
func (p *Plan) SearchKind() SearchKind { return p.searchKind }
