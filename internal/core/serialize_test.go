package core

import (
	"crypto/sha256"
	"encoding/hex"
	"math/rand"
	"reflect"
	"testing"

	"learnedindex/internal/data"
)

// goldenRMIHash pins the serialized byte layout of the fixed-seed,
// linear-top RMI below. Any format drift — field order, varint vs fixed,
// new fields — breaks this hash; an intentional change must bump
// rmiFormatVersion (and the storage segment magic) along with it.
const goldenRMIHash = "c2deacc04a175964665b18799c9681e76aeeb778a0a6f56b325635ff380c5be4"

// roundTrip encodes r, decodes it against the same keys, and fails the
// test on any error.
func roundTrip(t *testing.T, r *RMI) *RMI {
	t.Helper()
	enc, err := r.AppendBinary(nil)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	dec, err := DecodeRMI(enc, r.Keys())
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	return dec
}

// assertIdentical checks that two RMIs answer identically on members,
// misses, and raw predictions.
func assertIdentical(t *testing.T, name string, r, dec *RMI, probes []uint64) {
	t.Helper()
	if !reflect.DeepEqual(r.Config(), dec.Config()) {
		t.Fatalf("%s: config drifted: %+v vs %+v", name, r.Config(), dec.Config())
	}
	if r.SizeBytes() != dec.SizeBytes() || r.NumLeaves() != dec.NumLeaves() || r.NumHybrid() != dec.NumHybrid() {
		t.Fatalf("%s: shape drifted", name)
	}
	if r.MeanAbsErr() != dec.MeanAbsErr() || r.MaxAbsErr() != dec.MaxAbsErr() {
		t.Fatalf("%s: error stats drifted", name)
	}
	for _, k := range probes {
		if a, b := r.Lookup(k), dec.Lookup(k); a != b {
			t.Fatalf("%s: Lookup(%d) = %d, decoded %d", name, k, a, b)
		}
		p1, lo1, hi1 := r.Predict(k)
		p2, lo2, hi2 := dec.Predict(k)
		if p1 != p2 || lo1 != lo2 || hi1 != hi2 {
			t.Fatalf("%s: Predict(%d) diverged: (%d,%d,%d) vs (%d,%d,%d)", name, k, p1, lo1, hi1, p2, lo2, hi2)
		}
	}
}

func TestRMISerializeRoundTrip(t *testing.T) {
	keys := data.LognormalPaper(40_000, 11)
	rng := rand.New(rand.NewSource(13))
	probes := append(data.SampleExisting(keys, 2000, 14), data.SampleMissing(keys, 2000, 15)...)
	probes = append(probes, 0, 1, keys[0], keys[len(keys)-1], keys[len(keys)-1]+1, ^uint64(0))
	for i := 0; i < 100; i++ {
		probes = append(probes, rng.Uint64())
	}

	cases := map[string]Config{
		"linear-default": DefaultConfig(400),
		"multivariate":   {Top: TopMultivariate, StageSizes: []int{200}, Search: SearchQuaternary, Seed: 1},
		"nn-top":         {Top: TopNN, Hidden: []int{8}, StageSizes: []int{100}, Search: SearchBinary, Seed: 1, SubsampleTop: 20_000},
		"hybrid":         {Top: TopLinear, StageSizes: []int{50}, Search: SearchModelBiased, HybridThreshold: 8, HybridPageSize: 16, Seed: 1},
		"multi-stage":    {Top: TopLinear, StageSizes: []int{8, 64, 400}, Search: SearchExponential, Seed: 1},
	}
	for name, cfg := range cases {
		r := New(keys, cfg)
		if name == "hybrid" && r.NumHybrid() == 0 {
			t.Fatalf("hybrid case built no B-Tree leaves; tighten the threshold")
		}
		assertIdentical(t, name, r, roundTrip(t, r), probes)
	}

	// Empty index: New(nil) has a degenerate one-leaf shape.
	empty := New(nil, DefaultConfig(16))
	dec := roundTrip(t, empty)
	if dec.Lookup(42) != 0 || len(dec.Keys()) != 0 {
		t.Fatal("empty index did not round-trip")
	}
}

func TestRMIGoldenFormat(t *testing.T) {
	keys := data.Dense(10_000, 1_000, 7) // fully deterministic key set
	r := New(keys, DefaultConfig(64))
	enc, err := r.AppendBinary(nil)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	sum := sha256.Sum256(enc)
	if got := hex.EncodeToString(sum[:]); got != goldenRMIHash {
		t.Fatalf("RMI serialization format drifted:\n got %s\nwant %s\n"+
			"(an intentional change must bump rmiFormatVersion and this hash)", got, goldenRMIHash)
	}
}

func TestRMIDecodeRejectsCorrupt(t *testing.T) {
	keys := data.Dense(5_000, 10, 3)
	r := New(keys, Config{Top: TopLinear, StageSizes: []int{4, 50}, HybridThreshold: 4, Seed: 1})
	enc, err := r.AppendBinary(nil)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	if _, err := DecodeRMI(enc, keys[:100]); err == nil {
		t.Error("decode against wrong key count succeeded")
	}
	for _, trunc := range []int{0, 1, 3, len(enc) / 4, len(enc) / 2, len(enc) - 1} {
		if _, err := DecodeRMI(enc[:trunc], keys); err == nil {
			t.Errorf("truncation at %d decoded without error", trunc)
		}
	}
	// Bit flips must either fail decode or at minimum never panic on
	// decode+lookup (structural invariants are validated; model floats are
	// free to change predictions).
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 500; i++ {
		bad := append([]byte(nil), enc...)
		bad[rng.Intn(len(bad))] ^= 1 << uint(rng.Intn(8))
		dec, err := DecodeRMI(bad, keys)
		if err != nil {
			continue
		}
		for _, k := range []uint64{0, keys[17], keys[len(keys)-1], ^uint64(0)} {
			_ = dec.Lookup(k) // must not panic
		}
	}
}
