package core

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"learnedindex/internal/data"
)

func oracle(keys []uint64, k uint64) int {
	return sort.Search(len(keys), func(i int) bool { return keys[i] >= k })
}

// allDatasets returns the three §3.7.1 integer distributions at test scale.
func allDatasets(n int) map[string]data.Keys {
	return map[string]data.Keys{
		"maps":      data.Maps(n, 1),
		"weblogs":   data.Weblogs(n, 1),
		"lognormal": data.LognormalPaper(n, 1),
	}
}

func probesFor(keys data.Keys) []uint64 {
	probes := append(data.SampleExisting(keys, 3000, 2), data.SampleMissing(keys, 1000, 3)...)
	return append(probes, 0, keys[0], keys[0]-1, keys[len(keys)-1], keys[len(keys)-1]+1, ^uint64(0))
}

func TestRMILookupMatchesOracleAllDatasets(t *testing.T) {
	for name, keys := range allDatasets(30_000) {
		for _, leaves := range []int{16, 100, 1000} {
			r := New(keys, DefaultConfig(leaves))
			for _, p := range probesFor(keys) {
				want := oracle(keys, p)
				if got := r.Lookup(p); got != want {
					t.Fatalf("%s leaves=%d: Lookup(%d) = %d, want %d", name, leaves, p, got, want)
				}
			}
		}
	}
}

func TestRMIAllSearchStrategies(t *testing.T) {
	keys := data.Lognormal(30_000, 0, 2, 1_000_000_000, 1)
	for _, s := range []SearchKind{SearchModelBiased, SearchBinary, SearchQuaternary, SearchExponential} {
		cfg := DefaultConfig(200)
		cfg.Search = s
		r := New(keys, cfg)
		for _, p := range probesFor(keys) {
			want := oracle(keys, p)
			if got := r.Lookup(p); got != want {
				t.Fatalf("search=%v: Lookup(%d) = %d, want %d", s, p, got, want)
			}
		}
	}
}

func TestRMIAllTopModels(t *testing.T) {
	keys := data.Weblogs(20_000, 1)
	for _, top := range []struct {
		kind   TopKind
		hidden []int
	}{
		{TopLinear, nil},
		{TopMultivariate, nil},
		{TopNN, nil},
		{TopNN, []int{8}},
		{TopNN, []int{16, 16}},
	} {
		cfg := DefaultConfig(200)
		cfg.Top = top.kind
		cfg.Hidden = top.hidden
		r := New(keys, cfg)
		for _, p := range probesFor(keys) {
			want := oracle(keys, p)
			if got := r.Lookup(p); got != want {
				t.Fatalf("top=%v hidden=%v: Lookup(%d) = %d, want %d", top.kind, top.hidden, p, got, want)
			}
		}
	}
}

func TestRMIThreeStages(t *testing.T) {
	keys := data.Lognormal(30_000, 0, 2, 1_000_000_000, 1)
	cfg := DefaultConfig(0)
	cfg.StageSizes = []int{10, 100, 1000}
	r := New(keys, cfg)
	for _, p := range probesFor(keys) {
		want := oracle(keys, p)
		if got := r.Lookup(p); got != want {
			t.Fatalf("3-stage Lookup(%d) = %d, want %d", p, got, want)
		}
	}
}

func TestRMIDensePerfectModel(t *testing.T) {
	// §1's motivating example: continuous integer keys. A linear model is
	// exact, so the error bound must collapse to (near) zero.
	keys := data.Dense(100_000, 1_000_000, 1)
	r := New(keys, DefaultConfig(100))
	if r.MaxAbsErr() > 1 {
		t.Fatalf("dense keys: max error %d, want <= 1", r.MaxAbsErr())
	}
	for _, p := range data.SampleExisting(keys, 1000, 2) {
		if got, want := r.Lookup(p), oracle(keys, p); got != want {
			t.Fatalf("dense Lookup(%d) = %d, want %d", p, got, want)
		}
	}
}

func TestRMIMoreLeavesSmallerError(t *testing.T) {
	keys := data.Weblogs(50_000, 1)
	small := New(keys, DefaultConfig(10))
	big := New(keys, DefaultConfig(2000))
	if big.MeanAbsErr() >= small.MeanAbsErr() {
		t.Fatalf("more leaves should shrink error: %f vs %f", big.MeanAbsErr(), small.MeanAbsErr())
	}
}

func TestRMIContainsAndRange(t *testing.T) {
	keys := data.Lognormal(20_000, 0, 2, 1_000_000_000, 1)
	r := New(keys, DefaultConfig(100))
	for _, k := range keys[:200] {
		if !r.Contains(k) {
			t.Fatalf("missing stored key %d", k)
		}
	}
	for _, k := range data.SampleMissing(keys, 200, 4) {
		if r.Contains(k) {
			t.Fatalf("phantom key %d", k)
		}
	}
	lo, hi := keys[5000], keys[6000]
	s, e := r.RangeScan(lo, hi)
	if s != 5000 || e != 6000 {
		t.Fatalf("RangeScan = [%d,%d), want [5000,6000)", s, e)
	}
}

func TestRMIErrorBoundsHoldForStoredKeys(t *testing.T) {
	// The min/max error guarantee of §2: every stored key's true position
	// lies inside the predicted window.
	keys := data.Weblogs(30_000, 1)
	r := New(keys, DefaultConfig(300))
	for i, k := range keys {
		_, lo, hi := r.Predict(k)
		if i < lo || i >= hi {
			t.Fatalf("key %d at pos %d outside window [%d,%d)", k, i, lo, hi)
		}
	}
}

func TestRMIEmptyAndTiny(t *testing.T) {
	r := New(nil, DefaultConfig(4))
	if r.Lookup(5) != 0 {
		t.Fatal("empty lookup")
	}
	r = New([]uint64{9}, DefaultConfig(4))
	if r.Lookup(3) != 0 || r.Lookup(9) != 0 || r.Lookup(100) != 1 {
		t.Fatal("single-key lookups wrong")
	}
	r = New([]uint64{3, 7}, DefaultConfig(4))
	for _, p := range []uint64{0, 3, 5, 7, 8} {
		if got, want := r.Lookup(p), oracle([]uint64{3, 7}, p); got != want {
			t.Fatalf("two-key Lookup(%d)=%d want %d", p, got, want)
		}
	}
}

func TestRMISizeScalesWithLeaves(t *testing.T) {
	keys := data.Lognormal(50_000, 0, 2, 1_000_000_000, 1)
	s100 := New(keys, DefaultConfig(100)).SizeBytes()
	s1000 := New(keys, DefaultConfig(1000)).SizeBytes()
	ratio := float64(s1000) / float64(s100)
	if ratio < 5 || ratio > 12 {
		t.Fatalf("size should scale ~linearly with leaves: ratio %.1f", ratio)
	}
}

func TestRMIQuickNonexistentKeys(t *testing.T) {
	keys := data.Lognormal(10_000, 0, 2, 1_000_000_000, 5)
	r := New(keys, DefaultConfig(64))
	f := func(p uint64) bool {
		return r.Lookup(p) == oracle(keys, p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestRMIQuickRandomKeySets(t *testing.T) {
	f := func(raw []uint64, probe uint64, leavesRaw uint8) bool {
		sort.Slice(raw, func(i, j int) bool { return raw[i] < raw[j] })
		keys := raw[:0]
		var prev uint64
		for i, k := range raw {
			if i == 0 || k != prev {
				keys = append(keys, k)
				prev = k
			}
		}
		r := New(keys, DefaultConfig(int(leavesRaw)%32+1))
		return r.Lookup(probe) == oracle(keys, probe)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestHybridReplacesBadLeaves(t *testing.T) {
	// Weblogs with few leaves has large per-leaf errors; a tight threshold
	// must force B-Tree replacement.
	keys := data.Weblogs(30_000, 1)
	cfg := DefaultConfig(50)
	cfg.HybridThreshold = 32
	r := New(keys, cfg)
	if r.NumHybrid() == 0 {
		t.Fatal("expected some hybrid leaves on weblogs with threshold 32")
	}
	for _, p := range probesFor(keys) {
		want := oracle(keys, p)
		if got := r.Lookup(p); got != want {
			t.Fatalf("hybrid Lookup(%d) = %d, want %d", p, got, want)
		}
	}
}

func TestHybridAllBTreesWorstCase(t *testing.T) {
	// Threshold 0 is disabled; threshold 1 on a hard dataset approaches
	// the "virtually an entire B-Tree" degenerate case of §3.3 and must
	// remain correct.
	keys := data.Weblogs(10_000, 2)
	cfg := DefaultConfig(20)
	cfg.HybridThreshold = 1
	r := New(keys, cfg)
	if r.NumHybrid() < 15 {
		t.Fatalf("threshold=1 should replace nearly all leaves, got %d/20", r.NumHybrid())
	}
	for _, p := range probesFor(keys) {
		want := oracle(keys, p)
		if got := r.Lookup(p); got != want {
			t.Fatalf("all-btree Lookup(%d) = %d, want %d", p, got, want)
		}
	}
}

func TestHybridThresholdSweepMonotone(t *testing.T) {
	keys := data.Weblogs(20_000, 1)
	prev := -1
	for _, thr := range []int{512, 128, 64, 16} {
		cfg := DefaultConfig(100)
		cfg.HybridThreshold = thr
		r := New(keys, cfg)
		if prev >= 0 && r.NumHybrid() < prev {
			t.Fatalf("tighter threshold %d produced fewer hybrids (%d < %d)", thr, r.NumHybrid(), prev)
		}
		prev = r.NumHybrid()
	}
}

func TestDuplicateRunsLowerBound(t *testing.T) {
	// The RMI is documented for unique keys, but lower-bound semantics on
	// runs must still point at the first duplicate.
	keys := []uint64{1, 5, 5, 5, 9, 9, 12, 20, 20, 31}
	r := New(keys, DefaultConfig(4))
	for _, p := range []uint64{0, 1, 5, 6, 9, 12, 20, 31, 40} {
		if got, want := r.Lookup(p), oracle(keys, p); got != want {
			t.Fatalf("dup Lookup(%d) = %d, want %d", p, got, want)
		}
	}
}

func TestPredictWindowShrinksWithLeaves(t *testing.T) {
	keys := data.Lognormal(50_000, 0, 2, 1_000_000_000, 1)
	avgWin := func(leaves int) float64 {
		r := New(keys, DefaultConfig(leaves))
		total := 0
		probes := data.SampleExisting(keys, 2000, 7)
		for _, p := range probes {
			_, lo, hi := r.Predict(p)
			total += hi - lo
		}
		return float64(total) / float64(len(probes))
	}
	if avgWin(2000) >= avgWin(20) {
		t.Fatal("error window should shrink with more leaves")
	}
}

func TestRMIDeterministic(t *testing.T) {
	keys := data.Weblogs(10_000, 1)
	cfg := DefaultConfig(64)
	cfg.Top = TopNN
	cfg.Hidden = []int{8}
	a, b := New(keys, cfg), New(keys, cfg)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 500; i++ {
		p := keys[rng.Intn(len(keys))] + uint64(rng.Intn(3)) - 1
		if a.Lookup(p) != b.Lookup(p) {
			t.Fatal("same config+seed must give identical indexes")
		}
	}
}
