package core

import (
	"sort"
	"testing"

	"learnedindex/internal/data"
)

func TestGridSearchRanksAndTrains(t *testing.T) {
	keys := data.Lognormal(20_000, 0, 2, 1_000_000_000, 1)
	probes := data.SampleExisting(keys, 2000, 2)
	cands := []Candidate{
		{Config: DefaultConfig(20), Label: "leaves=20"},
		{Config: DefaultConfig(400), Label: "leaves=400"},
	}
	res := GridSearch(keys, probes, cands, MinimizeLatency)
	if len(res) != 2 {
		t.Fatalf("got %d results", len(res))
	}
	if !sort.SliceIsSorted(res, func(i, j int) bool { return res[i].Score < res[j].Score }) {
		t.Fatal("results not sorted by score")
	}
	for _, r := range res {
		for _, p := range probes[:100] {
			if got, want := r.RMI.Lookup(p), oracle(keys, p); got != want {
				t.Fatalf("%s: wrong lookup", r.Candidate.Label)
			}
		}
	}
}

func TestGridObjectives(t *testing.T) {
	if MinimizeLatency(100, 1<<30, 5) != 100 {
		t.Fatal("MinimizeLatency should ignore size")
	}
	under := LatencyUnderBudget(1000)
	if under(100, 500, 0) != 100 {
		t.Fatal("within budget should score latency")
	}
	if under(100, 5000, 0) <= under(100, 500, 0) {
		t.Fatal("over budget must be penalized")
	}
	if SpaceTimeProduct(10, 10, 0) != 100 {
		t.Fatal("product objective wrong")
	}
}

func TestDefaultGridShape(t *testing.T) {
	g := DefaultGrid([]int{100, 1000})
	if len(g) != 7*2 {
		t.Fatalf("grid size %d, want 14", len(g))
	}
	for _, c := range g {
		if c.Label == "" || len(c.Config.StageSizes) != 1 {
			t.Fatalf("malformed candidate %+v", c)
		}
	}
}

func TestDeltaIndexAppendWorkload(t *testing.T) {
	// The Appendix D.1 append case: timestamps arriving in order.
	keys := data.Weblogs(10_000, 1)
	half := keys[:5000]
	d := NewDelta(append([]uint64{}, half...), DefaultConfig(64), 1000)
	for _, k := range keys[5000:] {
		d.Insert(k)
	}
	if d.Len() != len(keys) {
		t.Fatalf("Len = %d, want %d", d.Len(), len(keys))
	}
	if d.Merges() == 0 {
		t.Fatal("expected at least one merge")
	}
	for _, k := range keys {
		if !d.Contains(k) {
			t.Fatalf("missing %d after inserts", k)
		}
	}
}

func TestDeltaIndexMidInserts(t *testing.T) {
	base := data.Dense(2000, 0, 10) // 0, 10, 20, ...
	d := NewDelta(append([]uint64{}, base...), DefaultConfig(16), 500)
	// Insert keys in the middle of existing ranges.
	for i := uint64(0); i < 1200; i++ {
		d.Insert(i*10 + 5)
	}
	for i := uint64(0); i < 1200; i++ {
		if !d.Contains(i*10 + 5) {
			t.Fatalf("missing mid-insert %d", i*10+5)
		}
	}
	for _, k := range base[:100] {
		if !d.Contains(k) {
			t.Fatalf("lost base key %d", k)
		}
	}
}

func TestDeltaIndexCount(t *testing.T) {
	d := NewDelta([]uint64{10, 20, 30, 40}, DefaultConfig(4), 100)
	d.Insert(25)
	d.Insert(35)
	if got := d.Count(20, 40); got != 4 { // 20, 25, 30, 35
		t.Fatalf("Count(20,40) = %d, want 4", got)
	}
}

func TestDeltaIndexDuplicateInserts(t *testing.T) {
	d := NewDelta([]uint64{1, 2, 3}, DefaultConfig(4), 4)
	// Re-inserts of present keys (base or buffer) are no-ops: they must not
	// inflate Len/Count and must not fill the buffer toward a merge.
	for i := 0; i < 10; i++ {
		d.Insert(2)
		d.Insert(5)
	}
	if d.Merges() != 0 {
		t.Fatal("duplicate inserts should not fill the merge buffer")
	}
	if got := d.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4", got)
	}
	if got := d.Count(0, 100); got != 4 {
		t.Fatalf("Count(0,100) = %d, want 4", got)
	}
	// Distinct inserts still trigger the merge, and it leaves no duplicates.
	d.Insert(7)
	d.Insert(9)
	d.Insert(11) // buffer reaches threshold 4
	if d.Merges() == 0 {
		t.Fatal("expected merge")
	}
	ks := d.Keys()
	for i := 1; i < len(ks); i++ {
		if ks[i] == ks[i-1] {
			t.Fatal("merge left duplicates")
		}
	}
	if d.Len() != len(ks) || d.Len() != 7 {
		t.Fatalf("Len = %d (keys %d), want 7", d.Len(), len(ks))
	}
}

func TestNaiveIndexCorrect(t *testing.T) {
	keys := data.Lognormal(5000, 0, 2, 1_000_000_000, 1)
	ni := NewNaive(keys, 1)
	probes := append(data.SampleExisting(keys, 300, 2), data.SampleMissing(keys, 100, 3)...)
	for _, p := range probes {
		want := oracle(keys, p)
		if got := ni.Lookup(p); got != want {
			t.Fatalf("naive Lookup(%d) = %d, want %d", p, got, want)
		}
		if got := ni.LookupNative(p); got != want {
			t.Fatalf("naive native Lookup(%d) = %d, want %d", p, got, want)
		}
	}
}

func TestNaiveInterpretedMatchesNative(t *testing.T) {
	keys := data.Lognormal(3000, 0, 2, 1_000_000_000, 1)
	ni := NewNaive(keys, 1)
	for _, k := range keys[:200] {
		if ni.PredictInterpreted(k) != ni.PredictNative(k) {
			t.Fatal("graph interpreter diverges from native execution")
		}
	}
	if ni.GraphNodes() < 8 {
		t.Fatalf("graph too small: %d nodes", ni.GraphNodes())
	}
}
