package experiments

import (
	"fmt"
	"time"

	"learnedindex/internal/bench"
	"learnedindex/internal/core"
	"learnedindex/internal/data"
	"learnedindex/internal/search"
)

// ShootoutRow is one search strategy's measurement over the shared
// window set.
type ShootoutRow struct {
	Strategy string
	PerProbe time.Duration
	SpeedUp  float64 // vs plain binary
}

// SearchShootout compares the §3.4 last-mile strategies — binary,
// model-biased, biased quaternary, exponential — plus the branchless
// lower-bound loop and the interpolated search the compiled plan resolves
// to, on *identical* windows: one RMI is trained once, every probe's
// predicted window (lo, hi, pred) is precomputed, and each strategy then
// resolves exactly the same windows. This isolates pure search cost from
// model cost, which a full-lookup comparison (where each strategy
// retrains) cannot do.
func SearchShootout(o Options) []ShootoutRow {
	o = o.withDefaults()
	keys := cachedKeys("lognormal", o.N, o.Seed, func() data.Keys { return data.LognormalPaper(o.N, o.Seed) })
	probes := data.SampleExisting(keys, o.Probes, o.Seed+1)
	r := core.New(keys, core.DefaultConfig(len(keys)/2000))

	// Precompute identical windows for every probe. sigma approximates the
	// per-leaf standard error as a fixed share of the window (the leaf's
	// true σ is an internal; the quaternary probes only need its scale).
	wins := make([]win, len(probes))
	for i, k := range probes {
		pos, lo, hi := r.Predict(k)
		wins[i] = win{lo: lo, hi: hi, pred: pos, sigma: (hi-lo)/6 + 1}
	}

	n := len(keys)
	strategies := []struct {
		name string
		fn   func(k uint64, w win) int
	}{
		{"binary", func(k uint64, w win) int {
			return search.BoundedWithExpansion(keys, k, w.lo, w.hi)
		}},
		{"branchless", func(k uint64, w win) int {
			return search.BranchlessWithExpansion(keys, k, w.lo, w.hi)
		}},
		{"model-biased", func(k uint64, w win) int {
			pos := search.ModelBiasedBranchless(keys, k, w.lo, w.hi, w.pred)
			return verifyShootout(keys, k, pos, w.lo, w.hi, n)
		}},
		{"interpolated", func(k uint64, w win) int {
			pos := search.Interpolated(keys, k, w.lo, w.hi)
			return verifyShootout(keys, k, pos, w.lo, w.hi, n)
		}},
		{"quaternary", func(k uint64, w win) int {
			pos := search.BiasedQuaternary(keys, k, w.lo, w.hi, w.pred, w.sigma)
			return verifyShootout(keys, k, pos, w.lo, w.hi, n)
		}},
		{"exponential", func(k uint64, w win) int {
			return search.Exponential(keys, k, n, w.pred)
		}},
	}

	timeOne := func(fn func(k uint64, w win) int) time.Duration {
		var sink int
		for i, k := range probes { // warm-up
			sink += fn(k, wins[i])
		}
		start := time.Now()
		for rd := 0; rd < o.Rounds; rd++ {
			for i, k := range probes {
				sink += fn(k, wins[i])
			}
		}
		el := time.Since(start)
		_ = sink
		return el / time.Duration(o.Rounds*len(probes))
	}

	var rows []ShootoutRow
	var baseline time.Duration
	t := &bench.Table{
		Title:   fmt.Sprintf("Search shootout — identical windows, %d keys, %d probes (avg window %.1f)", n, len(probes), avgWindow(wins)),
		Headers: []string{"Strategy", "ns/probe", "Speedup"},
	}
	rep := &bench.Report{Experiment: "searchshootout", N: o.N, Probes: o.Probes}
	for _, s := range strategies {
		d := timeOne(s.fn)
		if s.name == "binary" {
			baseline = d
		}
		row := ShootoutRow{Strategy: s.name, PerProbe: d, SpeedUp: float64(baseline) / float64(d)}
		rows = append(rows, row)
		t.Add(s.name, ns(d), bench.Factor(row.SpeedUp))
		rep.Add(bench.ReportRow{
			Config:  s.name,
			NsPerOp: float64(d.Nanoseconds()),
			Extra:   map[string]float64{"speedup_vs_binary": row.SpeedUp},
		})
	}
	render(o, t)
	emitJSON(o, rep)
	return rows
}

// verifyShootout mirrors core's window-boundary verification so the
// window-restricted strategies are compared at equal (globally correct)
// semantics.
func verifyShootout(keys []uint64, key uint64, pos, lo, hi, n int) int {
	if pos == lo && lo > 0 && keys[lo-1] >= key {
		return search.BoundedWithExpansion(keys, key, 0, lo+1)
	}
	if pos == hi && hi < n {
		return search.BoundedWithExpansion(keys, key, hi-1, n)
	}
	return pos
}

// win is one probe's precomputed search window.
type win struct {
	lo, hi, pred, sigma int
}

func avgWindow(wins []win) float64 {
	if len(wins) == 0 {
		return 0
	}
	total := 0
	for _, w := range wins {
		total += w.hi - w.lo
	}
	return float64(total) / float64(len(wins))
}
