package experiments

import (
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"learnedindex/internal/bench"
	"learnedindex/internal/core"
	"learnedindex/internal/data"
	"learnedindex/internal/serve"
	"learnedindex/internal/storage"
)

// WritePathRow is one measured write-path configuration.
type WritePathRow struct {
	Name         string
	Wall         time.Duration
	PerOpNs      float64
	Throughput   float64 // inserts (or keys) per second
	Fsyncs       int
	KeysPerFsync float64
	Speedup      float64 // vs this phase's serial baseline
}

// WritePath measures the multi-core write path in three phases:
//
//  1. Group-commit WAL — N concurrent committers each durably inserting
//     keys one Commit at a time. The 1-committer row is the
//     one-fsync-per-Sync baseline; higher committer counts form commit
//     cohorts whose keys share a single WAL frame and a single fsync, so
//     synced-insert throughput rises with the cohort size while the
//     fsync count collapses (the Fsyncs / KeysPerFsync columns).
//  2. Parallel training — the same RMI trained with 1..GOMAXPROCS stage
//     workers (results are bit-identical; only wall-clock moves). On a
//     single-CPU host the rows document the overhead-free fallback.
//  3. Merge stall — every shard of an in-memory serving Store loaded
//     past its threshold, then Flush as the concurrent-drain barrier;
//     the stall is the wall time until all shards republished, with
//     drains running in parallel under the retrain semaphore.
func WritePath(o Options) []WritePathRow {
	o = o.withDefaults()
	var rows []WritePathRow
	rep := &bench.Report{Experiment: "writepath", N: o.N, Probes: o.Probes}

	// Phase 1: group-commit throughput vs committer count.
	commits := o.N / 500
	if commits < 200 {
		commits = 200
	}
	if commits > 4000 {
		commits = 4000
	}
	var baseline float64
	for _, c := range []int{1, 2, 4, 8} {
		dir, err := os.MkdirTemp(o.Dir, "lix-writepath-*")
		if err != nil {
			panic(fmt.Sprintf("writepath experiment: %v", err))
		}
		e, err := storage.Open(dir, storage.Options{NoCompactor: true})
		if err != nil {
			panic(fmt.Sprintf("writepath experiment: open: %v", err))
		}
		start := time.Now()
		var wg sync.WaitGroup
		for g := 0; g < c; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				base := uint64(g) << 32
				for i := g; i < commits; i += c {
					if err := e.Commit(base + uint64(i)); err != nil {
						panic(fmt.Sprintf("writepath experiment: commit: %v", err))
					}
				}
			}(g)
		}
		wg.Wait()
		wall := time.Since(start)
		st := e.Stats()
		e.Close()
		os.RemoveAll(dir)

		row := WritePathRow{
			Name:       fmt.Sprintf("commit/committers=%d", c),
			Wall:       wall,
			PerOpNs:    float64(wall.Nanoseconds()) / float64(commits),
			Throughput: float64(commits) / wall.Seconds(),
			Fsyncs:     st.WALSyncs,
		}
		if st.WALSyncs > 0 {
			row.KeysPerFsync = float64(commits) / float64(st.WALSyncs)
		}
		if c == 1 {
			baseline = row.Throughput
		}
		if baseline > 0 {
			row.Speedup = row.Throughput / baseline
		}
		rows = append(rows, row)
		rep.Add(bench.ReportRow{
			Config:  row.Name,
			NsPerOp: row.PerOpNs,
			Extra: map[string]float64{
				"inserts_per_sec": row.Throughput,
				"fsyncs":          float64(row.Fsyncs),
				"keys_per_fsync":  row.KeysPerFsync,
				"speedup_vs_c1":   row.Speedup,
			},
		})
	}

	// Phase 2: train time vs worker count (bit-identical results).
	keys := cachedKeys("lognormal", o.N, o.Seed, func() data.Keys { return data.LognormalPaper(o.N, o.Seed) })
	cfg := core.DefaultConfig(len(keys) / 2000)
	workerSet := []int{1, 2, 4}
	if p := runtime.GOMAXPROCS(0); p > 4 {
		workerSet = append(workerSet, p)
	}
	var trainBase time.Duration
	for _, w := range workerSet {
		best := time.Duration(0)
		for rd := 0; rd < o.Rounds; rd++ {
			start := time.Now()
			core.NewWithTrainWorkers(keys, cfg, w)
			if el := time.Since(start); best == 0 || el < best {
				best = el
			}
		}
		if w == 1 {
			trainBase = best
		}
		row := WritePathRow{
			Name:       fmt.Sprintf("train/workers=%d", w),
			Wall:       best,
			PerOpNs:    float64(best.Nanoseconds()) / float64(len(keys)),
			Throughput: float64(len(keys)) / best.Seconds(),
			Speedup:    float64(trainBase) / float64(best),
		}
		rows = append(rows, row)
		rep.Add(bench.ReportRow{
			Config:  row.Name,
			NsPerOp: row.PerOpNs,
			Extra: map[string]float64{
				"train_ms":      float64(best.Microseconds()) / 1000,
				"keys_per_sec":  row.Throughput,
				"speedup_vs_1w": row.Speedup,
			},
		})
	}

	// Phase 3: merge stall — Flush as the concurrent-drain barrier over
	// fully loaded shards.
	const nsh = 8
	st := serve.New(keys[:o.N/2], core.Config{}, serve.Options{Shards: nsh, MergeThreshold: 1 << 30})
	for _, k := range keys[o.N/2:] {
		st.Insert(k)
	}
	start := time.Now()
	st.Flush()
	stall := time.Since(start)
	merges := st.Merges()
	st.Close()
	row := WritePathRow{
		Name:       fmt.Sprintf("merge/flush-barrier shards=%d", nsh),
		Wall:       stall,
		PerOpNs:    float64(stall.Nanoseconds()) / float64(o.N-o.N/2),
		Throughput: float64(o.N-o.N/2) / stall.Seconds(),
	}
	rows = append(rows, row)
	rep.Add(bench.ReportRow{
		Config:  row.Name,
		NsPerOp: row.PerOpNs,
		Extra: map[string]float64{
			"stall_ms":     float64(stall.Microseconds()) / 1000,
			"shards":       nsh,
			"merges":       float64(merges),
			"keys_per_sec": row.Throughput,
		},
	})

	t := &bench.Table{
		Title: fmt.Sprintf("Write path: group commit, parallel training, concurrent merges (%d keys, %d commits, GOMAXPROCS=%d)",
			o.N, commits, runtime.GOMAXPROCS(0)),
		Headers: []string{"Config", "Wall (ms)", "ns/op", "ops/s", "Fsyncs", "Keys/fsync", "Speedup"},
	}
	for _, r := range rows {
		fsyncs, kpf := "-", "-"
		if r.Fsyncs > 0 {
			fsyncs = fmt.Sprintf("%d", r.Fsyncs)
			kpf = fmt.Sprintf("%.1f", r.KeysPerFsync)
		}
		speedup := "-"
		if r.Speedup > 0 {
			speedup = fmt.Sprintf("%.2fx", r.Speedup)
		}
		t.Add(r.Name,
			fmt.Sprintf("%.1f", float64(r.Wall.Microseconds())/1000),
			fmt.Sprintf("%.0f", r.PerOpNs),
			fmt.Sprintf("%.0f", r.Throughput),
			fsyncs, kpf, speedup)
	}
	render(o, t)
	emitJSON(o, rep)
	return rows
}
