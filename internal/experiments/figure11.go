package experiments

import (
	"fmt"
	"time"

	"learnedindex/internal/bench"
	"learnedindex/internal/core"
	"learnedindex/internal/data"
	"learnedindex/internal/hashmap"
)

// Figure11Row is one (dataset, slots%, hash) measurement of the Appendix B
// separate-chaining experiment.
type Figure11Row struct {
	Dataset    string
	SlotsPct   int
	HashType   string
	Lookup     time.Duration
	EmptyBytes int
	SpaceVsRnd float64 // model empty bytes / random empty bytes
}

// Figure11 reproduces "Model vs Random Hash-map" (Appendix B): a
// separate-chaining map with 20-byte records (24-byte slots), slot counts
// at 75%, 100% and 125% of the key count, learned vs Murmur-style hashing,
// reporting lookup time and the GB wasted in empty slots.
func Figure11(o Options) []Figure11Row {
	o = o.withDefaults()
	var rows []Figure11Row
	for _, ds := range IntegerDatasets(o.N, o.Seed) {
		keys := ds.Keys
		probes := data.SampleExisting(keys, o.Probes, o.Seed+1)
		leaves := len(keys) / 20
		if leaves < 16 {
			leaves = 16
		}
		hcfg := core.DefaultConfig(leaves)
		hcfg.Seed = o.Seed
		hrmi := core.New(keys, hcfg)
		for _, pct := range []int{75, 100, 125} {
			slots := len(keys) * pct / 100
			lh := core.NewLearnedHashFromRMI(hrmi, slots)

			var emptyRnd int
			for _, h := range []struct {
				name string
				fn   hashmap.HashFunc
			}{
				{"Model Hash", lh.Hash},
				{"Random Hash", hashmap.HashFunc(core.RandomHashFunc(slots))},
			} {
				m := hashmap.NewChained(slots, h.fn)
				for i, k := range keys {
					m.Insert(hashmap.Record{Key: k, Payload: k, Meta: uint32(i)})
				}
				lk := bench.TimeLookups(probes, o.Rounds, func(k uint64) int {
					r, _ := m.Lookup(k)
					return int(r.Meta)
				})
				row := Figure11Row{
					Dataset:    ds.Name,
					SlotsPct:   pct,
					HashType:   h.name,
					Lookup:     lk,
					EmptyBytes: m.EmptyBytes(),
				}
				if h.name == "Random Hash" {
					emptyRnd = m.EmptyBytes()
					if emptyRnd > 0 {
						// annotate the model row just added
						for i := len(rows) - 1; i >= 0; i-- {
							if rows[i].Dataset == ds.Name && rows[i].SlotsPct == pct && rows[i].HashType == "Model Hash" {
								rows[i].SpaceVsRnd = float64(rows[i].EmptyBytes) / float64(emptyRnd)
								break
							}
						}
					}
				}
				rows = append(rows, row)
			}
		}
	}
	if o.Out != nil {
		t := &bench.Table{
			Title:   fmt.Sprintf("Figure 11 (Appendix B) — Model vs Random Hash-map (N=%d, 20B records)", o.N),
			Headers: []string{"Dataset", "Slots", "Hash Type", "Time (ns)", "Empty (MB)", "Space"},
		}
		for _, r := range rows {
			space := ""
			if r.HashType == "Model Hash" {
				space = bench.Factor(r.SpaceVsRnd)
			}
			t.Add(r.Dataset, fmt.Sprintf("%d%%", r.SlotsPct), r.HashType,
				ns(r.Lookup), bench.MB(r.EmptyBytes), space)
		}
		render(o, t)
	}
	return rows
}
