//go:build race

package experiments

// raceEnabled reports that this binary was built with the race detector;
// timing-shape assertions are skipped there (instrumentation distorts the
// relative costs they check).
const raceEnabled = true
