package experiments

import (
	"fmt"
	"time"

	"learnedindex/internal/bench"
	"learnedindex/internal/btree"
	"learnedindex/internal/core"
	"learnedindex/internal/data"
)

// Figure6Row is one string-index configuration.
type Figure6Row struct {
	Config    string
	SizeBytes int
	SizeVsRef float64
	Lookup    time.Duration
	SpeedUp   float64
	Model     time.Duration
	ModelPct  float64
}

// Figure6 reproduces "String data: Learned Index vs B-Tree" (§3.7.2):
// string B-Trees at page sizes 32–256, learned indexes with 1 and 2 hidden
// layers, hybrid indexes at error thresholds 128 and 64, and the best
// configuration "Learned QS" (1 hidden layer + biased quaternary search).
// All RMI rows use the paper's 10k-models-on-10M-keys ratio (one leaf per
// ~1000 keys).
func Figure6(o Options) []Figure6Row {
	o = o.withDefaults()
	keys := data.StringKeys(cachedStrings("docids", o.NStr, o.Seed, func() []string { return data.DocIDs(o.NStr, o.Seed) }))
	probes := data.SampleExistingStrings(keys, o.Probes/4, o.Seed+1)

	ref := btree.New([]string(keys), 128)
	refLookup := bench.TimeStringLookups(probes, o.Rounds, ref.Lookup)
	refSize := ref.SizeBytes()

	leaves := o.NStr / 1000
	if leaves < 4 {
		leaves = 4
	}

	var rows []Figure6Row
	add := func(name string, size int, lk, model time.Duration) {
		rows = append(rows, Figure6Row{
			Config:    name,
			SizeBytes: size,
			SizeVsRef: float64(size) / float64(refSize),
			Lookup:    lk,
			SpeedUp:   float64(refLookup) / float64(lk),
			Model:     model,
			ModelPct:  100 * float64(model) / float64(lk),
		})
	}

	for _, ps := range []int{32, 64, 128, 256} {
		bt := btree.New([]string(keys), ps)
		lk := bench.TimeStringLookups(probes, o.Rounds, bt.Lookup)
		share := btreeShare(bt.Height(), ps)
		add(fmt.Sprintf("Btree page size: %d", ps), bt.SizeBytes(), lk,
			time.Duration(float64(lk)*share))
	}

	type rmiSpec struct {
		name string
		cfg  core.StringConfig
	}
	mk := func(hidden []int, thresh int, search core.SearchKind) core.StringConfig {
		cfg := core.DefaultStringConfig(leaves, hidden...)
		cfg.HybridThreshold = thresh
		cfg.Search = search
		cfg.Seed = o.Seed
		return cfg
	}
	specs := []rmiSpec{
		{"Learned Index, 1 hidden layer", mk([]int{16}, 0, core.SearchModelBiased)},
		{"Learned Index, 2 hidden layers", mk([]int{16, 16}, 0, core.SearchModelBiased)},
		{"Hybrid Index, t=128, 1 hidden layer", mk([]int{16}, 128, core.SearchModelBiased)},
		{"Hybrid Index, t=128, 2 hidden layers", mk([]int{16, 16}, 128, core.SearchModelBiased)},
		{"Hybrid Index, t= 64, 1 hidden layer", mk([]int{16}, 64, core.SearchModelBiased)},
		{"Hybrid Index, t= 64, 2 hidden layers", mk([]int{16, 16}, 64, core.SearchModelBiased)},
		{"Learned QS, 1 hidden layer", mk([]int{16}, 0, core.SearchQuaternary)},
	}
	for _, s := range specs {
		r := core.NewString(keys, s.cfg)
		lk := bench.TimeStringLookups(probes, o.Rounds, r.Lookup)
		model := bench.TimeStringLookups(probes, o.Rounds, func(k string) int {
			p, _, _ := r.Predict(k)
			return p
		})
		add(s.name, r.SizeBytes(), lk, model)
	}

	if o.Out != nil {
		t := &bench.Table{
			Title:   fmt.Sprintf("Figure 6 — String data: Learned Index vs B-Tree (N=%d doc-ids)", o.NStr),
			Headers: []string{"Config", "Size (MB)", "", "Lookup (ns)", "", "Model (ns)", ""},
		}
		for _, r := range rows {
			t.Add(r.Config, bench.MB(r.SizeBytes), bench.Factor(r.SizeVsRef),
				ns(r.Lookup), bench.Factor(r.SpeedUp), ns(r.Model), fmt.Sprintf("(%.0f%%)", r.ModelPct))
		}
		render(o, t)
	}
	return rows
}

// btreeShare approximates the traversal share of a B-Tree lookup from probe
// counts (levels × log2(fanout) vs the final in-page search).
func btreeShare(levels, pageSize int) float64 {
	trav := levels * log2i(pageSize)
	return float64(trav) / float64(trav+log2i(pageSize))
}
