package experiments

import (
	"fmt"
	"slices"
	"time"

	"learnedindex/internal/bench"
	"learnedindex/internal/core"
	"learnedindex/internal/data"
)

// CompiledRow is one read-path configuration's measurement.
type CompiledRow struct {
	Config   string
	PerKey   time.Duration
	SpeedUp  float64 // vs the interpreted equivalent
	Batched  bool
	MaxErr   int
	IdxBytes int
}

// Compiled measures the compiled read path (core.Plan) against the
// interpreted model-tree walk on the same trained RMI: single-key lookups,
// sorted-batch lookups, and the group-interleaved unsorted batch executor.
// This is the PR's pinned claim — model inference at the §3.2 cost (a
// handful of multiply-adds plus a tiny bounded search), with batching
// turning dependent cache misses into overlapping ones.
func Compiled(o Options) []CompiledRow {
	o = o.withDefaults()
	keys := cachedKeys("lognormal", o.N, o.Seed, func() data.Keys { return data.LognormalPaper(o.N, o.Seed) })
	probes := data.SampleExisting(keys, o.Probes, o.Seed+1)
	r := core.New(keys, core.DefaultConfig(len(keys)/2000))
	p := r.Plan()

	const batchSize = 512
	sorted := append([]uint64(nil), probes...)
	slices.Sort(sorted)
	out := make([]int, batchSize)

	// Single-key paths.
	interp := bench.TimeLookups(probes, o.Rounds, r.Lookup)
	compiled := bench.TimeLookups(probes, o.Rounds, p.Lookup)

	// Batched paths: one measurement op = one batchSize-probe batch; the
	// reported number is per key. Batches are pre-sorted slices of the
	// probe set, the shape serve's batch prologue produces.
	timeBatch := func(fn func(batch []uint64, out []int)) time.Duration {
		var total time.Duration
		keysPerRound := 0
		for rd := 0; rd <= o.Rounds; rd++ { // round 0 is warm-up
			keysPerRound = 0
			start := time.Now()
			for lo := 0; lo < len(sorted); lo += batchSize {
				hi := lo + batchSize
				if hi > len(sorted) {
					hi = len(sorted)
				}
				fn(sorted[lo:hi], out[:hi-lo])
				keysPerRound += hi - lo
			}
			if rd > 0 {
				total += time.Since(start)
			}
		}
		return total / time.Duration(o.Rounds*keysPerRound)
	}
	interpBatch := timeBatch(r.LookupBatchSorted)
	compiledBatch := timeBatch(p.LookupBatchSorted)
	compiledUnsorted := timeBatch(func(batch []uint64, out []int) { p.LookupBatch(batch, out) })

	rows := []CompiledRow{
		{Config: "interpreted single-key", PerKey: interp, SpeedUp: 1, MaxErr: r.MaxAbsErr(), IdxBytes: r.SizeBytes()},
		{Config: "compiled single-key", PerKey: compiled, SpeedUp: float64(interp) / float64(compiled), MaxErr: r.MaxAbsErr(), IdxBytes: r.SizeBytes()},
		{Config: "interpreted batch-sorted", PerKey: interpBatch, SpeedUp: 1, Batched: true, MaxErr: r.MaxAbsErr(), IdxBytes: r.SizeBytes()},
		{Config: "compiled batch-sorted", PerKey: compiledBatch, SpeedUp: float64(interpBatch) / float64(compiledBatch), Batched: true, MaxErr: r.MaxAbsErr(), IdxBytes: r.SizeBytes()},
		{Config: "compiled batch-interleaved", PerKey: compiledUnsorted, SpeedUp: float64(interp) / float64(compiledUnsorted), Batched: true, MaxErr: r.MaxAbsErr(), IdxBytes: r.SizeBytes()},
	}

	t := &bench.Table{
		Title:   fmt.Sprintf("Compiled vs interpreted read path — %d keys, %d probes, batch %d", len(keys), len(probes), batchSize),
		Headers: []string{"Config", "ns/key", "Speedup"},
	}
	rep := &bench.Report{Experiment: "compiled", N: o.N, Probes: o.Probes}
	for _, row := range rows {
		t.Add(row.Config, ns(row.PerKey), bench.Factor(row.SpeedUp))
		rep.Add(bench.ReportRow{
			Config:  row.Config,
			NsPerOp: float64(row.PerKey.Nanoseconds()),
			Bytes:   row.IdxBytes,
			MaxErr:  row.MaxErr,
			Extra:   map[string]float64{"speedup_vs_interpreted": row.SpeedUp},
		})
	}
	render(o, t)
	emitJSON(o, rep)
	return rows
}
