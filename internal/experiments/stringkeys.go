package experiments

import (
	"fmt"
	"sort"
	"time"

	"learnedindex/internal/bench"
	"learnedindex/internal/core"
	"learnedindex/internal/data"
	"learnedindex/internal/serve"
)

// StringKeysRow is one string-key measurement.
type StringKeysRow struct {
	Config  string
	PerOp   time.Duration
	PerKey  time.Duration
	SpeedUp float64
}

// StringKeys measures the string-keyed stack end to end on the doc-id
// dataset: the order-preserving key codec (8-byte prefixes + suffix
// dictionary) behind core.StringIndex and the string-keyed serve.Store,
// against the two baselines a Go service would otherwise reach for —
// map[string]struct{} for membership and a sorted slice with
// sort.SearchStrings for ordered lookups and scans.
//
//   - membership: map (the unordered champion — no scans, no order) vs
//     StringIndex.Contains vs Store.ContainsString;
//   - lower-bound lookup: sort.SearchStrings vs the codec index's
//     compiled prefix-plan Lookup, standalone and through the store;
//   - range scan throughput: slicing the sorted array (the streaming
//     floor) vs Store.ScanBatchString's loser-tree merge;
//   - learned COUNT: CountRangeString position arithmetic vs opening the
//     scan and counting.
//
// Emits BENCH_stringkeys.json via Options.JSONDir.
func StringKeys(o Options) []StringKeysRow {
	o = o.withDefaults()
	keys := cachedStrings("docids", o.NStr, o.Seed, func() []string { return data.DocIDs(o.NStr, o.Seed) })
	n := len(keys)
	nProbes := max(1, o.Probes/4)
	probes := data.SampleExistingStrings(data.StringKeys(keys), nProbes, o.Seed+1)

	idx := core.NewStringIndex(keys, core.Config{})
	st := serve.NewString(keys, core.Config{}, serve.Options{Shards: 4, MergeThreshold: 1 << 30})
	defer st.Close()
	set := make(map[string]struct{}, n)
	for _, k := range keys {
		set[k] = struct{}{}
	}

	var rows []StringKeysRow
	t := &bench.Table{
		Title:   fmt.Sprintf("String keys — %d doc-ids through the key codec", n),
		Headers: []string{"Config", "ns/op", "ns/key", "Speedup"},
	}
	rep := &bench.Report{Experiment: "stringkeys", N: o.NStr, Probes: nProbes}
	add := func(cfg string, perOp, perKey time.Duration, speedup float64, extra map[string]float64) {
		rows = append(rows, StringKeysRow{Config: cfg, PerOp: perOp, PerKey: perKey, SpeedUp: speedup})
		sp, pk := "-", "-"
		if speedup > 0 {
			sp = bench.Factor(speedup)
		}
		if perKey > 0 {
			pk = ns(perKey)
		}
		t.Add(cfg, ns(perOp), pk, sp)
		if extra == nil {
			extra = map[string]float64{}
		}
		if perKey > 0 {
			extra["ns_per_key"] = float64(perKey.Nanoseconds())
		}
		rep.Add(bench.ReportRow{Config: cfg, NsPerOp: float64(perOp.Nanoseconds()), Extra: extra})
	}

	timeOp := func(f func(k string)) time.Duration {
		for _, p := range probes { // warm-up
			f(p)
		}
		start := time.Now()
		for rd := 0; rd < o.Rounds; rd++ {
			for _, p := range probes {
				f(p)
			}
		}
		return time.Since(start) / time.Duration(o.Rounds*len(probes))
	}

	// --- Membership ----------------------------------------------------
	sink := 0
	dMap := timeOp(func(k string) {
		if _, ok := set[k]; ok {
			sink++
		}
	})
	dIdxC := timeOp(func(k string) {
		if idx.Contains(k) {
			sink++
		}
	})
	dStC := timeOp(func(k string) {
		if st.ContainsString(k) {
			sink++
		}
	})
	add("contains/map", dMap, 0, 1, nil)
	add("contains/stringindex", dIdxC, 0, float64(dMap)/float64(dIdxC), nil)
	add("contains/store", dStC, 0, float64(dMap)/float64(dStC), nil)

	// --- Lower-bound lookup --------------------------------------------
	// The ordered query a map cannot answer: position of the first key >=
	// probe. The sorted slice is the baseline; the codec index replaces the
	// full log2(n) string-compare descent with a compiled prefix-plan
	// inference plus a last-mile search.
	dSort := timeOp(func(k string) { sink += sort.SearchStrings(keys, k) })
	dIdx := timeOp(func(k string) { sink += idx.Lookup(k) })
	dSt := timeOp(func(k string) { sink += st.LookupString(k) })
	add("lookup/sorted-slice", dSort, 0, 1, nil)
	add("lookup/stringindex", dIdx, 0, float64(dSort)/float64(dIdx),
		map[string]float64{"speedup_vs_sorted_slice": float64(dSort) / float64(dIdx)})
	add("lookup/store", dSt, 0, float64(dSort)/float64(dSt), nil)
	_ = sink

	// --- Range scan throughput -----------------------------------------
	starts := data.SampleExistingStrings(data.StringKeys(keys), 64, o.Seed+7)
	width := min(4096, n/4)
	hiFor := func(lo string) string {
		p := sort.SearchStrings(keys, lo) + width
		if p >= n {
			return keys[n-1] + "\xff"
		}
		return keys[p]
	}
	var dCopy, dScan time.Duration
	var produced int
	buf := make([]string, 0, width+16)
	for rd := 0; rd < o.Rounds; rd++ {
		for _, lo := range starts {
			hi := hiFor(lo)
			start := time.Now()
			a := sort.SearchStrings(keys, lo)
			b := sort.SearchStrings(keys, hi)
			buf = append(buf[:0], keys[a:b]...)
			dCopy += time.Since(start)
			start = time.Now()
			buf = st.ScanBatchString(lo, hi, buf[:0])
			dScan += time.Since(start)
			produced += len(buf)
		}
	}
	ops := o.Rounds * len(starts)
	if produced > 0 {
		add("scan/sorted-slice-copy", dCopy/time.Duration(ops), dCopy/time.Duration(produced), 1, nil)
		add("scan/store", dScan/time.Duration(ops), dScan/time.Duration(produced),
			float64(dCopy)/float64(dScan),
			map[string]float64{"keys_per_sec": float64(produced) / dScan.Seconds()})
	}

	// --- Learned COUNT vs iterate-and-count ----------------------------
	var dIter, dCount time.Duration
	for rd := 0; rd < o.Rounds; rd++ {
		for _, lo := range starts {
			hi := hiFor(lo)
			start := time.Now()
			it := st.ScanString(lo, hi)
			c := 0
			for it.Next() {
				c++
			}
			it.Close()
			dIter += time.Since(start)
			start = time.Now()
			got := st.CountRangeString(lo, hi)
			dCount += time.Since(start)
			if got != c {
				panic(fmt.Sprintf("CountRangeString(%q,%q)=%d but scan counted %d", lo, hi, got, c))
			}
		}
	}
	add("count/iterate", dIter/time.Duration(ops), 0, 1, nil)
	add("count/learned", dCount/time.Duration(ops), 0, float64(dIter)/float64(dCount),
		map[string]float64{"speedup_vs_iterate": float64(dIter) / float64(dCount)})

	render(o, t)
	emitJSON(o, rep)
	return rows
}
