package experiments

import (
	"fmt"
	"time"

	"learnedindex/internal/bench"
	"learnedindex/internal/btree"
	"learnedindex/internal/core"
	"learnedindex/internal/data"
)

// Figure4Row is one measured configuration of the Figure 4 grid.
type Figure4Row struct {
	Dataset   string
	Config    string
	SizeBytes int
	SizeVsRef float64 // size / reference size
	Lookup    time.Duration
	SpeedUp   float64 // reference lookup / lookup
	Model     time.Duration
	ModelPct  float64
	MaxErr    int // learned rows only (0 for B-Trees)
}

// Figure4 reproduces "Learned Index vs B-Tree" (§3.7.1): B-Trees with page
// sizes 32–512 against 2-stage RMIs with four second-stage sizes, on the
// Map/Web/Lognormal datasets. Sizes and speedups are reported relative to
// the page-128 B-Tree, exactly as the paper's color-coded figure does.
//
// The paper's second-stage sizes (10k–200k models for 200M keys) are
// keys-per-leaf ratios {20000, 4000, 2000, 1000}; the same ratios are used
// at whatever N is configured.
func Figure4(o Options) []Figure4Row {
	o = o.withDefaults()
	var rows []Figure4Row
	pageSizes := []int{512, 256, 128, 64, 32}
	leafRatios := []struct {
		perLeaf int
		label   string
	}{
		{20000, "2nd stage models: 10k-eq"},
		{4000, "2nd stage models: 50k-eq"},
		{2000, "2nd stage models: 100k-eq"},
		{1000, "2nd stage models: 200k-eq"},
	}

	for _, ds := range IntegerDatasets(o.N, o.Seed) {
		keys := ds.Keys
		probes := data.SampleExisting(keys, o.Probes, o.Seed+1)

		// Reference: page-128 B-Tree ("it provides the best lookup
		// performance for B-Trees").
		ref := btree.New([]uint64(keys), 128)
		refLookup := bench.TimeLookups(probes, o.Rounds, ref.Lookup)
		refSize := ref.SizeBytes()

		for _, ps := range pageSizes {
			bt := btree.New([]uint64(keys), ps)
			lk := bench.TimeLookups(probes, o.Rounds, bt.Lookup)
			traversal := estimateBTreeTraversal(bt, probes, o.Rounds)
			rows = append(rows, Figure4Row{
				Dataset:   ds.Name,
				Config:    fmt.Sprintf("Btree page size: %d", ps),
				SizeBytes: bt.SizeBytes(),
				SizeVsRef: float64(bt.SizeBytes()) / float64(refSize),
				Lookup:    lk,
				SpeedUp:   float64(refLookup) / float64(lk),
				Model:     traversal,
				ModelPct:  100 * float64(traversal) / float64(lk),
			})
		}
		for _, lr := range leafRatios {
			leaves := o.N / lr.perLeaf
			if leaves < 4 {
				leaves = 4
			}
			// The paper tunes the top model by grid search per dataset
			// ("simple grid-search over neural nets with zero to two hidden
			// layers ... we found that a simple (0 hidden layers) to
			// semi-complex (2 hidden layers ...) models for the first stage
			// work the best", §3.7.1). Train the three families and keep the
			// fastest.
			r, topName := bestTop(keys, probes, leaves, o.Seed)
			lk := bench.TimeLookups(probes, o.Rounds, r.Lookup)
			model := bench.TimeLookups(probes, o.Rounds, func(k uint64) int {
				p, _, _ := r.Predict(k)
				return p
			})
			rows = append(rows, Figure4Row{
				Dataset:   ds.Name,
				Config:    fmt.Sprintf("Learned index, %s (%d, top=%s)", lr.label, leaves, topName),
				SizeBytes: r.SizeBytes(),
				SizeVsRef: float64(r.SizeBytes()) / float64(refSize),
				Lookup:    lk,
				SpeedUp:   float64(refLookup) / float64(lk),
				Model:     model,
				ModelPct:  100 * float64(model) / float64(lk),
				MaxErr:    r.MaxAbsErr(),
			})
		}
	}

	if o.Out != nil {
		renderFigure4(o, rows)
	}
	rep := &bench.Report{Experiment: "figure4", N: o.N, Probes: o.Probes}
	for _, r := range rows {
		rep.Add(bench.ReportRow{
			Config:  r.Dataset + " / " + r.Config,
			NsPerOp: float64(r.Lookup.Nanoseconds()),
			Bytes:   r.SizeBytes,
			MaxErr:  r.MaxErr,
			Extra: map[string]float64{
				"speedup_vs_btree128": r.SpeedUp,
				"model_ns":            float64(r.Model.Nanoseconds()),
			},
		})
	}
	emitJSON(o, rep)
	return rows
}

// estimateBTreeTraversal times the index-levels-only walk (no in-page
// search) to fill Figure 4's "Model (ns)" column for B-Trees.
func estimateBTreeTraversal(bt *btree.Index[uint64], probes []uint64, rounds int) time.Duration {
	full := bench.TimeLookups(probes, rounds, bt.Lookup)
	// In-page binary search over `pageSize` keys costs ~log2(ps) probes of
	// the same kind as one level's search; approximate the traversal as
	// full time scaled by levels/(levels + 1) in probe counts.
	// A direct measurement: lookup with page size 2 (pure traversal) is a
	// different tree; instead we report the share analytically from probe
	// counts, which matches the paper's ~50-70% shares.
	levels := bt.Height()
	psProbes := log2i(bt.PageSize())
	fanProbes := levels * log2i(bt.PageSize()) // fanout == pageSize by default
	share := float64(fanProbes) / float64(fanProbes+psProbes)
	return time.Duration(float64(full) * share)
}

func log2i(v int) int {
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	if n == 0 {
		return 1
	}
	return n
}

func renderFigure4(o Options, rows []Figure4Row) {
	cur := ""
	var t *bench.Table
	flush := func() {
		if t != nil {
			render(o, t)
		}
	}
	for _, r := range rows {
		if r.Dataset != cur {
			flush()
			cur = r.Dataset
			t = &bench.Table{
				Title:   fmt.Sprintf("Figure 4 — Learned Index vs B-Tree: %s (N=%d)", cur, o.N),
				Headers: []string{"Config", "Size (MB)", "", "Lookup (ns)", "", "Model (ns)", ""},
			}
		}
		t.Add(r.Config,
			bench.MB(r.SizeBytes), bench.Factor(r.SizeVsRef),
			ns(r.Lookup), bench.Factor(r.SpeedUp),
			ns(r.Model), fmt.Sprintf("(%.1f%%)", r.ModelPct))
	}
	flush()
}

// bestTop trains the paper's stage-1 model families at the given leaf
// count and returns the one with the fastest measured lookup — the LIF
// tuning loop of §3.1/§3.7.1 in miniature.
func bestTop(keys data.Keys, probes []uint64, leaves int, seed int64) (*core.RMI, string) {
	sub := probes
	if len(sub) > 20_000 {
		sub = sub[:20_000]
	}
	var best *core.RMI
	bestName := ""
	bestTime := time.Duration(1<<62 - 1)
	for _, spec := range []struct {
		name   string
		top    core.TopKind
		hidden []int
	}{
		{"linear", core.TopLinear, nil},
		{"multivariate", core.TopMultivariate, nil},
		{"nn[16,16]", core.TopNN, []int{16, 16}},
	} {
		cfg := core.DefaultConfig(leaves)
		cfg.Top = spec.top
		cfg.Hidden = spec.hidden
		cfg.Seed = seed
		r := core.New(keys, cfg)
		t := bench.TimeLookups(sub, 1, r.Lookup)
		if t < bestTime {
			best, bestName, bestTime = r, spec.name, t
		}
	}
	return best, bestName
}
