package experiments

import (
	"fmt"
	"os"
	"time"

	"learnedindex/internal/bench"
	"learnedindex/internal/core"
	"learnedindex/internal/data"
	"learnedindex/internal/serve"
)

// StorageRow is one measured storage configuration.
type StorageRow struct {
	Name          string
	BuildOrOpen   time.Duration // training/ingest time, or cold-open time
	HitNs         float64       // per-lookup latency on present keys
	MissNs        float64       // per-lookup latency on absent keys
	Segments      int
	DiskBytes     int64
	ModelsLoaded  int // RMIs deserialized from segment files
	ModelsTrained int // RMIs trained in this phase
}

// Storage measures the persistent learned-segment engine (internal/storage
// behind serve.Options.Dir) against the in-memory RMI baseline, in three
// phases: (1) the baseline monolithic RMI, trained and probed in memory;
// (2) ingest — keys inserted in batches through the WAL, flushed into
// segment files, compacted, and probed from the live store; (3) cold open
// — the directory reopened from scratch, where every per-segment RMI and
// Bloom filter is deserialized (zero models trained) and lookups are
// served straight off the recovered state. Misses exercise the Bloom
// filters' negative-lookup pruning (§5 applied as segment skipping).
func Storage(o Options) []StorageRow {
	o = o.withDefaults()
	keys := cachedKeys("maps", o.N, o.Seed, func() data.Keys { return data.Maps(o.N, o.Seed) })
	hits := data.SampleExisting(keys, o.Probes, o.Seed+1)
	misses := data.SampleMissing(keys, o.Probes, o.Seed+2)

	dir, err := os.MkdirTemp(o.Dir, "lix-storage-*")
	if err != nil {
		panic(fmt.Sprintf("storage experiment: %v", err))
	}
	defer os.RemoveAll(dir)

	var rows []StorageRow

	// Phase 1: in-memory baseline.
	start := time.Now()
	r := core.New(keys, core.DefaultConfig(len(keys)/2000))
	trainTime := time.Since(start)
	rows = append(rows, StorageRow{
		Name:          "in-memory RMI",
		BuildOrOpen:   trainTime,
		HitNs:         float64(bench.TimeLookups(hits, o.Rounds, r.Lookup).Nanoseconds()),
		MissNs:        float64(bench.TimeLookups(misses, o.Rounds, r.Lookup).Nanoseconds()),
		ModelsTrained: 1,
	})

	// Phase 2: ingest through the WAL in batches so several segments (and
	// at least one compaction tier) exist, then probe the live store.
	start = time.Now()
	st, err := serve.Open(nil, core.Config{}, serve.Options{Dir: dir, MergeThreshold: 1 << 30})
	if err != nil {
		panic(fmt.Sprintf("storage experiment: open: %v", err))
	}
	const batches = 8
	for b := 0; b < batches; b++ {
		lo, hi := b*len(keys)/batches, (b+1)*len(keys)/batches
		for _, k := range keys[lo:hi] {
			st.Insert(k)
		}
		if err := st.Sync(); err != nil {
			panic(fmt.Sprintf("storage experiment: sync: %v", err))
		}
		st.Flush()
	}
	ingestTime := time.Since(start)
	stats, _ := st.StorageStats()
	rows = append(rows, StorageRow{
		Name:          "engine ingest (WAL+flush)",
		BuildOrOpen:   ingestTime,
		HitNs:         float64(bench.TimeLookups(hits, o.Rounds, st.Lookup).Nanoseconds()),
		MissNs:        float64(bench.TimeLookups(misses, o.Rounds, containsAsInt(st)).Nanoseconds()),
		Segments:      stats.Segments,
		DiskBytes:     stats.DiskBytes,
		ModelsLoaded:  stats.ModelsLoaded,
		ModelsTrained: stats.ModelsTrained,
	})
	if err := st.Close(); err != nil {
		panic(fmt.Sprintf("storage experiment: close: %v", err))
	}

	// Phase 3: cold open — deserialized models only.
	start = time.Now()
	cold, err := serve.Open(nil, core.Config{}, serve.Options{Dir: dir})
	if err != nil {
		panic(fmt.Sprintf("storage experiment: cold open: %v", err))
	}
	defer cold.Close()
	openTime := time.Since(start)
	if cold.Len() != len(keys) {
		panic(fmt.Sprintf("storage experiment: cold open lost keys: %d != %d", cold.Len(), len(keys)))
	}
	for _, k := range hits[:min(len(hits), 200)] {
		if !cold.Contains(k) {
			panic(fmt.Sprintf("storage experiment: cold open lost key %d", k))
		}
	}
	cstats, _ := cold.StorageStats()
	rows = append(rows, StorageRow{
		Name:          "engine cold open",
		BuildOrOpen:   openTime,
		HitNs:         float64(bench.TimeLookups(hits, o.Rounds, cold.Lookup).Nanoseconds()),
		MissNs:        float64(bench.TimeLookups(misses, o.Rounds, containsAsInt(cold)).Nanoseconds()),
		Segments:      cstats.Segments,
		DiskBytes:     cstats.DiskBytes,
		ModelsLoaded:  cstats.ModelsLoaded,
		ModelsTrained: cstats.ModelsTrained,
	})

	t := &bench.Table{
		Title: fmt.Sprintf("Storage engine: durability & cold-open serving (%d keys, %d probes, dir %s)",
			len(keys), len(hits), dir),
		Headers: []string{"Config", "Build/Open (ms)", "Hit (ns)", "Miss (ns)", "Segments", "Disk (MB)", "Models loaded/trained"},
	}
	for _, row := range rows {
		t.Add(row.Name,
			fmt.Sprintf("%.1f", float64(row.BuildOrOpen.Microseconds())/1000),
			fmt.Sprintf("%.0f", row.HitNs),
			fmt.Sprintf("%.0f", row.MissNs),
			fmt.Sprintf("%d", row.Segments),
			bench.MB(int(row.DiskBytes)),
			fmt.Sprintf("%d/%d", row.ModelsLoaded, row.ModelsTrained))
	}
	render(o, t)
	if o.Out != nil {
		fmt.Fprintf(o.Out, "cold open served %d keys from %d deserialized segment models with 0 retrains (misses pruned by per-segment Bloom filters)\n",
			cold.Len(), cstats.ModelsLoaded)
	}
	return rows
}

// containsAsInt adapts Store.Contains to the bench.TimeLookups signature.
func containsAsInt(st *serve.Store) func(uint64) int {
	return func(k uint64) int {
		if st.Contains(k) {
			return 1
		}
		return 0
	}
}
