package experiments

import (
	"fmt"
	"os"
	"time"

	"learnedindex/internal/bench"
	"learnedindex/internal/core"
	"learnedindex/internal/data"
	"learnedindex/internal/obs"
	"learnedindex/internal/serve"
)

// ObsRow is one measured metrics-overhead configuration.
type ObsRow struct {
	Name    string
	PerOpNs float64
	Ops     int
}

// obsBuildTag names the build this binary carries in its config strings:
// the metrics plane is compiled in ("metrics=on") or stubbed out by
// -tags noobs ("metrics=off").
func obsBuildTag() string {
	if obs.Enabled {
		return "metrics=on"
	}
	return "metrics=off"
}

// Obs measures what the always-on metrics plane costs on the hot
// serving surfaces: single-key lookup, the 16-probe batch pipeline
// (core.Plan.LookupBatch — the gate row — plus the same batches through
// the serve layer), the streaming scan's per-key Next, and the
// group-committed durable insert.
//
// One run measures one build. Run the default build and a -tags noobs
// build into separate -jsondir directories and merge them with
// `lix-bench bestof`: the build is baked into every config name, so the
// merged BENCH_obs.json carries both sides and the on/off delta per
// surface IS the plane's overhead. The repo's gate is the batch row —
// the instrumented build must stay within 3% of noobs ns/op there.
func Obs(o Options) []ObsRow {
	o = o.withDefaults()
	tag := obsBuildTag()
	var rows []ObsRow
	rep := &bench.Report{Experiment: "obs", N: o.N, Probes: o.Probes}

	keys := cachedKeys("lognormal", o.N, o.Seed, func() data.Keys { return data.LognormalPaper(o.N, o.Seed) })
	st := serve.New(keys, core.Config{}, serve.Options{Shards: 8, MergeThreshold: 1 << 30})
	defer st.Close()

	// Probe stream: the key set walked with a Fibonacci stride, so probes
	// hit every shard without the branch predictor learning a direction.
	probes := make([]uint64, o.Probes)
	for i := range probes {
		probes[i] = keys[(uint64(i)*11400714819323198485)%uint64(len(keys))]
	}

	add := func(name string, perOp float64, ops int) {
		rows = append(rows, ObsRow{Name: name, PerOpNs: perOp, Ops: ops})
		rep.Add(bench.ReportRow{Config: name, NsPerOp: perOp})
	}

	// Surface 1: single-key lookups.
	var sink int
	best := time.Duration(0)
	for rd := 0; rd < o.Rounds; rd++ {
		start := time.Now()
		for _, k := range probes {
			sink += st.Lookup(k)
		}
		if el := time.Since(start); best == 0 || el < best {
			best = el
		}
	}
	add("lookup/"+tag, float64(best.Nanoseconds())/float64(len(probes)), len(probes))

	// Surface 2: 16-probe batches through core.Plan.LookupBatch — the
	// group-interleaved pipeline the <3% overhead gate names, driven
	// directly so the measurement isolates the instrumented hot loop from
	// serve-layer shard grouping. Per-op is per probe, not per batch.
	plan := core.New(keys, core.DefaultConfig(o.N/2000)).Plan()
	out16 := make([]int, 16)
	best = 0
	nb := len(probes) / 16 * 16
	for rd := 0; rd < o.Rounds; rd++ {
		start := time.Now()
		for i := 0; i < nb; i += 16 {
			plan.LookupBatch(probes[i:i+16], out16)
			sink += out16[0]
		}
		if el := time.Since(start); best == 0 || el < best {
			best = el
		}
	}
	add("batch16/"+tag, float64(best.Nanoseconds())/float64(nb), nb)

	// Surface 2b: the same 16-probe batches through Store.LookupBatch, so
	// the serve layer's own per-batch accounting (counter, size histogram,
	// sampled timing) shows up as the delta between this row and batch16.
	best = 0
	for rd := 0; rd < o.Rounds; rd++ {
		start := time.Now()
		for i := 0; i < nb; i += 16 {
			sink += len(st.LookupBatch(probes[i : i+16]))
		}
		if el := time.Since(start); best == 0 || el < best {
			best = el
		}
	}
	add("serve-batch16/"+tag, float64(best.Nanoseconds())/float64(nb), nb)

	// Surface 3: streaming scan Next over ~N/4 keys.
	lo, hi := keys[o.N/4], keys[o.N/2]
	best = 0
	scanned := 0
	for rd := 0; rd < o.Rounds; rd++ {
		start := time.Now()
		it := st.Scan(lo, hi)
		n := 0
		for it.Next() {
			n++
		}
		it.Close()
		scanned = n
		if el := time.Since(start); best == 0 || el < best {
			best = el
		}
	}
	if scanned == 0 {
		scanned = 1
	}
	add("scan-next/"+tag, float64(best.Nanoseconds())/float64(scanned), scanned)

	// Surface 4: group-committed durable inserts (8-key batches against a
	// persistent store; fsync-bound, so one round tells the story).
	commits := o.Probes / 1000
	if commits < 64 {
		commits = 64
	}
	if commits > 512 {
		commits = 512
	}
	dir, err := os.MkdirTemp(o.Dir, "lix-obs-*")
	if err != nil {
		panic(fmt.Sprintf("obs experiment: %v", err))
	}
	ps, err := serve.Open(nil, core.Config{}, serve.Options{Dir: dir, MergeThreshold: 1 << 30})
	if err != nil {
		panic(fmt.Sprintf("obs experiment: open: %v", err))
	}
	batch := make([]uint64, 8)
	start := time.Now()
	for c := 0; c < commits; c++ {
		for j := range batch {
			batch[j] = uint64(c)*8 + uint64(j)
		}
		if err := ps.InsertDurable(batch...); err != nil {
			panic(fmt.Sprintf("obs experiment: commit: %v", err))
		}
	}
	wall := time.Since(start)
	ps.Close()
	os.RemoveAll(dir)
	add("durable-commit/"+tag, float64(wall.Nanoseconds())/float64(commits), commits)

	t := &bench.Table{
		Title: fmt.Sprintf("Metrics-plane overhead, this build %s (%d keys, %d probes; merge an on and a noobs run with `lix-bench bestof` to see the delta)",
			tag, o.N, o.Probes),
		Headers: []string{"Config", "ns/op", "ops"},
	}
	for _, r := range rows {
		t.Add(r.Name, fmt.Sprintf("%.1f", r.PerOpNs), fmt.Sprintf("%d", r.Ops))
	}
	render(o, t)
	emitJSON(o, rep)
	_ = sink
	return rows
}
