package experiments

import (
	"fmt"
	"time"

	"learnedindex/internal/bench"
	"learnedindex/internal/core"
	"learnedindex/internal/data"
	"learnedindex/internal/scan"
	"learnedindex/internal/serve"
)

// ScanRow is one scan-experiment measurement.
type ScanRow struct {
	Config  string
	PerOp   time.Duration
	PerKey  time.Duration
	Keys    int
	SpeedUp float64
}

// Scan measures the streaming range-scan subsystem on a lognormal key set:
//
//   - end-to-end Store.ScanBatch throughput across range widths (the
//     loser-tree merge over shard snapshots plus a live delta layer);
//   - model-biased seek vs binary-search entry into the full 1M-key array,
//     isolating what the compiled plan buys a scan's Seek — the paper's
//     "the model predicts the position, the system scans from there"
//     against the classic log2(n) lower-bound descent;
//   - learned COUNT (CountRange position arithmetic) vs opening a scan and
//     counting, across the same widths.
//
// Emits BENCH_scan.json via Options.JSONDir.
func Scan(o Options) []ScanRow {
	o = o.withDefaults()
	keys := cachedKeys("lognormal", o.N, o.Seed, func() data.Keys { return data.LognormalPaper(o.N, o.Seed) })
	n := len(keys)

	st := serve.New(keys, core.Config{}, serve.Options{Shards: 8, MergeThreshold: 1 << 30})
	defer st.Close()
	// A live delta layer sized like a store on the default merge threshold:
	// buffered inserts every scan must capture, sort, and merge in.
	nDelta := min(4096, n/16+1)
	rngKeys := data.SampleExisting(keys, nDelta, o.Seed+3)
	for _, k := range rngKeys {
		st.Insert(k + 1)
	}

	var rows []ScanRow
	t := &bench.Table{
		Title:   fmt.Sprintf("Range scans — %d keys + %d buffered, loser-tree merge", n, len(rngKeys)),
		Headers: []string{"Config", "ns/op", "ns/key", "Speedup"},
	}
	rep := &bench.Report{Experiment: "scan", N: o.N, Probes: o.Probes}
	add := func(cfg string, perOp, perKey time.Duration, nkeys int, speedup float64, extra map[string]float64) {
		rows = append(rows, ScanRow{Config: cfg, PerOp: perOp, PerKey: perKey, Keys: nkeys, SpeedUp: speedup})
		sp := "-"
		if speedup > 0 {
			sp = bench.Factor(speedup)
		}
		pk := "-"
		if perKey > 0 {
			pk = ns(perKey)
		}
		t.Add(cfg, ns(perOp), pk, sp)
		if extra == nil {
			extra = map[string]float64{}
		}
		if perKey > 0 {
			extra["ns_per_key"] = float64(perKey.Nanoseconds())
		}
		rep.Add(bench.ReportRow{Config: cfg, NsPerOp: float64(perOp.Nanoseconds()), Extra: extra})
	}

	// Random range starts, fixed widths in key positions. Reused across the
	// throughput and count sections so "learned count" races the exact scan
	// it replaces.
	starts := data.SampleExisting(keys, 64, o.Seed+7)

	// --- ScanBatch throughput vs range width ---------------------------
	widths := []int{1_000, 32_000, 256_000}
	buf := make([]uint64, 0, 300_000)
	for _, w := range widths {
		if w >= n {
			continue
		}
		var total time.Duration
		var produced int
		for rd := 0; rd < o.Rounds; rd++ {
			for _, lo := range starts {
				hi := hiBound(keys, lo, w)
				start := time.Now()
				buf = st.ScanBatch(lo, hi, buf[:0])
				total += time.Since(start)
				produced += len(buf)
			}
		}
		ops := o.Rounds * len(starts)
		perOp := total / time.Duration(ops)
		perKey := time.Duration(0)
		if produced > 0 {
			perKey = total / time.Duration(produced)
		}
		add(fmt.Sprintf("scan/width=%d", w), perOp, perKey, produced/ops, 0,
			map[string]float64{"keys_per_sec": float64(produced) / total.Seconds()})
	}

	// --- Entry: model-biased seek vs binary search ---------------------
	// The isolated cost of entering the 1M-key array at a range start —
	// cursor.Seek with the compiled plan vs the classic binary lower-bound
	// descent, on identical random probes (the searchshootout discipline:
	// same work, only the strategy differs). This is the cost every scan
	// pays once per source at open and on every Seek.
	plan := core.New(keys, core.DefaultConfig(n/2000)).Plan()
	probes := data.SampleExisting(keys, o.Probes, o.Seed+5)
	timeEntry := func(pos scan.Positioner[uint64]) time.Duration {
		var cur scan.KeysCursor[uint64]
		cur.Reset(keys, pos)
		sink := 0
		for _, p := range probes { // warm-up
			if cur.Seek(p) {
				sink++
			}
		}
		start := time.Now()
		for rd := 0; rd < o.Rounds; rd++ {
			for _, p := range probes {
				if cur.Seek(p) {
					sink++
				}
			}
		}
		el := time.Since(start)
		_ = sink
		return el / time.Duration(o.Rounds*len(probes))
	}
	dBin := timeEntry(nil)
	dModel := timeEntry(plan)
	add("entry/binary-seek", dBin, 0, 1, 1, nil)
	add("entry/model-biased-seek", dModel, 0, 1,
		float64(dBin)/float64(dModel),
		map[string]float64{"speedup_vs_binary": float64(dBin) / float64(dModel)})

	// --- Learned COUNT vs iterate-and-count ----------------------------
	for _, w := range widths {
		if w >= n {
			continue
		}
		var dIter, dCount time.Duration
		sink := 0
		for rd := 0; rd < o.Rounds; rd++ {
			for _, lo := range starts {
				hi := hiBound(keys, lo, w)
				start := time.Now()
				it := st.Scan(lo, hi)
				c := 0
				for it.Next() {
					c++
				}
				it.Close()
				dIter += time.Since(start)
				start = time.Now()
				got := st.CountRange(lo, hi)
				dCount += time.Since(start)
				if got != c {
					panic(fmt.Sprintf("CountRange(%d,%d)=%d but scan counted %d", lo, hi, got, c))
				}
				sink += got
			}
		}
		_ = sink
		ops := time.Duration(o.Rounds * len(starts))
		add(fmt.Sprintf("count/iterate/width=%d", w), dIter/ops, 0, w, 1, nil)
		add(fmt.Sprintf("count/learned/width=%d", w), dCount/ops, 0, w,
			float64(dIter)/float64(dCount),
			map[string]float64{"speedup_vs_iterate": float64(dIter) / float64(dCount)})
	}

	render(o, t)
	emitJSON(o, rep)
	return rows
}

// hiBound returns the key width positions past lo's lower bound (clamped),
// so a [lo, hi) scan covers ~width stored keys.
func hiBound(keys data.Keys, lo uint64, width int) uint64 {
	p := keys.LowerBound(lo) + width
	if p >= len(keys) {
		return keys[len(keys)-1] + 1
	}
	return keys[p]
}
