package experiments

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"learnedindex/internal/bench"
	"learnedindex/internal/core"
	"learnedindex/internal/data"
	"learnedindex/internal/serve"
)

// ServeRow is one measured serving configuration.
type ServeRow struct {
	Shards     int
	Goroutines int
	BatchSize  int
	MLookupsPS float64 // million lookups per second
	SpeedUp    float64 // vs single-threaded per-key Lookup on one RMI
}

// Serve measures the concurrent serving layer (internal/serve) against the
// paper-style single-threaded baseline: per-key RMI Lookup on one
// goroutine vs sharded LookupBatch fanned across goroutines. This is the
// ROADMAP's sharding+batching+concurrency axis — the table reports million
// lookups/second and the speedup over the baseline for each (shards,
// goroutines) point.
func Serve(o Options) []ServeRow {
	o = o.withDefaults()
	keys := cachedKeys("maps", o.N, o.Seed, func() data.Keys { return data.Maps(o.N, o.Seed) })
	probes := data.SampleExisting(keys, o.Probes, o.Seed+1)
	const batchSize = 512

	// Baseline: single goroutine, per-key lookups over one monolithic RMI.
	r := core.New(keys, core.DefaultConfig(len(keys)/2000))
	perLookup := bench.TimeLookups(probes, o.Rounds, r.Lookup) // mean latency
	basePS := 1 / perLookup.Seconds()

	t := &bench.Table{
		Title: fmt.Sprintf("Serving layer: sharded LookupBatch vs single-threaded Lookup (%d keys, %d probes, batch %d, GOMAXPROCS %d)",
			len(keys), len(probes), batchSize, runtime.GOMAXPROCS(0)),
		Headers: []string{"Shards", "Goroutines", "Mlookups/s", "Speedup"},
	}
	t.Add("1 (RMI, per-key)", "1", fmt.Sprintf("%.2f", basePS/1e6), "(1.00x)")

	var rows []ServeRow
	for _, nsh := range []int{1, 4, 8, 16} {
		st := serve.New(keys, core.Config{}, serve.Options{Shards: nsh})
		for _, gor := range []int{1, 2, 4, 8} {
			elapsed := timeBatches(st, probes, batchSize, gor, o.Rounds)
			ps := float64(len(probes)) / elapsed.Seconds()
			row := ServeRow{
				Shards:     nsh,
				Goroutines: gor,
				BatchSize:  batchSize,
				MLookupsPS: ps / 1e6,
				SpeedUp:    ps / basePS,
			}
			rows = append(rows, row)
			t.Add(fmt.Sprintf("%d", nsh), fmt.Sprintf("%d", gor),
				fmt.Sprintf("%.2f", row.MLookupsPS), bench.Factor(row.SpeedUp))
		}
		st.Close()
	}
	render(o, t)
	if o.Out != nil && runtime.GOMAXPROCS(0) == 1 {
		fmt.Fprintln(o.Out, "note: GOMAXPROCS=1 — goroutine rows cannot show parallel speedup on this host; run on a multi-core machine to see the concurrency axis.")
	}
	rep := &bench.Report{Experiment: "serve", N: o.N, Probes: o.Probes}
	rep.Add(bench.ReportRow{Config: "single-thread per-key RMI", NsPerOp: float64(perLookup.Nanoseconds())})
	for _, r := range rows {
		rep.Add(bench.ReportRow{
			Config:  fmt.Sprintf("shards=%d goroutines=%d batch=%d", r.Shards, r.Goroutines, r.BatchSize),
			NsPerOp: 1e3 / r.MLookupsPS,
			Extra:   map[string]float64{"speedup_vs_single": r.SpeedUp, "mlookups_per_sec": r.MLookupsPS},
		})
	}
	emitJSON(o, rep)
	return rows
}

// timeBatches drives every probe through Store.LookupBatch in batches
// pulled from a shared atomic cursor by gor goroutines, and returns the
// best wall time over rounds.
func timeBatches(st *serve.Store, probes []uint64, batchSize, gor, rounds int) time.Duration {
	if rounds < 1 {
		rounds = 1
	}
	best := time.Duration(1<<63 - 1)
	sink := int64(0)
	for r := 0; r < rounds; r++ {
		var cursor atomic.Int64
		var wg sync.WaitGroup
		start := time.Now()
		for g := 0; g < gor; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				local := 0
				for {
					lo := int(cursor.Add(int64(batchSize))) - batchSize
					if lo >= len(probes) {
						break
					}
					hi := lo + batchSize
					if hi > len(probes) {
						hi = len(probes)
					}
					for _, p := range st.LookupBatch(probes[lo:hi]) {
						local += p
					}
				}
				atomic.AddInt64(&sink, int64(local))
			}()
		}
		wg.Wait()
		if d := time.Since(start); d < best {
			best = d
		}
	}
	_ = sink
	return best
}
