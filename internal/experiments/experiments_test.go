package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"learnedindex/internal/obs"
)

// tiny returns laptop-CI-sized options with table rendering captured.
func tiny() (Options, *bytes.Buffer) {
	var buf bytes.Buffer
	return Options{
		N: 200_000, NStr: 30_000, NUrl: 10_000,
		Probes: 5_000, Rounds: 1, Seed: 1, Out: &buf,
	}, &buf
}

func TestFigure4ShapeHolds(t *testing.T) {
	o, buf := tiny()
	rows := Figure4(o)
	if len(rows) != 3*(5+4) {
		t.Fatalf("got %d rows, want 27", len(rows))
	}
	// The headline claim per dataset, relaxed for smoke-test scale (the
	// NN top's fixed ~300ns cost is amortized only at bench scale where
	// B-Tree traversals start missing cache): at least one learned
	// configuration within 2x of the page-128 B-Tree while >4x smaller.
	perDataset := map[string]bool{}
	var refSize = map[string]int{}
	for _, r := range rows {
		if strings.Contains(r.Config, "page size: 128") {
			refSize[r.Dataset] = r.SizeBytes
		}
	}
	for _, r := range rows {
		if !strings.Contains(r.Config, "Learned") {
			continue
		}
		if r.SpeedUp >= 0.5 && r.SizeBytes*4 < refSize[r.Dataset] {
			perDataset[r.Dataset] = true
		}
	}
	for _, ds := range []string{"Map Data", "Web Data", "Log-Normal"} {
		if !perDataset[ds] {
			t.Errorf("%s: no learned config was competitive in speed and >4x smaller", ds)
		}
	}
	if !strings.Contains(buf.String(), "Figure 4") {
		t.Fatal("table not rendered")
	}
}

func TestFigure5ShapeHolds(t *testing.T) {
	o, _ := tiny()
	rows := Figure5(o)
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	byName := map[string]Figure5Row{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	fastRow := byName["FAST"]
	learned := byName["Multivariate Learned Index"]
	// FAST pays the power-of-two padding: it must be much larger than the
	// learned index (the paper's 1024MB vs 1.5MB contrast).
	if fastRow.SizeBytes < learned.SizeBytes*10 {
		t.Errorf("FAST (%d B) should dwarf the learned index (%d B)", fastRow.SizeBytes, learned.SizeBytes)
	}
}

func TestFigure6Runs(t *testing.T) {
	o, buf := tiny()
	rows := Figure6(o)
	if len(rows) != 4+7 {
		t.Fatalf("got %d rows", len(rows))
	}
	// Learned string indexes must undercut the page-32 string B-Tree's
	// footprint (at smoke scale the fixed NN weights are a visible share;
	// at bench scale the page-128 comparison of Figure 6 holds too).
	var ref int
	for _, r := range rows {
		if strings.Contains(r.Config, "32") && strings.Contains(r.Config, "Btree") {
			ref = r.SizeBytes
		}
	}
	for _, r := range rows {
		if strings.Contains(r.Config, "Learned Index") && r.SizeBytes >= ref {
			t.Errorf("%s (%d B) not smaller than page-128 B-Tree (%d B)", r.Config, r.SizeBytes, ref)
		}
	}
	if !strings.Contains(buf.String(), "Figure 6") {
		t.Fatal("table not rendered")
	}
}

func TestFigure8ShapeHolds(t *testing.T) {
	o, _ := tiny()
	rows := Figure8(o)
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	var mapRed float64
	for _, r := range rows {
		if r.Reduction <= 0 {
			t.Errorf("%s: learned hash did not reduce conflicts (%.3f)", r.Dataset, r.Reduction)
		}
		if r.RandomConflict < 0.30 || r.RandomConflict > 0.45 {
			t.Errorf("%s: random conflict %.3f outside birthday-paradox band", r.Dataset, r.RandomConflict)
		}
		if r.Dataset == "Map Data" {
			mapRed = r.Reduction
		}
	}
	// Paper shape: Maps shows by far the largest reduction.
	for _, r := range rows {
		if r.Dataset != "Map Data" && r.Reduction >= mapRed {
			t.Errorf("expected Map Data to lead; %s %.2f >= maps %.2f", r.Dataset, r.Reduction, mapRed)
		}
	}
}

func TestFigure10ShapeHolds(t *testing.T) {
	o, _ := tiny()
	pts := Figure10(o, false)
	// For each target FPR, the learned filter (logistic series) must beat
	// the standard filter's footprint.
	std := map[float64]int{}
	for _, p := range pts {
		if p.Series == "BloomFilter" {
			std[p.TargetFPR] = p.SizeBytes
		}
	}
	beats := 0
	for _, p := range pts {
		if p.Series == "Logistic 3-gram" && p.SizeBytes < std[p.TargetFPR] {
			beats++
		}
	}
	if beats < 2 {
		t.Errorf("learned filter beat the standard filter at only %d FPR targets", beats)
	}
}

func TestFigure11ShapeHolds(t *testing.T) {
	o, _ := tiny()
	rows := Figure11(o)
	if len(rows) != 3*3*2 {
		t.Fatalf("got %d rows", len(rows))
	}
	// At every slot budget, the model hash must waste less space on the
	// Maps dataset (the paper's "almost 80% reduction" case).
	for i := 0; i < len(rows); i += 2 {
		model, random := rows[i], rows[i+1]
		if model.Dataset != "Map Data" {
			continue
		}
		if model.EmptyBytes >= random.EmptyBytes {
			t.Errorf("maps %d%%: model empty %d >= random %d", model.SlotsPct, model.EmptyBytes, random.EmptyBytes)
		}
	}
}

func TestTable1Runs(t *testing.T) {
	o, _ := tiny()
	rows := Table1(o)
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.Lookup <= 0 {
			t.Errorf("%s: no measurement", r.Name)
		}
	}
	// The in-place chained map reaches 100% utilization by construction.
	if rows[3].Utilization < 0.999 {
		t.Errorf("in-place utilization %.3f, want 1.0", rows[3].Utilization)
	}
}

func TestNaiveShapeHolds(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation distorts the interpreted/native timing ratio")
	}
	o, _ := tiny()
	rows := Naive(o)
	interp, native, btree := rows[1].Lookup, rows[2].Lookup, rows[4].Lookup
	// §2.3's lesson: interpreted model execution is orders of magnitude
	// slower than both native execution and a B-Tree traversal.
	if interp < native*4 {
		t.Errorf("interpreted model (%v) should be >>4x native (%v)", interp, native)
	}
	if interp < btree*5 {
		t.Errorf("interpreted model (%v) should be >>5x a B-Tree lookup (%v)", interp, btree)
	}
}

func TestAppendixAScaling(t *testing.T) {
	o, _ := tiny()
	o.N = 200_000
	_, alpha := AppendixA(o)
	// Appendix A predicts O(√N): the exponent must sit near 0.5, far from
	// a constant-sized B-Tree's linear growth.
	if alpha < 0.3 || alpha > 0.7 {
		t.Errorf("error scaling exponent %.2f, want ~0.5", alpha)
	}
}

func TestStorageShapeHolds(t *testing.T) {
	o, buf := tiny()
	rows := Storage(o)
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	ingest, cold := rows[1], rows[2]
	// The acceptance property: a cold open serves from deserialized
	// segment models only — zero RMIs trained, everything loaded.
	if cold.ModelsTrained != 0 {
		t.Errorf("cold open trained %d models, want 0", cold.ModelsTrained)
	}
	if cold.ModelsLoaded == 0 || cold.Segments == 0 {
		t.Errorf("cold open loaded nothing: %+v", cold)
	}
	if ingest.Segments == 0 || ingest.DiskBytes == 0 {
		t.Errorf("ingest produced no on-disk state: %+v", ingest)
	}
	for _, r := range rows {
		if r.HitNs <= 0 || r.MissNs <= 0 {
			t.Errorf("%s: no measurement", r.Name)
		}
	}
	if !strings.Contains(buf.String(), "0 retrains") {
		t.Fatal("cold-open summary not rendered")
	}
}

func TestWritePathShapeHolds(t *testing.T) {
	o, buf := tiny()
	rows := WritePath(o)
	if len(rows) < 8 {
		t.Fatalf("got %d rows, want >= 8", len(rows))
	}
	var commitRows, trainRows, mergeRows int
	for _, r := range rows {
		if r.Wall <= 0 || r.PerOpNs <= 0 {
			t.Errorf("%s: no measurement", r.Name)
		}
		switch {
		case strings.HasPrefix(r.Name, "commit/"):
			commitRows++
			// Every durable insert is covered by at least one fsync, and a
			// cohort can never sync more often than once per commit.
			if r.Fsyncs <= 0 {
				t.Errorf("%s: no fsyncs recorded", r.Name)
			}
			if r.KeysPerFsync < 1 {
				t.Errorf("%s: keys/fsync %.2f < 1", r.Name, r.KeysPerFsync)
			}
		case strings.HasPrefix(r.Name, "train/"):
			trainRows++
		case strings.HasPrefix(r.Name, "merge/"):
			mergeRows++
		}
	}
	if commitRows != 4 || trainRows < 3 || mergeRows != 1 {
		t.Fatalf("row shape: %d commit, %d train, %d merge", commitRows, trainRows, mergeRows)
	}
	if rows[0].Speedup != 1.0 {
		t.Errorf("baseline speedup %.2f, want 1.0", rows[0].Speedup)
	}
	// No timing asserts here (1-vCPU CI): the measured >=3x group-commit
	// claim lives in the checked-in BENCH_writepath.json.
	if !strings.Contains(buf.String(), "Write path") {
		t.Fatal("table not rendered")
	}
}

func TestCompiledShapeHolds(t *testing.T) {
	o, buf := tiny()
	o.JSONDir = t.TempDir()
	rows := Compiled(o)
	if len(rows) != 5 {
		t.Fatalf("got %d rows, want 5", len(rows))
	}
	for _, r := range rows {
		if r.PerKey <= 0 || r.SpeedUp <= 0 {
			t.Errorf("%s: no measurement (%v, %.2fx)", r.Config, r.PerKey, r.SpeedUp)
		}
		if r.IdxBytes == 0 {
			t.Errorf("%s: no index size", r.Config)
		}
	}
	if !strings.Contains(buf.String(), "Compiled vs interpreted") {
		t.Fatal("table not rendered")
	}
	data, err := os.ReadFile(filepath.Join(o.JSONDir, "BENCH_compiled.json"))
	if err != nil || !strings.Contains(string(data), "\"ns_per_op\"") {
		t.Fatalf("machine-readable report missing: %v", err)
	}
}

func TestSearchShootoutShapeHolds(t *testing.T) {
	o, buf := tiny()
	o.JSONDir = t.TempDir()
	rows := SearchShootout(o)
	if len(rows) != 6 {
		t.Fatalf("got %d rows, want 6", len(rows))
	}
	for _, r := range rows {
		if r.PerProbe <= 0 {
			t.Errorf("%s: no measurement", r.Strategy)
		}
	}
	if rows[0].Strategy != "binary" || rows[0].SpeedUp != 1 {
		t.Fatalf("binary must be the 1.00x baseline, got %+v", rows[0])
	}
	if !strings.Contains(buf.String(), "Search shootout") {
		t.Fatal("table not rendered")
	}
	if _, err := os.Stat(filepath.Join(o.JSONDir, "BENCH_searchshootout.json")); err != nil {
		t.Fatalf("machine-readable report missing: %v", err)
	}
}

func TestAppendixERuns(t *testing.T) {
	o, buf := tiny()
	AppendixE(o)
	if !strings.Contains(buf.String(), "Appendix E") {
		t.Fatal("table not rendered")
	}
}

func TestStringKeysShapeHolds(t *testing.T) {
	o, buf := tiny()
	rows := StringKeys(o)
	byConfig := map[string]StringKeysRow{}
	for _, r := range rows {
		if r.PerOp <= 0 {
			t.Errorf("%s: no measurement", r.Config)
		}
		byConfig[r.Config] = r
	}
	for _, want := range []string{
		"contains/map", "contains/stringindex", "contains/store",
		"lookup/sorted-slice", "lookup/stringindex", "lookup/store",
		"scan/sorted-slice-copy", "scan/store",
		"count/iterate", "count/learned",
	} {
		if _, ok := byConfig[want]; !ok {
			t.Errorf("missing config %s", want)
		}
	}
	// The structural claim that holds at any scale: learned COUNT answers
	// by position arithmetic, iterate-and-count streams the whole range.
	if c := byConfig["count/learned"]; c.SpeedUp < 1 {
		t.Errorf("learned COUNT slower than iterating: %+v", c)
	}
	if !strings.Contains(buf.String(), "String keys") {
		t.Fatal("table not rendered")
	}
}

func TestObsShapeHolds(t *testing.T) {
	o, buf := tiny()
	rows := Obs(o)
	if len(rows) != 5 {
		t.Fatalf("got %d rows, want 5", len(rows))
	}
	for _, r := range rows {
		if r.PerOpNs <= 0 || r.Ops <= 0 {
			t.Errorf("%s: no measurement (%+v)", r.Name, r)
		}
		if !strings.Contains(r.Name, "metrics=") {
			t.Errorf("%s: config name does not carry the build tag", r.Name)
		}
	}
	if !strings.Contains(buf.String(), "Metrics-plane overhead") {
		t.Fatal("table not rendered")
	}
}

func TestFaultsShapeHolds(t *testing.T) {
	o, buf := tiny()
	rows := Faults(o)
	if len(rows) != 6 {
		t.Fatalf("got %d rows, want 6", len(rows))
	}
	for _, r := range rows {
		if r.PerOpNs <= 0 || r.Wall <= 0 {
			t.Errorf("%s: no measurement (%+v)", r.Name, r)
		}
		if !strings.Contains(r.Name, "/fs=") {
			t.Errorf("%s: config name does not carry the filesystem", r.Name)
		}
	}
	if !strings.Contains(buf.String(), "Fault-injection seam overhead") {
		t.Fatal("table not rendered")
	}
}

func TestReplShapeHolds(t *testing.T) {
	o, buf := tiny()
	rows := Repl(o)
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	for _, r := range rows {
		if r.PerKeyNs <= 0 || r.Wall <= 0 {
			t.Errorf("%s: no measurement (%+v)", r.Name, r)
		}
	}
	if !strings.Contains(buf.String(), "WAL-shipping replication") {
		t.Fatal("table not rendered")
	}
}

func TestServingShapeHolds(t *testing.T) {
	o, buf := tiny()
	rows := Serving(o)
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	for _, r := range rows {
		if r.NsPerOp <= 0 || r.Wall <= 0 || r.Ops <= 0 {
			t.Errorf("%s: no measurement (%+v)", r.Name, r)
		}
	}
	if obs.Enabled && (rows[0].P99Ns < rows[0].P50Ns || rows[0].P50Ns <= 0) {
		t.Errorf("latency quantiles out of order: p50=%v p99=%v", rows[0].P50Ns, rows[0].P99Ns)
	}
	if !strings.Contains(buf.String(), "network serving") {
		t.Fatal("table not rendered")
	}
}
