package experiments

import (
	"fmt"
	"time"

	"learnedindex/internal/bench"
	"learnedindex/internal/btree"
	"learnedindex/internal/core"
	"learnedindex/internal/data"
	"learnedindex/internal/search"
)

// NaiveRow is one measurement of the §2.3 experiment.
type NaiveRow struct {
	Name   string
	Lookup time.Duration
}

// Naive reproduces the §2.3 "first, naïve learned index" experiment on the
// Weblogs dataset: a single two-layer 32-wide network executed through a
// dataflow-graph interpreter (the Tensorflow+Python stand-in) against a
// B-Tree traversal and whole-array binary search — plus the same network
// executed natively, previewing the §3.1 LIF answer.
//
// The paper's numbers: ~80,000ns for the interpreted model vs ~300ns B-Tree
// vs ~900ns binary search. Shape to verify: interpreted model ≫ binary
// search > B-Tree, and native execution collapses the model cost by orders
// of magnitude.
func Naive(o Options) []NaiveRow {
	o = o.withDefaults()
	n := o.N
	if n > 500_000 {
		n = 500_000 // the naïve index exists to be slow; keep training sane
	}
	keys := data.Weblogs(n, o.Seed)
	probes := data.SampleExisting(keys, o.Probes/10, o.Seed+1)

	ni := core.NewNaive(keys, o.Seed)
	bt := btree.New([]uint64(keys), 128)

	rows := []NaiveRow{
		{"Naive learned index (interpreted model, no err bounds)",
			bench.TimeLookups(probes, 1, ni.Lookup)},
		{"  ... model execution only (interpreted)",
			bench.TimeLookups(probes, 1, ni.PredictInterpreted)},
		{"  ... same weights, native execution (LIF mode)",
			bench.TimeLookups(probes, o.Rounds, ni.PredictNative)},
		{"  ... native model + exponential search",
			bench.TimeLookups(probes, o.Rounds, ni.LookupNative)},
		{"B-Tree (page 128) traversal",
			bench.TimeLookups(probes, o.Rounds, bt.Lookup)},
		{"Binary search over entire array",
			bench.TimeLookups(probes, o.Rounds, func(k uint64) int {
				return search.Binary(keys, k, 0, len(keys))
			})},
	}
	if o.Out != nil {
		t := &bench.Table{
			Title:   fmt.Sprintf("§2.3 — The naïve learned index (N=%d weblog timestamps)", n),
			Headers: []string{"Approach", "Time (ns)"},
		}
		for _, r := range rows {
			t.Add(r.Name, ns(r.Lookup))
		}
		render(o, t)
	}
	return rows
}
