package experiments

import (
	"fmt"
	"time"

	"learnedindex/internal/bench"
	"learnedindex/internal/core"
	"learnedindex/internal/data"
	"learnedindex/internal/hashmap"
)

// Table1Row is one hash-map-architecture measurement.
type Table1Row struct {
	Name        string
	Lookup      time.Duration
	Utilization float64
}

// Table1 reproduces "Hash-map alternative baselines" (Appendix C): the
// tuned bucketized cuckoo map with 8-byte values and with 20-byte records,
// the conservative "commercial" cuckoo with 20-byte records, and the
// in-place chained map with a learned hash at 100% utilization.
//
// The in-place map's learned hash is "a simple single stage multi-variate
// model", matching the paper.
func Table1(o Options) []Table1Row {
	o = o.withDefaults()
	keys := cachedKeys("lognormal", o.N, o.Seed, func() data.Keys { return data.LognormalPaper(o.N, o.Seed) })
	probes := data.SampleExisting(keys, o.Probes, o.Seed+1)
	recs := make([]hashmap.Record, len(keys))
	for i, k := range keys {
		recs[i] = hashmap.Record{Key: k, Payload: k * 3, Meta: uint32(i)}
	}

	var rows []Table1Row
	measure := func(name string, lookup func(uint64) (hashmap.Record, bool), util float64) {
		lk := bench.TimeLookups(probes, o.Rounds, func(k uint64) int {
			r, _ := lookup(k)
			return int(r.Meta)
		})
		rows = append(rows, Table1Row{Name: name, Lookup: lk, Utilization: util})
	}

	avx32 := hashmap.NewAVXCuckoo(len(keys), 4) // compact 32-bit value
	avx20 := hashmap.NewAVXCuckoo(len(keys), 12)
	comm := hashmap.NewCommercialCuckoo(len(keys), 12)
	for _, r := range recs {
		if err := avx32.Insert(r); err != nil {
			panic(err)
		}
		if err := avx20.Insert(r); err != nil {
			panic(err)
		}
		if err := comm.Insert(r); err != nil {
			panic(err)
		}
	}

	// In-place chained with a learned hash. The paper used "a simple single
	// stage multi-variate model"; on the synthetic lognormal at this scale a
	// single stage clusters too hard (coalesced chains explode), so the
	// 2-stage CDF hash of §4.2 is used — same model family as Figure 8.
	slots := len(keys)
	leaves := len(keys) / 20
	if leaves < 16 {
		leaves = 16
	}
	hcfg := core.DefaultConfig(leaves)
	hcfg.Seed = o.Seed
	lh := core.NewLearnedHashFromRMI(core.New(keys, hcfg), slots)
	inplace := hashmap.BuildInPlaceChained(recs, slots, lh.Hash)

	measure("AVX Cuckoo, 32-bit value", avx32.Lookup, avx32.Utilization())
	measure("AVX Cuckoo, 20 Byte record", avx20.Lookup, avx20.Utilization())
	measure("Comm. Cuckoo, 20 Byte record", comm.Lookup, comm.Utilization())
	measure("In-place chained w/ learned hash, record", inplace.Lookup, inplace.Utilization())

	if o.Out != nil {
		t := &bench.Table{
			Title:   fmt.Sprintf("Table 1 (Appendix C) — Hash-map alternative baselines (N=%d, lognormal)", o.N),
			Headers: []string{"Type", "Time (ns)", "Utilization"},
		}
		for _, r := range rows {
			t.Add(r.Name, ns(r.Lookup), fmt.Sprintf("%.0f%%", r.Utilization*100))
		}
		render(o, t)
	}
	return rows
}
