package experiments

import (
	"fmt"
	"os"
	"sync"
	"time"

	"learnedindex/internal/bench"
	"learnedindex/internal/repl"
	"learnedindex/internal/storage"
)

// ReplRow is one measured replication configuration.
type ReplRow struct {
	Name     string
	Wall     time.Duration
	PerKeyNs float64
	LagMean  float64 // steady-state mean lag in frames (ship row only)
	LagMax   uint64  // worst sampled lag in frames (ship row only)
}

// Repl measures the WAL-shipping replication plane over the in-memory
// transport, against real engines on disk (the follower's applies are
// durable group commits, like production):
//
//   - ship: concurrent writers drive durable commits on the primary while
//     a connected follower replays; the row is end-to-end ns/key from the
//     first commit until the follower has durably applied and serves the
//     full set, with the steady-state replication lag (frames) sampled
//     throughout — the graceful-degradation claim in measurable form:
//     shipping rides the commit stream without gating it.
//   - catchup: a cold follower connects to a primary already holding the
//     full flushed set and converges by snapshot transfer + WAL tail; the
//     row is ns/key to exact convergence (Len equality).
//
// Each config reports its best round (floor), matching the other
// experiments' min-of-rounds discipline.
func Repl(o Options) []ReplRow {
	o = o.withDefaults()
	rep := &bench.Report{Experiment: "repl", N: o.N, Probes: o.Probes}

	keys := o.N / 10
	if keys < 5_000 {
		keys = 5_000
	}
	const writers = 4
	const batch = 256

	var shipWall, catchWall time.Duration
	var lagMean float64
	var lagMax uint64

	for r := 0; r < o.Rounds; r++ {
		sw, lmean, lmax := replShipRound(o, r, keys, writers, batch)
		if shipWall == 0 || sw < shipWall {
			shipWall, lagMean, lagMax = sw, lmean, lmax
		}
		cw := replCatchupRound(o, r, keys)
		if catchWall == 0 || cw < catchWall {
			catchWall = cw
		}
	}

	rows := []ReplRow{
		{
			Name:     fmt.Sprintf("ship/writers=%d", writers),
			Wall:     shipWall,
			PerKeyNs: float64(shipWall.Nanoseconds()) / float64(keys),
			LagMean:  lagMean,
			LagMax:   lagMax,
		},
		{
			Name:     "catchup/cold",
			Wall:     catchWall,
			PerKeyNs: float64(catchWall.Nanoseconds()) / float64(keys),
		},
	}
	for _, row := range rows {
		extra := map[string]float64{"wall_ms": float64(row.Wall.Microseconds()) / 1000}
		if row.Name != "catchup/cold" {
			extra["lag_frames_mean"] = row.LagMean
			extra["lag_frames_max"] = float64(row.LagMax)
		}
		rep.Add(bench.ReportRow{Config: row.Name, NsPerOp: row.PerKeyNs, Extra: extra})
	}

	t := &bench.Table{
		Title: fmt.Sprintf("WAL-shipping replication: %d keys, %d writers, %d rounds (best round)",
			keys, writers, o.Rounds),
		Headers: []string{"Config", "Wall (ms)", "ns/key", "Lag mean", "Lag max"},
	}
	for _, row := range rows {
		lm, lx := "-", "-"
		if row.Name != "catchup/cold" {
			lm = fmt.Sprintf("%.1f", row.LagMean)
			lx = fmt.Sprintf("%d", row.LagMax)
		}
		t.Add(row.Name,
			fmt.Sprintf("%.2f", float64(row.Wall.Microseconds())/1000),
			fmt.Sprintf("%.0f", row.PerKeyNs), lm, lx)
	}
	render(o, t)
	emitJSON(o, rep)
	return rows
}

// replPair opens a primary and follower engine pair in temp directories;
// the cleanup closes and removes both.
func replPair(o Options, tag string) (peng, feng *storage.Engine, cleanup func()) {
	open := func(kind string) (*storage.Engine, string) {
		dir, err := os.MkdirTemp(o.Dir, "lix-repl-"+kind+"-*")
		if err != nil {
			panic(fmt.Sprintf("repl experiment: %v", err))
		}
		e, err := storage.Open(dir, storage.Options{NoCompactor: true})
		if err != nil {
			panic(fmt.Sprintf("repl experiment: open %s: %v", kind, err))
		}
		return e, dir
	}
	peng, pdir := open("prim" + tag)
	feng, fdir := open("fol" + tag)
	return peng, feng, func() {
		peng.Close()
		feng.Close()
		os.RemoveAll(pdir)
		os.RemoveAll(fdir)
	}
}

func replWaitConverged(peng, feng *storage.Engine, fol *repl.Follower, want int) {
	deadline := time.Now().Add(2 * time.Minute)
	for {
		if fol.AppliedSeq() >= peng.ReplDurableSeq() {
			feng.Flush()
			if feng.Len() == want {
				return
			}
		}
		if time.Now().After(deadline) {
			panic(fmt.Sprintf("repl experiment: no convergence (applied=%d durable=%d len=%d want=%d)",
				fol.AppliedSeq(), peng.ReplDurableSeq(), feng.Len(), want))
		}
		time.Sleep(500 * time.Microsecond)
	}
}

// replShipRound measures one live-shipping round and returns its wall
// time plus mean/max sampled lag.
func replShipRound(o Options, r, keys, writers, batch int) (time.Duration, float64, uint64) {
	peng, feng, cleanup := replPair(o, fmt.Sprintf("s%d", r))
	defer cleanup()

	mem := repl.NewMemTransport()
	prim, err := repl.NewPrimary(peng, repl.PrimaryOptions{Epoch: 1, HeartbeatEvery: 5 * time.Millisecond})
	if err != nil {
		panic(err)
	}
	defer prim.Close()
	if err := prim.Serve(mem, "prim"); err != nil {
		panic(err)
	}
	fol, err := repl.NewFollower(feng, repl.FollowerOptions{
		Addr: "prim", Transport: mem, JitterSeed: 1, FlushEvery: 1 << 20,
	})
	if err != nil {
		panic(err)
	}
	defer fol.Close()
	fol.Start()
	for !fol.Status().Connected {
		time.Sleep(time.Millisecond)
	}

	// Lag sampler: the follower's heartbeat-informed view of how far it
	// trails the primary's durable horizon, sampled while writers run.
	stopLag := make(chan struct{})
	var lagWG sync.WaitGroup
	var lagSum, lagN, lagMax uint64
	lagWG.Add(1)
	go func() {
		defer lagWG.Done()
		tick := time.NewTicker(2 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				l := fol.Status().LagFrames
				lagSum += l
				lagN++
				if l > lagMax {
					lagMax = l
				}
			case <-stopLag:
				return
			}
		}
	}()

	start := time.Now()
	var wg sync.WaitGroup
	per := keys / writers
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			buf := make([]uint64, 0, batch)
			for i := 0; i < per; i++ {
				buf = append(buf, uint64(w*per+i)*2654435761+11)
				if len(buf) == batch || i == per-1 {
					if err := peng.CommitBatch(buf); err != nil {
						panic(fmt.Sprintf("repl experiment: commit: %v", err))
					}
					buf = buf[:0]
				}
			}
		}(w)
	}
	wg.Wait()
	replWaitConverged(peng, feng, fol, per*writers)
	wall := time.Since(start)
	close(stopLag)
	lagWG.Wait()

	mean := 0.0
	if lagN > 0 {
		mean = float64(lagSum) / float64(lagN)
	}
	return wall, mean, lagMax
}

// replCatchupRound measures a cold follower converging on a pre-loaded,
// flushed primary (snapshot transfer + tail).
func replCatchupRound(o Options, r, keys int) time.Duration {
	peng, feng, cleanup := replPair(o, fmt.Sprintf("c%d", r))
	defer cleanup()

	load := make([]uint64, keys)
	for i := range load {
		load[i] = uint64(i)*2654435761 + 11
	}
	if err := peng.CommitBatch(load); err != nil {
		panic(fmt.Sprintf("repl experiment: preload: %v", err))
	}
	if err := peng.Flush(); err != nil {
		panic(fmt.Sprintf("repl experiment: preload flush: %v", err))
	}

	mem := repl.NewMemTransport()
	prim, err := repl.NewPrimary(peng, repl.PrimaryOptions{Epoch: 1, HeartbeatEvery: 5 * time.Millisecond})
	if err != nil {
		panic(err)
	}
	defer prim.Close()
	if err := prim.Serve(mem, "prim"); err != nil {
		panic(err)
	}

	start := time.Now()
	fol, err := repl.NewFollower(feng, repl.FollowerOptions{
		Addr: "prim", Transport: mem, JitterSeed: 1, FlushEvery: 1 << 20,
	})
	if err != nil {
		panic(err)
	}
	defer fol.Close()
	fol.Start()
	replWaitConverged(peng, feng, fol, peng.Len())
	return time.Since(start)
}
