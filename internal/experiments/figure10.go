package experiments

import (
	"fmt"

	"learnedindex/internal/bench"
	"learnedindex/internal/bloom"
	"learnedindex/internal/core"
	"learnedindex/internal/data"
	"learnedindex/internal/ml"
)

// Figure10Point is one (FPR, memory) point of one model series.
type Figure10Point struct {
	Series    string
	TargetFPR float64
	TestFPR   float64
	SizeBytes int
	FNR       float64
}

// Figure10 reproduces "Learned Bloom filter improves memory footprint at a
// wide range of FPRs" (§5.2): the standard Bloom filter curve against
// learned filters built from character-GRU classifiers of three widths
// (W=16, 32, 128 with 32-dim embeddings, as in the figure legend) plus the
// cheap hashed-n-gram logistic model, sweeping the target FPR.
//
// GRU training is the slow part; TrainGRUs=false substitutes the logistic
// model only (used by the quick bench path).
func Figure10(o Options, trainGRUs bool) []Figure10Point {
	o = o.withDefaults()
	corpus := data.URLs(o.NUrl, o.NUrl*2, o.Seed)
	targets := []float64{0.02, 0.01, 0.005, 0.001}

	var pts []Figure10Point
	for _, p := range targets {
		std := bloom.New(len(corpus.Keys), p)
		for _, k := range corpus.Keys {
			std.Add(k)
		}
		fp := 0
		for _, s := range corpus.TestNeg {
			if std.MayContain(s) {
				fp++
			}
		}
		pts = append(pts, Figure10Point{
			Series: "BloomFilter", TargetFPR: p,
			TestFPR:   float64(fp) / float64(len(corpus.TestNeg)),
			SizeBytes: std.SizeBytes(),
		})
	}

	type series struct {
		name  string
		model core.Classifier
	}
	var models []series

	lcfg := ml.DefaultLogisticConfig()
	lcfg.Bits = 10 // keep the model a small fraction of the filter budget
	lgm := ml.NewLogisticNGram(lcfg)
	lgm.Train(corpus.Keys, corpus.TrainNeg, lcfg)
	models = append(models, series{"Logistic 3-gram", lgm})

	if trainGRUs {
		for _, w := range []int{16, 32, 128} {
			cfg := ml.GRUConfig{Width: w, Embedding: 32, MaxLen: 64, Epochs: 2, LR: 3e-3, Seed: o.Seed}
			g := ml.NewGRU(cfg)
			g.Train(corpus.Keys, corpus.TrainNeg, cfg)
			models = append(models, series{fmt.Sprintf("GRU W=%d,E=32", w), g})
		}
	}

	for _, m := range models {
		for _, p := range targets {
			lb := core.NewLearnedBloom(m.model, corpus.Keys, corpus.ValidNeg, p)
			pts = append(pts, Figure10Point{
				Series:    m.name,
				TargetFPR: p,
				TestFPR:   lb.MeasureFPR(corpus.TestNeg),
				SizeBytes: lb.SizeBytesQuantized(),
				FNR:       lb.FNR(len(corpus.Keys)),
			})
		}
	}

	if o.Out != nil {
		t := &bench.Table{
			Title:   fmt.Sprintf("Figure 10 — Learned Bloom filter memory vs FPR (%d URL keys)", o.NUrl),
			Headers: []string{"Series", "Target FPR", "Test FPR", "Memory (KB)", "FNR"},
		}
		for _, pt := range pts {
			t.Add(pt.Series,
				fmt.Sprintf("%.3f%%", pt.TargetFPR*100),
				fmt.Sprintf("%.3f%%", pt.TestFPR*100),
				fmt.Sprintf("%.1f", float64(pt.SizeBytes)/1024),
				fmt.Sprintf("%.0f%%", pt.FNR*100))
		}
		render(o, t)
	}
	return pts
}

// AppendixE reproduces the model-hash Bloom filter comparison: for the same
// corpus and classifier, the §5.1.1 classifier+overflow construction vs the
// §5.1.2 discretized model-hash construction across bitmap sizes m.
func AppendixE(o Options) {
	o = o.withDefaults()
	corpus := data.URLs(o.NUrl, o.NUrl*2, o.Seed)
	lcfg := ml.DefaultLogisticConfig()
	lcfg.Bits = 12
	m := ml.NewLogisticNGram(lcfg)
	m.Train(corpus.Keys, corpus.TrainNeg, lcfg)

	t := &bench.Table{
		Title:   "Appendix E — Model-hash Bloom filter vs §5.1.1 construction",
		Headers: []string{"Target FPR", "Construction", "Memory (KB)", "Test FPR", "vs standard"},
	}
	for _, p := range []float64{0.01, 0.001} {
		std := bloom.New(len(corpus.Keys), p)
		for _, k := range corpus.Keys {
			std.Add(k)
		}
		stdFP := 0
		for _, s := range corpus.TestNeg {
			if std.MayContain(s) {
				stdFP++
			}
		}
		lb := core.NewLearnedBloom(m, corpus.Keys, corpus.ValidNeg, p)
		t.Add(fmt.Sprintf("%.2f%%", p*100), "standard Bloom",
			fmt.Sprintf("%.1f", float64(std.SizeBytes())/1024),
			fmt.Sprintf("%.3f%%", float64(stdFP)/float64(len(corpus.TestNeg))*100), "(1.00x)")
		t.Add("", "classifier+overflow (5.1.1)",
			fmt.Sprintf("%.1f", float64(lb.SizeBytesQuantized())/1024),
			fmt.Sprintf("%.3f%%", lb.MeasureFPR(corpus.TestNeg)*100),
			bench.Factor(float64(lb.SizeBytesQuantized())/float64(std.SizeBytes())))
		for _, mbits := range []int{1 << 16, 1 << 18, 1 << 20} {
			mh := core.NewModelHashBloom(m, corpus.Keys, corpus.ValidNeg, mbits, p)
			t.Add("", fmt.Sprintf("model-hash m=%d (5.1.2)", mbits),
				fmt.Sprintf("%.1f", float64(mh.SizeBytesQuantized())/1024),
				fmt.Sprintf("%.3f%%", mh.MeasureFPR(corpus.TestNeg)*100),
				bench.Factor(float64(mh.SizeBytesQuantized())/float64(std.SizeBytes())))
		}
	}
	render(o, t)
}
