package experiments

import (
	"time"

	"learnedindex/internal/bench"
	"learnedindex/internal/btree"
	"learnedindex/internal/core"
	"learnedindex/internal/data"
	"learnedindex/internal/fast"
	"learnedindex/internal/lookuptable"
)

// Figure5Row is one alternative-baseline measurement.
type Figure5Row struct {
	Name      string
	Lookup    time.Duration
	SizeBytes int
}

// Figure5 reproduces "Alternative Baselines" (§3.7.1): on the Lognormal
// dataset, a hierarchical lookup table with branch-free scan, a FAST-like
// SIMD tree, a fixed-size B-Tree with interpolation search, and the
// multivariate learned index (2-stage RMI, multivariate top, linear
// leaves), all "under fair conditions".
//
// The fixed-size B-Tree's budget is set to the learned index's size, as in
// the paper ("The B-Tree height is set, so that the total size of the tree
// is 1.5MB, similar to our learned model").
func Figure5(o Options) []Figure5Row {
	o = o.withDefaults()
	keys := cachedKeys("lognormal", o.N, o.Seed, func() data.Keys { return data.LognormalPaper(o.N, o.Seed) })
	probes := data.SampleExisting(keys, o.Probes, o.Seed+1)

	// Multivariate learned index first: its size sets the B-Tree budget.
	cfg := core.DefaultConfig(o.N / 500)
	cfg.Top = core.TopMultivariate
	cfg.Seed = o.Seed
	rmi := core.New(keys, cfg)

	lut := lookuptable.New(keys)
	ft := fast.New(keys)
	fb := btree.NewFixedSize(keys, rmi.SizeBytes())

	rows := []Figure5Row{
		{"Lookup Table w/ branch-free scan", bench.TimeLookups(probes, o.Rounds, lut.Lookup), lut.SizeBytes()},
		{"FAST", bench.TimeLookups(probes, o.Rounds, ft.Lookup), ft.SizeBytes()},
		{"Fixed-Size BTree w/ interpol. search", bench.TimeLookups(probes, o.Rounds, fb.Lookup), fb.SizeBytes()},
		{"Multivariate Learned Index", bench.TimeLookups(probes, o.Rounds, rmi.Lookup), rmi.SizeBytes()},
	}

	if o.Out != nil {
		t := &bench.Table{
			Title:   "Figure 5 — Alternative Baselines (Lognormal)",
			Headers: []string{"", "Lookup Table", "FAST", "Fixed-Size BTree+interp", "Multivariate Learned"},
		}
		t.Add("Time (ns)", ns(rows[0].Lookup), ns(rows[1].Lookup), ns(rows[2].Lookup), ns(rows[3].Lookup))
		t.Add("Size (MB)", bench.MB(rows[0].SizeBytes), bench.MB(rows[1].SizeBytes), bench.MB(rows[2].SizeBytes), bench.MB(rows[3].SizeBytes))
		render(o, t)
	}
	return rows
}
