package experiments

import (
	"fmt"
	"os"
	"runtime"
	"slices"
	"time"

	"learnedindex/internal/bench"
	"learnedindex/internal/storage"
	"learnedindex/internal/vfs"
)

// FaultsRow is one measured configuration of the fault-injection seam.
type FaultsRow struct {
	Name        string
	Wall        time.Duration
	PerOpNs     float64
	OverheadPct float64 // vs the vfs.OS twin row; 0 on baseline rows
}

// Faults measures what the vfs seam costs on the write-path gates: the
// same durable-commit, flush, and scrub workloads run against two live
// engines — one on the raw vfs.OS passthrough, one through a disarmed
// vfs.FaultFS (every file operation takes the full injection path: armed
// check, hook load, with no fault firing). The twins are interleaved at
// the finest unit each gate has (100-commit chunks, single flush cycles,
// single scrub passes) with the order alternating, so device drift is
// common-mode within a pair and cancels in the ratio; the reported
// overhead is the median paired ratio, and the reported ns/op is each
// config's floor. The overhead_pct_vs_os extras are the claim the
// failure-model PR rides on: routing all storage I/O through the
// injectable seam costs under 1% on Engine.Commit (fsync-bound) and
// Flush (train-bound).
func Faults(o Options) []FaultsRow {
	o = o.withDefaults()
	rep := &bench.Report{Experiment: "faults", N: o.N, Probes: o.Probes}

	commits := o.N / 200
	if commits < 500 {
		commits = 500
	}
	if commits > 5000 {
		commits = 5000
	}
	const chunk = 100
	nchunks := commits / chunk
	flushN := o.N / 4
	const flushCycles = 3
	const scrubPasses = 5

	disarmed := vfs.NewFaultFS(vfs.OS, vfs.FaultConfig{Seed: o.Seed})
	disarmed.Disarm()

	const osName, ffName = "os", "faultfs-disarmed"
	mins := map[string][3]time.Duration{} // per config: commit-chunk, flush, scrub floors
	record := func(name string, idx int, d time.Duration) {
		cur, ok := mins[name]
		if !ok {
			cur = [3]time.Duration{}
		}
		if cur[idx] == 0 || d < cur[idx] {
			cur[idx] = d
		}
		mins[name] = cur
	}
	var ratios [3][]float64 // per gate: paired (faultfs/os - 1) samples
	pair := func(idx int, dos, dff time.Duration) {
		record(osName, idx, dos)
		record(ffName, idx, dff)
		if dos > 0 {
			ratios[idx] = append(ratios[idx], float64(dff)/float64(dos)-1)
		}
	}

	type eng struct {
		e   *storage.Engine
		dir string
	}
	open := func(fs vfs.FS) eng {
		dir, err := os.MkdirTemp(o.Dir, "lix-faults-*")
		if err != nil {
			panic(fmt.Sprintf("faults experiment: %v", err))
		}
		e, err := storage.Open(dir, storage.Options{NoCompactor: true, FS: fs})
		if err != nil {
			panic(fmt.Sprintf("faults experiment: open: %v", err))
		}
		return eng{e, dir}
	}

	for r := 0; r < o.Rounds; r++ {
		eos, eff := open(vfs.OS), open(disarmed)

		// Commit gate: paired 100-commit chunks, order alternating.
		commitChunk := func(g eng, i int) time.Duration {
			start := time.Now()
			for j := i * chunk; j < (i+1)*chunk; j++ {
				if err := g.e.Commit(uint64(j)*2654435761 + 17); err != nil {
					panic(fmt.Sprintf("faults experiment: commit: %v", err))
				}
			}
			return time.Since(start)
		}
		for i := 0; i < nchunks; i++ {
			var dos, dff time.Duration
			if i%2 == 0 {
				dos, dff = commitChunk(eos, i), commitChunk(eff, i)
			} else {
				dff, dos = commitChunk(eff, i), commitChunk(eos, i)
			}
			pair(0, dos, dff)
		}

		// Flush gate: paired append+flush cycles over disjoint key blocks.
		keys := make([]uint64, flushN)
		flushCycle := func(g eng, cycle int) time.Duration {
			for i := range keys {
				keys[i] = uint64(cycle)<<40 | uint64(i)<<8 | 5
			}
			if err := g.e.AppendBatch(keys); err != nil {
				panic(fmt.Sprintf("faults experiment: append: %v", err))
			}
			// Flush times RMI training; park the collector first so GC
			// assists land between samples instead of skewing one twin.
			runtime.GC()
			start := time.Now()
			if err := g.e.Flush(); err != nil {
				panic(fmt.Sprintf("faults experiment: flush: %v", err))
			}
			return time.Since(start)
		}
		for cycle := 0; cycle < flushCycles; cycle++ {
			var dos, dff time.Duration
			if cycle%2 == 0 {
				dos, dff = flushCycle(eos, cycle), flushCycle(eff, cycle)
			} else {
				dff, dos = flushCycle(eff, cycle), flushCycle(eos, cycle)
			}
			pair(1, dos, dff)
		}

		// Scrub: paired clean integrity passes over the flushed segments.
		scrubPass := func(g eng) time.Duration {
			start := time.Now()
			if _, healed, err := g.e.Scrub(); err != nil || healed != 0 {
				panic(fmt.Sprintf("faults experiment: scrub healed=%d err=%v", healed, err))
			}
			return time.Since(start)
		}
		for p := 0; p < scrubPasses; p++ {
			var dos, dff time.Duration
			if p%2 == 0 {
				dos, dff = scrubPass(eos), scrubPass(eff)
			} else {
				dff, dos = scrubPass(eff), scrubPass(eos)
			}
			pair(2, dos, dff)
		}

		for _, g := range []eng{eos, eff} {
			g.e.Close()
			os.RemoveAll(g.dir)
		}
	}

	medianPct := func(idx int) float64 {
		rs := slices.Clone(ratios[idx])
		slices.Sort(rs)
		mid := len(rs) / 2
		med := rs[mid]
		if len(rs)%2 == 0 {
			med = (rs[mid-1] + rs[mid]) / 2
		}
		return med * 100
	}

	var rows []FaultsRow
	gates := []struct {
		gate  string
		idx   int
		ops   int // ops behind one floor sample
		scale int // floor samples per full gate (for the Wall column)
	}{
		{"commit", 0, chunk, nchunks},
		{"flush", 1, flushN, 1},
		{"scrub", 2, flushCycles*flushN + commits, 1},
	}
	for _, g := range gates {
		for _, name := range []string{osName, ffName} {
			floor := mins[name][g.idx]
			row := FaultsRow{
				Name:    fmt.Sprintf("%s/fs=%s", g.gate, name),
				Wall:    floor * time.Duration(g.scale),
				PerOpNs: float64(floor.Nanoseconds()) / float64(g.ops),
			}
			extra := map[string]float64{
				"wall_ms": float64(row.Wall.Microseconds()) / 1000,
			}
			if name == ffName {
				row.OverheadPct = medianPct(g.idx)
				extra["overhead_pct_vs_os"] = row.OverheadPct
			}
			rows = append(rows, row)
			// The scrub pass is microsecond-scale — far too jittery for the
			// CI diff gate's ns/op tolerance — so it renders in the table
			// but stays out of the tracked JSON.
			if g.gate != "scrub" {
				rep.Add(bench.ReportRow{Config: row.Name, NsPerOp: row.PerOpNs, Extra: extra})
			}
		}
	}

	t := &bench.Table{
		Title: fmt.Sprintf("Fault-injection seam overhead: vfs.OS vs disarmed FaultFS (%d commits, %d flush keys, %d rounds, paired-median overhead)",
			commits, flushN, o.Rounds),
		Headers: []string{"Config", "Wall (ms)", "ns/op", "Overhead"},
	}
	for _, r := range rows {
		over := "-"
		if r.OverheadPct != 0 {
			over = fmt.Sprintf("%+.2f%%", r.OverheadPct)
		}
		t.Add(r.Name,
			fmt.Sprintf("%.2f", float64(r.Wall.Microseconds())/1000),
			fmt.Sprintf("%.0f", r.PerOpNs),
			over)
	}
	render(o, t)
	emitJSON(o, rep)
	return rows
}
