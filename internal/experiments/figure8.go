package experiments

import (
	"fmt"

	"learnedindex/internal/bench"
	"learnedindex/internal/core"
)

// Figure8Row is one dataset's conflict measurement.
type Figure8Row struct {
	Dataset        string
	RandomConflict float64
	ModelConflict  float64
	Reduction      float64
}

// Figure8 reproduces "Reduction of Conflicts" (§4.2): for each integer
// dataset, the conflict rate of a Murmur-style randomized hash vs the
// learned CDF hash, with a table of the same number of slots as records.
// The paper's hash model is a 2-stage RMI with no hidden layers at one
// leaf per ~2000 keys (100k models / 200M keys). At reduced N the same
// model family works, but the leaf-to-structure ratio must scale: one leaf
// per ~20 keys keeps each leaf inside one dense run — see DESIGN.md §3 on
// scale substitutions. The shape (Maps ≫ Web/Lognormal reduction) is what
// this experiment checks.
func Figure8(o Options) []Figure8Row {
	o = o.withDefaults()
	var rows []Figure8Row
	for _, ds := range IntegerDatasets(o.N, o.Seed) {
		keys := ds.Keys
		slots := len(keys)
		leaves := len(keys) / 20
		if leaves < 16 {
			leaves = 16
		}
		hcfg := core.DefaultConfig(leaves)
		hcfg.Seed = o.Seed
		lh := core.NewLearnedHashFromRMI(core.New(keys, hcfg), slots)
		model := core.MeasureConflicts(keys, slots, lh.Hash)
		random := core.MeasureConflicts(keys, slots, core.RandomHashFunc(slots))
		rows = append(rows, Figure8Row{
			Dataset:        ds.Name,
			RandomConflict: random.ConflictRate(),
			ModelConflict:  model.ConflictRate(),
			Reduction:      1 - model.ConflictRate()/random.ConflictRate(),
		})
	}
	if o.Out != nil {
		t := &bench.Table{
			Title:   fmt.Sprintf("Figure 8 — Reduction of Conflicts (N=%d, slots=N)", o.N),
			Headers: []string{"Dataset", "% Conflicts Hash Map", "% Conflicts Model", "Reduction"},
		}
		for _, r := range rows {
			t.Add(r.Dataset,
				fmt.Sprintf("%.1f%%", r.RandomConflict*100),
				fmt.Sprintf("%.1f%%", r.ModelConflict*100),
				fmt.Sprintf("%.1f%%", r.Reduction*100))
		}
		render(o, t)
	}
	return rows
}
