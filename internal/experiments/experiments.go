// Package experiments regenerates every table and figure of the paper's
// evaluation. Each function builds the workload, trains/builds all
// contenders, measures, and renders a table in the figure's layout. The
// same code paths back cmd/lix-bench and the root-level testing.B
// benchmarks, so EXPERIMENTS.md numbers are reproducible from either.
package experiments

import (
	"fmt"
	"io"
	"sync"
	"time"

	"learnedindex/internal/bench"
	"learnedindex/internal/data"
)

// Options scales an experiment run. The paper runs at 200M keys; defaults
// here are laptop-sized with ratios (keys per B-Tree page, keys per RMI
// leaf, key-domain occupancy) preserved, per DESIGN.md §3.
type Options struct {
	N      int   // dataset size (default 2M for integer experiments)
	NStr   int   // string dataset size (default 200k)
	NUrl   int   // URL key-set size (default 20k)
	Probes int   // lookup probes per measurement (default 200k)
	Rounds int   // timing rounds (default 3)
	Seed   int64 // dataset seed
	// Dir is where the storage experiment writes its segment files; empty
	// means the OS temp directory. A unique subdirectory is created and
	// removed per run either way.
	Dir string
	// JSONDir, when non-empty, makes experiments additionally write their
	// results as machine-readable BENCH_<experiment>.json files there
	// (ns/op, bytes, maxErr per config), so the repo's perf trajectory is
	// diffable across PRs.
	JSONDir string
	Out     io.Writer
}

func (o Options) withDefaults() Options {
	if o.N <= 0 {
		o.N = 2_000_000
	}
	if o.NStr <= 0 {
		o.NStr = 200_000
	}
	if o.NUrl <= 0 {
		o.NUrl = 20_000
	}
	if o.Probes <= 0 {
		o.Probes = 200_000
	}
	if o.Rounds <= 0 {
		o.Rounds = 3
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// IntegerDatasets returns the three §3.7.1 datasets in the paper's column
// order: Map, Web, Log-Normal.
func IntegerDatasets(n int, seed int64) []struct {
	Name string
	Keys data.Keys
} {
	return []struct {
		Name string
		Keys data.Keys
	}{
		{"Map Data", cachedKeys("maps", n, seed, func() data.Keys { return data.Maps(n, seed) })},
		{"Web Data", cachedKeys("weblogs", n, seed, func() data.Keys { return data.Weblogs(n, seed) })},
		{"Log-Normal", cachedKeys("lognormal", n, seed, func() data.Keys { return data.LognormalPaper(n, seed) })},
	}
}

func ns(d time.Duration) string { return fmt.Sprintf("%d", d.Nanoseconds()) }

// pct renders a ratio as the paper's "xx.x%" model-time share.
func pct(part, whole time.Duration) string {
	if whole <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(part)/float64(whole))
}

func render(o Options, t *bench.Table) {
	if o.Out == nil {
		return
	}
	t.Render(o.Out)
}

// emitJSON writes rep to Options.JSONDir (when set) and logs the path.
func emitJSON(o Options, rep *bench.Report) {
	if o.JSONDir == "" {
		return
	}
	path, err := rep.WriteJSON(o.JSONDir)
	if o.Out == nil {
		return
	}
	if err != nil {
		fmt.Fprintf(o.Out, "bench json: %v\n", err)
		return
	}
	fmt.Fprintf(o.Out, "wrote %s\n", path)
}

// dsCache memoizes generated datasets per (kind, n, seed) — dense lognormal
// generation in particular is sampling-heavy, and every experiment in a
// bench run wants the same three datasets.
var dsCache sync.Map

func cachedKeys(kind string, n int, seed int64, gen func() data.Keys) data.Keys {
	k := fmt.Sprintf("%s/%d/%d", kind, n, seed)
	if v, ok := dsCache.Load(k); ok {
		return v.(data.Keys)
	}
	ks := gen()
	dsCache.Store(k, ks)
	return ks
}

func cachedStrings(kind string, n int, seed int64, gen func() []string) []string {
	k := fmt.Sprintf("%s/%d/%d", kind, n, seed)
	if v, ok := dsCache.Load(k); ok {
		return v.([]string)
	}
	ks := gen()
	dsCache.Store(k, ks)
	return ks
}
