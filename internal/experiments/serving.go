package experiments

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"learnedindex/internal/bench"
	"learnedindex/internal/core"
	"learnedindex/internal/data"
	"learnedindex/internal/obs"
	"learnedindex/internal/repl"
	"learnedindex/internal/router"
	"learnedindex/internal/serve"
	"learnedindex/internal/server"
)

// ServingRow is one measured reader/writer mix.
type ServingRow struct {
	Name    string
	Ops     int           // keys processed (reads + routed inserts)
	Wall    time.Duration // best round
	NsPerOp float64       // wall / keys — the gated number
	P50Ns   float64       // per-RPC wire latency, best round
	P99Ns   float64
}

// Serving is the mixed-workload load harness over the network serving
// plane: a three-node range-partitioned cluster behind real TCP wire
// servers, driven through the internal/router client by concurrent
// workers replaying Zipf hot-key read traffic mixed with routed insert
// batches. Each mix reports end-to-end ns per key (wall over keys moved,
// the regression-gated floor) plus the p50/p99 of individual router
// calls sampled into an obs histogram (extras — informational, since
// tail latency on a shared CI runner is noise).
//
// Node stores are in-memory: the row should price the wire, the fan-out,
// and the serving layer, not three fsync streams — the repl and
// writepath experiments own the durability floor. Reads and writes ride
// the identical code paths a persistent cluster would.
func Serving(o Options) []ServingRow {
	o = o.withDefaults()
	rep := &bench.Report{Experiment: "serving", N: o.N, Probes: o.Probes}

	keys := o.N / 10
	if keys < 5_000 {
		keys = 5_000
	}
	base := data.Uniform(keys, 1<<40, o.Seed)

	mixes := []struct {
		name      string
		writeFrac float64
	}{
		{"read-only/zipf", 0},
		{"read-mostly/5w", 0.05},
		{"mixed/50w", 0.50},
	}

	var rows []ServingRow
	for _, mix := range mixes {
		var best ServingRow
		for r := 0; r < o.Rounds; r++ {
			row := servingRound(o, base, mix.name, mix.writeFrac, r)
			if best.Wall == 0 || row.Wall < best.Wall {
				best = row
			}
		}
		rows = append(rows, best)
		rep.Add(bench.ReportRow{
			Config:  best.Name,
			NsPerOp: best.NsPerOp,
			Extra: map[string]float64{
				"wall_ms": float64(best.Wall.Microseconds()) / 1000,
				"p50_ns":  best.P50Ns,
				"p99_ns":  best.P99Ns,
			},
		})
	}

	t := &bench.Table{
		Title: fmt.Sprintf("network serving: 3-node TCP cluster, %d keys, 4 workers, %d rounds (best round)",
			keys, o.Rounds),
		Headers: []string{"Mix", "Keys moved", "Wall (ms)", "ns/key", "RPC p50 (µs)", "RPC p99 (µs)"},
	}
	for _, row := range rows {
		t.Add(row.Name,
			fmt.Sprintf("%d", row.Ops),
			fmt.Sprintf("%.2f", float64(row.Wall.Microseconds())/1000),
			fmt.Sprintf("%.0f", row.NsPerOp),
			fmt.Sprintf("%.1f", row.P50Ns/1000),
			fmt.Sprintf("%.1f", row.P99Ns/1000))
	}
	render(o, t)
	emitJSON(o, rep)
	return rows
}

// servingRound runs one mix once against a fresh cluster and reports its
// wall time and latency quantiles.
func servingRound(o Options, base data.Keys, name string, writeFrac float64, round int) ServingRow {
	const workers = 4
	const batch = 64

	fences := []uint64{base[len(base)/3], base[2*len(base)/3]}
	runs := [][2]int{
		{0, base.LowerBound(fences[0])},
		{base.LowerBound(fences[0]), base.LowerBound(fences[1])},
		{base.LowerBound(fences[1]), len(base)},
	}
	var nodes []router.Node
	var servers []*server.Server
	var stores []*serve.Store
	defer func() {
		for _, s := range servers {
			s.Close()
		}
		for _, st := range stores {
			st.Close()
		}
	}()
	for _, run := range runs {
		st := serve.New(append([]uint64(nil), base[run[0]:run[1]]...), core.Config{}, serve.Options{Shards: 2})
		stores = append(stores, st)
		srv := server.NewServer(st, server.Options{})
		if err := srv.Serve(repl.TCP, "127.0.0.1:0"); err != nil {
			panic(fmt.Sprintf("serving experiment: %v", err))
		}
		servers = append(servers, srv)
		nodes = append(nodes, router.Node{Addr: srv.Addr()})
	}
	rt, err := router.New(nodes, router.Options{Fences: fences})
	if err != nil {
		panic(fmt.Sprintf("serving experiment: %v", err))
	}
	defer rt.Close()

	// Per-worker traffic, fixed before the clock starts: a Zipf hot-key
	// read trace and a disjoint fresh-key write stream (above the read
	// domain, so inserts never disturb the probes' answers mid-round).
	batches := o.Probes / (workers * batch)
	if batches < 4 {
		batches = 4
	}
	seed := o.Seed + int64(round)*1000
	traces := make([][]uint64, workers)
	writes := make([][]uint64, workers)
	isWrite := make([][]bool, workers)
	for w := 0; w < workers; w++ {
		traces[w] = data.ZipfTraffic(base, batches*batch, 1.2, seed+int64(w))
		writes[w] = make([]uint64, batches*batch)
		isWrite[w] = make([]bool, batches)
		rng := newSplitMix(uint64(seed) + uint64(w)*7919)
		for i := range writes[w] {
			writes[w][i] = (1 << 41) + rng()%(1<<40)
		}
		for i := range isWrite[w] {
			isWrite[w][i] = writeFrac > 0 && float64(rng()%1024)/1024 < writeFrac
		}
	}

	hist := obs.NewHistogram()
	var ops atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				lo, hi := b*batch, (b+1)*batch
				t0 := time.Now()
				if isWrite[w][b] {
					if err := rt.InsertDurable(writes[w][lo:hi]...); err != nil {
						panic(fmt.Sprintf("serving experiment: insert: %v", err))
					}
				} else {
					if _, err := rt.LookupBatch(traces[w][lo:hi]); err != nil {
						panic(fmt.Sprintf("serving experiment: lookup: %v", err))
					}
				}
				hist.ObserveDuration(time.Since(t0))
				ops.Add(batch)
			}
		}(w)
	}
	wg.Wait()
	wall := time.Since(start)

	snap := hist.Snapshot()
	n := int(ops.Load())
	return ServingRow{
		Name:    name,
		Ops:     n,
		Wall:    wall,
		NsPerOp: float64(wall.Nanoseconds()) / float64(n),
		P50Ns:   snap.Quantile(0.50),
		P99Ns:   snap.Quantile(0.99),
	}
}

// newSplitMix is a tiny deterministic PRNG (splitmix64) so trace
// construction does not depend on math/rand ordering across workers.
func newSplitMix(s uint64) func() uint64 {
	return func() uint64 {
		s += 0x9e3779b97f4a7c15
		z := s
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
}
