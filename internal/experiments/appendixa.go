package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"learnedindex/internal/bench"
	"learnedindex/internal/cdfstat"
)

// AppendixARow is one N-sweep point of the error-scaling experiment.
type AppendixARow struct {
	N         int
	MeanAbs   float64
	TheorySD  float64 // √(F(1-F)N) at the median, Eq. (3) scaled to positions
	BTreeKeys int     // keys covered per node of a constant-sized B-Tree
}

// AppendixA verifies the theoretical analysis of Appendix A in the paper's
// own setting: "we assume we know the distribution F(x) that generated the
// data and analyze the error inherent in the data being sampled from that
// distribution". The model is the TRUE lognormal CDF (a constant-size,
// zero-parameter-error model); the measured position error against i.i.d.
// samples of growing size N must grow as O(√N) — sub-linear, versus the
// linear region growth of a constant-sized B-Tree.
func AppendixA(o Options) (rows []AppendixARow, alpha float64) {
	o = o.withDefaults()
	const sigma = 2.0
	trueCDF := func(x float64) float64 {
		return 0.5 * (1 + math.Erf(math.Log(x)/(sigma*math.Sqrt2)))
	}
	rng := rand.New(rand.NewSource(o.Seed))
	for _, n := range []int{25_000, 50_000, 100_000, 200_000, 400_000, 800_000} {
		if n > o.N*4 && len(rows) >= 3 {
			break
		}
		sample := make([]float64, n)
		for i := range sample {
			sample[i] = math.Exp(rng.NormFloat64() * sigma)
		}
		sort.Float64s(sample)
		var sum float64
		for i, x := range sample {
			pred := trueCDF(x) * float64(n)
			sum += math.Abs(pred - float64(i))
		}
		rows = append(rows, AppendixARow{
			N:        n,
			MeanAbs:  sum / float64(n),
			TheorySD: math.Sqrt(0.25 * float64(n)), // F(1-F)N at the median
			// A constant 1024-node B-Tree covers n/1024 keys per node:
			// linear growth.
			BTreeKeys: n / 1024,
		})
	}
	pts := make([]cdfstat.ScalingPoint, len(rows))
	for i, r := range rows {
		pts[i] = cdfstat.ScalingPoint{N: r.N, MeanAbs: r.MeanAbs}
	}
	alpha, _ = cdfstat.FitPowerLaw(pts)

	if o.Out != nil {
		t := &bench.Table{
			Title:   "Appendix A — position error of a constant-size model grows O(√N)",
			Headers: []string{"N", "mean |err| (positions)", "theory √(F(1-F)N) @median", "B-Tree keys/node (1024 nodes)"},
		}
		for _, r := range rows {
			t.Add(fmt.Sprintf("%d", r.N), fmt.Sprintf("%.1f", r.MeanAbs),
				fmt.Sprintf("%.1f", r.TheorySD), fmt.Sprintf("%d", r.BTreeKeys))
		}
		t.Add("", fmt.Sprintf("fitted error ~ N^%.2f (theory: 0.5, B-Tree: 1.0)", alpha), "", "")
		render(o, t)
	}
	return rows, alpha
}
