package hashmap

import (
	"testing"

	"learnedindex/internal/data"
	"learnedindex/internal/hashfn"
)

func randomHash(slots int) HashFunc {
	return func(k uint64) int { return hashfn.Reduce(hashfn.Mix64(k), slots) }
}

func records(keys []uint64) []Record {
	recs := make([]Record, len(keys))
	for i, k := range keys {
		recs[i] = Record{Key: k, Payload: k * 2, Meta: uint32(i)}
	}
	return recs
}

func TestChainedInsertLookup(t *testing.T) {
	keys := data.Uniform(20_000, 1<<40, 1)
	m := NewChained(len(keys), randomHash(len(keys)))
	for _, r := range records(keys) {
		m.Insert(r)
	}
	for i, k := range keys {
		r, ok := m.Lookup(k)
		if !ok {
			t.Fatalf("missing key %d", k)
		}
		if r.Payload != k*2 || r.Meta != uint32(i) {
			t.Fatalf("wrong record for %d: %+v", k, r)
		}
	}
	for _, k := range data.SampleMissing(keys, 2000, 2) {
		if _, ok := m.Lookup(k); ok {
			t.Fatalf("phantom key %d", k)
		}
	}
}

func TestChainedAccounting(t *testing.T) {
	keys := data.Uniform(10_000, 1<<40, 1)
	m := NewChained(len(keys), randomHash(len(keys)))
	for _, r := range records(keys) {
		m.Insert(r)
	}
	if m.Len() != len(keys) {
		t.Fatalf("Len = %d", m.Len())
	}
	// Occupied + empty = slots; overflow = keys - occupied.
	occupied := m.NumSlots() - m.EmptySlots()
	if occupied+m.OverflowLen() != len(keys) {
		t.Fatalf("accounting broken: occupied=%d overflow=%d keys=%d", occupied, m.OverflowLen(), len(keys))
	}
	// With slots == keys and a random hash, ~36.8% of slots stay empty.
	frac := float64(m.EmptySlots()) / float64(m.NumSlots())
	if frac < 0.33 || frac < 0.30 || frac > 0.43 {
		t.Fatalf("empty fraction %.3f, want ~0.368", frac)
	}
	if m.SizeBytes() != (m.NumSlots()+m.OverflowLen())*24 {
		t.Fatal("SizeBytes formula wrong")
	}
	if m.EmptyBytes() != m.EmptySlots()*24 {
		t.Fatal("EmptyBytes formula wrong")
	}
}

func TestChainedPerfectHashNoOverflow(t *testing.T) {
	// A perfect hash (identity over dense keys) produces zero overflow.
	keys := data.Dense(5000, 0, 1)
	m := NewChained(5000, func(k uint64) int { return int(k) })
	for _, r := range records(keys) {
		m.Insert(r)
	}
	if m.OverflowLen() != 0 || m.EmptySlots() != 0 {
		t.Fatalf("perfect hash should fill exactly: overflow=%d empty=%d", m.OverflowLen(), m.EmptySlots())
	}
}

func TestChainedUndersized(t *testing.T) {
	// 75% slots (Figure 11's hardest row): must still find everything.
	keys := data.Uniform(8000, 1<<40, 3)
	m := NewChained(6000, randomHash(6000))
	for _, r := range records(keys) {
		m.Insert(r)
	}
	for _, k := range keys {
		if _, ok := m.Lookup(k); !ok {
			t.Fatalf("missing %d", k)
		}
	}
}

func TestInPlaceChained100Utilization(t *testing.T) {
	keys := data.Uniform(10_000, 1<<40, 1)
	m := BuildInPlaceChained(records(keys), len(keys), randomHash(len(keys)))
	if u := m.Utilization(); u != 1.0 {
		t.Fatalf("utilization %.3f, want 1.0", u)
	}
	if m.SizeBytes() != len(keys)*24 {
		t.Fatalf("SizeBytes = %d, want %d", m.SizeBytes(), len(keys)*24)
	}
}

func TestInPlaceChainedLookup(t *testing.T) {
	keys := data.Uniform(20_000, 1<<40, 2)
	m := BuildInPlaceChained(records(keys), len(keys), randomHash(len(keys)))
	for i, k := range keys {
		r, ok := m.Lookup(k)
		if !ok {
			t.Fatalf("missing %d", k)
		}
		if r.Meta != uint32(i) {
			t.Fatalf("wrong record for %d", k)
		}
	}
	for _, k := range data.SampleMissing(keys, 2000, 3) {
		if _, ok := m.Lookup(k); ok {
			t.Fatalf("phantom %d", k)
		}
	}
}

func TestInPlaceChainedWithClusteredHash(t *testing.T) {
	// A terrible hash (everything to slot 0) must still be correct — just a
	// long chain.
	keys := data.Dense(500, 10, 7)
	m := BuildInPlaceChained(records(keys), 500, func(uint64) int { return 0 })
	for _, k := range keys {
		if _, ok := m.Lookup(k); !ok {
			t.Fatalf("missing %d under degenerate hash", k)
		}
	}
	if _, ok := m.Lookup(11); ok {
		t.Fatal("phantom under degenerate hash")
	}
}

func TestCuckooInsertLookup(t *testing.T) {
	keys := data.Uniform(20_000, 1<<40, 1)
	c := NewAVXCuckoo(len(keys), 12)
	for _, r := range records(keys) {
		if err := c.Insert(r); err != nil {
			t.Fatalf("insert %d: %v", r.Key, err)
		}
	}
	for i, k := range keys {
		r, ok := c.Lookup(k)
		if !ok {
			t.Fatalf("missing %d", k)
		}
		if r.Meta != uint32(i) {
			t.Fatalf("wrong record for %d", k)
		}
	}
	for _, k := range data.SampleMissing(keys, 2000, 2) {
		if _, ok := c.Lookup(k); ok {
			t.Fatalf("phantom %d", k)
		}
	}
}

func TestCuckooHighUtilization(t *testing.T) {
	keys := data.Uniform(50_000, 1<<40, 4)
	c := NewAVXCuckoo(len(keys), 12)
	for _, r := range records(keys) {
		if err := c.Insert(r); err != nil {
			t.Fatalf("AVX cuckoo should absorb ~99%% load: %v", err)
		}
	}
	if u := c.Utilization(); u < 0.95 {
		t.Fatalf("utilization %.3f, want >= 0.95", u)
	}
}

func TestCommercialCuckooDuplicates(t *testing.T) {
	c := NewCommercialCuckoo(1000, 12)
	r := Record{Key: 42, Payload: 1}
	if err := c.Insert(r); err != nil {
		t.Fatal(err)
	}
	if err := c.Insert(r); err != nil { // paranoid mode: dedup, no error
		t.Fatal(err)
	}
	if c.Len() != 1 {
		t.Fatalf("duplicate inserted twice: len=%d", c.Len())
	}
}

func TestCuckooFullErrors(t *testing.T) {
	c := NewCuckoo(8, 2, 0, 20, false)
	full := 0
	for i := uint64(1); i <= 64; i++ {
		if err := c.Insert(Record{Key: i}); err == ErrFull {
			full++
		}
	}
	if full == 0 {
		t.Fatal("overfull cuckoo never reported ErrFull")
	}
	// Everything that was accepted must still be findable.
	found := 0
	for i := uint64(1); i <= 64; i++ {
		if _, ok := c.Lookup(i); ok {
			found++
		}
	}
	if found != c.Len() {
		t.Fatalf("found %d != len %d", found, c.Len())
	}
}

func TestCuckooStash(t *testing.T) {
	c := NewCuckoo(8, 2, 16, 20, true)
	for i := uint64(1); i <= 24; i++ {
		if err := c.Insert(Record{Key: i}); err != nil {
			t.Fatalf("stash should absorb overflow: %v", err)
		}
	}
	for i := uint64(1); i <= 24; i++ {
		if _, ok := c.Lookup(i); !ok {
			t.Fatalf("missing %d (stash lookup broken?)", i)
		}
	}
}

func TestCuckooSizeCharging(t *testing.T) {
	c := NewCuckoo(1000, 4, 0, 16, false)
	if c.SizeBytes() != 1000*16 {
		t.Fatalf("SizeBytes = %d, want %d", c.SizeBytes(), 1000*16)
	}
}

func BenchmarkChainedLookup(b *testing.B) {
	keys := data.Lognormal(1_000_000, 0, 2, 1_000_000_000, 1)
	m := NewChained(len(keys), randomHash(len(keys)))
	for _, r := range records(keys) {
		m.Insert(r)
	}
	probes := data.SampleExisting(keys, 1<<16, 2)
	b.ResetTimer()
	var s uint64
	for i := 0; i < b.N; i++ {
		r, _ := m.Lookup(probes[i&(1<<16-1)])
		s += r.Payload
	}
	sinkU = s
}

func BenchmarkCuckooLookup(b *testing.B) {
	keys := data.Lognormal(1_000_000, 0, 2, 1_000_000_000, 1)
	c := NewAVXCuckoo(len(keys), 12)
	for _, r := range records(keys) {
		if err := c.Insert(r); err != nil {
			b.Fatal(err)
		}
	}
	probes := data.SampleExisting(keys, 1<<16, 2)
	b.ResetTimer()
	var s uint64
	for i := 0; i < b.N; i++ {
		r, _ := c.Lookup(probes[i&(1<<16-1)])
		s += r.Payload
	}
	sinkU = s
}

var sinkU uint64
