package hashmap

// InPlaceChained is the Appendix C architecture: "a chained Hash-map, which
// uses a two pass algorithm: in the first pass, the learned hash function
// is used to put items into slots. If a slot is already taken, the item is
// skipped. Afterwards we use a separate chaining approach for every skipped
// item except that we use the remaining free slots with offsets as pointers
// for them. As a result, the utilization can be 100% ... and the quality of
// the learned hash function can only make an impact on the performance not
// the size: the fewer conflicts, the fewer cache misses."
type InPlaceChained struct {
	hash  HashFunc
	slots []slot
	n     int
}

// BuildInPlaceChained constructs the map from all records at once (the
// structure is build-once / read-only, matching the paper's no-inserts
// assumption). numSlots must be >= len(recs); with numSlots == len(recs)
// utilization is exactly 100%.
func BuildInPlaceChained(recs []Record, numSlots int, hash HashFunc) *InPlaceChained {
	if numSlots < len(recs) {
		numSlots = len(recs)
	}
	m := &InPlaceChained{hash: hash, slots: make([]slot, numSlots), n: len(recs)}
	for i := range m.slots {
		m.slots[i].next = slotEmpty
	}
	// Pass 1: place every record whose home slot is free.
	skipped := make([]Record, 0, len(recs)/4)
	for _, r := range recs {
		p := m.hash(r.Key)
		if m.slots[p].next == slotEmpty {
			m.slots[p].rec = r
			m.slots[p].next = chainEnd
		} else {
			skipped = append(skipped, r)
		}
	}
	// Pass 2: place skipped records in remaining free slots and link them
	// from their home chain via in-array offsets.
	free := 0
	for _, r := range skipped {
		for m.slots[free].next != slotEmpty {
			free++
		}
		m.slots[free].rec = r
		m.slots[free].next = chainEnd
		// Append to the home chain of r's hash.
		p := m.hash(r.Key)
		for m.slots[p].next != chainEnd {
			p = int(m.slots[p].next)
		}
		m.slots[p].next = int32(free)
		free++
	}
	return m
}

// Lookup returns the record for key and whether it was found.
func (m *InPlaceChained) Lookup(key uint64) (Record, bool) {
	p := m.hash(key)
	s := &m.slots[p]
	if s.next == slotEmpty {
		return Record{}, false
	}
	for {
		if s.rec.Key == key {
			return s.rec, true
		}
		if s.next == chainEnd {
			return Record{}, false
		}
		s = &m.slots[s.next]
	}
}

// Len returns the number of stored records.
func (m *InPlaceChained) Len() int { return m.n }

// Utilization returns the fraction of occupied slots (1.0 when slots ==
// records).
func (m *InPlaceChained) Utilization() float64 {
	occ := 0
	for i := range m.slots {
		if m.slots[i].next != slotEmpty {
			occ++
		}
	}
	return float64(occ) / float64(len(m.slots))
}

// SizeBytes returns the footprint: 24-byte slots, no separate overflow.
func (m *InPlaceChained) SizeBytes() int { return len(m.slots) * slotBytes }
