// Package hashmap implements the Hash-map architectures evaluated in §4 and
// Appendices B–C: a separate-chaining map (Appendix B), an in-place
// two-pass chained map with 100% utilization (Appendix C), and a
// bucketized cuckoo map (Appendix C), all over the paper's 20-byte records
// (64-bit key, 64-bit payload, 32-bit meta-data field).
//
// Every map is parameterized by the hash function, so a learned CDF model
// and a Murmur-style randomized hash plug into identical architectures —
// the paper's point that "the hash-function is orthogonal to the actual
// Hash-map architecture" (§4.1).
package hashmap

// HashFunc maps a key to a slot in [0, slots). Implementations include
// randomized hashing (hashfn.Hash64 reduced) and learned CDF models
// (core.LearnedHash).
type HashFunc func(key uint64) int

// Record is the paper's 20-byte record: "a 64bit key, 64bit payload, and a
// 32bit meta-data field for delete flags, version nb, etc." (Appendix B).
type Record struct {
	Key     uint64
	Payload uint64
	Meta    uint32
}

// RecordBytes is the logical record width the paper charges (20 bytes).
const RecordBytes = 20

// chained slot states for the next field.
const (
	slotEmpty = -2 // no record in this slot
	chainEnd  = -1 // occupied, last of its chain
)

// slot is a chained-map slot: a record plus a 32-bit chain offset, "making
// it a 24Byte slot" (Appendix B).
type slot struct {
	rec  Record
	next int32
}

// slotBytes is the logical chained-map slot width the paper charges.
const slotBytes = 24

// Chained is a separate-chaining hash map where "records are stored
// directly within an array and only in the case of a conflict is the record
// attached to the linked-list" (Appendix B). Overflow records live in a
// separate array addressed by 32-bit offsets, so an unconflicted lookup is
// a single probe.
type Chained struct {
	hash     HashFunc
	slots    []slot
	overflow []slot
	n        int
}

// NewChained creates a chained map with the given number of primary slots.
func NewChained(numSlots int, hash HashFunc) *Chained {
	m := &Chained{hash: hash, slots: make([]slot, numSlots)}
	for i := range m.slots {
		m.slots[i].next = slotEmpty
	}
	return m
}

// Insert adds a record (keys are assumed unique, as in the paper's
// build-once workload).
func (m *Chained) Insert(rec Record) {
	p := m.hash(rec.Key)
	s := &m.slots[p]
	m.n++
	if s.next == slotEmpty {
		s.rec = rec
		s.next = chainEnd
		return
	}
	// Conflict: the new record chains behind the resident one, head-inserted
	// into the overflow array. The resident record keeps its one-probe hit.
	m.overflow = append(m.overflow, slot{rec: rec, next: s.next})
	s.next = int32(len(m.overflow) - 1)
}

// Lookup returns the record for key and whether it was found.
func (m *Chained) Lookup(key uint64) (Record, bool) {
	p := m.hash(key)
	s := &m.slots[p]
	if s.next == slotEmpty {
		return Record{}, false
	}
	if s.rec.Key == key {
		return s.rec, true
	}
	for idx := s.next; idx != chainEnd; {
		o := &m.overflow[idx]
		if o.rec.Key == key {
			return o.rec, true
		}
		idx = o.next
	}
	return Record{}, false
}

// Len returns the number of stored records.
func (m *Chained) Len() int { return m.n }

// NumSlots returns the primary-array capacity.
func (m *Chained) NumSlots() int { return len(m.slots) }

// EmptySlots returns the number of unused primary slots — the "wasted"
// space Figure 11 reports in GB.
func (m *Chained) EmptySlots() int {
	e := 0
	for i := range m.slots {
		if m.slots[i].next == slotEmpty {
			e++
		}
	}
	return e
}

// OverflowLen returns the number of records pushed to overflow chains.
func (m *Chained) OverflowLen() int { return len(m.overflow) }

// SizeBytes returns the total logical footprint: 24-byte slots for the
// primary array and the overflow array. Unlike the B-Tree experiments this
// includes the data itself, "to enable 1 cache-miss look-ups, the data
// itself has to be included in the Hash-map" (Appendix B).
func (m *Chained) SizeBytes() int {
	return (len(m.slots) + len(m.overflow)) * slotBytes
}

// EmptyBytes returns the bytes tied up in empty primary slots.
func (m *Chained) EmptyBytes() int { return m.EmptySlots() * slotBytes }

// Conflicts returns how many inserted records collided with an occupied
// slot (the Figure 8 metric is computed separately by core.ConflictRate;
// this reports the architecture view: overflow records).
func (m *Chained) Conflicts() int { return len(m.overflow) }
