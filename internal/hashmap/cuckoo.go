package hashmap

import (
	"errors"

	"learnedindex/internal/hashfn"
)

// Cuckoo is a bucketized cuckoo hash map with two hash functions and
// multi-slot buckets, the Appendix C baselines. Two presets exist:
//
//   - NewAVXCuckoo: 8 slots per bucket, no stash — the shape of the
//     Stanford DAWN "AVX cuckoo" [7], which scans a whole bucket per probe
//     (one SIMD compare on hardware) and achieves 99% utilization.
//   - NewCommercialCuckoo: 4 slots per bucket plus a stash and full
//     corner-case handling (duplicate detection, graceful failure), the
//     "commercially used Cuckoo Hash-map" comparison point, which the paper
//     measures at roughly half the speed of the tuned one.
//
// The value layout is configurable: 8-byte values ("32-bit value" in the
// paper's Table 1 is a compact payload; we use the 8-byte variant for both
// and charge the configured width) or full 20-byte records.
type Cuckoo struct {
	buckets    [][]cuckooSlot
	bucketSize int
	nBuckets   int
	stash      []Record
	stashCap   int
	n          int
	recBytes   int // charged bytes per record (8+valueBytes)
	paranoid   bool
	seed1      uint64
	seed2      uint64
}

type cuckooSlot struct {
	occupied bool
	rec      Record
}

// ErrFull is returned when an insert cannot be placed within the kick limit
// and the stash (if any) is full.
var ErrFull = errors.New("hashmap: cuckoo table full")

// NewCuckoo creates a cuckoo map with capacity slots total, bucketSize
// slots per bucket, stashCap stash entries, and recBytes charged per
// record. paranoid enables the extra corner-case handling of the
// commercial variant (duplicate checks on every insert).
func NewCuckoo(capacity, bucketSize, stashCap, recBytes int, paranoid bool) *Cuckoo {
	if bucketSize < 1 {
		bucketSize = 1
	}
	nBuckets := (capacity + bucketSize - 1) / bucketSize
	if nBuckets < 2 {
		nBuckets = 2
	}
	c := &Cuckoo{
		bucketSize: bucketSize,
		nBuckets:   nBuckets,
		stashCap:   stashCap,
		recBytes:   recBytes,
		paranoid:   paranoid,
		seed1:      0x9e3779b97f4a7c15,
		seed2:      0xc2b2ae3d27d4eb4f,
	}
	c.buckets = make([][]cuckooSlot, nBuckets)
	backing := make([]cuckooSlot, nBuckets*bucketSize)
	for i := range c.buckets {
		c.buckets[i] = backing[i*bucketSize : (i+1)*bucketSize]
	}
	return c
}

// NewAVXCuckoo returns the tuned preset: 8-slot buckets, no stash, no
// paranoid checks, sized for ~99% utilization over n records.
func NewAVXCuckoo(n, valueBytes int) *Cuckoo {
	return NewCuckoo(n*101/100, 8, 0, 8+valueBytes, false)
}

// NewCommercialCuckoo returns the conservative preset: 4-slot buckets, a
// stash, duplicate handling, sized for ~95% utilization.
func NewCommercialCuckoo(n, valueBytes int) *Cuckoo {
	return NewCuckoo(n*106/100, 4, 64, 8+valueBytes, true)
}

func (c *Cuckoo) h1(key uint64) int {
	return hashfn.Reduce(hashfn.Hash64(key, c.seed1), c.nBuckets)
}

func (c *Cuckoo) h2(key uint64) int {
	return hashfn.Reduce(hashfn.Hash64(key, c.seed2), c.nBuckets)
}

// Insert adds a record, kicking residents between their two candidate
// buckets as needed. Returns ErrFull if placement fails.
func (c *Cuckoo) Insert(rec Record) error {
	if c.paranoid {
		if _, ok := c.Lookup(rec.Key); ok {
			return nil // duplicate: commercial maps treat insert as upsert
		}
	}
	cur := rec
	b1, b2 := c.h1(cur.Key), c.h2(cur.Key)
	if c.tryPlace(b1, cur) || c.tryPlace(b2, cur) {
		c.n++
		return nil
	}
	// Random-walk eviction: displace a pseudo-random resident of the
	// current bucket and follow the victim to its alternate bucket. The
	// walk-length distribution has a heavy tail near full occupancy, so
	// the kick budget is generous.
	const maxKicks = 2000
	b := b1
	for kick := 0; kick < maxKicks; kick++ {
		victim := int(hashfn.Mix64(cur.Key+uint64(kick)*0x9e3779b9) % uint64(c.bucketSize))
		cur, c.buckets[b][victim].rec = c.buckets[b][victim].rec, cur
		b = c.otherBucket(cur.Key, b)
		if c.tryPlace(b, cur) {
			c.n++
			return nil
		}
	}
	if len(c.stash) < c.stashCap {
		c.stash = append(c.stash, cur)
		c.n++
		return nil
	}
	return ErrFull
}

func (c *Cuckoo) tryPlace(b int, rec Record) bool {
	for i := range c.buckets[b] {
		if !c.buckets[b][i].occupied {
			c.buckets[b][i] = cuckooSlot{occupied: true, rec: rec}
			return true
		}
	}
	return false
}

func (c *Cuckoo) otherBucket(key uint64, b int) int {
	b1, b2 := c.h1(key), c.h2(key)
	if b == b1 {
		return b2
	}
	return b1
}

// Lookup returns the record for key and whether it was found. Both
// candidate buckets are scanned in full (one SIMD compare each on
// hardware), then the stash.
func (c *Cuckoo) Lookup(key uint64) (Record, bool) {
	b1 := c.h1(key)
	for i := range c.buckets[b1] {
		if c.buckets[b1][i].occupied && c.buckets[b1][i].rec.Key == key {
			return c.buckets[b1][i].rec, true
		}
	}
	b2 := c.h2(key)
	for i := range c.buckets[b2] {
		if c.buckets[b2][i].occupied && c.buckets[b2][i].rec.Key == key {
			return c.buckets[b2][i].rec, true
		}
	}
	for i := range c.stash {
		if c.stash[i].Key == key {
			return c.stash[i], true
		}
	}
	return Record{}, false
}

// Len returns the number of stored records.
func (c *Cuckoo) Len() int { return c.n }

// Utilization returns stored records / total slots.
func (c *Cuckoo) Utilization() float64 {
	return float64(c.n) / float64(c.nBuckets*c.bucketSize)
}

// SizeBytes returns the charged footprint: recBytes per slot (occupied or
// not) plus the stash.
func (c *Cuckoo) SizeBytes() int {
	return (c.nBuckets*c.bucketSize + len(c.stash)) * c.recBytes
}
