// Package cdfstat provides empirical-CDF utilities and the Appendix A
// scaling analysis.
//
// Appendix A frames a learned range index as a model F(x) of the empirical
// CDF F̂_N(x) and shows the expected squared error between them is
// F(x)(1-F(x))/N, so the average *position* error (N·F vs N·F̂_N) grows as
// O(√N) — sub-linear, versus the linear growth of a constant-sized B-Tree's
// covered-keys-per-node. ErrScaling measures that rate empirically.
package cdfstat

import (
	"math"
	"sort"
)

// Empirical is an empirical CDF over a sorted key sample.
type Empirical struct {
	keys []uint64
}

// NewEmpirical builds the CDF from sorted unique keys.
func NewEmpirical(sorted []uint64) *Empirical { return &Empirical{keys: sorted} }

// F returns F̂(x) = |{k <= x}| / N.
func (e *Empirical) F(x uint64) float64 {
	if len(e.keys) == 0 {
		return 0
	}
	i := sort.Search(len(e.keys), func(i int) bool { return e.keys[i] > x })
	return float64(i) / float64(len(e.keys))
}

// KolmogorovSmirnov returns sup |F̂_a - F̂_b| over the union of both
// samples' keys — used by tests to check generator stability across seeds.
func KolmogorovSmirnov(a, b *Empirical) float64 {
	max := 0.0
	for _, k := range a.keys {
		d := math.Abs(a.F(k) - b.F(k))
		if d > max {
			max = d
		}
	}
	for _, k := range b.keys {
		d := math.Abs(a.F(k) - b.F(k))
		if d > max {
			max = d
		}
	}
	return max
}

// ErrStats summarizes position errors of a model over a key set.
type ErrStats struct {
	N       int
	MeanAbs float64
	RMS     float64
	Max     int
}

// MeasureErrors evaluates predict over sorted keys against their true
// positions.
func MeasureErrors(keys []uint64, predict func(uint64) int) ErrStats {
	st := ErrStats{N: len(keys)}
	var sum, sumsq float64
	for i, k := range keys {
		d := predict(k) - i
		if d < 0 {
			d = -d
		}
		if d > st.Max {
			st.Max = d
		}
		fd := float64(d)
		sum += fd
		sumsq += fd * fd
	}
	if st.N > 0 {
		st.MeanAbs = sum / float64(st.N)
		st.RMS = math.Sqrt(sumsq / float64(st.N))
	}
	return st
}

// ScalingPoint is one (N, error) measurement of the Appendix A experiment.
type ScalingPoint struct {
	N       int
	MeanAbs float64
}

// FitPowerLaw fits error ≈ c·N^alpha by least squares in log-log space and
// returns alpha. Appendix A predicts alpha ≈ 0.5 for a constant-size model
// of i.i.d. data.
func FitPowerLaw(pts []ScalingPoint) (alpha, c float64) {
	if len(pts) < 2 {
		return 0, 0
	}
	var sx, sy, sxx, sxy float64
	n := 0
	for _, p := range pts {
		if p.N <= 0 || p.MeanAbs <= 0 {
			continue
		}
		x := math.Log(float64(p.N))
		y := math.Log(p.MeanAbs)
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
		n++
	}
	if n < 2 {
		return 0, 0
	}
	fn := float64(n)
	den := sxx - sx*sx/fn
	if den == 0 {
		return 0, 0
	}
	alpha = (sxy - sx*sy/fn) / den
	c = math.Exp((sy - alpha*sx) / fn)
	return alpha, c
}

// TheoreticalVar returns F(x)(1-F(x))/N, Eq. (3) of Appendix A.
func TheoreticalVar(f float64, n int) float64 {
	return f * (1 - f) / float64(n)
}
