package cdfstat

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"learnedindex/internal/data"
	"learnedindex/internal/ml"
)

func TestEmpiricalF(t *testing.T) {
	e := NewEmpirical([]uint64{10, 20, 30, 40})
	cases := []struct {
		x    uint64
		want float64
	}{{5, 0}, {10, 0.25}, {25, 0.5}, {40, 1}, {100, 1}}
	for _, c := range cases {
		if got := e.F(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("F(%d) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestKolmogorovSmirnovSameDistribution(t *testing.T) {
	a := NewEmpirical(data.Lognormal(20_000, 0, 2, 1_000_000_000, 1))
	b := NewEmpirical(data.Lognormal(20_000, 0, 2, 1_000_000_000, 99))
	if ks := KolmogorovSmirnov(a, b); ks > 0.05 {
		t.Fatalf("same-distribution KS %.4f too large; generator unstable across seeds", ks)
	}
}

func TestKolmogorovSmirnovDifferentDistributions(t *testing.T) {
	a := NewEmpirical(data.Lognormal(20_000, 0, 2, 1_000_000_000, 1))
	b := NewEmpirical(data.Uniform(20_000, 1_000_000_000, 1))
	if ks := KolmogorovSmirnov(a, b); ks < 0.2 {
		t.Fatalf("lognormal-vs-uniform KS %.4f too small", ks)
	}
}

func TestMeasureErrors(t *testing.T) {
	keys := []uint64{10, 20, 30, 40}
	st := MeasureErrors(keys, func(k uint64) int { return int(k/10) - 1 }) // perfect
	if st.MeanAbs != 0 || st.Max != 0 {
		t.Fatalf("perfect predictor has errors: %+v", st)
	}
	st = MeasureErrors(keys, func(uint64) int { return 0 })
	if st.Max != 3 || st.MeanAbs != 1.5 {
		t.Fatalf("constant predictor stats wrong: %+v", st)
	}
}

func TestAppendixASqrtNScaling(t *testing.T) {
	// The Appendix A experiment: a constant-size model (here: the true
	// lognormal CDF fit on a fixed 1k sample) evaluated against growing
	// i.i.d. samples should see position error grow ~ N^0.5.
	rng := rand.New(rand.NewSource(1))
	var pts []ScalingPoint
	for _, n := range []int{2_000, 8_000, 32_000, 128_000} {
		sample := make([]float64, n)
		for i := range sample {
			sample[i] = rng.NormFloat64() // model CDF known analytically
		}
		sort.Float64s(sample)
		var sum float64
		for i, x := range sample {
			// Model: exact Gaussian CDF — constant size, zero estimation
			// error; all residual is sampling noise, Eq. (3).
			pred := 0.5 * (1 + math.Erf(x/math.Sqrt2)) * float64(n)
			sum += math.Abs(pred - float64(i))
		}
		pts = append(pts, ScalingPoint{N: n, MeanAbs: sum / float64(n)})
	}
	alpha, _ := FitPowerLaw(pts)
	if alpha < 0.3 || alpha > 0.7 {
		t.Fatalf("error scaling exponent %.3f, Appendix A predicts ~0.5", alpha)
	}
}

func TestFitPowerLawExact(t *testing.T) {
	pts := []ScalingPoint{{10, 2 * math.Sqrt(10)}, {100, 2 * math.Sqrt(100)}, {1000, 2 * math.Sqrt(1000)}}
	alpha, c := FitPowerLaw(pts)
	if math.Abs(alpha-0.5) > 1e-9 || math.Abs(c-2) > 1e-9 {
		t.Fatalf("alpha=%v c=%v, want 0.5, 2", alpha, c)
	}
}

func TestFitPowerLawDegenerate(t *testing.T) {
	if a, _ := FitPowerLaw(nil); a != 0 {
		t.Fatal("nil points")
	}
	if a, _ := FitPowerLaw([]ScalingPoint{{10, 5}}); a != 0 {
		t.Fatal("single point")
	}
}

func TestTheoreticalVar(t *testing.T) {
	if TheoreticalVar(0.5, 100) != 0.0025 {
		t.Fatal("Eq. 3 arithmetic wrong")
	}
	if TheoreticalVar(0, 100) != 0 || TheoreticalVar(1, 100) != 0 {
		t.Fatal("variance must vanish at the CDF extremes")
	}
}

func TestModelErrorsBeatConstantOnRealModel(t *testing.T) {
	// Sanity link to the ml package: a fitted line has lower measured error
	// than a constant predictor on near-linear data.
	keys := data.Maps(10_000, 1)
	xs := make([]float64, len(keys))
	ys := make([]float64, len(keys))
	for i, k := range keys {
		xs[i] = float64(k)
		ys[i] = float64(i)
	}
	lin := ml.FitLinear(xs, ys)
	linErr := MeasureErrors(keys, func(k uint64) int { return int(lin.Predict(float64(k))) })
	constErr := MeasureErrors(keys, func(uint64) int { return len(keys) / 2 })
	if linErr.MeanAbs >= constErr.MeanAbs {
		t.Fatal("linear model should beat a constant")
	}
}
