package repl

import (
	"errors"
	"fmt"
	"io"
	"sync"
)

// MemTransport is an in-process Transport: named listeners, duplex
// connections built from two bounded byte pipes. It exists for tests and
// benchmarks — everything the TCP transport provides (ordered bytes,
// backpressure when the peer stops reading, Close unblocking both ends)
// without sockets, so the chaos oracle can run thousands of connection
// cycles deterministically cheap.
type MemTransport struct {
	mu sync.Mutex
	ls map[string]*memListener
}

// NewMemTransport returns an empty in-memory network.
func NewMemTransport() *MemTransport {
	return &MemTransport{ls: make(map[string]*memListener)}
}

func (t *MemTransport) Listen(addr string) (Listener, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.ls[addr]; ok {
		return nil, fmt.Errorf("repl: address %q already in use", addr)
	}
	l := &memListener{t: t, addr: addr, backlog: make(chan Conn, 16), done: make(chan struct{})}
	t.ls[addr] = l
	return l, nil
}

func (t *MemTransport) Dial(addr string) (Conn, error) {
	t.mu.Lock()
	l := t.ls[addr]
	t.mu.Unlock()
	if l == nil {
		return nil, ErrConnRefused
	}
	a2b, b2a := newPipeBuf(), newPipeBuf()
	client := &memConn{rd: b2a, wr: a2b}
	server := &memConn{rd: a2b, wr: b2a}
	select {
	case l.backlog <- server:
		return client, nil
	case <-l.done:
		return nil, ErrConnRefused
	}
}

type memListener struct {
	t       *MemTransport
	addr    string
	backlog chan Conn
	done    chan struct{}
	once    sync.Once
}

func (l *memListener) Accept() (Conn, error) {
	select {
	case c := <-l.backlog:
		return c, nil
	case <-l.done:
		return nil, errors.New("repl: listener closed")
	}
}

func (l *memListener) Close() error {
	l.once.Do(func() {
		close(l.done)
		l.t.mu.Lock()
		if l.t.ls[l.addr] == l {
			delete(l.t.ls, l.addr)
		}
		l.t.mu.Unlock()
	})
	return nil
}

func (l *memListener) Addr() string { return l.addr }

// memConn is one duplex endpoint over two pipes. Close severs BOTH
// directions, so a blocked peer (reader or writer, either side) wakes —
// the property every watchdog in the plane depends on.
type memConn struct {
	rd, wr *pipeBuf
}

func (c *memConn) Read(p []byte) (int, error)  { return c.rd.Read(p) }
func (c *memConn) Write(p []byte) (int, error) { return c.wr.Write(p) }
func (c *memConn) Close() error {
	c.rd.close()
	c.wr.close()
	return nil
}

// pipeBufCap bounds the bytes buffered in one direction. A follower that
// stops draining (bounded apply queue full) fills this buffer and the
// primary's Write blocks — transport backpressure, exactly like a full TCP
// window.
const pipeBufCap = 256 << 10

type pipeBuf struct {
	mu     sync.Mutex
	cond   *sync.Cond
	buf    []byte
	closed bool
}

func newPipeBuf() *pipeBuf {
	p := &pipeBuf{}
	p.cond = sync.NewCond(&p.mu)
	return p
}

func (p *pipeBuf) Read(b []byte) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for len(p.buf) == 0 {
		if p.closed {
			return 0, io.EOF
		}
		p.cond.Wait()
	}
	n := copy(b, p.buf)
	p.buf = p.buf[:copy(p.buf, p.buf[n:])]
	p.cond.Broadcast()
	return n, nil
}

func (p *pipeBuf) Write(b []byte) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for len(p.buf) >= pipeBufCap {
		if p.closed {
			return 0, io.ErrClosedPipe
		}
		p.cond.Wait()
	}
	if p.closed {
		return 0, io.ErrClosedPipe
	}
	p.buf = append(p.buf, b...)
	p.cond.Broadcast()
	return len(b), nil
}

func (p *pipeBuf) close() {
	p.mu.Lock()
	p.closed = true
	p.cond.Broadcast()
	p.mu.Unlock()
}
