package repl

import (
	"errors"
	"fmt"
	"math/rand"
	"slices"
	"sync"
	"testing"
	"time"

	"learnedindex/internal/storage"
	"learnedindex/internal/vfs"
)

// chaosTally aggregates injected-fault counts across every trial so the
// suite can assert the schedules actually fire — a chaos oracle whose
// faults silently stopped injecting proves nothing.
var chaosTally = struct {
	sync.Mutex
	net  map[string]int
	disk int64
}{net: map[string]int{}}

func tallyChaos(fnet *FaultNet, pffs *vfs.FaultFS) {
	chaosTally.Lock()
	defer chaosTally.Unlock()
	for k, v := range fnet.InjectionCounts() {
		chaosTally.net[k] += v
	}
	chaosTally.disk += pffs.Injected()
}

// chaosFS is the primary-side filesystem fault schedule: every class live
// at a low rate (the storage oracle's mix, halved — the trial also has to
// survive the network, so the disk should not poison every run instantly).
func chaosFS(seed int64) vfs.FaultConfig {
	return vfs.FaultConfig{
		Seed:        seed,
		SyncErr:     0.01,
		SyncDirErr:  0.01,
		WriteENOSPC: 0.005,
		TornWrite:   0.01,
		RenameErr:   0.01,
		RemoveErr:   0.02,
		OpenErr:     0.005,
		ReadErr:     0.005,
	}
}

// chaosNet is the wire fault schedule: connection drops, torn and
// bit-flipped and reordered messages, slow links, flaky dials.
func chaosNet(seed int64) FaultNetConfig {
	return FaultNetConfig{
		Seed:         seed,
		DialErr:      0.05,
		DropConn:     0.01,
		TornWrite:    0.01,
		CorruptBit:   0.01,
		ReorderWrite: 0.01,
		Delay:        0.02,
		MaxDelay:     time.Millisecond,
	}
}

// TestReplChaosOracle is the replication plane's randomized chaos oracle,
// the wire-level sibling of storage's TestFaultScheduleOracle: a primary on
// a fault-injected filesystem ships to a follower over a fault-injected
// network while the driver mixes writes, scripted partitions, and follower
// crash/restarts — 25+ seeds per key mode (one per mode under -race).
//
// Invariants, checked at sampled steps throughout:
//   - the follower's served set is always a subset of the keys the primary
//     has made durable (a follower never runs ahead of the primary's acks,
//     and replay never invents a key);
//   - primary errors are always scheduled faults or their lawful sticky
//     consequences, never unscheduled failures, never panics.
//
// After heal (faults off, partition lifted, primary recovered from disk
// under a bumped epoch) the follower must converge to EXACTLY the
// primary's served set — equal Len, equal keys.
func TestReplChaosOracle(t *testing.T) {
	seeds := 25
	if raceEnabled {
		seeds = 1
	}
	for _, mode := range []struct {
		name string
		str  bool
	}{{"uint64", false}, {"string", true}} {
		mode := mode
		t.Run(mode.name, func(t *testing.T) {
			// The extra "trials" group makes its parallel children complete
			// before the schedule-coverage assertion below runs.
			t.Run("trials", func(t *testing.T) {
				for s := 0; s < seeds; s++ {
					seed := int64(9000 + s)
					t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
						t.Parallel()
						runReplChaosTrial(t, seed, mode.str)
					})
				}
			})
			if t.Failed() || raceEnabled {
				return // one -race seed cannot promise every class fires
			}
			chaosTally.Lock()
			defer chaosTally.Unlock()
			for _, class := range []string{"dial", "drop_conn", "torn_write", "corrupt_bit", "reorder_write", "partition"} {
				if chaosTally.net[class] == 0 {
					t.Errorf("chaos schedule never injected %q across the seed fleet", class)
				}
			}
			if chaosTally.disk == 0 {
				t.Error("chaos schedule never injected a primary filesystem fault")
			}
		})
	}
}

func runReplChaosTrial(t *testing.T, seed int64, strMode bool) {
	pdir, fdir := t.TempDir(), t.TempDir()
	str := func(k uint64) string { return fmt.Sprintf("k%016x", k) }

	// Primary engine on the fault-injected filesystem. NoCompactor keeps
	// the primary's fault stream aligned with driver operations (Compact
	// runs inline); the follower engine runs the full default stack on a
	// clean filesystem — the follower's own durability is the storage
	// oracle's problem, this trial is about the wire.
	pffs := vfs.NewFaultFS(vfs.OS, chaosFS(seed))
	pffs.Disarm()
	peng, err := storage.Open(pdir, storage.Options{
		NoCompactor: true, CompactFanout: 3, StringKeys: strMode, FS: pffs,
	})
	if err != nil {
		t.Fatal(err)
	}
	mem := NewMemTransport()
	fnet := NewFaultNet(mem, chaosNet(seed))
	prim, err := NewPrimary(peng, PrimaryOptions{
		Epoch: 1, HeartbeatEvery: 10 * time.Millisecond, RingFrames: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := prim.Serve(fnet, "prim"); err != nil {
		t.Fatal(err)
	}
	pffs.Arm()

	folOpts := FollowerOptions{
		Addr: "prim", Transport: fnet,
		ReconnectBase: 2 * time.Millisecond, ReconnectMax: 40 * time.Millisecond,
		JitterSeed:       seed,
		HeartbeatTimeout: time.Second,
		FlushEvery:       300,
		QueueDepth:       8,
	}
	openFollower := func() (*storage.Engine, *Follower) {
		feng, err := storage.Open(fdir, storage.Options{CompactFanout: 3, StringKeys: strMode})
		if err != nil {
			t.Fatalf("follower open: %v", err)
		}
		fol, err := NewFollower(feng, folOpts)
		if err != nil {
			t.Fatal(err)
		}
		fol.Start()
		return feng, fol
	}
	feng, fol := openFollower()

	doCommit := func(b []uint64) error {
		if !strMode {
			return peng.CommitBatch(b)
		}
		s := make([]string, len(b))
		for i, k := range b {
			s[i] = str(k)
		}
		return peng.CommitStringBatch(s)
	}
	doAppend := func(b []uint64) error {
		if !strMode {
			return peng.AppendBatch(b)
		}
		s := make([]string, len(b))
		for i, k := range b {
			s[i] = str(k)
		}
		return peng.AppendStringBatch(s)
	}

	scheduled := func(err error) bool {
		return errors.Is(err, vfs.ErrInjected) ||
			errors.Is(err, storage.ErrPoisoned) || errors.Is(err, storage.ErrDegraded)
	}
	requireScheduled := func(op string, err error) {
		t.Helper()
		if !scheduled(err) {
			t.Fatalf("%s: unscheduled error %v", op, err)
		}
	}

	rng := rand.New(rand.NewSource(seed))
	acked := map[uint64]bool{}     // primary acked durably — must survive its crash
	mayRepl := map[uint64]bool{}   // durable-possible: the follower may serve these
	attempted := map[uint64]bool{} // everything ever handed to the primary
	var unsynced []uint64

	batch := func() []uint64 {
		n := 1 + rng.Intn(30)
		b := make([]uint64, n)
		for i := range b {
			b[i] = uint64(rng.Int63n(1_000_000_000))
			attempted[b[i]] = true
		}
		return b
	}
	ack := func(keys []uint64) {
		for _, k := range keys {
			acked[k] = true
			mayRepl[k] = true
		}
	}

	// followerKeys decodes the follower's currently served set back to the
	// trial's key domain (a served key outside the domain is an invention).
	followerKeys := func(eng *storage.Engine) []uint64 {
		t.Helper()
		if !strMode {
			return eng.Keys()
		}
		var out []uint64
		for _, s := range eng.KeysStrings() {
			var k uint64
			if n, err := fmt.Sscanf(s, "k%016x", &k); n != 1 || err != nil {
				t.Fatalf("follower serves invented key %q", s)
			}
			out = append(out, k)
		}
		return out
	}
	checkSubset := func() {
		t.Helper()
		// Flushing surfaces applied-but-pending keys into the served set so
		// the sample sees them; the follower engine is on a clean fs, so a
		// flush error here is a real bug.
		if err := feng.Flush(); err != nil {
			t.Fatalf("follower flush: %v", err)
		}
		for _, k := range followerKeys(feng) {
			if !mayRepl[k] {
				t.Fatalf("follower serves key %d the primary never made durable", k)
			}
			if !attempted[k] {
				t.Fatalf("follower serves invented key %d", k)
			}
		}
	}

	partitioned := false
	steps := 40 + rng.Intn(20)
	for i := 0; i < steps; i++ {
		switch rng.Intn(14) {
		case 0, 1, 2: // Append: durable only once a later sync-class op acks
			b := batch()
			if err := doAppend(b); err != nil {
				requireScheduled("append", err)
			} else {
				unsynced = append(unsynced, b...)
			}
		case 3, 4, 5, 6: // Commit: the cohort fsync covers prior appends too
			b := batch()
			if err := doCommit(b); err != nil {
				requireScheduled("commit", err)
			} else {
				ack(b)
				ack(unsynced)
				unsynced = unsynced[:0]
			}
		case 7: // Sync
			if err := peng.Sync(); err != nil {
				requireScheduled("sync", err)
			} else {
				ack(unsynced)
				unsynced = unsynced[:0]
			}
		case 8: // Flush: on failure the frozen log's fsync may still have
			// landed (and shipped) before the segment plane failed, so the
			// unsynced keys become durable-POSSIBLE without being acked.
			if err := peng.Flush(); err != nil {
				requireScheduled("flush", err)
				for _, k := range unsynced {
					mayRepl[k] = true
				}
				unsynced = unsynced[:0]
			} else {
				ack(unsynced)
				unsynced = unsynced[:0]
			}
		case 9:
			if err := peng.Compact(); err != nil {
				requireScheduled("compact", err)
			}
		case 10: // scripted partition toggle
			partitioned = !partitioned
			fnet.SetPartitioned(partitioned)
		case 11: // follower crash + restart (engine close/reopen included)
			if err := fol.Close(); err != nil {
				t.Fatalf("follower close: %v", err)
			}
			if err := feng.Close(); err != nil {
				t.Fatalf("follower engine close: %v", err)
			}
			feng, fol = openFollower()
		case 12: // let the pipeline move
			time.Sleep(time.Duration(rng.Intn(5)) * time.Millisecond)
		case 13:
			checkSubset()
		}
	}
	checkSubset()

	// --- heal ------------------------------------------------------------
	// Faults off, partition lifted, primary recovered from its own disk
	// under a bumped epoch (a restarted primary must move the epoch — its
	// frame sequence restarts). The follower, whatever state the chaos left
	// it in, must reconnect, re-snapshot, and converge exactly.
	fnet.Disarm()
	fnet.SetPartitioned(false)
	partitioned = false
	_ = partitioned
	if err := prim.Close(); err != nil {
		t.Fatalf("primary close: %v", err)
	}
	pffs.Disarm()
	if err := peng.Close(); err != nil {
		requireScheduled("primary engine close", err)
	}
	for _, k := range unsynced {
		mayRepl[k] = true // a closing flush may have landed them
	}
	peng2, err := storage.Open(pdir, storage.Options{
		NoCompactor: true, CompactFanout: 3, StringKeys: strMode,
	})
	if err != nil {
		t.Fatalf("primary reopen after chaos: %v", err)
	}
	defer peng2.Close()
	peng = peng2 // not used for writes below; keeps helpers honest
	prim2, err := NewPrimary(peng2, PrimaryOptions{
		Epoch: 2, HeartbeatEvery: 10 * time.Millisecond, RingFrames: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer prim2.Close()
	if err := prim2.Serve(fnet, "prim"); err != nil {
		t.Fatal(err)
	}

	// The recovered primary must serve every key it acked (the storage
	// oracle's guarantee, re-checked here because replication rides on it)
	// and nothing it was never given.
	primServed := followerKeys(peng2)
	primSet := make(map[uint64]bool, len(primServed))
	for _, k := range primServed {
		if !attempted[k] {
			t.Fatalf("recovered primary serves invented key %d", k)
		}
		primSet[k] = true
		mayRepl[k] = true // recovery may surface attempted-but-unacked keys
	}
	for k := range acked {
		if !primSet[k] {
			t.Fatalf("acked key %d lost by primary across the chaos schedule", k)
		}
	}

	// Exact convergence: equal Len, equal key sets.
	deadline := time.Now().Add(testTimeout)
	for {
		if err := feng.Flush(); err != nil {
			t.Fatalf("follower flush: %v", err)
		}
		got := followerKeys(feng)
		if slices.Equal(got, primServed) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no convergence after heal: follower %d keys, primary %d keys (epoch=%d applied=%d primDurable=%d)",
				len(got), len(primServed), fol.Status().MaxEpoch, fol.Status().AppliedSeq, peng2.ReplDurableSeq())
		}
		time.Sleep(5 * time.Millisecond)
	}
	checkSubset()

	if err := fol.Close(); err != nil {
		t.Fatalf("follower close: %v", err)
	}
	if err := feng.Close(); err != nil {
		t.Fatalf("follower engine close: %v", err)
	}
	tallyChaos(fnet, pffs)
}
