package repl

import (
	"bytes"
	"fmt"
	"math/rand"
	"slices"
	"testing"
)

// buildStream encodes count valid wire messages, deterministic from seed,
// returning the bytes and the originals for comparison.
func buildStream(seed int64, count int, strMode bool) ([]byte, []msg) {
	rng := rand.New(rand.NewSource(seed))
	var out []byte
	var msgs []msg
	seq := uint64(0)
	for i := 0; i < count; i++ {
		var m msg
		switch rng.Intn(5) {
		case 0:
			seq++
			m = msg{kind: msgFrame, strMode: strMode, seq: seq}
			for j := rng.Intn(6); j > 0; j-- {
				if strMode {
					m.strs = append(m.strs, fmt.Sprintf("k%04d", rng.Intn(10000)))
				} else {
					m.keys = append(m.keys, uint64(rng.Intn(1_000_000)))
				}
			}
		case 1:
			m = msg{kind: msgHeartbeat, epoch: uint64(1 + rng.Intn(4)), seq: seq, nonce: uint64(rng.Intn(100))}
		case 2:
			m = msg{kind: msgAck, seq: uint64(rng.Intn(int(seq + 1))), nonce: uint64(rng.Intn(100))}
		case 3:
			m = msg{kind: msgSnapChunk, strMode: strMode}
			for j := rng.Intn(6); j > 0; j-- {
				if strMode {
					m.strs = append(m.strs, fmt.Sprintf("s%04d", rng.Intn(10000)))
				} else {
					m.keys = append(m.keys, uint64(rng.Intn(1_000_000)))
				}
			}
		case 4:
			m = msg{kind: msgSnapBegin, seq: seq, count: uint64(rng.Intn(1000))}
		}
		out = appendMsg(out, &m)
		msgs = append(msgs, m)
	}
	return out, msgs
}

func msgEq(a, b msg) bool {
	return a.kind == b.kind && a.epoch == b.epoch && a.seq == b.seq &&
		a.count == b.count && a.nonce == b.nonce &&
		slices.Equal(a.keys, b.keys) && slices.Equal(a.strs, b.strs)
}

// decodeAll reads messages until the first error, bounded (a hostile
// stream must not loop forever). Never panics — that is the property under
// test.
func decodeAll(stream []byte, strMode bool, limit int) []msg {
	r := bytes.NewReader(stream)
	var buf []byte
	var out []msg
	for len(out) < limit {
		var m msg
		if err := readMsg(r, &buf, strMode, &m); err != nil {
			break
		}
		out = append(out, m)
	}
	return out
}

// FuzzReplStreamDecode is FuzzWALReplay's wire twin: a valid message
// prefix followed by arbitrary bytes. The decoder must never panic, must
// reproduce every intact prefix message exactly (replay neither loses nor
// invents — what decodes is precisely what was encoded), and truncating
// the stream anywhere must yield a prefix of the full decode.
func FuzzReplStreamDecode(f *testing.F) {
	f.Add(int64(1), uint8(4), false, []byte{})
	f.Add(int64(2), uint8(7), true, []byte("garbage trailing bytes"))
	f.Add(int64(3), uint8(0), false, []byte{0xff, 0x00, 0x07, 0x12})
	valid, _ := buildStream(99, 3, false)
	f.Add(int64(4), uint8(2), false, valid) // valid bytes as the "junk" tail
	f.Fuzz(func(t *testing.T, seed int64, n uint8, strMode bool, tail []byte) {
		count := int(n % 16)
		prefix, want := buildStream(seed, count, strMode)
		stream := append(append([]byte{}, prefix...), tail...)

		got := decodeAll(stream, strMode, count+len(tail)+16)
		if len(got) < count {
			t.Fatalf("decoded %d of %d intact prefix messages", len(got), count)
		}
		for i := 0; i < count; i++ {
			if !msgEq(got[i], want[i]) {
				t.Fatalf("prefix message %d decoded as %+v, want %+v", i, got[i], want[i])
			}
		}

		// Truncation anywhere: still no panic, and the result is a strict
		// prefix of the full decode (a half-received stream never yields a
		// message the full stream would not).
		cut := int(uint64(seed>>13) % uint64(len(stream)+1))
		trunc := decodeAll(stream[:cut], strMode, len(got)+1)
		if len(trunc) > len(got) {
			t.Fatalf("truncated stream decoded MORE messages (%d > %d)", len(trunc), len(got))
		}
		for i := range trunc {
			if !msgEq(trunc[i], got[i]) {
				t.Fatalf("truncated decode diverged at message %d", i)
			}
		}
	})
}
