//go:build !race

package repl

const raceEnabled = false
