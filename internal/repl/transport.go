package repl

import (
	"errors"
	"io"
	"net"
)

// Conn is a replication connection: an ordered, unreliable-in-aggregate
// byte stream. Close must unblock concurrent Read/Write calls — the plane's
// watchdogs enforce liveness by closing, never by deadlines, so every
// transport (TCP, in-memory, fault-injected) behaves identically.
type Conn = io.ReadWriteCloser

// Listener accepts replication connections.
type Listener interface {
	Accept() (Conn, error)
	Close() error
	// Addr is the bound address in the transport's own namespace (host:port
	// for TCP, the registered name for the in-memory transport).
	Addr() string
}

// Transport abstracts the connection seam so the same primary/follower code
// runs over real TCP in production and over the seeded in-memory fault
// transport in the chaos oracle — the vfs.FS pattern applied to the wire.
type Transport interface {
	Dial(addr string) (Conn, error)
	Listen(addr string) (Listener, error)
}

// ErrConnRefused is returned by Dial when nothing listens at the address
// (the in-memory transport's ECONNREFUSED).
var ErrConnRefused = errors.New("repl: connection refused")

// TCP is the production transport: plain net package TCP. NoDelay is Go's
// default, which is what a latency-sensitive ack stream wants.
var TCP Transport = tcpTransport{}

type tcpTransport struct{}

func (tcpTransport) Dial(addr string) (Conn, error) { return net.Dial("tcp", addr) }

func (tcpTransport) Listen(addr string) (Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return tcpListener{ln}, nil
}

type tcpListener struct{ ln net.Listener }

func (l tcpListener) Accept() (Conn, error) { return l.ln.Accept() }
func (l tcpListener) Close() error          { return l.ln.Close() }
func (l tcpListener) Addr() string          { return l.ln.Addr().String() }
