//go:build race

package repl

// raceEnabled reports that this binary was built with the race detector;
// the chaos oracle trims its seed matrix there (each trial runs an entire
// replication topology — full matrices belong to the uninstrumented run,
// one schedule per mode proves race-freedom).
const raceEnabled = true
