package repl

import (
	"errors"
	"math/rand"
	"sync"
	"time"
)

// ErrNetInjected is the sentinel inside every scheduled network fault, the
// wire twin of vfs.ErrInjected: tests distinguish "the schedule did this"
// from a genuine bug by checking for it.
var ErrNetInjected = errors.New("repl: injected network fault")

// FaultNetConfig is a seeded network-fault schedule: per-operation
// probabilities in [0,1], drawn from one deterministic stream in operation
// order — vfs.FaultConfig applied to the connection seam.
type FaultNetConfig struct {
	Seed int64

	DialErr      float64 // Dial fails outright (transient refusal)
	DropConn     float64 // per-write: sever the connection instead
	TornWrite    float64 // per-write: deliver a strict prefix, then sever
	CorruptBit   float64 // per-write: flip one delivered bit (CRC must catch)
	ReorderWrite float64 // per-write: hold this message, deliver after the next
	Delay        float64 // per-write: sleep up to MaxDelay first (slow link)

	MaxDelay time.Duration // upper bound for Delay sleeps (default 2ms)
}

// FaultNet wraps a Transport and injects the configured faults into every
// connection in both directions of establishment (dialed and accepted).
// Beyond the probabilistic schedule it provides the one fault chaos drivers
// need to script explicitly: SetPartitioned severs every live connection
// and refuses new dials until healed.
type FaultNet struct {
	inner Transport
	cfg   FaultNetConfig

	mu          sync.Mutex
	rng         *rand.Rand
	armed       bool
	partitioned bool
	conns       map[*faultConn]struct{}
	counts      map[string]int
}

// NewFaultNet wraps inner with the schedule in cfg, initially armed.
func NewFaultNet(inner Transport, cfg FaultNetConfig) *FaultNet {
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = 2 * time.Millisecond
	}
	return &FaultNet{
		inner:  inner,
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		armed:  true,
		conns:  make(map[*faultConn]struct{}),
		counts: make(map[string]int),
	}
}

// Arm enables fault injection.
func (f *FaultNet) Arm() {
	f.mu.Lock()
	f.armed = true
	f.mu.Unlock()
}

// Disarm makes the transport a passthrough (the partition, being scripted
// rather than scheduled, stays until SetPartitioned(false)).
func (f *FaultNet) Disarm() {
	f.mu.Lock()
	f.armed = false
	f.mu.Unlock()
}

// SetPartitioned scripts a network partition: while set, every Dial fails
// and every live connection is severed immediately. Healing (false) only
// permits new connections; severed ones stay dead — reconnect is the
// endpoints' job.
func (f *FaultNet) SetPartitioned(p bool) {
	f.mu.Lock()
	f.partitioned = p
	var sever []*faultConn
	if p {
		f.counts["partition"]++
		for c := range f.conns {
			sever = append(sever, c)
		}
	}
	f.mu.Unlock()
	for _, c := range sever {
		c.Close()
	}
}

// InjectionCounts reports how many faults fired per class, for tests
// asserting a schedule actually exercised its classes.
func (f *FaultNet) InjectionCounts() map[string]int {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[string]int, len(f.counts))
	for k, v := range f.counts {
		out[k] = v
	}
	return out
}

// roll consumes one variate and reports whether a fault with probability p
// fires; counts it under name when it does. Caller holds f.mu.
func (f *FaultNet) rollLocked(name string, p float64) bool {
	if !f.armed || p <= 0 {
		return false
	}
	if f.rng.Float64() >= p {
		return false
	}
	f.counts[name]++
	return true
}

func (f *FaultNet) Dial(addr string) (Conn, error) {
	f.mu.Lock()
	if f.partitioned {
		f.counts["dial_partitioned"]++
		f.mu.Unlock()
		return nil, ErrNetInjected
	}
	if f.rollLocked("dial", f.cfg.DialErr) {
		f.mu.Unlock()
		return nil, ErrNetInjected
	}
	f.mu.Unlock()
	c, err := f.inner.Dial(addr)
	if err != nil {
		return nil, err
	}
	return f.wrap(c), nil
}

func (f *FaultNet) Listen(addr string) (Listener, error) {
	ln, err := f.inner.Listen(addr)
	if err != nil {
		return nil, err
	}
	return &faultListener{f: f, ln: ln}, nil
}

func (f *FaultNet) wrap(c Conn) *faultConn {
	fc := &faultConn{f: f, inner: c}
	f.mu.Lock()
	if f.partitioned {
		// Raced a partition: the connection is stillborn.
		f.mu.Unlock()
		c.Close()
		return fc
	}
	f.conns[fc] = struct{}{}
	f.mu.Unlock()
	return fc
}

type faultListener struct {
	f  *FaultNet
	ln Listener
}

func (l *faultListener) Accept() (Conn, error) {
	c, err := l.ln.Accept()
	if err != nil {
		return nil, err
	}
	return l.f.wrap(c), nil
}

func (l *faultListener) Close() error { return l.ln.Close() }
func (l *faultListener) Addr() string { return l.ln.Addr() }

// faultConn injects write-side faults. Reads pass through: every fault a
// read could see (loss, corruption, truncation) is equivalently injected on
// some writer, and one-sided injection keeps the variate stream aligned
// with the operation order.
type faultConn struct {
	f     *FaultNet
	inner Conn

	mu   sync.Mutex // serializes writes; held is the reorder buffer
	held []byte
	once sync.Once
}

func (c *faultConn) Read(p []byte) (int, error) { return c.inner.Read(p) }

func (c *faultConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	f := c.f

	f.mu.Lock()
	drop := f.rollLocked("drop_conn", f.cfg.DropConn)
	torn := !drop && f.rollLocked("torn_write", f.cfg.TornWrite)
	corrupt := !drop && !torn && f.rollLocked("corrupt_bit", f.cfg.CorruptBit)
	reorder := !drop && !torn && f.rollLocked("reorder_write", f.cfg.ReorderWrite)
	delay := f.rollLocked("delay", f.cfg.Delay)
	var tornAt, corruptBit, delayNs int64
	if torn && len(p) > 1 {
		tornAt = 1 + f.rng.Int63n(int64(len(p)-1))
	}
	if corrupt && len(p) > 0 {
		corruptBit = f.rng.Int63n(int64(len(p) * 8))
	}
	if delay {
		delayNs = f.rng.Int63n(int64(f.cfg.MaxDelay) + 1)
	}
	f.mu.Unlock()

	if delay {
		time.Sleep(time.Duration(delayNs))
	}
	switch {
	case drop:
		c.closeInner()
		return 0, ErrNetInjected
	case torn:
		if tornAt > 0 {
			c.inner.Write(p[:tornAt])
		}
		c.closeInner()
		return int(tornAt), ErrNetInjected
	case corrupt:
		q := make([]byte, len(p))
		copy(q, p)
		if len(q) > 0 {
			q[corruptBit/8] ^= 1 << (corruptBit % 8)
		}
		return c.inner.Write(q)
	case reorder && c.held == nil && len(p) <= 64<<10:
		// Hold this whole message; it rides behind the next write. The
		// receiver sees valid CRCs in the wrong order — exactly the class
		// the follower's sequence check must catch.
		c.held = append([]byte(nil), p...)
		return len(p), nil
	}
	if held := c.held; held != nil {
		c.held = nil
		if _, err := c.inner.Write(p); err != nil {
			return 0, err
		}
		if _, err := c.inner.Write(held); err != nil {
			return 0, err
		}
		return len(p), nil
	}
	return c.inner.Write(p)
}

func (c *faultConn) closeInner() {
	c.once.Do(func() {
		c.inner.Close()
		c.f.mu.Lock()
		delete(c.f.conns, c)
		c.f.mu.Unlock()
	})
}

func (c *faultConn) Close() error {
	c.closeInner()
	return nil
}
