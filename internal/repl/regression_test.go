package repl

import (
	"testing"
	"time"

	"learnedindex/internal/storage"
	"learnedindex/internal/vfs"
)

// TestReplPrimaryRestartStreamReset: a restarted primary reopens its engine,
// so its frame sequence restarts at 1 under a bumped epoch. At the epoch
// raise the follower must discard the old stream's applied horizon —
// otherwise, once the new stream's durable sequence passes the stale value,
// a later reconnect advertises the stale horizon, the primary resumes at
// stale+1, and every frame between the follower's real position and the
// stale mark is silently skipped: permanent key loss that survives heal.
func TestReplPrimaryRestartStreamReset(t *testing.T) {
	tr := NewMemTransport()
	pdir := t.TempDir()
	peng, err := storage.Open(pdir, storage.Options{CompactFanout: 3})
	if err != nil {
		t.Fatal(err)
	}
	p1, err := NewPrimary(peng, fastPrimaryOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := p1.Serve(tr, "prim"); err != nil {
		t.Fatal(err)
	}
	// 60 single-key commits: frames 1..60 of epoch 1's stream.
	for k := uint64(0); k < 60; k++ {
		if err := peng.CommitBatch([]uint64{k}); err != nil {
			t.Fatal(err)
		}
	}
	feng := openEngine(t, false)
	defer feng.Close()
	fol, err := NewFollower(feng, fastFollowerOpts("prim", tr))
	if err != nil {
		t.Fatal(err)
	}
	defer fol.Close()
	fol.Start()
	waitFor(t, "epoch-1 catch-up", func() bool {
		return fol.AppliedSeq() >= peng.ReplDurableSeq()
	})

	// Primary "process restart": engine close + reopen from disk, epoch
	// bumped, frame sequence back to 1.
	if err := p1.Close(); err != nil {
		t.Fatal(err)
	}
	if err := peng.Close(); err != nil {
		t.Fatal(err)
	}
	peng2, err := storage.Open(pdir, storage.Options{CompactFanout: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer peng2.Close()
	p2, err := NewPrimary(peng2, fastPrimaryOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := p2.Serve(tr, "prim"); err != nil {
		t.Fatal(err)
	}
	// 20 new-stream frames — durable seq 20, far BELOW the follower's old
	// horizon of 60, so a stale horizon cannot be served from this stream.
	for k := uint64(100); k < 120; k++ {
		if err := peng2.CommitBatch([]uint64{k}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "epoch-2 re-snapshot", func() bool {
		st := fol.Status()
		return st.MaxEpoch == 2 && st.AppliedSeq >= peng2.ReplDurableSeq()
	})

	// Sever, then push the new stream's durable sequence past the old
	// stream's horizon while the follower is disconnected.
	if err := p2.Close(); err != nil {
		t.Fatal(err)
	}
	p3, err := NewPrimary(peng2, fastPrimaryOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	defer p3.Close()
	for k := uint64(200); k < 260; k++ { // frames 21..80: durable 80 > 60
		if err := peng2.CommitBatch([]uint64{k}); err != nil {
			t.Fatal(err)
		}
	}
	if err := p3.Serve(tr, "prim"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "post-restart reconnect catch-up", func() bool {
		return fol.AppliedSeq() >= peng2.ReplDurableSeq()
	})
	if err := feng.Flush(); err != nil {
		t.Fatal(err)
	}
	check := func(lo, hi uint64) {
		t.Helper()
		for k := lo; k < hi; k++ {
			if !feng.Contains(k) {
				t.Fatalf("follower lost key %d across the primary restart (frames skipped past a stale horizon)", k)
			}
		}
	}
	check(0, 60)
	check(100, 120)
	check(200, 260)
	if err := peng2.Flush(); err != nil {
		t.Fatal(err)
	}
	if got, want := feng.Len(), peng2.Len(); got != want {
		t.Fatalf("follower Len=%d, primary Len=%d", got, want)
	}
}

// TestReplSnapshotOutlastsReadTimeout: a snapshot whose transfer + fsync-per
// -chunk apply takes far longer than the primary's silence watchdog must
// still complete. The follower's per-chunk progress acks are what feed the
// watchdog; without them the primary severs the transfer as soon as the
// follower's bounded apply queue stops the socket drain, and cold catch-up
// livelocks (sever → re-snapshot → sever ...).
func TestReplSnapshotOutlastsReadTimeout(t *testing.T) {
	peng := openEngine(t, false)
	defer peng.Close()
	var keys []uint64
	for k := uint64(0); k < 800; k++ {
		keys = append(keys, k)
	}
	if err := peng.CommitBatch(keys); err != nil {
		t.Fatal(err)
	}
	if err := peng.Flush(); err != nil {
		t.Fatal(err)
	}

	tr := NewMemTransport()
	p, err := NewPrimary(peng, PrimaryOptions{
		Epoch:          1,
		HeartbeatEvery: 10 * time.Millisecond,
		ReadTimeout:    75 * time.Millisecond,
		SnapChunkKeys:  1, // 800 chunks, one follower group-commit each
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if err := p.Serve(tr, "prim"); err != nil {
		t.Fatal(err)
	}

	// Follower engine whose fsyncs cost ≥1ms each: the 800-chunk apply
	// pipeline takes ≥800ms, an order of magnitude past ReadTimeout, while
	// each individual chunk stays far inside it.
	slow := vfs.NewFaultFS(vfs.OS, vfs.FaultConfig{})
	slow.SetHook(func(op vfs.Op, path string) error {
		if op == vfs.OpSync {
			time.Sleep(time.Millisecond)
		}
		return nil
	})
	feng, err := storage.Open(t.TempDir(), storage.Options{CompactFanout: 3, FS: slow})
	if err != nil {
		t.Fatal(err)
	}
	defer feng.Close()
	fol, err := NewFollower(feng, fastFollowerOpts("prim", tr))
	if err != nil {
		t.Fatal(err)
	}
	defer fol.Close()
	fol.Start()

	waitFor(t, "slow snapshot completion", func() bool {
		if err := feng.Flush(); err != nil {
			t.Fatalf("follower flush: %v", err)
		}
		return feng.Len() == len(keys)
	})
	for _, k := range keys {
		if !feng.Contains(k) {
			t.Fatalf("follower missing key %d after snapshot", k)
		}
	}
	if rc := fol.Status().Reconnects; rc != 0 {
		t.Fatalf("Reconnects = %d, want 0 — the primary watchdog severed a live snapshot transfer", rc)
	}
}
