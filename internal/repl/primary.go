package repl

import (
	"fmt"
	"sync"
	"time"

	"learnedindex/internal/obs"
	"learnedindex/internal/storage"
)

// PrimaryOptions tunes the shipping side.
type PrimaryOptions struct {
	// Epoch is the primary's fencing term, assigned by the operator (or an
	// external coordinator — this package does no leader election). It must
	// be >= 1 and strictly greater than any epoch the followers have seen:
	// followers reject a primary whose epoch is below their high-water mark,
	// and a restarted primary process MUST be given a higher epoch (its
	// frame sequence restarts, so followers have to re-snapshot — the epoch
	// change is what tells them to).
	Epoch uint64

	// RingFrames bounds the in-memory frame ring the shipper serves from.
	// When a slow or dead follower falls off the ring's tail the primary
	// evicts anyway — commits NEVER block on replication — and the follower
	// catches up by snapshot on its next attempt. Default 4096.
	RingFrames int

	// HeartbeatEvery is the idle-channel heartbeat interval (also the lag
	// and RTT sampling rate). Default 200ms.
	HeartbeatEvery time.Duration

	// ReadTimeout is the per-connection silence watchdog: a follower that
	// sends nothing (no acks, no fence) for this long is presumed gone and
	// its connection closed. Default max(1s, 5×HeartbeatEvery).
	ReadTimeout time.Duration

	// SnapChunkKeys is the snapshot transfer chunk size. Default 32768.
	SnapChunkKeys int
}

func (o PrimaryOptions) withDefaults() PrimaryOptions {
	if o.RingFrames <= 0 {
		o.RingFrames = 4096
	}
	if o.HeartbeatEvery <= 0 {
		o.HeartbeatEvery = 200 * time.Millisecond
	}
	if o.ReadTimeout <= 0 {
		o.ReadTimeout = max(time.Second, 5*o.HeartbeatEvery)
	}
	if o.SnapChunkKeys <= 0 {
		o.SnapChunkKeys = 32768
	}
	return o
}

// Primary ships the engine's durable WAL frame stream to followers. It
// installs itself as the engine's ReplSink, keeps a bounded ring of durable
// frames, and serves any number of follower connections: each gets the
// frames from its acked horizon forward, or a snapshot when it is too far
// behind (or from an older epoch). Replication is strictly asynchronous —
// the engine's commit path never waits on a follower, lag is observed, not
// blocked on.
type Primary struct {
	eng     *storage.Engine
	strMode bool
	opts    PrimaryOptions

	// mu guards the ring and connection set; cond wakes shippers when
	// frames arrive, a heartbeat is due, or the primary closes. The engine
	// sink runs under the ENGINE's write mutex and takes mu — so nothing
	// holding mu may ever call into the engine (lock order: eng.mu → mu).
	mu        sync.Mutex
	cond      *sync.Cond
	ring      []storage.ReplFrame // contiguous seqs; ring[0].Seq is the floor
	ringBytes int
	durable   uint64 // highest durable frame seq seen from the sink
	deposed   bool
	closed    bool
	conns     map[*pconn]struct{}
	nonce     uint64

	ln Listener
	wg sync.WaitGroup
	m  primaryMetrics
}

// pconn is the per-follower connection state.
type pconn struct {
	c      Conn
	acked  uint64 // guarded by Primary.mu
	nonce  uint64 // outstanding heartbeat nonce (one in flight)
	sentAt time.Time
}

type primaryMetrics struct {
	framesShipped *obs.Counter
	keysShipped   *obs.Counter
	bytesShipped  *obs.Counter
	snapshots     *obs.Counter
	heartbeats    *obs.Counter
	fenced        *obs.Counter
	followers     *obs.Gauge
	epoch         *obs.Gauge
	deposed       *obs.Gauge
	lagFrames     *obs.Gauge
	lagBytes      *obs.Gauge
	rttNs         *obs.Histogram
}

func newPrimaryMetrics(reg *obs.Registry) primaryMetrics {
	return primaryMetrics{
		framesShipped: reg.Counter("lix_repl_frames_shipped_total"),
		keysShipped:   reg.Counter("lix_repl_keys_shipped_total"),
		bytesShipped:  reg.Counter("lix_repl_bytes_shipped_total"),
		snapshots:     reg.Counter("lix_repl_snapshots_shipped_total"),
		heartbeats:    reg.Counter("lix_repl_heartbeats_total"),
		fenced:        reg.Counter("lix_repl_fenced_total"),
		followers:     reg.Gauge("lix_repl_followers"),
		epoch:         reg.Gauge("lix_repl_epoch"),
		deposed:       reg.Gauge("lix_repl_deposed"),
		lagFrames:     reg.Gauge("lix_repl_lag_frames"),
		lagBytes:      reg.Gauge("lix_repl_lag_bytes"),
		rttNs:         reg.Histogram("lix_repl_heartbeat_rtt_ns"),
	}
}

// NewPrimary attaches a shipper to eng at the given epoch and installs the
// engine sink. Call Serve to start accepting followers; Close detaches.
// For a gapless stream create the primary immediately after storage.Open,
// before the first write (see storage.SetReplSink).
func NewPrimary(eng *storage.Engine, opts PrimaryOptions) (*Primary, error) {
	opts = opts.withDefaults()
	if opts.Epoch == 0 {
		return nil, fmt.Errorf("repl: primary epoch must be >= 1 (0 is the followers' pre-contact floor)")
	}
	p := &Primary{
		eng:     eng,
		strMode: eng.StringKeys(),
		opts:    opts,
		conns:   make(map[*pconn]struct{}),
		m:       newPrimaryMetrics(eng.Registry()),
	}
	p.cond = sync.NewCond(&p.mu)
	p.m.epoch.Set(int64(opts.Epoch))
	p.durable = eng.ReplDurableSeq()
	eng.SetReplSink(p.sink)

	// Heartbeat ticker: wakes every shipper so idle channels carry a
	// heartbeat (lag/RTT sampling) even when no frames flow.
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		t := time.NewTicker(p.opts.HeartbeatEvery)
		defer t.Stop()
		for {
			<-t.C
			p.mu.Lock()
			done := p.closed
			p.mu.Unlock()
			if done {
				return
			}
			p.cond.Broadcast()
		}
	}()
	return p, nil
}

// sink is the engine's ReplSink: runs under eng.mu right after the fsync
// that made frames durable. It only appends to the ring and wakes shippers
// — never blocks, never calls the engine.
func (p *Primary) sink(frames []storage.ReplFrame) {
	p.mu.Lock()
	for _, f := range frames {
		p.ring = append(p.ring, f)
		p.ringBytes += frameBytes(f)
		p.durable = f.Seq
	}
	for len(p.ring) > p.opts.RingFrames {
		p.ringBytes -= frameBytes(p.ring[0])
		p.ring = p.ring[1:]
	}
	p.mu.Unlock()
	p.cond.Broadcast()
}

// frameBytes approximates a frame's wire payload size for lag-bytes
// accounting (9 bytes per uint64 upper bound; string length + prefix).
func frameBytes(f storage.ReplFrame) int {
	n := 9 * len(f.Keys)
	for _, s := range f.Strs {
		n += len(s) + 5
	}
	return n
}

// Serve binds addr on t and accepts followers until Close. Non-blocking.
func (p *Primary) Serve(t Transport, addr string) error {
	ln, err := t.Listen(addr)
	if err != nil {
		return err
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		ln.Close()
		return fmt.Errorf("repl: primary closed")
	}
	p.ln = ln
	p.mu.Unlock()
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			p.wg.Add(1)
			go func() {
				defer p.wg.Done()
				p.handleConn(c)
			}()
		}
	}()
	return nil
}

// Addr returns the bound listen address ("" before Serve).
func (p *Primary) Addr() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.ln == nil {
		return ""
	}
	return p.ln.Addr()
}

// Deposed reports whether any follower has fenced this primary (it saw a
// higher epoch). A deposed primary stops serving followers; its engine
// keeps running single-node.
func (p *Primary) Deposed() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.deposed
}

func (p *Primary) setDeposed() {
	p.mu.Lock()
	was := p.deposed
	p.deposed = true
	p.mu.Unlock()
	if !was {
		p.m.deposed.Set(1)
		p.m.fenced.Inc()
	}
	p.cond.Broadcast()
}

// Close stops accepting, severs every follower, detaches the engine sink,
// and waits for the connection goroutines to drain.
func (p *Primary) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	ln := p.ln
	var cs []Conn
	for pc := range p.conns {
		cs = append(cs, pc.c)
	}
	p.mu.Unlock()
	p.eng.SetReplSink(nil)
	if ln != nil {
		ln.Close()
	}
	for _, c := range cs {
		c.Close()
	}
	p.cond.Broadcast()
	p.wg.Wait()
	return nil
}

// handleConn runs one follower session: handshake, then a reader goroutine
// consuming acks while this goroutine ships snapshot/frames/heartbeats.
// The shipper is the connection's only writer after the handshake.
func (p *Primary) handleConn(c Conn) {
	defer c.Close()
	var rbuf, wbuf []byte

	// Silence watchdog: any read progress pushes it out; expiry severs the
	// connection, which unblocks both goroutines. Deadline-free liveness so
	// every Transport implementation behaves the same.
	wd := time.AfterFunc(p.opts.ReadTimeout, func() { c.Close() })
	defer wd.Stop()

	var hello msg
	if err := readMsg(c, &rbuf, p.strMode, &hello); err != nil || hello.kind != msgHello {
		return
	}
	wd.Reset(p.opts.ReadTimeout)

	p.mu.Lock()
	refused := p.closed || p.deposed
	durable := p.durable
	p.mu.Unlock()
	if refused {
		return
	}

	reply := msg{kind: msgPrimaryHello, strMode: p.strMode, epoch: p.opts.Epoch, seq: durable}
	if err := writeMsg(c, &wbuf, &reply); err != nil {
		return
	}
	if hello.strMode != p.strMode {
		// Mode mismatch is operator error; the hello reply told the
		// follower our mode, let it report the misconfiguration.
		return
	}
	if hello.epoch > p.opts.Epoch {
		// The follower has seen a newer primary: we are deposed. Its
		// explicit fence message lands on the reader below for accounting,
		// but do not wait for it.
		p.setDeposed()
		return
	}

	pc := &pconn{c: c}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.conns[pc] = struct{}{}
	p.mu.Unlock()
	p.m.followers.Add(1)
	defer func() {
		p.mu.Lock()
		delete(p.conns, pc)
		lagF, lagB := p.maxLagLocked()
		p.mu.Unlock()
		p.m.lagFrames.Set(int64(lagF))
		p.m.lagBytes.Set(int64(lagB))
		p.m.followers.Add(-1)
	}()

	dead := make(chan struct{})
	go p.readAcks(c, pc, wd, dead)

	// Resume from the follower's acked horizon when this epoch's ring can
	// serve it; anything else (older epoch, ahead of our stream — i.e. a
	// different stream, including the follower's explicit needSnapSeq
	// "I have no position" sentinel — or fallen off the ring) takes the
	// snapshot path.
	cursor := uint64(0)
	if hello.epoch == p.opts.Epoch && hello.seq <= durable {
		cursor = hello.seq + 1
	}
	p.ship(c, pc, &wbuf, cursor, dead)
}

// readAcks consumes the follower's ack/fence stream. Closing dead wakes the
// shipper; any read error severs the connection.
func (p *Primary) readAcks(c Conn, pc *pconn, wd *time.Timer, dead chan struct{}) {
	defer close(dead)
	defer c.Close()
	var rbuf []byte
	var m msg
	for {
		if err := readMsg(c, &rbuf, p.strMode, &m); err != nil {
			p.cond.Broadcast()
			return
		}
		wd.Reset(p.opts.ReadTimeout)
		switch m.kind {
		case msgAck:
			p.mu.Lock()
			if m.seq > pc.acked {
				pc.acked = m.seq
			}
			lagF, lagB := p.maxLagLocked()
			var rtt time.Duration
			if m.nonce != 0 && m.nonce == pc.nonce {
				rtt = time.Since(pc.sentAt)
				pc.nonce = 0
			}
			p.mu.Unlock()
			p.m.lagFrames.Set(int64(lagF))
			p.m.lagBytes.Set(int64(lagB))
			if rtt > 0 {
				p.m.rttNs.ObserveDuration(rtt)
			}
		case msgFenced:
			p.setDeposed()
			return
		default:
			// A follower speaking anything else is broken; sever.
			return
		}
	}
}

// maxLagLocked reports the worst lag across the live connection set, so
// the global gauges track the slowest follower instead of flapping to
// whichever one acked last.
func (p *Primary) maxLagLocked() (frames, bytes uint64) {
	for pc := range p.conns {
		f, b := p.lagLocked(pc)
		frames = max(frames, f)
		bytes = max(bytes, b)
	}
	return frames, bytes
}

// lagLocked approximates pc's lag from the ring: frames past its ack, and
// their payload bytes (bytes saturate at the ring — beyond it the follower
// is in snapshot territory and the frame ring no longer measures it).
func (p *Primary) lagLocked(pc *pconn) (frames, bytes uint64) {
	if pc.acked >= p.durable {
		return 0, 0
	}
	frames = p.durable - pc.acked
	for i := len(p.ring) - 1; i >= 0 && p.ring[i].Seq > pc.acked; i-- {
		bytes += uint64(frameBytes(p.ring[i]))
	}
	return frames, bytes
}

// ship is the per-follower send loop: snapshot when the cursor cannot be
// served from the ring, frames when it can, heartbeats when idle.
func (p *Primary) ship(c Conn, pc *pconn, wbuf *[]byte, cursor uint64, dead chan struct{}) {
	var frames []storage.ReplFrame
	lastSend := time.Now()
	for {
		var needSnap bool
		p.mu.Lock()
		for {
			if p.closed || p.deposed {
				p.mu.Unlock()
				return
			}
			select {
			case <-dead:
				p.mu.Unlock()
				return
			default:
			}
			// The cursor is servable from the ring iff the ring still holds
			// it; a cursor below the ring floor (evicted) or from no stream
			// at all (0) means snapshot. An empty ring with durable history
			// behind the cursor is the evicted case too.
			ringLo := p.durable + 1
			if len(p.ring) > 0 {
				ringLo = p.ring[0].Seq
			}
			needSnap = cursor == 0 || cursor < ringLo
			frames = frames[:0]
			if !needSnap && len(p.ring) > 0 && cursor <= p.durable {
				idx := int(cursor - p.ring[0].Seq)
				frames = append(frames, p.ring[idx:]...)
			}
			hbDue := time.Since(lastSend) >= p.opts.HeartbeatEvery
			if needSnap || len(frames) > 0 || hbDue {
				break
			}
			p.cond.Wait()
		}
		durable := p.durable
		var hbNonce uint64
		if len(frames) == 0 && !needSnap {
			p.nonce++
			hbNonce = p.nonce
			pc.nonce = hbNonce
			pc.sentAt = time.Now()
		}
		p.mu.Unlock()

		switch {
		case needSnap:
			snapSeq, err := p.sendSnapshot(c, wbuf)
			if err != nil {
				return
			}
			cursor = snapSeq + 1
		case len(frames) > 0:
			for _, f := range frames {
				fm := msg{kind: msgFrame, strMode: p.strMode, seq: f.Seq, keys: f.Keys, strs: f.Strs}
				if err := writeMsg(c, wbuf, &fm); err != nil {
					return
				}
				p.m.framesShipped.Inc()
				p.m.keysShipped.Add(int64(len(f.Keys) + len(f.Strs)))
				p.m.bytesShipped.Add(int64(frameBytes(f)))
				cursor = f.Seq + 1
			}
		default: // heartbeat
			hb := msg{kind: msgHeartbeat, epoch: p.opts.Epoch, seq: durable, nonce: hbNonce}
			if err := writeMsg(c, wbuf, &hb); err != nil {
				return
			}
			p.m.heartbeats.Inc()
		}
		lastSend = time.Now()
	}
}

// sendSnapshot streams a loss-free image of the engine's durable key set:
// snapBegin(seq, count), the keys in chunks, snapEnd(seq). Returns the
// sequence the image covers. Runs WITHOUT p.mu held — ReplSnapshot takes
// the engine mutex and the sink re-enters p.mu under it.
func (p *Primary) sendSnapshot(c Conn, wbuf *[]byte) (uint64, error) {
	p.m.snapshots.Inc()
	var seq uint64
	var keys []uint64
	var strs []string
	var total int
	if p.strMode {
		seq, strs = p.eng.ReplSnapshotStrings()
		total = len(strs)
	} else {
		seq, keys = p.eng.ReplSnapshot()
		total = len(keys)
	}
	begin := msg{kind: msgSnapBegin, seq: seq, count: uint64(total)}
	if err := writeMsg(c, wbuf, &begin); err != nil {
		return 0, err
	}
	for lo := 0; lo < total; lo += p.opts.SnapChunkKeys {
		hi := min(lo+p.opts.SnapChunkKeys, total)
		chunk := msg{kind: msgSnapChunk, strMode: p.strMode}
		if p.strMode {
			chunk.strs = strs[lo:hi]
		} else {
			chunk.keys = keys[lo:hi]
		}
		if err := writeMsg(c, wbuf, &chunk); err != nil {
			return 0, err
		}
		p.m.keysShipped.Add(int64(hi - lo))
	}
	end := msg{kind: msgSnapEnd, seq: seq}
	if err := writeMsg(c, wbuf, &end); err != nil {
		return 0, err
	}
	return seq, nil
}
