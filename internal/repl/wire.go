// Package repl is the WAL-shipping replication plane: a primary ships the
// storage engine's durable frame stream (see storage.ReplFrame) to
// followers that replay it into their own engines and ack their durable
// horizon back. The wire protocol reuses the WAL's defensive posture —
// length + crc32c framing, panic-free bounded decoding — and the failure
// plane reuses the vfs.FaultFS idea on the connection seam (FaultNet), so
// the whole plane is provable under seeded chaos the same way the
// single-node durability contract is.
//
// Scope: crash-consistent replication with epoch fencing. Leader election,
// automatic failover, and quorum acks are explicitly out of scope; an
// operator (or an external coordination service) assigns epochs.
package repl

import (
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"learnedindex/internal/binenc"
)

// wireVersion is bumped on any incompatible message-grammar change; the
// handshake rejects mismatches outright rather than guessing.
const wireVersion = 1

// Message kinds. The handshake is hello/primaryHello; after it the primary
// sends snap*/frame/heartbeat and the follower answers ack (or fenced, once,
// when the primary's epoch is stale).
const (
	msgHello        = byte(1) // follower→primary: version, mode, maxEpoch, appliedSeq
	msgPrimaryHello = byte(2) // primary→follower: version, mode, epoch, durableSeq
	msgFenced       = byte(3) // follower→primary: maxEpoch — "you are deposed"
	msgSnapBegin    = byte(4) // primary→follower: snapSeq, total key count
	msgSnapChunk    = byte(5) // primary→follower: one key-payload chunk
	msgSnapEnd      = byte(6) // primary→follower: snapSeq again (integrity nit)
	msgFrame        = byte(7) // primary→follower: frame seq + key payload
	msgHeartbeat    = byte(8) // primary→follower: epoch, durableSeq, nonce
	msgAck          = byte(9) // follower→primary: appliedSeq, echoed nonce
)

const (
	// wireHeaderLen frames every message: kind u8, payload length u32 LE,
	// crc32c(payload) u32 LE.
	wireHeaderLen = 9
	// maxWirePayload mirrors the WAL's record bound: any length beyond it
	// is corruption (or hostility), not data.
	maxWirePayload = 1 << 26
	// maxWireKeys bounds a single message's key count so a hostile count
	// can never size an allocation (the WAL frames shipped are far below).
	maxWireKeys = 1 << 21
)

// errWire covers every malformed-input path in the decoder: truncated
// headers, oversized lengths, checksum mismatches, grammar violations.
// Receivers treat it as a broken connection, never as data.
var errWire = errors.New("repl: corrupt wire frame")

var wireCRC = crc32.MakeTable(crc32.Castagnoli)

// msg is the decoded form of every wire message; kind selects which fields
// are meaningful. One struct (rather than one type per kind) keeps the
// decoder allocation-free on the hot frame path.
type msg struct {
	kind    byte
	strMode bool     // hello/primaryHello: key mode flag
	epoch   uint64   // hello(maxEpoch), primaryHello, fenced, heartbeat
	seq     uint64   // frame, snapBegin/End, hello/ack(applied), heartbeat(durable)
	count   uint64   // snapBegin: total snapshot keys
	nonce   uint64   // heartbeat/ack: RTT echo
	keys    []uint64 // frame/snapChunk, uint64 mode
	strs    []string // frame/snapChunk, string mode
}

// appendMsg encodes m as one wire message appended to dst.
func appendMsg(dst []byte, m *msg) []byte {
	base := len(dst)
	dst = append(dst, m.kind, 0, 0, 0, 0, 0, 0, 0, 0)
	switch m.kind {
	case msgHello, msgPrimaryHello:
		dst = binenc.AppendUvarint(dst, wireVersion)
		mode := byte(0)
		if m.strMode {
			mode = 1
		}
		dst = append(dst, mode)
		dst = binenc.AppendUvarint(dst, m.epoch)
		dst = binenc.AppendUvarint(dst, m.seq)
	case msgFenced:
		dst = binenc.AppendUvarint(dst, m.epoch)
	case msgSnapBegin:
		dst = binenc.AppendUvarint(dst, m.seq)
		dst = binenc.AppendUvarint(dst, m.count)
	case msgSnapEnd:
		dst = binenc.AppendUvarint(dst, m.seq)
	case msgSnapChunk:
		dst = appendKeyPayload(dst, m)
	case msgFrame:
		dst = binenc.AppendUvarint(dst, m.seq)
		dst = appendKeyPayload(dst, m)
	case msgHeartbeat:
		dst = binenc.AppendUvarint(dst, m.epoch)
		dst = binenc.AppendUvarint(dst, m.seq)
		dst = binenc.AppendUvarint(dst, m.nonce)
	case msgAck:
		dst = binenc.AppendUvarint(dst, m.seq)
		dst = binenc.AppendUvarint(dst, m.nonce)
	default:
		panic(fmt.Sprintf("repl: encode of unknown message kind %d", m.kind))
	}
	payload := dst[base+wireHeaderLen:]
	putU32 := func(off int, v uint32) {
		dst[off] = byte(v)
		dst[off+1] = byte(v >> 8)
		dst[off+2] = byte(v >> 16)
		dst[off+3] = byte(v >> 24)
	}
	putU32(base+1, uint32(len(payload)))
	putU32(base+5, crc32.Checksum(payload, wireCRC))
	return dst
}

// appendKeyPayload encodes the message's key set in the WAL payload
// grammar: uvarint count, then per key either a uvarint (uint64 mode) or a
// length-prefixed byte block (string mode).
func appendKeyPayload(dst []byte, m *msg) []byte {
	if m.strMode {
		dst = binenc.AppendUvarint(dst, uint64(len(m.strs)))
		for _, s := range m.strs {
			dst = binenc.AppendUvarint(dst, uint64(len(s)))
			dst = append(dst, s...)
		}
		return dst
	}
	dst = binenc.AppendUvarint(dst, uint64(len(m.keys)))
	for _, k := range m.keys {
		dst = binenc.AppendUvarint(dst, k)
	}
	return dst
}

// decodePayload decodes one message payload into m (m.kind must be set by
// the caller from the wire header). Panic-free by construction: every read
// goes through the latching binenc.Reader, counts are bounded before any
// allocation, and trailing garbage is an error. strMode selects the key
// grammar for frame/snapChunk payloads (known from the handshake).
func decodePayload(kind byte, strMode bool, payload []byte, m *msg) error {
	*m = msg{kind: kind}
	r := binenc.NewReader(payload)
	switch kind {
	case msgHello, msgPrimaryHello:
		if v := r.Uvarint(); r.Err() == nil && v != wireVersion {
			return fmt.Errorf("repl: wire version %d, want %d", v, wireVersion)
		}
		mode := r.Take(1)
		if r.Err() == nil {
			if mode[0] > 1 {
				return errWire
			}
			m.strMode = mode[0] == 1
		}
		m.epoch = r.Uvarint()
		m.seq = r.Uvarint()
	case msgFenced:
		m.epoch = r.Uvarint()
	case msgSnapBegin:
		m.seq = r.Uvarint()
		m.count = r.Uvarint()
	case msgSnapEnd:
		m.seq = r.Uvarint()
	case msgSnapChunk:
		decodeKeyPayload(r, strMode, m)
	case msgFrame:
		m.seq = r.Uvarint()
		decodeKeyPayload(r, strMode, m)
	case msgHeartbeat:
		m.epoch = r.Uvarint()
		m.seq = r.Uvarint()
		m.nonce = r.Uvarint()
	case msgAck:
		m.seq = r.Uvarint()
		m.nonce = r.Uvarint()
	default:
		return errWire
	}
	if r.Err() != nil || r.Remaining() != 0 {
		return errWire
	}
	return nil
}

func decodeKeyPayload(r *binenc.Reader, strMode bool, m *msg) {
	if strMode {
		n := r.Count(maxWireKeys, 1)
		if r.Err() != nil {
			return
		}
		strs := make([]string, 0, n)
		for i := 0; i < n; i++ {
			strs = append(strs, string(r.Bytes()))
		}
		m.strs = strs
		return
	}
	n := r.Count(maxWireKeys, 1)
	if r.Err() != nil {
		return
	}
	keys := make([]uint64, 0, n)
	for i := 0; i < n; i++ {
		keys = append(keys, r.Uvarint())
	}
	m.keys = keys
}

// writeMsg encodes m into *buf and writes it as ONE Write call, so a
// transport fault (torn write, reorder) operates on whole messages the way
// FaultFS torn writes operate on whole WAL records. The buffer is reused
// across calls.
func writeMsg(w io.Writer, buf *[]byte, m *msg) error {
	*buf = appendMsg((*buf)[:0], m)
	_, err := w.Write(*buf)
	return err
}

// readMsg reads and decodes one message. Any malformed input — short read,
// oversized length, checksum mismatch, grammar violation — returns an
// error (errWire or the transport's); never a panic, never a partial m.
// The payload buffer *buf is reused across calls.
func readMsg(r io.Reader, buf *[]byte, strMode bool, m *msg) error {
	var hdr [wireHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	kind := hdr[0]
	plen := uint32(hdr[1]) | uint32(hdr[2])<<8 | uint32(hdr[3])<<16 | uint32(hdr[4])<<24
	want := uint32(hdr[5]) | uint32(hdr[6])<<8 | uint32(hdr[7])<<16 | uint32(hdr[8])<<24
	if plen > maxWirePayload {
		return errWire
	}
	if cap(*buf) < int(plen) {
		*buf = make([]byte, plen)
	}
	payload := (*buf)[:plen]
	if _, err := io.ReadFull(r, payload); err != nil {
		return err
	}
	if crc32.Checksum(payload, wireCRC) != want {
		return errWire
	}
	return decodePayload(kind, strMode, payload, m)
}
