package repl

import (
	"fmt"
	"testing"
	"time"

	"learnedindex/internal/storage"
)

// testTimeout bounds every convergence wait in this file.
const testTimeout = 30 * time.Second

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(testTimeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func openEngine(t *testing.T, strMode bool) *storage.Engine {
	t.Helper()
	e, err := storage.Open(t.TempDir(), storage.Options{StringKeys: strMode, CompactFanout: 3})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func fastFollowerOpts(addr string, tr Transport) FollowerOptions {
	return FollowerOptions{
		Addr:             addr,
		Transport:        tr,
		ReconnectBase:    2 * time.Millisecond,
		ReconnectMax:     50 * time.Millisecond,
		JitterSeed:       1,
		HeartbeatTimeout: 2 * time.Second,
		FlushEvery:       500,
	}
}

func fastPrimaryOpts(epoch uint64) PrimaryOptions {
	return PrimaryOptions{Epoch: epoch, HeartbeatEvery: 10 * time.Millisecond, RingFrames: 256}
}

// TestReplShipAndServe: keys committed on the primary become durable and
// served on the follower, in both key modes, including keys committed
// BEFORE the follower ever connected (snapshot path) and after (stream
// path).
func TestReplShipAndServe(t *testing.T) {
	for _, mode := range []struct {
		name string
		str  bool
	}{{"uint64", false}, {"string", true}} {
		mode := mode
		t.Run(mode.name, func(t *testing.T) {
			t.Parallel()
			peng := openEngine(t, mode.str)
			defer peng.Close()
			tr := NewMemTransport()
			p, err := NewPrimary(peng, fastPrimaryOpts(1))
			if err != nil {
				t.Fatal(err)
			}
			defer p.Close()
			if err := p.Serve(tr, "prim"); err != nil {
				t.Fatal(err)
			}

			commit := func(lo, hi uint64) {
				for k := lo; k < hi; k += 10 {
					var err error
					if mode.str {
						var b []string
						for j := k; j < min(k+10, hi); j++ {
							b = append(b, fmt.Sprintf("k%08d", j))
						}
						err = peng.CommitStringBatch(b)
					} else {
						var b []uint64
						for j := k; j < min(k+10, hi); j++ {
							b = append(b, j)
						}
						err = peng.CommitBatch(b)
					}
					if err != nil {
						t.Fatal(err)
					}
				}
			}
			// History before the follower exists: must arrive via snapshot
			// (flush some into segments, leave some in the durable WAL tail).
			commit(0, 500)
			if err := peng.Flush(); err != nil {
				t.Fatal(err)
			}
			commit(500, 700)

			feng := openEngine(t, mode.str)
			defer feng.Close()
			fol, err := NewFollower(feng, fastFollowerOpts("prim", tr))
			if err != nil {
				t.Fatal(err)
			}
			defer fol.Close()
			fol.Start()

			// Live stream on top.
			commit(700, 1000)
			waitFor(t, "follower caught up", func() bool {
				return fol.AppliedSeq() >= peng.ReplDurableSeq()
			})
			if err := feng.Flush(); err != nil {
				t.Fatal(err)
			}
			for k := uint64(0); k < 1000; k++ {
				var ok bool
				if mode.str {
					ok = feng.ContainsString(fmt.Sprintf("k%08d", k))
				} else {
					ok = feng.Contains(k)
				}
				if !ok {
					t.Fatalf("follower missing key %d", k)
				}
			}
			if got := feng.Len(); got != 1000 {
				t.Fatalf("follower Len=%d want 1000", got)
			}
			st := fol.Status()
			if !st.Connected || st.MaxEpoch != 1 {
				t.Fatalf("status = %+v, want connected at epoch 1", st)
			}
		})
	}
}

// TestReplFollowerNeverAheadOfDurable: a follower must never serve a key
// the primary has not made durable — appended-but-unsynced keys stay off
// the wire until their fsync.
func TestReplFollowerNeverAheadOfDurable(t *testing.T) {
	peng := openEngine(t, false)
	defer peng.Close()
	tr := NewMemTransport()
	p, err := NewPrimary(peng, fastPrimaryOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if err := p.Serve(tr, "prim"); err != nil {
		t.Fatal(err)
	}
	feng := openEngine(t, false)
	defer feng.Close()
	fol, err := NewFollower(feng, fastFollowerOpts("prim", tr))
	if err != nil {
		t.Fatal(err)
	}
	defer fol.Close()
	fol.Start()

	if err := peng.CommitBatch([]uint64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	// Appended, never synced: not durable, must not replicate.
	if err := peng.AppendBatch([]uint64{100, 101}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "committed keys on follower", func() bool {
		return fol.AppliedSeq() >= peng.ReplDurableSeq()
	})
	// Give the stream a few heartbeats' opportunity to (wrongly) ship them.
	time.Sleep(50 * time.Millisecond)
	if err := feng.Flush(); err != nil {
		t.Fatal(err)
	}
	if feng.Contains(100) || feng.Contains(101) {
		t.Fatal("follower serves a key the primary never made durable")
	}
	for _, k := range []uint64{1, 2, 3} {
		if !feng.Contains(k) {
			t.Fatalf("follower missing durable key %d", k)
		}
	}
}

// TestReplFencing: a follower that has seen epoch 2 refuses a primary at
// epoch 1, tells it so, and never applies its frames; the deposed primary
// observes Deposed. Failback to the real primary resumes replication.
func TestReplFencing(t *testing.T) {
	tr := NewMemTransport()
	engA := openEngine(t, false)
	defer engA.Close()
	engB := openEngine(t, false)
	defer engB.Close()
	feng := openEngine(t, false)
	defer feng.Close()

	pA, err := NewPrimary(engA, fastPrimaryOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	defer pA.Close()
	if err := pA.Serve(tr, "a"); err != nil {
		t.Fatal(err)
	}
	pB, err := NewPrimary(engB, fastPrimaryOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	defer pB.Close()
	if err := pB.Serve(tr, "b"); err != nil {
		t.Fatal(err)
	}

	fol, err := NewFollower(feng, fastFollowerOpts("a", tr))
	if err != nil {
		t.Fatal(err)
	}
	defer fol.Close()
	fol.Start()

	if err := engA.CommitBatch([]uint64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "epoch-1 keys applied", func() bool {
		return fol.AppliedSeq() >= engA.ReplDurableSeq()
	})

	// Failover: the follower moves to B (epoch 2) and learns the new epoch.
	fol.Retarget("b")
	if err := engB.CommitBatch([]uint64{1, 2, 3, 10, 11}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "epoch 2 adopted and applied", func() bool {
		st := fol.Status()
		return st.MaxEpoch == 2 && st.AppliedSeq >= engB.ReplDurableSeq()
	})

	// Flap back to the deposed primary: it must be fenced, its new frames
	// must never land, and it must learn it is deposed.
	fol.Retarget("a")
	if err := engA.CommitBatch([]uint64{777}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "deposed primary fenced", func() bool { return pA.Deposed() })
	time.Sleep(30 * time.Millisecond) // window for a (wrong) apply to land
	if err := feng.Flush(); err != nil {
		t.Fatal(err)
	}
	if feng.Contains(777) {
		t.Fatal("follower applied a frame from a deposed primary")
	}

	// Back to the real primary: replication resumes.
	fol.Retarget("b")
	if err := engB.CommitBatch([]uint64{20}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "replication resumed on B", func() bool {
		return fol.AppliedSeq() >= engB.ReplDurableSeq()
	})
	if err := feng.Flush(); err != nil {
		t.Fatal(err)
	}
	if !feng.Contains(20) || !feng.Contains(10) {
		t.Fatal("follower missing epoch-2 keys after failback")
	}
}

// TestReplReconnectBackoff: a follower started against a dead address keeps
// retrying with backoff, connects once the primary appears, catches up, and
// counts its reconnects across a listener bounce.
func TestReplReconnectBackoff(t *testing.T) {
	tr := NewMemTransport()
	peng := openEngine(t, false)
	defer peng.Close()
	feng := openEngine(t, false)
	defer feng.Close()

	fol, err := NewFollower(feng, fastFollowerOpts("prim", tr))
	if err != nil {
		t.Fatal(err)
	}
	defer fol.Close()
	fol.Start()
	time.Sleep(20 * time.Millisecond) // several failed dials accumulate

	p, err := NewPrimary(peng, fastPrimaryOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Serve(tr, "prim"); err != nil {
		t.Fatal(err)
	}
	if err := peng.CommitBatch([]uint64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "initial catch-up", func() bool {
		return fol.AppliedSeq() >= peng.ReplDurableSeq()
	})

	// Bounce the primary (new epoch — a restarted primary must move up).
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "follower sees the drop", func() bool { return !fol.Status().Connected })
	p2, err := NewPrimary(peng, fastPrimaryOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if err := p2.Serve(tr, "prim"); err != nil {
		t.Fatal(err)
	}
	if err := peng.CommitBatch([]uint64{4, 5}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "reconnected and caught up", func() bool {
		st := fol.Status()
		return st.Connected && st.MaxEpoch == 2 && st.AppliedSeq >= peng.ReplDurableSeq()
	})
	if fol.Status().Reconnects < 1 {
		t.Fatalf("Reconnects = %d, want >= 1", fol.Status().Reconnects)
	}
	if err := feng.Flush(); err != nil {
		t.Fatal(err)
	}
	for _, k := range []uint64{1, 2, 3, 4, 5} {
		if !feng.Contains(k) {
			t.Fatalf("missing key %d after reconnect", k)
		}
	}
}

// TestReplColdCatchupAfterRestart: a follower restarted from disk (engine
// close + reopen, new Follower) under a bumped primary epoch re-syncs by
// snapshot and converges exactly.
func TestReplColdCatchupAfterRestart(t *testing.T) {
	tr := NewMemTransport()
	peng := openEngine(t, false)
	defer peng.Close()
	p, err := NewPrimary(peng, fastPrimaryOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if err := p.Serve(tr, "prim"); err != nil {
		t.Fatal(err)
	}

	fdir := t.TempDir()
	feng, err := storage.Open(fdir, storage.Options{CompactFanout: 3})
	if err != nil {
		t.Fatal(err)
	}
	fol, err := NewFollower(feng, fastFollowerOpts("prim", tr))
	if err != nil {
		t.Fatal(err)
	}
	fol.Start()

	var keys []uint64
	for k := uint64(0); k < 300; k++ {
		keys = append(keys, k*3)
	}
	if err := peng.CommitBatch(keys[:100]); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "first batch applied", func() bool {
		return fol.AppliedSeq() >= peng.ReplDurableSeq()
	})

	// Crash the follower: close the replay loop and its engine.
	if err := fol.Close(); err != nil {
		t.Fatal(err)
	}
	if err := feng.Close(); err != nil {
		t.Fatal(err)
	}
	// Primary moves on while the follower is down, far past the ring.
	if err := peng.CommitBatch(keys[100:]); err != nil {
		t.Fatal(err)
	}
	if err := peng.Flush(); err != nil {
		t.Fatal(err)
	}

	feng2, err := storage.Open(fdir, storage.Options{CompactFanout: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer feng2.Close()
	fol2, err := NewFollower(feng2, fastFollowerOpts("prim", tr))
	if err != nil {
		t.Fatal(err)
	}
	defer fol2.Close()
	if got := fol2.Status().MaxEpoch; got != 1 {
		t.Fatalf("restarted follower forgot its epoch floor: MaxEpoch=%d", got)
	}
	fol2.Start()
	waitFor(t, "cold catch-up", func() bool {
		return fol2.AppliedSeq() >= peng.ReplDurableSeq()
	})
	if err := feng2.Flush(); err != nil {
		t.Fatal(err)
	}
	if feng2.Len() != peng.Len() {
		t.Fatalf("Len mismatch after catch-up: follower=%d primary=%d", feng2.Len(), peng.Len())
	}
	for _, k := range keys {
		if !feng2.Contains(k) {
			t.Fatalf("missing key %d after cold catch-up", k)
		}
	}
}

// TestReplPrimaryNeverBlocksOnDeadFollower: with the follower partitioned
// away, primary commits keep completing and lag is observed, not blocked
// on.
func TestReplPrimaryNeverBlocksOnDeadFollower(t *testing.T) {
	mem := NewMemTransport()
	fnet := NewFaultNet(mem, FaultNetConfig{Seed: 42})
	fnet.Disarm()
	peng := openEngine(t, false)
	defer peng.Close()
	p, err := NewPrimary(peng, PrimaryOptions{Epoch: 1, HeartbeatEvery: 10 * time.Millisecond, RingFrames: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if err := p.Serve(fnet, "prim"); err != nil {
		t.Fatal(err)
	}
	feng := openEngine(t, false)
	defer feng.Close()
	fol, err := NewFollower(feng, fastFollowerOpts("prim", fnet))
	if err != nil {
		t.Fatal(err)
	}
	defer fol.Close()
	fol.Start()
	if err := peng.CommitBatch([]uint64{1}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "follower attached", func() bool { return fol.Status().Connected })

	fnet.SetPartitioned(true)
	// Far more commits than RingFrames: every one must complete promptly
	// even though nothing drains the ring.
	done := make(chan error, 1)
	go func() {
		for i := uint64(0); i < 200; i++ {
			if err := peng.CommitBatch([]uint64{1000 + i}); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(testTimeout):
		t.Fatal("commits blocked on a partitioned follower")
	}

	// Heal: the follower reconnects (its resume point fell off the ring →
	// snapshot) and converges.
	fnet.SetPartitioned(false)
	waitFor(t, "post-heal convergence", func() bool {
		return fol.AppliedSeq() >= peng.ReplDurableSeq()
	})
	if err := feng.Flush(); err != nil {
		t.Fatal(err)
	}
	if feng.Len() != 201 {
		t.Fatalf("follower Len=%d want 201", feng.Len())
	}
}
