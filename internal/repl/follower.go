package repl

import (
	"errors"
	"fmt"
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"time"

	"learnedindex/internal/binenc"
	"learnedindex/internal/obs"
	"learnedindex/internal/storage"
	"learnedindex/internal/vfs"
)

// FollowerOptions tunes the replay side.
type FollowerOptions struct {
	// Addr is the primary's address in the transport's namespace.
	Addr string
	// Transport defaults to TCP.
	Transport Transport

	// ReconnectBase/ReconnectMax bound the exponential redial backoff
	// (base doubles per consecutive failure up to max, each delay jittered
	// to half..full so a fleet of followers does not reconnect in phase).
	// Defaults 50ms / 2s.
	ReconnectBase time.Duration
	ReconnectMax  time.Duration
	// JitterSeed seeds the backoff jitter (0 = time-seeded).
	JitterSeed int64

	// HeartbeatTimeout severs a connection on which nothing arrives and
	// nothing applies for this long; the redial loop takes over. Must
	// comfortably exceed the primary's HeartbeatEvery. Default 2s.
	HeartbeatTimeout time.Duration

	// FlushEvery flushes the engine after this many applied keys, turning
	// replayed-durable keys into served ones at a bounded cadence.
	// Default 8192.
	FlushEvery int

	// QueueDepth bounds the decoded-frame apply queue. When the applier
	// (fsync-bound) falls behind, the reader stops draining the socket and
	// the transport's flow control pushes back on the primary — bounded
	// replay backpressure instead of unbounded buffering. Default 64.
	QueueDepth int
}

func (o FollowerOptions) withDefaults() FollowerOptions {
	if o.Transport == nil {
		o.Transport = TCP
	}
	if o.ReconnectBase <= 0 {
		o.ReconnectBase = 50 * time.Millisecond
	}
	if o.ReconnectMax <= 0 {
		o.ReconnectMax = 2 * time.Second
	}
	if o.HeartbeatTimeout <= 0 {
		o.HeartbeatTimeout = 2 * time.Second
	}
	if o.FlushEvery <= 0 {
		o.FlushEvery = 8192
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	return o
}

// FollowerStatus is a point-in-time view of the replay plane.
type FollowerStatus struct {
	Connected         bool
	AppliedSeq        uint64 // frames durably applied to the local engine
	PrimaryDurableSeq uint64 // primary's horizon at the last heartbeat
	LagFrames         uint64 // PrimaryDurableSeq - AppliedSeq (0 floor)
	MaxEpoch          uint64 // fencing floor: highest primary epoch seen
	Reconnects        int64  // sessions established after the first
}

// Follower replays a primary's durable frame stream into its own engine.
// Every applied frame is group-committed (durable locally) before it is
// acked, so a follower ack means exactly what a Commit return means on the
// primary: the keys survive a crash of the follower. A disconnected
// follower keeps serving reads from its engine and redials with jittered
// exponential backoff; a primary presenting an epoch below the follower's
// high-water mark is fenced (told it is deposed) and refused.
type Follower struct {
	eng     *storage.Engine
	strMode bool
	opts    FollowerOptions

	mu       sync.Mutex
	addr     string
	maxEpoch uint64
	// applied is the durably applied frame horizon in maxEpoch's stream;
	// it is meaningful only while baselined is true. An epoch raise marks a
	// NEW stream (a restarted primary's frame sequence restarts at 1), so
	// the handshake zeroes applied and clears baselined; only a completed
	// snapshot under the new epoch re-baselines. While un-baselined the
	// hello advertises needSnapSeq so the primary can never resume a stale
	// horizon past frames this follower has not seen.
	applied        uint64
	baselined      bool
	primaryDurable uint64
	connected      bool
	sessions       int64
	pendingFlush   int  // applied keys since the last engine flush
	conn           Conn // live session's conn, severed by Close/Retarget
	closed         bool

	rng  *rand.Rand // redial jitter; owned by the run loop goroutine
	quit chan struct{}
	wg   sync.WaitGroup
	m    followerMetrics
}

type followerMetrics struct {
	framesApplied *obs.Counter
	keysApplied   *obs.Counter
	snapshots     *obs.Counter
	reconnects    *obs.Counter
	fencedStale   *obs.Counter
	connected     *obs.Gauge
	appliedSeq    *obs.Gauge
	lagFrames     *obs.Gauge
	maxEpoch      *obs.Gauge
}

func newFollowerMetrics(reg *obs.Registry) followerMetrics {
	return followerMetrics{
		framesApplied: reg.Counter("lix_repl_follower_frames_applied_total"),
		keysApplied:   reg.Counter("lix_repl_follower_keys_applied_total"),
		snapshots:     reg.Counter("lix_repl_follower_snapshots_total"),
		reconnects:    reg.Counter("lix_repl_follower_reconnects_total"),
		fencedStale:   reg.Counter("lix_repl_follower_fenced_stale_total"),
		connected:     reg.Gauge("lix_repl_follower_connected"),
		appliedSeq:    reg.Gauge("lix_repl_follower_applied_seq"),
		lagFrames:     reg.Gauge("lix_repl_follower_lag_frames"),
		maxEpoch:      reg.Gauge("lix_repl_follower_max_epoch"),
	}
}

// errStalePrimary marks a session ended by fencing a deposed primary.
var errStalePrimary = errors.New("repl: fenced a stale primary")

// needSnapSeq is the hello sequence a follower sends when it has no valid
// position in the primary's stream (fresh, or its baseline belongs to an
// older epoch). It exceeds any real durable horizon, so the primary's
// resume check routes the session to the snapshot path.
const needSnapSeq = ^uint64(0)

// NewFollower attaches a replay loop to eng (which must be open in the
// same key mode as the primary). Durable replication state (fencing floor,
// applied horizon) persists in eng.Dir()/repl-state across restarts; a
// missing or stale state file is always safe — the follower re-applies or
// re-snapshots, and replay deduplicates. Call Start to begin.
func NewFollower(eng *storage.Engine, opts FollowerOptions) (*Follower, error) {
	opts = opts.withDefaults()
	if opts.Addr == "" {
		return nil, fmt.Errorf("repl: follower needs a primary address")
	}
	seed := opts.JitterSeed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	f := &Follower{
		eng:     eng,
		strMode: eng.StringKeys(),
		opts:    opts,
		addr:    opts.Addr,
		rng:     rand.New(rand.NewSource(seed)),
		quit:    make(chan struct{}),
		m:       newFollowerMetrics(eng.Registry()),
	}
	f.loadState()
	f.m.appliedSeq.Set(int64(f.applied))
	f.m.maxEpoch.Set(int64(f.maxEpoch))
	return f, nil
}

// Start launches the dial/replay loop.
func (f *Follower) Start() {
	f.wg.Add(1)
	go f.run()
}

// Close stops the replay loop, severs the live session, persists state,
// and waits for the goroutines. The engine stays open — the caller owns it.
func (f *Follower) Close() error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil
	}
	f.closed = true
	c := f.conn
	f.mu.Unlock()
	close(f.quit)
	if c != nil {
		c.Close()
	}
	f.wg.Wait()
	f.saveState()
	return nil
}

// Retarget points the follower at a new primary address: the live session
// is severed and the redial loop connects to addr (fencing rules apply —
// a stale primary at addr is refused).
func (f *Follower) Retarget(addr string) {
	f.mu.Lock()
	f.addr = addr
	c := f.conn
	f.mu.Unlock()
	if c != nil {
		c.Close()
	}
}

// Status returns a point-in-time view.
func (f *Follower) Status() FollowerStatus {
	f.mu.Lock()
	defer f.mu.Unlock()
	s := FollowerStatus{
		Connected:         f.connected,
		AppliedSeq:        f.applied,
		PrimaryDurableSeq: f.primaryDurable,
		MaxEpoch:          f.maxEpoch,
		Reconnects:        max(f.sessions-1, 0),
	}
	if s.PrimaryDurableSeq > s.AppliedSeq {
		s.LagFrames = s.PrimaryDurableSeq - s.AppliedSeq
	}
	return s
}

// run is the dial loop: jittered exponential backoff between failures,
// reset on an established session.
func (f *Follower) run() {
	defer f.wg.Done()
	attempt := 0
	for {
		select {
		case <-f.quit:
			return
		default:
		}
		f.mu.Lock()
		addr := f.addr
		f.mu.Unlock()
		c, err := f.opts.Transport.Dial(addr)
		if err == nil {
			err = f.session(c)
			c.Close()
		}
		f.setConnected(false, nil)
		if err == nil || errors.Is(err, errSessionEstablished) {
			attempt = 0
		} else {
			attempt++
		}
		// Jittered exponential backoff: half..full of the capped delay.
		d := f.opts.ReconnectBase << min(attempt, 16)
		if d > f.opts.ReconnectMax || d <= 0 {
			d = f.opts.ReconnectMax
		}
		d = d/2 + time.Duration(f.rng.Int63n(int64(d/2)+1))
		select {
		case <-time.After(d):
		case <-f.quit:
			return
		}
	}
}

// errSessionEstablished wraps session errors that happened AFTER a
// successful handshake, so the backoff resets (the primary was there; the
// link just broke).
var errSessionEstablished = errors.New("repl: session established")

// session speaks one connection: handshake (with fencing), then a reader
// feeding a bounded apply queue. Returns when the connection dies.
func (f *Follower) session(c Conn) error {
	var rbuf, wbuf []byte
	var wmu sync.Mutex // acks (applier) and fences (reader) share the conn

	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil
	}
	f.conn = c
	helloSeq := f.applied
	if !f.baselined {
		helloSeq = needSnapSeq // no valid position: force the snapshot path
	}
	hello := msg{kind: msgHello, strMode: f.strMode, epoch: f.maxEpoch, seq: helloSeq}
	f.mu.Unlock()
	defer func() {
		f.mu.Lock()
		f.conn = nil
		f.mu.Unlock()
	}()

	if err := writeMsg(c, &wbuf, &hello); err != nil {
		return err
	}
	// Watchdog: reset on every arrival AND every completed apply — a slow
	// fsync is progress, silence is not. Expiry severs the connection.
	wd := time.AfterFunc(f.opts.HeartbeatTimeout, func() { c.Close() })
	defer wd.Stop()

	var ph msg
	if err := readMsg(c, &rbuf, f.strMode, &ph); err != nil {
		return err
	}
	wd.Reset(f.opts.HeartbeatTimeout)
	if ph.kind != msgPrimaryHello {
		return errWire
	}
	if ph.strMode != f.strMode {
		return fmt.Errorf("repl: primary key mode mismatch (primary strMode=%v)", ph.strMode)
	}
	f.mu.Lock()
	if ph.epoch < f.maxEpoch {
		fence := msg{kind: msgFenced, epoch: f.maxEpoch}
		f.mu.Unlock()
		f.m.fencedStale.Inc()
		wmu.Lock()
		writeMsg(c, &wbuf, &fence)
		wmu.Unlock()
		return errStalePrimary
	}
	epochRaised := ph.epoch > f.maxEpoch
	f.maxEpoch = ph.epoch
	if epochRaised {
		// A new epoch is a new stream: a restarted primary's frame sequence
		// restarts at 1, so the old stream's horizon is not just stale but
		// poisonous — advertising it under the new epoch would let the
		// primary resume past frames this follower never saw. Zero it and
		// drop the baseline; only this epoch's snapshot re-establishes one.
		f.applied = 0
		f.baselined = false
	}
	f.primaryDurable = ph.seq
	f.sessions++
	reconnect := f.sessions > 1
	f.mu.Unlock()
	f.m.maxEpoch.Set(int64(ph.epoch))
	if epochRaised {
		f.m.appliedSeq.Set(0)
		f.saveState()
	}
	if reconnect {
		f.m.reconnects.Inc()
	}
	f.setConnected(true, nil)

	// Applier: drains the bounded queue, group-commits every frame into the
	// local engine, acks, and flushes on cadence. On failure it severs the
	// connection and drains the queue so the reader never deadlocks.
	ch := make(chan msg, f.opts.QueueDepth)
	var applyWg sync.WaitGroup
	var applyErr error
	applyWg.Add(1)
	go func() {
		defer applyWg.Done()
		for m := range ch {
			if applyErr != nil {
				continue // draining
			}
			if err := f.apply(&m, c, &wbuf, &wmu, wd); err != nil {
				applyErr = err
				c.Close()
			}
		}
	}()

	// Reader: validates stream order before enqueueing. expect is the next
	// frame sequence this connection owes us; 0 until the primary commits
	// to a position (first frame or snapshot end).
	err := func() error {
		var m msg
		expect := uint64(0)
		for {
			if rerr := readMsg(c, &rbuf, f.strMode, &m); rerr != nil {
				return rerr
			}
			wd.Reset(f.opts.HeartbeatTimeout)
			switch m.kind {
			case msgHeartbeat:
				if m.epoch != f.MaxEpoch() {
					// A primary whose epoch moved mid-connection is not a
					// protocol we speak; sever and re-handshake.
					return errWire
				}
				f.mu.Lock()
				f.primaryDurable = m.seq
				applied := f.applied
				lag := uint64(0)
				if m.seq > applied {
					lag = m.seq - applied
				}
				f.mu.Unlock()
				f.m.lagFrames.Set(int64(lag))
				ack := msg{kind: msgAck, seq: applied, nonce: m.nonce}
				wmu.Lock()
				werr := writeMsg(c, &wbuf, &ack)
				wmu.Unlock()
				if werr != nil {
					return werr
				}
			case msgFrame:
				if expect == 0 {
					expect = f.AppliedSeq() + 1
				}
				if m.seq < expect {
					continue // duplicate of an applied frame; ignore
				}
				if m.seq > expect {
					// Gap or reordering: the stream is no longer the WAL
					// order. Never apply out of order — resync instead.
					return errWire
				}
				expect++
				select {
				case ch <- m:
				case <-f.quit:
					return nil
				}
			case msgSnapBegin, msgSnapChunk, msgSnapEnd:
				if m.kind == msgSnapEnd {
					expect = m.seq + 1
				}
				select {
				case ch <- m:
				case <-f.quit:
					return nil
				}
			default:
				return errWire
			}
		}
	}()
	close(ch)
	applyWg.Wait()
	f.saveState()
	if applyErr != nil {
		return fmt.Errorf("%w: %w", errSessionEstablished, applyErr)
	}
	return fmt.Errorf("%w: %w", errSessionEstablished, err)
}

// apply executes one queued message against the local engine. Frames and
// snapshot chunks group-commit (durable before the ack leaves); snapEnd
// adopts the snapshot's sequence and acks it.
func (f *Follower) apply(m *msg, c Conn, wbuf *[]byte, wmu *sync.Mutex, wd *time.Timer) error {
	switch m.kind {
	case msgSnapBegin:
		f.m.snapshots.Inc()
		return nil
	case msgSnapChunk:
		if err := f.commitKeys(m); err != nil {
			return err
		}
		wd.Reset(f.opts.HeartbeatTimeout)
		// Progress ack: it moves no horizon (that happens at snapEnd) but it
		// is read progress on the primary, whose silence watchdog would
		// otherwise sever any snapshot whose transfer+apply outlasts its
		// ReadTimeout — a catch-up livelock for non-trivial datasets.
		return f.ack(c, wbuf, wmu, f.AppliedSeq(), 0)
	case msgSnapEnd:
		// The image is durable; adopt its horizon EXACTLY (assignment, not
		// max — after an epoch raise the old stream's high-water mark must
		// not win against the new stream's position) and re-baseline.
		f.adoptApplied(m.seq)
		f.saveState()
		return f.ack(c, wbuf, wmu, m.seq, 0)
	case msgFrame:
		if err := f.commitKeys(m); err != nil {
			return err
		}
		f.m.framesApplied.Inc()
		f.setApplied(m.seq)
		wd.Reset(f.opts.HeartbeatTimeout)
		return f.ack(c, wbuf, wmu, m.seq, 0)
	}
	return nil
}

// commitKeys group-commits the message's keys and flushes on cadence.
func (f *Follower) commitKeys(m *msg) error {
	var n int
	var err error
	if f.strMode {
		n = len(m.strs)
		err = f.eng.CommitStringBatch(m.strs)
	} else {
		n = len(m.keys)
		err = f.eng.CommitBatch(m.keys)
	}
	if err != nil {
		return err
	}
	f.m.keysApplied.Add(int64(n))
	f.mu.Lock()
	f.pendingFlush += n
	doFlush := f.pendingFlush >= f.opts.FlushEvery
	if doFlush {
		f.pendingFlush = 0
	}
	f.mu.Unlock()
	if doFlush {
		if err := f.eng.Flush(); err != nil {
			return err
		}
		f.saveState()
	}
	return nil
}

func (f *Follower) ack(c Conn, wbuf *[]byte, wmu *sync.Mutex, seq, nonce uint64) error {
	ack := msg{kind: msgAck, seq: seq, nonce: nonce}
	wmu.Lock()
	defer wmu.Unlock()
	return writeMsg(c, wbuf, &ack)
}

func (f *Follower) setApplied(seq uint64) {
	f.mu.Lock()
	if seq > f.applied {
		f.applied = seq
	}
	applied := f.applied
	f.mu.Unlock()
	f.m.appliedSeq.Set(int64(applied))
}

// adoptApplied pins the applied horizon to seq exactly and marks it a valid
// baseline in maxEpoch's stream — snapshot adoption, where setApplied's
// raise-only rule (right for in-order frames) would be wrong.
func (f *Follower) adoptApplied(seq uint64) {
	f.mu.Lock()
	f.applied = seq
	f.baselined = true
	f.mu.Unlock()
	f.m.appliedSeq.Set(int64(seq))
}

// AppliedSeq returns the durably applied frame horizon.
func (f *Follower) AppliedSeq() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.applied
}

// MaxEpoch returns the fencing floor (highest primary epoch seen).
func (f *Follower) MaxEpoch() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.maxEpoch
}

func (f *Follower) setConnected(up bool, _ error) {
	f.mu.Lock()
	f.connected = up
	f.mu.Unlock()
	if up {
		f.m.connected.Set(1)
	} else {
		f.m.connected.Set(0)
	}
}

// --- durable replication state -------------------------------------------
//
// repl-state pins the fencing floor and applied horizon across follower
// restarts: magic, uvarint maxEpoch, uvarint appliedSeq, uvarint baselined
// (0/1 — whether appliedSeq is a valid position in maxEpoch's stream),
// crc32c. Written atomically (temp + rename) and always AFTER the state it
// describes is durable in the engine, so a stale file only ever
// under-reports — the primary re-ships or re-snapshots, and replay
// deduplicates. A corrupt, missing, or older-format file degrades to zeros
// (un-baselined) for the same reason.

const replStateName = "repl-state"

var replStateMagic = []byte("LIXRPLST")

func (f *Follower) statePath() string {
	return filepath.Join(f.eng.Dir(), replStateName)
}

func (f *Follower) loadState() {
	data, err := vfs.OS.ReadFile(f.statePath())
	if err != nil || len(data) < len(replStateMagic)+4 {
		return
	}
	if string(data[:len(replStateMagic)]) != string(replStateMagic) {
		return
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	want := uint32(tail[0]) | uint32(tail[1])<<8 | uint32(tail[2])<<16 | uint32(tail[3])<<24
	if crc32.Checksum(body, wireCRC) != want {
		return
	}
	r := binenc.NewReader(body[len(replStateMagic):])
	epoch := r.Uvarint()
	applied := r.Uvarint()
	baselined := r.Uvarint()
	if r.Err() != nil || r.Remaining() != 0 || baselined > 1 {
		return
	}
	f.maxEpoch, f.applied, f.baselined = epoch, applied, baselined == 1
}

func (f *Follower) saveState() {
	f.mu.Lock()
	epoch, applied, baselined := f.maxEpoch, f.applied, f.baselined
	f.mu.Unlock()
	buf := append([]byte(nil), replStateMagic...)
	buf = binenc.AppendUvarint(buf, epoch)
	buf = binenc.AppendUvarint(buf, applied)
	var b uint64
	if baselined {
		b = 1
	}
	buf = binenc.AppendUvarint(buf, b)
	crc := crc32.Checksum(buf, wireCRC)
	buf = append(buf, byte(crc), byte(crc>>8), byte(crc>>16), byte(crc>>24))
	tmp := f.statePath() + ".tmp"
	fh, err := vfs.OS.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return // best-effort: a lost state file only costs a re-snapshot
	}
	_, werr := fh.Write(buf)
	serr := fh.Sync()
	cerr := fh.Close()
	if werr != nil || serr != nil || cerr != nil {
		vfs.OS.Remove(tmp)
		return
	}
	if vfs.OS.Rename(tmp, f.statePath()) == nil {
		vfs.OS.SyncDir(f.eng.Dir())
	}
}
