package obs

import "math/bits"

// Bucket layout shared by both builds: values 0..7 get exact unit buckets,
// and every value above is log-spaced with four sub-buckets per power of
// two — bucket width is at most a quarter of the bucket's base, so any
// estimate read off the histogram (quantile, max) is exact to within one
// bucket width (<25% relative error). The boundaries are fixed at compile
// time: no configuration, no resizing, and merging two histograms is
// bucket-wise addition.
const (
	histExactBuckets = 8   // values 0..7, one bucket each
	histSubBuckets   = 4   // sub-buckets per octave above 7
	histBuckets      = 252 // 8 exact + 61 octaves (exp 3..63) x 4
)

// bucketIndex maps a value to its bucket.
func bucketIndex(v uint64) int {
	if v < histExactBuckets {
		return int(v)
	}
	exp := bits.Len64(v) - 1        // 3..63
	frac := (v >> (exp - 2)) & 0b11 // top two bits below the leading one
	return histExactBuckets + (exp-3)*histSubBuckets + int(frac)
}

// bucketBounds returns the inclusive value range [lo, hi] of bucket idx.
func bucketBounds(idx int) (lo, hi uint64) {
	if idx < histExactBuckets {
		return uint64(idx), uint64(idx)
	}
	e := uint(3 + (idx-histExactBuckets)/histSubBuckets)
	f := uint64((idx - histExactBuckets) % histSubBuckets)
	lo = 1<<e + f<<(e-2)
	hi = lo + 1<<(e-2) - 1
	return lo, hi
}

// HistBucket is one non-empty bucket of a snapshot: the inclusive value
// range [Lo, Hi] and how many observations landed in it.
type HistBucket struct {
	Lo    uint64 `json:"lo"`
	Hi    uint64 `json:"hi"`
	Count uint64 `json:"count"`
}

// HistSnapshot is a point-in-time copy of a histogram: only the non-empty
// buckets, in ascending value order. Sum is approximated from bucket
// midpoints (Observe is a single atomic add; the exact sum is not
// tracked), so Mean carries the same <1-bucket-width error as quantiles.
type HistSnapshot struct {
	Count   uint64       `json:"count"`
	Sum     float64      `json:"sum"`
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// Merge folds other into h bucket-wise: the result is exactly the
// histogram of the union of both observation streams.
func (h *HistSnapshot) Merge(other HistSnapshot) {
	if other.Count == 0 {
		return
	}
	if h.Count == 0 {
		h.Count = other.Count
		h.Sum = other.Sum
		h.Buckets = append(h.Buckets[:0], other.Buckets...)
		return
	}
	merged := make([]HistBucket, 0, len(h.Buckets)+len(other.Buckets))
	i, j := 0, 0
	for i < len(h.Buckets) && j < len(other.Buckets) {
		a, b := h.Buckets[i], other.Buckets[j]
		switch {
		case a.Lo < b.Lo:
			merged = append(merged, a)
			i++
		case a.Lo > b.Lo:
			merged = append(merged, b)
			j++
		default:
			a.Count += b.Count
			merged = append(merged, a)
			i, j = i+1, j+1
		}
	}
	merged = append(merged, h.Buckets[i:]...)
	merged = append(merged, other.Buckets[j:]...)
	h.Buckets = merged
	h.Count += other.Count
	h.Sum += other.Sum
}

// Quantile estimates the q-quantile (q in [0, 1]) by linear interpolation
// inside the bucket holding that rank. The estimate is within one bucket
// width of the true order statistic.
func (h *HistSnapshot) Quantile(q float64) float64 {
	if h.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := q * float64(h.Count-1)
	var cum float64
	for _, b := range h.Buckets {
		next := cum + float64(b.Count)
		if rank < next || b == h.Buckets[len(h.Buckets)-1] {
			// Interpolate the rank's position inside this bucket.
			frac := (rank - cum + 0.5) / float64(b.Count)
			if frac < 0 {
				frac = 0
			} else if frac > 1 {
				frac = 1
			}
			return float64(b.Lo) + frac*float64(b.Hi-b.Lo)
		}
		cum = next
	}
	return 0
}

// Max returns the upper bound of the highest non-empty bucket: an estimate
// of the maximum observation, never below it by more than a bucket width
// (and never above the bucket's cap).
func (h *HistSnapshot) Max() uint64 {
	if len(h.Buckets) == 0 {
		return 0
	}
	return h.Buckets[len(h.Buckets)-1].Hi
}

// Mean returns the midpoint-approximated mean observation.
func (h *HistSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}
