package obs

import (
	"sort"
	"strings"
	"sync"
)

// Registry is a named metric namespace: counters, gauges, and histograms
// created once at subsystem construction, plus collectors — callbacks that
// inject point-in-time series (per-segment funnels, per-plan health, queue
// depths) when a snapshot is taken. Metric handles are cheap to hold and
// safe for concurrent use; getting an existing name returns the same
// handle.
//
// Metric names follow Prometheus conventions (lix_<subsystem>_<what>,
// counters ending _total) and may carry a label suffix built with L:
// `lix_segment_bloom_probes_total{segment="0003-0005"}`.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	hists      map[string]*Histogram
	collectors []func(*Snapshot)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// L appends one label to a metric name: L("x_total", "shard", "3") is
// `x_total{shard="3"}`. Chained labels extend the set. Quotes and
// backslashes in the value are escaped per the Prometheus text format.
func L(name, key, value string) string {
	var b strings.Builder
	b.Grow(len(name) + len(key) + len(value) + 6)
	if i := strings.IndexByte(name, '{'); i >= 0 {
		b.WriteString(name[:len(name)-1]) // reopen the existing label set
		b.WriteByte(',')
	} else {
		b.WriteString(name)
		b.WriteByte('{')
	}
	b.WriteString(key)
	b.WriteString(`="`)
	for i := 0; i < len(value); i++ {
		switch c := value[i]; c {
		case '"', '\\':
			b.WriteByte('\\')
			b.WriteByte(c)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(c)
		}
	}
	b.WriteString(`"}`)
	return b.String()
}

// Counter returns (creating if needed) the named counter.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = new(Counter)
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = new(Gauge)
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram()
		r.hists[name] = h
	}
	return h
}

// RegisterCollector adds a snapshot-time callback. Collectors run on every
// Snapshot, after the registered metrics are copied; they must not call
// Snapshot themselves and must not hold locks that a metrics reader could
// be blocked behind indefinitely.
func (r *Registry) RegisterCollector(fn func(*Snapshot)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collectors = append(r.collectors, fn)
}

// Snapshot captures every registered metric plus everything the collectors
// inject: one coherent, immutable view safe to read, serialize, or merge
// after the registry has moved on.
func (r *Registry) Snapshot() *Snapshot {
	r.mu.Lock()
	s := &Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)),
		Histograms: make(map[string]HistSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Load()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = float64(g.Load())
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot()
	}
	collectors := r.collectors
	r.mu.Unlock()
	for _, fn := range collectors {
		fn(s)
	}
	return s
}

// Snapshot is one coherent view of a metrics plane: static metrics copied
// from the registry plus collector-injected dynamic series. Maps are keyed
// by full metric name including any label suffix.
type Snapshot struct {
	Counters   map[string]int64        `json:"counters"`
	Gauges     map[string]float64      `json:"gauges"`
	Histograms map[string]HistSnapshot `json:"histograms"`
}

// AddCounter injects (or adds to) a counter series. Collector API.
func (s *Snapshot) AddCounter(name string, v int64) { s.Counters[name] += v }

// SetGauge injects a gauge series. Collector API.
func (s *Snapshot) SetGauge(name string, v float64) { s.Gauges[name] = v }

// AddHistogram injects a histogram series, merging with any present one.
// Collector API.
func (s *Snapshot) AddHistogram(name string, h HistSnapshot) {
	cur := s.Histograms[name]
	cur.Merge(h)
	s.Histograms[name] = cur
}

// Counter returns the named counter's value (0 when absent).
func (s *Snapshot) Counter(name string) int64 { return s.Counters[name] }

// Gauge returns the named gauge's value (0 when absent).
func (s *Snapshot) Gauge(name string) float64 { return s.Gauges[name] }

// Histogram returns the named histogram's snapshot (empty when absent).
func (s *Snapshot) Histogram(name string) HistSnapshot { return s.Histograms[name] }

// Series returns every full metric name carrying the given base name (the
// part before any label suffix), sorted — how per-segment and per-plan
// series are enumerated.
func (s *Snapshot) Series(base string) []string {
	var out []string
	match := func(name string) bool {
		return name == base || (strings.HasPrefix(name, base) && name[len(base)] == '{')
	}
	for name := range s.Counters {
		if match(name) {
			out = append(out, name)
		}
	}
	for name := range s.Gauges {
		if match(name) {
			out = append(out, name)
		}
	}
	for name := range s.Histograms {
		if match(name) {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}
