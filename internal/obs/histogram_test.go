package obs

import (
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"testing"
)

// TestBucketBoundaries checks that bucketIndex and bucketBounds are exact
// inverses: every value maps into a bucket whose [Lo, Hi] contains it,
// boundaries are contiguous, and bucket width never exceeds a quarter of
// the bucket's low bound (above the exact range).
func TestBucketBoundaries(t *testing.T) {
	// Exact range: identity buckets.
	for v := uint64(0); v < histExactBuckets; v++ {
		if got := bucketIndex(v); got != int(v) {
			t.Fatalf("bucketIndex(%d) = %d, want %d", v, got, v)
		}
		lo, hi := bucketBounds(int(v))
		if lo != v || hi != v {
			t.Fatalf("bucketBounds(%d) = [%d,%d], want [%d,%d]", v, lo, hi, v, v)
		}
	}
	// Every bucket: bounds round-trip through bucketIndex at both ends.
	prevHi := uint64(0)
	for idx := 0; idx < histBuckets; idx++ {
		lo, hi := bucketBounds(idx)
		if idx > 0 && lo != prevHi+1 {
			t.Fatalf("bucket %d starts at %d, want %d (contiguous)", idx, lo, prevHi+1)
		}
		if bucketIndex(lo) != idx {
			t.Fatalf("bucketIndex(lo=%d) = %d, want %d", lo, bucketIndex(lo), idx)
		}
		if bucketIndex(hi) != idx {
			t.Fatalf("bucketIndex(hi=%d) = %d, want %d", hi, bucketIndex(hi), idx)
		}
		if idx >= histExactBuckets {
			if width := hi - lo + 1; width > lo/4+1 {
				t.Fatalf("bucket %d [%d,%d] width %d exceeds lo/4", idx, lo, hi, width)
			}
		}
		prevHi = hi
	}
	if prevHi != math.MaxUint64 {
		t.Fatalf("last bucket ends at %d, want MaxUint64", prevHi)
	}
	// Sampled values across the range.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100000; i++ {
		v := rng.Uint64() >> uint(rng.Intn(64))
		idx := bucketIndex(v)
		lo, hi := bucketBounds(idx)
		if v < lo || v > hi {
			t.Fatalf("value %d mapped to bucket %d [%d,%d]", v, idx, lo, hi)
		}
	}
}

// TestHistogramMerge checks that merging two snapshots equals the snapshot
// of the combined observation stream.
func TestHistogramMerge(t *testing.T) {
	if !Enabled {
		t.Skip("histograms compiled out under -tags noobs")
	}
	a, b, both := NewHistogram(), NewHistogram(), NewHistogram()
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 5000; i++ {
		v := rng.Uint64() >> uint(rng.Intn(60))
		if i%3 == 0 {
			a.Observe(v)
		} else {
			b.Observe(v)
		}
		both.Observe(v)
	}
	merged := a.Snapshot()
	merged.Merge(b.Snapshot())
	want := both.Snapshot()
	if merged.Count != want.Count {
		t.Fatalf("merged count %d, want %d", merged.Count, want.Count)
	}
	if len(merged.Buckets) != len(want.Buckets) {
		t.Fatalf("merged has %d buckets, want %d", len(merged.Buckets), len(want.Buckets))
	}
	for i := range merged.Buckets {
		if merged.Buckets[i] != want.Buckets[i] {
			t.Fatalf("bucket %d: merged %+v, want %+v", i, merged.Buckets[i], want.Buckets[i])
		}
	}
	if math.Abs(merged.Sum-want.Sum) > 1e-6*math.Abs(want.Sum) {
		t.Fatalf("merged sum %g, want %g", merged.Sum, want.Sum)
	}
	// Merging into an empty snapshot copies; merging empty is a no-op.
	var empty HistSnapshot
	empty.Merge(want)
	if empty.Count != want.Count || len(empty.Buckets) != len(want.Buckets) {
		t.Fatalf("merge into empty lost data")
	}
	before := want.Count
	want.Merge(HistSnapshot{})
	if want.Count != before {
		t.Fatalf("merging empty changed count")
	}
}

// TestHistogramQuantile checks quantile estimates land within one bucket
// width of the true order statistic of the observed stream.
func TestHistogramQuantile(t *testing.T) {
	if !Enabled {
		t.Skip("histograms compiled out under -tags noobs")
	}
	h := NewHistogram()
	rng := rand.New(rand.NewSource(3))
	vals := make([]uint64, 20000)
	for i := range vals {
		// Mixed regimes: exact range, mid, heavy tail.
		switch i % 3 {
		case 0:
			vals[i] = uint64(rng.Intn(8))
		case 1:
			vals[i] = uint64(rng.Intn(100000))
		default:
			vals[i] = rng.Uint64() >> 20
		}
		h.Observe(vals[i])
	}
	// True order statistics.
	sorted := append([]uint64(nil), vals...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	snap := h.Snapshot()
	for _, q := range []float64{0, 0.01, 0.25, 0.5, 0.9, 0.99, 0.999, 1} {
		rank := int(q * float64(len(sorted)-1))
		truth := sorted[rank]
		est := snap.Quantile(q)
		idx := bucketIndex(truth)
		lo, hi := bucketBounds(idx)
		width := float64(hi-lo) + 1
		if est < float64(lo)-width || est > float64(hi)+width {
			t.Fatalf("q=%g: estimate %g outside bucket [%d,%d] +/- width %g (truth %d)",
				q, est, lo, hi, width, truth)
		}
	}
	if max := snap.Max(); max < sorted[len(sorted)-1] {
		t.Fatalf("Max() = %d below true max %d", max, sorted[len(sorted)-1])
	}
	if snap.Mean() <= 0 {
		t.Fatalf("Mean() = %g, want positive", snap.Mean())
	}
}

// TestHistogramRace hammers one histogram from GOMAXPROCS writers while a
// reader snapshots continuously. Run under -race this proves Observe and
// Snapshot are data-race-free; the final snapshot must account for every
// observation.
func TestHistogramRace(t *testing.T) {
	if !Enabled {
		t.Skip("histograms compiled out under -tags noobs")
	}
	h := NewHistogram()
	writers := runtime.GOMAXPROCS(0)
	const perWriter = 20000
	stop := make(chan struct{})
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
				s := h.Snapshot()
				var n uint64
				for _, b := range s.Buckets {
					n += b.Count
				}
				if n != s.Count {
					t.Errorf("snapshot bucket sum %d != count %d", n, s.Count)
					return
				}
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perWriter; i++ {
				h.Observe(rng.Uint64() >> uint(rng.Intn(60)))
			}
		}(int64(w))
	}
	wg.Wait()
	close(stop)
	<-readerDone
	final := h.Snapshot()
	if want := uint64(writers * perWriter); final.Count != want {
		t.Fatalf("final count %d, want %d", final.Count, want)
	}
}
