//go:build !noobs

package obs

// Enabled reports whether hot-path instrumentation is compiled in. Guard
// per-operation metric work with `if obs.Enabled { ... }`: under -tags
// noobs the constant is false and the branch is dead-code-eliminated.
const Enabled = true
