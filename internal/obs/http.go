package obs

import (
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// DebugServer is the optional metrics/pprof HTTP listener. It serves
// `/metrics` (Prometheus text), `/metrics.json` (JSON snapshot), and the
// standard `/debug/pprof/*` handlers. It binds whatever address it is
// given and performs no authentication: bind loopback (the default
// convention is "127.0.0.1:0") or front it with something that does.
type DebugServer struct {
	ln  net.Listener
	srv *http.Server
}

// StartDebugServer binds addr and serves snapshots from src in a
// background goroutine. src is called per request, so every scrape sees a
// fresh snapshot.
func StartDebugServer(addr string, src func() *Snapshot) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		src().WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		src().WriteJSON(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s := &DebugServer{
		ln: ln,
		srv: &http.Server{
			Handler:           mux,
			ReadHeaderTimeout: 5 * time.Second,
		},
	}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the bound address — useful with ":0" to discover the port.
func (s *DebugServer) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and in-flight handlers.
func (s *DebugServer) Close() error { return s.srv.Close() }
