// Package obs is the engine's always-on metrics plane: allocation-free,
// concurrency-safe primitives cheap enough to live inside the compiled
// read path, plus a registry that snapshots them into one coherent view
// and exporters that render the view as Prometheus text or JSON.
//
// # Primitives
//
//   - Counter: a monotonically increasing count, sharded over
//     cache-line-padded cells so concurrent writers on different cores
//     never bounce one hot line (Add is one uncontended atomic add; Load
//     sums the cells).
//   - Gauge: a settable level (single atomic — gauges are low-rate).
//   - Histogram: fixed log-spaced buckets; Observe is a single atomic add
//     into the value's bucket, Snapshot/Merge are lock-free, and quantile
//     estimates are exact to within one bucket width (<25% relative).
//   - Sampler / SampleKey: deterministic 1-in-N admission for paths too
//     hot to time every operation — SampleKey costs one multiply and no
//     shared state at all.
//
// # Build tag "noobs"
//
// Building with -tags noobs compiles the hot-path instrumentation out:
// Histogram becomes an empty no-op type, Enabled becomes the constant
// false so `if obs.Enabled { ... }` call sites (per-key sampling, per-probe
// funnel counts, scan tick state) are dead-code-eliminated. Counters and
// gauges stay real in both builds — the storage engine's accounting
// (storage.Stats) is built on them and they are the same atomics the
// engine paid before the metrics plane existed. The BENCH_obs.json
// experiment measures the on-vs-off delta instead of assuming it.
package obs

import (
	"sync/atomic"
	"unsafe"
)

// counterShards is the cell count of a sharded Counter; a power of two so
// the shard pick is a mask.
const counterShards = 16

// padCell is one cache-line-padded counter cell: 64 bytes so two cells
// never share a line and concurrent Adds on different shards never false-
// share.
type padCell struct {
	v atomic.Int64
	_ [56]byte
}

// shardIndex picks a shard from the caller's stack address. Goroutine
// stacks are at least page-aligned apart, so concurrently running
// goroutines land on different cells with high probability; the pick costs
// one address shift, no per-goroutine state, no runtime hooks.
func shardIndex() int {
	var b byte
	return int(uintptr(unsafe.Pointer(&b))>>10) & (counterShards - 1)
}

// Counter is a sharded monotonically increasing counter. The zero value is
// ready to use; all methods are safe for concurrent use.
type Counter struct {
	cells [counterShards]padCell
}

// Add adds n to the counter: one atomic add on the caller's shard cell.
func (c *Counter) Add(n int64) { c.cells[shardIndex()].v.Add(n) }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Load sums the cells. Concurrent Adds may or may not be included — the
// result is some value the counter passed through.
func (c *Counter) Load() int64 {
	var total int64
	for i := range c.cells {
		total += c.cells[i].v.Load()
	}
	return total
}

// Gauge is a settable level. The zero value is ready to use.
type Gauge struct {
	v atomic.Int64
}

// Set stores the current level.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the level by n.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Load returns the current level.
func (g *Gauge) Load() int64 { return g.v.Load() }
