//go:build noobs

package obs

// Enabled is the compiled-out build: `if obs.Enabled { ... }` call sites
// are eliminated, and Histogram is a no-op shim.
const Enabled = false
