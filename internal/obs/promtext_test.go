package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// promSample is one parsed exposition line.
type promSample struct {
	name   string            // base metric name
	labels map[string]string // may be empty
	value  float64
}

// parsePromText is a tiny Prometheus text-format (0.0.4) parser: enough to
// assert that our exporter emits well-formed lines. It rejects anything it
// does not understand rather than skipping it.
func parsePromText(text string) ([]promSample, error) {
	var out []promSample
	for ln, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			return nil, fmt.Errorf("line %d: no value separator: %q", ln+1, line)
		}
		series, valStr := line[:sp], line[sp+1:]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			return nil, fmt.Errorf("line %d: bad value %q: %v", ln+1, valStr, err)
		}
		s := promSample{value: val, labels: map[string]string{}}
		if i := strings.IndexByte(series, '{'); i >= 0 {
			if !strings.HasSuffix(series, "}") {
				return nil, fmt.Errorf("line %d: unterminated labels: %q", ln+1, line)
			}
			s.name = series[:i]
			body := series[i+1 : len(series)-1]
			for body != "" {
				eq := strings.IndexByte(body, '=')
				if eq < 0 || len(body) < eq+2 || body[eq+1] != '"' {
					return nil, fmt.Errorf("line %d: bad label pair in %q", ln+1, line)
				}
				key := body[:eq]
				rest := body[eq+2:]
				// Scan to the closing quote, honoring escapes.
				var val strings.Builder
				j := 0
				for ; j < len(rest); j++ {
					if rest[j] == '\\' && j+1 < len(rest) {
						j++
						switch rest[j] {
						case 'n':
							val.WriteByte('\n')
						default:
							val.WriteByte(rest[j])
						}
						continue
					}
					if rest[j] == '"' {
						break
					}
					val.WriteByte(rest[j])
				}
				if j == len(rest) {
					return nil, fmt.Errorf("line %d: unterminated label value in %q", ln+1, line)
				}
				s.labels[key] = val.String()
				body = rest[j+1:]
				body = strings.TrimPrefix(body, ",")
			}
		} else {
			s.name = series
		}
		if s.name == "" {
			return nil, fmt.Errorf("line %d: empty metric name: %q", ln+1, line)
		}
		for _, c := range s.name {
			if !(c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')) {
				return nil, fmt.Errorf("line %d: bad name char %q in %q", ln+1, c, s.name)
			}
		}
		out = append(out, s)
	}
	return out, nil
}

func find(samples []promSample, name string, labels map[string]string) (promSample, bool) {
	for _, s := range samples {
		if s.name != name || len(s.labels) != len(labels) {
			continue
		}
		ok := true
		for k, v := range labels {
			if s.labels[k] != v {
				ok = false
				break
			}
		}
		if ok {
			return s, true
		}
	}
	return promSample{}, false
}

func testSnapshot() *Snapshot {
	r := NewRegistry()
	r.Counter("lix_test_ops_total").Add(42)
	r.Counter(L("lix_test_shard_ops_total", "shard", "3")).Add(7)
	r.Gauge("lix_test_depth").Set(5)
	s := r.Snapshot()
	// Inject the histogram as a snapshot so the test is identical in
	// both builds (real histograms are compiled out under noobs).
	s.AddHistogram(L("lix_test_latency_ns", "op", "get"), HistSnapshot{
		Count: 6,
		Sum:   300,
		Buckets: []HistBucket{
			{Lo: 4, Hi: 4, Count: 2},
			{Lo: 96, Hi: 127, Count: 4},
		},
	})
	return s
}

func TestWritePrometheus(t *testing.T) {
	var b strings.Builder
	if err := testSnapshot().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	samples, err := parsePromText(b.String())
	if err != nil {
		t.Fatalf("exporter output failed to parse: %v\noutput:\n%s", err, b.String())
	}
	if s, ok := find(samples, "lix_test_ops_total", nil); !ok || s.value != 42 {
		t.Fatalf("lix_test_ops_total missing or wrong: %+v", samples)
	}
	if s, ok := find(samples, "lix_test_shard_ops_total", map[string]string{"shard": "3"}); !ok || s.value != 7 {
		t.Fatalf("labeled counter missing: %+v", samples)
	}
	if s, ok := find(samples, "lix_test_depth", nil); !ok || s.value != 5 {
		t.Fatalf("gauge missing")
	}
	// Histogram: cumulative le buckets, monotone, +Inf == count.
	var les []promSample
	for _, s := range samples {
		if s.name == "lix_test_latency_ns_bucket" {
			if s.labels["op"] != "get" {
				t.Fatalf("bucket lost its base label: %+v", s)
			}
			les = append(les, s)
		}
	}
	if len(les) != 3 { // two non-empty buckets + Inf
		t.Fatalf("want 3 le buckets, got %d", len(les))
	}
	sort.Slice(les, func(i, j int) bool { return les[i].value < les[j].value })
	for i := 1; i < len(les); i++ {
		if les[i].value < les[i-1].value {
			t.Fatalf("cumulative buckets not monotone: %+v", les)
		}
	}
	inf, ok := find(samples, "lix_test_latency_ns_bucket", map[string]string{"op": "get", "le": "+Inf"})
	if !ok || inf.value != 6 {
		t.Fatalf("+Inf bucket missing or wrong: %+v", les)
	}
	if s, ok := find(samples, "lix_test_latency_ns_count", map[string]string{"op": "get"}); !ok || s.value != 6 {
		t.Fatalf("_count missing")
	}
	if s, ok := find(samples, "lix_test_latency_ns_sum", map[string]string{"op": "get"}); !ok || s.value != 300 {
		t.Fatalf("_sum missing")
	}
}

func TestWriteJSON(t *testing.T) {
	var b strings.Builder
	if err := testSnapshot().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var round Snapshot
	if err := json.Unmarshal([]byte(b.String()), &round); err != nil {
		t.Fatalf("JSON round-trip: %v", err)
	}
	if round.Counter("lix_test_ops_total") != 42 {
		t.Fatalf("counter lost in JSON round-trip")
	}
	h := round.Histogram(`lix_test_latency_ns{op="get"}`)
	if h.Count != 6 || len(h.Buckets) != 2 {
		t.Fatalf("histogram lost in JSON round-trip: %+v", h)
	}
}

// TestDebugServer starts the debug listener on an ephemeral port, scrapes
// /metrics and /metrics.json over real HTTP, and asserts the Prometheus
// payload parses.
func TestDebugServer(t *testing.T) {
	srv, err := StartDebugServer("127.0.0.1:0", testSnapshot)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content-type %q", ct)
	}
	samples, err := parsePromText(string(body))
	if err != nil {
		t.Fatalf("/metrics not well-formed: %v", err)
	}
	if _, ok := find(samples, "lix_test_ops_total", nil); !ok {
		t.Fatalf("scraped payload missing counter")
	}

	resp, err = http.Get("http://" + srv.Addr() + "/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	jbody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var snap Snapshot
	if err := json.Unmarshal(jbody, &snap); err != nil {
		t.Fatalf("/metrics.json: %v", err)
	}
	if snap.Counter("lix_test_ops_total") != 42 {
		t.Fatalf("/metrics.json lost counter")
	}
}
