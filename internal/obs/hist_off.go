//go:build noobs

package obs

import "time"

// Histogram is the compiled-out no-op shim: Observe vanishes at the call
// site and Snapshot is always empty.
type Histogram struct{}

// NewHistogram returns the shared no-op histogram.
func NewHistogram() *Histogram { return &noopHist }

var noopHist Histogram

// Observe is a no-op.
func (h *Histogram) Observe(uint64) {}

// ObserveDuration is a no-op.
func (h *Histogram) ObserveDuration(time.Duration) {}

// Snapshot returns an empty view.
func (h *Histogram) Snapshot() HistSnapshot { return HistSnapshot{} }
