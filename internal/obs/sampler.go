package obs

// sampleMul is Fibonacci hashing's 64-bit golden-ratio multiplier: one
// multiply scrambles a key well enough that any fixed slice of the product
// bits selects an unbiased deterministic subset of a diverse key stream.
const sampleMul = 0x9E3779B97F4A7C15

// SampleKey is the zero-shared-state 1-in-64 sampler for per-key hot
// paths: one multiply, one shift, one compare — no loads of shared memory,
// no atomics, nothing for the race detector to see. Deterministic: a given
// key is always (or never) sampled, which keeps repeated probes of a hot
// key from being invisible but means the sample is a fixed 1/64 slice of
// the key space rather than of the call stream.
func SampleKey(key uint64) bool {
	return key*sampleMul>>58 == 0
}

// Sampler is the shared-state deterministic 1-in-N sampler for paths with
// no key to hash (inserts, batches): Tick costs one uncontended atomic add
// on a sharded cell and admits exactly every interval-th tick of that
// cell, so the overall admission rate is 1/interval. The zero value ticks
// every call; create with NewSampler.
type Sampler struct {
	mask  uint64
	cells [counterShards]padCell
}

// NewSampler returns a sampler admitting ~1 in interval ticks; interval is
// rounded up to a power of two (minimum 1).
func NewSampler(interval int) *Sampler {
	n := uint64(1)
	for int(n) < interval {
		n <<= 1
	}
	return &Sampler{mask: n - 1}
}

// Tick counts one event and reports whether it is sampled.
func (s *Sampler) Tick() bool {
	return uint64(s.cells[shardIndex()].v.Add(1))&s.mask == 0
}
