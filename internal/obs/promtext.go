package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format (version 0.0.4). Counters and gauges become single samples;
// histograms become the conventional cumulative-bucket triple
// (`_bucket{le="..."}`, `_sum`, `_count`). Label suffixes embedded in
// metric names (built with L) are split out and merged with the `le`
// label. Series are emitted in sorted name order so output is
// deterministic.
func (s *Snapshot) WritePrometheus(w io.Writer) error {
	names := make([]string, 0, len(s.Counters)+len(s.Gauges)+len(s.Histograms))
	for name := range s.Counters {
		names = append(names, name)
	}
	for name := range s.Gauges {
		names = append(names, name)
	}
	for name := range s.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		if v, ok := s.Counters[name]; ok {
			b.WriteString(name)
			b.WriteByte(' ')
			b.WriteString(strconv.FormatInt(v, 10))
			b.WriteByte('\n')
			continue
		}
		if v, ok := s.Gauges[name]; ok {
			b.WriteString(name)
			b.WriteByte(' ')
			b.WriteString(formatFloat(v))
			b.WriteByte('\n')
			continue
		}
		writePromHistogram(&b, name, s.Histograms[name])
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writePromHistogram emits one histogram as cumulative le-buckets. Only
// boundaries of non-empty buckets are emitted (plus +Inf), which keeps a
// 252-bucket layout from producing 252 lines per series.
func writePromHistogram(b *strings.Builder, name string, h HistSnapshot) {
	base, labels := splitName(name)
	var cum uint64
	for _, bk := range h.Buckets {
		cum += bk.Count
		b.WriteString(base)
		b.WriteString("_bucket{")
		if labels != "" {
			b.WriteString(labels)
			b.WriteByte(',')
		}
		b.WriteString(`le="`)
		b.WriteString(strconv.FormatUint(bk.Hi, 10))
		b.WriteString(`"} `)
		b.WriteString(strconv.FormatUint(cum, 10))
		b.WriteByte('\n')
	}
	b.WriteString(base)
	b.WriteString("_bucket{")
	if labels != "" {
		b.WriteString(labels)
		b.WriteByte(',')
	}
	b.WriteString(`le="+Inf"} `)
	b.WriteString(strconv.FormatUint(h.Count, 10))
	b.WriteByte('\n')
	suffix := func(sfx, val string) {
		b.WriteString(base)
		b.WriteString(sfx)
		if labels != "" {
			b.WriteByte('{')
			b.WriteString(labels)
			b.WriteByte('}')
		}
		b.WriteByte(' ')
		b.WriteString(val)
		b.WriteByte('\n')
	}
	suffix("_sum", formatFloat(h.Sum))
	suffix("_count", strconv.FormatUint(h.Count, 10))
}

// splitName splits a full series name into its base name and the raw label
// body (without braces): `x{a="1"}` -> (`x`, `a="1"`).
func splitName(name string) (base, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, ""
	}
	return name[:i], strings.TrimSuffix(name[i+1:], "}")
}

func formatFloat(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return fmt.Sprintf("%g", v)
}

// WriteJSON renders the snapshot as indented JSON: the three metric maps
// keyed by full series name, histograms with their non-empty buckets.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
