package obs

import (
	"runtime"
	"sync"
	"testing"
)

func TestRegistryHandles(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x_total")
	if c2 := r.Counter("x_total"); c2 != c {
		t.Fatalf("same name returned different counter handles")
	}
	c.Add(5)
	c.Inc()
	if got := c.Load(); got != 6 {
		t.Fatalf("counter = %d, want 6", got)
	}
	g := r.Gauge("x_depth")
	g.Set(7)
	g.Add(-2)
	if got := g.Load(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
	if h2 := r.Histogram("x_ns"); h2 != r.Histogram("x_ns") {
		t.Fatalf("same name returned different histogram handles")
	}
}

func TestRegistrySnapshotAndCollectors(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total").Add(3)
	r.Gauge("b").Set(9)
	r.Histogram("c_ns").Observe(100)
	r.RegisterCollector(func(s *Snapshot) {
		s.AddCounter(L("d_total", "shard", "0"), 11)
		s.SetGauge("e", 2.5)
		s.AddHistogram("c_ns", HistSnapshot{
			Count:   1,
			Sum:     5,
			Buckets: []HistBucket{{Lo: 5, Hi: 5, Count: 1}},
		})
	})
	s := r.Snapshot()
	if s.Counter("a_total") != 3 {
		t.Fatalf("a_total = %d", s.Counter("a_total"))
	}
	if s.Gauge("b") != 9 {
		t.Fatalf("b = %g", s.Gauge("b"))
	}
	if s.Counter(`d_total{shard="0"}`) != 11 {
		t.Fatalf("collector counter missing: %v", s.Counters)
	}
	if s.Gauge("e") != 2.5 {
		t.Fatalf("collector gauge missing")
	}
	h := s.Histogram("c_ns")
	if Enabled {
		if h.Count != 2 {
			t.Fatalf("merged histogram count = %d, want 2", h.Count)
		}
	} else if h.Count != 1 {
		// Registry histograms are no-ops under noobs; only the
		// collector-injected snapshot survives.
		t.Fatalf("noobs histogram count = %d, want 1", h.Count)
	}
	if got := s.Series("d_total"); len(got) != 1 || got[0] != `d_total{shard="0"}` {
		t.Fatalf("Series(d_total) = %v", got)
	}
}

func TestLabelHelper(t *testing.T) {
	if got := L("x_total", "shard", "3"); got != `x_total{shard="3"}` {
		t.Fatalf("L = %q", got)
	}
	if got := L(L("x", "a", "1"), "b", "2"); got != `x{a="1",b="2"}` {
		t.Fatalf("chained L = %q", got)
	}
	if got := L("x", "p", `sp"am\`); got != `x{p="sp\"am\\"}` {
		t.Fatalf("escaped L = %q", got)
	}
}

func TestSampler(t *testing.T) {
	s := NewSampler(64)
	// Each sharded cell admits every 64th of its own ticks; a
	// single-goroutine caller hits one cell, so over N ticks the admit
	// count is N/64 +/- 1.
	admitted := 0
	const n = 64 * 100
	for i := 0; i < n; i++ {
		if s.Tick() {
			admitted++
		}
	}
	if admitted < n/64-1 || admitted > n/64+1 {
		t.Fatalf("admitted %d of %d, want ~%d", admitted, n, n/64)
	}
	// Interval 1 (and the zero value) admits everything.
	every := NewSampler(1)
	for i := 0; i < 10; i++ {
		if !every.Tick() {
			t.Fatalf("interval-1 sampler skipped a tick")
		}
	}
}

func TestSampleKeyRate(t *testing.T) {
	admitted := 0
	const n = 1 << 16
	for k := uint64(0); k < n; k++ {
		if SampleKey(k) {
			admitted++
		}
	}
	// Dense keys through the golden-ratio hash: close to 1/64.
	want := n / 64
	if admitted < want/2 || admitted > want*2 {
		t.Fatalf("SampleKey admitted %d of %d, want ~%d", admitted, n, want)
	}
	if SampleKey(7) != SampleKey(7) {
		t.Fatalf("SampleKey not deterministic")
	}
}

// TestRegistryRace snapshots concurrently with metric writes and handle
// creation under -race.
func TestRegistryRace(t *testing.T) {
	r := NewRegistry()
	r.RegisterCollector(func(s *Snapshot) { s.SetGauge("dyn", 1) })
	var wg sync.WaitGroup
	for w := 0; w < runtime.GOMAXPROCS(0); w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c := r.Counter("races_total")
			h := r.Histogram("race_ns")
			for i := 0; i < 5000; i++ {
				c.Inc()
				h.Observe(uint64(i))
				if i%97 == 0 {
					r.Gauge("g").Set(int64(i))
					_ = r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	s := r.Snapshot()
	if want := int64(runtime.GOMAXPROCS(0) * 5000); s.Counter("races_total") != want {
		t.Fatalf("races_total = %d, want %d", s.Counter("races_total"), want)
	}
}
