//go:build !noobs

package obs

import (
	"sync/atomic"
	"time"
)

// Histogram is a fixed-boundary log-bucketed histogram (see histogram.go
// for the bucket layout). Observe is one atomic add — no locks, no
// allocation — and Snapshot reads the buckets lock-free: concurrent
// observations land in whichever side of the copy they race into, which is
// the usual monotone-counter metrics contract. The zero value is ready to
// use.
type Histogram struct {
	counts [histBuckets]atomic.Uint64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return new(Histogram) }

// Observe records one value: a single atomic add into its bucket.
func (h *Histogram) Observe(v uint64) {
	h.counts[bucketIndex(v)].Add(1)
}

// ObserveDuration records a duration in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.Observe(uint64(d))
}

// Snapshot copies the non-empty buckets into a point-in-time view.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		lo, hi := bucketBounds(i)
		s.Buckets = append(s.Buckets, HistBucket{Lo: lo, Hi: hi, Count: c})
		s.Count += c
		s.Sum += float64(c) * (float64(lo) + float64(hi)) / 2
	}
	return s
}
