// Package bloom implements the standard Bloom filter of §5: a bit array of
// size m and k hash functions, the existence-index baseline and the
// overflow structure inside learned Bloom filters.
//
// The k probe positions are derived with double hashing (Kirsch &
// Mitzenmacher): h_i = h1 + i*h2 mod m, which matches the false-positive
// behaviour of k independent hashes at a fraction of the hashing cost.
package bloom

import (
	"math"

	"learnedindex/internal/hashfn"
)

// Filter is a Bloom filter in one of two layouts:
//
//   - standard (§5): k probe positions scattered across the whole bit
//     array — up to k cache lines touched per query;
//   - register-blocked: the first hash selects ONE 512-bit block (a
//     single cache line) and all k probe bits live inside it, so any
//     query — hit or miss — touches exactly one line. The price is a
//     slightly worse false-positive rate at equal m (per-block load
//     variance), which NewBlocked offsets by spending ~20% more bits.
//
// The blocked layout is what the storage engine uses for per-segment
// miss pruning: a multi-segment Contains probes every segment's filter,
// so the filter walk is one memory touch per segment instead of k.
type Filter struct {
	bits    []uint64
	m       uint64 // number of bits
	k       int    // number of hash functions
	n       int    // inserted elements
	blocked bool   // register-blocked layout
}

// Blocked layout constants: 512-bit (one cache line) blocks, probe bits
// derived from disjoint 9-bit lanes of the second hash — which caps the
// blocked k at 7 (7 lanes × 9 bits = 63 of the 64 hash bits).
const (
	blockBits    = 512
	blockWords   = blockBits / 64
	maxBlockedK  = 7
	blockBitMask = blockBits - 1
)

// OptimalM returns the number of bits needed for n elements at target false
// positive rate p: m = -n·ln(p)/(ln 2)², the classic sizing the paper uses
// for its "1.76GB for one billion records at 1% FPR" arithmetic.
func OptimalM(n int, p float64) uint64 {
	if n <= 0 {
		return 64
	}
	if p <= 0 {
		p = 1e-9
	}
	if p >= 1 {
		return 64
	}
	m := -float64(n) * math.Log(p) / (math.Ln2 * math.Ln2)
	u := uint64(math.Ceil(m))
	if u < 64 {
		u = 64
	}
	return u
}

// OptimalK returns the optimal number of hash functions for m bits and n
// elements: k = (m/n)·ln 2.
func OptimalK(m uint64, n int) int {
	if n <= 0 {
		return 1
	}
	k := int(math.Round(float64(m) / float64(n) * math.Ln2))
	if k < 1 {
		k = 1
	}
	return k
}

// New creates a filter sized for n elements at false-positive rate p.
func New(n int, p float64) *Filter {
	m := OptimalM(n, p)
	return NewWithSize(m, OptimalK(m, n))
}

// NewWithSize creates a standard filter with exactly m bits and k hash
// functions.
func NewWithSize(m uint64, k int) *Filter {
	if m < 64 {
		m = 64
	}
	if k < 1 {
		k = 1
	}
	return &Filter{bits: make([]uint64, (m+63)/64), m: m, k: k}
}

// NewBlocked creates a register-blocked filter sized for n elements at a
// target false-positive rate p: the standard sizing plus ~20% to offset
// the blocked layout's per-block load variance, rounded up to whole
// cache-line blocks, with k capped at the lane limit.
func NewBlocked(n int, p float64) *Filter {
	m := OptimalM(n, p)
	m += m / 5
	m = (m + blockBits - 1) / blockBits * blockBits
	k := OptimalK(m, n)
	if k > maxBlockedK {
		k = maxBlockedK
	}
	return &Filter{bits: make([]uint64, m/64), m: m, k: k, blocked: true}
}

// blockBase derives the block's first word index from a key's first
// hash; the k probe bits each take a disjoint 9-bit lane of the second
// hash, so all k bits — and the one cache line holding them — are fixed
// by two hash evaluations.
func (f *Filter) blockBase(h1 uint64) uint64 {
	return (h1 % (f.m / blockBits)) * blockWords
}

func (f *Filter) addBlocked(h1, h2 uint64) {
	base := f.blockBase(h1)
	for i := 0; i < f.k; i++ {
		p := (h2 >> (9 * uint(i))) & blockBitMask
		f.bits[base+p>>6] |= 1 << (p & 63)
	}
	f.n++
}

func (f *Filter) mayContainBlocked(h1, h2 uint64) bool {
	base := f.blockBase(h1)
	for i := 0; i < f.k; i++ {
		p := (h2 >> (9 * uint(i))) & blockBitMask
		if f.bits[base+p>>6]&(1<<(p&63)) == 0 {
			return false
		}
	}
	return true
}

// Add inserts key.
func (f *Filter) Add(key string) {
	h1 := hashfn.HashString(key, 0x9e3779b97f4a7c15)
	h2 := hashfn.HashString(key, 0xc2b2ae3d27d4eb4f) | 1
	if f.blocked {
		f.addBlocked(h1, h2)
		return
	}
	for i := 0; i < f.k; i++ {
		p := (h1 + uint64(i)*h2) % f.m
		f.bits[p>>6] |= 1 << (p & 63)
	}
	f.n++
}

// MayContain reports whether key may be in the set (false positives
// possible, false negatives impossible).
func (f *Filter) MayContain(key string) bool {
	h1 := hashfn.HashString(key, 0x9e3779b97f4a7c15)
	h2 := hashfn.HashString(key, 0xc2b2ae3d27d4eb4f) | 1
	if f.blocked {
		return f.mayContainBlocked(h1, h2)
	}
	for i := 0; i < f.k; i++ {
		p := (h1 + uint64(i)*h2) % f.m
		if f.bits[p>>6]&(1<<(p&63)) == 0 {
			return false
		}
	}
	return true
}

// AddUint64 inserts an integer key.
func (f *Filter) AddUint64(key uint64) {
	h1 := hashfn.Hash64(key, 0x9e3779b97f4a7c15)
	h2 := hashfn.Hash64(key, 0xc2b2ae3d27d4eb4f) | 1
	if f.blocked {
		f.addBlocked(h1, h2)
		return
	}
	for i := 0; i < f.k; i++ {
		p := (h1 + uint64(i)*h2) % f.m
		f.bits[p>>6] |= 1 << (p & 63)
	}
	f.n++
}

// MayContainUint64 reports whether the integer key may be in the set.
func (f *Filter) MayContainUint64(key uint64) bool {
	h1 := hashfn.Hash64(key, 0x9e3779b97f4a7c15)
	h2 := hashfn.Hash64(key, 0xc2b2ae3d27d4eb4f) | 1
	if f.blocked {
		return f.mayContainBlocked(h1, h2)
	}
	for i := 0; i < f.k; i++ {
		p := (h1 + uint64(i)*h2) % f.m
		if f.bits[p>>6]&(1<<(p&63)) == 0 {
			return false
		}
	}
	return true
}

// Blocked reports whether the filter uses the register-blocked layout.
func (f *Filter) Blocked() bool { return f.blocked }

// SizeBytes returns the bit-array footprint.
func (f *Filter) SizeBytes() int { return len(f.bits) * 8 }

// Bits returns m, the number of bits.
func (f *Filter) Bits() uint64 { return f.m }

// K returns the number of hash functions.
func (f *Filter) K() int { return f.k }

// Count returns the number of inserted elements.
func (f *Filter) Count() int { return f.n }

// EstimatedFPR returns the analytic false-positive rate for the current
// fill: (1 - e^{-kn/m})^k.
func (f *Filter) EstimatedFPR() float64 {
	if f.n == 0 {
		return 0
	}
	return math.Pow(1-math.Exp(-float64(f.k)*float64(f.n)/float64(f.m)), float64(f.k))
}
