// Package bloom implements the standard Bloom filter of §5: a bit array of
// size m and k hash functions, the existence-index baseline and the
// overflow structure inside learned Bloom filters.
//
// The k probe positions are derived with double hashing (Kirsch &
// Mitzenmacher): h_i = h1 + i*h2 mod m, which matches the false-positive
// behaviour of k independent hashes at a fraction of the hashing cost.
package bloom

import (
	"math"

	"learnedindex/internal/hashfn"
)

// Filter is a standard Bloom filter over string keys.
type Filter struct {
	bits []uint64
	m    uint64 // number of bits
	k    int    // number of hash functions
	n    int    // inserted elements
}

// OptimalM returns the number of bits needed for n elements at target false
// positive rate p: m = -n·ln(p)/(ln 2)², the classic sizing the paper uses
// for its "1.76GB for one billion records at 1% FPR" arithmetic.
func OptimalM(n int, p float64) uint64 {
	if n <= 0 {
		return 64
	}
	if p <= 0 {
		p = 1e-9
	}
	if p >= 1 {
		return 64
	}
	m := -float64(n) * math.Log(p) / (math.Ln2 * math.Ln2)
	u := uint64(math.Ceil(m))
	if u < 64 {
		u = 64
	}
	return u
}

// OptimalK returns the optimal number of hash functions for m bits and n
// elements: k = (m/n)·ln 2.
func OptimalK(m uint64, n int) int {
	if n <= 0 {
		return 1
	}
	k := int(math.Round(float64(m) / float64(n) * math.Ln2))
	if k < 1 {
		k = 1
	}
	return k
}

// New creates a filter sized for n elements at false-positive rate p.
func New(n int, p float64) *Filter {
	m := OptimalM(n, p)
	return NewWithSize(m, OptimalK(m, n))
}

// NewWithSize creates a filter with exactly m bits and k hash functions.
func NewWithSize(m uint64, k int) *Filter {
	if m < 64 {
		m = 64
	}
	if k < 1 {
		k = 1
	}
	return &Filter{bits: make([]uint64, (m+63)/64), m: m, k: k}
}

// Add inserts key.
func (f *Filter) Add(key string) {
	h1 := hashfn.HashString(key, 0x9e3779b97f4a7c15)
	h2 := hashfn.HashString(key, 0xc2b2ae3d27d4eb4f) | 1
	for i := 0; i < f.k; i++ {
		p := (h1 + uint64(i)*h2) % f.m
		f.bits[p>>6] |= 1 << (p & 63)
	}
	f.n++
}

// MayContain reports whether key may be in the set (false positives
// possible, false negatives impossible).
func (f *Filter) MayContain(key string) bool {
	h1 := hashfn.HashString(key, 0x9e3779b97f4a7c15)
	h2 := hashfn.HashString(key, 0xc2b2ae3d27d4eb4f) | 1
	for i := 0; i < f.k; i++ {
		p := (h1 + uint64(i)*h2) % f.m
		if f.bits[p>>6]&(1<<(p&63)) == 0 {
			return false
		}
	}
	return true
}

// AddUint64 inserts an integer key.
func (f *Filter) AddUint64(key uint64) {
	h1 := hashfn.Hash64(key, 0x9e3779b97f4a7c15)
	h2 := hashfn.Hash64(key, 0xc2b2ae3d27d4eb4f) | 1
	for i := 0; i < f.k; i++ {
		p := (h1 + uint64(i)*h2) % f.m
		f.bits[p>>6] |= 1 << (p & 63)
	}
	f.n++
}

// MayContainUint64 reports whether the integer key may be in the set.
func (f *Filter) MayContainUint64(key uint64) bool {
	h1 := hashfn.Hash64(key, 0x9e3779b97f4a7c15)
	h2 := hashfn.Hash64(key, 0xc2b2ae3d27d4eb4f) | 1
	for i := 0; i < f.k; i++ {
		p := (h1 + uint64(i)*h2) % f.m
		if f.bits[p>>6]&(1<<(p&63)) == 0 {
			return false
		}
	}
	return true
}

// SizeBytes returns the bit-array footprint.
func (f *Filter) SizeBytes() int { return len(f.bits) * 8 }

// Bits returns m, the number of bits.
func (f *Filter) Bits() uint64 { return f.m }

// K returns the number of hash functions.
func (f *Filter) K() int { return f.k }

// Count returns the number of inserted elements.
func (f *Filter) Count() int { return f.n }

// EstimatedFPR returns the analytic false-positive rate for the current
// fill: (1 - e^{-kn/m})^k.
func (f *Filter) EstimatedFPR() float64 {
	if f.n == 0 {
		return 0
	}
	return math.Pow(1-math.Exp(-float64(f.k)*float64(f.n)/float64(f.m)), float64(f.k))
}
