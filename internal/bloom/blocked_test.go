package bloom

import (
	"math/rand"
	"testing"

	"learnedindex/internal/binenc"
)

// TestBlockedNoFalseNegatives is the filter's one hard guarantee, on the
// blocked layout: every inserted key answers true.
func TestBlockedNoFalseNegatives(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := NewBlocked(50_000, 0.01)
	keys := make([]uint64, 50_000)
	for i := range keys {
		keys[i] = rng.Uint64()
		f.AddUint64(keys[i])
	}
	for _, k := range keys {
		if !f.MayContainUint64(k) {
			t.Fatalf("false negative on %d", k)
		}
	}
	if !f.Blocked() {
		t.Fatal("NewBlocked built a standard filter")
	}
	if f.Bits()%blockBits != 0 {
		t.Fatalf("m=%d not a whole number of blocks", f.Bits())
	}
	if f.K() > maxBlockedK {
		t.Fatalf("k=%d exceeds the blocked lane cap", f.K())
	}
}

// TestBlockedFPRClose checks the measured false-positive rate stays in
// the same regime as the target: blocked layouts trade a little FPR for
// one-cache-line probes, and NewBlocked's +20% sizing must keep the
// degradation within ~2.5x of the target at 1%.
func TestBlockedFPRClose(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const n, target = 100_000, 0.01
	f := NewBlocked(n, target)
	seen := map[uint64]bool{}
	for i := 0; i < n; i++ {
		k := rng.Uint64()
		seen[k] = true
		f.AddUint64(k)
	}
	fp, probes := 0, 0
	for i := 0; i < 200_000; i++ {
		k := rng.Uint64()
		if seen[k] {
			continue
		}
		probes++
		if f.MayContainUint64(k) {
			fp++
		}
	}
	rate := float64(fp) / float64(probes)
	if rate > 2.5*target {
		t.Fatalf("blocked FPR %.4f too far above target %.4f", rate, target)
	}
}

// TestBlockedRoundTrip pins the version-tagged encoding: a blocked filter
// survives encode/decode with identical parameters and membership, and
// the tag leaves legacy (standard) decoding untouched — covered by the
// golden-format test next door.
func TestBlockedRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := NewBlocked(10_000, 0.01)
	keys := make([]uint64, 10_000)
	for i := range keys {
		keys[i] = rng.Uint64()
		f.AddUint64(keys[i])
	}
	f.Add("stringkey") // strings share the blocked layout too
	enc := f.AppendBinary(nil)
	g, err := Decode(binenc.NewReader(enc))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !g.Blocked() || g.Bits() != f.Bits() || g.K() != f.K() || g.Count() != f.Count() {
		t.Fatalf("header mismatch: got (%v,%d,%d,%d) want (%v,%d,%d,%d)",
			g.Blocked(), g.Bits(), g.K(), g.Count(), f.Blocked(), f.Bits(), f.K(), f.Count())
	}
	for _, k := range keys {
		if !g.MayContainUint64(k) {
			t.Fatalf("decoded filter lost member %d", k)
		}
	}
	if !g.MayContain("stringkey") {
		t.Fatal("decoded filter lost string member")
	}
	for i := 0; i < 50_000; i++ {
		k := rng.Uint64()
		if f.MayContainUint64(k) != g.MayContainUint64(k) {
			t.Fatalf("membership diverged on probe %d", k)
		}
	}
}

// TestBlockedDecodeCorrupt rejects blocked encodings that violate the
// layout invariants the probe math indexes by.
func TestBlockedDecodeCorrupt(t *testing.T) {
	// m not a multiple of the block size.
	bad := binenc.AppendUvarint(nil, blockedFormatTag)
	bad = binenc.AppendUvarint(bad, 1000)
	bad = binenc.AppendUvarint(bad, 5)
	bad = binenc.AppendUvarint(bad, 1)
	if _, err := Decode(binenc.NewReader(bad)); err == nil {
		t.Error("non-block-aligned m decoded without error")
	}
	// k beyond the 9-bit-lane cap.
	bad = binenc.AppendUvarint(nil, blockedFormatTag)
	bad = binenc.AppendUvarint(bad, blockBits)
	bad = binenc.AppendUvarint(bad, maxBlockedK+1)
	bad = binenc.AppendUvarint(bad, 1)
	if _, err := Decode(binenc.NewReader(bad)); err == nil {
		t.Error("over-cap k decoded without error")
	}
	// Truncated bit array.
	f := NewBlocked(1000, 0.01)
	f.AddUint64(42)
	enc := f.AppendBinary(nil)
	for _, trunc := range []int{1, 2, len(enc) / 2, len(enc) - 1} {
		if _, err := Decode(binenc.NewReader(enc[:trunc])); err == nil {
			t.Errorf("truncation at %d decoded without error", trunc)
		}
	}
}
