package bloom

import (
	"crypto/sha256"
	"encoding/hex"
	"math/rand"
	"testing"

	"learnedindex/internal/binenc"
)

// goldenFilterHash pins the serialized format of the fixed-seed filter
// below. If an intentional format change lands, re-run with -update-golden
// logic in mind: regenerate by reading the failure message — but remember
// that existing segment files become unreadable, so bump the segment magic
// alongside any change here.
const goldenFilterHash = "e97dadcdf84454cf35ea492011df866c9f17171c2860af97944790886c8ca5b5"

func buildGoldenFilter() *Filter {
	rng := rand.New(rand.NewSource(42))
	f := NewWithSize(1<<12, 5)
	for i := 0; i < 500; i++ {
		f.AddUint64(rng.Uint64())
	}
	for i := 0; i < 100; i++ {
		f.Add(string(rune('a'+i%26)) + "key")
	}
	return f
}

func TestFilterRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := New(10_000, 0.01)
	keys := make([]uint64, 10_000)
	for i := range keys {
		keys[i] = rng.Uint64()
		f.AddUint64(keys[i])
	}
	enc := f.AppendBinary(nil)
	g, err := Decode(binenc.NewReader(enc))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if g.Bits() != f.Bits() || g.K() != f.K() || g.Count() != f.Count() {
		t.Fatalf("header mismatch: got (%d,%d,%d) want (%d,%d,%d)",
			g.Bits(), g.K(), g.Count(), f.Bits(), f.K(), f.Count())
	}
	// Identical membership, positive and probing: the decoded filter must
	// answer exactly like the original on members and arbitrary probes.
	for _, k := range keys {
		if !g.MayContainUint64(k) {
			t.Fatalf("decoded filter lost member %d", k)
		}
	}
	for i := 0; i < 50_000; i++ {
		k := rng.Uint64()
		if f.MayContainUint64(k) != g.MayContainUint64(k) {
			t.Fatalf("membership diverged on probe %d", k)
		}
	}
}

func TestFilterGoldenFormat(t *testing.T) {
	enc := buildGoldenFilter().AppendBinary(nil)
	sum := sha256.Sum256(enc)
	if got := hex.EncodeToString(sum[:]); got != goldenFilterHash {
		t.Fatalf("bloom serialization format drifted:\n got %s\nwant %s\n"+
			"(an intentional change must bump the storage segment magic and this hash)", got, goldenFilterHash)
	}
}

func TestFilterDecodeCorrupt(t *testing.T) {
	enc := buildGoldenFilter().AppendBinary(nil)
	for _, trunc := range []int{0, 1, 2, 5, len(enc) / 2, len(enc) - 1} {
		if _, err := Decode(binenc.NewReader(enc[:trunc])); err == nil {
			t.Errorf("truncation at %d decoded without error", trunc)
		}
	}
	bad := append([]byte(nil), enc...)
	bad[0] = 0 // m = 0 < 64
	if _, err := Decode(binenc.NewReader(bad)); err == nil {
		t.Error("m=0 decoded without error")
	}
	// A near-2^64 m must be rejected before (m+63)/64 wraps to zero words
	// and the filter panics on its first probe.
	huge := binenc.AppendUvarint(nil, ^uint64(0)-10)
	huge = binenc.AppendUvarint(huge, 5)
	huge = binenc.AppendUvarint(huge, 1)
	if f, err := Decode(binenc.NewReader(huge)); err == nil {
		f.MayContainUint64(42) // would panic without the bound
		t.Error("m near 2^64 decoded without error")
	}
}
