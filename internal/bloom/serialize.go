package bloom

import (
	"encoding/binary"

	"learnedindex/internal/binenc"
)

// Filter serialization: header fields (m, k, n) as varints followed by the
// raw bit array, little-endian word by word. Stored per segment in the
// persistent storage engine so a cold open can answer negative lookups
// without touching the key block (§5's existence-index role, applied as
// per-segment read pruning).
//
// Layout versioning is backward-compatible: a legacy (standard-layout)
// filter's first varint is m, which NewWithSize and Decode both pin to
// >= 64 — so the small value blockedFormatTag can never be a legacy m and
// safely marks the register-blocked layout (tag, then m, k, n, words).
// Old segment files keep decoding as standard filters bit-for-bit.

// blockedFormatTag introduces a register-blocked filter encoding.
const blockedFormatTag = 1

// AppendBinary appends the filter's encoding to b.
func (f *Filter) AppendBinary(b []byte) []byte {
	if f.blocked {
		b = binenc.AppendUvarint(b, blockedFormatTag)
	}
	b = binenc.AppendUvarint(b, f.m)
	b = binenc.AppendUvarint(b, uint64(f.k))
	b = binenc.AppendUvarint(b, uint64(f.n))
	for _, w := range f.bits {
		b = binary.LittleEndian.AppendUint64(b, w)
	}
	return b
}

// Decode reads one filter from r, validating that the bit array matches m
// exactly; corrupt input yields an error, never a panic.
func Decode(r *binenc.Reader) (*Filter, error) {
	m := r.Uvarint()
	blocked := false
	if m == blockedFormatTag {
		blocked = true
		m = r.Uvarint()
	}
	k := r.Uvarint()
	n := r.Uvarint()
	if r.Err() != nil {
		return nil, r.Err()
	}
	// NewWithSize clamps m < 64 and k < 1; an encoding violating either, or
	// implying more words than the input holds, is corrupt. The upper
	// bound on m keeps (m+63)/64 from wrapping (a near-2^64 m would yield
	// zero words, and the accepted filter would index past its bit array
	// on the first query).
	if m < 64 || m > 1<<48 || k < 1 || k > 1<<16 || n > 1<<40 {
		return nil, binenc.ErrCorrupt
	}
	// A blocked filter's probe math requires whole cache-line blocks and
	// the 9-bit-lane k cap; anything else would index past the block.
	if blocked && (m%blockBits != 0 || k > maxBlockedK) {
		return nil, binenc.ErrCorrupt
	}
	words := int((m + 63) / 64)
	if r.Remaining() < words*8 {
		return nil, binenc.ErrCorrupt
	}
	f := &Filter{bits: make([]uint64, words), m: m, k: int(k), n: int(n), blocked: blocked}
	for i := range f.bits {
		f.bits[i] = r.U64()
	}
	return f, r.Err()
}
