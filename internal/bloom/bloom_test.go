package bloom

import (
	"fmt"
	"math"
	"testing"

	"learnedindex/internal/data"
)

func TestNoFalseNegatives(t *testing.T) {
	f := New(10_000, 0.01)
	keys := make([]string, 10_000)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%d", i)
		f.Add(keys[i])
	}
	for _, k := range keys {
		if !f.MayContain(k) {
			t.Fatalf("false negative for %q", k)
		}
	}
}

func TestFPRNearTarget(t *testing.T) {
	for _, target := range []float64{0.1, 0.01, 0.001} {
		f := New(20_000, target)
		for i := 0; i < 20_000; i++ {
			f.Add(fmt.Sprintf("member-%d", i))
		}
		fp := 0
		const trials = 100_000
		for i := 0; i < trials; i++ {
			if f.MayContain(fmt.Sprintf("nonmember-%d", i)) {
				fp++
			}
		}
		got := float64(fp) / trials
		if got > target*2.0 {
			t.Fatalf("target FPR %.4f: measured %.4f (too high)", target, got)
		}
	}
}

func TestOptimalM(t *testing.T) {
	// Paper arithmetic: 1B records at 1% FPR ≈ 1.76 GB; at 0.01% ≈ 2.23GB...
	// (§5: the 0.01% figure in the text is a typo'd 0.1%; verify the 1%
	// case which is unambiguous).
	m := OptimalM(1_000_000_000, 0.01)
	gb := float64(m) / 8 / (1 << 30)
	if gb < 1.0 || gb > 1.3 {
		t.Fatalf("1B @ 1%% = %.2f GB of bits, want ~1.12 (the paper's 1.76GB uses a larger per-key budget)", gb)
	}
	// Monotonicity: lower FPR needs more bits.
	if OptimalM(1000, 0.001) <= OptimalM(1000, 0.01) {
		t.Fatal("m should grow as p shrinks")
	}
	if OptimalM(2000, 0.01) <= OptimalM(1000, 0.01) {
		t.Fatal("m should grow with n")
	}
}

func TestOptimalK(t *testing.T) {
	// k = (m/n) ln2; for m/n = 10 bits/key, k ≈ 7.
	if k := OptimalK(10_000, 1000); k != 7 {
		t.Fatalf("k = %d, want 7", k)
	}
	if k := OptimalK(64, 1_000_000); k != 1 {
		t.Fatalf("k floor = %d, want 1", k)
	}
}

func TestUint64Keys(t *testing.T) {
	keys := data.Lognormal(5000, 0, 2, 1_000_000_000, 1)
	f := New(len(keys), 0.01)
	for _, k := range keys {
		f.AddUint64(k)
	}
	for _, k := range keys {
		if !f.MayContainUint64(k) {
			t.Fatalf("false negative for %d", k)
		}
	}
	fp := 0
	missing := data.SampleMissing(keys, 20_000, 2)
	for _, k := range missing {
		if f.MayContainUint64(k) {
			fp++
		}
	}
	if rate := float64(fp) / float64(len(missing)); rate > 0.03 {
		t.Fatalf("uint64 FPR %.4f too high", rate)
	}
}

func TestEstimatedFPR(t *testing.T) {
	f := New(1000, 0.01)
	for i := 0; i < 1000; i++ {
		f.Add(fmt.Sprintf("k%d", i))
	}
	est := f.EstimatedFPR()
	if math.Abs(est-0.01) > 0.005 {
		t.Fatalf("estimated FPR %.4f far from design target 0.01", est)
	}
}

func TestSizeBytes(t *testing.T) {
	f := NewWithSize(1<<20, 7)
	if f.SizeBytes() != (1<<20)/8 {
		t.Fatalf("SizeBytes = %d, want %d", f.SizeBytes(), (1<<20)/8)
	}
	if f.Bits() != 1<<20 || f.K() != 7 {
		t.Fatal("accessors wrong")
	}
}

func TestDegenerateParams(t *testing.T) {
	// Constructors must clamp rather than panic.
	New(0, 0.01).Add("x")
	New(10, 0).Add("x")
	New(10, 1.5).Add("x")
	NewWithSize(0, 0).Add("x")
}

func BenchmarkAdd(b *testing.B) {
	f := New(1_000_000, 0.01)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.AddUint64(uint64(i))
	}
}

func BenchmarkMayContain(b *testing.B) {
	f := New(1_000_000, 0.01)
	for i := 0; i < 1_000_000; i++ {
		f.AddUint64(uint64(i) * 3)
	}
	b.ResetTimer()
	var s int
	for i := 0; i < b.N; i++ {
		if f.MayContainUint64(uint64(i)) {
			s++
		}
	}
	sink = s
}

var sink int
