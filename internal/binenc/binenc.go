// Package binenc is the little-endian binary codec shared by every
// serialized structure in the repo (ml models, RMIs, Bloom filters, segment
// files, WAL records). It is deliberately tiny: varints for counts, zigzag
// varints for signed ints, fixed 8-byte IEEE floats, and length-prefixed
// byte blocks.
//
// Decoding is panic-free by construction: Reader latches the first error
// (truncated input, malformed varint, oversized block) and every subsequent
// read returns a zero value, so decoders can read a whole structure and
// check Err once — corrupt bytes fall out as an error, never a panic. This
// is the property the storage fuzz tests (FuzzSegmentDecode, FuzzWALReplay)
// lean on.
package binenc

import (
	"encoding/binary"
	"errors"
	"math"
)

// ErrCorrupt is the latched decode error for any malformed input.
var ErrCorrupt = errors.New("binenc: corrupt or truncated input")

// AppendUvarint appends v as an unsigned varint.
func AppendUvarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

// AppendVarint appends v as a zigzag varint.
func AppendVarint(b []byte, v int64) []byte {
	return binary.AppendVarint(b, v)
}

// AppendF64 appends f as 8 little-endian IEEE-754 bytes.
func AppendF64(b []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(f))
}

// AppendF64s appends a count-prefixed float64 slice.
func AppendF64s(b []byte, fs []float64) []byte {
	b = AppendUvarint(b, uint64(len(fs)))
	for _, f := range fs {
		b = AppendF64(b, f)
	}
	return b
}

// AppendBytes appends a length-prefixed byte block.
func AppendBytes(b, p []byte) []byte {
	b = AppendUvarint(b, uint64(len(p)))
	return append(b, p...)
}

// Reader decodes a byte slice with error latching: after the first
// malformed read every method returns zero values and Err reports failure.
type Reader struct {
	b   []byte
	off int
	err error
}

// NewReader returns a Reader over b.
func NewReader(b []byte) *Reader { return &Reader{b: b} }

// Err returns the latched decode error, or nil.
func (r *Reader) Err() error { return r.err }

// Remaining returns how many undecoded bytes are left.
func (r *Reader) Remaining() int { return len(r.b) - r.off }

// fail latches the corrupt-input error.
func (r *Reader) fail() {
	if r.err == nil {
		r.err = ErrCorrupt
	}
}

// Uvarint reads an unsigned varint.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.off += n
	return v
}

// Varint reads a zigzag varint.
func (r *Reader) Varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.off += n
	return v
}

// Count reads an unsigned varint and validates it as an element count no
// larger than max and no larger than the remaining bytes divided by
// elemBytes (so a hostile count can never trigger an oversized allocation).
func (r *Reader) Count(max, elemBytes int) int {
	v := r.Uvarint()
	if r.err != nil {
		return 0
	}
	if elemBytes < 1 {
		elemBytes = 1
	}
	if v > uint64(max) || v > uint64(r.Remaining()/elemBytes) {
		r.fail()
		return 0
	}
	return int(v)
}

// F64 reads 8 little-endian bytes as a float64.
func (r *Reader) F64() float64 {
	if r.err != nil {
		return 0
	}
	if r.Remaining() < 8 {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return math.Float64frombits(v)
}

// U64 reads 8 little-endian bytes as a uint64.
func (r *Reader) U64() uint64 {
	if r.err != nil {
		return 0
	}
	if r.Remaining() < 8 {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

// F64s reads a count-prefixed float64 slice (nil when empty).
func (r *Reader) F64s(max int) []float64 {
	n := r.Count(max, 8)
	if r.err != nil || n == 0 {
		return nil
	}
	fs := make([]float64, n)
	for i := range fs {
		fs[i] = r.F64()
	}
	return fs
}

// Take reads exactly n raw bytes (no length prefix), sharing the
// underlying array. Negative n or n beyond the remaining bytes latches
// the corrupt-input error.
func (r *Reader) Take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || n > r.Remaining() {
		r.fail()
		return nil
	}
	p := r.b[r.off : r.off+n]
	r.off += n
	return p
}

// Bytes reads a length-prefixed byte block, sharing the underlying array.
func (r *Reader) Bytes() []byte {
	n := r.Count(len(r.b), 1)
	if r.err != nil {
		return nil
	}
	p := r.b[r.off : r.off+n]
	r.off += n
	return p
}
