// Package lookuptable implements the Figure 5 baseline "Lookup Table w/ AVX
// search": a hierarchical lookup table built by repeatedly promoting every
// 64th key.
//
// Construction follows §3.7.1 exactly: "a 3-stage lookup table, which is
// constructed by taking every 64th key and putting it into an array
// including padding to make it a multiple of 64. Then we repeat that
// process one more time over the array without padding, creating two arrays
// in total. To lookup a key, we use binary search on the top table followed
// by an AVX optimized branch-free scan for the second table and the data
// itself."
//
// The AVX branch-free scan compares a full SIMD register of keys per
// instruction; in stdlib Go we reproduce it as an unrolled, branch-free
// counting scan over the 64-slot block (the count of elements < key is
// accumulated arithmetically, never via early exit), which preserves the
// fixed-work, predictable-access structure that makes the approach fast.
package lookuptable

import "math"

// Table is a 3-stage (top array, second array, data) lookup table with
// 64-way fanout.
type Table struct {
	keys   []uint64 // indexed sorted data
	second []uint64 // every 64th key, padded to a multiple of 64
	top    []uint64 // every 64th key of second (no padding)
	nReal  int      // entries of second before padding
}

const fanout = 64

// New builds the table over sorted keys.
func New(keys []uint64) *Table {
	t := &Table{keys: keys}
	if len(keys) == 0 {
		return t
	}
	n := (len(keys) + fanout - 1) / fanout
	t.nReal = n
	padded := ((n + fanout - 1) / fanout) * fanout
	t.second = make([]uint64, padded)
	for i := 0; i < n; i++ {
		t.second[i] = keys[i*fanout]
	}
	for i := n; i < padded; i++ {
		t.second[i] = math.MaxUint64
	}
	nTop := padded / fanout
	t.top = make([]uint64, nTop)
	for i := 0; i < nTop; i++ {
		t.top[i] = t.second[i*fanout]
	}
	return t
}

// Lookup returns the lower-bound position of key.
func (t *Table) Lookup(key uint64) int {
	if len(t.keys) == 0 {
		return 0
	}
	// Binary search on the top table: last slot with top[s] <= key.
	lo, hi := 0, len(t.top)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if t.top[mid] <= key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	slot := lo - 1
	if slot < 0 {
		slot = 0
	}
	// Branch-free scan of the 64-entry second-level block: count entries
	// strictly below key.
	base := slot * fanout
	cnt := scan64Less(t.second[base:base+fanout], key)
	secondSlot := base + cnt - 1
	if secondSlot < 0 {
		secondSlot = 0
	}
	if secondSlot >= t.nReal {
		secondSlot = t.nReal - 1
	}
	// Branch-free scan of the data block.
	dbase := secondSlot * fanout
	dlen := fanout
	if dbase+dlen > len(t.keys) {
		dlen = len(t.keys) - dbase
	}
	c := scanLess(t.keys[dbase:dbase+dlen], key)
	return dbase + c
}

// Contains reports whether key is present.
func (t *Table) Contains(key uint64) bool {
	p := t.Lookup(key)
	return p < len(t.keys) && t.keys[p] == key
}

// SizeBytes returns the footprint of both table arrays, padding included.
func (t *Table) SizeBytes() int {
	return (len(t.second) + len(t.top)) * 8
}

// scan64Less counts elements < key in a full 64-element block without
// branches, 8 lanes per "instruction" — the scalar transliteration of an
// AVX-512 compare+popcount loop.
func scan64Less(block []uint64, key uint64) int {
	_ = block[63] // bounds-check hoist
	cnt := 0
	for i := 0; i < fanout; i += 8 {
		var c0, c1, c2, c3, c4, c5, c6, c7 int
		if block[i] < key {
			c0 = 1
		}
		if block[i+1] < key {
			c1 = 1
		}
		if block[i+2] < key {
			c2 = 1
		}
		if block[i+3] < key {
			c3 = 1
		}
		if block[i+4] < key {
			c4 = 1
		}
		if block[i+5] < key {
			c5 = 1
		}
		if block[i+6] < key {
			c6 = 1
		}
		if block[i+7] < key {
			c7 = 1
		}
		cnt += c0 + c1 + c2 + c3 + c4 + c5 + c6 + c7
	}
	return cnt
}

// scanLess is scan64Less for partial tail blocks.
func scanLess(block []uint64, key uint64) int {
	cnt := 0
	for _, v := range block {
		var c int
		if v < key {
			c = 1
		}
		cnt += c
	}
	return cnt
}
