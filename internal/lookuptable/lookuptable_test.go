package lookuptable

import (
	"sort"
	"testing"
	"testing/quick"

	"learnedindex/internal/data"
)

func oracle(keys []uint64, k uint64) int {
	return sort.Search(len(keys), func(i int) bool { return keys[i] >= k })
}

func TestLookupMatchesOracle(t *testing.T) {
	keys := data.Lognormal(20_000, 0, 2, 1_000_000_000, 1)
	tbl := New(keys)
	probes := append(data.SampleExisting(keys, 2000, 2), data.SampleMissing(keys, 500, 3)...)
	probes = append(probes, 0, keys[0], keys[0]-1, keys[len(keys)-1], keys[len(keys)-1]+1, ^uint64(0))
	for _, p := range probes {
		want := oracle(keys, p)
		if got := tbl.Lookup(p); got != want {
			t.Fatalf("Lookup(%d) = %d, want %d", p, got, want)
		}
	}
}

func TestPageBoundaryKeys(t *testing.T) {
	// Keys exactly at 64-entry page boundaries exercise the scan carry
	// logic.
	keys := data.Dense(64*65+3, 1000, 2)
	tbl := New(keys)
	for i := 0; i < len(keys); i += 64 {
		k := keys[i]
		for _, probe := range []uint64{k - 1, k, k + 1} {
			want := oracle(keys, probe)
			if got := tbl.Lookup(probe); got != want {
				t.Fatalf("boundary Lookup(%d) = %d, want %d", probe, got, want)
			}
		}
	}
}

func TestNonMultipleOf64(t *testing.T) {
	for _, n := range []int{1, 2, 63, 64, 65, 127, 129, 4095, 4097} {
		keys := data.Dense(n, 5, 3)
		tbl := New(keys)
		probes := []uint64{0, keys[0], keys[n-1], keys[n-1] + 1, keys[n/2], keys[n/2] + 1}
		for _, p := range probes {
			want := oracle(keys, p)
			if got := tbl.Lookup(p); got != want {
				t.Fatalf("n=%d: Lookup(%d) = %d, want %d", n, p, got, want)
			}
		}
	}
}

func TestSizeBytesIncludesPadding(t *testing.T) {
	keys := data.Dense(64*64+1, 0, 1) // 4097 keys -> 65 second entries -> padded to 128
	tbl := New(keys)
	want := (128 + 2) * 8
	if tbl.SizeBytes() != want {
		t.Fatalf("SizeBytes = %d, want %d", tbl.SizeBytes(), want)
	}
}

func TestEmpty(t *testing.T) {
	if New(nil).Lookup(5) != 0 {
		t.Fatal("empty lookup")
	}
}

func TestContains(t *testing.T) {
	keys := data.Uniform(5000, 1<<40, 1)
	tbl := New(keys)
	for _, k := range keys[:500] {
		if !tbl.Contains(k) {
			t.Fatalf("missing %d", k)
		}
	}
	for _, k := range data.SampleMissing(keys, 200, 2) {
		if tbl.Contains(k) {
			t.Fatalf("phantom %d", k)
		}
	}
}

func TestQuick(t *testing.T) {
	f := func(raw []uint64, probe uint64) bool {
		sort.Slice(raw, func(i, j int) bool { return raw[i] < raw[j] })
		keys := raw[:0]
		var prev uint64
		for i, k := range raw {
			if i == 0 || k != prev {
				keys = append(keys, k)
				prev = k
			}
		}
		tbl := New(keys)
		return tbl.Lookup(probe) == oracle(keys, probe)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkLookup(b *testing.B) {
	keys := data.Lognormal(1_000_000, 0, 2, 1_000_000_000, 1)
	tbl := New(keys)
	probes := data.SampleExisting(keys, 1<<16, 2)
	b.ResetTimer()
	var s int
	for i := 0; i < b.N; i++ {
		s += tbl.Lookup(probes[i&(1<<16-1)])
	}
	sink = s
}

var sink int
