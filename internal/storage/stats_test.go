package storage

import (
	"sync"
	"testing"

	"learnedindex/internal/obs"
)

// TestStatsFlushConsistency asserts the Stats read-consistency contract:
// with no compactor, every published segment rides exactly one flush, so a
// Stats racing any number of flushes must never observe a segment before
// the flush that produced it (Segments <= Flushes at every instant). Run
// under -race this also proves Stats itself is data-race-free against the
// write plane.
func TestStatsFlushConsistency(t *testing.T) {
	e, err := Open(t.TempDir(), Options{NoCompactor: true})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	const flushes = 60
	var wg sync.WaitGroup
	wg.Add(1)
	stop := make(chan struct{})
	go func() {
		defer wg.Done()
		defer close(stop)
		key := uint64(0)
		for i := 0; i < flushes; i++ {
			for j := 0; j < 50; j++ {
				key++
				if err := e.Append(key); err != nil {
					t.Error(err)
					return
				}
			}
			if err := e.Flush(); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	checks := 0
	for {
		select {
		case <-stop:
			wg.Wait()
			st := e.Stats()
			if st.Segments != flushes || st.Flushes != flushes {
				t.Fatalf("final Stats: %d segments, %d flushes, want %d/%d",
					st.Segments, st.Flushes, flushes, flushes)
			}
			if checks == 0 {
				t.Fatalf("reader never ran a mid-flush check")
			}
			return
		default:
			st := e.Stats()
			if st.Segments > st.Flushes {
				t.Fatalf("torn Stats: %d segments but only %d flushes", st.Segments, st.Flushes)
			}
			checks++
		}
	}
}

// TestEngineMetrics drives appends, commits, flushes, lookups, and a
// compaction through an engine and asserts the metrics plane saw all of
// it: accounting counters match Stats, the fsync/cohort/flush histograms
// recorded events, and the per-segment Bloom funnel yields an observed
// FPR.
func TestEngineMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	e, err := Open(t.TempDir(), Options{NoCompactor: true, CompactFanout: 2, Reg: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if e.Registry() != reg {
		t.Fatalf("Registry() did not return the supplied registry")
	}

	for f := 0; f < 4; f++ {
		for k := 0; k < 500; k++ {
			if err := e.Append(uint64(f*10000 + k*7)); err != nil {
				t.Fatal(err)
			}
		}
		if err := e.Commit(uint64(f*10000 + 9999)); err != nil {
			t.Fatal(err)
		}
		if err := e.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Compact(); err != nil {
		t.Fatal(err)
	}
	// Drive the Bloom funnel after compaction settles (funnel counts live
	// on the segments, and compaction retires its inputs): hits and
	// (mostly pruned) misses.
	hits, misses := 0, 0
	for k := 0; k < 500; k++ {
		if e.Contains(uint64(k * 7)) {
			hits++
		}
		if e.Contains(uint64(1000000 + k)) {
			misses++
		}
	}
	if hits != 500 || misses != 0 {
		t.Fatalf("contains drive: %d hits, %d false", hits, misses)
	}

	st := e.Stats()
	s := e.Metrics()
	if got := s.Counter("lix_storage_flushes_total"); got != int64(st.Flushes) {
		t.Fatalf("flushes metric %d != Stats %d", got, st.Flushes)
	}
	if got := s.Counter("lix_storage_compactions_total"); got != int64(st.Compactions) || got == 0 {
		t.Fatalf("compactions metric %d (Stats %d)", got, st.Compactions)
	}
	if got := s.Counter("lix_storage_commits_total"); got != int64(st.Commits) || got != 4 {
		t.Fatalf("commits metric %d", got)
	}
	if got := s.Gauge("lix_storage_segments"); got != float64(st.Segments) {
		t.Fatalf("segments gauge %g != Stats %d", got, st.Segments)
	}
	if got := s.Gauge("lix_storage_keys"); got != float64(st.Keys) {
		t.Fatalf("keys gauge %g != Stats %d", got, st.Keys)
	}
	if obs.Enabled {
		if h := s.Histogram("lix_wal_fsync_ns"); h.Count == 0 {
			t.Fatalf("fsync histogram empty after commits and flushes")
		}
		if h := s.Histogram("lix_storage_flush_ns"); h.Count != uint64(st.Flushes) {
			t.Fatalf("flush duration histogram %d entries, want %d", s.Histogram("lix_storage_flush_ns").Count, st.Flushes)
		}
		if h := s.Histogram("lix_wal_cohort_commits"); h.Count == 0 {
			t.Fatalf("cohort histogram empty after commits")
		}
		// Funnel: one segment after full compaction; every probe above
		// passed its fence.
		names := s.Series("lix_segment_bloom_probes_total")
		if len(names) == 0 {
			t.Fatalf("no per-segment funnel series: %v", s.Counters)
		}
		var probes, bpass, bhits int64
		for _, n := range names {
			probes += s.Counter(n)
		}
		for _, n := range s.Series("lix_segment_bloom_pass_total") {
			bpass += s.Counter(n)
		}
		for _, n := range s.Series("lix_segment_bloom_hits_total") {
			bhits += s.Counter(n)
		}
		if probes == 0 || bhits == 0 || bpass < bhits || probes < bpass {
			t.Fatalf("funnel not monotone: probes=%d pass=%d hits=%d", probes, bpass, bhits)
		}
		// Model health: the lookups above sampled 1-in-64 keys; with 2000+
		// served keys probed the observed-error histogram and its trained
		// bound must both be present.
		if g, ok := s.Gauges["lix_storage_trained_err_bound"]; !ok || g < 0 {
			t.Fatalf("trained bound gauge missing")
		}
		if h := s.Histogram("lix_storage_model_err"); h.Count == 0 {
			t.Fatalf("observed model-error histogram empty after 1000 probes")
		}
	}
}
