package storage

import (
	"math/rand"
	"os"
	"slices"
	"testing"

	"learnedindex/internal/data"
	"learnedindex/internal/scan"
	"learnedindex/internal/search"
)

// drainSnapshot merges a snapshot's delta + segment cursors through the
// scan iterator, exactly as the serving layer composes them.
func drainSnapshot(sn *Snapshot, lo, hi uint64) []uint64 {
	it := scan.Get[uint64]()
	if p := sn.Pending(); len(p) > 0 {
		c := new(scan.KeysCursor[uint64])
		c.Reset(p, nil)
		it.Add(c) // newest layer first
	}
	for i := 0; i < sn.NumSegments(); i++ {
		if c := sn.SegmentCursor(i, lo, hi); c != nil {
			it.Add(c)
		}
	}
	it.Start(lo, hi, nil)
	defer it.Close()
	var out []uint64
	for it.Next() {
		out = append(out, it.Key())
	}
	return out
}

// refRange filters a sorted deduplicated union down to [lo, hi).
func refRange(all []uint64, lo, hi uint64) []uint64 {
	s := slices.Clone(all)
	slices.Sort(s)
	s = slices.Compact(s)
	out := s[:0:0]
	for _, k := range s {
		if k >= lo && k < hi {
			out = append(out, k)
		}
	}
	return out
}

// TestSnapshotScanOracle drives the engine through appends, flushes, and
// compactions, checking after every step that a snapshot scan streams
// exactly the sorted deduplicated union of segments + unflushed delta for
// random ranges, and that CountRange agrees with the streamed count.
func TestSnapshotScanOracle(t *testing.T) {
	dir := t.TempDir()
	e := openT(t, dir, Options{CompactFanout: 2, NoCompactor: true})
	defer e.Close()
	rng := rand.New(rand.NewSource(31))
	var all []uint64

	check := func(step string) {
		t.Helper()
		sn := e.AcquireSnapshot()
		defer sn.Release()
		for trial := 0; trial < 5; trial++ {
			lo := rng.Uint64() % 1_200_000
			hi := lo + rng.Uint64()%400_000
			got := drainSnapshot(sn, lo, hi)
			want := refRange(all, lo, hi)
			if !slices.Equal(got, want) {
				t.Fatalf("%s: scan [%d,%d) got %d keys, want %d", step, lo, hi, len(got), len(want))
			}
			if c := sn.CountRange(lo, hi); c != len(want) {
				t.Fatalf("%s: CountRange(%d,%d) = %d, want %d", step, lo, hi, c, len(want))
			}
		}
		// Full-range scan too.
		if got, want := drainSnapshot(sn, 0, ^uint64(0)), refRange(all, 0, ^uint64(0)); !slices.Equal(got, want) {
			t.Fatalf("%s: full scan %d keys, want %d", step, len(got), len(want))
		}
	}

	for round := 0; round < 6; round++ {
		batch := data.Uniform(3_000, 1_000_000, int64(100+round))
		e.Append(batch...)
		all = append(all, batch...)
		check("append")
		if round%2 == 1 {
			if err := e.Flush(); err != nil {
				t.Fatal(err)
			}
			check("flush")
		}
	}
	if err := e.Compact(); err != nil {
		t.Fatal(err)
	}
	check("compact")
}

// TestSnapshotPinsCompactionInputs is the deferred-deletion contract: while
// a scan snapshot is open, compaction swaps the live list but must not
// delete the pinned input files; the last Release sweeps them.
func TestSnapshotPinsCompactionInputs(t *testing.T) {
	dir := t.TempDir()
	e := openT(t, dir, Options{CompactFanout: 2, NoCompactor: true})
	defer e.Close()
	for i := 0; i < 4; i++ {
		e.Append(data.Uniform(2_000, 1_000_000, int64(i+1))...)
		if err := e.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	sn := e.AcquireSnapshot()
	var pinnedPaths []string
	for _, s := range sn.segs {
		pinnedPaths = append(pinnedPaths, s.path)
	}
	if len(pinnedPaths) < 2 {
		t.Fatalf("want >=2 segments before compaction, got %d", len(pinnedPaths))
	}
	if err := e.Compact(); err != nil {
		t.Fatal(err)
	}
	if got := len(*e.segs.Load()); got >= len(pinnedPaths) {
		t.Fatalf("compaction did not shrink the live list: %d -> %d", len(pinnedPaths), got)
	}
	for _, p := range pinnedPaths {
		if _, err := os.Stat(p); err != nil {
			t.Fatalf("pinned segment file %s deleted mid-scan: %v", p, err)
		}
	}
	// The pinned view still serves the pre-compaction state.
	if got, want := drainSnapshot(sn, 0, ^uint64(0)), refRange(e.Keys(), 0, ^uint64(0)); !slices.Equal(got, want) {
		t.Fatalf("pinned scan diverged: %d vs %d keys", len(got), len(want))
	}
	sn.Release()
	deleted := 0
	for _, p := range pinnedPaths {
		if _, err := os.Stat(p); os.IsNotExist(err) {
			deleted++
		}
	}
	if deleted == 0 {
		t.Fatal("release swept no compacted-away files")
	}
}

// TestBlockIteratorAgreesWithEagerDecode walks a real written-and-reopened
// segment lazily and compares every key (plus random seeks) against the
// eagerly decoded array.
func TestBlockIteratorAgreesWithEagerDecode(t *testing.T) {
	dir := t.TempDir()
	e := openT(t, dir, Options{NoCompactor: true})
	keys := data.LognormalPaper(40_000, 17)
	e.Append(keys...)
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	re := openT(t, dir, Options{NoCompactor: true})
	defer re.Close()
	sn := re.AcquireSnapshot()
	defer sn.Release()
	if sn.NumSegments() != 1 {
		t.Fatalf("want 1 segment, got %d", sn.NumSegments())
	}
	seg := sn.segs[0]
	c := getSegmentCursor(seg)
	defer c.Release()
	if !c.Seek(0) {
		t.Fatal("Seek(0) exhausted")
	}
	for i, want := range seg.keys {
		if got := c.Key(); got != want {
			t.Fatalf("lazy[%d] = %d, eager %d", i, got, want)
		}
		c.Next()
	}
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 2_000; trial++ {
		probe := rng.Uint64() % (seg.maxKey() + 1000)
		pos := search.Binary(seg.keys, probe, 0, len(seg.keys))
		ok := c.Seek(probe)
		if ok != (pos < len(seg.keys)) {
			t.Fatalf("Seek(%d) valid=%v, want %v", probe, ok, pos < len(seg.keys))
		}
		if ok && c.Key() != seg.keys[pos] {
			t.Fatalf("Seek(%d) = %d, want %d", probe, c.Key(), seg.keys[pos])
		}
	}
}

// TestCountRangeEngineMidFlushConsistency hammers CountRange while another
// goroutine appends and flushes: every count over the full domain must be
// >= the number of keys whose Append returned before the snapshot was
// taken (monotonic visibility — nothing acked ever vanishes mid-flush).
func TestCountRangeEngineMidFlushConsistency(t *testing.T) {
	dir := t.TempDir()
	e := openT(t, dir, Options{NoCompactor: true})
	defer e.Close()
	const rounds = 30
	const perRound = 500
	done := make(chan struct{})
	go func() {
		defer close(done)
		for r := 0; r < rounds; r++ {
			base := uint64(r*perRound) * 10
			batch := make([]uint64, perRound)
			for i := range batch {
				batch[i] = base + uint64(i)*10
			}
			e.Append(batch...)
			e.Flush()
		}
	}()
	for {
		select {
		case <-done:
			if got, want := e.CountRange(0, ^uint64(0)), rounds*perRound; got != want {
				t.Fatalf("final CountRange = %d, want %d", got, want)
			}
			return
		default:
			c := e.CountRange(0, ^uint64(0))
			if c > rounds*perRound {
				t.Fatalf("CountRange invented keys: %d > %d", c, rounds*perRound)
			}
		}
	}
}
