package storage

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"learnedindex/internal/data"
)

// TestEngineStressWritePath is the -race stress for the concurrent write
// plane: committers (Commit), appenders (Append+Sync), flushers, and
// readers (Contains/Lookup/Len/Stats) all hammer one engine at once.
// Writers own disjoint key ranges so the oracle is exact: after a final
// flush, the engine serves every inserted key, Len equals the distinct
// insert count, and probes from an untouched range miss.
func TestEngineStressWritePath(t *testing.T) {
	dir := t.TempDir()
	e := openT(t, dir, Options{CompactFanout: 3})
	defer e.Close()

	const (
		writers      = 4
		committers   = 4
		keysPerGor   = 400
		writerStride = 1 << 32 // disjoint key ranges per goroutine
	)
	var wg sync.WaitGroup
	var inserted atomic.Int64
	errCh := make(chan error, writers+committers+2)

	// Append+Sync writers: batch appends with explicit durability barriers.
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + g)))
			base := uint64(g) * writerStride
			for i := 0; i < keysPerGor; i += 8 {
				batch := make([]uint64, 0, 8)
				for j := 0; j < 8 && i+j < keysPerGor; j++ {
					batch = append(batch, base+uint64(i+j))
				}
				if err := e.AppendBatch(batch); err != nil {
					errCh <- err
					return
				}
				inserted.Add(int64(len(batch)))
				if rng.Intn(4) == 0 {
					if err := e.Sync(); err != nil {
						errCh <- err
						return
					}
				}
			}
		}(g)
	}
	// Commit writers: the group-commit hot path, one durable call per batch.
	for g := 0; g < committers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			base := uint64(writers+g) * writerStride
			for i := 0; i < keysPerGor; i += 4 {
				batch := make([]uint64, 0, 4)
				for j := 0; j < 4 && i+j < keysPerGor; j++ {
					batch = append(batch, base+uint64(i+j))
				}
				if err := e.Commit(batch...); err != nil {
					errCh <- err
					return
				}
				inserted.Add(int64(len(batch)))
			}
		}(g)
	}
	// A flusher racing the writers (paced: every flush trains a segment
	// and pays fsyncs, so an unthrottled loop would grind the test into
	// compaction churn), and readers racing everything. Both stop after
	// the writers finish, via rwg.
	stop := make(chan struct{})
	var rwg sync.WaitGroup
	rwg.Add(1)
	go func() {
		defer rwg.Done()
		for {
			select {
			case <-stop:
				return
			case <-time.After(20 * time.Millisecond):
			}
			if err := e.Flush(); err != nil {
				errCh <- err
				return
			}
		}
	}()
	for g := 0; g < 2; g++ {
		rwg.Add(1)
		go func(seed int64) {
			defer rwg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := uint64(rng.Intn(writers+committers))*writerStride + uint64(rng.Intn(keysPerGor))
				e.Contains(k)
				e.Lookup(k)
				e.Len()
				e.Stats()
			}
		}(int64(g))
	}

	wg.Wait()
	close(stop)
	rwg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}

	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	total := (writers + committers) * keysPerGor
	if got := int(inserted.Load()); got != total {
		t.Fatalf("writers inserted %d keys, want %d", got, total)
	}
	if e.Len() != total {
		t.Fatalf("Len=%d, want %d", e.Len(), total)
	}
	for g := 0; g < writers+committers; g++ {
		base := uint64(g) * writerStride
		for i := 0; i < keysPerGor; i += 37 {
			if !e.Contains(base + uint64(i)) {
				t.Fatalf("lost key %d from writer %d", base+uint64(i), g)
			}
		}
	}
	for i := 0; i < 500; i++ {
		k := uint64(writers+committers+1)*writerStride + uint64(i)
		if e.Contains(k) {
			t.Fatalf("phantom key %d", k)
		}
	}
	// Group commit must have amortized fsyncs: strictly fewer than one
	// fsync per durable call would require under the old plane (an exact
	// bound is timing-dependent; the hard claim — acked keys survive — is
	// the crash oracle's job).
	st := e.Stats()
	if st.Commits == 0 || st.WALSyncs == 0 {
		t.Fatalf("stats did not record the commit plane: %+v", st)
	}
}

// TestEngineCommitDurabilityContract drives Commit single-threaded and
// checks the basics the oracle relies on: acked keys are pending until
// flush, served after it, and an empty commit acts as a pure barrier.
func TestEngineCommitDurabilityContract(t *testing.T) {
	dir := t.TempDir()
	e := openT(t, dir, Options{NoCompactor: true})
	keys := data.Uniform(2_000, 1_000_000, 77)
	for i := 0; i < len(keys); i += 100 {
		if err := e.CommitBatch(keys[i:min(i+100, len(keys))]); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Commit(); err != nil { // empty: pure durability barrier
		t.Fatal(err)
	}
	if e.PendingLen() != len(keys) {
		t.Fatalf("PendingLen=%d, want %d", e.PendingLen(), len(keys))
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	distinct := map[uint64]bool{}
	for _, k := range keys {
		distinct[k] = true
	}
	if e.Len() != len(distinct) {
		t.Fatalf("Len=%d after flush, want %d distinct", e.Len(), len(distinct))
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen: everything committed+flushed survives.
	re := openT(t, dir, Options{NoCompactor: true})
	defer re.Close()
	for _, k := range keys[:200] {
		if !re.Contains(k) {
			t.Fatalf("committed key %d lost across reopen", k)
		}
	}
}
