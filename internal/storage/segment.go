package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync/atomic"

	"learnedindex/internal/binenc"
	"learnedindex/internal/bloom"
	"learnedindex/internal/core"
	"learnedindex/internal/keycodec"
	"learnedindex/internal/obs"
	"learnedindex/internal/vfs"
)

// Segment files are the immutable sorted runs of the engine. Layout:
//
//	magic "LIXSEG01" (8 bytes)
//	body:
//	  uvarint keyCount (>= 1)
//	  uvarint firstKey, then keyCount-1 uvarint deltas (strictly positive)
//	  length-prefixed serialized core.RMI   (trained over the key block)
//	  length-prefixed serialized bloom.Filter
//	crc32c(body) (4 bytes LE)
//
// Delta-varint coding exploits sortedness (dense runs cost ~1–2 bytes per
// key); the trailing checksum makes any torn or bit-flipped file fail to
// open instead of serving wrong answers. A segment is written once —
// temp file, fsync, rename, directory fsync — and never modified;
// compaction writes a replacement and deletes the inputs.
//
// Filenames are seg-<seqLo>-<seqHi>.seg with 16-hex-digit sequence
// numbers. A flush produces seqLo == seqHi; compaction of a contiguous
// run produces the covering range. Recovery treats a file whose range is
// strictly contained in another's as an obsolete compaction input that
// survived a crash, and deletes it.
//
// Version 2 ("LIXSEG02") is the string-keyed segment of the key codec
// (internal/keycodec). Layout:
//
//	magic "LIXSEG02" (8 bytes)
//	body:
//	  uvarint prefixCount (>= 1)
//	  uvarint firstPrefix, then prefixCount-1 uvarint deltas (positive)
//	  length-prefixed serialized core.RMI     (trained over the prefixes)
//	  length-prefixed serialized bloom.Filter (over the exact string keys)
//	  length-prefixed keycodec.Dict           (suffixes + collision dir)
//	crc32c(body) (4 bytes LE)
//
// The prefix block reuses the uint64 delta-varint coding over the sorted
// *deduplicated* 8-byte prefixes; the dictionary reconstructs the exact
// keys from the prefixes plus per-key length+suffix, so long keys never
// store their first 8 bytes twice. Version tags make the formats
// self-describing: a v1 file decodes under v1 rules forever, and an engine
// opened in the wrong mode rejects the directory instead of misreading it.
var (
	segMagic  = [8]byte{'L', 'I', 'X', 'S', 'E', 'G', '0', '1'}
	segMagic2 = [8]byte{'L', 'I', 'X', 'S', 'E', 'G', '0', '2'}
)

type segment struct {
	seqLo, seqHi uint64
	path         string
	// keys holds the sorted key block: the exact keys of a v1 segment, or
	// the sorted deduplicated prefixes of a v2 (string-keyed) segment.
	keys []uint64
	rmi  *core.RMI
	// plan is rmi's compiled read path, captured when the segment is
	// written or opened so cold-start reads execute the flat plan — the
	// multi-segment read pipeline is fence check → Bloom filter → plan,
	// pruning before any model runs.
	plan   *core.Plan
	filter *bloom.Filter
	// blocks is the lazy-scan directory over the raw delta-varint key
	// block (blockiter.go): range scans decode keys block-by-block from it
	// instead of touching the eagerly decoded array. The raw bytes alias
	// the file image, which is cheap to retain — the key block is the bulk
	// of a segment and costs ~1–2 bytes per key against the 8 the decoded
	// array already holds.
	blocks    *blockIndex
	diskBytes int64

	// String-keyed (v2) segments only: the exact sorted keys and the codec
	// read path over them (prefix plan + suffix dictionary). strs is
	// materialized eagerly at open, like the v1 key array — a string point
	// lookup must not pay a block decode per probe — and blocks stays nil.
	strs   []string
	sindex *core.StringIndex

	// pins counts open scan snapshots holding this segment; zombie marks a
	// compacted-away segment whose file deletion is deferred until the last
	// pin releases. Both are guarded by the engine's segMu (pins is atomic
	// only so Stats-style readers could peek without the lock).
	pins   atomic.Int32
	zombie bool

	// Bloom funnel (internal/obs): fence-passed probes, filter passes, and
	// true hits. pass−hits is the false positives actually paid; the engine
	// collector derives the observed FPR from the three counts. Plain
	// atomics — the engine's hottest counters are global and sharded, but a
	// funnel split per segment already spreads the contention — and the
	// increments compile out under -tags noobs.
	bloomProbes atomic.Uint64
	bloomPass   atomic.Uint64
	bloomHits   atomic.Uint64
}

// name is the segment's metric-label identity: its sequence range, the
// same pair the filename carries.
func (s *segment) name() string {
	return fmt.Sprintf("%04x-%04x", s.seqLo, s.seqHi)
}

func (s *segment) minKey() uint64 { return s.keys[0] }
func (s *segment) maxKey() uint64 { return s.keys[len(s.keys)-1] }

// isString reports the segment's format: v2 segments always hold at least
// one key, so a non-nil strs is the discriminator.
func (s *segment) isString() bool { return s.strs != nil }

func (s *segment) minStr() string { return s.strs[0] }
func (s *segment) maxStr() string { return s.strs[len(s.strs)-1] }

// numKeys returns the segment's exact key count in its native domain.
func (s *segment) numKeys() int {
	if s.isString() {
		return len(s.strs)
	}
	return len(s.keys)
}

func segmentFileName(seqLo, seqHi uint64) string {
	return fmt.Sprintf("seg-%016x-%016x.seg", seqLo, seqHi)
}

// parseSegmentFileName extracts the sequence range, rejecting anything
// that does not match the canonical name.
func parseSegmentFileName(name string) (seqLo, seqHi uint64, ok bool) {
	var lo, hi uint64
	n, err := fmt.Sscanf(name, "seg-%016x-%016x.seg", &lo, &hi)
	if err != nil || n != 2 || lo > hi || name != segmentFileName(lo, hi) {
		return 0, 0, false
	}
	return lo, hi, true
}

// encodeSegment builds the full file image (magic + body + checksum) for
// sorted unique non-empty keys with their trained index and filter, and
// returns the [keyStart, keyEnd) bounds of the delta-varint key block
// within the image so the write path can build the lazy-scan block
// directory over the exact bytes it is about to commit.
func encodeSegment(keys []uint64, rmi *core.RMI, filter *bloom.Filter) (img []byte, keyStart, keyEnd int, err error) {
	body := binenc.AppendUvarint(nil, uint64(len(keys)))
	kStart := len(body)
	body = binenc.AppendUvarint(body, keys[0])
	for i := 1; i < len(keys); i++ {
		body = binenc.AppendUvarint(body, keys[i]-keys[i-1])
	}
	kEnd := len(body)
	rb, err := rmi.AppendBinary(nil)
	if err != nil {
		return nil, 0, 0, err
	}
	body = binenc.AppendBytes(body, rb)
	body = binenc.AppendBytes(body, filter.AppendBinary(nil))

	out := make([]byte, 0, len(segMagic)+len(body)+4)
	out = append(out, segMagic[:]...)
	out = append(out, body...)
	out = binary.LittleEndian.AppendUint32(out, crc32.Checksum(body, crcTable))
	return out, len(segMagic) + kStart, len(segMagic) + kEnd, nil
}

// decodeSegment parses a full file image. All errors are reported, never
// panicked, including on adversarial input: checksum first, then strictly
// validated key deltas, then the model and filter decoders (which bind the
// RMI to the decoded key block and cross-check its key count).
func decodeSegment(data []byte) (keys []uint64, rmi *core.RMI, filter *bloom.Filter, blocks *blockIndex, err error) {
	if len(data) < len(segMagic)+4 || [8]byte(data[:8]) != segMagic {
		return nil, nil, nil, nil, fmt.Errorf("storage: bad segment magic: %w", binenc.ErrCorrupt)
	}
	body := data[len(segMagic) : len(data)-4]
	sum := binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.Checksum(body, crcTable) != sum {
		return nil, nil, nil, nil, fmt.Errorf("storage: segment checksum mismatch: %w", binenc.ErrCorrupt)
	}
	r := binenc.NewReader(body)
	n := r.Count(len(body), 1)
	if r.Err() != nil || n < 1 {
		return nil, nil, nil, nil, binenc.ErrCorrupt
	}
	keyStart := len(body) - r.Remaining()
	keys = make([]uint64, n)
	keys[0] = r.Uvarint()
	for i := 1; i < n; i++ {
		d := r.Uvarint()
		k := keys[i-1] + d
		if d < 1 || k < keys[i-1] { // zero delta or uint64 wrap
			return nil, nil, nil, nil, binenc.ErrCorrupt
		}
		keys[i] = k
	}
	if r.Err() != nil {
		return nil, nil, nil, nil, r.Err()
	}
	keyEnd := len(body) - r.Remaining()
	rmi, err = core.DecodeRMI(r.Bytes(), keys)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	filter, err = bloom.Decode(binenc.NewReader(r.Bytes()))
	if err != nil {
		return nil, nil, nil, nil, err
	}
	if r.Err() != nil {
		return nil, nil, nil, nil, r.Err()
	}
	// Exact decode, like WAL records: trailing bytes mean the file was
	// written by something newer or buggier than this decoder — reject it
	// at open rather than serving it partially.
	if r.Remaining() != 0 {
		return nil, nil, nil, nil, fmt.Errorf("storage: %d trailing bytes after segment body: %w", r.Remaining(), binenc.ErrCorrupt)
	}
	// The lazy-scan directory over the exact key-block bytes: its
	// validating pass mirrors the loop above, so success here is
	// guaranteed for anything the eager decode accepted.
	blocks, err = buildBlockIndex(body[keyStart:keyEnd], n)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	return keys, rmi, filter, blocks, nil
}

// writeSegment trains an RMI and Bloom filter over keys (sorted, unique,
// non-empty), encodes the segment, and commits it to dir crash-safely:
// temp file, fsync, rename to the canonical name, fsync the directory.
func writeSegment(fs vfs.FS, ioc *obs.Counter, dir string, seqLo, seqHi uint64, keys []uint64, cfg core.Config, fpr float64) (*segment, error) {
	rmi := core.New(keys, cfg)
	// Register-blocked filter: a miss probe walking the segment list costs
	// one cache line per segment instead of k scattered touches. Old
	// segments carrying standard-layout filters keep decoding fine.
	filter := bloom.NewBlocked(len(keys), fpr)
	for _, k := range keys {
		filter.AddUint64(k)
	}
	img, keyStart, keyEnd, err := encodeSegment(keys, rmi, filter)
	if err != nil {
		return nil, err
	}
	blocks, err := buildBlockIndex(img[keyStart:keyEnd], len(keys))
	if err != nil {
		return nil, err // unreachable for our own encoding; defensive
	}
	final := filepath.Join(dir, segmentFileName(seqLo, seqHi))
	if err := commitSegmentFile(fs, ioc, dir, final, img); err != nil {
		return nil, err
	}
	return &segment{
		seqLo: seqLo, seqHi: seqHi, path: final,
		keys: keys, rmi: rmi, plan: rmi.Plan(), filter: filter,
		blocks: blocks, diskBytes: int64(len(img)),
	}, nil
}

// commitSegmentFile writes img to final crash-safely: temp file, fsync,
// rename, directory fsync. A failed rename's temp cleanup is best-effort
// (counted in ioc; a leftover temp is swept at the next open).
func commitSegmentFile(fs vfs.FS, ioc *obs.Counter, dir, final string, img []byte) error {
	tmp := final + ".tmp"
	if err := writeFileSync(fs, ioc, tmp, img); err != nil {
		return err
	}
	if err := fs.Rename(tmp, final); err != nil {
		if rerr := fs.Remove(tmp); rerr != nil && ioc != nil {
			ioc.Inc()
		}
		return err
	}
	return fs.SyncDir(dir)
}

// openSegmentFile reads and decodes one committed segment, dispatching on
// the version magic: v1 files decode under the original uint64 rules
// unchanged, v2 files under the codec rules.
func openSegmentFile(fs vfs.FS, path string, seqLo, seqHi uint64) (*segment, error) {
	data, err := fs.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) >= len(segMagic2) && [8]byte(data[:8]) == segMagic2 {
		si, filter, err := decodeStringSegment(data)
		if err != nil {
			return nil, fmt.Errorf("storage: segment %s: %w", filepath.Base(path), err)
		}
		return &segment{
			seqLo: seqLo, seqHi: seqHi, path: path,
			keys: si.Prefixes(), rmi: si.RMI(), plan: si.RMI().Plan(), filter: filter,
			strs: si.Strings(), sindex: si, diskBytes: int64(len(data)),
		}, nil
	}
	keys, rmi, filter, blocks, err := decodeSegment(data)
	if err != nil {
		return nil, fmt.Errorf("storage: segment %s: %w", filepath.Base(path), err)
	}
	return &segment{
		seqLo: seqLo, seqHi: seqHi, path: path,
		keys: keys, rmi: rmi, plan: rmi.Plan(), filter: filter,
		blocks: blocks, diskBytes: int64(len(data)),
	}, nil
}

// encodeStringSegment builds the v2 file image for a codec index over
// sorted unique non-empty string keys plus a Bloom filter over those keys.
func encodeStringSegment(si *core.StringIndex, filter *bloom.Filter) ([]byte, error) {
	prefixes := si.Prefixes()
	body := binenc.AppendUvarint(nil, uint64(len(prefixes)))
	body = binenc.AppendUvarint(body, prefixes[0])
	for i := 1; i < len(prefixes); i++ {
		body = binenc.AppendUvarint(body, prefixes[i]-prefixes[i-1])
	}
	rb, err := si.RMI().AppendBinary(nil)
	if err != nil {
		return nil, err
	}
	body = binenc.AppendBytes(body, rb)
	body = binenc.AppendBytes(body, filter.AppendBinary(nil))
	body = binenc.AppendBytes(body, si.Dict().AppendBinary(nil))

	out := make([]byte, 0, len(segMagic2)+len(body)+4)
	out = append(out, segMagic2[:]...)
	out = append(out, body...)
	out = binary.LittleEndian.AppendUint32(out, crc32.Checksum(body, crcTable))
	return out, nil
}

// decodeStringSegment parses a v2 file image, mirroring decodeSegment's
// guarantees: errors, never panics, on adversarial input; checksum first;
// strictly validated prefix deltas; exact decode with trailing bytes
// rejected; the dictionary decoder cross-checks every reconstructed key's
// prefix and ordering.
func decodeStringSegment(data []byte) (si *core.StringIndex, filter *bloom.Filter, err error) {
	if len(data) < len(segMagic2)+4 || [8]byte(data[:8]) != segMagic2 {
		return nil, nil, fmt.Errorf("storage: bad segment magic: %w", binenc.ErrCorrupt)
	}
	body := data[len(segMagic2) : len(data)-4]
	sum := binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.Checksum(body, crcTable) != sum {
		return nil, nil, fmt.Errorf("storage: segment checksum mismatch: %w", binenc.ErrCorrupt)
	}
	r := binenc.NewReader(body)
	n := r.Count(len(body), 1)
	if r.Err() != nil || n < 1 {
		return nil, nil, binenc.ErrCorrupt
	}
	prefixes := make([]uint64, n)
	prefixes[0] = r.Uvarint()
	for i := 1; i < n; i++ {
		d := r.Uvarint()
		k := prefixes[i-1] + d
		if d < 1 || k < prefixes[i-1] {
			return nil, nil, binenc.ErrCorrupt
		}
		prefixes[i] = k
	}
	if r.Err() != nil {
		return nil, nil, r.Err()
	}
	rmi, err := core.DecodeRMI(r.Bytes(), prefixes)
	if err != nil {
		return nil, nil, err
	}
	filter, err = bloom.Decode(binenc.NewReader(r.Bytes()))
	if err != nil {
		return nil, nil, err
	}
	dict, err := keycodec.DecodeDict(binenc.NewReader(r.Bytes()), prefixes)
	if err != nil {
		return nil, nil, err
	}
	if r.Err() != nil {
		return nil, nil, r.Err()
	}
	if r.Remaining() != 0 {
		return nil, nil, fmt.Errorf("storage: %d trailing bytes after segment body: %w", r.Remaining(), binenc.ErrCorrupt)
	}
	return core.AssembleStringIndex(rmi, dict), filter, nil
}

// writeStringSegment is writeSegment for string keys (sorted, unique,
// non-empty): derive the codec pair, train the prefix RMI, build a Bloom
// filter over the exact keys, and commit the v2 image crash-safely. The
// write path assembles the index the same way decode does (no StringRMI
// tie-break training) so a segment reads identically before and after a
// restart.
func writeStringSegment(fs vfs.FS, ioc *obs.Counter, dir string, seqLo, seqHi uint64, keys []string, cfg core.Config, fpr float64) (*segment, error) {
	prefixes, dict := keycodec.BuildDict(keys)
	rmi := core.New(prefixes, cfg)
	si := core.AssembleStringIndex(rmi, dict)
	filter := bloom.NewBlocked(len(keys), fpr)
	for _, k := range keys {
		filter.Add(k)
	}
	img, err := encodeStringSegment(si, filter)
	if err != nil {
		return nil, err
	}
	final := filepath.Join(dir, segmentFileName(seqLo, seqHi))
	if err := commitSegmentFile(fs, ioc, dir, final, img); err != nil {
		return nil, err
	}
	return &segment{
		seqLo: seqLo, seqHi: seqHi, path: final,
		keys: prefixes, rmi: rmi, plan: rmi.Plan(), filter: filter,
		strs: keys, sindex: si, diskBytes: int64(len(img)),
	}, nil
}

// writeFileSync writes data to path and fsyncs before closing. A close
// failure after a failed write or sync is counted in ioc (the primary
// error propagates; the descriptor leak does not, but must not stay
// invisible).
func writeFileSync(fs vfs.FS, ioc *obs.Counter, path string, data []byte) error {
	f, err := fs.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		if cerr := f.Close(); cerr != nil && ioc != nil {
			ioc.Inc()
		}
		return err
	}
	if err := f.Sync(); err != nil {
		if cerr := f.Close(); cerr != nil && ioc != nil {
			ioc.Inc()
		}
		return err
	}
	return f.Close()
}
