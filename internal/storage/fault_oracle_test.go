package storage

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"learnedindex/internal/vfs"
)

// oracleSchedule is the fault mix every oracle trial runs under: every
// injectable class is live at a low rate so trials exercise fsync loss,
// ENOSPC, torn writes, failed renames/removes/opens, and read errors in
// one schedule. ReadCorrupt stays zero in the main schedule on purpose —
// silently rotting the only durable copy of an acked key is genuine data
// loss, not a recoverable fault, so the checksum/quarantine plane owns
// that class (see degraded_test.go). The oracle still exercises it: after
// the clean reopen, a second ReadCorrupt-only schedule rots every segment
// read and Scrub must detect and durably heal all of them (see the scrub
// phase in runFaultOracleTrial).
func oracleSchedule(seed int64) vfs.FaultConfig {
	return vfs.FaultConfig{
		Seed:        seed,
		SyncErr:     0.02,
		SyncDirErr:  0.02,
		WriteENOSPC: 0.01,
		TornWrite:   0.02,
		RenameErr:   0.02,
		RemoveErr:   0.03,
		OpenErr:     0.01,
		ReadErr:     0.01,
	}
}

// TestFaultScheduleOracle is the randomized fault-schedule oracle: drive
// append/commit/sync/flush/compact against an engine whose every file
// operation runs through a seeded vfs.FaultFS, tracking which keys the
// engine durably ACKED (Commit returned nil, or Sync/Flush covered an
// earlier Append). Any error the engine surfaces must be scheduled
// (vfs.ErrInjected) or a lawful consequence of one (ErrPoisoned,
// ErrDegraded) — never an unscheduled failure, never a panic. After a
// clean reopen the engine must serve every acked key, serve nothing it
// was never given, and report an exact Len. Both key modes run the same
// oracle over ≥50 seeds each.
func TestFaultScheduleOracle(t *testing.T) {
	const seeds = 50
	for _, mode := range []struct {
		name string
		str  bool
	}{{"uint64", false}, {"string", true}} {
		mode := mode
		t.Run(mode.name, func(t *testing.T) {
			for s := 0; s < seeds; s++ {
				seed := int64(7000 + s)
				t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
					t.Parallel()
					runFaultOracleTrial(t, seed, mode.str)
				})
			}
		})
	}
}

func runFaultOracleTrial(t *testing.T, seed int64, strMode bool) {
	dir := t.TempDir()
	ffs := vfs.NewFaultFS(vfs.OS, oracleSchedule(seed))
	ffs.Disarm() // clean open: the schedule starts with the first write below
	// NoCompactor keeps the trial single-goroutine, so the seeded fault
	// stream maps onto operations deterministically (Compact runs inline).
	e, err := Open(dir, Options{NoCompactor: true, CompactFanout: 3, StringKeys: strMode, FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	ffs.Arm()

	// str is an order-irrelevant injective uint64→string encoding so one
	// oracle body covers both key modes.
	str := func(k uint64) string { return fmt.Sprintf("k%016x", k) }
	doAppend := func(b []uint64) error {
		if !strMode {
			return e.AppendBatch(b)
		}
		s := make([]string, len(b))
		for i, k := range b {
			s[i] = str(k)
		}
		return e.AppendStringBatch(s)
	}
	doCommit := func(b []uint64) error {
		if !strMode {
			return e.CommitBatch(b)
		}
		s := make([]string, len(b))
		for i, k := range b {
			s[i] = str(k)
		}
		return e.CommitStringBatch(s)
	}
	contains := func(eng *Engine, k uint64) bool {
		if strMode {
			return eng.ContainsString(str(k))
		}
		return eng.Contains(k)
	}

	// An error is lawful iff it was scheduled by the FaultFS or is the
	// engine's sticky consequence of an earlier scheduled fault.
	scheduled := func(err error) bool {
		return errors.Is(err, vfs.ErrInjected) ||
			errors.Is(err, ErrPoisoned) || errors.Is(err, ErrDegraded)
	}
	requireScheduled := func(op string, err error) {
		t.Helper()
		if !scheduled(err) {
			t.Fatalf("%s: unscheduled error %v", op, err)
		}
	}

	rng := rand.New(rand.NewSource(seed))
	acked := map[uint64]bool{}     // durably acknowledged — must survive
	attempted := map[uint64]bool{} // every key ever handed to the engine
	var unsynced []uint64          // appended, not yet covered by an ack

	batch := func() []uint64 {
		n := 1 + rng.Intn(40)
		b := make([]uint64, n)
		for i := range b {
			b[i] = uint64(rng.Int63n(1_000_000_000))
			attempted[b[i]] = true
		}
		return b
	}
	ack := func(keys []uint64) {
		for _, k := range keys {
			acked[k] = true
		}
	}

	steps := 30 + rng.Intn(30)
	for i := 0; i < steps; i++ {
		switch rng.Intn(10) {
		case 0, 1, 2, 3: // Append: not durable until a Sync/Flush ack
			b := batch()
			if err := doAppend(b); err != nil {
				requireScheduled("append", err)
			} else {
				unsynced = append(unsynced, b...)
			}
		case 4, 5, 6: // Commit: durable on nil return
			b := batch()
			if err := doCommit(b); err != nil {
				requireScheduled("commit", err)
			} else {
				ack(b)
			}
		case 7: // Sync: acks everything appended so far
			if err := e.Sync(); err != nil {
				requireScheduled("sync", err)
			} else {
				ack(unsynced)
				unsynced = unsynced[:0]
			}
		case 8: // Flush: segment durability for the whole pending set
			if err := e.Flush(); err != nil {
				requireScheduled("flush", err)
			} else {
				ack(unsynced)
				unsynced = unsynced[:0]
			}
		case 9:
			if err := e.Compact(); err != nil {
				requireScheduled("compact", err)
			}
		}
	}

	// Close may fail mid-flush under the schedule; only unscheduled
	// failures are bugs. A successful close flushes the pending set, which
	// may durably land appended-but-unacked keys — allowed (they are in
	// attempted, just never required).
	if err := e.Close(); err != nil {
		requireScheduled("close", err)
	}

	// Clean reopen: recovery must reconstruct a state serving
	// acked ⊆ served ⊆ attempted with an exact Len. The reopen goes through
	// a second FaultFS carrying a ReadCorrupt-only schedule — disarmed for
	// now, so open and the recovery assertions below see honest bytes; the
	// scrub phase at the end arms it.
	ffs.Disarm()
	rffs := vfs.NewFaultFS(vfs.OS, vfs.FaultConfig{Seed: seed, ReadCorrupt: 1})
	rffs.Disarm()
	re, err := Open(dir, Options{NoCompactor: true, StringKeys: strMode, FS: rffs})
	if err != nil {
		t.Fatalf("reopen after fault schedule failed: %v", err)
	}
	defer re.Close()
	if h, herr := re.Health(); h != HealthOK || herr != nil {
		t.Fatalf("reopened engine health = %v (%v), want ok", h, herr)
	}
	for k := range acked {
		if !contains(re, k) {
			t.Fatalf("acked key %d lost across the fault schedule", k)
		}
	}
	var served int
	if strMode {
		for _, s := range re.KeysStrings() {
			var k uint64
			if n, err := fmt.Sscanf(s, "k%016x", &k); n != 1 || err != nil || !attempted[k] {
				t.Fatalf("reopen serves invented key %q", s)
			}
			served++
		}
	} else {
		for _, k := range re.Keys() {
			if !attempted[k] {
				t.Fatalf("reopen serves invented key %d", k)
			}
			served++
		}
	}
	if re.Len() != served {
		t.Fatalf("Len=%d but %d keys enumerated", re.Len(), served)
	}
	// Probes from a disjoint domain must miss.
	for i := 0; i < 200; i++ {
		k := 2_000_000_000 + uint64(rng.Int63n(1_000_000_000))
		if contains(re, k) {
			t.Fatalf("phantom key %d after recovery", k)
		}
	}

	// Scrub phase: arm ReadCorrupt=1 so every segment file re-read comes
	// back with one bit flipped. Scrub must flag every live segment as rotted
	// and heal each from its in-memory image; the heal writes go through the
	// same FaultFS but only reads are scheduled, so they land honestly.
	segs := re.Stats().Segments
	rffs.Arm()
	checked, healed, serr := re.Scrub()
	if serr != nil {
		t.Fatalf("scrub under ReadCorrupt returned error: %v", serr)
	}
	if checked != segs || healed != checked {
		t.Fatalf("scrub under ReadCorrupt: checked=%d healed=%d, want both %d", checked, healed, segs)
	}
	if segs > 0 && rffs.Injected() == 0 {
		t.Fatal("ReadCorrupt schedule never fired during scrub")
	}
	// Heals must be durable: with corruption disarmed, a second pass reads
	// the rewritten files clean and heals nothing.
	rffs.Disarm()
	if checked, healed, serr = re.Scrub(); serr != nil || checked != segs || healed != 0 {
		t.Fatalf("post-heal scrub: checked=%d healed=%d err=%v, want %d/0/nil", checked, healed, serr, segs)
	}
	// And the healed engine still serves the durability contract.
	for k := range acked {
		if !contains(re, k) {
			t.Fatalf("acked key %d lost after scrub heal", k)
		}
	}
}
