package storage

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"learnedindex/internal/vfs"
)

// TestCrashRecoveryRandomTruncation is the randomized durability oracle,
// in the set-semantics style of core's delta_oracle_test: drive the engine
// with batches of fresh, duplicate, and re-inserted keys, interleave Sync
// and Flush at random, then simulate a crash by copying the directory with
// the WAL truncated at a random byte offset at or past the last fsync
// (bytes before the fsync ack cannot be lost; everything after it is fair
// game for tearing). Reopening the copy must serve exactly the oracle set:
// every flushed key, plus every key whose WAL record survived the
// truncation whole — acked keys are never lost, torn records never
// surface, and Len is exact.
func TestCrashRecoveryRandomTruncation(t *testing.T) {
	for trial := 0; trial < 12; trial++ {
		trial := trial
		t.Run("", func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(1000 + int64(trial)))
			dir := t.TempDir()
			// Compaction runs synchronously (below) so the dir copy is not
			// racing a background merge; its crash-safety is covered by
			// TestEngineCrashedCompactionRecovery.
			e, err := Open(dir, Options{NoCompactor: true, CompactFanout: 3})
			if err != nil {
				t.Fatal(err)
			}

			flushed := map[uint64]bool{} // keys durable in segments
			synced := map[uint64]bool{}  // keys acked by Sync (superset incl. flushed)
			var syncedOff int64          // WAL offset covered by the last fsync ack
			// walRecords tracks (endOffset, keys) per record since the last
			// flush — the oracle for which tail keys survive a truncation.
			type rec struct {
				end  int64
				keys []uint64
			}
			var walRecords []rec

			steps := 30 + rng.Intn(40)
			var inserted []uint64
			for i := 0; i < steps; i++ {
				n := 1 + rng.Intn(50)
				batch := make([]uint64, 0, n)
				for j := 0; j < n; j++ {
					switch rng.Intn(4) {
					case 0: // duplicate of an earlier insert
						if len(inserted) > 0 {
							batch = append(batch, inserted[rng.Intn(len(inserted))])
							continue
						}
						fallthrough
					default: // fresh key, bounded domain so overlaps happen too
						batch = append(batch, uint64(rng.Int63n(1_000_000_000)))
					}
				}
				inserted = append(inserted, batch...)
				if err := e.Append(batch...); err != nil {
					t.Fatal(err)
				}
				walRecords = append(walRecords, rec{end: e.wal.size, keys: batch})

				switch rng.Intn(5) {
				case 0, 1: // Sync: ack everything appended so far
					if err := e.Sync(); err != nil {
						t.Fatal(err)
					}
					syncedOff = e.wal.size
					for _, r := range walRecords {
						for _, k := range r.keys {
							synced[k] = true
						}
					}
				case 2: // Flush: everything becomes segment-durable, WAL resets
					if err := e.Flush(); err != nil {
						t.Fatal(err)
					}
					if rng.Intn(3) == 0 {
						if err := e.Compact(); err != nil {
							t.Fatal(err)
						}
					}
					for _, r := range walRecords {
						for _, k := range r.keys {
							flushed[k] = true
							synced[k] = true
						}
					}
					walRecords = walRecords[:0]
					syncedOff = 0
				}
			}
			// Final ack so the trial always has a non-trivial acked set.
			if err := e.Sync(); err != nil {
				t.Fatal(err)
			}
			syncedOff = e.wal.size
			for _, r := range walRecords {
				for _, k := range r.keys {
					synced[k] = true
				}
			}
			// A little unsynced tail beyond the last ack, eligible to tear.
			tail := make([]uint64, 3+rng.Intn(20))
			for j := range tail {
				tail[j] = 2_000_000_000 + uint64(rng.Int63n(1_000_000))
			}
			if err := e.Append(tail...); err != nil {
				t.Fatal(err)
			}
			walRecords = append(walRecords, rec{end: e.wal.size, keys: tail})
			// Push the tail to the OS (no fsync): a crash may keep any prefix.
			if err := e.wal.w.Flush(); err != nil {
				t.Fatal(err)
			}
			walSize := e.wal.size

			// Crash copy: segments verbatim, WAL truncated at a random point
			// in [syncedOff, walSize].
			crashDir := t.TempDir()
			ents, err := os.ReadDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			for _, ent := range ents {
				src := filepath.Join(dir, ent.Name())
				data, err := os.ReadFile(src)
				if err != nil {
					t.Fatal(err)
				}
				// Single-threaded run: exactly one (active) log file exists.
				if _, isWAL := parseWALFileName(ent.Name()); isWAL {
					trunc := syncedOff + rng.Int63n(walSize-syncedOff+1)
					data = data[:trunc]
				}
				if err := os.WriteFile(filepath.Join(crashDir, ent.Name()), data, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			_, crashWALs, _, err := scanWALFiles(vfs.OS, crashDir, false)
			if err != nil || len(crashWALs) != 1 {
				t.Fatalf("crash dir WALs: %v (err %v)", crashWALs, err)
			}
			crashWAL, err := os.ReadFile(crashWALs[0])
			if err != nil {
				t.Fatal(err)
			}
			trunc := int64(len(crashWAL))
			if trunc < syncedOff {
				t.Fatalf("truncation %d cut below the fsync ack %d", trunc, syncedOff)
			}
			e.Close()

			// Oracle: flushed keys plus every record fully within the cut.
			expected := map[uint64]bool{}
			for k := range flushed {
				expected[k] = true
			}
			for _, r := range walRecords {
				if r.end <= trunc {
					for _, k := range r.keys {
						expected[k] = true
					}
				}
			}

			re, err := Open(crashDir, Options{NoCompactor: true})
			if err != nil {
				t.Fatalf("recovery failed: %v", err)
			}
			defer re.Close()

			// Every acked key is served.
			for k := range synced {
				if !re.Contains(k) {
					t.Fatalf("acked key %d lost after crash recovery", k)
				}
			}
			// Exactly the oracle set is served: Len is exact, membership
			// matches, and no torn-record key was invented.
			if re.Len() != len(expected) {
				t.Fatalf("Len=%d after recovery, oracle %d", re.Len(), len(expected))
			}
			for _, k := range re.Keys() {
				if !expected[k] {
					t.Fatalf("recovery invented key %d", k)
				}
			}
			for k := range expected {
				if !re.Contains(k) {
					t.Fatalf("recoverable key %d not served", k)
				}
			}
			// Probes from a disjoint domain must miss.
			for i := 0; i < 500; i++ {
				k := 3_000_000_000 + uint64(rng.Int63n(1_000_000_000))
				if re.Contains(k) {
					t.Fatalf("phantom key %d", k)
				}
			}
		})
	}
}

// TestCrashRecoveryRandomTruncationStrings is the string-mode twin of the
// oracle above: the same drive/truncate/reopen protocol over wals-*.log
// files and version-2 segments. Key identity, record framing, and the
// fsync ack line all run through the codec path, so the oracle holds the
// string engine to the identical durability contract: acked keys never
// lost, torn records never surface, Len exact.
func TestCrashRecoveryRandomTruncationStrings(t *testing.T) {
	for trial := 0; trial < 10; trial++ {
		trial := trial
		t.Run("", func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(4000 + int64(trial)))
			dir := t.TempDir()
			e, err := Open(dir, Options{NoCompactor: true, CompactFanout: 3, StringKeys: true})
			if err != nil {
				t.Fatal(err)
			}
			key := func(n int64) string { return fmt.Sprintf("k%010d", n) }

			flushed := map[string]bool{}
			synced := map[string]bool{}
			var syncedOff int64
			type rec struct {
				end  int64
				keys []string
			}
			var walRecords []rec

			steps := 25 + rng.Intn(30)
			var inserted []string
			for i := 0; i < steps; i++ {
				n := 1 + rng.Intn(40)
				batch := make([]string, 0, n)
				for j := 0; j < n; j++ {
					switch rng.Intn(4) {
					case 0:
						if len(inserted) > 0 {
							batch = append(batch, inserted[rng.Intn(len(inserted))])
							continue
						}
						fallthrough
					default:
						batch = append(batch, key(rng.Int63n(1_000_000_000)))
					}
				}
				inserted = append(inserted, batch...)
				if err := e.AppendString(batch...); err != nil {
					t.Fatal(err)
				}
				walRecords = append(walRecords, rec{end: e.wal.size, keys: batch})

				switch rng.Intn(5) {
				case 0, 1:
					if err := e.Sync(); err != nil {
						t.Fatal(err)
					}
					syncedOff = e.wal.size
					for _, r := range walRecords {
						for _, k := range r.keys {
							synced[k] = true
						}
					}
				case 2:
					if err := e.Flush(); err != nil {
						t.Fatal(err)
					}
					if rng.Intn(3) == 0 {
						if err := e.Compact(); err != nil {
							t.Fatal(err)
						}
					}
					for _, r := range walRecords {
						for _, k := range r.keys {
							flushed[k] = true
							synced[k] = true
						}
					}
					walRecords = walRecords[:0]
					syncedOff = 0
				}
			}
			if err := e.Sync(); err != nil {
				t.Fatal(err)
			}
			syncedOff = e.wal.size
			for _, r := range walRecords {
				for _, k := range r.keys {
					synced[k] = true
				}
			}
			// Unsynced tail from a disjoint key domain, eligible to tear.
			tail := make([]string, 3+rng.Intn(15))
			for j := range tail {
				tail[j] = key(2_000_000_000 + rng.Int63n(1_000_000))
			}
			if err := e.AppendString(tail...); err != nil {
				t.Fatal(err)
			}
			walRecords = append(walRecords, rec{end: e.wal.size, keys: tail})
			if err := e.wal.w.Flush(); err != nil {
				t.Fatal(err)
			}
			walSize := e.wal.size

			crashDir := t.TempDir()
			ents, err := os.ReadDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			for _, ent := range ents {
				data, err := os.ReadFile(filepath.Join(dir, ent.Name()))
				if err != nil {
					t.Fatal(err)
				}
				if _, isWAL := parseWALStrFileName(ent.Name()); isWAL {
					trunc := syncedOff + rng.Int63n(walSize-syncedOff+1)
					data = data[:trunc]
				}
				if err := os.WriteFile(filepath.Join(crashDir, ent.Name()), data, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			_, crashWALs, _, err := scanWALFiles(vfs.OS, crashDir, true)
			if err != nil || len(crashWALs) != 1 {
				t.Fatalf("crash dir WALs: %v (err %v)", crashWALs, err)
			}
			crashWAL, err := os.ReadFile(crashWALs[0])
			if err != nil {
				t.Fatal(err)
			}
			trunc := int64(len(crashWAL))
			if trunc < syncedOff {
				t.Fatalf("truncation %d cut below the fsync ack %d", trunc, syncedOff)
			}
			e.Close()

			expected := map[string]bool{}
			for k := range flushed {
				expected[k] = true
			}
			for _, r := range walRecords {
				if r.end <= trunc {
					for _, k := range r.keys {
						expected[k] = true
					}
				}
			}

			re, err := Open(crashDir, Options{NoCompactor: true, StringKeys: true})
			if err != nil {
				t.Fatalf("recovery failed: %v", err)
			}
			defer re.Close()

			for k := range synced {
				if !re.ContainsString(k) {
					t.Fatalf("acked key %q lost after crash recovery", k)
				}
			}
			if re.Len() != len(expected) {
				t.Fatalf("Len=%d after recovery, oracle %d", re.Len(), len(expected))
			}
			for _, k := range re.KeysStrings() {
				if !expected[k] {
					t.Fatalf("recovery invented key %q", k)
				}
			}
			for k := range expected {
				if !re.ContainsString(k) {
					t.Fatalf("recoverable key %q not served", k)
				}
			}
			for i := 0; i < 300; i++ {
				k := key(3_000_000_000 + rng.Int63n(1_000_000_000))
				if re.ContainsString(k) {
					t.Fatalf("phantom key %q", k)
				}
			}
		})
	}
}
