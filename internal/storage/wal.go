package storage

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"sync"

	"learnedindex/internal/binenc"
	"learnedindex/internal/slicepool"
	"learnedindex/internal/vfs"
)

// Write-ahead log. Every Append is one framed record:
//
//	[payloadLen uint32 LE][crc32c(payload) uint32 LE][payload]
//	payload = uvarint keyCount, then keyCount uvarint keys
//
// Durability contract: Append is buffered; only Sync makes previously
// appended records crash-safe (flush + fsync). Concurrent committers are
// group-committed: a whole cohort's keys are encoded as one frame and
// covered by one fsync (see the Engine's commit plane). Recovery scans records
// front to back, stops at the first frame whose length, checksum, or
// payload fails validation, and truncates everything after it — a torn
// tail (the bytes past the last fsync that partially reached disk) is cut
// off without surfacing any invented key, while every record fully on
// disk is replayed.
//
// Logs rotate rather than truncate: files are named wal-<seq>.log, and a
// flush freezes the active log (fsync), starts a fresh one, and deletes
// the frozen file only after its contents are committed to a segment.
// Keys therefore always live in at least one durable place, and the
// engine's write mutex is never held across segment training. Recovery
// replays every wal-*.log in sequence order.
const (
	// maxWALRecord bounds a single record's payload; a length prefix beyond
	// it is treated as a torn/corrupt frame rather than an allocation.
	maxWALRecord = 1 << 26
	walHeaderLen = 8
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

func walFileName(seq uint64) string { return fmt.Sprintf("wal-%016x.log", seq) }

// walStrFileName names a string-keyed engine's logs. The distinct prefix is
// the mode tag: records of the two key kinds are not self-describing, so
// the filename keeps a uint64-mode Open from ever replaying string frames
// (and vice versa) — a mode mismatch is an error at Open, not a
// misdecoded key.
func walStrFileName(seq uint64) string { return fmt.Sprintf("wals-%016x.log", seq) }

// parseWALFileName extracts the sequence number, rejecting anything that
// does not match the canonical name.
func parseWALFileName(name string) (seq uint64, ok bool) {
	n, err := fmt.Sscanf(name, "wal-%016x.log", &seq)
	if err != nil || n != 1 || name != walFileName(seq) {
		return 0, false
	}
	return seq, true
}

// parseWALStrFileName is parseWALFileName for string-keyed logs.
func parseWALStrFileName(name string) (seq uint64, ok bool) {
	n, err := fmt.Sscanf(name, "wals-%016x.log", &seq)
	if err != nil || n != 1 || name != walStrFileName(seq) {
		return 0, false
	}
	return seq, true
}

// wal is one open log file. Appends and buffer flushes are serialized by
// the Engine's write mutex; fsync and close additionally coordinate
// through fsyncMu so a group-commit leader's fsync — which runs *off* the
// engine mutex — can never race the file's close. A sync on a closed wal
// is a no-op by design: the only closers are Flush (which fsyncs the
// frozen log before rotating past it) and Engine.Close, so a closed wal's
// bytes are already durable or the engine has latched an error.
type wal struct {
	f    vfs.File
	w    *bufio.Writer
	path string
	size int64 // logical end of the last appended record (incl. buffered)

	fsyncMu sync.Mutex
	closed  bool
}

// newWAL creates a fresh, empty log at path on the given filesystem.
func newWAL(fs vfs.FS, path string) (*wal, error) {
	f, err := fs.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	return &wal{f: f, w: bufio.NewWriter(f), path: path}, nil
}

// replayWAL scans data for intact records and returns the decoded keys
// plus the byte offset of the end of the last intact record — the
// truncation point for everything after it. It never panics on arbitrary
// input and never returns a key from a frame that fails validation.
func replayWAL(data []byte) (keys []uint64, good int64) {
	off := 0
	for {
		if len(data)-off < walHeaderLen {
			return keys, int64(off)
		}
		plen := int(binary.LittleEndian.Uint32(data[off:]))
		sum := binary.LittleEndian.Uint32(data[off+4:])
		if plen > maxWALRecord || len(data)-off-walHeaderLen < plen {
			return keys, int64(off)
		}
		payload := data[off+walHeaderLen : off+walHeaderLen+plen]
		if crc32.Checksum(payload, crcTable) != sum {
			return keys, int64(off)
		}
		r := binenc.NewReader(payload)
		n := r.Count(plen, 1)
		recKeys := make([]uint64, 0, n)
		for i := 0; i < n; i++ {
			recKeys = append(recKeys, r.Uvarint())
		}
		// A checksummed record must decode exactly; leftovers or a decode
		// error mean the frame was written by something else — stop here.
		if r.Err() != nil || r.Remaining() != 0 {
			return keys, int64(off)
		}
		keys = append(keys, recKeys...)
		off += walHeaderLen + plen
	}
}

// walBufPool recycles record encode buffers so the append hot path is
// allocation-free under sustained ingest — a full varint-encoded record is
// built in a pooled scratch and memcpy'd into the write buffer.
var walBufPool slicepool.Pool[byte]

// append frames keys as one record into the write buffer.
func (w *wal) append(keys []uint64) error {
	return w.appendBatches([][]uint64{keys})
}

// appendBatches frames all batches as ONE record — the group-commit frame:
// a whole cohort of committers shares a single header, checksum, and
// (later) fsync. The caller keeps batches non-empty and the total key
// count within maxAppendChunk.
func (w *wal) appendBatches(batches [][]uint64) error {
	total := 0
	for _, b := range batches {
		total += len(b)
	}
	payload := walBufPool.Get()
	payload = binenc.AppendUvarint(payload, uint64(total))
	for _, b := range batches {
		for _, k := range b {
			payload = binenc.AppendUvarint(payload, k)
		}
	}
	err := w.writeFrame(payload)
	walBufPool.Put(payload)
	return err
}

// appendStrings frames string keys as one record. String payloads carry
// each key length-prefixed:
//
//	payload = uvarint keyCount, then keyCount × (uvarint len, len bytes)
//
// and live only in wals-*.log files (see walStrFileName), so the two
// payload grammars never meet the wrong decoder.
func (w *wal) appendStrings(keys []string) error {
	return w.appendStringBatches([][]string{keys})
}

// appendStringBatches is appendBatches for string keys: the whole cohort
// shares one frame, checksum, and fsync. The caller keeps batches
// non-empty and the total encoded size within maxWALRecord.
func (w *wal) appendStringBatches(batches [][]string) error {
	total := 0
	for _, b := range batches {
		total += len(b)
	}
	payload := walBufPool.Get()
	payload = binenc.AppendUvarint(payload, uint64(total))
	for _, b := range batches {
		for _, k := range b {
			payload = binenc.AppendUvarint(payload, uint64(len(k)))
			payload = append(payload, k...)
		}
	}
	err := w.writeFrame(payload)
	walBufPool.Put(payload)
	return err
}

// replayWALStrings is replayWAL for string-keyed logs: intact records
// decode to their keys, the first invalid frame truncates the tail, and
// arbitrary input never panics or surfaces a partially decoded frame.
func replayWALStrings(data []byte) (keys []string, good int64) {
	off := 0
	for {
		if len(data)-off < walHeaderLen {
			return keys, int64(off)
		}
		plen := int(binary.LittleEndian.Uint32(data[off:]))
		sum := binary.LittleEndian.Uint32(data[off+4:])
		if plen > maxWALRecord || len(data)-off-walHeaderLen < plen {
			return keys, int64(off)
		}
		payload := data[off+walHeaderLen : off+walHeaderLen+plen]
		if crc32.Checksum(payload, crcTable) != sum {
			return keys, int64(off)
		}
		r := binenc.NewReader(payload)
		n := r.Count(plen, 1)
		recKeys := make([]string, 0, n)
		for i := 0; i < n; i++ {
			l := r.Uvarint()
			if r.Err() != nil || l > uint64(r.Remaining()) {
				break
			}
			recKeys = append(recKeys, string(r.Take(int(l))))
		}
		if r.Err() != nil || r.Remaining() != 0 || len(recKeys) != n {
			return keys, int64(off)
		}
		keys = append(keys, recKeys...)
		off += walHeaderLen + plen
	}
}

// writeFrame checksums payload and writes the framed record into the
// write buffer.
func (w *wal) writeFrame(payload []byte) error {
	if len(payload) > maxWALRecord {
		return fmt.Errorf("storage: WAL record of %d bytes exceeds limit", len(payload))
	}
	var hdr [walHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(payload, crcTable))
	if _, err := w.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.w.Write(payload); err != nil {
		return err
	}
	w.size += int64(walHeaderLen + len(payload))
	return nil
}

// sync makes every appended record durable: buffer flush plus fsync. The
// caller must hold the engine write mutex (the buffer is not
// goroutine-safe); the fsync itself goes through the close guard.
func (w *wal) sync() error {
	if err := w.w.Flush(); err != nil {
		return err
	}
	return w.fsync()
}

// fsync flushes OS-buffered bytes to stable storage. Safe to call off the
// engine mutex (group-commit leaders do); on an already-closed wal it is
// a no-op — see the struct comment for why that is sound.
func (w *wal) fsync() error {
	w.fsyncMu.Lock()
	defer w.fsyncMu.Unlock()
	if w.closed {
		return nil
	}
	return w.f.Sync()
}

// close flushes and closes the file without fsync (callers sync first
// when they need durability). The close guard waits out any in-flight
// leader fsync so the descriptor is never pulled from under one.
func (w *wal) close() error {
	ferr := w.w.Flush()
	w.fsyncMu.Lock()
	w.closed = true
	cerr := w.f.Close()
	w.fsyncMu.Unlock()
	if ferr != nil {
		return ferr
	}
	return cerr
}
