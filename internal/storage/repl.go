package storage

import "slices"

// Replication export plane.
//
// The WAL is already a replication log: every durable mutation is a framed,
// checksummed record covered by a commit-plane fsync. This file exports that
// stream without adding a second log. Frames are captured at encode time
// (under mu, exactly where the WAL writes them), promoted to a durable tail
// when the covering fsync lands, and trimmed once a published segment serves
// their keys. A shipper (internal/repl) installs a sink to receive the
// durable stream and calls ReplSnapshot for cold-start catch-up.
//
// Invariant the plane maintains: at every instant, the engine's durable key
// set equals (keys in published segments) ∪ (keys in replTail frames). That
// is what makes ReplSnapshot loss-free and lets followers resume at the
// returned sequence.

// ReplFrame is one durably fsynced WAL frame exported for replication.
// Exactly one of Keys/Strs is populated, per the engine's key mode. Seq is
// the frame's position in the replication stream: contiguous from 1,
// assigned at encode time, scoped to this engine process (a reopened engine
// restarts at 1 — followers detect the restart via the primary's epoch and
// re-snapshot). Frames are immutable once promoted; receivers may retain
// them without copying.
type ReplFrame struct {
	Seq  uint64
	Keys []uint64
	Strs []string
}

// ReplSink receives newly durable frames in sequence order. It is invoked
// with the engine's write mutex held, immediately after the fsync that made
// the frames durable: implementations must be fast, must never block, and
// must never call back into the engine — hand the frames to another
// goroutine (they are immutable and safe to retain).
type ReplSink func(frames []ReplFrame)

// SetReplSink installs sink as the engine's replication export. Install it
// before the first write for a gapless stream: keys already durable but not
// yet flushed when the sink is installed reach followers only with the next
// segment publication (ReplSnapshot covers everything after that point).
// Passing nil detaches the sink and stops frame capture.
func (e *Engine) SetReplSink(sink ReplSink) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.replSink = sink
}

// StringKeys reports which key mode the engine was opened in.
func (e *Engine) StringKeys() bool { return e.opts.StringKeys }

// ReplDurableSeq returns the highest frame sequence covered by a completed
// fsync — the durable horizon follower acks are measured against.
func (e *Engine) ReplDurableSeq() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.replDurable
}

// replRecordLocked captures a just-encoded WAL frame, assigning it the next
// stream sequence. Called with mu held at every site that writes a WAL
// frame; takes ownership of the slices (callers clone when the memory
// aliases caller-owned data). No-op until a sink is installed.
func (e *Engine) replRecordLocked(keys []uint64, strs []string) {
	if e.replSink == nil {
		return
	}
	e.replNext++
	e.replPending = append(e.replPending, ReplFrame{Seq: e.replNext, Keys: keys, Strs: strs})
}

// replPromoteLocked moves encoded frames with Seq <= covered to the durable
// tail and hands the batch to the sink. Called with mu held immediately
// after a successful commit-plane fsync; covered is the highest stream
// sequence whose bytes that fsync actually pushed to disk, captured (with
// mu held) before the leader dropped the lock for the disk wait. The bound
// matters: appends keep encoding frames while the fsync is in flight, and
// those frames are NOT durable yet — promoting them would ship keys to
// followers that a primary crash could still lose. They stay pending for
// the next fsync. Frames of a failed fsync are never promoted: the engine
// poisons and the stream ends at the last durable frame.
func (e *Engine) replPromoteLocked(covered uint64) {
	if e.replSink == nil || len(e.replPending) == 0 {
		return
	}
	n := 0
	for n < len(e.replPending) && e.replPending[n].Seq <= covered {
		n++
	}
	if n == 0 {
		return
	}
	var frames []ReplFrame
	if n == len(e.replPending) {
		frames = e.replPending
		e.replPending = nil
	} else {
		frames = append(frames, e.replPending[:n]...)
		e.replPending = append(e.replPending[:0], e.replPending[n:]...)
	}
	e.replTail = append(e.replTail, frames...)
	e.replDurable = frames[len(frames)-1].Seq
	e.replSink(frames)
}

// replTrimLocked drops durable frames with Seq <= trimTo from the tail:
// their keys are now served by a published segment, so snapshots no longer
// need the frames. Called with mu held after a flush publishes (trimTo is
// the last sequence encoded into the frozen log, captured at freeze time);
// never called on a failed flush — a degraded engine keeps its tail so
// ReplSnapshot stays loss-free.
func (e *Engine) replTrimLocked(trimTo uint64) {
	i := 0
	for i < len(e.replTail) && e.replTail[i].Seq <= trimTo {
		i++
	}
	if i > 0 {
		e.replTail = append(e.replTail[:0], e.replTail[i:]...)
	}
}

// ReplSnapshot captures a loss-free image of the engine's durable uint64
// key set for follower cold-start: every key in published segments plus
// every key in durable-but-unflushed frames, sorted and deduplicated. The
// returned seq is the durable horizon the image covers — a follower that
// applies the keys may resume streaming at seq+1. The image can include
// keys from frames newer than seq (a flush publishing concurrently);
// re-applied frames deduplicate on the follower, so over-inclusion is safe.
// Never includes appended-but-unsynced keys: those are not durable and must
// not reach a follower before their fsync.
func (e *Engine) ReplSnapshot() (seq uint64, keys []uint64) {
	if e.opts.StringKeys {
		panic("storage: ReplSnapshot on a string-keyed engine")
	}
	// Durable tail first, segments second — the same capture order as scan
	// snapshots: a frame trimmed between the two loads has already published
	// its keys into the segment list we read next, so nothing is lost.
	e.mu.Lock()
	seq = e.replDurable
	var tail []uint64
	for _, f := range e.replTail {
		tail = append(tail, f.Keys...)
	}
	e.mu.Unlock()
	keys = append(e.Keys(), tail...)
	slices.Sort(keys)
	keys = slices.Compact(keys)
	return seq, keys
}

// ReplSnapshotStrings is ReplSnapshot for the string key mode.
func (e *Engine) ReplSnapshotStrings() (seq uint64, keys []string) {
	if !e.opts.StringKeys {
		panic("storage: ReplSnapshotStrings on a uint64-keyed engine")
	}
	e.mu.Lock()
	seq = e.replDurable
	var tail []string
	for _, f := range e.replTail {
		tail = append(tail, f.Strs...)
	}
	e.mu.Unlock()
	keys = append(e.KeysStrings(), tail...)
	slices.Sort(keys)
	keys = slices.Compact(keys)
	return seq, keys
}
