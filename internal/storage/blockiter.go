package storage

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"

	"learnedindex/internal/binenc"
)

// scanBlockKeys is the lazy-decode granularity of a segment scan: the
// delta-varint key block is decoded scanBlockKeys keys at a time from the
// retained raw bytes, so a narrow range scan touches only the blocks its
// range overlaps instead of re-materializing the whole segment. 512 keys
// keep a decoded block (4 KiB) inside L1 while amortizing the per-block
// directory lookup over enough varint decodes to make it free.
const scanBlockKeys = 512

// blockIndex is a segment's sparse directory into its raw delta-varint key
// block: for every scanBlockKeys-th key it records the absolute key value
// and the byte offset where the *following* delta starts, which is exactly
// the state a varint decoder needs to start mid-stream. Built once at
// segment write/open by a validating pass (buildBlockIndex), after which
// block decodes are panic-free by construction.
type blockIndex struct {
	raw   []byte   // the key block: uvarint firstKey, then n-1 uvarint deltas
	n     int      // total key count
	first []uint64 // first[b] = key[b*scanBlockKeys]
	off   []int32  // off[b] = offset in raw of the delta for key b*scanBlockKeys+1
}

func (bi *blockIndex) numBlocks() int {
	return (bi.n + scanBlockKeys - 1) / scanBlockKeys
}

// buildBlockIndex walks the raw key block once, validating it exactly like
// the eager segment decoder (well-formed varints, strictly positive deltas,
// no uint64 wrap, no trailing bytes) while recording the block directory.
// It is the single implementation both the write path and the open path
// share, and the one the block-iterator fuzz target drives with arbitrary
// bytes — it must error, never panic.
func buildBlockIndex(raw []byte, n int) (*blockIndex, error) {
	if n < 1 {
		return nil, fmt.Errorf("storage: block index over %d keys: %w", n, binenc.ErrCorrupt)
	}
	if len(raw) > math.MaxInt32 {
		return nil, fmt.Errorf("storage: key block too large for block directory: %w", binenc.ErrCorrupt)
	}
	bi := &blockIndex{raw: raw, n: n}
	nb := bi.numBlocks()
	bi.first = make([]uint64, 0, nb)
	bi.off = make([]int32, 0, nb)

	k, m := binary.Uvarint(raw)
	if m <= 0 {
		return nil, binenc.ErrCorrupt
	}
	off := m
	bi.first = append(bi.first, k)
	bi.off = append(bi.off, int32(off))
	for i := 1; i < n; i++ {
		d, m := binary.Uvarint(raw[off:])
		if m <= 0 {
			return nil, binenc.ErrCorrupt
		}
		off += m
		next := k + d
		if d < 1 || next < k { // zero delta or uint64 wrap
			return nil, binenc.ErrCorrupt
		}
		k = next
		if i%scanBlockKeys == 0 {
			bi.first = append(bi.first, k)
			bi.off = append(bi.off, int32(off))
		}
	}
	if off != len(raw) {
		return nil, fmt.Errorf("storage: %d trailing key-block bytes: %w", len(raw)-off, binenc.ErrCorrupt)
	}
	return bi, nil
}

// decodeBlock materializes block b into dst (reusing its capacity) and
// returns it. Only valid on an index returned by buildBlockIndex, whose
// validation makes the mid-stream varint decode infallible.
func (bi *blockIndex) decodeBlock(b int, dst []uint64) []uint64 {
	end := (b + 1) * scanBlockKeys
	if end > bi.n {
		end = bi.n
	}
	count := end - b*scanBlockKeys
	k := bi.first[b]
	dst = append(dst[:0], k)
	off := int(bi.off[b])
	for i := 1; i < count; i++ {
		d, m := binary.Uvarint(bi.raw[off:])
		off += m
		k += d
		dst = append(dst, k)
	}
	return dst
}

// SegmentCursor streams one segment's keys for the scan subsystem
// (satisfies internal/scan.Cursor): Seek enters at the position the
// segment's compiled plan predicts-and-corrects for the sought key — one
// model inference instead of a binary search — and iteration decodes the
// delta-varint key block lazily, one scanBlockKeys block at a time, from
// the block directory. Obtain one from Snapshot.SegmentCursor; Release
// recycles it (called by the scan iterator's Close).
type SegmentCursor struct {
	seg *segment
	buf []uint64 // decoded current block, cap scanBlockKeys (retained across pool cycles)
	blk int
	i   int
}

var segCursorPool = sync.Pool{New: func() any { return new(SegmentCursor) }}

func getSegmentCursor(seg *segment) *SegmentCursor {
	c := segCursorPool.Get().(*SegmentCursor)
	c.seg = seg
	return c
}

// Seek positions at the first key >= key via the segment plan's exact
// lower bound, decoding only the block that position lands in.
func (c *SegmentCursor) Seek(key uint64) bool {
	bi := c.seg.blocks
	pos := c.seg.plan.Lookup(key)
	if pos >= bi.n {
		return false
	}
	c.blk = pos / scanBlockKeys
	c.buf = bi.decodeBlock(c.blk, c.buf)
	c.i = pos % scanBlockKeys
	return true
}

// Next advances to the following key, decoding the next block on demand.
func (c *SegmentCursor) Next() bool {
	c.i++
	if c.i < len(c.buf) {
		return true
	}
	c.blk++
	if c.blk >= c.seg.blocks.numBlocks() {
		return false
	}
	c.buf = c.seg.blocks.decodeBlock(c.blk, c.buf)
	c.i = 0
	return true
}

// Key returns the current key.
func (c *SegmentCursor) Key() uint64 { return c.buf[c.i] }

// Release drops the segment reference (keeping the block buffer's capacity)
// and recycles the cursor.
func (c *SegmentCursor) Release() {
	c.seg = nil
	segCursorPool.Put(c)
}
