// Package storage is the persistent learned-segment storage engine: the
// durability layer under the serving stack. It pairs the paper's learned
// structures with an LSM-shaped disk layout —
//
//   - a write-ahead log with length+checksum framing and a synchronous
//     Sync acknowledgement (wal.go);
//   - immutable sorted segment files, each carrying a delta-varint key
//     block plus the serialized RMI (§3) trained over it and a serialized
//     Bloom filter (§5) for negative-lookup pruning (segment.go), so a
//     cold open deserializes models instead of retraining them;
//   - crash recovery that replays the intact WAL tail over the newest
//     segments, truncates torn records, and garbage-collects segment
//     files orphaned by a crashed compaction;
//   - background size-tiered compaction that merges contiguous runs of
//     similar-sized segments oldest-first and deletes the inputs.
//
// # Consistency and durability model
//
// Append buffers keys in the WAL and an in-memory pending list; Sync makes
// every prior Append crash-durable (fsync ack); Commit does both in one
// group-committed call — concurrent committers form a cohort whose keys
// are encoded as a single WAL frame and covered by a single fsync, so
// synced-insert throughput scales with the committer count instead of
// paying one disk flush each. Keys become *served*
// (visible to Contains/Lookup/Len) at Flush, which trains a segment over
// the novel pending keys and truncates the WAL. After a crash, recovery
// re-serves exactly the keys that were durable: all flushed segments plus
// every intact WAL record. Because Flush drops pending keys already
// present in older segments, live segments always hold disjoint key sets,
// which is what makes Len and global lower-bound Lookup exact sums.
//
// Reads (Contains, Lookup, LookupBatchSorted, Len) are lock-free against
// an atomically published segment list; writes (Append, Sync, Flush) are
// serialized by an internal mutex and may be called concurrently with
// reads and with background compaction. I/O errors latch: once a write
// fails, the error is sticky and returned by every subsequent
// Append/Sync/Flush/Close so an ack can never be trusted past a failure.
package storage

import (
	"fmt"
	"log"
	"math/bits"
	"path/filepath"
	"runtime"
	"slices"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"learnedindex/internal/core"
	"learnedindex/internal/obs"
	"learnedindex/internal/slicepool"
	"learnedindex/internal/vfs"
)

// Options configures an Engine.
type Options struct {
	// Config is the RMI configuration used for every trained segment
	// index. Leave StageSizes empty to size leaves per segment.
	Config core.Config
	// BloomFPR is the per-segment Bloom filter false-positive rate
	// (default 0.01).
	BloomFPR float64
	// CompactFanout is how many contiguous same-size-class segments
	// trigger a merge (default 4; minimum 2).
	CompactFanout int
	// NoCompactor disables the background compaction goroutine. Compact
	// can still be called explicitly.
	NoCompactor bool
	// StringKeys switches the engine to the string-keyed mode of the key
	// codec (internal/keycodec): appends/commits take strings, segments are
	// written in the version-2 format, and reads go through the prefix plan
	// plus suffix dictionary. An engine (and its directory) is permanently
	// one mode; Open fails rather than misread a directory of the other
	// kind, and calling a uint64 method on a string engine (or vice versa)
	// panics.
	StringKeys bool
	// Reg is the metrics registry the engine publishes into (internal/obs):
	// its accounting counters, WAL/flush/compaction histograms, and the
	// snapshot-time collector for segment-level series all live there. Nil
	// means the engine owns a private registry, reachable via Registry().
	Reg *obs.Registry
	// FS is the filesystem the engine performs every file operation on
	// (internal/vfs). Nil means the real OS; fault-injection tests swap in
	// a vfs.FaultFS to drive the failure model deterministically.
	FS vfs.FS
	// ScrubInterval > 0 starts a background scrubber that re-verifies
	// every live segment file's checksum on this period and rewrites any
	// file that rotted on disk from the in-memory image (see scrub.go).
	// Zero disables the goroutine; Scrub can still be called explicitly.
	ScrubInterval time.Duration
	// BackpressureDebt is the compaction-debt threshold (segments sitting
	// in merge-eligible runs, see compactionDebt) at which Append/Commit
	// callers briefly stall to let the compactor catch up. 0 means the
	// default (16x CompactFanout); negative disables backpressure.
	// Ignored under NoCompactor — nobody would relieve the pressure.
	BackpressureDebt int
}

func (o Options) withDefaults() Options {
	if o.BloomFPR <= 0 || o.BloomFPR >= 1 {
		o.BloomFPR = 0.01
	}
	if o.CompactFanout < 2 {
		o.CompactFanout = 4
	}
	// core.New clamps StageSizes entries in place; segments must not share
	// a mutable backing array with the caller.
	if len(o.Config.StageSizes) > 0 {
		o.Config.StageSizes = slices.Clone(o.Config.StageSizes)
	}
	if o.FS == nil {
		o.FS = vfs.OS
	}
	return o
}

// Stats is a point-in-time snapshot of engine state for reports: a fixed
// view over the engine's registry metrics (Registry/Metrics expose the
// full plane). The segment list and the flush/compaction counters are read
// under one acquisition of the publication lock, so a Stats taken
// concurrently with a Flush never shows a published segment before the
// flush that produced it is counted.
type Stats struct {
	Segments      int
	Keys          int
	DiskBytes     int64
	WALBytes      int64
	PendingKeys   int
	ModelsLoaded  int // RMIs deserialized from disk at Open
	ModelsTrained int // RMIs trained by flushes and compactions
	Flushes       int
	Compactions   int
	WALSyncs      int // fsyncs issued by the commit plane
	Commits       int // Commit calls acknowledged (group-committed)
}

// Engine is the disk-backed store. Open one per directory; Close releases
// it. All methods are safe for concurrent use.
type Engine struct {
	dir  string
	opts Options

	// mu serializes the write plane: the active WAL buffer, pending keys,
	// the commit cohort, and the sticky error. It is held only for cheap
	// operations — appends, frame encodes, and the flush freeze step —
	// never across segment training, and never across a group-commit
	// leader's fsync (the leader drops mu for the disk wait so appends and
	// cohort enqueues keep flowing).
	mu      sync.Mutex
	wal     *wal
	walSeq  uint64
	pending []uint64
	// flushing holds the pending keys frozen by an in-progress Flush, from
	// the freeze until the trained segment is published. Scan snapshots copy
	// pending+flushing (before loading the segment list), so a key migrating
	// through a flush is visible in at least one layer at every instant.
	flushing []uint64
	// pendingS/flushingS are the string-mode twins of pending/flushing;
	// exactly one pair is ever populated, per Options.StringKeys.
	pendingS  []string
	flushingS []string
	// err is the fail-stop poison latch: a commit-plane failure sets it
	// (wrapped in ErrPoisoned) and every later durable operation returns
	// it. degradedCause is the read-only latch of the segment plane
	// (wrapped in ErrDegraded): writes refuse, reads keep serving.
	// healthWord mirrors the two for lock-free observation (see health.go).
	err           error
	degradedCause error

	// Group-commit state, guarded by mu. appendSeq counts accepted write
	// calls (Append, AppendBatch, Commit enqueue); durableSeq is the
	// highest appendSeq covered by a completed fsync. A Sync/Commit caller
	// captures its target and waits on syncCond until durableSeq passes it;
	// the first waiter with an uncovered target elects itself leader,
	// encodes every queued cohort batch into ONE frame, flushes, and
	// fsyncs once for everyone — tickets are woken by the broadcast.
	appendSeq  uint64
	durableSeq uint64
	syncing    bool
	syncCond   *sync.Cond
	cohort     [][]uint64 // queued Commit batches awaiting the next frame
	cohortS    [][]string // string-mode commit cohort (same plane, same fsync)
	// flushMu serializes whole flushes (freeze → train → commit → retire),
	// keeping concurrent Flush calls from racing each other while mu stays
	// free for appends during the heavy middle part.
	flushMu sync.Mutex

	// segMu serializes segment-list mutation (flush publish, compaction
	// swap); readers go through the atomic pointer, never the lock.
	segMu sync.Mutex
	segs  atomic.Pointer[[]*segment]
	// compactMu serializes whole compaction rounds: the background
	// compactor and explicit Compact calls must not pick overlapping runs.
	compactMu sync.Mutex

	nextSeq   uint64
	compactCh chan struct{}
	quit      chan struct{}
	wg        sync.WaitGroup
	closed    atomic.Bool

	fs         vfs.FS
	healthWord atomic.Int32 // Health, mirrored from err/degradedCause
	quarCount  atomic.Int64 // *.quarantine files currently in dir
	bpDebt     int          // backpressure threshold (0 = disabled)

	// Replication export plane, guarded by mu (see repl.go). replSink
	// receives frames as their fsync lands; replNext is the last stream
	// sequence assigned at encode time; replPending holds frames encoded
	// but not yet covered by an fsync; replTail holds durable frames not
	// yet covered by a published segment; replDurable is the durable
	// horizon (highest promoted sequence).
	replSink    ReplSink
	replNext    uint64
	replPending []ReplFrame
	replTail    []ReplFrame
	replDurable uint64

	reg *obs.Registry
	m   engineMetrics
}

// engineMetrics is the engine's handle bundle into its registry. The
// counters ARE the engine's accounting (Stats reads them back), so they
// exist in every build; the histograms compile to no-ops under -tags
// noobs.
type engineMetrics struct {
	modelsLoaded  *obs.Counter // RMIs deserialized from disk at Open
	modelsTrained *obs.Counter // RMIs trained by flushes and compactions
	flushes       *obs.Counter // bumped with segment publication (see Stats)
	compactions   *obs.Counter
	walSyncs      *obs.Counter // fsyncs issued by the commit plane
	commits       *obs.Counter // Commit calls acknowledged (group-committed)
	zombies       *obs.Gauge   // compacted-away segments awaiting last unpin

	ioErrors          *obs.Counter // best-effort I/O failures, see countIOErr
	ioRetries         *obs.Counter // segment-plane writes retried after a transient error
	backpressureWaits *obs.Counter // writer naps taken under compaction-debt backpressure
	quarantined       *obs.Counter // segments renamed *.quarantine at open
	scrubPasses       *obs.Counter // completed Scrub sweeps
	scrubHeals        *obs.Counter // corrupt segment files rewritten from memory

	fsyncNs       *obs.Histogram // latency of each commit-plane fsync
	cohortCommits *obs.Histogram // Commit batches covered per cohort drain
	flushNs       *obs.Histogram // freeze→train→publish, whole flush
	compactNs     *obs.Histogram // merge→train→publish, one compaction
}

func newEngineMetrics(reg *obs.Registry) engineMetrics {
	return engineMetrics{
		modelsLoaded:  reg.Counter("lix_storage_models_loaded_total"),
		modelsTrained: reg.Counter("lix_storage_models_trained_total"),
		flushes:       reg.Counter("lix_storage_flushes_total"),
		compactions:   reg.Counter("lix_storage_compactions_total"),
		walSyncs:      reg.Counter("lix_storage_wal_syncs_total"),
		commits:       reg.Counter("lix_storage_commits_total"),
		zombies:       reg.Gauge("lix_storage_zombie_segments"),

		ioErrors:          reg.Counter("lix_storage_io_errors_total"),
		ioRetries:         reg.Counter("lix_storage_io_retries_total"),
		backpressureWaits: reg.Counter("lix_storage_backpressure_waits_total"),
		quarantined:       reg.Counter("lix_segments_quarantined_total"),
		scrubPasses:       reg.Counter("lix_storage_scrub_passes_total"),
		scrubHeals:        reg.Counter("lix_storage_scrub_heals_total"),

		fsyncNs:       reg.Histogram("lix_wal_fsync_ns"),
		cohortCommits: reg.Histogram("lix_wal_cohort_commits"),
		flushNs:       reg.Histogram("lix_storage_flush_ns"),
		compactNs:     reg.Histogram("lix_storage_compaction_ns"),
	}
}

// Open recovers (or creates) the engine rooted at dir: load and validate
// every committed segment, drop compaction leftovers, replay the WAL tail,
// truncate torn records, and materialize any replayed keys as a fresh
// segment so the WAL starts empty. After a clean shutdown this deserializes
// every model and trains none.
func Open(dir string, opts Options) (*Engine, error) {
	opts = opts.withDefaults()
	if err := opts.FS.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	e := &Engine{
		dir:       dir,
		opts:      opts,
		fs:        opts.FS,
		compactCh: make(chan struct{}, 1),
		quit:      make(chan struct{}),
	}
	switch {
	case opts.BackpressureDebt > 0:
		e.bpDebt = opts.BackpressureDebt
	case opts.BackpressureDebt == 0:
		e.bpDebt = 16 * opts.CompactFanout
	}
	e.reg = opts.Reg
	if e.reg == nil {
		e.reg = obs.NewRegistry()
	}
	e.m = newEngineMetrics(e.reg)
	e.reg.RegisterCollector(e.collect)
	e.syncCond = sync.NewCond(&e.mu)
	segs, nextSeq, err := e.loadSegments()
	if err != nil {
		return nil, err
	}
	// One directory, one key mode, forever: refuse to serve segments of the
	// other kind rather than misread them.
	for _, s := range segs {
		if s.isString() != opts.StringKeys {
			return nil, fmt.Errorf("storage: %s holds %s segments but the engine was opened with StringKeys=%v",
				dir, map[bool]string{true: "string-keyed", false: "uint64-keyed"}[s.isString()], opts.StringKeys)
		}
	}
	e.m.modelsLoaded.Add(int64(len(segs)))
	e.segs.Store(&segs)
	e.nextSeq = nextSeq

	// Replay every log in sequence order (several exist only when a crash
	// interrupted a flush between freeze and retire), truncating the torn
	// tail of each; then materialize the recovered keys over the newest
	// segments and retire the replayed files. Ordering is crash-safe: the
	// segment is committed before any log is deleted, and re-replaying an
	// already-materialized log just deduplicates.
	walSeqs, walPaths, otherKind, err := scanWALFiles(e.fs, dir, opts.StringKeys)
	if err != nil {
		return nil, err
	}
	if otherKind > 0 {
		return nil, fmt.Errorf("storage: %s holds %d WAL file(s) of the other key mode (engine opened with StringKeys=%v)",
			dir, otherKind, opts.StringKeys)
	}
	if opts.StringKeys {
		var recovered []string
		for _, p := range walPaths {
			data, err := e.fs.ReadFile(p)
			if err != nil {
				return nil, err
			}
			keys, _ := replayWALStrings(data)
			recovered = append(recovered, keys...)
		}
		if len(recovered) > 0 {
			if _, err := e.materializeStrings(recovered, false); err != nil {
				return nil, err
			}
		}
	} else {
		var recovered []uint64
		for _, p := range walPaths {
			data, err := e.fs.ReadFile(p)
			if err != nil {
				return nil, err
			}
			keys, _ := replayWAL(data)
			recovered = append(recovered, keys...)
		}
		if len(recovered) > 0 {
			if _, err := e.materialize(recovered, false); err != nil {
				return nil, err
			}
		}
	}
	for _, p := range walPaths {
		// Best-effort: a log that survives its own retirement is replayed
		// again at the next open and deduplicated away.
		e.countIOErr("remove replayed WAL", e.fs.Remove(p))
	}
	if len(walSeqs) > 0 {
		e.walSeq = walSeqs[len(walSeqs)-1] + 1
	}
	w, err := newWAL(e.fs, filepath.Join(dir, e.walName(e.walSeq)))
	if err != nil {
		return nil, err
	}
	e.wal = w
	if opts.ScrubInterval > 0 {
		e.wg.Add(1)
		go e.scrubber(opts.ScrubInterval)
	}
	if !opts.NoCompactor {
		// Deliberately not kicked here: a cold open must train nothing
		// (the "deserialized models only" contract above), so any tier
		// left over-full by the previous process waits for the next flush
		// to trigger its merge.
		e.wg.Add(1)
		go e.compactor()
	}
	return e, nil
}

// quarantineSuffix marks a segment file that failed its checksum or
// decode at open: the file is renamed aside (evidence preserved, never
// re-adopted) and serving continues without it.
const quarantineSuffix = ".quarantine"

// segCand is one committed segment file found by the open-time scan.
type segCand struct {
	lo, hi uint64
	path   string
}

// selectMaximalSegments picks the containment-maximal candidates: a range
// strictly contained in another's is an obsolete compaction input that
// outlived its replacement across a crash. Contained candidates are NOT
// deleted here — their container might fail to open and be quarantined,
// in which case they are the only surviving copy of its keys and get
// re-selected on the retry pass.
func selectMaximalSegments(cands []segCand) ([]segCand, error) {
	// Widest range first within a seqLo, so a contained range always meets
	// its container before being kept.
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].lo != cands[j].lo {
			return cands[i].lo < cands[j].lo
		}
		return cands[i].hi > cands[j].hi
	})
	var kept []segCand
	for _, c := range cands {
		if n := len(kept); n > 0 {
			last := kept[n-1]
			if c.lo >= last.lo && c.hi <= last.hi {
				continue // obsolete compaction input (pending its container opening)
			}
			if c.lo <= last.hi {
				return nil, fmt.Errorf("storage: segments %s and %s overlap without containment",
					filepath.Base(last.path), filepath.Base(c.path))
			}
		}
		kept = append(kept, c)
	}
	return kept, nil
}

// loadSegments scans the engine directory for committed segments, removes
// stale temp files, quarantines any segment that fails its checksum or
// decode (renamed *.quarantine, skipped, counted), garbage-collects
// obsolete compaction inputs, and returns the live set sorted by
// sequence. The sequence horizon advances past quarantined files too, so
// a quarantined range's filename is never minted again.
func (e *Engine) loadSegments() ([]*segment, uint64, error) {
	entries, err := e.fs.ReadDir(e.dir)
	if err != nil {
		return nil, 0, err
	}
	var cands []segCand
	nextSeq := uint64(0)
	for _, ent := range entries {
		name := ent.Name()
		if strings.HasSuffix(name, ".tmp") {
			// Never renamed => never committed; best-effort sweep.
			e.countIOErr("remove stale temp", e.fs.Remove(filepath.Join(e.dir, name)))
			continue
		}
		if strings.HasSuffix(name, quarantineSuffix) {
			// A previously quarantined file: never re-adopted, but its range
			// still fences the sequence space.
			if _, hi, ok := parseSegmentFileName(strings.TrimSuffix(name, quarantineSuffix)); ok && hi+1 > nextSeq {
				nextSeq = hi + 1
			}
			e.quarCount.Add(1)
			continue
		}
		lo, hi, ok := parseSegmentFileName(name)
		if !ok {
			continue
		}
		cands = append(cands, segCand{lo, hi, filepath.Join(e.dir, name)})
	}
	for {
		kept, err := selectMaximalSegments(cands)
		if err != nil {
			return nil, 0, err
		}
		segs := make([]*segment, len(kept))
		bad := -1
		var badErr error
		for i, c := range kept {
			s, err := openSegmentFile(e.fs, c.path, c.lo, c.hi)
			if err != nil {
				bad, badErr = i, err
				break
			}
			segs[i] = s
		}
		if bad < 0 {
			// Every container opened: the contained candidates are now
			// provably redundant and can go.
			liveSet := make(map[string]bool, len(kept))
			for _, c := range kept {
				liveSet[c.path] = true
				if c.hi+1 > nextSeq {
					nextSeq = c.hi + 1
				}
			}
			for _, c := range cands {
				if !liveSet[c.path] {
					e.countIOErr("remove obsolete compaction input", e.fs.Remove(c.path))
				}
			}
			return segs, nextSeq, nil
		}
		// Quarantine the corrupt file and retry selection without it: any
		// inputs it contained are still on disk (deletion above is deferred
		// until every container opens) and take over serving its keys. If
		// the quarantine rename itself fails, opening cannot make progress
		// — surface the corruption.
		c := kept[bad]
		if rerr := e.fs.Rename(c.path, c.path+quarantineSuffix); rerr != nil {
			return nil, 0, fmt.Errorf("storage: quarantining %s: %w (corrupt: %w)", filepath.Base(c.path), rerr, badErr)
		}
		log.Printf("storage: quarantined corrupt segment %s: %v", c.path, badErr)
		e.m.quarantined.Inc()
		e.quarCount.Add(1)
		if c.hi+1 > nextSeq {
			nextSeq = c.hi + 1
		}
		cands = slices.DeleteFunc(cands, func(x segCand) bool { return x.path == c.path })
	}
}

// maxAppendChunk bounds the keys per WAL record (~5 MB at worst-case
// 10-byte varints, well under maxWALRecord) so arbitrarily large Append
// calls — e.g. a multi-million-key bootstrap — frame into several records
// instead of tripping the record-size limit.
const maxAppendChunk = 1 << 19

// Append logs keys (as one or more WAL records) and buffers them as
// pending. They are durable after the next Sync and served after the next
// Flush.
func (e *Engine) Append(keys ...uint64) error {
	return e.AppendBatch(keys)
}

// AppendBatch is Append without variadic sugar: the bulk-ingest fast
// path. The record encode runs in a pooled scratch buffer, so a
// steady-state append allocates nothing beyond the pending list's
// amortized growth.
func (e *Engine) AppendBatch(keys []uint64) error {
	if e.opts.StringKeys {
		panic("storage: uint64 append on a string-keyed engine")
	}
	if len(keys) == 0 {
		return nil
	}
	e.maybeBackpressure()
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.writeGateLocked(); err != nil {
		return err
	}
	if e.closed.Load() {
		return fmt.Errorf("storage: engine closed")
	}
	for len(keys) > 0 {
		chunk := keys[:min(len(keys), maxAppendChunk)]
		if err := e.wal.append(chunk); err != nil {
			return e.poisonLocked(err)
		}
		e.pending = append(e.pending, chunk...)
		e.replRecordLocked(slices.Clone(chunk), nil)
		keys = keys[len(chunk):]
	}
	e.appendSeq++
	return nil
}

// Sync acknowledges durability: when it returns nil, every key appended
// before the call survives a crash. Concurrent Sync callers group-commit:
// the first uncovered waiter leads one fsync for the whole cohort instead
// of each caller paying its own disk flush.
func (e *Engine) Sync() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.waitDurable(e.appendSeq)
}

// Commit durably inserts keys in one call: the group-commit hot path.
// The batch joins the current commit cohort; a leader encodes the whole
// cohort as ONE WAL frame and performs ONE fsync for it, waking every
// ticket when the flush lands. When Commit returns nil the keys survive
// any crash (they are served after the next Flush, like Append). The keys
// slice must not be mutated until Commit returns.
func (e *Engine) Commit(keys ...uint64) error {
	return e.CommitBatch(keys)
}

// AppendString logs string keys and buffers them as pending: the string
// engine's Append. Durable after the next Sync, served after the next
// Flush.
func (e *Engine) AppendString(keys ...string) error {
	return e.AppendStringBatch(keys)
}

// AppendStringBatch is AppendString without variadic sugar. Records chunk
// by encoded size (strings are variable-width) instead of key count.
func (e *Engine) AppendStringBatch(keys []string) error {
	if !e.opts.StringKeys {
		panic("storage: string append on a uint64-keyed engine")
	}
	if len(keys) == 0 {
		return nil
	}
	e.maybeBackpressure()
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.writeGateLocked(); err != nil {
		return err
	}
	if e.closed.Load() {
		return fmt.Errorf("storage: engine closed")
	}
	for lo := 0; lo < len(keys); {
		hi, _ := stringChunkEnd(keys, lo)
		if err := e.wal.appendStrings(keys[lo:hi]); err != nil {
			return e.poisonLocked(err)
		}
		e.pendingS = append(e.pendingS, keys[lo:hi]...)
		e.replRecordLocked(nil, slices.Clone(keys[lo:hi]))
		lo = hi
	}
	e.appendSeq++
	return nil
}

// CommitString durably inserts string keys in one group-committed call —
// the string twin of Commit: the batch joins the string cohort, a leader
// frames the whole cohort and fsyncs once for everyone. The keys slice
// must not be mutated until CommitString returns.
func (e *Engine) CommitString(keys ...string) error {
	return e.CommitStringBatch(keys)
}

// CommitStringBatch is CommitString without variadic sugar.
func (e *Engine) CommitStringBatch(keys []string) error {
	if !e.opts.StringKeys {
		panic("storage: string commit on a uint64-keyed engine")
	}
	e.maybeBackpressure()
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(keys) == 0 {
		return e.waitDurable(e.appendSeq)
	}
	if err := e.writeGateLocked(); err != nil {
		return err
	}
	if e.closed.Load() {
		return fmt.Errorf("storage: engine closed")
	}
	e.cohortS = append(e.cohortS, keys)
	e.pendingS = append(e.pendingS, keys...)
	e.appendSeq++
	err := e.waitDurable(e.appendSeq)
	if err == nil {
		e.m.commits.Inc()
	}
	return err
}

// CommitBatch is Commit without variadic sugar.
func (e *Engine) CommitBatch(keys []uint64) error {
	if e.opts.StringKeys {
		panic("storage: uint64 commit on a string-keyed engine")
	}
	e.maybeBackpressure()
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(keys) == 0 {
		// Nothing to add; still honor the durability barrier semantics.
		return e.waitDurable(e.appendSeq)
	}
	if err := e.writeGateLocked(); err != nil {
		return err
	}
	if e.closed.Load() {
		return fmt.Errorf("storage: engine closed")
	}
	// Enqueue: the cohort slice holds a reference to the caller's batch
	// (the caller blocks until the frame is encoded, so it stays valid);
	// pending gets the keys now so a racing Flush freeze serves them.
	e.cohort = append(e.cohort, keys)
	e.pending = append(e.pending, keys...)
	e.appendSeq++
	err := e.waitDurable(e.appendSeq)
	if err == nil {
		e.m.commits.Inc()
	}
	return err
}

// drainCohortLocked encodes every queued Commit batch into as few WAL
// frames as chunking allows — one for any sane cohort — clearing the
// queue. Called with mu held by the elected leader and by the Flush
// freeze (which must encode queued batches into the log it is about to
// fsync and rotate past). Errors latch.
func (e *Engine) drainCohortLocked() {
	if e.opts.StringKeys {
		e.drainCohortStrLocked()
		return
	}
	if len(e.cohort) == 0 || e.err != nil {
		return
	}
	e.m.cohortCommits.Observe(uint64(len(e.cohort)))
	// Chunk by total key count so a monster cohort still respects the
	// per-record bound; batches themselves are never split (each is at
	// most one caller's Commit, far below the chunk limit in practice —
	// oversized single batches fall back to their own frames).
	start, count := 0, 0
	flushRun := func(end int) {
		if e.err != nil || start >= end {
			return
		}
		if err := e.wal.appendBatches(e.cohort[start:end]); err != nil {
			e.poisonLocked(err)
		} else if e.replSink != nil {
			run := make([]uint64, 0, count)
			for _, b := range e.cohort[start:end] {
				run = append(run, b...)
			}
			e.replRecordLocked(run, nil)
		}
		start, count = end, 0
	}
	for i, b := range e.cohort {
		if len(b) > maxAppendChunk {
			// Oversized batch: close the run, then frame it alone in chunks.
			flushRun(i)
			for lo := 0; lo < len(b) && e.err == nil; lo += maxAppendChunk {
				hi := min(lo+maxAppendChunk, len(b))
				if err := e.wal.append(b[lo:hi]); err != nil {
					e.poisonLocked(err)
				} else {
					e.replRecordLocked(slices.Clone(b[lo:hi]), nil)
				}
			}
			start = i + 1
			continue
		}
		if count+len(b) > maxAppendChunk {
			flushRun(i)
		}
		count += len(b)
	}
	flushRun(len(e.cohort))
	for i := range e.cohort {
		e.cohort[i] = nil
	}
	e.cohort = e.cohort[:0]
}

// drainCohortStrLocked is drainCohortLocked for the string-mode cohort.
// Chunk runs by *encoded bytes* (strings are variable-width) so a cohort of
// long keys still frames under the record limit; the count bound rides
// along for free because byte size dominates it.
func (e *Engine) drainCohortStrLocked() {
	if len(e.cohortS) == 0 || e.err != nil {
		return
	}
	e.m.cohortCommits.Observe(uint64(len(e.cohortS)))
	start, bytes := 0, 0
	flushRun := func(end int) {
		if e.err != nil || start >= end {
			return
		}
		if err := e.wal.appendStringBatches(e.cohortS[start:end]); err != nil {
			e.poisonLocked(err)
		} else if e.replSink != nil {
			var run []string
			for _, b := range e.cohortS[start:end] {
				run = append(run, b...)
			}
			e.replRecordLocked(nil, run)
		}
		start, bytes = end, 0
	}
	for i, b := range e.cohortS {
		sz := encodedStringsSize(b)
		if sz > maxStringChunkBytes {
			// Oversized batch: close the run, then frame it alone in chunks.
			flushRun(i)
			for lo := 0; lo < len(b) && e.err == nil; {
				hi, _ := stringChunkEnd(b, lo)
				if err := e.wal.appendStrings(b[lo:hi]); err != nil {
					e.poisonLocked(err)
				} else {
					e.replRecordLocked(nil, slices.Clone(b[lo:hi]))
				}
				lo = hi
			}
			start = i + 1
			continue
		}
		if bytes+sz > maxStringChunkBytes {
			flushRun(i)
		}
		bytes += sz
	}
	flushRun(len(e.cohortS))
	for i := range e.cohortS {
		e.cohortS[i] = nil
	}
	e.cohortS = e.cohortS[:0]
}

// maxStringChunkBytes bounds one string WAL record's encoded payload
// (~4 MB, well under maxWALRecord), the byte-domain twin of
// maxAppendChunk.
const maxStringChunkBytes = 1 << 22

// encodedStringsSize returns the payload bytes keys encode to (lengths +
// data), excluding the record's count header.
func encodedStringsSize(keys []string) int {
	n := 0
	for _, k := range keys {
		n += len(k) + uvarintLen(uint64(len(k)))
	}
	return n
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// stringChunkEnd returns the end index of the longest chunk of keys[lo:]
// whose encoded size fits maxStringChunkBytes (always at least one key, so
// a single enormous key still frames — the record limit catches true
// monsters).
func stringChunkEnd(keys []string, lo int) (hi, size int) {
	hi = lo
	for hi < len(keys) {
		sz := len(keys[hi]) + uvarintLen(uint64(len(keys[hi])))
		if hi > lo && size+sz > maxStringChunkBytes {
			break
		}
		size += sz
		hi++
	}
	return hi, size
}

// waitDurable blocks until every write accepted at or before target is
// crash-durable, electing a group-commit leader as needed. Called with mu
// held; returns with mu held. The leader encodes the queued cohort, pushes
// the WAL buffer to the OS, then drops mu for the fsync itself so the
// write plane keeps accepting work during the disk wait; completion wakes
// every ticket via the condvar broadcast.
func (e *Engine) waitDurable(target uint64) error {
	for {
		if e.err != nil {
			return e.err
		}
		if e.durableSeq >= target {
			return nil
		}
		if e.syncing {
			e.syncCond.Wait()
			continue
		}
		e.syncing = true
		// Cohort-fill window (the classic group-commit delay, reduced to
		// one scheduler yield): with leadership claimed, give runnable
		// committers one chance to enqueue before the frame is cut. On a
		// single-CPU host this is what actually forms cohorts — a blocked
		// fsync syscall does not reliably hand the processor to the
		// waiters — and on multi-core hosts it costs one reschedule while
		// the previous cohort's fsync is the natural fill window anyway.
		e.mu.Unlock()
		runtime.Gosched()
		e.mu.Lock()
		if e.err != nil {
			e.syncing = false
			e.syncCond.Broadcast()
			return e.err
		}
		e.drainCohortLocked()
		if e.err == nil {
			if err := e.wal.w.Flush(); err != nil {
				e.poisonLocked(err)
			}
		}
		if e.err != nil {
			e.syncing = false
			e.syncCond.Broadcast()
			return e.err
		}
		covered := e.appendSeq // everything encoded so far rides this fsync
		// Same bound for the repl plane: frames encoded after mu drops (an
		// Append during the disk wait) are in the bufio buffer, not on disk,
		// and must not promote on this fsync.
		replCovered := e.replNext
		w := e.wal
		e.mu.Unlock()
		fsyncStart := time.Now()
		serr := w.fsync()
		e.m.fsyncNs.ObserveDuration(time.Since(fsyncStart))
		e.mu.Lock()
		e.m.walSyncs.Inc()
		if serr != nil {
			// Fail-stop: a failed commit-plane fsync leaves the OS cache in
			// an unknowable state, so no later fsync may be trusted to ack.
			e.poisonLocked(serr)
		}
		if serr == nil && covered > e.durableSeq {
			e.durableSeq = covered
		}
		if serr == nil {
			e.replPromoteLocked(replCovered)
		}
		e.syncing = false
		e.syncCond.Broadcast()
		// Loop: covered >= target by construction, so this returns unless
		// the fsync failed — then the sticky error surfaces.
	}
}

// Flush makes every pending key served and trims the log. The write
// mutex is held only for the freeze: snapshot the pending keys, fsync and
// retire the active WAL, start a fresh one. Training the segment and
// committing it happen off the write path, so concurrent Appends proceed
// during the heavy part. The frozen log is deleted only after the segment
// is committed — a crash in between re-replays it into duplicates, never
// a loss.
func (e *Engine) Flush() error {
	e.flushMu.Lock()
	defer e.flushMu.Unlock()

	e.mu.Lock()
	if err := e.writeGateLocked(); err != nil {
		e.mu.Unlock()
		return err
	}
	if len(e.pending) == 0 && len(e.pendingS) == 0 {
		e.mu.Unlock()
		return nil
	}
	flushStart := time.Now()
	// Queued Commit batches must land in the log being frozen: their keys
	// are already pending (and will reach the segment), so their frames
	// have to be covered by this fsync for the ack plane to stay honest.
	e.drainCohortLocked()
	if e.err != nil {
		err := e.err
		e.mu.Unlock()
		return err
	}
	// Freeze the mode's pending list (scan-visible while the segment
	// trains off-lock).
	var snap []uint64
	var snapS []string
	if e.opts.StringKeys {
		snapS = e.pendingS
		e.pendingS = getPendingStrBuf()
		e.flushingS = snapS
	} else {
		snap = e.pending
		e.pending = getPendingBuf()
		e.flushing = snap
	}
	frozen := e.wal
	// The frozen log must be durable before the ack plane moves past it:
	// a Sync arriving after the freeze fsyncs only the new active log, so
	// any still-buffered frozen bytes have to hit disk here.
	fsyncStart := time.Now()
	if err := frozen.sync(); err != nil {
		err = e.poisonLocked(err)
		e.mu.Unlock()
		return err
	}
	e.m.fsyncNs.ObserveDuration(time.Since(fsyncStart))
	e.m.walSyncs.Inc()
	// Everything encoded so far is now on disk; release any committers
	// waiting on the old log before the heavy training starts.
	if e.appendSeq > e.durableSeq {
		e.durableSeq = e.appendSeq
	}
	// The freeze fsync ran with mu held throughout, so every encoded frame
	// is on disk and the whole pending run promotes.
	e.replPromoteLocked(e.replNext)
	// Every frame encoded so far lives in the frozen log; once its segment
	// publishes, these frames trim from the durable tail (below).
	replTrimTo := e.replNext
	e.syncCond.Broadcast()
	nw, err := newWAL(e.fs, filepath.Join(e.dir, e.walName(e.walSeq+1)))
	if err != nil {
		err = e.poisonLocked(err)
		e.mu.Unlock()
		return err
	}
	e.walSeq++
	e.wal = nw
	e.mu.Unlock()

	var published bool
	var merr error
	if e.opts.StringKeys {
		published, merr = e.materializeStrings(snapS, true)
	} else {
		published, merr = e.materialize(snap, true)
	}
	if merr != nil {
		// Keep the frozen log file on disk — it is the only durable home
		// of the snapshot now — but release its descriptor. A failed
		// materialize (after its retries) is a segment-plane failure: the
		// engine degrades to read-only rather than poisons, because every
		// acked key is still safe in the frozen log and recovery replays it
		// at the next Open. e.flushing/e.flushingS stays set (and the
		// snapshot stays out of the pool): the acked keys remain visible to
		// scans on the degraded engine.
		e.countIOErr("close frozen WAL", frozen.close())
		e.degrade(merr)
		return merr
	}
	e.countIOErr("close frozen WAL", frozen.close())
	// Best-effort: a frozen log outliving its segment is re-replayed at
	// the next open and deduplicated away.
	e.countIOErr("remove frozen WAL", e.fs.Remove(frozen.path))
	// The keys are served by the published segment now; only after the
	// scan-visible flushing reference is dropped may the buffer recycle.
	e.mu.Lock()
	e.flushing = nil
	e.flushingS = nil
	e.replTrimLocked(replTrimTo)
	e.mu.Unlock()
	if e.opts.StringKeys {
		putPendingStrBuf(snapS)
	} else {
		putPendingBuf(snap)
	}
	if !published {
		// Everything deduplicated away: no segment, so the count cannot
		// ride a publication — it lands here. (Publishing flushes are
		// counted under segMu with their segment; see materialize.)
		e.m.flushes.Inc()
	}
	e.m.flushNs.ObserveDuration(time.Since(flushStart))
	e.kickCompactor()
	return nil
}

// pendingPool recycles the engine's pending-key buffers across flushes:
// every freeze hands its snapshot to materialize (which clones what it
// needs) and takes a recycled buffer for the next fill, so sustained
// ingest stops re-growing a fresh pending slice per flush cycle.
var pendingPool slicepool.Pool[uint64]

func getPendingBuf() []uint64  { return pendingPool.Get() }
func putPendingBuf(b []uint64) { pendingPool.Put(b) }

// pendingStrPool is pendingPool for the string mode. Entries are zeroed
// before recycling so a pooled buffer never pins flushed key bytes.
var pendingStrPool slicepool.Pool[string]

func getPendingStrBuf() []string { return pendingStrPool.Get() }
func putPendingStrBuf(b []string) {
	for i := range b {
		b[i] = ""
	}
	pendingStrPool.Put(b)
}

// materialize dedupes keys against the served segments and commits the
// novel remainder as one new trained segment, reporting whether a segment
// was published. Called from Flush (off the write mutex, countFlush=true)
// and from Open (recovery replay, countFlush=false — recovery is not a
// flush). With countFlush, the flush counter is bumped under segMu
// together with the publication, so a concurrent Stats never observes the
// segment without its flush.
func (e *Engine) materialize(keys []uint64, countFlush bool) (bool, error) {
	fresh := slices.Clone(keys)
	slices.Sort(fresh)
	fresh = slices.Compact(fresh)
	// Segment disjointness: drop keys already served by an older segment.
	segs := *e.segs.Load()
	fresh = slices.DeleteFunc(fresh, func(k uint64) bool { return containsIn(segs, k) })
	if len(fresh) == 0 {
		return false, nil
	}
	seq := e.nextSeq
	var seg *segment
	err := e.retryIO(func() error {
		var werr error
		seg, werr = writeSegment(e.fs, e.m.ioErrors, e.dir, seq, seq, fresh, e.opts.Config, e.opts.BloomFPR)
		return werr
	})
	if err != nil {
		return false, err
	}
	e.nextSeq = seq + 1
	e.segMu.Lock()
	next := append(slices.Clone(*e.segs.Load()), seg)
	e.segs.Store(&next)
	e.m.modelsTrained.Inc()
	if countFlush {
		e.m.flushes.Inc()
	}
	e.segMu.Unlock()
	return true, nil
}

// materializeStrings is materialize for string keys: dedupe against the
// served v2 segments, train a prefix index over the novel remainder, and
// publish it as one new segment.
func (e *Engine) materializeStrings(keys []string, countFlush bool) (bool, error) {
	fresh := slices.Clone(keys)
	slices.Sort(fresh)
	fresh = slices.Compact(fresh)
	segs := *e.segs.Load()
	fresh = slices.DeleteFunc(fresh, func(k string) bool { return containsInStr(segs, k) })
	if len(fresh) == 0 {
		return false, nil
	}
	seq := e.nextSeq
	var seg *segment
	err := e.retryIO(func() error {
		var werr error
		seg, werr = writeStringSegment(e.fs, e.m.ioErrors, e.dir, seq, seq, fresh, e.opts.Config, e.opts.BloomFPR)
		return werr
	})
	if err != nil {
		return false, err
	}
	e.nextSeq = seq + 1
	e.segMu.Lock()
	next := append(slices.Clone(*e.segs.Load()), seg)
	e.segs.Store(&next)
	e.m.modelsTrained.Inc()
	if countFlush {
		e.m.flushes.Inc()
	}
	e.segMu.Unlock()
	return true, nil
}

// walName returns the engine's mode-appropriate WAL filename for seq.
func (e *Engine) walName(seq uint64) string {
	if e.opts.StringKeys {
		return walStrFileName(seq)
	}
	return walFileName(seq)
}

// scanWALFiles returns the engine-mode WAL files in dir, sorted by
// sequence, plus a count of logs of the *other* key mode so Open can
// reject a mode-mismatched directory instead of ignoring durable keys.
func scanWALFiles(fs vfs.FS, dir string, strMode bool) (seqs []uint64, paths []string, otherKind int, err error) {
	entries, err := fs.ReadDir(dir)
	if err != nil {
		return nil, nil, 0, err
	}
	type sw struct {
		seq  uint64
		path string
	}
	var all []sw
	for _, ent := range entries {
		name := ent.Name()
		seq, ok := parseWALFileName(name)
		isStr := false
		if !ok {
			seq, ok = parseWALStrFileName(name)
			isStr = true
		}
		if !ok {
			continue
		}
		if isStr != strMode {
			otherKind++
			continue
		}
		all = append(all, sw{seq, filepath.Join(dir, name)})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].seq < all[j].seq })
	for _, s := range all {
		seqs = append(seqs, s.seq)
		paths = append(paths, s.path)
	}
	return seqs, paths, otherKind, nil
}

// containsIn answers membership over a segment list, newest first so the
// most recently flushed (often hottest) runs are consulted early. The
// min/max fence and the Bloom filter prune almost every miss before any
// model or key block is touched.
func containsIn(segs []*segment, key uint64) bool {
	for i := len(segs) - 1; i >= 0; i-- {
		s := segs[i]
		if key < s.minKey() || key > s.maxKey() {
			continue
		}
		// Bloom funnel (probe → pass → hit): pass−hit is the false
		// positives actually paid, and the collector derives the observed
		// FPR from the three counts. Compiled out under -tags noobs.
		if obs.Enabled {
			s.bloomProbes.Add(1)
		}
		if !s.filter.MayContainUint64(key) {
			continue
		}
		if obs.Enabled {
			s.bloomPass.Add(1)
		}
		if s.plan.Contains(key) {
			if obs.Enabled {
				s.bloomHits.Add(1)
			}
			return true
		}
	}
	return false
}

// containsInStr is containsIn over string-keyed segments: min/max fence,
// then the Bloom filter over the exact keys, then the codec index.
func containsInStr(segs []*segment, key string) bool {
	for i := len(segs) - 1; i >= 0; i-- {
		s := segs[i]
		if key < s.minStr() || key > s.maxStr() {
			continue
		}
		if obs.Enabled {
			s.bloomProbes.Add(1)
		}
		if !s.filter.MayContain(key) {
			continue
		}
		if obs.Enabled {
			s.bloomPass.Add(1)
		}
		if s.sindex.Contains(key) {
			if obs.Enabled {
				s.bloomHits.Add(1)
			}
			return true
		}
	}
	return false
}

// Contains reports whether key is served (flushed). Lock-free.
func (e *Engine) Contains(key uint64) bool {
	if e.opts.StringKeys {
		panic("storage: uint64 read on a string-keyed engine")
	}
	return containsIn(*e.segs.Load(), key)
}

// ContainsString reports whether a string key is served (flushed).
// Lock-free; the string engine's Contains.
func (e *Engine) ContainsString(key string) bool {
	if !e.opts.StringKeys {
		panic("storage: string read on a uint64-keyed engine")
	}
	return containsInStr(*e.segs.Load(), key)
}

// LookupString returns the global lower-bound position of key over all
// served string keys: the number of served keys < key, in codec (byte)
// order. Segments hold disjoint key sets, so per-segment positions sum
// exactly, with the min/max fence resolving out-of-range segments on two
// comparisons.
func (e *Engine) LookupString(key string) int {
	if !e.opts.StringKeys {
		panic("storage: string read on a uint64-keyed engine")
	}
	total := 0
	for _, s := range *e.segs.Load() {
		switch {
		case key <= s.minStr():
			// contributes 0
		case key > s.maxStr():
			total += len(s.strs)
		default:
			total += s.sindex.Lookup(key)
		}
	}
	return total
}

// ContainsBatch answers Contains for every probe against one captured
// segment list, writing into out (len(out) must equal len(probes)) — a
// single consistent view even when a flush publishes mid-batch.
func (e *Engine) ContainsBatch(probes []uint64, out []bool) {
	if e.opts.StringKeys {
		panic("storage: uint64 read on a string-keyed engine")
	}
	segs := *e.segs.Load()
	for i, k := range probes {
		out[i] = containsIn(segs, k)
	}
}

// Lookup returns the global lower-bound position of key over all served
// keys: the number of served keys < key. Segments hold disjoint key sets,
// so the global position is the exact sum of per-segment positions; the
// min/max fence resolves out-of-range segments with two comparisons
// instead of a model run (a probe at or below a segment's minimum
// contributes 0, one above its maximum contributes the full count).
func (e *Engine) Lookup(key uint64) int {
	if e.opts.StringKeys {
		panic("storage: uint64 read on a string-keyed engine")
	}
	total := 0
	for _, s := range *e.segs.Load() {
		switch {
		case key <= s.minKey():
			// contributes 0
		case key > s.maxKey():
			total += len(s.keys)
		default:
			total += s.plan.Lookup(key)
		}
	}
	return total
}

// posScratch pools the per-segment position buffer of LookupBatchSorted
// so the batched read path stays allocation-free in steady state (the
// serving layer above already promises one allocation per batch).
var posScratch = sync.Pool{New: func() any { return new([]int) }}

// LookupBatchSorted answers Lookup for an ascending probe batch, writing
// into out (len(out) must equal len(probes)). Each segment resolves the
// whole batch with its amortized sorted-batch primitive.
func (e *Engine) LookupBatchSorted(probes []uint64, out []int) {
	if e.opts.StringKeys {
		panic("storage: uint64 read on a string-keyed engine")
	}
	for i := range out {
		out[i] = 0
	}
	if len(probes) == 0 {
		return
	}
	tp := posScratch.Get().(*[]int)
	if cap(*tp) < len(probes) {
		*tp = make([]int, len(probes))
	}
	tmp := (*tp)[:len(probes)]
	for _, s := range *e.segs.Load() {
		// Fence the sorted batch once per segment: probes at or below the
		// segment minimum contribute 0, probes above its maximum
		// contribute the full count; only the in-range middle runs the
		// model.
		lo := sort.Search(len(probes), func(i int) bool { return probes[i] > s.minKey() })
		hi := sort.Search(len(probes), func(i int) bool { return probes[i] > s.maxKey() })
		if lo < hi {
			s.plan.LookupBatchSorted(probes[lo:hi], tmp[lo:hi])
			for i := lo; i < hi; i++ {
				out[i] += tmp[i]
			}
		}
		for i := hi; i < len(probes); i++ {
			out[i] += len(s.keys)
		}
	}
	posScratch.Put(tp)
}

// Len returns the number of served (flushed) distinct keys, in either
// mode.
func (e *Engine) Len() int {
	total := 0
	for _, s := range *e.segs.Load() {
		total += s.numKeys()
	}
	return total
}

// PendingLen returns how many appended keys await the next Flush
// (duplicates included), in either mode.
func (e *Engine) PendingLen() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.opts.StringKeys {
		return len(e.pendingS)
	}
	return len(e.pending)
}

// Keys returns all served keys, sorted ascending — a fresh merged copy.
func (e *Engine) Keys() []uint64 {
	if e.opts.StringKeys {
		panic("storage: uint64 read on a string-keyed engine")
	}
	segs := *e.segs.Load()
	total := 0
	for _, s := range segs {
		total += len(s.keys)
	}
	out := make([]uint64, 0, total)
	for _, s := range segs {
		out = append(out, s.keys...)
	}
	slices.Sort(out)
	return out
}

// KeysStrings returns all served string keys, sorted ascending — a fresh
// merged copy.
func (e *Engine) KeysStrings() []string {
	if !e.opts.StringKeys {
		panic("storage: string read on a uint64-keyed engine")
	}
	segs := *e.segs.Load()
	total := 0
	for _, s := range segs {
		total += len(s.strs)
	}
	out := make([]string, 0, total)
	for _, s := range segs {
		out = append(out, s.strs...)
	}
	slices.Sort(out)
	return out
}

// Stats snapshots the engine's observable state: a typed view over the
// registry counters plus the segment list. Segment-derived fields and the
// flush/compaction counters are read under one segMu acquisition — the
// same lock every publication bumps its counter under — so the view is
// internally consistent: a segment never appears before the flush or
// compaction that produced it. (Recovery publishes its replay segment
// without a flush, so Segments <= Flushes holds from any fresh directory,
// not across a crash replay.)
func (e *Engine) Stats() Stats {
	e.segMu.Lock()
	segs := *e.segs.Load()
	st := Stats{
		Segments:      len(segs),
		ModelsLoaded:  int(e.m.modelsLoaded.Load()),
		ModelsTrained: int(e.m.modelsTrained.Load()),
		Flushes:       int(e.m.flushes.Load()),
		Compactions:   int(e.m.compactions.Load()),
		WALSyncs:      int(e.m.walSyncs.Load()),
		Commits:       int(e.m.commits.Load()),
	}
	e.segMu.Unlock()
	for _, s := range segs {
		st.Keys += s.numKeys()
		st.DiskBytes += s.diskBytes
	}
	e.mu.Lock()
	st.PendingKeys = len(e.pending) + len(e.pendingS)
	if e.wal != nil {
		st.WALBytes = e.wal.size
	}
	e.mu.Unlock()
	return st
}

// Registry returns the engine's metrics registry (the one Options.Reg
// supplied, or the private default).
func (e *Engine) Registry() *obs.Registry { return e.reg }

// Metrics snapshots the full metrics plane: registry counters and
// histograms plus the collector-injected engine gauges and per-segment
// series. Safe to call concurrently with everything.
func (e *Engine) Metrics() *obs.Snapshot { return e.reg.Snapshot() }

// collect is the engine's registry collector: point-in-time gauges that
// have no meaningful event stream (sizes, depths, debt) and the
// per-segment series — Bloom funnel with observed FPR, and the compiled
// plan's model-health histograms against its trained bound.
func (e *Engine) collect(s *obs.Snapshot) {
	segs := *e.segs.Load()
	keys, disk := 0, int64(0)
	pinned := 0
	for _, sg := range segs {
		keys += sg.numKeys()
		disk += sg.diskBytes
		if sg.pins.Load() > 0 {
			pinned++
		}
	}
	s.SetGauge("lix_storage_segments", float64(len(segs)))
	s.SetGauge("lix_storage_keys", float64(keys))
	s.SetGauge("lix_storage_disk_bytes", float64(disk))
	s.SetGauge("lix_storage_pinned_segments", float64(pinned))
	s.SetGauge("lix_storage_compaction_debt", float64(compactionDebt(segs, e.opts.CompactFanout)))
	e.mu.Lock()
	pending := len(e.pending) + len(e.pendingS)
	var walBytes int64
	if e.wal != nil {
		walBytes = e.wal.size
	}
	e.mu.Unlock()
	s.SetGauge("lix_storage_pending_keys", float64(pending))
	s.SetGauge("lix_storage_wal_bytes", float64(walBytes))
	// Failure-model plane: 0 ok, 1 degraded (read-only), 2 failed
	// (fail-stop), plus the count of quarantined segment files in the
	// directory.
	s.SetGauge("lix_storage_health", float64(e.healthWord.Load()))
	s.SetGauge("lix_segments_quarantined", float64(e.quarCount.Load()))

	var allErr, allLen obs.HistSnapshot
	maxBound := 0
	for _, sg := range segs {
		name := sg.name()
		probes := int64(sg.bloomProbes.Load())
		pass := int64(sg.bloomPass.Load())
		hits := int64(sg.bloomHits.Load())
		s.AddCounter(obs.L("lix_segment_bloom_probes_total", "segment", name), probes)
		s.AddCounter(obs.L("lix_segment_bloom_pass_total", "segment", name), pass)
		s.AddCounter(obs.L("lix_segment_bloom_hits_total", "segment", name), hits)
		// Observed FPR: of the probes the filter could have pruned (the
		// true negatives), how many leaked through as false positives.
		if negatives := probes - hits; negatives > 0 {
			s.SetGauge(obs.L("lix_segment_bloom_fpr", "segment", name),
				float64(pass-hits)/float64(negatives))
		}
		if sg.plan == nil {
			continue // string segments: codec index, no uint64 plan
		}
		errH, lenH := sg.plan.ObsModelErr(), sg.plan.ObsSearchLen()
		bound := sg.plan.TrainedErrBound()
		s.AddHistogram(obs.L("lix_segment_model_err", "segment", name), errH)
		s.AddHistogram(obs.L("lix_segment_search_window", "segment", name), lenH)
		s.SetGauge(obs.L("lix_segment_trained_err_bound", "segment", name), float64(bound))
		allErr.Merge(errH)
		allLen.Merge(lenH)
		if bound > maxBound {
			maxBound = bound
		}
	}
	s.AddHistogram("lix_storage_model_err", allErr)
	s.AddHistogram("lix_storage_search_window", allLen)
	s.SetGauge("lix_storage_trained_err_bound", float64(maxBound))
}

// compactionDebt counts the segments sitting in merge-eligible runs: how
// much work the size-tiered compactor has queued up. Zero means every tier
// is under its fanout.
func compactionDebt(segs []*segment, fanout int) int {
	debt := 0
	for i := 0; i < len(segs); {
		c := sizeClass(segs[i].diskBytes)
		j := i
		for j < len(segs) && sizeClass(segs[j].diskBytes) == c {
			j++
		}
		if j-i >= fanout {
			debt += j - i
		}
		i = j
	}
	return debt
}

// Dir returns the engine's root directory.
func (e *Engine) Dir() string { return e.dir }

// kickCompactor nudges the background compactor without blocking.
func (e *Engine) kickCompactor() {
	select {
	case e.compactCh <- struct{}{}:
	default:
	}
}

// compactor is the background goroutine: after every flush signal it
// merges until no tier is over its fanout. Errors latch into the sticky
// error (compactOnce does it), so a failing disk surfaces on the next
// Sync/Flush/Close instead of churning silently; the loop also stops
// retrying once the error is set.
func (e *Engine) compactor() {
	defer e.wg.Done()
	for {
		select {
		case <-e.compactCh:
			for {
				changed, err := e.compactOnce()
				if err != nil || !changed {
					break
				}
			}
		case <-e.quit:
			return
		}
	}
}

// Compact runs size-tiered compaction to quiescence in the caller's
// goroutine (useful with NoCompactor and in tests).
func (e *Engine) Compact() error {
	for {
		changed, err := e.compactOnce()
		if err != nil {
			return err
		}
		if !changed {
			return nil
		}
	}
}

// sizeClass buckets a segment's on-disk size into power-of-4 tiers, the
// classic size-tiered grouping: runs within ~4x of each other share a
// class and are merge candidates.
func sizeClass(bytes int64) int {
	return bits.Len64(uint64(bytes)) / 2
}

// compactOnce merges one eligible run: the lowest size class (smallest
// segments first) holding a contiguous run of at least CompactFanout
// same-class segments, oldest run first, capped at 2x fanout inputs. The
// merge trains the replacement off the segment lock; publication swaps
// the list atomically and the input files are deleted afterwards —
// recovery's containment rule covers a crash anywhere in between.
func (e *Engine) compactOnce() (bool, error) {
	e.compactMu.Lock()
	defer e.compactMu.Unlock()
	e.mu.Lock()
	failed := e.writeGateLocked()
	e.mu.Unlock()
	if failed != nil {
		return false, failed // engine already poisoned or degraded; don't churn
	}
	e.segMu.Lock()
	segs := *e.segs.Load()
	fanout := e.opts.CompactFanout
	bestStart, bestLen, bestClass := -1, 0, int(^uint(0)>>1)
	for i := 0; i < len(segs); {
		c := sizeClass(segs[i].diskBytes)
		j := i
		for j < len(segs) && sizeClass(segs[j].diskBytes) == c {
			j++
		}
		if j-i >= fanout && c < bestClass {
			bestStart, bestLen, bestClass = i, min(j-i, 2*fanout), c
		}
		i = j
	}
	if bestStart < 0 {
		e.segMu.Unlock()
		return false, nil
	}
	run := segs[bestStart : bestStart+bestLen]
	e.segMu.Unlock()

	// Heavy work off the lock: merge the disjoint sorted runs and train
	// the replacement. Readers keep serving the old list meanwhile.
	compactStart := time.Now()
	var seg *segment
	err := e.retryIO(func() error {
		var werr error
		if e.opts.StringKeys {
			merged := mergeRunsStr(run)
			seg, werr = writeStringSegment(e.fs, e.m.ioErrors, e.dir, run[0].seqLo, run[len(run)-1].seqHi, merged, e.opts.Config, e.opts.BloomFPR)
		} else {
			merged := mergeRuns(run)
			seg, werr = writeSegment(e.fs, e.m.ioErrors, e.dir, run[0].seqLo, run[len(run)-1].seqHi, merged, e.opts.Config, e.opts.BloomFPR)
		}
		return werr
	})
	if err != nil {
		// Segment-plane failure past its retries: the inputs stay live and
		// every key stays served, but the engine stops taking writes.
		e.degrade(err)
		return false, err
	}

	e.segMu.Lock()
	cur := slices.Clone(*e.segs.Load())
	// Flush only appends and no other compaction runs (segMu serializes
	// publication; the run was chosen under segMu too), so the run still
	// sits at bestStart.
	next := append(cur[:bestStart:bestStart], seg)
	next = append(next, cur[bestStart+bestLen:]...)
	e.segs.Store(&next)
	// Retire the inputs under the same lock that pinned them — the
	// pin-or-zombie decision must not race a snapshot acquisition — but
	// issue the unlink syscalls after unlocking so scan opens/closes never
	// stall on filesystem latency (a leftover is GC'd by containment at
	// next open either way).
	var sweep []string
	for _, s := range run {
		if p := e.retireLocked(s); p != "" {
			sweep = append(sweep, p)
		}
	}
	// Counted under segMu with the swap, like flushes: a concurrent Stats
	// never sees the merged list before the compaction that made it.
	e.m.modelsTrained.Inc()
	e.m.compactions.Inc()
	e.segMu.Unlock()
	for _, p := range sweep {
		// Best-effort: a leftover input is GC'd by containment at next open.
		e.countIOErr("remove compacted input", e.fs.Remove(p))
	}
	e.m.compactNs.ObserveDuration(time.Since(compactStart))
	return true, nil
}

// mergeRuns k-way merges disjoint sorted key arrays into one fresh
// array: a head-comparison merge (the run count is capped at 2x the
// compaction fanout, so the linear head scan beats a heap) instead of
// concatenate-and-sort — no O(total log total) sort, no sort scratch,
// just the exact-size output that the new segment retains.
func mergeRuns(run []*segment) []uint64 {
	total := 0
	for _, s := range run {
		total += len(s.keys)
	}
	out := make([]uint64, 0, total)
	var heads [16]int
	var hs []int
	if len(run) <= len(heads) {
		hs = heads[:len(run)]
	} else {
		hs = make([]int, len(run))
	}
	for {
		best := -1
		var bk uint64
		for s, h := range hs {
			if h >= len(run[s].keys) {
				continue
			}
			if k := run[s].keys[h]; best < 0 || k < bk {
				best, bk = s, k
			}
		}
		if best < 0 {
			return out
		}
		hs[best]++
		// Runs are disjoint by the segment invariant; the adjacency check
		// keeps a violated invariant from ever minting duplicate keys.
		if n := len(out); n > 0 && out[n-1] == bk {
			continue
		}
		out = append(out, bk)
	}
}

// mergeRunsStr is mergeRuns over string-keyed segments: the same capped
// head-comparison k-way merge, producing the exact sorted unique key set
// the replacement segment retains.
func mergeRunsStr(run []*segment) []string {
	total := 0
	for _, s := range run {
		total += len(s.strs)
	}
	out := make([]string, 0, total)
	var heads [16]int
	var hs []int
	if len(run) <= len(heads) {
		hs = heads[:len(run)]
	} else {
		hs = make([]int, len(run))
	}
	for {
		best := -1
		var bk string
		for s, h := range hs {
			if h >= len(run[s].strs) {
				continue
			}
			if k := run[s].strs[h]; best < 0 || k < bk {
				best, bk = s, k
			}
		}
		if best < 0 {
			return out
		}
		hs[best]++
		// Runs are disjoint by the segment invariant; the adjacency check
		// keeps a violated invariant from ever minting duplicate keys.
		if n := len(out); n > 0 && out[n-1] == bk {
			continue
		}
		out = append(out, bk)
	}
}

// Close flushes pending keys, stops the compactor, and closes the active
// WAL. The engine is unusable afterwards. Returns the sticky write error,
// if any, so a failed ack surfaces at least once.
func (e *Engine) Close() error {
	if e.closed.Swap(true) {
		return nil
	}
	close(e.quit)
	e.wg.Wait()
	ferr := e.Flush()
	e.mu.Lock()
	defer e.mu.Unlock()
	cerr := e.wal.close()
	if ferr != nil {
		return ferr
	}
	return cerr
}
