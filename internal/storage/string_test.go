package storage

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"slices"
	"sort"
	"testing"

	"learnedindex/internal/vfs"
)

// stringTestKeys builds a deterministic mixed-shape key set: URL-ish long
// keys sharing hot prefixes (prefix collisions), short keys, and keys with
// embedded NUL bytes.
func stringTestKeys(n int, seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	hosts := []string{"example.com", "api.example.com", "cdn.net", "a.io"}
	set := map[string]struct{}{}
	for len(set) < n {
		switch rng.Intn(4) {
		case 0:
			set[fmt.Sprintf("https://%s/path/%d/item-%d", hosts[rng.Intn(len(hosts))], rng.Intn(100), rng.Intn(1_000_000))] = struct{}{}
		case 1:
			set[fmt.Sprintf("k%07d", rng.Intn(2_000_000))] = struct{}{}
		case 2:
			set[fmt.Sprintf("x\x00%c%d", byte('a'+rng.Intn(26)), rng.Intn(10_000))] = struct{}{}
		default:
			b := make([]byte, 1+rng.Intn(20))
			for i := range b {
				b[i] = byte(rng.Intn(256))
			}
			set[string(b)] = struct{}{}
		}
	}
	out := make([]string, 0, n)
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func TestStringEngineLifecycle(t *testing.T) {
	dir := t.TempDir()
	e := openT(t, dir, Options{StringKeys: true})
	keys := stringTestKeys(20_000, 1)
	shuffled := slices.Clone(keys)
	rand.New(rand.NewSource(2)).Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	if err := e.AppendStringBatch(shuffled); err != nil {
		t.Fatal(err)
	}
	if err := e.Sync(); err != nil {
		t.Fatal(err)
	}
	if e.Len() != 0 {
		t.Fatalf("unflushed keys already served: Len=%d", e.Len())
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if e.Len() != len(keys) {
		t.Fatalf("Len=%d, want %d", e.Len(), len(keys))
	}
	if got := e.KeysStrings(); !slices.Equal(got, keys) {
		t.Fatal("KeysStrings disagrees with the inserted set")
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 3000; i++ {
		k := keys[rng.Intn(len(keys))]
		if !e.ContainsString(k) {
			t.Fatalf("lost key %q", k)
		}
		for _, m := range []string{k + "\x00", k + "~", k[:len(k)-1]} {
			want := sort.SearchStrings(keys, m)
			if got := e.LookupString(m); got != want {
				t.Fatalf("LookupString(%q)=%d, want %d", m, got, want)
			}
			if e.ContainsString(m) != (want < len(keys) && keys[want] == m) {
				t.Fatalf("ContainsString(%q) wrong", m)
			}
		}
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	// Cold open: the v2 segment deserializes (no training) and serves the
	// same answers.
	e2 := openT(t, dir, Options{StringKeys: true})
	defer e2.Close()
	if st := e2.Stats(); st.ModelsLoaded != st.Segments || st.ModelsTrained != 0 {
		t.Fatalf("cold open trained models: %+v", st)
	}
	if e2.Len() != len(keys) {
		t.Fatalf("after reopen Len=%d, want %d", e2.Len(), len(keys))
	}
	for i := 0; i < 2000; i++ {
		k := keys[rng.Intn(len(keys))]
		if !e2.ContainsString(k) {
			t.Fatalf("reopen lost key %q", k)
		}
	}
}

// TestStringEngineCrashRecovery commits string keys without flushing, then
// "crashes" by copying the directory image (files as they exist on disk)
// and opening the copy — every committed key must be recovered from the
// string WAL, including when the log has a torn tail appended.
func TestStringEngineCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	e := openT(t, dir, Options{StringKeys: true, NoCompactor: true})
	flushed := stringTestKeys(5_000, 10)
	if err := e.AppendStringBatch(flushed); err != nil {
		t.Fatal(err)
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	committed := stringTestKeys(2_000, 11)
	if err := e.CommitStringBatch(committed); err != nil {
		t.Fatal(err)
	}

	for _, torn := range []bool{false, true} {
		crashDir := t.TempDir()
		ents, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, ent := range ents {
			data, err := os.ReadFile(filepath.Join(dir, ent.Name()))
			if err != nil {
				t.Fatal(err)
			}
			if torn && len(data) > 0 {
				if _, ok := parseWALStrFileName(ent.Name()); ok {
					data = append(data, []byte("torn-garbage\x01\x02")...)
				}
			}
			if err := os.WriteFile(filepath.Join(crashDir, ent.Name()), data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		r := openT(t, crashDir, Options{StringKeys: true, NoCompactor: true})
		union := map[string]struct{}{}
		for _, k := range flushed {
			union[k] = struct{}{}
		}
		for _, k := range committed {
			union[k] = struct{}{}
		}
		if r.Len() != len(union) {
			t.Fatalf("torn=%v: recovered Len=%d, want %d", torn, r.Len(), len(union))
		}
		for k := range union {
			if !r.ContainsString(k) {
				t.Fatalf("torn=%v: lost durable key %q", torn, k)
			}
		}
		if err := r.Close(); err != nil {
			t.Fatal(err)
		}
	}
	e.Close()
}

func TestStringEngineCompaction(t *testing.T) {
	dir := t.TempDir()
	e := openT(t, dir, Options{StringKeys: true, NoCompactor: true, CompactFanout: 2})
	all := stringTestKeys(8_000, 20)
	shuffled := slices.Clone(all)
	rand.New(rand.NewSource(21)).Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	const batches = 8
	per := len(shuffled) / batches
	for b := 0; b < batches; b++ {
		if err := e.AppendStringBatch(shuffled[b*per : (b+1)*per]); err != nil {
			t.Fatal(err)
		}
		if err := e.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	before := e.Stats().Segments
	if err := e.Compact(); err != nil {
		t.Fatal(err)
	}
	after := e.Stats()
	if after.Segments >= before {
		t.Fatalf("compaction did not shrink the list: %d -> %d", before, after.Segments)
	}
	if got := e.KeysStrings(); !slices.Equal(got, all) {
		t.Fatalf("compaction changed the key set: got %d keys, want %d", len(got), len(all))
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	// Survives a reopen: compacted v2 segments decode.
	e2 := openT(t, dir, Options{StringKeys: true, NoCompactor: true})
	defer e2.Close()
	if e2.Len() != len(all) {
		t.Fatalf("reopen after compaction Len=%d, want %d", e2.Len(), len(all))
	}
}

// TestEngineModeMismatch locks in the one-directory-one-mode contract:
// Open refuses the other mode's directory (segments or WAL), and calling
// the wrong mode's methods panics.
func TestEngineModeMismatch(t *testing.T) {
	// uint64 directory with a flushed segment, reopened as string.
	dirU := t.TempDir()
	eu := openT(t, dirU, Options{})
	eu.Append(1, 2, 3)
	if err := eu.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := eu.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dirU, Options{StringKeys: true}); err == nil {
		t.Fatal("string open of a uint64 segment directory succeeded")
	}

	// String directory with only WAL frames (no flush), reopened as uint64.
	dirS := t.TempDir()
	es := openT(t, dirS, Options{StringKeys: true})
	if err := es.CommitString("a", "b"); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash: copy the live WAL file to a fresh dir (Close would
	// flush it into a segment).
	crashDir := t.TempDir()
	ents, _ := os.ReadDir(dirS)
	for _, ent := range ents {
		data, err := os.ReadFile(filepath.Join(dirS, ent.Name()))
		if err != nil {
			t.Fatal(err)
		}
		os.WriteFile(filepath.Join(crashDir, ent.Name()), data, 0o644)
	}
	if _, err := Open(crashDir, Options{}); err == nil {
		t.Fatal("uint64 open of a string WAL directory succeeded")
	}
	es.Close()

	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	eu2 := openT(t, t.TempDir(), Options{})
	defer eu2.Close()
	mustPanic("AppendString", func() { eu2.AppendString("x") })
	mustPanic("CommitString", func() { eu2.CommitString("x") })
	mustPanic("ContainsString", func() { eu2.ContainsString("x") })
	mustPanic("LookupString", func() { eu2.LookupString("x") })
	mustPanic("KeysStrings", func() { eu2.KeysStrings() })
	es2 := openT(t, t.TempDir(), Options{StringKeys: true})
	defer es2.Close()
	mustPanic("Append", func() { es2.Append(1) })
	mustPanic("Commit", func() { es2.Commit(1) })
	mustPanic("Contains", func() { es2.Contains(1) })
	mustPanic("Lookup", func() { es2.Lookup(1) })
	mustPanic("Keys", func() { es2.Keys() })
}

// TestStringSnapshotCountRange cross-checks the codec-index COUNT against
// a flat oracle, over flushed segments plus an unflushed delta, bounded
// and unbounded.
func TestStringSnapshotCountRange(t *testing.T) {
	dir := t.TempDir()
	e := openT(t, dir, Options{StringKeys: true, NoCompactor: true})
	defer e.Close()
	keys := stringTestKeys(6_000, 30)
	if err := e.AppendStringBatch(keys[:4_000]); err != nil {
		t.Fatal(err)
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := e.AppendStringBatch(keys[4_000:]); err != nil {
		t.Fatal(err)
	}
	sorted := slices.Clone(keys)
	slices.Sort(sorted)
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 300; i++ {
		a := sorted[rng.Intn(len(sorted))]
		b := sorted[rng.Intn(len(sorted))]
		lo, hi := min(a, b), max(a, b)
		want := sort.SearchStrings(sorted, hi) - sort.SearchStrings(sorted, lo)
		if got := e.CountRangeStr(lo, hi, true); got != want {
			t.Fatalf("CountRangeStr(%q,%q)=%d, want %d", lo, hi, got, want)
		}
		wantOpen := len(sorted) - sort.SearchStrings(sorted, lo)
		if got := e.CountRangeStr(lo, "", false); got != wantOpen {
			t.Fatalf("CountRangeStr(%q,∞)=%d, want %d", lo, got, wantOpen)
		}
	}
}

// FuzzWALStringReplay feeds arbitrary bytes to the string WAL replayer:
// it must never panic, and re-encoding whatever it recovered must be a
// prefix-consistent interpretation (keys from intact frames only).
func FuzzWALStringReplay(f *testing.F) {
	w, err := newWAL(vfs.OS, filepath.Join(f.TempDir(), "wals-0.log"))
	if err != nil {
		f.Fatal(err)
	}
	w.appendStrings([]string{"alpha", "", "x\x00y"})
	w.appendStrings([]string{"beta"})
	w.w.Flush()
	img, _ := os.ReadFile(w.path)
	w.close()
	f.Add(img)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 40))
	f.Fuzz(func(t *testing.T, data []byte) {
		keys, good := replayWALStrings(data)
		if good < 0 || good > int64(len(data)) {
			t.Fatalf("good offset %d out of range", good)
		}
		// Replaying the intact prefix must yield the same keys.
		again, g2 := replayWALStrings(data[:good])
		if g2 != good || !slices.Equal(keys, again) {
			t.Fatal("replay of the intact prefix disagrees")
		}
	})
}
