package storage

import (
	"bytes"
	"os"
	"testing"

	"learnedindex/internal/bloom"
	"learnedindex/internal/core"
	"learnedindex/internal/data"
	"learnedindex/internal/vfs"
)

// FuzzSegmentDecode asserts the segment decoder never panics on arbitrary
// bytes, and that anything it does accept is internally coherent enough to
// serve lookups without panicking either.
func FuzzSegmentDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(segMagic[:])
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	// A valid segment as seed so mutation explores the deep decode paths.
	keys := data.Uniform(2_000, 1_000_000, 1)
	rmi := core.New(keys, core.DefaultConfig(32))
	filter := bloom.New(len(keys), 0.01)
	for _, k := range keys {
		filter.AddUint64(k)
	}
	img, _, _, err := encodeSegment(keys, rmi, filter)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(img)
	f.Add(img[:len(img)-5])

	f.Fuzz(func(t *testing.T, in []byte) {
		ks, r, bf, bi, err := decodeSegment(in) // must never panic
		if err != nil {
			return
		}
		// Accepted input: the decoded structures must serve without
		// panicking across the whole key range.
		if len(ks) == 0 || r == nil || bf == nil || bi == nil {
			t.Fatalf("nil-but-no-error decode")
		}
		for _, k := range []uint64{0, ks[0], ks[len(ks)-1], ks[len(ks)/2] + 1, ^uint64(0)} {
			_ = r.Lookup(k)
			_ = r.Contains(k)
			_ = bf.MayContainUint64(k)
		}
	})
}

// FuzzSegmentBlockIterator asserts two properties of the lazy block
// decoder on arbitrary bytes: buildBlockIndex never panics (it errors on
// anything malformed), and whenever the eager whole-segment decode accepts
// an input, the lazy block-by-block walk — including model-biased Seek
// entry at every position — reproduces exactly the same key sequence.
func FuzzSegmentBlockIterator(f *testing.F) {
	keys := data.Uniform(1_500, 1_000_000, 3)
	rmi := core.New(keys, core.DefaultConfig(32))
	filter := bloom.New(len(keys), 0.01)
	for _, k := range keys {
		filter.AddUint64(k)
	}
	img, _, _, err := encodeSegment(keys, rmi, filter)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(img, uint16(0))
	f.Add(img[:len(img)-3], uint16(7))
	f.Add([]byte{}, uint16(1))
	f.Add(bytes.Repeat([]byte{0x80}, 40), uint16(9)) // unterminated varints

	f.Fuzz(func(t *testing.T, in []byte, seekSel uint16) {
		// Raw-bytes path: the builder must reject or accept without
		// panicking, for any claimed key count.
		n := 1
		if len(in) > 0 {
			n = int(in[0])%2000 + 1
		}
		if bi, err := buildBlockIndex(in, n); err == nil {
			// Anything accepted must decode every block coherently.
			buf := make([]uint64, 0, scanBlockKeys)
			total := 0
			for b := 0; b < bi.numBlocks(); b++ {
				buf = bi.decodeBlock(b, buf)
				total += len(buf)
			}
			if total != n {
				t.Fatalf("lazy decode produced %d keys, claimed %d", total, n)
			}
		}

		// Whole-segment path: lazy must agree with eager.
		ks, r, _, bi, err := decodeSegment(in)
		if err != nil {
			return
		}
		seg := &segment{keys: ks, rmi: r, plan: r.Plan(), blocks: bi}
		c := getSegmentCursor(seg)
		defer c.Release()
		if !c.Seek(0) {
			t.Fatalf("Seek(0) exhausted on a %d-key segment", len(ks))
		}
		for i, want := range ks {
			if got := c.Key(); got != want {
				t.Fatalf("lazy walk[%d] = %d, eager = %d", i, got, want)
			}
			if adv := c.Next(); adv != (i+1 < len(ks)) {
				t.Fatalf("Next at %d = %v", i, adv)
			}
		}
		// Model-biased entry at an arbitrary position agrees with eager.
		pos := int(seekSel) % len(ks)
		if !c.Seek(ks[pos]) || c.Key() != ks[pos] {
			t.Fatalf("Seek(%d) landed wrong", ks[pos])
		}
	})
}

// FuzzWALReplay asserts three recovery properties on arbitrary log bytes:
// replay never panics, replay is idempotent after truncation (re-reading
// the truncated prefix reproduces exactly the same keys — the recovery
// path's fixed point), and a valid committed prefix is never lost nor
// reordered no matter what corruption follows it ("recovery never invents
// keys" is the contrapositive: every replayed key came from a record whose
// frame fully checksummed).
func FuzzWALReplay(f *testing.F) {
	f.Add([]byte{}, uint8(0))
	f.Add(bytes.Repeat([]byte{0x00}, 32), uint8(1))
	f.Add(bytes.Repeat([]byte{0xff}, 32), uint8(3))
	f.Add([]byte{7, 0, 0, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}, uint8(2))

	f.Fuzz(func(t *testing.T, tail []byte, nrec uint8) {
		// Build a known-good prefix of nrec records via the real writer.
		dir := t.TempDir()
		w, err := newWAL(vfs.OS, dir+"/"+walFileName(0))
		if err != nil {
			t.Fatal(err)
		}
		var committed []uint64
		for i := 0; i < int(nrec%8); i++ {
			rec := []uint64{uint64(i) * 17, uint64(i)*17 + 1}
			if err := w.append(rec); err != nil {
				t.Fatal(err)
			}
			committed = append(committed, rec...)
		}
		if err := w.sync(); err != nil {
			t.Fatal(err)
		}
		prefix, err := os.ReadFile(w.path)
		if err != nil {
			t.Fatal(err)
		}
		w.close()

		input := append(append([]byte{}, prefix...), tail...)
		keys, good := replayWAL(input) // must never panic
		if good < int64(len(prefix)) {
			t.Fatalf("replay truncated into the committed prefix: %d < %d", good, len(prefix))
		}
		if len(keys) < len(committed) {
			t.Fatalf("replay lost committed keys: %d < %d", len(keys), len(committed))
		}
		for i, k := range committed {
			if keys[i] != k {
				t.Fatalf("committed key %d replayed as %d", k, keys[i])
			}
		}
		// Idempotence: replaying the truncated image changes nothing.
		keys2, good2 := replayWAL(input[:good])
		if good2 != good || len(keys2) != len(keys) {
			t.Fatalf("replay not idempotent: (%d,%d) vs (%d,%d)", good2, len(keys2), good, len(keys))
		}
		for i := range keys {
			if keys[i] != keys2[i] {
				t.Fatalf("key %d diverged across re-replay", i)
			}
		}
	})
}
