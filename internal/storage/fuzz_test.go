package storage

import (
	"bytes"
	"os"
	"testing"

	"learnedindex/internal/bloom"
	"learnedindex/internal/core"
	"learnedindex/internal/data"
)

// FuzzSegmentDecode asserts the segment decoder never panics on arbitrary
// bytes, and that anything it does accept is internally coherent enough to
// serve lookups without panicking either.
func FuzzSegmentDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(segMagic[:])
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	// A valid segment as seed so mutation explores the deep decode paths.
	keys := data.Uniform(2_000, 1_000_000, 1)
	rmi := core.New(keys, core.DefaultConfig(32))
	filter := bloom.New(len(keys), 0.01)
	for _, k := range keys {
		filter.AddUint64(k)
	}
	img, err := encodeSegment(keys, rmi, filter)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(img)
	f.Add(img[:len(img)-5])

	f.Fuzz(func(t *testing.T, in []byte) {
		ks, r, bf, err := decodeSegment(in) // must never panic
		if err != nil {
			return
		}
		// Accepted input: the decoded structures must serve without
		// panicking across the whole key range.
		if len(ks) == 0 || r == nil || bf == nil {
			t.Fatalf("nil-but-no-error decode")
		}
		for _, k := range []uint64{0, ks[0], ks[len(ks)-1], ks[len(ks)/2] + 1, ^uint64(0)} {
			_ = r.Lookup(k)
			_ = r.Contains(k)
			_ = bf.MayContainUint64(k)
		}
	})
}

// FuzzWALReplay asserts three recovery properties on arbitrary log bytes:
// replay never panics, replay is idempotent after truncation (re-reading
// the truncated prefix reproduces exactly the same keys — the recovery
// path's fixed point), and a valid committed prefix is never lost nor
// reordered no matter what corruption follows it ("recovery never invents
// keys" is the contrapositive: every replayed key came from a record whose
// frame fully checksummed).
func FuzzWALReplay(f *testing.F) {
	f.Add([]byte{}, uint8(0))
	f.Add(bytes.Repeat([]byte{0x00}, 32), uint8(1))
	f.Add(bytes.Repeat([]byte{0xff}, 32), uint8(3))
	f.Add([]byte{7, 0, 0, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}, uint8(2))

	f.Fuzz(func(t *testing.T, tail []byte, nrec uint8) {
		// Build a known-good prefix of nrec records via the real writer.
		dir := t.TempDir()
		w, err := newWAL(dir + "/" + walFileName(0))
		if err != nil {
			t.Fatal(err)
		}
		var committed []uint64
		for i := 0; i < int(nrec%8); i++ {
			rec := []uint64{uint64(i) * 17, uint64(i)*17 + 1}
			if err := w.append(rec); err != nil {
				t.Fatal(err)
			}
			committed = append(committed, rec...)
		}
		if err := w.sync(); err != nil {
			t.Fatal(err)
		}
		prefix, err := os.ReadFile(w.path)
		if err != nil {
			t.Fatal(err)
		}
		w.close()

		input := append(append([]byte{}, prefix...), tail...)
		keys, good := replayWAL(input) // must never panic
		if good < int64(len(prefix)) {
			t.Fatalf("replay truncated into the committed prefix: %d < %d", good, len(prefix))
		}
		if len(keys) < len(committed) {
			t.Fatalf("replay lost committed keys: %d < %d", len(keys), len(committed))
		}
		for i, k := range committed {
			if keys[i] != k {
				t.Fatalf("committed key %d replayed as %d", k, keys[i])
			}
		}
		// Idempotence: replaying the truncated image changes nothing.
		keys2, good2 := replayWAL(input[:good])
		if good2 != good || len(keys2) != len(keys) {
			t.Fatalf("replay not idempotent: (%d,%d) vs (%d,%d)", good2, len(keys2), good, len(keys))
		}
		for i := range keys {
			if keys[i] != keys2[i] {
				t.Fatalf("key %d diverged across re-replay", i)
			}
		}
	})
}
