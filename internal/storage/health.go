package storage

import (
	"errors"
	"fmt"
	"log"
	"sync"
	"syscall"
	"time"
)

// Health classifies the engine's failure state. The ladder only descends:
// a healthy engine can degrade or fail, a degraded engine can fail, and
// nothing climbs back without a reopen (recovery replays the WAL and
// re-validates the segments, which is the only trustworthy way up).
type Health int32

const (
	// HealthOK: full service.
	HealthOK Health = iota
	// HealthDegraded: read-only. The segment plane hit a persistent error
	// (ENOSPC, a flush or compaction that failed past its retries), so the
	// engine stops accepting writes — but every acked key is still durable
	// (the frozen WAL of a failed flush stays on disk) and reads keep
	// serving from the published segments plus the visible delta.
	HealthDegraded
	// HealthFailed: fail-stop. The commit plane itself failed — a WAL
	// append or fsync error — so the engine can no longer know what is
	// durable. Every durable operation returns the sticky poison error;
	// nothing is ever falsely acked (the fsyncgate lesson: after a failed
	// fsync, the page cache may lie, so retrying a sync and acking it
	// would trade an error for silent loss). Reads keep serving.
	HealthFailed
)

func (h Health) String() string {
	switch h {
	case HealthOK:
		return "ok"
	case HealthDegraded:
		return "degraded"
	case HealthFailed:
		return "failed"
	}
	return fmt.Sprintf("health(%d)", int32(h))
}

// ErrPoisoned wraps every error returned by a fail-stop engine: the
// commit plane failed and no later ack can be trusted.
var ErrPoisoned = errors.New("storage: engine poisoned by a commit-plane failure")

// ErrDegraded wraps every write rejected by a degraded (read-only)
// engine.
var ErrDegraded = errors.New("storage: engine degraded, writes disabled")

// Health returns the engine's current state and the error that put it
// there (nil when HealthOK).
func (e *Engine) Health() (Health, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.err != nil {
		return HealthFailed, e.err
	}
	if e.degradedCause != nil {
		return HealthDegraded, e.degradedCause
	}
	return HealthOK, nil
}

// poisonLocked latches the fail-stop error: first cause wins, every later
// durable operation returns it. Called with mu held.
func (e *Engine) poisonLocked(cause error) error {
	if e.err == nil {
		e.err = fmt.Errorf("%w: %w", ErrPoisoned, cause)
		e.healthWord.Store(int32(HealthFailed))
	}
	return e.err
}

// degrade flips the engine read-only after a segment-plane failure. Acked
// keys stay durable (WAL intact) and reads keep serving; only new writes
// are refused until a reopen.
func (e *Engine) degrade(cause error) {
	e.mu.Lock()
	if e.degradedCause == nil && e.err == nil {
		e.degradedCause = fmt.Errorf("%w: %w", ErrDegraded, cause)
		e.healthWord.Store(int32(HealthDegraded))
		log.Printf("storage: %s degraded to read-only: %v", e.dir, cause)
	}
	e.mu.Unlock()
}

// writeGateLocked returns the error a durable operation must fail with —
// the poison error, then the degraded cause — or nil on a healthy engine.
// Called with mu held.
func (e *Engine) writeGateLocked() error {
	if e.err != nil {
		return e.err
	}
	if e.degradedCause != nil {
		return e.degradedCause
	}
	return nil
}

// Transient-error retry for the segment plane: a flush or compaction
// write is retried a few times with capped exponential backoff before the
// failure is treated as persistent (and degrades the engine). ENOSPC is
// never retried — a full disk does not heal in milliseconds, and each
// retry would just burn another temp-file write.
const (
	ioRetryAttempts = 3
	ioRetryBase     = 2 * time.Millisecond
	ioRetryCap      = 20 * time.Millisecond
)

// retryIO runs op under the segment-plane retry policy, counting each
// retry in lix_storage_io_retries_total.
func (e *Engine) retryIO(op func() error) error {
	delay := ioRetryBase
	for attempt := 1; ; attempt++ {
		err := op()
		if err == nil || attempt >= ioRetryAttempts || errors.Is(err, syscall.ENOSPC) {
			return err
		}
		e.m.ioRetries.Inc()
		time.Sleep(delay)
		if delay *= 2; delay > ioRetryCap {
			delay = ioRetryCap
		}
	}
}

// Write backpressure: once the compactor owes more than bpDebt segments
// of merge work, appenders briefly stall — kicking the compactor and
// napping — instead of racing it further into debt. The wait is bounded
// (budget below), so a stuck compactor slows writes rather than hanging
// them.
const (
	backpressureBase   = time.Millisecond
	backpressureCap    = 20 * time.Millisecond
	backpressureBudget = 150 * time.Millisecond
)

// maybeBackpressure stalls the calling writer while compaction debt sits
// at or above the threshold, up to the bounded budget. Called before mu
// is taken (it sleeps).
func (e *Engine) maybeBackpressure() {
	if e.bpDebt <= 0 || e.opts.NoCompactor {
		return
	}
	if compactionDebt(*e.segs.Load(), e.opts.CompactFanout) < e.bpDebt {
		return
	}
	delay := backpressureBase
	for waited := time.Duration(0); waited < backpressureBudget; waited += delay {
		e.kickCompactor()
		e.m.backpressureWaits.Inc()
		time.Sleep(delay)
		if compactionDebt(*e.segs.Load(), e.opts.CompactFanout) < e.bpDebt {
			return
		}
		if delay *= 2; delay > backpressureCap {
			delay = backpressureCap
		}
	}
}

// ignoredIOErrOnce guards the one log line for best-effort I/O failures
// (cleanup removes, close-after-failure): the first occurrence is logged,
// every occurrence is counted in lix_storage_io_errors_total.
var ignoredIOErrOnce sync.Once

// countIOErr counts a best-effort I/O failure and logs the first one seen
// process-wide. Use for errors that are safe to ignore for correctness
// (re-replay dedups, containment GC re-collects) but must not stay
// invisible.
func (e *Engine) countIOErr(ctx string, err error) {
	if err == nil {
		return
	}
	e.m.ioErrors.Inc()
	ignoredIOErrOnce.Do(func() {
		log.Printf("storage: ignored I/O error (%s): %v (counted in lix_storage_io_errors_total from here on)", ctx, err)
	})
}
