package storage

import (
	"sync/atomic"
	"testing"

	"learnedindex/internal/data"
)

// benchEngine builds a multi-segment engine under b.TempDir once.
func benchEngine(b *testing.B, n, batches int) (*Engine, []uint64) {
	b.Helper()
	keys := data.Maps(n, 1)
	e, err := Open(b.TempDir(), Options{NoCompactor: true})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < batches; i++ {
		if err := e.Append(keys[i*len(keys)/batches : (i+1)*len(keys)/batches]...); err != nil {
			b.Fatal(err)
		}
		if err := e.Flush(); err != nil {
			b.Fatal(err)
		}
	}
	b.Cleanup(func() { e.Close() })
	return e, keys
}

func BenchmarkEngineContainsHit(b *testing.B) {
	e, keys := benchEngine(b, 200_000, 4)
	probes := data.SampleExisting(keys, 1<<14, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !e.Contains(probes[i&(1<<14-1)]) {
			b.Fatal("lost key")
		}
	}
}

func BenchmarkEngineContainsMiss(b *testing.B) {
	e, keys := benchEngine(b, 200_000, 4)
	probes := data.SampleMissing(keys, 1<<14, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if e.Contains(probes[i&(1<<14-1)]) {
			b.Fatal("phantom key")
		}
	}
}

func BenchmarkEngineColdOpen(b *testing.B) {
	e, _ := benchEngine(b, 200_000, 4)
	dir := e.Dir()
	if err := e.Close(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		re, err := Open(dir, Options{NoCompactor: true})
		if err != nil {
			b.Fatal(err)
		}
		if err := re.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineCommitParallel measures group-commit throughput: every
// parallel worker is a durable committer, so the cohort amortizes one
// fsync across all of them. Compare with -cpu=1,8 (or the writepath
// experiment) to see the fsync amortization; b.N counts keys.
func BenchmarkEngineCommitParallel(b *testing.B) {
	e, err := Open(b.TempDir(), Options{NoCompactor: true})
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	var next atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if err := e.Commit(next.Add(1)); err != nil {
				b.Error(err) // Fatal is not allowed off the benchmark goroutine
				return
			}
		}
	})
	b.StopTimer()
	st := e.Stats()
	b.ReportMetric(float64(st.WALSyncs), "fsyncs")
}

func BenchmarkEngineFlushSegment(b *testing.B) {
	keys := data.Maps(50_000, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		e, err := Open(b.TempDir(), Options{NoCompactor: true})
		if err != nil {
			b.Fatal(err)
		}
		if err := e.Append(keys...); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if err := e.Flush(); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		e.Close()
		b.StartTimer()
	}
}
