package storage

import (
	"slices"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"learnedindex/internal/vfs"
)

// TestReplPromoteExcludesMidFsyncFrames: the group-commit leader drops the
// engine mutex for the fsync itself, so appends keep encoding WAL frames
// while the disk wait is in flight — into the bufio buffer the fsync does
// NOT cover. Those frames must ride the NEXT fsync: promoting them on the
// in-flight one would hand the replication sink (and so followers) keys a
// primary crash could still lose, breaking served ⊆ primary-durable.
func TestReplPromoteExcludesMidFsyncFrames(t *testing.T) {
	ffs := vfs.NewFaultFS(vfs.OS, vfs.FaultConfig{})
	ffs.Disarm()
	e := openT(t, t.TempDir(), Options{FS: ffs, CompactFanout: 3})
	defer e.Close()

	var mu sync.Mutex
	var promoted []uint64 // frame seqs handed to the sink, in arrival order
	e.SetReplSink(func(frames []ReplFrame) {
		mu.Lock()
		defer mu.Unlock()
		for _, f := range frames {
			promoted = append(promoted, f.Seq)
		}
	})
	promotedNow := func() []uint64 {
		mu.Lock()
		defer mu.Unlock()
		return slices.Clone(promoted)
	}

	// Park the next WAL fsync: the hook blocks the leader mid-disk-wait
	// with the engine mutex released, which is exactly the race window.
	var trap atomic.Bool
	entered := make(chan struct{})
	release := make(chan struct{})
	ffs.SetHook(func(op vfs.Op, path string) error {
		if op == vfs.OpSync && trap.CompareAndSwap(true, false) {
			close(entered)
			<-release
		}
		return nil
	})
	ffs.Arm()
	trap.Store(true)

	done := make(chan error, 1)
	go func() { done <- e.CommitBatch([]uint64{1}) }() // leader: frame seq 1
	select {
	case <-entered:
	case <-time.After(30 * time.Second):
		t.Fatal("commit fsync never reached the vfs hook")
	}
	// Fsync in flight, mutex free: this append encodes frame seq 2 into the
	// WAL's write buffer. Its bytes are not covered by the parked fsync.
	if err := e.AppendBatch([]uint64{2}); err != nil {
		t.Fatal(err)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	if got := promotedNow(); !slices.Equal(got, []uint64{1}) {
		t.Fatalf("after the commit's fsync, promoted frames = %v, want [1] only — frame 2's bytes are not on disk", got)
	}
	if ds := e.ReplDurableSeq(); ds != 1 {
		t.Fatalf("ReplDurableSeq = %d, want 1", ds)
	}

	// The next durability barrier covers frame 2 and promotes it.
	if err := e.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := promotedNow(); !slices.Equal(got, []uint64{1, 2}) {
		t.Fatalf("after Sync, promoted frames = %v, want [1 2]", got)
	}
	if ds := e.ReplDurableSeq(); ds != 2 {
		t.Fatalf("ReplDurableSeq = %d, want 2", ds)
	}
}
