package storage

import (
	"slices"
	"sort"
	"sync"

	"learnedindex/internal/scan"
	"learnedindex/internal/search"
)

// Snapshot is a pinned point-in-time view of the engine for range scans
// and learned counts: the segment list as of acquisition plus a sorted,
// deduplicated copy of every key that was appended/committed but not yet
// flushed (the WAL-backed delta, including keys frozen by an in-progress
// Flush). While a Snapshot is held, compaction may replace segments in the
// live list but will not delete a pinned segment's file — deletion is
// deferred until the last pin releases — so the on-disk state backing the
// view outlives the scan no matter how many merges land mid-stream.
//
// Acquisition order is what makes the view loss-free: the unflushed delta
// is copied BEFORE the segment list is loaded, so a key migrating from the
// WAL into a segment mid-acquisition appears in at least one of the two
// (and dedup handles both). A Snapshot is immutable and safe for
// concurrent readers; Release it exactly once.
type Snapshot struct {
	eng     *Engine
	segs    []*segment
	pending []uint64 // sorted, deduplicated unflushed keys
	// pendingS is pending for a string-keyed engine; only one of the two is
	// ever populated.
	pendingS []string
}

var snapshotPool = sync.Pool{New: func() any { return new(Snapshot) }}

// AcquireSnapshot pins the current served state plus the unflushed delta.
// Pair every acquisition with exactly one Release.
func (e *Engine) AcquireSnapshot() *Snapshot {
	return e.AcquireSnapshotRange(0, ^uint64(0))
}

// AcquireSnapshotRange is AcquireSnapshot restricted to the scan range
// [lo, hi): the unflushed delta copy keeps only in-range keys, so the
// capture's sort cost scales with delta∩range instead of the whole buffer
// (the segment list is shared pointers either way). Keys >= hi are
// invisible to the snapshot — the scan iterator's exclusive upper bound,
// applied at capture.
func (e *Engine) AcquireSnapshotRange(lo, hi uint64) *Snapshot {
	sn := snapshotPool.Get().(*Snapshot)
	sn.eng = e

	// Delta first (see the type comment for why this order is loss-free).
	e.mu.Lock()
	sn.pending = scan.AppendInRange(sn.pending[:0], e.pending, lo, hi)
	sn.pending = scan.AppendInRange(sn.pending, e.flushing, lo, hi)
	e.mu.Unlock()
	slices.Sort(sn.pending)
	sn.pending = slices.Compact(sn.pending)

	// Pin under segMu: publication and retirement both hold it, so a
	// segment cannot be retired between the list load and its pin.
	e.segMu.Lock()
	segs := *e.segs.Load()
	for _, s := range segs {
		s.pins.Add(1)
	}
	sn.segs = append(sn.segs[:0], segs...)
	e.segMu.Unlock()
	return sn
}

// AcquireSnapshotRangeStr is AcquireSnapshotRange for a string-keyed
// engine. Strings have no natural +∞, so the upper bound is explicit:
// bounded restricts the view to [lo, hi), !bounded to keys >= lo (hi is
// ignored). The delta-before-segments acquisition order and the pinning
// rules are identical to the uint64 path.
func (e *Engine) AcquireSnapshotRangeStr(lo, hi string, bounded bool) *Snapshot {
	sn := snapshotPool.Get().(*Snapshot)
	sn.eng = e

	e.mu.Lock()
	if bounded {
		sn.pendingS = scan.AppendInRange(sn.pendingS[:0], e.pendingS, lo, hi)
		sn.pendingS = scan.AppendInRange(sn.pendingS, e.flushingS, lo, hi)
	} else {
		sn.pendingS = scan.AppendFrom(sn.pendingS[:0], e.pendingS, lo)
		sn.pendingS = scan.AppendFrom(sn.pendingS, e.flushingS, lo)
	}
	e.mu.Unlock()
	slices.Sort(sn.pendingS)
	sn.pendingS = slices.Compact(sn.pendingS)

	e.segMu.Lock()
	segs := *e.segs.Load()
	for _, s := range segs {
		s.pins.Add(1)
	}
	sn.segs = append(sn.segs[:0], segs...)
	e.segMu.Unlock()
	return sn
}

// Release unpins the snapshot's segments — deleting any compacted-away
// segment file whose last pin this was — and recycles the snapshot. The
// unlink syscalls run outside segMu so releases never stall concurrent
// snapshot acquisitions on filesystem latency.
func (sn *Snapshot) Release() {
	e := sn.eng
	if e == nil {
		return // already released
	}
	sn.eng = nil
	var sweep []string
	e.segMu.Lock()
	for i, s := range sn.segs {
		if s.pins.Add(-1) == 0 && s.zombie {
			s.zombie = false // claimed under segMu: exactly one releaser unlinks
			e.m.zombies.Add(-1)
			sweep = append(sweep, s.path)
		}
		sn.segs[i] = nil
	}
	e.segMu.Unlock()
	for _, p := range sweep {
		// Best-effort: a zombie file that survives its unlink is GC'd by
		// containment at the next open.
		e.countIOErr("remove zombie segment", e.fs.Remove(p))
	}
	sn.segs = sn.segs[:0]
	// Drop delta string refs before pooling so a recycled snapshot never
	// pins key bytes from a finished scan.
	for i := range sn.pendingS {
		sn.pendingS[i] = ""
	}
	sn.pendingS = sn.pendingS[:0]
	sn.pending = sn.pending[:0]
	snapshotPool.Put(sn)
}

// retireLocked marks a compacted-away segment for deletion and returns the
// path the caller must unlink (outside the lock) when no scan pins it;
// pinned segments become zombies deleted by the releasing scan. Called
// with segMu held, after the replacement list is published. Retired
// filenames are never minted again (sequence ranges only grow), so the
// deferred unlink cannot collide with a fresh segment.
func (e *Engine) retireLocked(s *segment) string {
	if s.pins.Load() == 0 {
		return s.path
	}
	s.zombie = true
	e.m.zombies.Add(1)
	return ""
}

// Pending returns the snapshot's sorted, deduplicated unflushed keys (the
// WAL-backed delta layer of a scan). Shared, read-only.
func (sn *Snapshot) Pending() []uint64 { return sn.pending }

// NumSegments returns how many segments the snapshot pinned.
func (sn *Snapshot) NumSegments() int { return len(sn.segs) }

// SegmentCursor returns a pooled lazy-decode cursor over segment i when the
// segment's [min, max] key fence overlaps [lo, hi), and nil otherwise — the
// fence check is the scan subsystem's data skipping: a pruned segment
// contributes nothing and costs two comparisons. Cursors are released by
// the scan iterator's Close.
func (sn *Snapshot) SegmentCursor(i int, lo, hi uint64) *SegmentCursor {
	s := sn.segs[i]
	if hi <= s.minKey() || lo > s.maxKey() {
		return nil
	}
	return getSegmentCursor(s)
}

// PendingStrings returns the snapshot's sorted, deduplicated unflushed
// string keys. Shared, read-only.
func (sn *Snapshot) PendingStrings() []string { return sn.pendingS }

// SegmentStrings returns segment i's sorted string keys plus the codec
// index as a learned entry positioner when the segment's [min, max] fence
// overlaps the scan range ([lo, hi) when bounded, keys >= lo otherwise),
// and (nil, nil) when the fence prunes it. String segments materialize
// their keys eagerly, so the scan layer wraps the returned pair in a
// KeysCursor — no lazy block decode exists (or is needed) in this mode.
func (sn *Snapshot) SegmentStrings(i int, lo, hi string, bounded bool) ([]string, scan.Positioner[string]) {
	s := sn.segs[i]
	if (bounded && hi <= s.minStr()) || lo > s.maxStr() {
		return nil, nil
	}
	return s.strs, s.sindex
}

// Contains reports whether key is in one of the snapshot's segments
// (fence → Bloom → plan, newest segment first). The pending delta is NOT
// consulted — this is the segment-membership primitive CountRange uses to
// correct for delta keys already served.
func (sn *Snapshot) Contains(key uint64) bool {
	return containsIn(sn.segs, key)
}

// ContainsString is Contains for a string-keyed snapshot's segments.
func (sn *Snapshot) ContainsString(key string) bool {
	return containsInStr(sn.segs, key)
}

// CountRange returns the exact number of distinct keys k in [lo, hi)
// across the snapshot: segments answer by pure position arithmetic — at
// most two compiled-plan lookups each, zero iteration, with the min/max
// fence resolving out-of-range segments in two comparisons — and the
// unflushed delta contributes an exact correction (each in-range delta key
// counts only if no segment already serves it). Segments hold disjoint key
// sets, so the per-segment sums compose exactly.
func (sn *Snapshot) CountRange(lo, hi uint64) int {
	if hi <= lo {
		return 0
	}
	total := 0
	for _, s := range sn.segs {
		if hi <= s.minKey() || lo > s.maxKey() {
			continue
		}
		a := 0
		if lo > s.minKey() {
			a = s.plan.Lookup(lo)
		}
		b := len(s.keys)
		if hi <= s.maxKey() {
			b = s.plan.Lookup(hi)
		}
		total += b - a
	}
	p := sn.pending
	for i := search.Binary(p, lo, 0, len(p)); i < len(p) && p[i] < hi; i++ {
		if !containsIn(sn.segs, p[i]) {
			total++
		}
	}
	return total
}

// CountRangeStr is CountRange for string keys: exact distinct-key count
// over [lo, hi) when bounded, or keys >= lo otherwise, by the same
// position arithmetic (two codec-index lookups per overlapping segment)
// plus the delta correction.
func (sn *Snapshot) CountRangeStr(lo, hi string, bounded bool) int {
	if bounded && hi <= lo {
		return 0
	}
	total := 0
	for _, s := range sn.segs {
		if (bounded && hi <= s.minStr()) || lo > s.maxStr() {
			continue
		}
		a := 0
		if lo > s.minStr() {
			a = s.sindex.Lookup(lo)
		}
		b := len(s.strs)
		if bounded && hi <= s.maxStr() {
			b = s.sindex.Lookup(hi)
		}
		total += b - a
	}
	p := sn.pendingS
	for i := sort.SearchStrings(p, lo); i < len(p) && (!bounded || p[i] < hi); i++ {
		if !containsInStr(sn.segs, p[i]) {
			total++
		}
	}
	return total
}

// CountRange is Snapshot.CountRange over a throwaway range-restricted
// snapshot: the engine-level learned COUNT for callers that don't hold a
// scan open.
func (e *Engine) CountRange(lo, hi uint64) int {
	if hi <= lo {
		return 0
	}
	sn := e.AcquireSnapshotRange(lo, hi)
	defer sn.Release()
	return sn.CountRange(lo, hi)
}

// CountRangeStr is Engine.CountRange for string keys.
func (e *Engine) CountRangeStr(lo, hi string, bounded bool) int {
	if !e.opts.StringKeys {
		panic("storage: string read on a uint64-keyed engine")
	}
	if bounded && hi <= lo {
		return 0
	}
	sn := e.AcquireSnapshotRangeStr(lo, hi, bounded)
	defer sn.Release()
	return sn.CountRangeStr(lo, hi, bounded)
}
