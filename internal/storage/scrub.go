package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"log"
	"slices"
	"time"

	"learnedindex/internal/binenc"
)

// Self-healing scrub. Every live segment is fully materialized in memory
// at open (keys, model, filter), so the in-memory image is a verified
// good copy of the file for as long as the process lives. The scrubber
// exploits that: it re-reads each segment file, re-verifies the magic and
// body checksum, and rewrites any file that has rotted underneath the
// process from the in-memory image — temp file, fsync, atomic rename over
// the corrupt original, directory fsync. The replace is atomic, so there
// is never an instant with no (or a half-written) file at the segment's
// path; a crash mid-heal leaves either the old corrupt file (quarantined
// at the next open) or the healed one.
//
// Scrub is the in-process half of the corruption story; open-time
// quarantine (loadSegments) is the other half, for rot that outlives the
// process. Scrub shrinks the window in which a crash would turn silent
// rot into data loss.

// verifySegmentImage checks a raw segment file image's magic and body
// checksum — the cheap integrity gate, no decode.
func verifySegmentImage(data []byte) error {
	if len(data) < len(segMagic)+4 {
		return fmt.Errorf("storage: segment file truncated to %d bytes: %w", len(data), binenc.ErrCorrupt)
	}
	if m := [8]byte(data[:8]); m != segMagic && m != segMagic2 {
		return fmt.Errorf("storage: bad segment magic: %w", binenc.ErrCorrupt)
	}
	body := data[len(segMagic) : len(data)-4]
	if crc32.Checksum(body, crcTable) != binary.LittleEndian.Uint32(data[len(data)-4:]) {
		return fmt.Errorf("storage: segment checksum mismatch: %w", binenc.ErrCorrupt)
	}
	return nil
}

// encodeLiveSegment re-encodes a live segment's file image from its
// in-memory state, byte-identical to what the original write produced.
func encodeLiveSegment(s *segment) ([]byte, error) {
	if s.isString() {
		return encodeStringSegment(s.sindex, s.filter)
	}
	img, _, _, err := encodeSegment(s.keys, s.rmi, s.filter)
	return img, err
}

// Scrub re-verifies every live segment file's checksum and rewrites any
// corrupt one from the in-memory image. It returns how many segments were
// checked and healed; err reports the first heal that itself failed
// (the segment keeps serving from memory either way). Safe to call
// concurrently with everything; the background scrubber calls it on
// Options.ScrubInterval.
func (e *Engine) Scrub() (checked, healed int, err error) {
	for _, s := range *e.segs.Load() {
		data, rerr := e.fs.ReadFile(s.path)
		verr := rerr
		if rerr == nil {
			verr = verifySegmentImage(data)
		}
		checked++
		if verr == nil {
			continue
		}
		// Heal under segMu: retirement (compaction swap) also holds it, so
		// the file cannot be deleted or zombied mid-rewrite. Skip segments
		// that left the live list while we were reading.
		e.segMu.Lock()
		if !slices.Contains(*e.segs.Load(), s) || s.zombie {
			e.segMu.Unlock()
			continue
		}
		herr := e.healLocked(s, verr)
		e.segMu.Unlock()
		if herr != nil {
			if err == nil {
				err = herr
			}
			continue
		}
		healed++
	}
	e.m.scrubPasses.Inc()
	return checked, healed, err
}

// healLocked rewrites one corrupt segment file from the in-memory image.
// Called with segMu held.
func (e *Engine) healLocked(s *segment, cause error) error {
	log.Printf("storage: scrub found %s corrupt (%v); rewriting from memory", s.path, cause)
	img, err := encodeLiveSegment(s)
	if err != nil {
		return err // in-memory state unencodable: should be impossible
	}
	tmp := s.path + ".tmp"
	if err := writeFileSync(e.fs, e.m.ioErrors, tmp, img); err != nil {
		return err
	}
	if err := e.fs.Rename(tmp, s.path); err != nil {
		e.countIOErr("remove heal temp", e.fs.Remove(tmp))
		return err
	}
	if err := e.fs.SyncDir(e.dir); err != nil {
		return err
	}
	e.m.scrubHeals.Inc()
	return nil
}

// scrubber is the background goroutine behind Options.ScrubInterval.
func (e *Engine) scrubber(interval time.Duration) {
	defer e.wg.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			e.Scrub()
		case <-e.quit:
			return
		}
	}
}
