package storage

import (
	"math/rand"
	"os"
	"path/filepath"
	"slices"
	"sync"
	"testing"

	"learnedindex/internal/core"
	"learnedindex/internal/data"
	"learnedindex/internal/vfs"
)

func openT(t *testing.T, dir string, opts Options) *Engine {
	t.Helper()
	e, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return e
}

func TestEngineBasicLifecycle(t *testing.T) {
	dir := t.TempDir()
	e := openT(t, dir, Options{})
	keys := data.LognormalPaper(20_000, 5)
	if err := e.Append(keys...); err != nil {
		t.Fatal(err)
	}
	if err := e.Sync(); err != nil {
		t.Fatal(err)
	}
	if e.Len() != 0 {
		t.Fatalf("unflushed keys already served: Len=%d", e.Len())
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if e.Len() != len(keys) {
		t.Fatalf("Len=%d, want %d", e.Len(), len(keys))
	}
	if st := e.Stats(); st.WALBytes != 0 {
		t.Fatalf("WAL not trimmed after flush: %d bytes", st.WALBytes)
	}
	for _, k := range data.SampleExisting(keys, 3000, 6) {
		if !e.Contains(k) {
			t.Fatalf("lost key %d", k)
		}
	}
	for _, k := range data.SampleMissing(keys, 3000, 7) {
		if e.Contains(k) {
			t.Fatalf("invented key %d", k)
		}
	}
	// Lookup matches the lower bound over the merged key set.
	merged := e.Keys()
	probes := append(data.SampleExisting(keys, 500, 8), data.SampleMissing(keys, 500, 9)...)
	for _, k := range probes {
		want := data.Keys(merged).LowerBound(k)
		if got := e.Lookup(k); got != want {
			t.Fatalf("Lookup(%d)=%d, want %d", k, got, want)
		}
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestEngineColdOpenDeserializesModels(t *testing.T) {
	dir := t.TempDir()
	keys := data.LognormalPaper(30_000, 9)
	e := openT(t, dir, Options{})
	e.Append(keys[:10_000]...)
	e.Flush()
	e.Append(keys[10_000:]...)
	e.Flush()
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	e2 := openT(t, dir, Options{NoCompactor: true})
	defer e2.Close()
	st := e2.Stats()
	if st.ModelsTrained != 0 {
		t.Fatalf("cold open trained %d models, want 0", st.ModelsTrained)
	}
	if st.ModelsLoaded == 0 || st.Segments == 0 {
		t.Fatalf("cold open loaded nothing: %+v", st)
	}
	if e2.Len() != len(keys) {
		t.Fatalf("Len=%d, want %d", e2.Len(), len(keys))
	}
	for _, k := range data.SampleExisting(keys, 3000, 10) {
		if !e2.Contains(k) {
			t.Fatalf("cold open lost key %d", k)
		}
	}
	// Batch and per-key lookups agree on the deserialized models.
	probes := append(data.SampleExisting(keys, 1000, 11), data.SampleMissing(keys, 1000, 12)...)
	slices.Sort(probes)
	out := make([]int, len(probes))
	e2.LookupBatchSorted(probes, out)
	for i, k := range probes {
		if want := e2.Lookup(k); out[i] != want {
			t.Fatalf("batch[%d] for key %d = %d, per-key %d", i, k, out[i], want)
		}
	}
}

func TestEngineSetSemanticsAcrossFlushes(t *testing.T) {
	dir := t.TempDir()
	e := openT(t, dir, Options{NoCompactor: true})
	defer e.Close()
	keys := data.Uniform(5_000, 1_000_000, 3)
	e.Append(keys...)
	e.Flush()
	// Re-append the same keys plus a few novel ones: Len must count
	// distinct keys only (flush dedupes against older segments).
	novel := []uint64{2_000_001, 2_000_002, 2_000_003}
	e.Append(keys[:1000]...)
	e.Append(novel...)
	e.Flush()
	want := len(keys) + len(novel)
	if e.Len() != want {
		t.Fatalf("Len=%d, want %d", e.Len(), want)
	}
	// All-duplicate flush: no new segment, WAL still trimmed.
	before := e.Stats().Segments
	e.Append(keys[2000:3000]...)
	e.Flush()
	st := e.Stats()
	if st.Segments != before {
		t.Fatalf("duplicate-only flush created a segment (%d -> %d)", before, st.Segments)
	}
	if st.WALBytes != 0 {
		t.Fatalf("duplicate-only flush left %d WAL bytes", st.WALBytes)
	}
}

func TestEngineCompaction(t *testing.T) {
	dir := t.TempDir()
	e := openT(t, dir, Options{NoCompactor: true, CompactFanout: 3})
	keys := data.LognormalPaper(24_000, 21)
	// Eight similar-sized flushes of interleaved key ranges.
	for i := 0; i < 8; i++ {
		var part []uint64
		for j := i; j < len(keys); j += 8 {
			part = append(part, keys[j])
		}
		e.Append(part...)
		if err := e.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if got := e.Stats().Segments; got != 8 {
		t.Fatalf("expected 8 segments before compaction, got %d", got)
	}
	if err := e.Compact(); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.Compactions == 0 {
		t.Fatal("no compaction ran")
	}
	if st.Segments >= 8 {
		t.Fatalf("compaction did not shrink the segment count: %d", st.Segments)
	}
	if e.Len() != len(keys) {
		t.Fatalf("Len=%d after compaction, want %d", e.Len(), len(keys))
	}
	for _, k := range data.SampleExisting(keys, 2000, 22) {
		if !e.Contains(k) {
			t.Fatalf("compaction lost key %d", k)
		}
	}
	// Obsolete input files must be gone from disk.
	files, _ := filepath.Glob(filepath.Join(dir, "seg-*.seg"))
	if len(files) != st.Segments {
		t.Fatalf("%d segment files on disk, %d live segments", len(files), st.Segments)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen: same contents, no training.
	e2 := openT(t, dir, Options{NoCompactor: true})
	defer e2.Close()
	if e2.Len() != len(keys) || e2.Stats().ModelsTrained != 0 {
		t.Fatalf("post-compaction reopen broken: %+v", e2.Stats())
	}
}

// TestEngineCompactionWideRun compacts a run wider than mergeRuns' inline
// heads array (2 x fanout 9 = up to 18 inputs): the merge must fall back
// to a heap-allocated head list instead of slicing past the array.
func TestEngineCompactionWideRun(t *testing.T) {
	dir := t.TempDir()
	e := openT(t, dir, Options{NoCompactor: true, CompactFanout: 9})
	defer e.Close()
	keys := data.Uniform(18_000, 1_000_000_000, 83)
	for i := 0; i < 18; i++ {
		e.Append(keys[i*1000 : (i+1)*1000]...)
		if err := e.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Compact(); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.Compactions == 0 || st.Segments >= 18 {
		t.Fatalf("wide run did not compact: %+v", st)
	}
	if e.Len() != len(keys) {
		t.Fatalf("Len=%d after wide compaction, want %d", e.Len(), len(keys))
	}
	for _, k := range data.SampleExisting(keys, 1000, 84) {
		if !e.Contains(k) {
			t.Fatalf("wide compaction lost key %d", k)
		}
	}
}

// TestEngineCrashedCompactionRecovery simulates a crash after the
// compacted segment was committed but before the inputs were deleted: the
// containment rule must garbage-collect the inputs at the next open.
func TestEngineCrashedCompactionRecovery(t *testing.T) {
	dir := t.TempDir()
	e := openT(t, dir, Options{NoCompactor: true})
	keys := data.Uniform(9_000, 1_000_000_000, 31)
	for i := 0; i < 3; i++ {
		e.Append(keys[i*3000 : (i+1)*3000]...)
		e.Flush()
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	// Hand-craft the "crash": write the merged segment covering [0,2] while
	// leaving the three inputs in place.
	merged := append([]uint64(nil), keys...)
	slices.Sort(merged)
	if _, err := writeSegment(vfs.OS, nil, dir, 0, 2, dedupSorted(merged), core.Config{}, 0.01); err != nil {
		t.Fatal(err)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "seg-*.seg"))
	if len(files) != 4 {
		t.Fatalf("setup expected 4 files, got %d", len(files))
	}
	e2 := openT(t, dir, Options{NoCompactor: true})
	defer e2.Close()
	if got := e2.Stats().Segments; got != 1 {
		t.Fatalf("containment GC kept %d segments, want 1", got)
	}
	if e2.Len() != len(dedupSorted(merged)) {
		t.Fatalf("Len=%d, want %d", e2.Len(), len(dedupSorted(merged)))
	}
	files, _ = filepath.Glob(filepath.Join(dir, "seg-*.seg"))
	if len(files) != 1 {
		t.Fatalf("obsolete inputs not deleted: %d files", len(files))
	}
}

func dedupSorted(ks []uint64) []uint64 {
	if len(ks) == 0 {
		return ks
	}
	out := ks[:1]
	for _, k := range ks[1:] {
		if k != out[len(out)-1] {
			out = append(out, k)
		}
	}
	return out
}

// TestEngineConcurrentReadsDuringWrites drives appends/flushes/compactions
// while readers hammer Contains/Lookup/Len — the lock-free read plane must
// stay consistent under the race detector.
func TestEngineConcurrentReadsDuringWrites(t *testing.T) {
	dir := t.TempDir()
	e := openT(t, dir, Options{CompactFanout: 2})
	defer e.Close()
	keys := data.Uniform(20_000, 1_000_000_000, 41)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := keys[rng.Intn(len(keys))]
				e.Contains(k)
				e.Lookup(k)
				e.Len()
			}
		}(int64(g))
	}
	for i := 0; i < 20; i++ {
		e.Append(keys[i*1000 : (i+1)*1000]...)
		if err := e.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if err := e.Compact(); err != nil {
		t.Fatal(err)
	}
	if e.Len() != 20_000 {
		t.Fatalf("Len=%d, want 20000", e.Len())
	}
}

// TestEngineRecoversMultipleWALs simulates a crash between a flush's
// freeze and retire steps: the frozen log (whose keys are already
// committed to a segment) and the active log both survive, and recovery
// must replay them in sequence order, deduplicating the materialized
// keys — Len stays exact, nothing is lost.
func TestEngineRecoversMultipleWALs(t *testing.T) {
	dir := t.TempDir()
	e := openT(t, dir, Options{NoCompactor: true})
	segKeys := data.Uniform(3_000, 1_000_000, 61)
	e.Append(segKeys...)
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	// Hand-craft the crash image: a "frozen" log re-logging segment keys
	// (as if its retire step never ran) plus an "active" log with novel
	// keys.
	frozen, err := newWAL(vfs.OS, filepath.Join(dir, walFileName(7)))
	if err != nil {
		t.Fatal(err)
	}
	if err := frozen.append(segKeys[:500]); err != nil {
		t.Fatal(err)
	}
	if err := frozen.sync(); err != nil {
		t.Fatal(err)
	}
	frozen.close()
	active, err := newWAL(vfs.OS, filepath.Join(dir, walFileName(8)))
	if err != nil {
		t.Fatal(err)
	}
	novel := []uint64{5_000_001, 5_000_002, 5_000_003}
	if err := active.append(novel); err != nil {
		t.Fatal(err)
	}
	if err := active.sync(); err != nil {
		t.Fatal(err)
	}
	active.close()

	re := openT(t, dir, Options{NoCompactor: true})
	defer re.Close()
	if want := len(segKeys) + len(novel); re.Len() != want {
		t.Fatalf("Len=%d after multi-WAL recovery, want %d", re.Len(), want)
	}
	for _, k := range novel {
		if !re.Contains(k) {
			t.Fatalf("lost active-log key %d", k)
		}
	}
	// The replayed logs must be retired; exactly one fresh active log
	// remains, with a sequence past both replayed ones.
	seqs, paths, _, err := scanWALFiles(vfs.OS, dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 || seqs[0] < 9 {
		t.Fatalf("wal files after recovery: %v (seqs %v)", paths, seqs)
	}
}

// TestEngineQuarantinesCorruptSegment verifies that a bit-flipped
// committed segment is quarantined at Open — renamed *.quarantine, never
// served, never re-adopted — rather than serving wrong answers or
// blocking the whole store.
func TestEngineQuarantinesCorruptSegment(t *testing.T) {
	dir := t.TempDir()
	e := openT(t, dir, Options{NoCompactor: true})
	e.Append(data.Uniform(2_000, 1_000_000, 51)...)
	e.Flush()
	e.Close()
	files, _ := filepath.Glob(filepath.Join(dir, "seg-*.seg"))
	if len(files) != 1 {
		t.Fatalf("want 1 segment, got %d", len(files))
	}
	img, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	img[len(img)/2] ^= 0x40
	if err := os.WriteFile(files[0], img, 0o644); err != nil {
		t.Fatal(err)
	}
	e2, err := Open(dir, Options{NoCompactor: true})
	if err != nil {
		t.Fatalf("Open over a corrupt segment: %v (want quarantine, not failure)", err)
	}
	defer e2.Close()
	if got := e2.Len(); got != 0 {
		t.Fatalf("Len = %d after quarantining the only segment, want 0", got)
	}
	if q, _ := filepath.Glob(filepath.Join(dir, "seg-*.seg.quarantine")); len(q) != 1 {
		t.Fatalf("want 1 quarantined file, got %v", q)
	}
	if live, _ := filepath.Glob(filepath.Join(dir, "seg-*.seg")); len(live) != 0 {
		t.Fatalf("corrupt segment still live: %v", live)
	}
}
