package storage

import (
	"errors"
	"os"
	"path/filepath"
	"slices"
	"strings"
	"syscall"
	"testing"

	"learnedindex/internal/vfs"
)

// TestPoisonedEngineFailStop pins the fail-stop contract: after a WAL
// fsync failure the engine poisons — every durable operation returns the
// sticky first cause wrapped in ErrPoisoned, even after the fault itself
// clears (the fsyncgate lesson: a post-failure fsync ack cannot be
// trusted) — while reads keep serving, and a reopen recovers to HealthOK
// with every previously acked key intact.
func TestPoisonedEngineFailStop(t *testing.T) {
	dir := t.TempDir()
	ffs := vfs.NewFaultFS(vfs.OS, vfs.FaultConfig{})
	e, err := Open(dir, Options{NoCompactor: true, FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Commit(1, 2, 3); err != nil {
		t.Fatal(err)
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}

	ffs.SetHook(func(op vfs.Op, path string) error {
		if op == vfs.OpSync && strings.HasPrefix(filepath.Base(path), "wal") {
			return errors.New("fsync lost to the page cache")
		}
		return nil
	})
	err = e.Commit(10)
	if err == nil {
		t.Fatal("Commit acked through a failed fsync")
	}
	if !errors.Is(err, vfs.ErrInjected) {
		t.Fatalf("first failure should carry the injected cause, got %v", err)
	}

	// The fault clears — the poison must NOT.
	ffs.SetHook(nil)
	if h, cause := e.Health(); h != HealthFailed || !errors.Is(cause, ErrPoisoned) {
		t.Fatalf("health = %v (%v), want failed/ErrPoisoned", h, cause)
	}
	for name, op := range map[string]func() error{
		"append": func() error { return e.Append(20) },
		"commit": func() error { return e.Commit(21) },
		"sync":   e.Sync,
		"flush":  e.Flush,
	} {
		if err := op(); !errors.Is(err, ErrPoisoned) {
			t.Fatalf("%s on a poisoned engine = %v, want ErrPoisoned", name, err)
		}
	}
	// Reads keep serving the flushed keys.
	for _, k := range []uint64{1, 2, 3} {
		if !e.Contains(k) {
			t.Fatalf("poisoned engine stopped serving flushed key %d", k)
		}
	}
	e.Close() // flush inside Close fails with the poison error; expected

	// Recovery is a reopen: WAL replay + segment validation.
	re, err := Open(dir, Options{NoCompactor: true})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if h, cause := re.Health(); h != HealthOK || cause != nil {
		t.Fatalf("reopened health = %v (%v), want ok", h, cause)
	}
	for _, k := range []uint64{1, 2, 3} {
		if !re.Contains(k) {
			t.Fatalf("acked key %d lost across poison+reopen", k)
		}
	}
}

// TestENOSPCDegradesToReadOnly pins graceful degradation: when the
// segment plane hits ENOSPC (never retried — a full disk does not heal in
// milliseconds), the engine turns read-only instead of failing: writes
// are refused wrapped in ErrDegraded, every acked key keeps serving (the
// frozen WAL of the failed flush stays on disk and scan-visible), and a
// reopen with space available recovers everything.
func TestENOSPCDegradesToReadOnly(t *testing.T) {
	dir := t.TempDir()
	ffs := vfs.NewFaultFS(vfs.OS, vfs.FaultConfig{})
	e, err := Open(dir, Options{NoCompactor: true, FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]uint64, 200)
	for i := range keys {
		keys[i] = uint64(i) * 7
	}
	if err := e.CommitBatch(keys); err != nil {
		t.Fatal(err)
	}

	ffs.SetHook(func(op vfs.Op, path string) error {
		if op == vfs.OpWrite && strings.HasPrefix(filepath.Base(path), "seg-") {
			return syscall.ENOSPC
		}
		return nil
	})
	err = e.Flush()
	if err == nil {
		t.Fatal("Flush succeeded with a full disk")
	}
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("flush error should carry ENOSPC, got %v", err)
	}
	if h, cause := e.Health(); h != HealthDegraded || !errors.Is(cause, ErrDegraded) {
		t.Fatalf("health = %v (%v), want degraded/ErrDegraded", h, cause)
	}
	if err := e.Append(999_999); !errors.Is(err, ErrDegraded) {
		t.Fatalf("append on a degraded engine = %v, want ErrDegraded", err)
	}
	// Every acked key stays visible on the scan plane: the failed flush's
	// snapshot remains the flushing delta (Contains is segment-only by
	// contract) and its frozen WAL stays on disk.
	if got := e.CountRange(0, ^uint64(0)); got != len(keys) {
		t.Fatalf("degraded engine serves %d keys on the scan plane, want %d", got, len(keys))
	}
	sn := e.AcquireSnapshot()
	for _, k := range keys {
		if !sn.Contains(k) && !slices.Contains(sn.Pending(), k) {
			sn.Release()
			t.Fatalf("degraded engine dropped acked key %d", k)
		}
	}
	sn.Release()

	ffs.SetHook(nil) // space freed
	e.Close()        // close's flush is still refused (degradation is sticky)
	re, err := Open(dir, Options{NoCompactor: true})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if h, cause := re.Health(); h != HealthOK || cause != nil {
		t.Fatalf("reopened health = %v (%v), want ok", h, cause)
	}
	if re.Len() != len(keys) {
		t.Fatalf("Len=%d after ENOSPC recovery, want %d", re.Len(), len(keys))
	}
	for _, k := range keys {
		if !re.Contains(k) {
			t.Fatalf("acked key %d lost across ENOSPC+reopen", k)
		}
	}
}

// TestQuarantineThenReopenKeepsAckedKeys pins the quarantine path end to
// end: a flush whose frozen-WAL removal failed (so the log outlives its
// segment), then on-disk rot of the segment, then a reopen. Open must
// quarantine the corrupt segment file (rename to *.quarantine) rather
// than fail, and the surviving WAL replay must restore every acked key
// with an exact Len.
func TestQuarantineThenReopenKeepsAckedKeys(t *testing.T) {
	dir := t.TempDir()
	ffs := vfs.NewFaultFS(vfs.OS, vfs.FaultConfig{})
	e, err := Open(dir, Options{NoCompactor: true, FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	ffs.SetHook(func(op vfs.Op, path string) error {
		if op == vfs.OpRemove && strings.HasPrefix(filepath.Base(path), "wal-") {
			return errors.New("frozen wal pinned")
		}
		return nil
	})
	keys := make([]uint64, 300)
	for i := range keys {
		keys[i] = uint64(i)*13 + 1
	}
	if err := e.CommitBatch(keys); err != nil {
		t.Fatal(err)
	}
	// Flush publishes the segment; the frozen-WAL remove is best-effort
	// and its injected failure must NOT fail the flush.
	if err := e.Flush(); err != nil {
		t.Fatalf("flush failed on a best-effort remove: %v", err)
	}
	ffs.SetHook(nil)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	segs, err := filepath.Glob(filepath.Join(dir, "seg-*.seg"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("want exactly one segment, got %v (%v)", segs, err)
	}
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-5] ^= 0xff // rot a body byte: CRC must catch it
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir, Options{NoCompactor: true})
	if err != nil {
		t.Fatalf("reopen over a corrupt segment should quarantine, not fail: %v", err)
	}
	defer re.Close()
	quar, _ := filepath.Glob(filepath.Join(dir, "seg-*"+quarantineSuffix))
	if len(quar) != 1 {
		t.Fatalf("want exactly one quarantined segment, got %v", quar)
	}
	if re.Len() != len(keys) {
		t.Fatalf("Len=%d after quarantine+replay, want %d", re.Len(), len(keys))
	}
	for _, k := range keys {
		if !re.Contains(k) {
			t.Fatalf("acked key %d lost to quarantine", k)
		}
	}
}

// TestScrubHealsBitRot pins the self-healing path: rot a live segment
// file on disk, and Scrub must detect the checksum mismatch and rewrite
// the file from the in-memory image — atomically, so the repaired engine
// reopens clean with zero quarantines.
func TestScrubHealsBitRot(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(dir, Options{NoCompactor: true})
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]uint64, 500)
	for i := range keys {
		keys[i] = uint64(i)*3 + 2
	}
	if err := e.CommitBatch(keys); err != nil {
		t.Fatal(err)
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	segs, err := filepath.Glob(filepath.Join(dir, "seg-*.seg"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("want exactly one segment, got %v (%v)", segs, err)
	}
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x10
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	checked, healed, err := e.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if checked != 1 || healed != 1 {
		t.Fatalf("scrub checked=%d healed=%d, want 1/1", checked, healed)
	}
	// A second pass over the healed file finds nothing to do.
	if _, healed, err = e.Scrub(); err != nil || healed != 0 {
		t.Fatalf("second scrub healed=%d err=%v, want 0/nil", healed, err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir, Options{NoCompactor: true})
	if err != nil {
		t.Fatalf("reopen after scrub heal: %v", err)
	}
	defer re.Close()
	if quar, _ := filepath.Glob(filepath.Join(dir, "seg-*"+quarantineSuffix)); len(quar) != 0 {
		t.Fatalf("healed engine still quarantined %v", quar)
	}
	if re.Len() != len(keys) {
		t.Fatalf("Len=%d after heal+reopen, want %d", re.Len(), len(keys))
	}
	for _, k := range keys {
		if !re.Contains(k) {
			t.Fatalf("key %d lost across heal+reopen", k)
		}
	}
}
