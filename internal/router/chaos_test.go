package router

import (
	"fmt"
	"math/rand"
	"slices"
	"sync"
	"testing"
	"time"

	"learnedindex/internal/core"
	"learnedindex/internal/repl"
	"learnedindex/internal/serve"
	"learnedindex/internal/server"
)

// routerChaosTally aggregates injected-fault and coverage counts across
// every trial so the suite can assert the schedules actually fire AND that
// the router actually fanned batches across nodes — a chaos oracle whose
// faults never inject, or whose batches all landed on one node, proves
// nothing.
var routerChaosTally = struct {
	sync.Mutex
	net    map[string]int
	fanout int64
	pruned int64
	kills  int64
}{net: map[string]int{}}

func tallyRouterChaos(fnet *repl.FaultNet, st Stats, kills int64) {
	routerChaosTally.Lock()
	defer routerChaosTally.Unlock()
	for k, v := range fnet.InjectionCounts() {
		routerChaosTally.net[k] += v
	}
	routerChaosTally.fanout += st.FanoutBatches
	routerChaosTally.pruned += st.PrunedNodes
	routerChaosTally.kills += kills
}

// routerChaosNet is the wire fault schedule: flaky dials, dropped and torn
// and bit-flipped and reordered messages, slow links — the repl oracle's
// mix pointed at the serving wire.
func routerChaosNet(seed int64) repl.FaultNetConfig {
	return repl.FaultNetConfig{
		Seed:         seed,
		DialErr:      0.05,
		DropConn:     0.01,
		TornWrite:    0.01,
		CorruptBit:   0.01,
		ReorderWrite: 0.01,
		Delay:        0.02,
		MaxDelay:     time.Millisecond,
	}
}

// TestRouterChaosOracle is the serving plane's randomized chaos oracle: a
// three-node partitioned cluster served over a fault-injected wire while
// the driver mixes routed durable inserts, scripted partitions, and node
// kill/restart cycles — 25 seeds per key mode (one per mode under -race).
//
// The invariant is total: every answer the router returns (LookupBatch,
// ContainsBatch, CountRange, ScanBatch) must equal a single in-process
// store holding the union of all acknowledged inserts. Transport errors
// are retried — an error is not an answer — but nothing the router
// *returns* may ever disagree with the oracle.
func TestRouterChaosOracle(t *testing.T) {
	seeds := 25
	if raceEnabled {
		seeds = 1
	}
	for _, mode := range []struct {
		name string
		str  bool
	}{{"uint64", false}, {"string", true}} {
		mode := mode
		t.Run(mode.name, func(t *testing.T) {
			// The extra "trials" group makes its concurrent children complete
			// before the coverage assertions below run. Trials are driven
			// from an explicit goroutine pool rather than t.Parallel: each
			// trial is >99% idle (fsync and watchdog waits dominate, CPU is
			// negligible), so overlapping them is nearly free — but go
			// test's -parallel cap defaults to GOMAXPROCS, which would
			// serialize the fleet on small machines. Concurrent t.Run calls
			// are safe as long as all return before the parent does, which
			// wg.Wait guarantees.
			t.Run("trials", func(t *testing.T) {
				sem := make(chan struct{}, 8)
				var wg sync.WaitGroup
				for s := 0; s < seeds; s++ {
					seed := int64(9500 + s)
					wg.Add(1)
					go func() {
						defer wg.Done()
						sem <- struct{}{}
						defer func() { <-sem }()
						t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
							runRouterChaosTrial(t, seed, mode.str)
						})
					}()
				}
				wg.Wait()
			})
			if t.Failed() || raceEnabled {
				return // one -race seed cannot promise every class fires
			}
			routerChaosTally.Lock()
			defer routerChaosTally.Unlock()
			for _, class := range []string{"dial", "drop_conn", "torn_write", "corrupt_bit", "reorder_write", "partition"} {
				if routerChaosTally.net[class] == 0 {
					t.Errorf("chaos schedule never injected %q across the seed fleet", class)
				}
			}
			if routerChaosTally.fanout == 0 {
				t.Error("no batch ever fanned out across >=2 nodes")
			}
			if routerChaosTally.pruned == 0 {
				t.Error("no node contact was ever pruned by its fences")
			}
			if routerChaosTally.kills == 0 {
				t.Error("no node was ever killed and restarted")
			}
		})
	}
}

// chaosCluster is one trial's mutable topology: persistent node stores
// behind wire servers, killable and restartable in place.
type chaosCluster struct {
	t       *testing.T
	tr      *repl.FaultNet
	strMode bool
	dirs    []string
	stores  []*serve.Store
	servers []*server.Server
	down    int // index of the killed node, or -1
	kills   int64
}

func (cl *chaosCluster) addr(i int) string { return fmt.Sprintf("n%d", i) }

func (cl *chaosCluster) start(i int) {
	var st *serve.Store
	var err error
	opt := serve.Options{Dir: cl.dirs[i]}
	if cl.strMode {
		st, err = serve.OpenString(nil, core.Config{}, opt)
	} else {
		st, err = serve.Open(nil, core.Config{}, opt)
	}
	if err != nil {
		cl.t.Fatalf("open node %d: %v", i, err)
	}
	srv := server.NewServer(st, server.Options{DrainTimeout: 500 * time.Millisecond})
	if err := srv.Serve(cl.tr, cl.addr(i)); err != nil {
		cl.t.Fatalf("serve node %d: %v", i, err)
	}
	cl.stores[i], cl.servers[i] = st, srv
}

func (cl *chaosCluster) kill(i int) {
	cl.servers[i].Close()
	cl.stores[i].Close()
	cl.stores[i], cl.servers[i] = nil, nil
	cl.down = i
	cl.kills++
}

// heal restores full service: restart the down node, lift the partition.
func (cl *chaosCluster) heal() {
	if cl.down >= 0 {
		cl.start(cl.down)
		cl.down = -1
	}
	cl.tr.SetPartitioned(false)
}

func (cl *chaosCluster) close() {
	for i := range cl.stores {
		if cl.servers[i] != nil {
			cl.servers[i].Close()
		}
		if cl.stores[i] != nil {
			cl.stores[i].Close()
		}
	}
}

func runRouterChaosTrial(t *testing.T, seed int64, strMode bool) {
	rng := rand.New(rand.NewSource(seed))
	str := func(k uint64) string { return fmt.Sprintf("k%016x", k) }
	const domain = uint64(3) << 20
	fences := []uint64{1 << 20, 2 << 20}
	fencesStr := []string{str(fences[0]), str(fences[1])}

	mem := repl.NewMemTransport()
	fnet := repl.NewFaultNet(mem, routerChaosNet(seed))
	cl := &chaosCluster{
		t: t, tr: fnet, strMode: strMode, down: -1,
		dirs:    []string{t.TempDir(), t.TempDir(), t.TempDir()},
		stores:  make([]*serve.Store, 3),
		servers: make([]*server.Server, 3),
	}
	defer cl.close()
	for i := range cl.dirs {
		cl.start(i)
	}

	var oracle *serve.Store
	if strMode {
		oracle = serve.NewString(nil, core.Config{}, serve.Options{Shards: 4})
	} else {
		oracle = serve.New(nil, core.Config{}, serve.Options{Shards: 4})
	}
	defer oracle.Close()

	rt, err := New(
		[]Node{{Addr: cl.addr(0)}, {Addr: cl.addr(1)}, {Addr: cl.addr(2)}},
		Options{
			Transport:     fnet,
			StringKeys:    strMode,
			Fences:        fences,
			FencesStr:     fencesStr,
			RetryAttempts: 6,
			RetryBackoff:  time.Millisecond,
			ClientTimeout: 2 * time.Second,
			ScanPageKeys:  64, // small pages: cross-node scans actually paginate
		})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	// withRetry drives one router call until it yields an answer: transport
	// errors are not answers. Healing (restart + partition lift) happens
	// after a few failures so the retry loop terminates; the fault schedule
	// is disarmed only as a last resort, and re-armed by the caller.
	withRetry := func(name string, fn func() error) {
		for i := 0; ; i++ {
			if err := fn(); err == nil {
				return
			} else if i > 40 {
				t.Fatalf("%s never succeeded: %v", name, err)
			} else if i > 25 {
				fnet.Disarm()
			} else if i > 8 {
				cl.heal()
			}
			time.Sleep(time.Millisecond)
		}
	}

	var mirror []uint64 // every acknowledged key, for probe sampling
	insertAcked := func(batch []uint64) {
		withRetry("insert", func() error {
			if strMode {
				ss := make([]string, len(batch))
				for i, k := range batch {
					ss[i] = str(k)
				}
				return rt.InsertDurableString(ss...)
			}
			return rt.InsertDurable(batch...)
		})
		fnet.Arm()
		for _, k := range batch {
			if strMode {
				oracle.InsertString(str(k))
			} else {
				oracle.Insert(k)
			}
		}
		mirror = append(mirror, batch...)
	}

	rounds := 8
	if raceEnabled {
		rounds = 5
	}
	for round := 0; round < rounds; round++ {
		// Scripted events first, so the insert loop exercises retry paths
		// against a degraded cluster.
		if rng.Float64() < 0.35 && cl.down < 0 {
			cl.kill(rng.Intn(3))
		}
		if rng.Float64() < 0.25 {
			fnet.SetPartitioned(true)
		}

		batch := make([]uint64, 0, 40)
		for i := 0; i < 40; i++ {
			batch = append(batch, uint64(rng.Int63n(int64(domain))))
		}
		insertAcked(batch)

		// Verify on alternate rounds (and always on the last): flushing
		// three persistent stores is fsync-heavy, and letting two insert
		// batches accumulate between verifies also exercises reads against
		// a deeper unverified delta. Verification runs only against a
		// fully healed cluster — faults stay armed, but every node is up
		// and the partition is lifted, so retries can always make
		// progress.
		if round%2 == 0 && round != rounds-1 {
			continue
		}
		cl.heal()
		for _, st := range cl.stores {
			st.Flush()
		}
		oracle.Flush()

		probes := make([]uint64, 0, 64)
		for i := 0; i < 24; i++ {
			probes = append(probes, mirror[rng.Intn(len(mirror))])
		}
		for i := 0; i < 24; i++ {
			probes = append(probes, uint64(rng.Int63n(int64(domain)))+uint64(rng.Intn(2))<<40)
		}
		probes = append(probes, 0, fences[0], fences[1], fences[0]-1, domain, ^uint64(0)>>1)

		if strMode {
			sprobes := make([]string, len(probes))
			for i, k := range probes {
				sprobes[i] = str(k)
			}
			var pos []int
			withRetry("lookup", func() error {
				var err error
				pos, err = rt.LookupBatchString(sprobes)
				return err
			})
			for i, p := range sprobes {
				if want := oracle.LookupString(p); pos[i] != want {
					t.Fatalf("round %d: LookupBatchString(%q) = %d, oracle %d", round, p, pos[i], want)
				}
			}
			var bs []bool
			withRetry("contains", func() error {
				var err error
				bs, err = rt.ContainsBatchString(sprobes)
				return err
			})
			for i, p := range sprobes {
				if bs[i] != oracle.ContainsString(p) {
					t.Fatalf("round %d: ContainsBatchString(%q) = %v, oracle disagrees", round, p, bs[i])
				}
			}
			lo := str(uint64(rng.Int63n(int64(domain))))
			hi := str(uint64(rng.Int63n(int64(domain))))
			if hi < lo {
				lo, hi = hi, lo
			}
			var cnt int
			withRetry("count", func() error {
				var err error
				cnt, err = rt.CountRangeString(lo, hi)
				return err
			})
			if want := oracle.CountRangeString(lo, hi); cnt != want {
				t.Fatalf("round %d: CountRangeString(%q,%q) = %d, oracle %d", round, lo, hi, cnt, want)
			}
			var scanned []string
			withRetry("scan", func() error {
				var err error
				scanned, err = rt.ScanBatchString(lo, hi, scanned[:0])
				return err
			})
			if want := oracle.ScanBatchString(lo, hi, nil); !slices.Equal(scanned, want) {
				t.Fatalf("round %d: ScanBatchString(%q,%q): %d keys, oracle %d", round, lo, hi, len(scanned), len(want))
			}
		} else {
			var pos []int
			withRetry("lookup", func() error {
				var err error
				pos, err = rt.LookupBatch(probes)
				return err
			})
			if want := oracle.LookupBatch(probes); !slices.Equal(pos, want) {
				t.Fatalf("round %d: LookupBatch diverged from oracle", round)
			}
			var bs []bool
			withRetry("contains", func() error {
				var err error
				bs, err = rt.ContainsBatch(probes)
				return err
			})
			if !slices.Equal(bs, oracle.ContainsBatch(probes)) {
				t.Fatalf("round %d: ContainsBatch diverged from oracle", round)
			}
			lo := uint64(rng.Int63n(int64(domain)))
			hi := uint64(rng.Int63n(int64(domain)))
			if hi < lo {
				lo, hi = hi, lo
			}
			var cnt int
			withRetry("count", func() error {
				var err error
				cnt, err = rt.CountRange(lo, hi)
				return err
			})
			if want := oracle.CountRange(lo, hi); cnt != want {
				t.Fatalf("round %d: CountRange(%d,%d) = %d, oracle %d", round, lo, hi, cnt, want)
			}
			var scanned []uint64
			withRetry("scan", func() error {
				var err error
				scanned, err = rt.ScanBatch(lo, hi, scanned[:0])
				return err
			})
			if want := oracle.ScanBatch(lo, hi, nil); !slices.Equal(scanned, want) {
				t.Fatalf("round %d: ScanBatch(%d,%d): %d keys, oracle %d", round, lo, hi, len(scanned), len(want))
			}
			var total int
			withRetry("count-all", func() error {
				var err error
				total, err = rt.CountRange(0, ^uint64(0)>>1)
				return err
			})
			if total != oracle.Len() {
				t.Fatalf("round %d: full-range count %d != oracle len %d", round, total, oracle.Len())
			}
		}
		fnet.Arm() // withRetry may have disarmed as a last resort
	}

	tallyRouterChaos(fnet, rt.Stats(), cl.kills)
}
