//go:build !race

package router

const raceEnabled = false
