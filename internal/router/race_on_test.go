//go:build race

package router

// raceEnabled reports that this binary was built with the race detector;
// the chaos oracle trims its seed matrix there (each trial runs a whole
// three-node cluster — full matrices belong to the uninstrumented run,
// one schedule per mode proves race-freedom).
const raceEnabled = true
