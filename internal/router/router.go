// Package router is the client half of the network serving plane: a
// range-partitioned view over several lix-server nodes. It owns a key→node
// range map (fence keys, exactly like serve.Store's shard bounds), splits
// each probe batch across nodes the way internal/serve splits across
// shards — sort once, slice by fence — fans the per-node sub-batches out
// concurrently over the wire, and merges the answers back into probe
// order. Range reads prune nodes whose fences cannot intersect the range
// (the data-skipping idea applied at the partition level), and cross-node
// scans merge per-node pages through internal/scan's loser tree.
//
// Reads can optionally be served by replication followers (PR 9) with a
// bounded staleness: a follower is eligible only while a fresh Status RPC
// shows it connected and at most MaxFollowerLag frames behind its primary.
//
// Every RPC the router issues is idempotent — reads trivially, durable
// inserts by set semantics — so transport faults are retried with backoff
// against a fresh connection. Store-level errors (server.RemoteError) are
// deterministic and surface immediately.
package router

import (
	"cmp"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"learnedindex/internal/repl"
	"learnedindex/internal/server"
)

// Node describes one partition: the primary server address plus optional
// follower addresses eligible for bounded-staleness reads.
type Node struct {
	Addr      string
	Followers []string
}

// Options tunes a Router. Transport and the fence set for the router's key
// mode are the load-bearing fields; everything else has defaults.
type Options struct {
	// Transport carries every connection (default repl.TCP). Tests pass
	// the in-memory or fault-injecting transport.
	Transport repl.Transport
	// StringKeys fixes the router's key mode, which must match every
	// node's store mode (the handshake enforces it per connection).
	StringKeys bool
	// Fences are the len(nodes)-1 ascending split keys of a uint64
	// router: node i owns [Fences[i-1], Fences[i]), with the first node
	// open below and the last open above — serve.Store's shard bounds,
	// one level up.
	Fences []uint64
	// FencesStr are the split keys of a string router.
	FencesStr []string
	// RetryAttempts is how many times a single RPC is tried against
	// fresh connections before the error surfaces (default 8).
	RetryAttempts int
	// RetryBackoff is the first retry delay; it doubles per attempt and
	// is capped at 250ms (default 2ms).
	RetryBackoff time.Duration
	// ClientTimeout bounds each RPC end to end (server.ClientOptions).
	ClientTimeout time.Duration
	// ReadFollowers lets read RPCs hit follower endpoints whose cached
	// status is fresh, connected, and within MaxFollowerLag frames of
	// the primary. Writes always go to the primary.
	ReadFollowers bool
	// MaxFollowerLag is the largest LagFrames a follower may report and
	// still serve reads (default 0: only fully caught-up followers).
	MaxFollowerLag uint64
	// StatusRefresh is how long a follower's status check stays fresh
	// (default 250ms) — the staleness bound on the eligibility decision,
	// on top of the lag bound itself.
	StatusRefresh time.Duration
	// ScanPageKeys is the page size of cross-node scans (default 4096).
	ScanPageKeys int
	// PoolSize caps idle pooled connections per endpoint (default 8).
	PoolSize int
}

func (o Options) withDefaults() Options {
	if o.Transport == nil {
		o.Transport = repl.TCP
	}
	if o.RetryAttempts <= 0 {
		o.RetryAttempts = 8
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = 2 * time.Millisecond
	}
	if o.StatusRefresh <= 0 {
		o.StatusRefresh = 250 * time.Millisecond
	}
	if o.ScanPageKeys <= 0 {
		o.ScanPageKeys = 4096
	}
	if o.ScanPageKeys > 1<<16 {
		o.ScanPageKeys = 1 << 16
	}
	if o.PoolSize <= 0 {
		o.PoolSize = 8
	}
	return o
}

// Stats is a point-in-time snapshot of the router's own counters — the
// client-side mirror of the server's lix_server_* series.
type Stats struct {
	// RPCs counts every RPC issued (including retried attempts' first
	// tries; each do() call counts each attempt).
	RPCs int64
	// Retries counts RPC attempts after the first.
	Retries int64
	// Batches counts batch operations (lookup/contains/insert/count/scan).
	Batches int64
	// FanoutBatches counts batches that touched two or more nodes.
	FanoutBatches int64
	// PrunedNodes counts node contacts skipped because the node's fence
	// range could not intersect the operation.
	PrunedNodes int64
	// FollowerReads counts read RPC groups routed to a follower endpoint.
	FollowerReads int64
	// NodeRPCs is RPCs broken down by node index.
	NodeRPCs []int64
}

// Router is a range-partitioned client over several servers. Safe for
// concurrent use: every operation acquires connections from per-endpoint
// pools.
type Router struct {
	opt   Options
	nodes []*node

	rpcs, retries, batches, fanout atomic.Int64
	pruned, followerReads          atomic.Int64
	nodeRPCs                       []atomic.Int64
}

type node struct {
	primary   *endpoint
	followers []*endpoint
}

// endpoint is one dialable address plus its idle-connection pool and (for
// followers) the cached status that gates read eligibility.
type endpoint struct {
	rt   *Router
	addr string
	idx  int // owning node index, for per-node stats

	mu       sync.Mutex
	idle     []*server.Client
	status   server.Status
	statusAt time.Time
	statusOK bool
}

// New builds a router over nodes. The fence set for the configured key
// mode must hold exactly len(nodes)-1 strictly ascending keys.
func New(nodes []Node, opt Options) (*Router, error) {
	opt = opt.withDefaults()
	if len(nodes) == 0 {
		return nil, errors.New("router: no nodes")
	}
	if opt.StringKeys {
		if len(opt.FencesStr) != len(nodes)-1 {
			return nil, fmt.Errorf("router: %d nodes need %d string fences, have %d", len(nodes), len(nodes)-1, len(opt.FencesStr))
		}
		if !ascending(opt.FencesStr) {
			return nil, errors.New("router: string fences not strictly ascending")
		}
	} else {
		if len(opt.Fences) != len(nodes)-1 {
			return nil, fmt.Errorf("router: %d nodes need %d fences, have %d", len(nodes), len(nodes)-1, len(opt.Fences))
		}
		if !ascending(opt.Fences) {
			return nil, errors.New("router: fences not strictly ascending")
		}
	}
	r := &Router{opt: opt, nodeRPCs: make([]atomic.Int64, len(nodes))}
	for i, n := range nodes {
		nd := &node{primary: &endpoint{rt: r, addr: n.Addr, idx: i}}
		for _, f := range n.Followers {
			nd.followers = append(nd.followers, &endpoint{rt: r, addr: f, idx: i})
		}
		r.nodes = append(r.nodes, nd)
	}
	return r, nil
}

func ascending[K cmp.Ordered](s []K) bool {
	for i := 1; i < len(s); i++ {
		if s[i] <= s[i-1] {
			return false
		}
	}
	return true
}

// Close drops every pooled connection. In-flight operations on other
// goroutines fail their current attempt and redial (which may succeed);
// Close is for teardown, not fencing.
func (r *Router) Close() error {
	for _, n := range r.nodes {
		n.primary.drain()
		for _, f := range n.followers {
			f.drain()
		}
	}
	return nil
}

// Stats snapshots the router's counters.
func (r *Router) Stats() Stats {
	s := Stats{
		RPCs:          r.rpcs.Load(),
		Retries:       r.retries.Load(),
		Batches:       r.batches.Load(),
		FanoutBatches: r.fanout.Load(),
		PrunedNodes:   r.pruned.Load(),
		FollowerReads: r.followerReads.Load(),
		NodeRPCs:      make([]int64, len(r.nodeRPCs)),
	}
	for i := range r.nodeRPCs {
		s.NodeRPCs[i] = r.nodeRPCs[i].Load()
	}
	return s
}

func (e *endpoint) drain() {
	e.mu.Lock()
	idle := e.idle
	e.idle = nil
	e.mu.Unlock()
	for _, c := range idle {
		c.Close()
	}
}

func (e *endpoint) acquire() (*server.Client, error) {
	e.mu.Lock()
	if n := len(e.idle); n > 0 {
		c := e.idle[n-1]
		e.idle = e.idle[:n-1]
		e.mu.Unlock()
		return c, nil
	}
	e.mu.Unlock()
	return server.Dial(e.rt.opt.Transport, e.addr, e.rt.opt.StringKeys,
		server.ClientOptions{Timeout: e.rt.opt.ClientTimeout})
}

func (e *endpoint) release(c *server.Client) {
	e.mu.Lock()
	if len(e.idle) < e.rt.opt.PoolSize {
		e.idle = append(e.idle, c)
		e.mu.Unlock()
		return
	}
	e.mu.Unlock()
	c.Close()
}

// do runs one RPC against the endpoint, retrying transport faults with
// backoff against a fresh connection each time. Safe because every router
// RPC is idempotent. A store-level RemoteError is deterministic — it
// surfaces immediately with the connection kept.
func (e *endpoint) do(fn func(*server.Client) error) error {
	backoff := e.rt.opt.RetryBackoff
	var lastErr error
	for attempt := 0; attempt < e.rt.opt.RetryAttempts; attempt++ {
		if attempt > 0 {
			e.rt.retries.Add(1)
			time.Sleep(backoff)
			if backoff < 250*time.Millisecond {
				backoff *= 2
			}
		}
		c, err := e.acquire()
		if err != nil {
			lastErr = err
			continue
		}
		e.rt.rpcs.Add(1)
		e.rt.nodeRPCs[e.idx].Add(1)
		if err = fn(c); err == nil {
			e.release(c)
			return nil
		}
		var re *server.RemoteError
		if errors.As(err, &re) {
			e.release(c)
			return err
		}
		c.Close()
		lastErr = err
	}
	return fmt.Errorf("router: %s: %w", e.addr, lastErr)
}

// readEndpoint picks where a read RPC for node n goes: a lag-bounded
// follower when allowed and available, else the primary.
func (r *Router) readEndpoint(n *node) *endpoint {
	if !r.opt.ReadFollowers {
		return n.primary
	}
	for _, f := range n.followers {
		if f.freshFollower() {
			r.followerReads.Add(1)
			return f
		}
	}
	return n.primary
}

// freshFollower reports whether the endpoint's status — refreshed over the
// wire when older than StatusRefresh — shows a connected follower within
// MaxFollowerLag frames of its primary.
func (e *endpoint) freshFollower() bool {
	e.mu.Lock()
	fresh := e.statusOK && time.Since(e.statusAt) < e.rt.opt.StatusRefresh
	st := e.status
	e.mu.Unlock()
	if !fresh {
		var got server.Status
		err := e.do(func(c *server.Client) error {
			var err error
			got, err = c.StatusRPC()
			return err
		})
		e.mu.Lock()
		e.statusOK = err == nil
		e.statusAt = time.Now()
		if err == nil {
			e.status = got
		}
		st = e.status
		fresh = e.statusOK
		e.mu.Unlock()
		if !fresh {
			return false
		}
	}
	return st.Follower && st.Connected && st.LagFrames <= e.rt.opt.MaxFollowerLag
}

// ---- batch splitting (serve's sort-once, slice-by-fence, one level up) ----

// sortWithPerm returns the probes in ascending order plus the permutation
// mapping sorted index back to probe index, mirroring serve.sortProbes.
func sortWithPerm[K cmp.Ordered](probes []K) (sorted []K, perm []int32) {
	perm = make([]int32, len(probes))
	for i := range perm {
		perm[i] = int32(i)
	}
	sort.SliceStable(perm, func(a, b int) bool { return probes[perm[a]] < probes[perm[b]] })
	sorted = make([]K, len(probes))
	for i, p := range perm {
		sorted[i] = probes[p]
	}
	return sorted, perm
}

func lowerBound[K cmp.Ordered](s []K, key K) int {
	return sort.Search(len(s), func(i int) bool { return s[i] >= key })
}

// splitRuns slices sorted into one contiguous [start, end) run per node:
// run i holds the keys node i owns under fences. Empty runs mean the node
// is not involved (and range reads skip it).
func splitRuns[K cmp.Ordered](sorted, fences []K) [][2]int {
	runs := make([][2]int, len(fences)+1)
	start := 0
	for i, f := range fences {
		end := start + lowerBound(sorted[start:], f)
		runs[i] = [2]int{start, end}
		start = end
	}
	runs[len(fences)] = [2]int{start, len(sorted)}
	return runs
}

// tallyFanout bumps the batch counters: every operation is a batch, one
// touching ≥2 nodes is a fan-out, and untouched nodes count as pruned
// when pruned is true (range reads skip them; lookups must still fetch
// every node's length).
func (r *Router) tallyFanout(contacted, total int, pruned bool) {
	r.batches.Add(1)
	if contacted >= 2 {
		r.fanout.Add(1)
	}
	if pruned && total > contacted {
		r.pruned.Add(int64(total - contacted))
	}
}

// ---- uint64 operations ----

// LookupBatch answers the global lower-bound position of every probe, in
// probe order, over the partitioned keyspace: each node reports positions
// local to its partition plus its length, and the router adds the prefix
// sum of preceding node lengths — the cross-node version of how a store
// sums shard snapshot lengths. Every node is contacted (a probe-less node
// still contributes its length to the offsets).
func (r *Router) LookupBatch(probes []uint64) ([]int, error) {
	r.mustU64()
	sorted, perm := sortWithPerm(probes)
	runs := splitRuns(sorted, r.opt.Fences)
	lens := make([]int, len(r.nodes))
	posPer := make([][]int, len(r.nodes))
	errs := make([]error, len(r.nodes))
	var wg sync.WaitGroup
	contacted := 0
	for i := range r.nodes {
		if runs[i][1] > runs[i][0] {
			contacted++
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sub := sorted[runs[i][0]:runs[i][1]]
			errs[i] = r.readEndpoint(r.nodes[i]).do(func(c *server.Client) error {
				pos, n, err := c.LookupBatch(sub)
				if err == nil {
					posPer[i], lens[i] = pos, n
				}
				return err
			})
		}(i)
	}
	wg.Wait()
	r.tallyFanout(contacted, len(r.nodes), false)
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	out := make([]int, len(probes))
	off := 0
	for i, run := range runs {
		for j, p := range posPer[i] {
			out[perm[run[0]+j]] = p + off
		}
		off += lens[i]
	}
	return out, nil
}

// ContainsBatch answers Contains for every probe in probe order. Only the
// nodes owning at least one probe are contacted.
func (r *Router) ContainsBatch(probes []uint64) ([]bool, error) {
	r.mustU64()
	sorted, perm := sortWithPerm(probes)
	runs := splitRuns(sorted, r.opt.Fences)
	out := make([]bool, len(probes))
	errs := make([]error, len(r.nodes))
	var wg sync.WaitGroup
	contacted := 0
	for i := range r.nodes {
		if runs[i][1] == runs[i][0] {
			continue
		}
		contacted++
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			run := runs[i]
			sub := sorted[run[0]:run[1]]
			errs[i] = r.readEndpoint(r.nodes[i]).do(func(c *server.Client) error {
				bs, err := c.ContainsBatch(sub)
				if err != nil {
					return err
				}
				for j, b := range bs {
					out[perm[run[0]+j]] = b
				}
				return nil
			})
		}(i)
	}
	wg.Wait()
	r.tallyFanout(contacted, len(r.nodes), true)
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	return out, nil
}

// InsertDurable routes each key to its owner node's group-commit durable
// write path; nil means every key is fsync-durable on its node. Duplicate
// keys are no-ops (set semantics), so a partially failed call is safe to
// retry verbatim.
func (r *Router) InsertDurable(keys ...uint64) error {
	r.mustU64()
	sorted, _ := sortWithPerm(keys)
	runs := splitRuns(sorted, r.opt.Fences)
	errs := make([]error, len(r.nodes))
	var wg sync.WaitGroup
	contacted := 0
	for i := range r.nodes {
		if runs[i][1] == runs[i][0] {
			continue
		}
		contacted++
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sub := sorted[runs[i][0]:runs[i][1]]
			errs[i] = r.nodes[i].primary.do(func(c *server.Client) error {
				return c.Insert(sub)
			})
		}(i)
	}
	wg.Wait()
	r.tallyFanout(contacted, len(r.nodes), true)
	return errors.Join(errs...)
}

// CountRange returns the exact number of keys in [lo, hi) by summing
// per-node counts over the range clipped to each node's fences; nodes
// whose range cannot intersect are never contacted.
func (r *Router) CountRange(lo, hi uint64) (int, error) {
	r.mustU64()
	if hi <= lo {
		r.batches.Add(1)
		return 0, nil
	}
	counts := make([]int, len(r.nodes))
	errs := make([]error, len(r.nodes))
	var wg sync.WaitGroup
	contacted := 0
	for i := range r.nodes {
		clo, chi, ok := clipRange(lo, hi, r.opt.Fences, i)
		if !ok {
			continue
		}
		contacted++
		wg.Add(1)
		go func(i int, clo, chi uint64) {
			defer wg.Done()
			errs[i] = r.readEndpoint(r.nodes[i]).do(func(c *server.Client) error {
				n, err := c.CountRange(clo, chi, true)
				if err == nil {
					counts[i] = n
				}
				return err
			})
		}(i, clo, chi)
	}
	wg.Wait()
	r.tallyFanout(contacted, len(r.nodes), true)
	if err := errors.Join(errs...); err != nil {
		return 0, err
	}
	total := 0
	for _, n := range counts {
		total += n
	}
	return total, nil
}

// clipRange intersects [lo, hi) with node i's fence range, reporting ok
// when the intersection is non-empty.
func clipRange[K cmp.Ordered](lo, hi K, fences []K, i int) (K, K, bool) {
	if i > 0 && fences[i-1] > lo {
		lo = fences[i-1]
	}
	if i < len(fences) && fences[i] < hi {
		hi = fences[i]
	}
	return lo, hi, lo < hi
}

func (r *Router) mustU64() {
	if r.opt.StringKeys {
		panic("router: uint64 operation on a string-keyed router")
	}
}

func (r *Router) mustStr() {
	if !r.opt.StringKeys {
		panic("router: string operation on a uint64-keyed router")
	}
}

// ---- string operations (twins, mirroring serve.Store's mode split) ----

// LookupBatchString is LookupBatch for a string-keyed router.
func (r *Router) LookupBatchString(probes []string) ([]int, error) {
	r.mustStr()
	sorted, perm := sortWithPerm(probes)
	runs := splitRuns(sorted, r.opt.FencesStr)
	lens := make([]int, len(r.nodes))
	posPer := make([][]int, len(r.nodes))
	errs := make([]error, len(r.nodes))
	var wg sync.WaitGroup
	contacted := 0
	for i := range r.nodes {
		if runs[i][1] > runs[i][0] {
			contacted++
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sub := sorted[runs[i][0]:runs[i][1]]
			errs[i] = r.readEndpoint(r.nodes[i]).do(func(c *server.Client) error {
				pos, n, err := c.LookupBatchString(sub)
				if err == nil {
					posPer[i], lens[i] = pos, n
				}
				return err
			})
		}(i)
	}
	wg.Wait()
	r.tallyFanout(contacted, len(r.nodes), false)
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	out := make([]int, len(probes))
	off := 0
	for i, run := range runs {
		for j, p := range posPer[i] {
			out[perm[run[0]+j]] = p + off
		}
		off += lens[i]
	}
	return out, nil
}

// ContainsBatchString is ContainsBatch for a string-keyed router.
func (r *Router) ContainsBatchString(probes []string) ([]bool, error) {
	r.mustStr()
	sorted, perm := sortWithPerm(probes)
	runs := splitRuns(sorted, r.opt.FencesStr)
	out := make([]bool, len(probes))
	errs := make([]error, len(r.nodes))
	var wg sync.WaitGroup
	contacted := 0
	for i := range r.nodes {
		if runs[i][1] == runs[i][0] {
			continue
		}
		contacted++
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			run := runs[i]
			sub := sorted[run[0]:run[1]]
			errs[i] = r.readEndpoint(r.nodes[i]).do(func(c *server.Client) error {
				bs, err := c.ContainsBatchString(sub)
				if err != nil {
					return err
				}
				for j, b := range bs {
					out[perm[run[0]+j]] = b
				}
				return nil
			})
		}(i)
	}
	wg.Wait()
	r.tallyFanout(contacted, len(r.nodes), true)
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	return out, nil
}

// InsertDurableString is InsertDurable for a string-keyed router.
func (r *Router) InsertDurableString(keys ...string) error {
	r.mustStr()
	sorted, _ := sortWithPerm(keys)
	runs := splitRuns(sorted, r.opt.FencesStr)
	errs := make([]error, len(r.nodes))
	var wg sync.WaitGroup
	contacted := 0
	for i := range r.nodes {
		if runs[i][1] == runs[i][0] {
			continue
		}
		contacted++
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sub := sorted[runs[i][0]:runs[i][1]]
			errs[i] = r.nodes[i].primary.do(func(c *server.Client) error {
				return c.InsertString(sub)
			})
		}(i)
	}
	wg.Wait()
	r.tallyFanout(contacted, len(r.nodes), true)
	return errors.Join(errs...)
}

// CountRangeString is CountRange for a string-keyed router.
func (r *Router) CountRangeString(lo, hi string) (int, error) {
	r.mustStr()
	if hi <= lo {
		r.batches.Add(1)
		return 0, nil
	}
	return r.countStr(lo, hi, true)
}

// CountFromString counts every key >= lo.
func (r *Router) CountFromString(lo string) (int, error) {
	r.mustStr()
	return r.countStr(lo, "", false)
}

func (r *Router) countStr(lo, hi string, bounded bool) (int, error) {
	counts := make([]int, len(r.nodes))
	errs := make([]error, len(r.nodes))
	var wg sync.WaitGroup
	contacted := 0
	for i := range r.nodes {
		clo := lo
		if i > 0 && r.opt.FencesStr[i-1] > clo {
			clo = r.opt.FencesStr[i-1]
		}
		chi, cbounded := hi, bounded
		if i < len(r.opt.FencesStr) && (!cbounded || r.opt.FencesStr[i] < chi) {
			chi, cbounded = r.opt.FencesStr[i], true
		}
		if cbounded && clo >= chi {
			continue
		}
		contacted++
		wg.Add(1)
		go func(i int, clo, chi string, cbounded bool) {
			defer wg.Done()
			errs[i] = r.readEndpoint(r.nodes[i]).do(func(c *server.Client) error {
				n, err := c.CountRangeString(clo, chi, cbounded)
				if err == nil {
					counts[i] = n
				}
				return err
			})
		}(i, clo, chi, cbounded)
	}
	wg.Wait()
	r.tallyFanout(contacted, len(r.nodes), true)
	if err := errors.Join(errs...); err != nil {
		return 0, err
	}
	total := 0
	for _, n := range counts {
		total += n
	}
	return total, nil
}
