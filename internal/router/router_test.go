package router

import (
	"fmt"
	"math/rand"
	"slices"
	"testing"
	"time"

	"learnedindex/internal/core"
	"learnedindex/internal/repl"
	"learnedindex/internal/serve"
	"learnedindex/internal/server"
)

// cluster is a set of in-memory node stores behind wire servers plus the
// single-store oracle holding the union of their keys.
type cluster struct {
	tr      repl.Transport
	stores  []*serve.Store
	servers []*server.Server
	oracle  *serve.Store
}

func (cl *cluster) close() {
	for _, s := range cl.servers {
		if s != nil {
			s.Close()
		}
	}
	for _, st := range cl.stores {
		if st != nil {
			st.Close()
		}
	}
	if cl.oracle != nil {
		cl.oracle.Close()
	}
}

// startCluster partitions keys at fences into len(fences)+1 in-memory node
// stores served over tr, with addresses "n0", "n1", ...
func startCluster(t *testing.T, tr repl.Transport, keys []uint64, fences []uint64) *cluster {
	t.Helper()
	cl := &cluster{tr: tr}
	t.Cleanup(cl.close)
	sorted := append([]uint64(nil), keys...)
	slices.Sort(sorted)
	runs := splitRuns(sorted, fences)
	for i, run := range runs {
		st := serve.New(append([]uint64(nil), sorted[run[0]:run[1]]...), core.Config{}, serve.Options{Shards: 2})
		cl.stores = append(cl.stores, st)
		srv := server.NewServer(st, server.Options{})
		if err := srv.Serve(tr, fmt.Sprintf("n%d", i)); err != nil {
			t.Fatalf("serve node %d: %v", i, err)
		}
		cl.servers = append(cl.servers, srv)
	}
	cl.oracle = serve.New(sorted, core.Config{}, serve.Options{Shards: 4})
	return cl
}

func clusterNodes(n int) []Node {
	nodes := make([]Node, n)
	for i := range nodes {
		nodes[i] = Node{Addr: fmt.Sprintf("n%d", i)}
	}
	return nodes
}

// TestRouterRepartitioning is the re-partitioning oracle: a probe batch
// straddling three node ranges — including probes below every key, above
// every key, on fence boundaries, and inside an empty-range node — must
// answer exactly like a single store holding the union.
func TestRouterRepartitioning(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var keys []uint64
	for i := 0; i < 3000; i++ {
		k := uint64(rng.Intn(90000))
		// Leave [30000, 40000) empty: node 1 owns a range with no keys.
		if k >= 30000 && k < 40000 {
			k += 10000
		}
		keys = append(keys, 1000+k)
	}
	fences := []uint64{31000, 41000} // node 1 = [31000, 41000): present but empty
	tr := repl.NewMemTransport()
	cl := startCluster(t, tr, keys, fences)

	rt, err := New(clusterNodes(3), Options{Transport: tr, Fences: fences, ScanPageKeys: 257})
	if err != nil {
		t.Fatalf("router: %v", err)
	}
	defer rt.Close()

	probes := []uint64{0, 999, 1000, 30999, 31000, 35000, 40999, 41000, 95000, 1 << 62}
	for i := 0; i < 400; i++ {
		probes = append(probes, uint64(rng.Intn(100000)))
	}
	rng.Shuffle(len(probes), func(i, j int) { probes[i], probes[j] = probes[j], probes[i] })

	pos, err := rt.LookupBatch(probes)
	if err != nil {
		t.Fatalf("LookupBatch: %v", err)
	}
	if want := cl.oracle.LookupBatch(probes); !slices.Equal(pos, want) {
		for i := range pos {
			if pos[i] != want[i] {
				t.Fatalf("probe %d (%d): pos %d, want %d", i, probes[i], pos[i], want[i])
			}
		}
	}

	bs, err := rt.ContainsBatch(probes)
	if err != nil {
		t.Fatalf("ContainsBatch: %v", err)
	}
	if !slices.Equal(bs, cl.oracle.ContainsBatch(probes)) {
		t.Fatal("ContainsBatch mismatch vs union oracle")
	}

	for _, r := range [][2]uint64{{0, 100000}, {31000, 41000}, {20000, 60000}, {90000, 90001}, {5, 5}} {
		got, err := rt.CountRange(r[0], r[1])
		if err != nil {
			t.Fatalf("CountRange%v: %v", r, err)
		}
		if want := cl.oracle.CountRange(r[0], r[1]); got != want {
			t.Fatalf("CountRange%v = %d, want %d", r, got, want)
		}
		scanned, err := rt.ScanBatch(r[0], r[1], nil)
		if err != nil {
			t.Fatalf("ScanBatch%v: %v", r, err)
		}
		if want := cl.oracle.ScanBatch(r[0], r[1], nil); !slices.Equal(scanned, want) {
			t.Fatalf("ScanBatch%v: %d keys, want %d", r, len(scanned), len(want))
		}
	}

	st := rt.Stats()
	if st.FanoutBatches == 0 {
		t.Fatal("no batch fanned out across >=2 nodes")
	}
	if st.PrunedNodes == 0 {
		t.Fatal("no node contact was ever pruned")
	}

	// Fence pruning: a count confined to node 0's range must not touch
	// node 2.
	before := rt.Stats().NodeRPCs[2]
	if _, err := rt.CountRange(1000, 2000); err != nil {
		t.Fatalf("confined CountRange: %v", err)
	}
	if after := rt.Stats().NodeRPCs[2]; after != before {
		t.Fatalf("confined CountRange contacted node 2 (%d -> %d RPCs)", before, after)
	}
}

// TestRouterInsertRouting: durable inserts land on the owner node and
// become globally visible through the router.
func TestRouterInsertRouting(t *testing.T) {
	dirs := make([]string, 3)
	for i := range dirs {
		dirs[i] = t.TempDir()
	}
	fences := []uint64{1000, 2000}
	tr := repl.NewMemTransport()
	var stores []*serve.Store
	for i := range dirs {
		st, err := serve.Open(nil, core.Config{}, serve.Options{Dir: dirs[i]})
		if err != nil {
			t.Fatalf("open node %d: %v", i, err)
		}
		defer st.Close()
		stores = append(stores, st)
		srv := server.NewServer(st, server.Options{})
		if err := srv.Serve(tr, fmt.Sprintf("n%d", i)); err != nil {
			t.Fatalf("serve node %d: %v", i, err)
		}
		defer srv.Close()
	}
	rt, err := New(clusterNodes(3), Options{Transport: tr, Fences: fences})
	if err != nil {
		t.Fatalf("router: %v", err)
	}
	defer rt.Close()

	keys := []uint64{5, 500, 999, 1000, 1500, 2000, 9999}
	if err := rt.InsertDurable(keys...); err != nil {
		t.Fatalf("InsertDurable: %v", err)
	}
	for _, st := range stores {
		st.Flush()
	}
	bs, err := rt.ContainsBatch(keys)
	if err != nil {
		t.Fatalf("ContainsBatch: %v", err)
	}
	for i, b := range bs {
		if !b {
			t.Fatalf("key %d not visible after routed insert", keys[i])
		}
	}
	// Owner placement: node 0 holds [..,1000), node 1 [1000,2000), node 2 the rest.
	if got := stores[0].Len(); got != 3 {
		t.Fatalf("node 0 has %d keys, want 3", got)
	}
	if got := stores[1].Len(); got != 2 {
		t.Fatalf("node 1 has %d keys, want 2", got)
	}
	if got := stores[2].Len(); got != 2 {
		t.Fatalf("node 2 has %d keys, want 2", got)
	}
}

// TestRouterStringMode mirrors the repartitioning oracle in string mode.
func TestRouterStringMode(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var keys []string
	for i := 0; i < 1200; i++ {
		keys = append(keys, fmt.Sprintf("k%06d", rng.Intn(500000)))
	}
	slices.Sort(keys)
	keys = slices.Compact(keys)
	fencesStr := []string{"k150000", "k350000"}

	tr := repl.NewMemTransport()
	runs := splitRuns(keys, fencesStr)
	var stores []*serve.Store
	for i, run := range runs {
		st := serve.NewString(append([]string(nil), keys[run[0]:run[1]]...), core.Config{}, serve.Options{Shards: 2})
		defer st.Close()
		stores = append(stores, st)
		srv := server.NewServer(st, server.Options{})
		if err := srv.Serve(tr, fmt.Sprintf("n%d", i)); err != nil {
			t.Fatalf("serve node %d: %v", i, err)
		}
		defer srv.Close()
	}
	oracle := serve.NewString(keys, core.Config{}, serve.Options{Shards: 4})
	defer oracle.Close()

	rt, err := New(clusterNodes(3), Options{Transport: tr, StringKeys: true, FencesStr: fencesStr, ScanPageKeys: 101})
	if err != nil {
		t.Fatalf("router: %v", err)
	}
	defer rt.Close()

	probes := []string{"", "a", "k150000", "k349999", "k999999", "zzz"}
	for i := 0; i < 200; i++ {
		probes = append(probes, fmt.Sprintf("k%06d", rng.Intn(500000)))
	}
	pos, err := rt.LookupBatchString(probes)
	if err != nil {
		t.Fatalf("LookupBatchString: %v", err)
	}
	for i, p := range probes {
		if want := oracle.LookupString(p); pos[i] != want {
			t.Fatalf("probe %q: pos %d, want %d", p, pos[i], want)
		}
	}
	bs, err := rt.ContainsBatchString(probes)
	if err != nil {
		t.Fatalf("ContainsBatchString: %v", err)
	}
	for i, p := range probes {
		if bs[i] != oracle.ContainsString(p) {
			t.Fatalf("probe %q: contains %v", p, bs[i])
		}
	}
	got, err := rt.ScanBatchString("k1", "k4", nil)
	if err != nil {
		t.Fatalf("ScanBatchString: %v", err)
	}
	if want := oracle.ScanBatchString("k1", "k4", nil); !slices.Equal(got, want) {
		t.Fatalf("ScanBatchString: %d keys, want %d", len(got), len(want))
	}
	cnt, err := rt.CountRangeString("k1", "k4")
	if err != nil {
		t.Fatalf("CountRangeString: %v", err)
	}
	if want := oracle.CountRangeString("k1", "k4"); cnt != want {
		t.Fatalf("CountRangeString = %d, want %d", cnt, want)
	}
	cnt, err = rt.CountFromString("k3")
	if err != nil {
		t.Fatalf("CountFromString: %v", err)
	}
	if want := oracle.CountFromString("k3"); cnt != want {
		t.Fatalf("CountFromString = %d, want %d", cnt, want)
	}

	if err := rt.InsertDurableString("a-new", "k200000x", "zzzz"); err != nil {
		t.Fatalf("InsertDurableString: %v", err)
	}
	for _, st := range stores {
		st.Flush()
	}
	bs, err = rt.ContainsBatchString([]string{"a-new", "k200000x", "zzzz"})
	if err != nil {
		t.Fatalf("contains after insert: %v", err)
	}
	for i, b := range bs {
		if !b {
			t.Fatalf("routed string insert %d not visible", i)
		}
	}
}

// TestRouterFollowerReads: with ReadFollowers on, read RPCs for a node
// route to a lag-bounded connected follower (and are tallied), writes
// keep landing on the primary, and when the follower dies the router
// falls back to primary reads without ever returning a wrong answer.
func TestRouterFollowerReads(t *testing.T) {
	tr := repl.NewMemTransport()
	prim, err := serve.Open(nil, core.Config{}, serve.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer prim.Close()
	pr, err := prim.ServeReplication(tr, "repl0", repl.PrimaryOptions{
		Epoch: 1, HeartbeatEvery: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	fol, err := serve.OpenFollower(core.Config{}, serve.Options{Dir: t.TempDir()},
		repl.FollowerOptions{
			Addr: pr.Addr(), Transport: tr,
			ReconnectBase: 2 * time.Millisecond, ReconnectMax: 50 * time.Millisecond,
			JitterSeed: 1, FlushEvery: 100,
		})
	if err != nil {
		t.Fatal(err)
	}
	defer fol.Close()

	ps := server.NewServer(prim, server.Options{})
	if err := ps.Serve(tr, "p0"); err != nil {
		t.Fatal(err)
	}
	defer ps.Close()
	fs := server.NewServer(fol, server.Options{})
	if err := fs.Serve(tr, "f0"); err != nil {
		t.Fatal(err)
	}
	defer fs.Close()

	rt, err := New(
		[]Node{{Addr: "p0", Followers: []string{"f0"}}},
		Options{
			Transport:      tr,
			ReadFollowers:  true,
			MaxFollowerLag: 1 << 30,
			StatusRefresh:  time.Millisecond,
		})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	keys := make([]uint64, 0, 500)
	for i := uint64(0); i < 500; i++ {
		keys = append(keys, i*3+1)
	}
	if err := rt.InsertDurable(keys...); err != nil {
		t.Fatalf("InsertDurable: %v", err)
	}
	prim.Flush()
	wait := func(what string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(15 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timeout waiting for %s", what)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	wait("follower convergence", func() bool { return fol.Len() == len(keys) })
	wait("applied horizon", func() bool {
		st, ok := fol.FollowerStatus()
		return ok && st.Connected && st.AppliedSeq > 0
	})

	probes := append(append([]uint64(nil), keys[:50]...), 0, 2, 1<<40)
	bs, err := rt.ContainsBatch(probes)
	if err != nil {
		t.Fatalf("ContainsBatch: %v", err)
	}
	for i, p := range probes {
		if bs[i] != prim.Contains(p) {
			t.Fatalf("probe %d: contains %v, primary disagrees", p, bs[i])
		}
	}
	pos, err := rt.LookupBatch(probes)
	if err != nil {
		t.Fatalf("LookupBatch: %v", err)
	}
	if want := prim.LookupBatch(probes); !slices.Equal(pos, want) {
		t.Fatal("follower-read LookupBatch diverged from primary")
	}
	if rt.Stats().FollowerReads == 0 {
		t.Fatal("no read was ever routed to the follower")
	}

	// Writes must keep landing on the primary — a follower store refuses
	// them, and *server.RemoteError is deterministic (not retried).
	if err := rt.InsertDurable(9_999_999); err != nil {
		t.Fatalf("InsertDurable with follower reads on: %v", err)
	}
	prim.Flush()
	if !prim.Contains(9_999_999) {
		t.Fatal("routed insert did not land on the primary")
	}

	// Kill the follower: once its status check fails, reads fall back to
	// the primary and stay correct.
	fs.Close()
	fol.Close()
	time.Sleep(3 * time.Millisecond) // let the cached status go stale
	bs, err = rt.ContainsBatch(probes)
	if err != nil {
		t.Fatalf("ContainsBatch after follower death: %v", err)
	}
	for i, p := range probes {
		if bs[i] != prim.Contains(p) {
			t.Fatalf("probe %d after follower death: contains %v, primary disagrees", p, bs[i])
		}
	}
}
