package router

import (
	"cmp"
	"math"

	"learnedindex/internal/scan"
	"learnedindex/internal/server"
)

// remoteCursor adapts one node's paged Scan RPC to scan.Cursor, so the
// same loser tree that merges shard snapshots inside a store merges node
// streams across the wire. Each page fetch goes through the endpoint's
// retrying do(), and the first unrecoverable error lands in errp — the
// cursor then reports exhausted, and the scan surfaces the error via Err.
type remoteCursor[K cmp.Ordered] struct {
	fetch func(from K, limit int) ([]K, bool, error)
	succ  func(K) (K, bool)
	limit int
	errp  *error

	page []K
	i    int
	more bool
}

func (c *remoteCursor[K]) load(from K) {
	c.i = 0
	if *c.errp != nil {
		c.page, c.more = nil, false
		return
	}
	page, more, err := c.fetch(from, c.limit)
	if err != nil {
		if *c.errp == nil {
			*c.errp = err
		}
		c.page, c.more = nil, false
		return
	}
	c.page, c.more = page, more
}

func (c *remoteCursor[K]) Seek(key K) bool {
	c.load(key)
	return c.i < len(c.page)
}

func (c *remoteCursor[K]) Next() bool {
	c.i++
	if c.i < len(c.page) {
		return true
	}
	if !c.more || len(c.page) == 0 {
		return false
	}
	from, ok := c.succ(c.page[len(c.page)-1])
	if !ok {
		return false
	}
	c.load(from)
	return c.i < len(c.page)
}

func (c *remoteCursor[K]) Key() K { return c.page[c.i] }

func (c *remoteCursor[K]) Release() { c.page = nil }

// RangeScan streams a cross-node merged scan in ascending key order. The
// zero of Err must be checked after iteration: a node that stayed
// unreachable past the retry budget ends the stream early with the cause
// here rather than silently truncating.
type RangeScan[K cmp.Ordered] struct {
	it  *scan.Iterator[K]
	err error
}

// Next advances to the next key, reporting whether one exists. After a
// transport failure it returns false immediately — check Err.
func (s *RangeScan[K]) Next() bool {
	if s.err != nil {
		return false
	}
	return s.it.Next()
}

// Key returns the current key; valid only after a true Next.
func (s *RangeScan[K]) Key() K { return s.it.Key() }

// Err returns the first per-node failure, if any.
func (s *RangeScan[K]) Err() error { return s.err }

// Close releases the merge iterator and its cursors.
func (s *RangeScan[K]) Close() { s.it.Close() }

// Scan streams every key in [lo, hi) across all nodes in ascending order,
// merging per-node pages through the loser tree. Nodes whose fence range
// cannot intersect [lo, hi) are pruned. Check Err after the stream ends.
func (r *Router) Scan(lo, hi uint64) *RangeScan[uint64] {
	r.mustU64()
	rs := &RangeScan[uint64]{it: scan.Get[uint64]()}
	contacted := 0
	for i := range r.nodes {
		clo, chi, ok := clipRange(lo, hi, r.opt.Fences, i)
		if !ok {
			continue
		}
		contacted++
		ep := r.readEndpoint(r.nodes[i])
		cur := &remoteCursor[uint64]{
			limit: r.opt.ScanPageKeys,
			errp:  &rs.err,
			succ: func(k uint64) (uint64, bool) {
				if k == math.MaxUint64 {
					return 0, false
				}
				return k + 1, true
			},
		}
		cur.fetch = func(from uint64, limit int) ([]uint64, bool, error) {
			if from < clo {
				from = clo
			}
			var page []uint64
			var more bool
			err := ep.do(func(c *server.Client) error {
				var e error
				page, more, e = c.Scan(from, chi, true, limit)
				return e
			})
			return page, more, err
		}
		rs.it.Add(cur)
	}
	r.tallyFanout(contacted, len(r.nodes), true)
	rs.it.Start(lo, hi, nil)
	return rs
}

// ScanBatch appends every key in [lo, hi) to dst in ascending order and
// returns it, or the first node failure.
func (r *Router) ScanBatch(lo, hi uint64, dst []uint64) ([]uint64, error) {
	s := r.Scan(lo, hi)
	defer s.Close()
	for s.Next() {
		dst = append(dst, s.Key())
	}
	return dst, s.Err()
}

// ScanString streams every key in [lo, hi) of a string-keyed router.
func (r *Router) ScanString(lo, hi string) *RangeScan[string] {
	r.mustStr()
	return r.scanStr(lo, hi, true)
}

// ScanStringFrom streams every key >= lo of a string-keyed router.
func (r *Router) ScanStringFrom(lo string) *RangeScan[string] {
	r.mustStr()
	return r.scanStr(lo, "", false)
}

func (r *Router) scanStr(lo, hi string, bounded bool) *RangeScan[string] {
	rs := &RangeScan[string]{it: scan.Get[string]()}
	contacted := 0
	for i := range r.nodes {
		clo := lo
		if i > 0 && r.opt.FencesStr[i-1] > clo {
			clo = r.opt.FencesStr[i-1]
		}
		chi, cbounded := hi, bounded
		if i < len(r.opt.FencesStr) && (!cbounded || r.opt.FencesStr[i] < chi) {
			chi, cbounded = r.opt.FencesStr[i], true
		}
		if cbounded && clo >= chi {
			continue
		}
		contacted++
		ep := r.readEndpoint(r.nodes[i])
		cur := &remoteCursor[string]{
			limit: r.opt.ScanPageKeys,
			errp:  &rs.err,
			// The successor of a string under lower-bound resume is the
			// same string with a NUL appended: the smallest strictly
			// greater key.
			succ: func(k string) (string, bool) { return k + "\x00", true },
		}
		cur.fetch = func(from string, limit int) ([]string, bool, error) {
			if from < clo {
				from = clo
			}
			var page []string
			var more bool
			err := ep.do(func(c *server.Client) error {
				var e error
				page, more, e = c.ScanString(from, chi, cbounded, limit)
				return e
			})
			return page, more, err
		}
		rs.it.Add(cur)
	}
	r.tallyFanout(contacted, len(r.nodes), true)
	if bounded {
		rs.it.Start(lo, hi, nil)
	} else {
		rs.it.StartFrom(lo, nil)
	}
	return rs
}

// ScanBatchString appends every key in [lo, hi) to dst in ascending order
// and returns it, or the first node failure.
func (r *Router) ScanBatchString(lo, hi string, dst []string) ([]string, error) {
	s := r.ScanString(lo, hi)
	defer s.Close()
	for s.Next() {
		dst = append(dst, s.Key())
	}
	return dst, s.Err()
}
