package ml

import (
	"fmt"

	"learnedindex/internal/binenc"
)

// Model serialization: a one-byte family tag followed by the family's
// parameters. This is what lets a trained RMI be written into a segment
// file and served again after a cold open without retraining — the on-disk
// analogue of the paper's "extract the weights into generated code" step
// (§3.1). GRU and LogisticNGram classifiers are not Model implementations
// and are out of scope here.
const (
	tagLinear       = 1
	tagConstant     = 2
	tagMultivariate = 3
	tagNN           = 4
)

// Decode bounds: hostile inputs must not provoke huge allocations. The
// paper's architectures stop at 2 hidden layers of width 32 (§3.3); the
// caps below leave generous headroom beyond that.
const (
	maxNNLayers = 8
	maxNNWidth  = 1024
	maxNNInDim  = 64
)

// AppendModel appends the tagged encoding of m. Only models a trained RMI
// can hold are supported; a Multivariate fit over a custom feature menu
// cannot be encoded (closures have no serial form).
func AppendModel(b []byte, m Model) ([]byte, error) {
	switch t := m.(type) {
	case Linear:
		b = append(b, tagLinear)
		b = binenc.AppendF64(b, t.A)
		return binenc.AppendF64(b, t.B), nil
	case Constant:
		b = append(b, tagConstant)
		return binenc.AppendF64(b, t.C), nil
	case *Multivariate:
		if !t.stdMenu {
			return nil, fmt.Errorf("ml: cannot encode Multivariate over a custom feature menu")
		}
		b = append(b, tagMultivariate)
		b = binenc.AppendUvarint(b, uint64(len(t.featIdx)))
		for _, fi := range t.featIdx {
			b = binenc.AppendUvarint(b, uint64(fi))
		}
		b = binenc.AppendF64s(b, t.weights)
		b = binenc.AppendF64s(b, t.mean)
		return binenc.AppendF64s(b, t.invStd), nil
	case *NN:
		b = append(b, tagNN)
		b = binenc.AppendUvarint(b, uint64(t.inDim))
		b = binenc.AppendUvarint(b, uint64(len(t.widths)))
		for _, w := range t.widths {
			b = binenc.AppendUvarint(b, uint64(w))
		}
		for l := range t.w {
			b = binenc.AppendF64s(b, t.w[l])
			b = binenc.AppendF64s(b, t.b[l])
		}
		b = binenc.AppendF64s(b, t.inLo)
		b = binenc.AppendF64s(b, t.inScale)
		b = binenc.AppendF64(b, t.outLo)
		return binenc.AppendF64(b, t.outHi), nil
	default:
		return nil, fmt.Errorf("ml: cannot encode model type %T", m)
	}
}

// DecodeModel reads one tagged model from r. Shapes are validated against
// the decode bounds, so corrupt bytes yield an error, never a panic or an
// oversized allocation.
func DecodeModel(r *binenc.Reader) (Model, error) {
	if r.Remaining() < 1 {
		return nil, binenc.ErrCorrupt
	}
	tag := r.Uvarint()
	switch tag {
	case tagLinear:
		m := Linear{A: r.F64(), B: r.F64()}
		return m, r.Err()
	case tagConstant:
		m := Constant{C: r.F64()}
		return m, r.Err()
	case tagMultivariate:
		menu := StandardFeatures()
		nf := r.Count(len(menu), 1)
		idx := make([]int, nf)
		for i := range idx {
			fi := r.Uvarint()
			if fi >= uint64(len(menu)) {
				return nil, binenc.ErrCorrupt
			}
			idx[i] = int(fi)
		}
		m := &Multivariate{
			featIdx: idx,
			stdMenu: true,
			feats:   pick(menu, idx),
			weights: r.F64s(len(menu) + 1),
			mean:    r.F64s(len(menu)),
			invStd:  r.F64s(len(menu)),
		}
		if r.Err() != nil {
			return nil, r.Err()
		}
		if len(m.weights) != nf+1 || len(m.mean) != nf || len(m.invStd) != nf {
			return nil, binenc.ErrCorrupt
		}
		return m, nil
	case tagNN:
		inDim := r.Uvarint()
		if inDim < 1 || inDim > maxNNInDim {
			return nil, binenc.ErrCorrupt
		}
		nw := r.Count(maxNNLayers, 1)
		widths := make([]int, nw)
		for i := range widths {
			w := r.Uvarint()
			if w < 1 || w > maxNNWidth {
				return nil, binenc.ErrCorrupt
			}
			widths[i] = int(w)
		}
		n := &NN{inDim: int(inDim), widths: widths}
		dims := n.layerDims()
		n.w = make([][]float64, len(dims))
		n.b = make([][]float64, len(dims))
		prev := n.inDim
		for l, d := range dims {
			n.w[l] = r.F64s(prev * d)
			n.b[l] = r.F64s(d)
			if r.Err() != nil {
				return nil, r.Err()
			}
			if len(n.w[l]) != prev*d || len(n.b[l]) != d {
				return nil, binenc.ErrCorrupt
			}
			prev = d
		}
		n.inLo = r.F64s(n.inDim)
		n.inScale = r.F64s(n.inDim)
		n.outLo = r.F64()
		n.outHi = r.F64()
		if r.Err() != nil {
			return nil, r.Err()
		}
		if len(n.inLo) != n.inDim || len(n.inScale) != n.inDim {
			return nil, binenc.ErrCorrupt
		}
		return n, nil
	default:
		return nil, fmt.Errorf("ml: unknown model tag %d: %w", tag, binenc.ErrCorrupt)
	}
}
