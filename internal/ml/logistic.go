package ml

import (
	"math"
	"math/rand"

	"learnedindex/internal/hashfn"
)

// LogisticNGram is a hashed character-n-gram logistic regression — a cheap
// existence-index classifier used alongside the GRU in the Figure 10
// reproduction. The paper notes "there is no reason that our model needs to
// use the same features as the Bloom filter" (§5.2); this model is the
// low-cost end of that spectrum: feature extraction is a rolling hash, and
// inference is one dot product.
type LogisticNGram struct {
	n    int // n-gram length
	dims int // hashed feature space size (power of two)
	w    []float64
	b    float64
}

// LogisticConfig configures the model.
type LogisticConfig struct {
	N      int // n-gram length (default 3)
	Bits   int // log2 of feature dimensions (default 16)
	Epochs int
	LR     float64
	L2     float64
	Seed   int64
}

// DefaultLogisticConfig returns a 3-gram model with 2^16 hashed dims.
func DefaultLogisticConfig() LogisticConfig {
	return LogisticConfig{N: 3, Bits: 16, Epochs: 5, LR: 0.2, L2: 1e-6, Seed: 1}
}

// NewLogisticNGram creates an untrained model.
func NewLogisticNGram(cfg LogisticConfig) *LogisticNGram {
	if cfg.N <= 0 {
		cfg.N = 3
	}
	if cfg.Bits <= 0 {
		cfg.Bits = 16
	}
	return &LogisticNGram{n: cfg.N, dims: 1 << cfg.Bits, w: make([]float64, 1<<cfg.Bits)}
}

// features invokes fn with each hashed n-gram index of s.
func (m *LogisticNGram) features(s string, fn func(idx int)) {
	if len(s) < m.n {
		fn(int(hashfn.HashString(s, 0xabcd) & uint64(m.dims-1)))
		return
	}
	for i := 0; i+m.n <= len(s); i++ {
		h := hashfn.HashString(s[i:i+m.n], 0xabcd)
		fn(int(h & uint64(m.dims-1)))
	}
}

// Predict returns the modeled probability that s is a key.
func (m *LogisticNGram) Predict(s string) float64 {
	var sum float64
	cnt := 0
	m.features(s, func(idx int) {
		sum += m.w[idx]
		cnt++
	})
	o := m.b
	if cnt > 0 {
		// Normalize by sqrt(#features) so long strings don't saturate;
		// mirrors the training-time scaling.
		o += sum / math.Sqrt(float64(cnt))
	}
	return sigmoid(o)
}

// Train fits the model with SGD on log loss.
func (m *LogisticNGram) Train(pos, neg []string, cfg LogisticConfig) {
	if cfg.Epochs <= 0 {
		cfg.Epochs = 5
	}
	if cfg.LR <= 0 {
		cfg.LR = 0.2
	}
	type ex struct {
		s string
		y float64
	}
	exs := make([]ex, 0, len(pos)+len(neg))
	for _, s := range pos {
		exs = append(exs, ex{s, 1})
	}
	for _, s := range neg {
		exs = append(exs, ex{s, 0})
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	idxBuf := make([]int, 0, 128)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		lr := cfg.LR / (1 + float64(epoch))
		rng.Shuffle(len(exs), func(i, j int) { exs[i], exs[j] = exs[j], exs[i] })
		for _, e := range exs {
			idxBuf = idxBuf[:0]
			o := m.b
			m.features(e.s, func(idx int) {
				idxBuf = append(idxBuf, idx)
				o += m.w[idx]
			})
			norm := 1.0
			if len(idxBuf) > 0 {
				norm = 1 / math.Sqrt(float64(len(idxBuf)))
				o = (o-m.b)*norm + m.b
			}
			p := sigmoid(o)
			g := p - e.y
			m.b -= lr * g
			gn := lr * g * norm
			for _, idx := range idxBuf {
				m.w[idx] -= gn + lr*cfg.L2*m.w[idx]
			}
		}
	}
}

// SizeBytes returns the weight-vector footprint.
func (m *LogisticNGram) SizeBytes() int { return len(m.w)*8 + 8 }

// SizeBytesQuantized returns the float32-equivalent footprint.
func (m *LogisticNGram) SizeBytesQuantized() int { return len(m.w)*4 + 4 }
